package pimtrie

import (
	"testing"

	"github.com/pimlab/pimtrie/internal/bitstr"
	"github.com/pimlab/pimtrie/internal/workload"
)

// TestSnapshotFreezesVersion pins the COW contract: a Snapshot is
// frozen at the batch boundary it was taken on, unaffected by later
// inserts and deletes, and repeated calls between mutations share one
// flattened copy.
func TestSnapshotFreezesVersion(t *testing.T) {
	ix := New(8, Options{Seed: 7, Recoverable: true})
	g := workload.New(7)
	keys := g.VarLen(300, 12, 60)
	values := g.Values(len(keys))
	ix.Load(keys, values)

	snap := ix.Snapshot()
	if snap.KeyCount() != ix.Len() {
		t.Fatalf("snapshot has %d keys, index %d", snap.KeyCount(), ix.Len())
	}
	if again := ix.Snapshot(); again != snap {
		t.Fatal("unchanged index re-flattened instead of sharing the snapshot")
	}
	frozen := map[string]uint64{}
	snap.WalkKeys(func(k bitstr.String, v uint64) { frozen[k.String()] = v })

	// Mutate: overwrite some values, delete some keys, add new ones.
	ix.Insert(keys[:50], g.Values(50))
	ix.Delete(keys[50:100])
	extra := g.VarLen(80, 12, 60)
	ix.Insert(extra, g.Values(len(extra)))

	// The frozen version must still answer exactly the pre-mutation
	// contents.
	if snap.KeyCount() != len(frozen) {
		t.Fatalf("frozen KeyCount changed: %d != %d", snap.KeyCount(), len(frozen))
	}
	seen := 0
	snap.WalkKeys(func(k bitstr.String, v uint64) {
		if want, ok := frozen[k.String()]; !ok || want != v {
			t.Fatalf("frozen walk drifted at %v: got %d want %d (present=%v)", k, v, want, ok)
		}
		seen++
	})
	if seen != len(frozen) {
		t.Fatalf("frozen walk yielded %d pairs, want %d", seen, len(frozen))
	}

	// A fresh snapshot sees the mutations.
	snap2 := ix.Snapshot()
	if snap2 == snap {
		t.Fatal("mutated index returned the stale snapshot")
	}
	if snap2.KeyCount() != ix.Len() {
		t.Fatalf("new snapshot has %d keys, index %d", snap2.KeyCount(), ix.Len())
	}
	vals, found := ix.Get(keys[:50])
	for i := range vals {
		got, ok := snap2.Get(keys[i])
		if !found[i] || !ok || got != vals[i] {
			t.Fatalf("snapshot/index disagree on key %d: (%d,%v) vs (%d,%v)", i, got, ok, vals[i], found[i])
		}
	}
}

// TestSnapshotRequiresRecoverable pins the misuse panic.
func TestSnapshotRequiresRecoverable(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Snapshot on a non-recoverable index did not panic")
		}
	}()
	New(4, Options{Seed: 1}).Snapshot()
}
