package pimtrie

// Chaos harness: a long mixed workload runs under seeded random
// crashes, stragglers and truncated transfers (plus one crash scheduled
// at the fault-free run's midpoint, so every chaos run is guaranteed to
// exercise recovery), and every answer — plus a final full dump — must
// come out bit-identical to the fault-free oracle.

import (
	"fmt"
	"reflect"
	"testing"

	"github.com/pimlab/pimtrie/internal/workload"
)

// chaosLog collects every observable answer of the chaos workload.
type chaosLog struct {
	lcps   [][]int
	values [][]uint64
	founds [][]bool
	dels   [][]bool
	subs   [][][]KV
	dump   []KV
	n      int
}

// runChaosWorkload drives the fixed mixed workload — bulk load, then
// rounds of Insert/LCP/Get/Delete/Subtrees — and returns the answers
// with the index for post-run inspection.
func runChaosWorkload(opts Options) (chaosLog, *Index) {
	const (
		p     = 16
		n     = 1500
		batch = 128
	)
	g := workload.New(3)
	keys := g.VarLen(n, 32, 128)
	values := g.Values(len(keys))

	ix := New(p, opts)
	ix.Load(keys, values)

	var lg chaosLog
	for r := 0; r < 6; r++ {
		fresh := g.FixedLen(batch, 72)
		ix.Insert(fresh, g.Values(len(fresh)))
		lg.lcps = append(lg.lcps, ix.LCP(g.PrefixQueries(keys, batch, 10)))
		v, f := ix.Get(fresh)
		lg.values = append(lg.values, v)
		lg.founds = append(lg.founds, f)
		lg.dels = append(lg.dels, ix.Delete(keys[r*batch:(r+1)*batch]))
		prefixes := make([]Key, 6)
		for i := range prefixes {
			prefixes[i] = keys[(r+1)*batch+i*11].Prefix(18)
		}
		lg.subs = append(lg.subs, ix.Subtrees(prefixes))
	}
	lg.dump = ix.Subtree(KeyFromBytes(nil))
	lg.n = ix.Len()
	return lg, ix
}

func TestChaosWorkloadMatchesOracle(t *testing.T) {
	oracle, oix := runChaosWorkload(Options{Seed: 11})
	if h := oix.Health(); h.Recoverable || h.Recoveries != 0 {
		t.Fatalf("oracle unexpectedly recoverable/recovered: %+v", h)
	}
	mid := oix.Metrics().Rounds / 2

	for _, fseed := range []int64{1, 2, 3} {
		fseed := fseed
		t.Run(fmt.Sprintf("fault-seed-%d", fseed), func(t *testing.T) {
			plan := &FaultPlan{
				Seed:         fseed,
				CrashProb:    0.01,
				StraggleProb: 0.02,
				TruncateProb: 0.01,
				MaxCrashes:   4,
				Events:       []FaultEvent{{Round: mid, Kind: FaultCrash, Module: -1}},
			}
			got, ix := runChaosWorkload(Options{Seed: 11, Faults: plan})
			if !reflect.DeepEqual(got, oracle) {
				t.Errorf("chaos answers diverge from the fault-free oracle")
			}
			h := ix.Health()
			if h.Crashes < 1 || h.Recoveries < 1 {
				t.Errorf("chaos run injected no crash/recovery: %+v", h)
			}
			if h.Degraded || len(h.DeadModules) != 0 {
				t.Errorf("index left degraded: %+v", h)
			}
			if h.RecoveryCost.Rounds <= 0 || h.RecoveryCost.IOTime <= 0 {
				t.Errorf("recovery cost not accounted: %+v", h.RecoveryCost)
			}
		})
	}
}

// TestChaosReplayable: the same fault seed must replay the same chaos
// run — identical answers, identical metrics, identical health.
func TestChaosReplayable(t *testing.T) {
	plan := FaultPlan{
		Seed:         9,
		CrashProb:    0.01,
		StraggleProb: 0.02,
		TruncateProb: 0.01,
		MaxCrashes:   3,
	}
	a, aix := runChaosWorkload(Options{Seed: 11, Faults: &plan})
	b, bix := runChaosWorkload(Options{Seed: 11, Faults: &plan})
	if !reflect.DeepEqual(a, b) {
		t.Error("answers differ between replays of the same fault seed")
	}
	if !reflect.DeepEqual(aix.Metrics(), bix.Metrics()) {
		t.Errorf("metrics differ between replays:\n a: %+v\n b: %+v", aix.Metrics(), bix.Metrics())
	}
	if !reflect.DeepEqual(aix.Health(), bix.Health()) {
		t.Errorf("health differs between replays:\n a: %+v\n b: %+v", aix.Health(), bix.Health())
	}
}
