// Benchmarks regenerating the paper's evaluation artifacts (one per
// table/figure; DESIGN.md §3 maps IDs to paper artifacts). Each
// Table1/Figure benchmark drives the corresponding experiment sweep; the
// Op benchmarks measure wall-clock and PIM Model cost per operation
// through the public API and report the model metrics the paper's
// theorems bound (rounds/batch, words/op, balance) via ReportMetric.
//
// Run everything:  go test -bench=. -benchmem
// One table:       go test -bench=BenchmarkTable1RoundsLCP
package pimtrie

import (
	"fmt"
	"testing"

	"github.com/pimlab/pimtrie/internal/baseline"
	"github.com/pimlab/pimtrie/internal/bitstr"
	"github.com/pimlab/pimtrie/internal/experiments"
	"github.com/pimlab/pimtrie/internal/pim"
	"github.com/pimlab/pimtrie/internal/trie"
	"github.com/pimlab/pimtrie/internal/workload"
)

// benchScale keeps full-suite time reasonable; cmd/pimbench runs the
// larger DefaultScale.
var benchScale = experiments.Scale{P: 16, N: 4000, Batch: 512, Seed: 1}

// --- Table 1 and figure reproductions (experiment sweeps) -------------

func BenchmarkTable1Space(b *testing.B) { // E1
	for i := 0; i < b.N; i++ {
		experiments.SpaceTable(benchScale)
	}
}

func BenchmarkTable1RoundsLCP(b *testing.B) { // E2
	for i := 0; i < b.N; i++ {
		experiments.RoundsLCP(benchScale)
	}
}

func BenchmarkRoundsVsP(b *testing.B) { // E2b
	for i := 0; i < b.N; i++ {
		experiments.RoundsVsP(benchScale)
	}
}

func BenchmarkTable1RoundsUpdate(b *testing.B) { // E3
	for i := 0; i < b.N; i++ {
		experiments.RoundsUpdate(benchScale)
	}
}

func BenchmarkTable1RoundsSubtree(b *testing.B) { // E4
	for i := 0; i < b.N; i++ {
		experiments.RoundsSubtree(benchScale)
	}
}

func BenchmarkTable1CommPerOp(b *testing.B) { // E5
	for i := 0; i < b.N; i++ {
		experiments.CommPerOp(benchScale)
	}
}

func BenchmarkTable1CommSubtree(b *testing.B) { // E6
	for i := 0; i < b.N; i++ {
		experiments.CommSubtree(benchScale)
	}
}

func BenchmarkSkewBalance(b *testing.B) { // E7
	for i := 0; i < b.N; i++ {
		experiments.SkewBalance(benchScale)
	}
}

func BenchmarkSkewedDataBalance(b *testing.B) { // E7b
	for i := 0; i < b.N; i++ {
		experiments.SkewedDataBalance(benchScale)
	}
}

func BenchmarkTheoremBounds(b *testing.B) { // E8
	for i := 0; i < b.N; i++ {
		experiments.TheoremBounds(benchScale)
	}
}

func BenchmarkAblationBlockSize(b *testing.B) { // E9a
	for i := 0; i < b.N; i++ {
		experiments.AblationBlockSize(benchScale)
	}
}

func BenchmarkAblationPushPull(b *testing.B) { // E9b
	for i := 0; i < b.N; i++ {
		experiments.AblationPushPull(benchScale)
	}
}

func BenchmarkAblationHashWidth(b *testing.B) { // E9c
	for i := 0; i < b.N; i++ {
		experiments.AblationHashWidth(benchScale)
	}
}

func BenchmarkAblationRegionSize(b *testing.B) { // E9d
	for i := 0; i < b.N; i++ {
		experiments.AblationRegionSize(benchScale)
	}
}

func BenchmarkAblationPivotProbing(b *testing.B) { // E9e
	for i := 0; i < b.N; i++ {
		experiments.AblationPivotProbing(benchScale)
	}
}

// --- per-operation benchmarks over the public API ---------------------

func loadedIndex(b *testing.B, p, n int) (*Index, []Key) {
	b.Helper()
	g := workload.New(1)
	keys := g.VarLen(n, 48, 192)
	idx := New(p, Options{Seed: 1})
	idx.Load(keys, g.Values(len(keys)))
	return idx, keys
}

func reportModel(b *testing.B, idx *Index, before Metrics, batches int, ops int) {
	d := idx.Metrics().Sub(before)
	b.ReportMetric(float64(d.Rounds)/float64(batches), "rounds/batch")
	b.ReportMetric(float64(d.IOWords)/float64(ops), "words/op")
	b.ReportMetric(d.IOBalance(), "balance")
}

func BenchmarkOpLCPBatch(b *testing.B) {
	idx, keys := loadedIndex(b, 16, 8000)
	g := workload.New(2)
	queries := g.PrefixQueries(keys, 1024, 16)
	b.ResetTimer()
	before := idx.Metrics()
	for i := 0; i < b.N; i++ {
		idx.LCP(queries)
	}
	reportModel(b, idx, before, b.N, b.N*len(queries))
}

func BenchmarkOpGetBatch(b *testing.B) {
	idx, keys := loadedIndex(b, 16, 8000)
	g := workload.New(3)
	queries := g.Zipf(keys, 1024, 1.2)
	b.ResetTimer()
	before := idx.Metrics()
	for i := 0; i < b.N; i++ {
		idx.Get(queries)
	}
	reportModel(b, idx, before, b.N, b.N*len(queries))
}

func BenchmarkOpInsertDeleteBatch(b *testing.B) {
	idx, _ := loadedIndex(b, 16, 8000)
	g := workload.New(4)
	fresh := g.FixedLen(512, 128)
	values := g.Values(len(fresh))
	b.ResetTimer()
	before := idx.Metrics()
	for i := 0; i < b.N; i++ {
		idx.Insert(fresh, values)
		idx.Delete(fresh)
	}
	reportModel(b, idx, before, b.N, 2*b.N*len(fresh))
}

func BenchmarkOpSubtree(b *testing.B) {
	g := workload.New(5)
	keys := g.SharedPrefix(2000, 24, 96)
	idx := New(16, Options{Seed: 5})
	idx.Load(keys, g.Values(len(keys)))
	prefix := keys[0].Prefix(24)
	b.ResetTimer()
	before := idx.Metrics()
	for i := 0; i < b.N; i++ {
		idx.Subtree(prefix)
	}
	reportModel(b, idx, before, b.N, b.N)
}

func BenchmarkOpBulkLoad(b *testing.B) {
	g := workload.New(6)
	keys := g.VarLen(8000, 48, 192)
	values := g.Values(len(keys))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx := New(16, Options{Seed: int64(i)})
		idx.Load(keys, values)
	}
}

// --- baseline per-op benchmarks (wall clock comparison) ---------------

func BenchmarkBaselineDistRadixLCP(b *testing.B) {
	g := workload.New(7)
	keys := g.FixedLen(4000, 128)
	sys := pim.NewSystem(16, pim.WithSeed(7))
	d := baseline.NewDistRadix(sys, 8, keys, g.Values(len(keys)))
	queries := g.PrefixQueries(keys, 512, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.LCP(queries)
	}
	m := sys.Metrics()
	b.ReportMetric(float64(m.Rounds)/float64(b.N), "rounds/batch")
}

func BenchmarkBaselineRangePartLCP(b *testing.B) {
	g := workload.New(8)
	keys := g.FixedLen(4000, 128)
	sys := pim.NewSystem(16, pim.WithSeed(8))
	rp := baseline.NewRangePart(sys, keys, g.Values(len(keys)))
	queries := g.PrefixQueries(keys, 512, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rp.LCP(queries)
	}
}

func BenchmarkBaselineDistXFastLPL(b *testing.B) {
	g := workload.New(9)
	ints := g.Uints(4000, 64)
	sys := pim.NewSystem(16, pim.WithSeed(9))
	xf := baseline.NewDistXFast(sys, 64, ints, g.Values(len(ints)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		xf.LongestPrefixLevel(ints[:512])
	}
}

// --- host-probe microbenchmarks: flat layout vs pointer chasing -------
//
// The shadow-trie probe is host work on every Get/recovery path; these
// benchmarks isolate the memory-level-parallelism win of the flattened
// snapshot (trie.Flat): dense arrays probed in interleaved lanes versus
// the one-dependent-load-per-node pointer walk. Run both to compare:
//
//	go test -bench 'HostProbe' -benchtime 2s

func hostProbeFixtures(b *testing.B, n int) (*trie.Trie, *trie.Flat, []bitstr.String) {
	b.Helper()
	g := workload.New(11)
	keys := g.VarLen(n, 48, 160)
	tr := trie.New()
	for i, k := range keys {
		tr.Insert(k, uint64(i))
	}
	misses := g.FixedLen(len(keys)/8, 96)
	stream := workload.NewKeyStream(keys, 7, 0)
	queries := make([]bitstr.String, 1<<16)
	for i := range queries {
		if i%8 == 7 {
			queries[i] = misses[i/8%len(misses)]
		} else {
			queries[i] = stream.Next()
		}
	}
	return tr, trie.Flatten(tr), queries
}

var hostProbeSink uint64

func BenchmarkHostProbePointer(b *testing.B) {
	tr, _, queries := hostProbeFixtures(b, 100_000)
	for _, bs := range []int{8, 64, 256, 1024} {
		b.Run(fmt.Sprintf("batch-%d", bs), func(b *testing.B) {
			off := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, q := range queries[off : off+bs] {
					if v, ok := tr.Get(q); ok {
						hostProbeSink += v
					}
				}
				off = (off + bs) % (len(queries) - bs)
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*bs), "ns/key")
		})
	}
}

func BenchmarkHostProbeFlat(b *testing.B) {
	_, flat, queries := hostProbeFixtures(b, 100_000)
	for _, bs := range []int{8, 64, 256, 1024} {
		b.Run(fmt.Sprintf("batch-%d", bs), func(b *testing.B) {
			vals := make([]uint64, bs)
			found := make([]bool, bs)
			off := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				flat.GetBatch(queries[off:off+bs], vals, found)
				hostProbeSink += vals[0]
				off = (off + bs) % (len(queries) - bs)
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*bs), "ns/key")
		})
	}
}
