// Package pimtrie is a Go implementation of PIM-trie — the skew-resistant
// batch-parallel radix-based index for Processing-in-Memory systems of
// Kang et al. (SPAA 2023) — together with an instrumented simulator of
// the PIM Model it is designed for.
//
// An Index stores (bit-string key → uint64 value) pairs distributed over
// P simulated PIM modules and supports batched LongestCommonPrefix, Get,
// Insert, Delete and SubtreeQuery with the paper's load-balance and
// communication guarantees. Metrics() exposes the PIM Model cost
// counters (IO rounds, IO time, communication volume, PIM time, balance)
// so applications and benchmarks can observe the quantities the paper's
// theorems bound.
//
// Basic use:
//
//	idx := pimtrie.New(64, pimtrie.Options{})
//	idx.Insert(keys, values)            // []bitstr.String, []uint64
//	lcp := idx.LCP(queries)             // bits of longest common prefix
//	kvs := idx.Subtree(prefix)          // all pairs extending prefix
//
// Keys are variable-length bit strings; KeyFromBytes, KeyFromString,
// KeyFromUint and KeyFromBits cover the common encodings.
package pimtrie

import (
	"fmt"

	"github.com/pimlab/pimtrie/internal/bitstr"
	"github.com/pimlab/pimtrie/internal/core"
	"github.com/pimlab/pimtrie/internal/pim"
	"github.com/pimlab/pimtrie/internal/trie"
)

// Key is a variable-length bit-string key.
type Key = bitstr.String

// KV is a stored key-value pair, as returned by Subtree.
type KV = trie.KV

// KeyFromBytes encodes a byte string as a Key (MSB-first per byte, so
// lexicographic orders agree).
func KeyFromBytes(b []byte) Key { return bitstr.FromBytes(b) }

// KeyFromString encodes a textual key.
func KeyFromString(s string) Key { return bitstr.FromBytes([]byte(s)) }

// KeyFromUint encodes an integer as an exactly width-bit key.
func KeyFromUint(v uint64, width int) Key { return bitstr.FromUint64(v, width) }

// KeyFromBits parses a "0101"-style bit literal; it panics on other
// characters (intended for tests and examples).
func KeyFromBits(s string) Key { return bitstr.MustParse(s) }

// Options configures an Index. The zero value selects the paper's
// defaults for every parameter.
type Options struct {
	// Seed fixes all randomized placement decisions.
	Seed int64
	// BlockWords overrides K_B, the data-trie block size bound in words.
	BlockWords int
	// MetaBlockMax overrides K_MB, the meta-block (region) size bound.
	MetaBlockMax int
	// PullThreshold overrides the push/pull boundary in words.
	PullThreshold int
	// HashWidth narrows the hash output (testing the collision paths).
	HashWidth uint
	// PivotProbing enables the paper's §4.4.2 optimized HashMatching
	// (pivot classes + two-layer indexes) for the region phase.
	PivotProbing bool
	// Faults installs a deterministic fault-injection plan on the
	// simulated system (module crash-stops, stragglers, truncated
	// transfers). Installing a plan implies Recoverable.
	Faults *FaultPlan
	// Recoverable maintains the host-retained key authority needed to
	// rebuild lost modules even without a fault plan.
	Recoverable bool
}

// Fault-injection types, re-exported from the simulator.
type (
	// FaultPlan drives deterministic fault injection; see pim.FaultPlan.
	FaultPlan = pim.FaultPlan
	// FaultEvent schedules one fault at a fixed round boundary.
	FaultEvent = pim.FaultEvent
	// FaultKind classifies an injected fault.
	FaultKind = pim.FaultKind
	// ModuleLostError reports crash-stopped modules from the Try*
	// operation variants.
	ModuleLostError = pim.ModuleLostError
	// InvariantError reports a simulator invariant violation (always a
	// bug, never an injected fault).
	InvariantError = pim.InvariantError
	// Health reports fault/recovery status and accumulated repair cost.
	Health = core.Health
)

// Fault kinds for FaultEvent/FaultPlan.
const (
	FaultCrash    = pim.FaultCrash
	FaultStraggle = pim.FaultStraggle
	FaultTruncate = pim.FaultTruncate
)

// Metrics re-exports the PIM Model cost counters.
type Metrics = pim.Metrics

// Recorder re-exports the simulator's observation hook. A Recorder
// receives phase markers and per-round cost breakdowns; internal/obs
// provides the two standard implementations (Tracer for post-hoc
// phase-attributed traces, Monitor for live metrics registries).
type Recorder = pim.Recorder

// Index is a PIM-trie over a simulated PIM system. It is not safe for
// concurrent use: batches are the unit of parallelism, exactly as in the
// paper's model, and the per-batch scratch pooled on the index is owned
// by exactly one executing batch at a time. Concurrent batch calls are
// detected and panic immediately rather than corrupting state; to serve
// concurrent single-key traffic, front the Index with serve.Server,
// which coalesces requests into batches and serializes execution (and
// to scale past one simulated PIM system, shard.Router spreads the
// keyspace over several Index+Server pairs with hot-range migration
// between them). The
// one exception is PrepareBatch, which is explicitly safe to run
// concurrently with an executing batch (it is the pipeline stage the
// serving layer overlaps with PIM rounds).
type Index struct {
	sys  *pim.System
	core *core.PIMTrie
}

// PreparedBatch is a host-side precomputation of one batch (its query
// trie and node hashes), produced by PrepareBatch and consumed by the
// *Prepared operation variants. It is valid for a single consumption on
// the index that prepared it; if the index re-hashed in between, the
// consuming operation transparently re-prepares inline.
type PreparedBatch = core.Prepared

// New creates an empty index over p PIM modules. It panics if p < 1.
func New(p int, opts Options) *Index {
	if p < 1 {
		panic(fmt.Sprintf("pimtrie: New requires at least one PIM module, got p = %d", p))
	}
	sysOpts := []pim.Option{pim.WithSeed(opts.Seed)}
	if opts.Faults != nil {
		sysOpts = append(sysOpts, pim.WithFaults(*opts.Faults))
	}
	sys := pim.NewSystem(p, sysOpts...)
	cfg := core.Config{
		BlockWords:    opts.BlockWords,
		MetaBlockMax:  opts.MetaBlockMax,
		PullThreshold: opts.PullThreshold,
		HashSeed:      uint64(opts.Seed) ^ 0x5eed,
		HashWidth:     opts.HashWidth,
		PivotProbing:  opts.PivotProbing,
		Recoverable:   opts.Recoverable,
	}
	return &Index{sys: sys, core: core.New(sys, cfg)}
}

// Load bulk-loads an empty index (faster than Insert for initial data).
// It panics if len(keys) != len(values).
func (ix *Index) Load(keys []Key, values []uint64) {
	if len(keys) != len(values) {
		panic(fmt.Sprintf("pimtrie: Load called with %d keys but %d values", len(keys), len(values)))
	}
	ix.core.Build(keys, values)
}

// Insert stores a batch of key-value pairs; later duplicates win.
// It panics if len(keys) != len(values).
func (ix *Index) Insert(keys []Key, values []uint64) {
	if len(keys) != len(values) {
		panic(fmt.Sprintf("pimtrie: Insert called with %d keys but %d values", len(keys), len(values)))
	}
	ix.core.Insert(keys, values)
}

// Delete removes a batch of keys, reporting per key whether it was
// present (duplicates report true once, like sequential deletion).
func (ix *Index) Delete(keys []Key) []bool { return ix.core.Delete(keys) }

// LCP returns, for each query, the length in bits of the longest prefix
// of the query present in the index.
func (ix *Index) LCP(queries []Key) []int { return ix.core.LCP(queries) }

// Get returns the values stored under the queried keys.
func (ix *Index) Get(queries []Key) (values []uint64, found []bool) {
	return ix.core.Get(queries)
}

// Subtree returns every stored pair whose key extends prefix, in
// lexicographic order.
func (ix *Index) Subtree(prefix Key) []KV { return ix.core.SubtreeQuery(prefix) }

// Subtrees answers a batch of prefix scans in one matching pass;
// results[i] holds the pairs extending prefixes[i].
func (ix *Index) Subtrees(prefixes []Key) [][]KV {
	return ix.core.SubtreeQueryBatch(prefixes)
}

// PrepareBatch precomputes the host-side query trie and node hashes for
// a batch without executing anything on the simulated system. Unlike
// every other Index method, PrepareBatch is safe to call concurrently
// with an executing batch: the serving layer uses it to overlap the
// host prep of batch k+1 with the PIM rounds of batch k. Consume the
// result with LCPPrepared, GetPrepared, SubtreesPrepared,
// InsertPrepared or DeletePrepared; model metrics of the consuming call
// are bit-identical to the plain variant on the same batch.
func (ix *Index) PrepareBatch(batch []Key) *PreparedBatch { return ix.core.Prepare(batch) }

// LCPPrepared is LCP over a batch staged with PrepareBatch.
func (ix *Index) LCPPrepared(p *PreparedBatch) []int { return ix.core.LCPPrepared(p) }

// GetPrepared is Get over a batch staged with PrepareBatch.
func (ix *Index) GetPrepared(p *PreparedBatch) (values []uint64, found []bool) {
	return ix.core.GetPrepared(p)
}

// SubtreesPrepared is Subtrees over a prefix batch staged with
// PrepareBatch.
func (ix *Index) SubtreesPrepared(p *PreparedBatch) [][]KV {
	return ix.core.SubtreeQueryPrepared(p)
}

// InsertPrepared is Insert over a key batch staged with PrepareBatch;
// values[i] pairs with the staged batch's i-th key.
func (ix *Index) InsertPrepared(p *PreparedBatch, values []uint64) {
	ix.core.InsertPrepared(p, values)
}

// DeletePrepared is Delete over a key batch staged with PrepareBatch.
func (ix *Index) DeletePrepared(p *PreparedBatch) []bool { return ix.core.DeletePrepared(p) }

// Len returns the number of stored keys.
func (ix *Index) Len() int { return ix.core.KeyCount() }

// P returns the number of PIM modules.
func (ix *Index) P() int { return ix.sys.P() }

// Metrics returns the cumulative PIM Model cost counters; diff two
// snapshots with Metrics.Sub to cost a single batch.
func (ix *Index) Metrics() Metrics { return ix.sys.Metrics() }

// SetRecorder attaches (or, with nil, detaches) an observation hook to
// the underlying simulated system. At most one recorder is active at a
// time; attaching replaces the previous one. Recorder callbacks run
// synchronously on the goroutine executing batches, so attach before
// putting the index into service (e.g. before handing it to
// serve.NewServer) rather than mid-traffic.
func (ix *Index) SetRecorder(r Recorder) { ix.sys.SetRecorder(r) }

// SpaceWords returns the total PIM memory in use, in machine words.
func (ix *Index) SpaceWords() int {
	total, _ := ix.sys.SpaceWords()
	return total
}

// Stats reports structural counters (blocks, regions, re-hashes).
type Stats = core.Stats

// Stats returns structural diagnostics.
func (ix *Index) Stats() Stats { return ix.core.CollectStats() }

// Health returns the fault/recovery status: degraded state, dead
// modules, completed recoveries and their accumulated model cost, and
// injected-fault counts.
func (ix *Index) Health() Health { return ix.core.Health() }

// Snapshot is an immutable point-in-time view of the stored pairs,
// frozen at a batch boundary: Get, LCPLen, WalkKeys, Keys, KeyCount
// and SubtreeKeys all answer from the frozen version, safe for
// concurrent use, while write batches keep committing on the live
// index. Backups, exports and long analytic scans run against a
// Snapshot instead of stalling the write path.
type Snapshot = trie.Flat

// Snapshot freezes the current contents. Unlike every other batch
// method it is safe to call from any goroutine concurrently with an
// executing batch (it reads only the lock-protected host key
// authority); repeated calls between mutations share one flattened
// copy. The index must be recoverable (Options.Recoverable or
// Options.Faults) — Snapshot panics otherwise, since only recoverable
// indexes retain the host-side state a snapshot freezes.
func (ix *Index) Snapshot() *Snapshot {
	s := ix.core.Snapshot()
	if s == nil {
		panic("pimtrie: Snapshot requires a recoverable index (set Options.Recoverable)")
	}
	return s
}

// catchFaults converts *pim.ModuleLostError and *pim.InvariantError
// panics into errors for the Try* operation variants; other panics
// propagate.
func catchFaults(op func()) (err error) {
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		switch e := r.(type) {
		case *ModuleLostError:
			err = e
		case *InvariantError:
			err = e
		default:
			panic(r)
		}
	}()
	op()
	return nil
}

// TryLoad is Load returning fault conditions as errors instead of
// panicking. On a recoverable index (Options.Faults or Recoverable)
// faults are repaired internally and no error is returned; an error
// here means the index is not recoverable and its contents are suspect.
func (ix *Index) TryLoad(keys []Key, values []uint64) error {
	return catchFaults(func() { ix.Load(keys, values) })
}

// TryInsert is Insert with fault conditions as errors; see TryLoad.
func (ix *Index) TryInsert(keys []Key, values []uint64) error {
	return catchFaults(func() { ix.Insert(keys, values) })
}

// TryDelete is Delete with fault conditions as errors; see TryLoad.
func (ix *Index) TryDelete(keys []Key) (res []bool, err error) {
	err = catchFaults(func() { res = ix.Delete(keys) })
	return res, err
}

// TryLCP is LCP with fault conditions as errors; see TryLoad.
func (ix *Index) TryLCP(queries []Key) (res []int, err error) {
	err = catchFaults(func() { res = ix.LCP(queries) })
	return res, err
}

// TryGet is Get with fault conditions as errors; see TryLoad.
func (ix *Index) TryGet(queries []Key) (values []uint64, found []bool, err error) {
	err = catchFaults(func() { values, found = ix.Get(queries) })
	return values, found, err
}

// TrySubtrees is Subtrees with fault conditions as errors; see TryLoad.
func (ix *Index) TrySubtrees(prefixes []Key) (res [][]KV, err error) {
	err = catchFaults(func() { res = ix.Subtrees(prefixes) })
	return res, err
}
