// Quickstart: create an index over 16 simulated PIM modules, insert a
// few keys, and run each of the four batch operations.
package main

import (
	"fmt"

	pimtrie "github.com/pimlab/pimtrie"
)

func main() {
	idx := pimtrie.New(16, pimtrie.Options{Seed: 42})

	// Keys are variable-length bit strings; helpers cover the common
	// encodings.
	keys := []pimtrie.Key{
		pimtrie.KeyFromString("hello"),
		pimtrie.KeyFromString("help"),
		pimtrie.KeyFromString("world"),
		pimtrie.KeyFromBits("010011"),
		pimtrie.KeyFromUint(1234567, 48),
	}
	idx.Insert(keys, []uint64{1, 2, 3, 4, 5})
	fmt.Printf("stored %d keys over %d modules\n", idx.Len(), idx.P())

	// Point lookups are batched.
	vals, found := idx.Get([]pimtrie.Key{pimtrie.KeyFromString("help"), pimtrie.KeyFromString("nope")})
	fmt.Printf("get help  -> %d (found=%v)\n", vals[0], found[0])
	fmt.Printf("get nope  -> found=%v\n", found[1])

	// LongestCommonPrefix: how many bits of each query exist in the index?
	lcp := idx.LCP([]pimtrie.Key{pimtrie.KeyFromString("helmet")})
	fmt.Printf("LCP(helmet) = %d bits (= %d whole bytes: \"hel\")\n", lcp[0], lcp[0]/8)

	// Prefix scan: everything under "hel".
	for _, kv := range idx.Subtree(pimtrie.KeyFromString("hel")) {
		fmt.Printf("subtree hel: %s = %d\n", string(kv.Key.Bytes()), kv.Value)
	}

	// Deletes are batched too.
	gone := idx.Delete([]pimtrie.Key{pimtrie.KeyFromString("help")})
	fmt.Printf("deleted help: %v; %d keys remain\n", gone[0], idx.Len())

	// Every batch's PIM Model cost is observable.
	before := idx.Metrics()
	idx.LCP(keys)
	d := idx.Metrics().Sub(before)
	fmt.Printf("last batch: %d IO rounds, %d words moved, balance %.2f\n",
		d.Rounds, d.IOWords, d.IOBalance())
}
