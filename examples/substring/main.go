// substring: suffix indexing on a PIM-trie — a small working instance of
// the paper's future-work direction ("designing PIM-friendly algorithms
// and data structures supported by these key methods, such as suffix
// trees", §6).
//
// Indexing every suffix of a document makes substring search a pure LCP
// query: a pattern occurs in the document iff some suffix has the whole
// pattern as a prefix, i.e. iff LCP(pattern) == |pattern|. Occurrence
// positions come back through the stored values, and Subtree enumerates
// all matches. Suffix sets are maximally skewed trie inputs (every pair
// of suffixes from a repetitive text shares long prefixes), which is
// exactly the regime PIM-trie is built for.
package main

import (
	"fmt"
	"strings"

	pimtrie "github.com/pimlab/pimtrie"
)

const document = `the quick brown fox jumps over the lazy dog. ` +
	`pack my box with five dozen liquor jugs. ` +
	`the five boxing wizards jump quickly. ` +
	`how quickly daft jumping zebras vex. ` +
	`sphinx of black quartz judge my vow.`

func main() {
	idx := pimtrie.New(16, pimtrie.Options{Seed: 5})

	// Index every suffix; value = starting offset.
	keys := make([]pimtrie.Key, len(document))
	values := make([]uint64, len(document))
	for i := range document {
		keys[i] = pimtrie.KeyFromString(document[i:])
		values[i] = uint64(i)
	}
	idx.Load(keys, values)
	fmt.Printf("indexed %d suffixes of a %d-byte document (%d words of PIM memory)\n",
		idx.Len(), len(document), idx.SpaceWords())

	patterns := []string{"quick", "jump", "box", "zebra", "gopher", "the lazy"}
	queries := make([]pimtrie.Key, len(patterns))
	for i, p := range patterns {
		queries[i] = pimtrie.KeyFromString(p)
	}
	before := idx.Metrics()
	lcp := idx.LCP(queries)
	d := idx.Metrics().Sub(before)

	for i, p := range patterns {
		if lcp[i] == queries[i].Len() {
			// Enumerate occurrences with a prefix scan over the suffixes.
			occ := idx.Subtree(queries[i])
			var starts []string
			for _, kv := range occ {
				starts = append(starts, fmt.Sprintf("%d", kv.Value))
			}
			fmt.Printf("%-10q found %d× at offsets %s\n", p, len(occ), strings.Join(starts, ","))
		} else {
			fmt.Printf("%-10q not found (longest matching prefix: %q)\n",
				p, p[:lcp[i]/8])
		}
	}
	fmt.Printf("\nall %d pattern probes: %d IO rounds, balance %.2f\n",
		len(patterns), d.Rounds, d.IOBalance())
}
