// IP routing: the classic trie workload from the paper's introduction
// (IP routing tables are one of the canonical radix-tree applications).
//
// A routing table maps CIDR prefixes to next hops; forwarding a packet
// is a longest-prefix-match — exactly the LCP operation, valid only when
// the matched length corresponds to an installed prefix, which we check
// with a second Get batch. A synthetic BGP-like table stands in for a
// real snapshot (see DESIGN.md: repro substitution).
package main

import (
	"fmt"
	"math/rand"

	pimtrie "github.com/pimlab/pimtrie"
	"github.com/pimlab/pimtrie/internal/workload"
)

func ipStr(v uint32) string {
	return fmt.Sprintf("%d.%d.%d.%d", v>>24, v>>16&255, v>>8&255, v&255)
}

func main() {
	const nRoutes = 50_000
	idx := pimtrie.New(32, pimtrie.Options{Seed: 7})

	// Install a synthetic routing table: value = next-hop id.
	g := workload.New(7)
	routes := g.IPv4Prefixes(nRoutes)
	hops := make([]uint64, len(routes))
	for i := range hops {
		hops[i] = uint64(i % 256)
	}
	idx.Insert(routes, hops)
	fmt.Printf("installed %d prefixes (deduped: %d) on %d modules, %d words of PIM memory\n",
		nRoutes, idx.Len(), idx.P(), idx.SpaceWords())

	// Forward a batch of packets: longest-prefix match each destination.
	r := rand.New(rand.NewSource(99))
	dsts := make([]pimtrie.Key, 4096)
	for i := range dsts {
		if i%2 == 0 {
			// Half the traffic goes under installed prefixes.
			p := routes[r.Intn(len(routes))]
			dsts[i] = p.Concat(pimtrie.KeyFromUint(uint64(r.Uint32()), 32-p.Len()))
		} else {
			dsts[i] = pimtrie.KeyFromUint(uint64(r.Uint32()), 32)
		}
	}
	before := idx.Metrics()
	lcp := idx.LCP(dsts)
	// A match is a route only if the matched prefix itself is installed.
	probes := make([]pimtrie.Key, len(dsts))
	for i := range dsts {
		probes[i] = dsts[i].Prefix(lcp[i])
	}
	hopsOut, isRoute := idx.Get(probes)
	d := idx.Metrics().Sub(before)

	routed := 0
	for i := range dsts {
		if isRoute[i] {
			routed++
		}
	}
	fmt.Printf("forwarded %d packets: %d routed, %d dropped (no covering prefix)\n",
		len(dsts), routed, len(dsts)-routed)
	for i := 0; i < len(dsts) && i < 4; i++ {
		dst := ipStr(uint32(dsts[i].Uint64()))
		if isRoute[i] {
			fmt.Printf("  %-15s -> /%d prefix, next hop %d\n", dst, lcp[i], hopsOut[i])
		} else {
			fmt.Printf("  %-15s -> drop\n", dst)
		}
	}
	fmt.Printf("cost: %d IO rounds for the whole batch, %.1f words/packet, balance %.2f\n",
		d.Rounds, float64(d.IOWords)/float64(len(dsts)), d.IOBalance())

	// Withdraw one /16's worth of routes (prefix scan + batch delete).
	victim := routes[0].Prefix(16)
	under := idx.Subtree(victim)
	keys := make([]pimtrie.Key, len(under))
	for i, kv := range under {
		keys[i] = kv.Key
	}
	idx.Delete(keys)
	fmt.Printf("withdrew %d routes under %s/16; %d remain\n",
		len(under), ipStr(uint32(victim.Uint64()<<16)), idx.Len())
}
