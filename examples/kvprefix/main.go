// kvprefix: a variable-length string key-value store with prefix scans —
// the in-memory-index workload (think a path-addressed metadata store)
// that motivates tries over comparison trees: keys of wildly different
// lengths, heavy shared prefixes, and range-by-prefix queries.
package main

import (
	"fmt"

	pimtrie "github.com/pimlab/pimtrie"
)

func main() {
	idx := pimtrie.New(16, pimtrie.Options{Seed: 3})

	// A filesystem-like namespace: deep shared prefixes of very different
	// lengths — the shape that unbalances a trie.
	paths := []string{
		"/etc/hosts",
		"/etc/ssh/sshd_config",
		"/etc/ssh/ssh_config",
		"/usr/bin/go",
		"/usr/bin/gofmt",
		"/usr/lib/go/src/fmt/print.go",
		"/usr/lib/go/src/fmt/scan.go",
		"/usr/lib/go/src/net/http/server.go",
		"/var/log/syslog",
		"/var/log/auth.log",
	}
	keys := make([]pimtrie.Key, len(paths))
	sizes := make([]uint64, len(paths))
	for i, p := range paths {
		keys[i] = pimtrie.KeyFromString(p)
		sizes[i] = uint64(1000 + i*37)
	}
	idx.Insert(keys, sizes)
	fmt.Printf("indexed %d paths\n", idx.Len())

	// Directory listing = prefix scan.
	for _, dir := range []string{"/etc/ssh/", "/usr/lib/go/src/fmt/", "/nosuch/"} {
		kvs := idx.Subtree(pimtrie.KeyFromString(dir))
		fmt.Printf("%s -> %d entries\n", dir, len(kvs))
		for _, kv := range kvs {
			fmt.Printf("   %-40s %d bytes\n", string(kv.Key.Bytes()), kv.Value)
		}
	}

	// Point lookups and updates.
	v, ok := idx.Get([]pimtrie.Key{pimtrie.KeyFromString("/etc/hosts")})
	fmt.Printf("stat /etc/hosts: %d bytes (found=%v)\n", v[0], ok[0])
	idx.Insert([]pimtrie.Key{pimtrie.KeyFromString("/etc/hosts")}, []uint64{2048})
	v, _ = idx.Get([]pimtrie.Key{pimtrie.KeyFromString("/etc/hosts")})
	fmt.Printf("after rewrite: %d bytes\n", v[0])

	// LCP as "longest existing ancestor": useful for resolving the
	// deepest indexed directory of an arbitrary path.
	q := pimtrie.KeyFromString("/usr/lib/go/src/fmt/errors.go")
	l := idx.LCP([]pimtrie.Key{q})[0]
	fmt.Printf("deepest indexed ancestor of …/fmt/errors.go covers %d bits (%d bytes: %q)\n",
		l, l/8, string(q.Prefix(l-l%8).Bytes()))

	// Remove a whole subtree.
	kvs := idx.Subtree(pimtrie.KeyFromString("/var/"))
	victims := make([]pimtrie.Key, len(kvs))
	for i, kv := range kvs {
		victims[i] = kv.Key
	}
	idx.Delete(victims)
	fmt.Printf("rm -r /var: removed %d, %d paths remain\n", len(victims), idx.Len())
}
