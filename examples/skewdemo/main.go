// skewdemo: the paper's headline claim, live. The same adversarial
// workloads hit a PIM-trie and a range-partitioned index side by side;
// watch the per-module load balance (P·max/total, 1.0 = perfect) stay
// flat for the PIM-trie while range partitioning collapses to ~P.
package main

import (
	"fmt"

	pimtrie "github.com/pimlab/pimtrie"
	"github.com/pimlab/pimtrie/internal/baseline"
	"github.com/pimlab/pimtrie/internal/bitstr"
	"github.com/pimlab/pimtrie/internal/pim"
	"github.com/pimlab/pimtrie/internal/workload"
)

func main() {
	const (
		p     = 32
		n     = 20000
		batch = 4096
	)
	g := workload.New(11)
	keys := g.VarLen(n, 48, 160)
	values := g.Values(n)

	idx := pimtrie.New(p, pimtrie.Options{Seed: 11})
	idx.Load(keys, values)

	rpSys := pim.NewSystem(p, pim.WithSeed(11))
	rp := baseline.NewRangePart(rpSys, keys, values)

	cases := []struct {
		name  string
		batch []bitstr.String
	}{
		{"uniform random", g.FixedLen(batch, 96)},
		{"zipf(2.0) repeats", g.Zipf(keys, batch, 2.0)},
		{"range attack", g.RangeAttack(keys, batch, 48)},
		{"point attack", g.PointAttack(keys, batch)},
	}
	fmt.Printf("P = %d modules, %d keys, batches of %d\n\n", p, n, batch)
	fmt.Printf("%-20s %12s %14s\n", "workload", "pim-trie", "range-part")
	fmt.Printf("%-20s %12s %14s\n", "", "balance", "balance")
	for _, c := range cases {
		before := idx.Metrics()
		idx.LCP(c.batch)
		pt := idx.Metrics().Sub(before).IOBalance()

		beforeRP := rpSys.Metrics()
		rp.LCP(c.batch)
		rpBal := rpSys.Metrics().Sub(beforeRP).IOBalance()

		fmt.Printf("%-20s %12.2f %14.2f\n", c.name, pt, rpBal)
	}
	fmt.Println("\nbalance = P · (busiest module's IO) / (total IO); 1.0 is perfect,")
	fmt.Printf("%d would mean the whole batch serialized on one module.\n", p)
}
