package pimtrie_test

// The crash-restart chaos test: a child process serves durable writes
// from a shared directory, the parent SIGKILLs it at random points and
// asserts — via internal/restart's oracle protocol — that recovery is
// bit-identical to the acknowledged history after every kill. External
// test package: the harness imports internal/serve, which imports
// pimtrie, so the in-package test would be an import cycle.

import (
	"os"
	"os/exec"
	"testing"

	"github.com/pimlab/pimtrie"
	"github.com/pimlab/pimtrie/internal/restart"
	"github.com/pimlab/pimtrie/internal/wal"
)

const (
	chaosSeed   = 0x5eed_c4a5
	chaosDirEnv = "PIMTRIE_RESTART_DIR"
)

func newChaosIndex() *pimtrie.Index {
	return pimtrie.New(8, pimtrie.Options{Seed: 11, Recoverable: true})
}

// TestRestartChaosChild is the re-exec target, not a test: the parent
// spawns this binary with -test.run pinned here and the directory in
// the environment, then kills it. Skips in a normal test run.
func TestRestartChaosChild(t *testing.T) {
	dir := os.Getenv(chaosDirEnv)
	if dir == "" {
		t.Skip("re-exec helper for TestRestartChaos")
	}
	// Never returns on the happy path — the parent's SIGKILL is the exit.
	err := restart.RunChild(dir, chaosSeed, wal.SyncInterval, newChaosIndex)
	t.Fatalf("chaos child exited on its own: %v", err)
}

func TestRestartChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns and kills child processes")
	}
	dir := t.TempDir()
	spawn := func(d string) *exec.Cmd {
		cmd := exec.Command(os.Args[0], "-test.run=^TestRestartChaosChild$")
		cmd.Env = append(os.Environ(), chaosDirEnv+"="+d)
		return cmd
	}
	final, err := restart.RunParent(restart.Config{
		Dir:      dir,
		Seed:     chaosSeed,
		Rounds:   6,
		NewIndex: newChaosIndex,
		Logf:     t.Logf,
	}, spawn)
	if err != nil {
		t.Fatal(err)
	}
	if final == 0 {
		t.Fatal("no round ever acknowledged an op; the harness is not exercising the server")
	}
	t.Logf("chaos done: %d ops survived %d kills bit-identically", final, 6)
}
