package parallel

import (
	"math/rand"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestForCoversAllIndices(t *testing.T) {
	for _, n := range []int{0, 1, 255, 256, 257, 10_000} {
		var hits int64
		seen := make([]int32, n)
		For(n, func(i int) {
			atomic.AddInt64(&hits, 1)
			atomic.AddInt32(&seen[i], 1)
		})
		if hits != int64(n) {
			t.Fatalf("n=%d: %d calls", n, hits)
		}
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("n=%d: index %d visited %d times", n, i, c)
			}
		}
	}
}

func TestForChunkedPartition(t *testing.T) {
	n := 5000
	covered := make([]int32, n)
	ForChunked(n, func(lo, hi int) {
		if lo >= hi {
			t.Errorf("empty chunk [%d,%d)", lo, hi)
		}
		for i := lo; i < hi; i++ {
			atomic.AddInt32(&covered[i], 1)
		}
	})
	for i, c := range covered {
		if c != 1 {
			t.Fatalf("index %d covered %d times", i, c)
		}
	}
}

func TestForSingleWorkerFallback(t *testing.T) {
	old := SetMaxProcs(1)
	defer SetMaxProcs(old)
	sum := 0
	For(1000, func(i int) { sum += i }) // safe: single worker
	if sum != 999*1000/2 {
		t.Fatalf("sum = %d", sum)
	}
}

func TestMap(t *testing.T) {
	in := make([]int, 3000)
	for i := range in {
		in[i] = i
	}
	out := Map(in, func(x int) int { return x * x })
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
}

func TestReduceMatchesSequential(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		n := r.Intn(5000)
		xs := make([]int, n)
		want := 0
		for i := range xs {
			xs[i] = r.Intn(100) - 50
			want += xs[i]
		}
		if got := SumInt(xs); got != want {
			t.Fatalf("SumInt = %d, want %d", got, want)
		}
	}
}

func TestMaxInt(t *testing.T) {
	if MaxInt(nil) != 0 {
		t.Error("MaxInt(nil) != 0")
	}
	xs := make([]int, 4000)
	for i := range xs {
		xs[i] = i % 977
	}
	xs[3123] = 99999
	if got := MaxInt(xs); got != 99999 {
		t.Fatalf("MaxInt = %d", got)
	}
}

func TestScanIntProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		xs := make([]int, len(raw))
		for i, v := range raw {
			xs[i] = int(v)
		}
		out, total := ScanInt(xs)
		acc := 0
		for i, x := range xs {
			if out[i] != acc {
				return false
			}
			acc += x
		}
		return total == acc
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestScanLarge(t *testing.T) {
	n := 100_000
	xs := make([]int, n)
	for i := range xs {
		xs[i] = 1
	}
	out, total := ScanInt(xs)
	if total != n {
		t.Fatalf("total = %d", total)
	}
	for i := 0; i < n; i += 997 {
		if out[i] != i {
			t.Fatalf("out[%d] = %d", i, out[i])
		}
	}
}

func TestScanNonCommutativeOp(t *testing.T) {
	// String concatenation is associative but not commutative; the block
	// scan must still produce left-to-right results.
	xs := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
	out, total := Scan(xs, "", func(a, b string) string { return a + b })
	want := ""
	for i, x := range xs {
		if out[i] != want {
			t.Fatalf("out[%d] = %q, want %q", i, out[i], want)
		}
		want += x
	}
	if total != "abcdefgh" {
		t.Fatalf("total = %q", total)
	}
}

func TestFilter(t *testing.T) {
	xs := make([]int, 10_000)
	for i := range xs {
		xs[i] = i
	}
	out := Filter(xs, func(x int) bool { return x%3 == 0 })
	if len(out) != (len(xs)+2)/3 {
		t.Fatalf("len = %d", len(out))
	}
	for i, v := range out {
		if v != i*3 {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
}

func TestFlattenInto(t *testing.T) {
	groups := [][]int{{1, 2}, nil, {3}, {}, {4, 5, 6}}
	got := FlattenInto(groups)
	want := []int{1, 2, 3, 4, 5, 6}
	if len(got) != len(want) {
		t.Fatalf("len = %d", len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got[%d] = %d", i, got[i])
		}
	}
}

func BenchmarkScan1M(b *testing.B) {
	xs := make([]int, 1<<20)
	for i := range xs {
		xs[i] = i & 7
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ScanInt(xs)
	}
}

func BenchmarkParallelFor1M(b *testing.B) {
	dst := make([]int, 1<<20)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		For(len(dst), func(j int) { dst[j] = j * 2 })
	}
}

func TestMergeSortMatchesStdlib(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 25; trial++ {
		n := r.Intn(20000)
		xs := make([]int, n)
		for i := range xs {
			xs[i] = r.Intn(1000)
		}
		want := append([]int(nil), xs...)
		MergeSort(xs, func(a, b int) bool { return a < b })
		sortInts(want)
		for i := range xs {
			if xs[i] != want[i] {
				t.Fatalf("trial %d: mismatch at %d", trial, i)
			}
		}
	}
}

func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

func TestMergeSortStable(t *testing.T) {
	type kv struct{ k, seq int }
	r := rand.New(rand.NewSource(8))
	xs := make([]kv, 30000)
	for i := range xs {
		xs[i] = kv{k: r.Intn(50), seq: i}
	}
	MergeSort(xs, func(a, b kv) bool { return a.k < b.k })
	for i := 1; i < len(xs); i++ {
		if xs[i-1].k == xs[i].k && xs[i-1].seq > xs[i].seq {
			t.Fatalf("stability violated at %d", i)
		}
		if xs[i-1].k > xs[i].k {
			t.Fatalf("order violated at %d", i)
		}
	}
}

func BenchmarkMergeSort100k(b *testing.B) {
	r := rand.New(rand.NewSource(9))
	base := make([]uint64, 100_000)
	for i := range base {
		base[i] = r.Uint64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cp := append([]uint64(nil), base...)
		MergeSort(cp, func(a, b uint64) bool { return a < b })
	}
}
