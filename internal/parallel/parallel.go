// Package parallel provides the CPU-side parallel primitives the PIM
// Model assumes on the host (paper §2): a fork-join parallel-for,
// parallel reduction, and parallel prefix sums (scan, [12]). They are
// realized with goroutines over runtime.NumCPU workers; grain sizes keep
// scheduling overhead negligible for the batch sizes the index uses.
//
// The worker-count cap is stored atomically, so SetMaxProcs is safe to
// call while other goroutines (concurrent benchmarks, parallel tests)
// are inside For/Reduce/Scan; each call sites reads the cap once at
// entry.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// maxProcsV caps worker fan-out; overridable via SetMaxProcs. Read with
// maxProcs(), never directly.
var maxProcsV atomic.Int64

func init() { maxProcsV.Store(int64(runtime.NumCPU())) }

func maxProcs() int { return int(maxProcsV.Load()) }

// MaxProcs returns the current worker-count cap. Exported so packages
// that run their own fork-join code (bitstr.ArgSort takes an explicit
// procs argument to stay dependency-free) can honor the same cap.
func MaxProcs() int { return maxProcs() }

// SetMaxProcs overrides the worker count (0 restores the default) and
// returns the previous value. It is safe for concurrent use; primitives
// already executing finish with the cap they observed at entry.
func SetMaxProcs(n int) int {
	if n <= 0 {
		n = runtime.NumCPU()
	}
	return int(maxProcsV.Swap(int64(n)))
}

// minGrain is the smallest chunk worth shipping to another goroutine.
const minGrain = 256

// For runs body(i) for every i in [0, n) across workers. Bodies must be
// independent; the call returns when all have completed.
func For(n int, body func(i int)) {
	ForChunked(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			body(i)
		}
	})
}

// ForChunked splits [0, n) into contiguous chunks and runs body(lo, hi)
// for each chunk in parallel. Prefer it over For when the body is tiny.
func ForChunked(n int, body func(lo, hi int)) {
	if n <= 0 {
		return
	}
	workers := maxProcs()
	if workers > (n+minGrain-1)/minGrain {
		workers = (n + minGrain - 1) / minGrain
	}
	if workers <= 1 {
		body(0, n)
		return
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			body(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// Map applies f to every element of in, in parallel, into a new slice.
func Map[T, U any](in []T, f func(T) U) []U {
	out := make([]U, len(in))
	For(len(in), func(i int) { out[i] = f(in[i]) })
	return out
}

// Reduce combines xs with the associative op, returning id for empty
// input. The reduction tree is two-level: per-chunk sequential folds,
// then a sequential fold of the (few) partials.
func Reduce[T any](xs []T, id T, op func(a, b T) T) T {
	n := len(xs)
	if n == 0 {
		return id
	}
	workers := maxProcs()
	if workers > (n+minGrain-1)/minGrain {
		workers = (n + minGrain - 1) / minGrain
	}
	if workers <= 1 {
		acc := id
		for _, x := range xs {
			acc = op(acc, x)
		}
		return acc
	}
	chunk := (n + workers - 1) / workers
	partial := make([]T, 0, workers)
	type idxAcc struct {
		i int
		v T
	}
	ch := make(chan idxAcc, workers)
	cnt := 0
	for w := 0; w < workers; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		cnt++
		go func(w, lo, hi int) {
			acc := id
			for i := lo; i < hi; i++ {
				acc = op(acc, xs[i])
			}
			ch <- idxAcc{w, acc}
		}(w, lo, hi)
	}
	ordered := make([]T, cnt)
	for i := 0; i < cnt; i++ {
		r := <-ch
		ordered[r.i] = r.v
	}
	partial = append(partial, ordered...)
	acc := id
	for _, v := range partial {
		acc = op(acc, v)
	}
	return acc
}

// MaxInt returns the maximum of xs, or 0 for empty input.
func MaxInt(xs []int) int {
	return Reduce(xs, 0, func(a, b int) int {
		if a > b {
			return a
		}
		return b
	})
}

// SumInt returns the sum of xs.
func SumInt(xs []int) int {
	return Reduce(xs, 0, func(a, b int) int { return a + b })
}

// Scan computes the exclusive prefix "sum" of xs under the associative
// op with identity id: out[i] = op(xs[0], …, xs[i-1]), and returns the
// total as well. It is the classic two-pass block scan [12].
func Scan[T any](xs []T, id T, op func(a, b T) T) (out []T, total T) {
	n := len(xs)
	out = make([]T, n)
	if n == 0 {
		return out, id
	}
	workers := maxProcs()
	if workers > (n+minGrain-1)/minGrain {
		workers = (n + minGrain - 1) / minGrain
	}
	if workers <= 1 {
		acc := id
		for i, x := range xs {
			out[i] = acc
			acc = op(acc, x)
		}
		return out, acc
	}
	chunk := (n + workers - 1) / workers
	sums := make([]T, workers)
	var wg sync.WaitGroup
	// Pass 1: per-chunk totals.
	for w := 0; w < workers; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			sums[w] = id
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			acc := id
			for i := lo; i < hi; i++ {
				acc = op(acc, xs[i])
			}
			sums[w] = acc
		}(w, lo, hi)
	}
	wg.Wait()
	// Sequential scan of the chunk totals.
	offsets := make([]T, workers)
	acc := id
	for w := 0; w < workers; w++ {
		offsets[w] = acc
		acc = op(acc, sums[w])
	}
	total = acc
	// Pass 2: per-chunk exclusive scans seeded by the offsets.
	for w := 0; w < workers; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			acc := offsets[w]
			for i := lo; i < hi; i++ {
				out[i] = acc
				acc = op(acc, xs[i])
			}
		}(w, lo, hi)
	}
	wg.Wait()
	return out, total
}

// ScanInt is Scan specialized to integer addition.
func ScanInt(xs []int) (out []int, total int) {
	return Scan(xs, 0, func(a, b int) int { return a + b })
}

// Filter returns the elements of xs for which keep is true, preserving
// order, using a count-scan-scatter pattern.
func Filter[T any](xs []T, keep func(T) bool) []T {
	n := len(xs)
	flags := make([]int, n)
	For(n, func(i int) {
		if keep(xs[i]) {
			flags[i] = 1
		}
	})
	pos, total := ScanInt(flags)
	out := make([]T, total)
	For(n, func(i int) {
		if flags[i] == 1 {
			out[pos[i]] = xs[i]
		}
	})
	return out
}

// FlattenInto concatenates the groups in parallel via a scan over sizes.
func FlattenInto[T any](groups [][]T) []T {
	sizes := make([]int, len(groups))
	For(len(groups), func(i int) { sizes[i] = len(groups[i]) })
	off, total := ScanInt(sizes)
	out := make([]T, total)
	For(len(groups), func(i int) { copy(out[off[i]:], groups[i]) })
	return out
}
