package parallel

import "sort"

// MergeSort sorts xs stably with a fork-join parallel merge sort — the
// CPU-side sorting primitive behind query-trie construction (the paper
// cites the parallel string sort of [26]; a comparison merge sort over
// word-level comparators achieves the same role on our batch sizes).
// The comparator must be a strict weak ordering.
func MergeSort[T any](xs []T, less func(a, b T) bool) {
	if len(xs) < 2 {
		return
	}
	buf := make([]T, len(xs))
	mergeSortRec(xs, buf, less, maxProcs())
}

// sortGrain is the size below which sort.SliceStable is faster than
// forking.
const sortGrain = 2048

func mergeSortRec[T any](xs, buf []T, less func(a, b T) bool, procs int) {
	if len(xs) <= sortGrain || procs <= 1 {
		sort.SliceStable(xs, func(i, j int) bool { return less(xs[i], xs[j]) })
		return
	}
	mid := len(xs) / 2
	done := make(chan struct{})
	go func() {
		mergeSortRec(xs[:mid], buf[:mid], less, procs/2)
		close(done)
	}()
	mergeSortRec(xs[mid:], buf[mid:], less, procs-procs/2)
	<-done
	// Merge the halves through the buffer.
	i, j, k := 0, mid, 0
	for i < mid && j < len(xs) {
		if less(xs[j], xs[i]) {
			buf[k] = xs[j]
			j++
		} else {
			buf[k] = xs[i]
			i++
		}
		k++
	}
	copy(buf[k:], xs[i:mid])
	copy(buf[k+mid-i:], xs[j:])
	copy(xs, buf)
}
