package hashing

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"github.com/pimlab/pimtrie/internal/bitstr"
)

func randomBits(r *rand.Rand, maxLen int) bitstr.String {
	n := r.Intn(maxLen + 1)
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(r.Intn(2))
	}
	return bitstr.FromBits(b)
}

// naiveHash computes the polynomial hash bit-by-bit, as the definition
// states, to validate the table-driven fast path.
func naiveHash(h *Hasher, s bitstr.String) Value {
	var acc uint64
	for i := 0; i < s.Len(); i++ {
		acc = mulmod(acc, h.base)
		if s.BitAt(i) != 0 {
			acc = addmod(acc, 1)
		}
	}
	return Value{H: acc, Len: s.Len()}
}

func TestHashMatchesNaive(t *testing.T) {
	h := New(42, 0)
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		s := randomBits(r, 400)
		if got, want := h.Hash(s), naiveHash(h, s); got != want {
			t.Fatalf("Hash(%q) = %+v, want %+v", s, got, want)
		}
	}
}

func TestIncrementalDefinition2(t *testing.T) {
	// h(A·B) must equal Extend(h(A), B) for all A, B.
	h := New(7, 0)
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 500; i++ {
		a, b := randomBits(r, 200), randomBits(r, 200)
		direct := h.Hash(a.Concat(b))
		inc := h.Extend(h.Hash(a), b)
		if direct != inc {
			t.Fatalf("Extend broken: A=%q B=%q direct=%+v inc=%+v", a, b, direct, inc)
		}
	}
}

func TestCombineDefinition3(t *testing.T) {
	// ⊕ must compute h(A·B) from the two values alone.
	h := New(9, 0)
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 500; i++ {
		a, b := randomBits(r, 300), randomBits(r, 300)
		if got, want := h.Combine(h.Hash(a), h.Hash(b)), h.Hash(a.Concat(b)); got != want {
			t.Fatalf("Combine broken: %+v vs %+v", got, want)
		}
	}
}

func TestCombineAssociative(t *testing.T) {
	h := New(11, 0)
	r := rand.New(rand.NewSource(4))
	for i := 0; i < 300; i++ {
		a, b, c := h.Hash(randomBits(r, 100)), h.Hash(randomBits(r, 100)), h.Hash(randomBits(r, 100))
		left := h.Combine(h.Combine(a, b), c)
		right := h.Combine(a, h.Combine(b, c))
		if left != right {
			t.Fatalf("⊕ not associative: %+v vs %+v", left, right)
		}
	}
}

func TestCombineIdentity(t *testing.T) {
	h := New(13, 0)
	v := h.Hash(bitstr.MustParse("101001"))
	if got := h.Combine(EmptyValue(), v); got != v {
		t.Errorf("empty ⊕ v = %+v, want %+v", got, v)
	}
	if got := h.Combine(v, EmptyValue()); got != v {
		t.Errorf("v ⊕ empty = %+v, want %+v", got, v)
	}
}

func TestLengthDisambiguatesTrailingZeros(t *testing.T) {
	// "1" and "10" have the same polynomial value times base... they must
	// not collide because Value carries Len and Out mixes it in.
	h := New(17, 0)
	a, b := bitstr.MustParse("0"), bitstr.MustParse("00")
	if h.Hash(a) == h.Hash(b) {
		t.Fatal("values with different lengths compared equal")
	}
	if h.Out(h.Hash(a)) == h.Out(h.Hash(b)) {
		t.Fatal("Out collided on 0 vs 00 (astronomically unlikely)")
	}
}

func TestDifferentSeedsDisagree(t *testing.T) {
	a := New(1, 0)
	b := New(2, 0)
	s := bitstr.MustParse(strings.Repeat("0110", 20))
	if a.Hash(s) == b.Hash(s) {
		t.Fatal("independent seeds produced identical hashes")
	}
}

func TestRehashChangesOut(t *testing.T) {
	// The global re-hash of §4.4.3 is "construct a new Hasher"; verify the
	// outputs actually move.
	s := bitstr.MustParse("110010")
	h1, h2 := New(100, 16), New(101, 16)
	same := 0
	for i := 0; i < 50; i++ {
		v := s.Concat(bitstr.FromUint64(uint64(i), 16))
		if h1.HashOut(v) == h2.HashOut(v) {
			same++
		}
	}
	if same > 10 {
		t.Fatalf("rehash ineffective: %d/50 outputs unchanged", same)
	}
}

func TestNarrowWidthCollides(t *testing.T) {
	// With a 4-bit output, 100 random strings must collide — this is the
	// property the verification tests rely on.
	h := New(5, 4)
	r := rand.New(rand.NewSource(5))
	seen := map[uint64]bitstr.String{}
	collision := false
	for i := 0; i < 100; i++ {
		s := randomBits(r, 64)
		o := h.HashOut(s)
		if prev, ok := seen[o]; ok && !bitstr.Equal(prev, s) {
			collision = true
			break
		}
		seen[o] = s
	}
	if !collision {
		t.Fatal("no collision at width 4 over 100 strings")
	}
	if h.Width() != 4 {
		t.Fatalf("Width() = %d", h.Width())
	}
}

func TestPrefixHashes(t *testing.T) {
	h := New(21, 0)
	r := rand.New(rand.NewSource(6))
	for trial := 0; trial < 50; trial++ {
		s := randomBits(r, 500)
		for _, stride := range []int{1, 7, 64} {
			ph := h.PrefixHashes(s, stride)
			want := s.Len()/stride + 1
			if len(ph) != want {
				t.Fatalf("PrefixHashes len = %d, want %d", len(ph), want)
			}
			for i, v := range ph {
				if direct := h.Hash(s.Prefix(i * stride)); v != direct {
					t.Fatalf("prefix %d (stride %d) = %+v, want %+v", i, stride, v, direct)
				}
			}
		}
	}
}

func TestPowN(t *testing.T) {
	h := New(23, 0)
	acc := uint64(1)
	for n := 0; n < 300; n++ {
		if got := h.powN(n); got != acc {
			t.Fatalf("powN(%d) = %d, want %d", n, got, acc)
		}
		acc = mulmod(acc, h.base)
	}
}

func TestMulmodAgainstBigStyle(t *testing.T) {
	f := func(a, b uint64) bool {
		a %= p
		b %= p
		got := mulmod(a, b)
		// Verify via schoolbook 128-bit reduction: compute a*b mod p with
		// repeated halving (Russian peasant, with addmod).
		var want uint64
		x, y := a, b
		for y > 0 {
			if y&1 == 1 {
				want = addmod(want, x)
			}
			x = addmod(x, x)
			y >>= 1
		}
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestFullPrecisionNoCollisionsOnSmallUniverse(t *testing.T) {
	// All 2^14 strings of length <=13: distinct Out values at full width.
	h := New(77, 0)
	seen := map[uint64]bool{}
	count := 0
	for n := 0; n <= 13; n++ {
		for v := uint64(0); v < 1<<uint(n); v++ {
			o := h.HashOut(bitstr.FromUint64(v, n))
			if seen[o] {
				t.Fatalf("collision at full width on len-%d value %d", n, v)
			}
			seen[o] = true
			count++
		}
	}
	if count != 1<<14-1 {
		t.Fatalf("enumerated %d strings", count)
	}
}

func BenchmarkHash4KBits(b *testing.B) {
	h := New(1, 0)
	s := bitstr.MustParse(strings.Repeat("0110", 1024))
	b.SetBytes(int64(s.Len() / 8))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Hash(s)
	}
}

func BenchmarkCombine(b *testing.B) {
	h := New(1, 0)
	v := h.Hash(bitstr.MustParse(strings.Repeat("01", 500)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		v = h.Combine(v, v)
		v.Len &= 0xffff // keep powN in a sane range
	}
}

func TestShrinkInvertsExtend(t *testing.T) {
	h := New(31, 0)
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		a, b := randomBits(r, 200), randomBits(r, 200)
		ab := h.Extend(h.Hash(a), b)
		got := h.Shrink(ab, b)
		if got != h.Hash(a) {
			t.Fatalf("Shrink(Extend(a,b), b) != Hash(a): A=%q B=%q", a, b)
		}
	}
}

func TestShrinkEmptySuffix(t *testing.T) {
	h := New(33, 0)
	v := h.Hash(bitstr.MustParse("0110"))
	if got := h.Shrink(v, bitstr.Empty); got != v {
		t.Fatalf("Shrink by empty changed value")
	}
}

func TestShrinkWholeString(t *testing.T) {
	h := New(35, 0)
	s := bitstr.MustParse("010111010001")
	if got := h.Shrink(h.Hash(s), s); got != EmptyValue() {
		t.Fatalf("Shrink to empty = %+v", got)
	}
}

func TestShrinkPanicsOnOversizedSuffix(t *testing.T) {
	h := New(37, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	h.Shrink(h.Hash(bitstr.MustParse("01")), bitstr.MustParse("011"))
}
