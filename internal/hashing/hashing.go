// Package hashing implements the binary associatively incremental hash
// function that PIM-trie relies on (paper §4.4, Definitions 2 and 3).
//
// The hash of a bit string b_0 b_1 … b_{n-1} is the polynomial
//
//	h(s) = Σ_i b_i · r^(n-1-i)  (mod p)
//
// over the Mersenne prime field p = 2^61 − 1 with a random base r. This
// gives the two properties the paper needs:
//
//   - incremental (Def. 2):       h(A·B) = h(A)·r^|B| + h(B)
//   - binary associatively
//     incremental (Def. 3):       h(A·B) = h(A) ⊕ h(B) where ⊕ uses only
//     the two hash values and |B|, and is associative. This enables
//     parallel prefix-sum hashing of pivots (Lemma 4.4/4.9).
//
// A Hasher additionally supports a reduced output width so tests can
// force collisions and exercise the verification/redo machinery of the
// trie matching algorithm, and a Rehash seed bump implementing the global
// re-hash of §4.4.3.
package hashing

import (
	"math/bits"

	"github.com/pimlab/pimtrie/internal/bitstr"
)

// p is the Mersenne prime 2^61 - 1; arithmetic mod p reduces with shifts.
const p = (1 << 61) - 1

// mulmod returns a*b mod p using a 128-bit intermediate.
func mulmod(a, b uint64) uint64 {
	hi, lo := bits.Mul64(a, b)
	// a*b = hi·2^64 + lo = hi·8·2^61 + lo, and 2^61 ≡ 1 (mod p).
	r := lo&p + lo>>61 + hi<<3&p + hi>>58
	r = r&p + r>>61
	if r >= p {
		r -= p
	}
	return r
}

func addmod(a, b uint64) uint64 {
	s := a + b
	if s >= p {
		s -= p
	}
	return s
}

// Value is a hash value together with the bit length of the hashed
// string. Carrying the length is what makes ⊕ well defined (Def. 3) and
// it also disambiguates strings that differ only by trailing zero bits.
type Value struct {
	H   uint64
	Len int
}

// Hasher hashes bit strings. Construct with New; the zero value is not
// usable. Hashers are safe for concurrent use after construction.
type Hasher struct {
	base    uint64      // random polynomial base r
	width   uint        // output width in bits, 1..61
	mask    uint64      // (1<<width)-1 applied to Out only
	byteT   [256]uint64 // byteT[b] = Σ bit_j(b)·r^(7-j): per-byte Horner step
	pow8    uint64      // r^8
	pow64   uint64      // r^64
	pows    []uint64    // r^0..r^63 for partial-word steps
	baseInv uint64      // r^(-1), for Shrink
}

// New returns a Hasher with the given seed. Different seeds give
// independent hash functions (the global re-hash of §4.4.3 constructs a
// new Hasher with a fresh seed). Width selects the number of output bits
// exposed by Out, default/max 61; use small widths only in tests.
func New(seed uint64, width uint) *Hasher {
	if width == 0 || width > 61 {
		width = 61
	}
	h := &Hasher{width: width}
	// Derive a base in [2^32, p) from the seed with splitmix64 so that
	// even adjacent seeds give unrelated bases.
	z := seed + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	h.base = z%(p-(1<<32)) + (1 << 32)
	h.mask = (uint64(1) << width) - 1
	h.pows = make([]uint64, 64)
	h.pows[0] = 1
	for i := 1; i < 64; i++ {
		h.pows[i] = mulmod(h.pows[i-1], h.base)
	}
	h.pow8 = h.pows[8]
	h.pow64 = mulmod(h.pows[63], h.base)
	h.baseInv = powmod(h.base, p-2) // Fermat inverse, for Shrink
	for b := 0; b < 256; b++ {
		var v uint64
		for j := 0; j < 8; j++ {
			v = mulmod(v, h.base)
			if b&(1<<uint(j)) != 0 { // bit j of the string byte, LSB-first storage
				v = addmod(v, 1)
			}
		}
		h.byteT[b] = v
	}
	return h
}

// Width returns the configured output width in bits.
func (h *Hasher) Width() uint { return h.width }

// Hash computes the full-precision hash value of s, processing the
// backing words byte-at-a-time via the precomputed table.
func (h *Hasher) Hash(s bitstr.String) Value {
	var acc uint64
	n := s.Len()
	words := s.RawWords()
	full := n >> 6 // complete words
	for i := 0; i < full; i++ {
		w := words[i]
		acc = addmod(mulmod(acc, h.pow8), h.byteT[byte(w)])
		acc = addmod(mulmod(acc, h.pow8), h.byteT[byte(w>>8)])
		acc = addmod(mulmod(acc, h.pow8), h.byteT[byte(w>>16)])
		acc = addmod(mulmod(acc, h.pow8), h.byteT[byte(w>>24)])
		acc = addmod(mulmod(acc, h.pow8), h.byteT[byte(w>>32)])
		acc = addmod(mulmod(acc, h.pow8), h.byteT[byte(w>>40)])
		acc = addmod(mulmod(acc, h.pow8), h.byteT[byte(w>>48)])
		acc = addmod(mulmod(acc, h.pow8), h.byteT[byte(w>>56)])
	}
	for i := full * 64; i < n; i++ {
		acc = mulmod(acc, h.base)
		if s.BitAt(i) != 0 {
			acc = addmod(acc, 1)
		}
	}
	return Value{H: acc, Len: n}
}

// HashRange computes Hash(s.Slice(from, to)) without materializing the
// slice: virtual words are assembled from the packed backing words with
// two shifts and fed through the same byte table as Hash. This is the
// allocation-free kernel under the Op batches — every h.Hash(x.Slice(...))
// pattern on a hot path should be HashRange instead.
func (h *Hasher) HashRange(s bitstr.String, from, to int) Value {
	n := to - from
	if from < 0 || to > s.Len() || n < 0 {
		panic("hashing: HashRange out of range")
	}
	if n == 0 {
		return Value{}
	}
	var acc uint64
	words := s.RawWords()
	base := from >> 6
	shift := uint(from & 63)
	full := n >> 6
	for i := 0; i < full; i++ {
		w := words[base+i] >> shift
		if shift != 0 {
			// In bounds: the virtual word's last bit from+i*64+63 < to <= s.Len().
			w |= words[base+i+1] << (64 - shift)
		}
		acc = addmod(mulmod(acc, h.pow8), h.byteT[byte(w)])
		acc = addmod(mulmod(acc, h.pow8), h.byteT[byte(w>>8)])
		acc = addmod(mulmod(acc, h.pow8), h.byteT[byte(w>>16)])
		acc = addmod(mulmod(acc, h.pow8), h.byteT[byte(w>>24)])
		acc = addmod(mulmod(acc, h.pow8), h.byteT[byte(w>>32)])
		acc = addmod(mulmod(acc, h.pow8), h.byteT[byte(w>>40)])
		acc = addmod(mulmod(acc, h.pow8), h.byteT[byte(w>>48)])
		acc = addmod(mulmod(acc, h.pow8), h.byteT[byte(w>>56)])
	}
	if rem := n & 63; rem != 0 {
		w := s.RangeWord(from+full*64, to)
		for ; rem >= 8; rem -= 8 {
			acc = addmod(mulmod(acc, h.pow8), h.byteT[byte(w)])
			w >>= 8
		}
		for ; rem > 0; rem-- {
			acc = mulmod(acc, h.base)
			if w&1 != 0 {
				acc = addmod(acc, 1)
			}
			w >>= 1
		}
	}
	return Value{H: acc, Len: n}
}

// ExtendRange is Extend(a, s.Slice(from, to)) off the packed words:
// Combine(a, HashRange(s, from, to)) without the intermediate String.
func (h *Hasher) ExtendRange(a Value, s bitstr.String, from, to int) Value {
	b := h.HashRange(s, from, to)
	return Value{H: addmod(mulmod(a.H, h.powN(b.Len)), b.H), Len: a.Len + b.Len}
}

// ShrinkRange is Shrink(ab, s.Slice(from, to)) off the packed words.
func (h *Hasher) ShrinkRange(ab Value, s bitstr.String, from, to int) Value {
	n := to - from
	if n > ab.Len {
		panic("hashing: ShrinkRange suffix longer than the value")
	}
	hb := h.HashRange(s, from, to)
	diff := ab.H + p - hb.H
	if diff >= p {
		diff -= p
	}
	return Value{H: mulmod(diff, h.powInvN(n)), Len: ab.Len - n}
}

// EmptyValue is the hash of the empty string.
func EmptyValue() Value { return Value{} }

// Combine implements the binary associative operation ⊕ of Definition 3:
// Combine(h(A), h(B)) = h(A·B), using only the values and |B|.
func (h *Hasher) Combine(a, b Value) Value {
	return Value{H: addmod(mulmod(a.H, h.powN(b.Len)), b.H), Len: a.Len + b.Len}
}

// ExtendBit extends a hash value by a single bit in O(1); the bit-by-bit
// edge walks of HashMatching (Algorithm 3) use it to enumerate hidden
// node hashes along a compressed edge.
func (h *Hasher) ExtendBit(a Value, bit byte) Value {
	v := mulmod(a.H, h.base)
	if bit != 0 {
		v = addmod(v, 1)
	}
	return Value{H: v, Len: a.Len + 1}
}

// Extend implements the incremental f of Definition 2:
// Extend(h(A), B) = h(A·B) from the value of A and the bits of B.
func (h *Hasher) Extend(a Value, b bitstr.String) Value {
	return h.Combine(a, h.Hash(b))
}

// powN returns base^n mod p, fast for n < 64 via the table and by
// repeated squaring otherwise.
func (h *Hasher) powN(n int) uint64 {
	if n < 64 {
		return h.pows[n]
	}
	acc := uint64(1)
	sq := h.pow64
	k := n >> 6
	for k > 0 {
		if k&1 == 1 {
			acc = mulmod(acc, sq)
		}
		sq = mulmod(sq, sq)
		k >>= 1
	}
	return mulmod(acc, h.pows[n&63])
}

// Shrink is the inverse of Extend: given h(A·B) and the bits of B, it
// recovers h(A). Polynomial hashes are invertible because the base has a
// multiplicative inverse mod p: h(A) = (h(AB) − h(B)) · r^(−|B|).
// PIM-trie uses it to derive pivot-prefix hashes that lie above a block
// root from the root's value and its S_last window (§4.4.2).
func (h *Hasher) Shrink(ab Value, b bitstr.String) Value {
	n := b.Len()
	if n > ab.Len {
		panic("hashing: Shrink suffix longer than the value")
	}
	hb := h.Hash(b)
	diff := ab.H + p - hb.H
	if diff >= p {
		diff -= p
	}
	return Value{H: mulmod(diff, h.powInvN(n)), Len: ab.Len - n}
}

// powInvN returns base^(-n) mod p.
func (h *Hasher) powInvN(n int) uint64 {
	acc := uint64(1)
	sq := h.baseInv
	for k := n; k > 0; k >>= 1 {
		if k&1 == 1 {
			acc = mulmod(acc, sq)
		}
		sq = mulmod(sq, sq)
	}
	return acc
}

// powmod computes b^e mod p by square-and-multiply.
func powmod(b, e uint64) uint64 {
	acc := uint64(1)
	for ; e > 0; e >>= 1 {
		if e&1 == 1 {
			acc = mulmod(acc, b)
		}
		b = mulmod(b, b)
	}
	return acc
}

// Out reduces a hash value to the configured output width. The trie
// matching algorithm compares Out values; with small widths distinct
// strings may collide, which the verification procedure must catch.
func (h *Hasher) Out(v Value) uint64 {
	// Mix before masking so narrow widths still use all input bits.
	z := v.H + 0x9e3779b97f4a7c15*uint64(v.Len+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return z & h.mask
}

// HashOut is shorthand for Out(Hash(s)).
func (h *Hasher) HashOut(s bitstr.String) uint64 { return h.Out(h.Hash(s)) }

// PrefixHashes returns the hash values of every prefix of s whose length
// is a multiple of stride bits (the pivot prefixes of §4.4.2), computed
// in one left-to-right pass: result[i] = Hash(s[:i*stride]).
// The slice has 1+Len/stride entries, starting with the empty prefix.
func (h *Hasher) PrefixHashes(s bitstr.String, stride int) []Value {
	if stride <= 0 {
		panic("hashing: stride must be positive")
	}
	k := s.Len()/stride + 1
	out := make([]Value, k)
	acc := Value{}
	for i := 1; i < k; i++ {
		acc = h.ExtendRange(acc, s, (i-1)*stride, i*stride)
		out[i] = acc
	}
	return out
}
