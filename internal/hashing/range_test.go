package hashing

import (
	"math/rand"
	"testing"

	"github.com/pimlab/pimtrie/internal/bitstr"
)

// TestHashRangeMatchesSlice cross-checks the allocation-free range
// kernels against the Slice-based originals on randomized strings and
// offsets; exact equality is required — Value is a pure function of the
// bit content, so the kernels must be bit-identical.
func TestHashRangeMatchesSlice(t *testing.T) {
	h := New(42, 0)
	r := rand.New(rand.NewSource(20))
	for trial := 0; trial < 3000; trial++ {
		s := randomBits(r, 300)
		if s.Len() == 0 {
			continue
		}
		from := r.Intn(s.Len() + 1)
		to := from + r.Intn(s.Len()-from+1)
		want := h.Hash(s.Slice(from, to))
		if got := h.HashRange(s, from, to); got != want {
			t.Fatalf("HashRange(%d,%d) of %d bits = %+v, want %+v", from, to, s.Len(), got, want)
		}

		a := Value{H: r.Uint64() % p, Len: r.Intn(1000)}
		if got, want := h.ExtendRange(a, s, from, to), h.Extend(a, s.Slice(from, to)); got != want {
			t.Fatalf("ExtendRange(%d,%d) = %+v, want %+v", from, to, got, want)
		}
		ab := Value{H: r.Uint64() % p, Len: to - from + r.Intn(100)}
		if got, want := h.ShrinkRange(ab, s, from, to), h.Shrink(ab, s.Slice(from, to)); got != want {
			t.Fatalf("ShrinkRange(%d,%d) = %+v, want %+v", from, to, got, want)
		}
	}
}

// TestHashRangeBoundaryOffsets pins the word-geometry corner cases:
// word-aligned ranges, intra-word ranges, ranges straddling word
// boundaries, ranges ending exactly at the string end, and empty ranges.
func TestHashRangeBoundaryOffsets(t *testing.T) {
	h := New(7, 0)
	r := rand.New(rand.NewSource(21))
	s := randomBits(r, 0)
	for s.Len() < 200 {
		s = s.Concat(randomBits(r, 80))
	}
	s = s.Prefix(200)
	cases := [][2]int{
		{0, 0}, {0, 64}, {0, 128}, {64, 128}, {64, 192},
		{0, 200}, {64, 200}, {128, 200}, {199, 200}, {200, 200},
		{1, 63}, {1, 64}, {1, 65}, {63, 64}, {63, 65}, {63, 129},
		{5, 5}, {37, 101}, {127, 129}, {191, 200},
	}
	for _, c := range cases {
		want := h.Hash(s.Slice(c[0], c[1]))
		if got := h.HashRange(s, c[0], c[1]); got != want {
			t.Fatalf("HashRange%v = %+v, want %+v", c, got, want)
		}
	}
}

func TestPrefixHashesMatchesDirect(t *testing.T) {
	h := New(9, 0)
	r := rand.New(rand.NewSource(22))
	for trial := 0; trial < 100; trial++ {
		s := randomBits(r, 400)
		stride := 1 + r.Intn(80)
		got := h.PrefixHashes(s, stride)
		for i, v := range got {
			if want := h.Hash(s.Prefix(i * stride)); v != want {
				t.Fatalf("PrefixHashes stride=%d entry %d = %+v, want %+v", stride, i, v, want)
			}
		}
	}
}

func BenchmarkHashRange4KBits(b *testing.B) {
	h := New(1, 0)
	r := rand.New(rand.NewSource(2))
	w := make([]uint64, 64)
	for i := range w {
		w[i] = r.Uint64()
	}
	s := bitstr.New(w, 4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.HashRange(s, 3, 4093)
	}
}
