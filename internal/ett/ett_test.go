package ett

import (
	"math/rand"
	"testing"
)

// refForest is a naive parent-array reference implementation.
type refForest struct {
	parent map[int]int // -1 for roots
}

func newRef() *refForest { return &refForest{parent: map[int]int{}} }

func (r *refForest) add(id int) { r.parent[id] = -1 }

func (r *refForest) root(id int) int {
	for r.parent[id] != -1 {
		id = r.parent[id]
	}
	return id
}

func (r *refForest) connected(a, b int) bool { return r.root(a) == r.root(b) }

func (r *refForest) subtreeSize(id int) int {
	// Count vertices whose root-path passes through id.
	n := 0
	for v := range r.parent {
		for c := v; ; {
			if c == id {
				n++
				break
			}
			c = r.parent[c]
			if c == -1 {
				break
			}
		}
	}
	return n
}

func TestLinkCutAgainstReference(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	f := NewForest(42)
	ref := newRef()
	n := 120
	vs := make([]*Vertex, n)
	for i := 0; i < n; i++ {
		vs[i] = f.AddVertex(i)
		ref.add(i)
	}
	for step := 0; step < 4000; step++ {
		a, b := r.Intn(n), r.Intn(n)
		switch r.Intn(3) {
		case 0: // link if legal
			if ref.parent[a] == -1 && !ref.connected(a, b) {
				f.Link(vs[a], vs[b])
				ref.parent[a] = b
			}
		case 1: // cut if legal
			if ref.parent[a] != -1 {
				f.Cut(vs[a])
				ref.parent[a] = -1
			}
		default: // queries
			if got, want := f.Connected(vs[a], vs[b]), ref.connected(a, b); got != want {
				t.Fatalf("step %d: Connected(%d,%d) = %v, want %v", step, a, b, got, want)
			}
			if got, want := f.Root(vs[a]).Data.(int), ref.root(a); got != want {
				t.Fatalf("step %d: Root(%d) = %d, want %d", step, a, got, want)
			}
			if got, want := f.SubtreeSize(vs[a]), ref.subtreeSize(a); got != want {
				t.Fatalf("step %d: SubtreeSize(%d) = %d, want %d", step, a, got, want)
			}
		}
	}
	// Full sweep at the end.
	for i := 0; i < n; i++ {
		if got, want := f.SubtreeSize(vs[i]), ref.subtreeSize(i); got != want {
			t.Fatalf("final SubtreeSize(%d) = %d, want %d", i, got, want)
		}
		wantP := ref.parent[i]
		p := f.Parent(vs[i])
		if wantP == -1 && p != nil {
			t.Fatalf("Parent(%d) = %v, want nil", i, p.Data)
		}
		if wantP != -1 && (p == nil || p.Data.(int) != wantP) {
			t.Fatalf("Parent(%d) wrong", i)
		}
	}
}

func TestChildrenOrderAndCompleteness(t *testing.T) {
	f := NewForest(7)
	root := f.AddVertex("root")
	var kids []*Vertex
	for i := 0; i < 10; i++ {
		c := f.AddVertex(i)
		f.Link(c, root)
		kids = append(kids, c)
	}
	got := f.Children(root)
	if len(got) != 10 {
		t.Fatalf("Children = %d", len(got))
	}
	seen := map[int]bool{}
	for _, c := range got {
		seen[c.Data.(int)] = true
	}
	if len(seen) != 10 {
		t.Fatal("duplicate or missing children")
	}
	// Grandchildren must not appear.
	g := f.AddVertex("grand")
	f.Link(g, kids[3])
	if len(f.Children(root)) != 10 {
		t.Fatal("grandchild leaked into Children")
	}
	if cs := f.Children(kids[3]); len(cs) != 1 || cs[0] != g {
		t.Fatal("grandchild not under its parent")
	}
}

func TestLinkPanics(t *testing.T) {
	f := NewForest(1)
	a, b, c := f.AddVertex(0), f.AddVertex(1), f.AddVertex(2)
	f.Link(b, a)
	t.Run("nonRootChild", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Fatal("no panic")
			}
		}()
		f.Link(b, c)
	})
	t.Run("cycle", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Fatal("no panic")
			}
		}()
		f.Link(a, b)
	})
	t.Run("cutRoot", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Fatal("no panic")
			}
		}()
		f.Cut(a)
	})
}

func TestDeepChain(t *testing.T) {
	f := NewForest(3)
	n := 5000
	vs := make([]*Vertex, n)
	for i := range vs {
		vs[i] = f.AddVertex(i)
		if i > 0 {
			f.Link(vs[i], vs[i-1])
		}
	}
	if f.SubtreeSize(vs[0]) != n {
		t.Fatalf("chain root subtree = %d", f.SubtreeSize(vs[0]))
	}
	if f.SubtreeSize(vs[n/2]) != n-n/2 {
		t.Fatalf("mid subtree = %d", f.SubtreeSize(vs[n/2]))
	}
	if f.Root(vs[n-1]) != vs[0] {
		t.Fatal("wrong root")
	}
	// Cut the middle: two chains.
	f.Cut(vs[n/2])
	if f.Connected(vs[0], vs[n-1]) {
		t.Fatal("still connected after cut")
	}
	if f.TreeSize(vs[0]) != n/2 || f.TreeSize(vs[n-1]) != n-n/2 {
		t.Fatalf("tree sizes %d/%d", f.TreeSize(vs[0]), f.TreeSize(vs[n-1]))
	}
}

func TestBatchOps(t *testing.T) {
	f := NewForest(9)
	root := f.AddVertex(-1)
	var pairs [][2]*Vertex
	var leaves []*Vertex
	for i := 0; i < 50; i++ {
		v := f.AddVertex(i)
		pairs = append(pairs, [2]*Vertex{v, root})
		leaves = append(leaves, v)
	}
	f.BatchLink(pairs)
	sizes := f.BatchSubtreeSize(leaves)
	for i, s := range sizes {
		if s != 1 {
			t.Fatalf("leaf %d subtree = %d", i, s)
		}
	}
	if f.SubtreeSize(root) != 51 {
		t.Fatalf("root subtree = %d", f.SubtreeSize(root))
	}
	f.BatchCut(leaves[:25])
	if f.SubtreeSize(root) != 26 {
		t.Fatalf("root subtree after cuts = %d", f.SubtreeSize(root))
	}
}

func BenchmarkLinkCut(b *testing.B) {
	f := NewForest(11)
	n := 1 << 12
	vs := make([]*Vertex, n)
	for i := range vs {
		vs[i] = f.AddVertex(i)
		if i > 0 {
			f.Link(vs[i], vs[i/2])
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Cut a leaf (heap indices >= n/2) and reattach it elsewhere.
		v := vs[n/2+i%(n/2)]
		f.Cut(v)
		f.Link(v, vs[i%(n/4)])
	}
}

func BenchmarkSubtreeSize(b *testing.B) {
	f := NewForest(13)
	n := 1 << 14
	vs := make([]*Vertex, n)
	for i := range vs {
		vs[i] = f.AddVertex(i)
		if i > 0 {
			f.Link(vs[i], vs[i/2])
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.SubtreeSize(vs[i%n])
	}
}
