// Package ett implements Euler-tour trees (Tseng, Dhulipala, Blelloch
// [57]; paper §4.4.2 "Efficient Block Partition"): a dynamic rooted
// forest supporting Link, Cut, Connected, Root, and SubtreeSize in
// O(log n) expected time each, plus batch wrappers.
//
// The Euler tour of every tree is kept in a balanced sequence — here a
// treap with parent pointers (the sequential equivalent of the paper's
// skip lists; the interface and costs are what the block-partition
// algorithm needs). Each vertex contributes an "in" and an "out"
// element; a subtree is the contiguous range between its vertex's in and
// out elements, so subtree size is a range count of in-elements.
package ett

import "math/rand"

// Vertex is a forest vertex. Create with Forest.AddVertex.
type Vertex struct {
	in, out *tnode
	// Data is an arbitrary user payload (e.g. a query-trie node).
	Data any
}

// tnode is a treap node representing one Euler tour element.
type tnode struct {
	l, r, p *tnode
	pri     uint64
	size    int // treap nodes in this subtree
	cntIn   int // "in" elements in this subtree
	isIn    bool
	v       *Vertex
}

func (n *tnode) update() {
	n.size, n.cntIn = 1, 0
	if n.isIn {
		n.cntIn = 1
	}
	if n.l != nil {
		n.size += n.l.size
		n.cntIn += n.l.cntIn
		n.l.p = n
	}
	if n.r != nil {
		n.size += n.r.size
		n.cntIn += n.r.cntIn
		n.r.p = n
	}
}

// Forest is a dynamic rooted forest. The zero value is not usable; call
// NewForest.
type Forest struct {
	rng *rand.Rand
	n   int
}

// NewForest returns an empty forest with a deterministic treap seed.
func NewForest(seed int64) *Forest {
	return &Forest{rng: rand.New(rand.NewSource(seed))}
}

// Len returns the number of vertices ever added and still present.
func (f *Forest) Len() int { return f.n }

// AddVertex creates an isolated single-vertex tree.
func (f *Forest) AddVertex(data any) *Vertex {
	v := &Vertex{Data: data}
	v.in = &tnode{pri: f.rng.Uint64(), isIn: true, v: v}
	v.out = &tnode{pri: f.rng.Uint64(), v: v}
	v.in.update()
	v.out.update()
	f.n++
	merge(v.in, v.out)
	return v
}

// treapRoot walks to the sequence root.
func treapRoot(n *tnode) *tnode {
	for n.p != nil {
		n = n.p
	}
	return n
}

// rank returns the number of elements strictly before n in its sequence.
func rank(n *tnode) int {
	r := 0
	if n.l != nil {
		r = n.l.size
	}
	for cur := n; cur.p != nil; cur = cur.p {
		if cur.p.r == cur {
			// The parent and its whole left subtree precede cur's subtree.
			r += cur.p.size - cur.size
		}
	}
	return r
}

// merge concatenates sequences a then b, returning the new root.
func merge(a, b *tnode) *tnode {
	switch {
	case a == nil:
		return b
	case b == nil:
		return a
	}
	if a.pri >= b.pri {
		a.r = merge(a.r, b)
		a.update()
		a.p = nil
		return a
	}
	b.l = merge(a, b.l)
	b.update()
	b.p = nil
	return b
}

// splitAt splits the sequence rooted at t into the first k elements and
// the rest.
func splitAt(t *tnode, k int) (left, right *tnode) {
	if t == nil {
		return nil, nil
	}
	ls := 0
	if t.l != nil {
		ls = t.l.size
	}
	if k <= ls {
		l, r := splitAt(t.l, k)
		t.l = r
		t.update()
		t.p = nil
		if l != nil {
			l.p = nil
		}
		return l, t
	}
	l, r := splitAt(t.r, k-ls-1)
	t.r = l
	t.update()
	t.p = nil
	if r != nil {
		r.p = nil
	}
	return t, r
}

// Connected reports whether u and v are in the same tree.
func (f *Forest) Connected(u, v *Vertex) bool {
	return treapRoot(u.in) == treapRoot(v.in)
}

// Root returns the root vertex of v's tree: the vertex whose in-element
// is first in the tour.
func (f *Forest) Root(v *Vertex) *Vertex {
	n := treapRoot(v.in)
	for n.l != nil {
		n = n.l
	}
	return n.v
}

// IsRoot reports whether v is the root of its tree.
func (f *Forest) IsRoot(v *Vertex) bool { return f.Root(v) == v }

// Link makes root vertex c a child of p. c must be the root of its own
// tree, and p must be in a different tree; Link panics otherwise (both
// conditions indicate caller bugs in the partitioning logic).
func (f *Forest) Link(c, p *Vertex) {
	if !f.IsRoot(c) {
		panic("ett: Link child is not a tree root")
	}
	if f.Connected(c, p) {
		panic("ett: Link would create a cycle")
	}
	tp := treapRoot(p.in)
	a, b := splitAt(tp, rank(p.in)+1)
	merge(merge(a, treapRoot(c.in)), b)
}

// Cut detaches v (which must not be a tree root) from its parent; v's
// subtree becomes its own tree rooted at v.
func (f *Forest) Cut(v *Vertex) {
	if f.IsRoot(v) {
		panic("ett: Cut of a tree root")
	}
	t := treapRoot(v.in)
	i, j := rank(v.in), rank(v.out)
	a, rest := splitAt(t, i)
	mid, b := splitAt(rest, j-i+1)
	_ = mid // mid is v's tour, now its own tree
	merge(a, b)
}

// SubtreeSize returns the number of vertices in v's subtree (including
// v itself).
func (f *Forest) SubtreeSize(v *Vertex) int {
	i, j := rank(v.in), rank(v.out)
	t := treapRoot(v.in)
	return countIn(t, j+1) - countIn(t, i)
}

// TreeSize returns the number of vertices in v's whole tree.
func (f *Forest) TreeSize(v *Vertex) int {
	return treapRoot(v.in).cntIn
}

// countIn returns the number of in-elements among the first k elements.
func countIn(t *tnode, k int) int {
	cnt := 0
	for t != nil && k > 0 {
		ls := 0
		if t.l != nil {
			ls = t.l.size
		}
		if k <= ls {
			t = t.l
			continue
		}
		if t.l != nil {
			cnt += t.l.cntIn
		}
		k -= ls + 1
		if t.isIn {
			cnt++
		}
		t = t.r
	}
	return cnt
}

// Parent returns v's parent vertex, or nil if v is a root. The parent is
// the vertex owning the nearest in-element before v.in whose out-element
// lies after v.out — recovered in O(log n) by scanning left from v.in
// through the treap for the first unmatched in-element.
func (f *Forest) Parent(v *Vertex) *Vertex {
	if f.IsRoot(v) {
		return nil
	}
	// The element immediately before v.in is either the parent's
	// in-element or a sibling subtree's out-element; in the latter case
	// that sibling's in-element's predecessor repeats the situation, so
	// hop over closed subtrees.
	n := prev(v.in)
	for n != nil {
		if n.isIn {
			return n.v
		}
		n = prev(n.v.in)
	}
	return nil
}

// prev returns the element before n in its sequence, or nil.
func prev(n *tnode) *tnode {
	if n.l != nil {
		n = n.l
		for n.r != nil {
			n = n.r
		}
		return n
	}
	for n.p != nil && n.p.l == n {
		n = n.p
	}
	return n.p
}

// Children returns v's children in tour order; an O(subtree) scan used
// by the partitioning logic when it materializes a block.
func (f *Forest) Children(v *Vertex) []*Vertex {
	var out []*Vertex
	n := next(v.in)
	for n != nil && n != v.out {
		if n.isIn {
			out = append(out, n.v)
			n = next(n.v.out)
			continue
		}
		n = next(n)
	}
	return out
}

func next(n *tnode) *tnode {
	if n.r != nil {
		n = n.r
		for n.l != nil {
			n = n.l
		}
		return n
	}
	for n.p != nil && n.p.r == n {
		n = n.p
	}
	return n.p
}

// BatchLink applies Link to each (child, parent) pair; the batch
// interface mirrors [57] even though execution here is sequential.
func (f *Forest) BatchLink(pairs [][2]*Vertex) {
	for _, pr := range pairs {
		f.Link(pr[0], pr[1])
	}
}

// BatchCut applies Cut to every vertex.
func (f *Forest) BatchCut(vs []*Vertex) {
	for _, v := range vs {
		f.Cut(v)
	}
}

// BatchSubtreeSize returns SubtreeSize for every vertex.
func (f *Forest) BatchSubtreeSize(vs []*Vertex) []int {
	out := make([]int, len(vs))
	for i, v := range vs {
		out[i] = f.SubtreeSize(v)
	}
	return out
}
