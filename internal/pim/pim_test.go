package pim

import (
	"sync/atomic"
	"testing"
)

type sizedObj struct{ w int }

func (s sizedObj) SizeWords() int { return s.w }

func TestAllocGetFreeSpace(t *testing.T) {
	s := NewSystem(4)
	m := s.Module(2)
	a := m.Alloc(sizedObj{w: 10})
	b := m.Alloc("plain") // un-Sized values cost one word
	if a.Module != 2 || b.Module != 2 {
		t.Fatalf("addresses on wrong module: %v %v", a, b)
	}
	if m.SpaceWords() != 11 {
		t.Fatalf("space = %d, want 11", m.SpaceWords())
	}
	if got := m.Get(a.ID).(sizedObj); got.w != 10 {
		t.Fatalf("Get returned %+v", got)
	}
	m.Free(a.ID)
	if m.SpaceWords() != 1 {
		t.Fatalf("space after free = %d", m.SpaceWords())
	}
	if m.Objects() != 1 {
		t.Fatalf("objects = %d", m.Objects())
	}
}

func TestGetDanglingPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on dangling Get")
		}
	}()
	NewSystem(1).Module(0).Get(999)
}

func TestDoubleFreePanics(t *testing.T) {
	s := NewSystem(1)
	m := s.Module(0)
	a := m.Alloc(1)
	m.Free(a.ID)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on double free")
		}
	}()
	m.Free(a.ID)
}

func TestResizeReaccounts(t *testing.T) {
	s := NewSystem(1)
	m := s.Module(0)
	obj := &mutableObj{w: 5}
	a := m.Alloc(obj)
	if m.SpaceWords() != 5 {
		t.Fatalf("space = %d", m.SpaceWords())
	}
	obj.w = 50
	m.Resize(a.ID)
	if m.SpaceWords() != 50 {
		t.Fatalf("space after resize = %d", m.SpaceWords())
	}
}

type mutableObj struct{ w int }

func (m *mutableObj) SizeWords() int { return m.w }

func TestRoundAccounting(t *testing.T) {
	s := NewSystem(4, WithSeed(7))
	// Round 1: two tasks to module 0 (3+5 sent, 2+1 recv = 11 IO),
	// one to module 3 (7 sent, 4 recv = 11 IO).
	resps := s.Round([]Task{
		{Module: 0, SendWords: 3, Run: func(m *Module) Resp { m.Work(10); return Resp{RecvWords: 2, Value: "a"} }},
		{Module: 0, SendWords: 5, Run: func(m *Module) Resp { m.Work(20); return Resp{RecvWords: 1} }},
		{Module: 3, SendWords: 7, Run: func(m *Module) Resp { m.Work(5); return Resp{RecvWords: 4} }},
	})
	if resps[0].Value != "a" {
		t.Fatalf("resp order broken: %+v", resps)
	}
	mt := s.Metrics()
	if mt.Rounds != 1 {
		t.Fatalf("rounds = %d", mt.Rounds)
	}
	if mt.IOWords != 22 {
		t.Fatalf("IOWords = %d, want 22", mt.IOWords)
	}
	if mt.IOTime != 11 {
		t.Fatalf("IOTime = %d, want 11 (max module)", mt.IOTime)
	}
	if mt.PIMWork != 35 || mt.PIMTime != 30 {
		t.Fatalf("PIMWork=%d PIMTime=%d, want 35/30", mt.PIMWork, mt.PIMTime)
	}
	if mt.PerModuleIO[0] != 11 || mt.PerModuleIO[3] != 11 || mt.PerModuleIO[1] != 0 {
		t.Fatalf("per-module IO: %v", mt.PerModuleIO)
	}
}

func TestRoundsAccumulateIOTimeAsMaxPerRound(t *testing.T) {
	s := NewSystem(2)
	for i := 0; i < 3; i++ {
		s.Round([]Task{
			{Module: 0, SendWords: 10, Run: func(m *Module) Resp { return Resp{} }},
			{Module: 1, SendWords: 4, Run: func(m *Module) Resp { return Resp{} }},
		})
	}
	mt := s.Metrics()
	if mt.Rounds != 3 || mt.IOTime != 30 || mt.IOWords != 42 {
		t.Fatalf("metrics = %+v", mt)
	}
}

func TestTasksOnSameModuleRunSequentially(t *testing.T) {
	s := NewSystem(1)
	order := make([]int, 0, 100)
	tasks := make([]Task, 100)
	for i := range tasks {
		i := i
		tasks[i] = Task{Module: 0, Run: func(m *Module) Resp {
			order = append(order, i) // safe only if sequential
			return Resp{}
		}}
	}
	s.Round(tasks)
	if len(order) != 100 {
		t.Fatalf("ran %d tasks", len(order))
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("order[%d] = %d: tasks on one module not sequential", i, v)
		}
	}
}

func TestModulesRunConcurrently(t *testing.T) {
	// With P modules and a rendezvous counter, all programs must be in
	// flight at once (they wait for each other), proving cross-module
	// parallelism. Guarded by a generous parallelism cap.
	p := 8
	s := NewSystem(p, WithMaxParallelism(p))
	var arrived int32
	done := make(chan struct{})
	tasks := make([]Task, p)
	for i := range tasks {
		tasks[i] = Task{Module: i, Run: func(m *Module) Resp {
			if atomic.AddInt32(&arrived, 1) == int32(p) {
				close(done)
			}
			<-done
			return Resp{}
		}}
	}
	s.Round(tasks) // would deadlock if modules were serialized
}

func TestBroadcast(t *testing.T) {
	s := NewSystem(5)
	resps := s.Broadcast(3, func(m *Module) Resp {
		m.Work(2)
		return Resp{RecvWords: 1, Value: m.ID()}
	})
	if len(resps) != 5 {
		t.Fatalf("%d resps", len(resps))
	}
	for i, r := range resps {
		if r.Value.(int) != i {
			t.Fatalf("resp %d from module %v", i, r.Value)
		}
	}
	mt := s.Metrics()
	if mt.IOWords != 5*4 || mt.IOTime != 4 {
		t.Fatalf("broadcast accounting: %+v", mt)
	}
}

func TestMetricsSubAndBalance(t *testing.T) {
	s := NewSystem(4)
	s.Round([]Task{{Module: 0, SendWords: 100, Run: func(m *Module) Resp { return Resp{} }}})
	before := s.Metrics()
	s.Round([]Task{
		{Module: 1, SendWords: 10, Run: func(m *Module) Resp { return Resp{} }},
		{Module: 2, SendWords: 10, Run: func(m *Module) Resp { return Resp{} }},
		{Module: 3, SendWords: 10, Run: func(m *Module) Resp { return Resp{} }},
		{Module: 0, SendWords: 10, Run: func(m *Module) Resp { return Resp{} }},
	})
	d := s.Metrics().Sub(before)
	if d.Rounds != 1 || d.IOWords != 40 {
		t.Fatalf("diff = %+v", d)
	}
	if b := d.IOBalance(); b != 1.0 {
		t.Fatalf("balanced round: balance = %f", b)
	}
	// The cumulative metrics are skewed towards module 0.
	if b := s.Metrics().IOBalance(); b <= 2.0 {
		t.Fatalf("skewed cumulative balance = %f, want > 2", b)
	}
}

func TestRandModuleCoversAll(t *testing.T) {
	s := NewSystem(8, WithSeed(42))
	seen := map[int]bool{}
	for i := 0; i < 1000; i++ {
		m := s.RandModule()
		if m < 0 || m >= 8 {
			t.Fatalf("RandModule out of range: %d", m)
		}
		seen[m] = true
	}
	if len(seen) != 8 {
		t.Fatalf("only %d modules drawn", len(seen))
	}
}

func TestCPUWork(t *testing.T) {
	s := NewSystem(1)
	s.CPUWork(5)
	s.CPUWork(7)
	if got := s.Metrics().CPUWork; got != 12 {
		t.Fatalf("CPUWork = %d", got)
	}
}

func TestSpaceWords(t *testing.T) {
	s := NewSystem(3)
	s.Module(0).Alloc(sizedObj{w: 4})
	s.Module(2).Alloc(sizedObj{w: 6})
	total, per := s.SpaceWords()
	if total != 10 || per[0] != 4 || per[1] != 0 || per[2] != 6 {
		t.Fatalf("space: total=%d per=%v", total, per)
	}
}

func TestEmptyRoundCounts(t *testing.T) {
	s := NewSystem(2)
	s.Round(nil)
	if s.Metrics().Rounds != 1 {
		t.Fatal("empty round not counted")
	}
}

func TestMetricsSubMismatchedVectors(t *testing.T) {
	// Snapshots from systems with different module counts (or zero-value
	// snapshots) must diff without panicking: missing entries are zero.
	big := NewSystem(4)
	big.Round([]Task{{Module: 3, SendWords: 9, Run: func(m *Module) Resp { return Resp{} }}})
	small := NewSystem(2)
	small.Round([]Task{{Module: 1, SendWords: 2, Run: func(m *Module) Resp { return Resp{} }}})

	d := big.Metrics().Sub(small.Metrics())
	if len(d.PerModuleIO) != 4 || d.PerModuleIO[3] != 9 || d.PerModuleIO[1] != -2 {
		t.Fatalf("big-small per-module IO = %v", d.PerModuleIO)
	}
	d = small.Metrics().Sub(big.Metrics())
	if len(d.PerModuleIO) != 2 || d.PerModuleIO[1] != 2 {
		t.Fatalf("small-big per-module IO = %v", d.PerModuleIO)
	}
	// Zero-value snapshot on either side.
	d = big.Metrics().Sub(Metrics{})
	if d.PerModuleIO[3] != 9 {
		t.Fatalf("sub of zero snapshot: %v", d.PerModuleIO)
	}
	d = Metrics{}.Sub(big.Metrics())
	if len(d.PerModuleIO) != 0 || d.Rounds != -1 {
		t.Fatalf("zero minus metrics: %+v", d)
	}
}

func TestMetricsAdd(t *testing.T) {
	a := Metrics{Rounds: 1, IOWords: 5, PerModuleIO: []int64{1, 2}, PerModuleWrk: []int64{3}}
	b := Metrics{Rounds: 2, IOWords: 7, PerModuleIO: []int64{10}, PerModuleWrk: []int64{1, 1, 1}}
	s := a.Add(b)
	if s.Rounds != 3 || s.IOWords != 12 {
		t.Fatalf("Add scalars: %+v", s)
	}
	if len(s.PerModuleIO) != 2 || s.PerModuleIO[0] != 11 || s.PerModuleIO[1] != 2 {
		t.Fatalf("Add PerModuleIO: %v", s.PerModuleIO)
	}
	if len(s.PerModuleWrk) != 3 || s.PerModuleWrk[0] != 4 || s.PerModuleWrk[2] != 1 {
		t.Fatalf("Add PerModuleWrk: %v", s.PerModuleWrk)
	}
}

// logRecorder records every hook event for assertions.
type logRecorder struct {
	phases []string
	rounds []RoundTrace
	cpu    int64
}

func (r *logRecorder) BeginPhase(name string)    { r.phases = append(r.phases, "+"+name) }
func (r *logRecorder) EndPhase()                 { r.phases = append(r.phases, "-") }
func (r *logRecorder) RecordRound(tr RoundTrace) { r.rounds = append(r.rounds, tr.Clone()) }
func (r *logRecorder) RecordCPUWork(n int)       { r.cpu += int64(n) }

func TestRecorderObservesRoundsPhasesAndCPU(t *testing.T) {
	s := NewSystem(4)
	rec := &logRecorder{}
	s.SetRecorder(rec)
	end := s.Phase("outer")
	s.Round([]Task{
		{Module: 1, SendWords: 3, Run: func(m *Module) Resp { m.Work(9); return Resp{RecvWords: 2} }},
		{Module: 2, SendWords: 4, Run: func(m *Module) Resp { return Resp{RecvWords: 1} }},
	})
	s.CPUWork(5)
	end()
	s.Round(nil) // empty rounds are reported too
	s.SetRecorder(nil)
	s.Round([]Task{{Module: 0, SendWords: 1, Run: func(m *Module) Resp { return Resp{} }}})

	if len(rec.phases) != 2 || rec.phases[0] != "+outer" || rec.phases[1] != "-" {
		t.Fatalf("phases = %v", rec.phases)
	}
	if len(rec.rounds) != 2 {
		t.Fatalf("recorded %d rounds, want 2", len(rec.rounds))
	}
	tr := rec.rounds[0]
	if tr.MaxIO != 5 || tr.MaxWork != 9 || tr.Work != 9 || tr.SendWords != 7 || tr.RecvWords != 3 {
		t.Fatalf("round trace: %+v", tr)
	}
	if len(tr.ModID) != 2 || tr.ModID[0] != 1 || tr.ModIO[0] != 5 || tr.ModWork[0] != 9 || tr.ModIO[1] != 5 {
		t.Fatalf("sparse per-module: id=%v io=%v work=%v", tr.ModID, tr.ModIO, tr.ModWork)
	}
	if rec.cpu != 5 {
		t.Fatalf("cpu = %d", rec.cpu)
	}
	if rec.rounds[1].Tasks != 0 {
		t.Fatalf("empty round trace: %+v", rec.rounds[1])
	}
}

func TestPhaseWithoutRecorderIsNoop(t *testing.T) {
	s := NewSystem(1)
	end := s.Phase("anything")
	end() // must not panic
}

func TestSystemHook(t *testing.T) {
	var got []*System
	SetSystemHook(func(s *System) { got = append(got, s) })
	defer SetSystemHook(nil)
	a := NewSystem(2)
	b := NewSystem(3)
	if len(got) != 2 || got[0] != a || got[1] != b {
		t.Fatalf("hook saw %d systems", len(got))
	}
	SetSystemHook(nil)
	NewSystem(1)
	if len(got) != 2 {
		t.Fatal("hook ran after removal")
	}
}

func BenchmarkRound64Modules(b *testing.B) {
	s := NewSystem(64)
	tasks := make([]Task, 64)
	for i := range tasks {
		tasks[i] = Task{Module: i, SendWords: 8, Run: func(m *Module) Resp {
			m.Work(100)
			return Resp{RecvWords: 8}
		}}
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Round(tasks)
	}
}

func TestRoundTrace(t *testing.T) {
	s := NewSystem(4)
	s.Round([]Task{{Module: 0, SendWords: 5, Run: func(m *Module) Resp { return Resp{} }}})
	s.StartTrace()
	s.Round([]Task{
		{Module: 1, SendWords: 3, Run: func(m *Module) Resp { m.Work(9); return Resp{RecvWords: 2} }},
		{Module: 2, SendWords: 4, Run: func(m *Module) Resp { return Resp{RecvWords: 1} }},
	})
	s.Round([]Task{{Module: 3, SendWords: 7, Run: func(m *Module) Resp { return Resp{} }}})
	tr := s.StopTrace()
	if len(tr) != 2 {
		t.Fatalf("trace has %d rounds", len(tr))
	}
	if tr[0].Tasks != 2 || tr[0].Modules != 2 || tr[0].SendWords != 7 || tr[0].RecvWords != 3 {
		t.Fatalf("round 1 trace: %+v", tr[0])
	}
	if tr[0].MaxIO != 5 || tr[0].MaxWork != 9 {
		t.Fatalf("round 1 maxima: %+v", tr[0])
	}
	if tr[1].Tasks != 1 || tr[1].SendWords != 7 {
		t.Fatalf("round 2 trace: %+v", tr[1])
	}
	// Recording stopped.
	s.Round(nil)
	if got := s.StopTrace(); got != nil {
		t.Fatalf("trace continued after stop: %v", got)
	}
}
