// Fault injection for the PIM simulator.
//
// Real UPMEM-class deployments lose DPUs: launches fail, modules wedge,
// transfers are cut short. A FaultPlan makes the simulator reproduce
// those failures deterministically — every draw comes from a dedicated
// RNG derived from the system seed, and every draw happens on the host
// at a round boundary, so a chaos run is exactly replayable and its
// model metrics are independent of the module-program parallelism.
package pim

import (
	"fmt"
	"math/rand"
	"sort"
)

// FaultKind classifies an injected fault.
type FaultKind int

const (
	// FaultCrash crash-stops a module: its object memory is wiped and
	// every subsequent round that touches it returns a ModuleLostError
	// until the host calls Respawn.
	FaultCrash FaultKind = iota
	// FaultStraggle multiplies one module's accounted work for a single
	// round by the plan's StraggleFactor, feeding PIMTime and the
	// work-balance counters without losing state.
	FaultStraggle
	// FaultTruncate cuts one task's transfer short: the send is charged
	// but the program does not run; the simulator retries it in an
	// immediately following (fully accounted) round.
	FaultTruncate
)

func (k FaultKind) String() string {
	switch k {
	case FaultCrash:
		return "crash"
	case FaultStraggle:
		return "straggle"
	case FaultTruncate:
		return "truncate"
	}
	return fmt.Sprintf("FaultKind(%d)", int(k))
}

// FaultEvent schedules one fault at a fixed round boundary. An event
// fires at the first round whose index is >= Round (rounds are counted
// by Metrics.Rounds at the time the round starts). Module selects the
// target; a negative Module draws one uniformly from the fault RNG.
type FaultEvent struct {
	Round  int64
	Kind   FaultKind
	Module int
}

// FaultPlan drives deterministic fault injection. Scheduled Events fire
// at their round boundaries; independently, each round draws against
// CrashProb / StraggleProb / TruncateProb (each in [0,1]). All draws
// come from a rand.Rand seeded with Seed — or, when Seed is zero, with
// a value derived from the system seed — so identical plans on
// identical systems inject identical faults.
type FaultPlan struct {
	Seed   int64
	Events []FaultEvent

	CrashProb    float64
	StraggleProb float64
	TruncateProb float64

	// MaxCrashes caps probability-drawn crashes (scheduled crash events
	// are exempt); 0 means unlimited.
	MaxCrashes int

	// StraggleFactor multiplies a straggler's accounted work for the
	// round; 0 means the default of 8.
	StraggleFactor int64
}

// ModuleLostError reports that one or more modules are crash-stopped.
// Round returns it (via TryRound) when a crash fires or when tasks
// target an already-dead module; the round's surviving tasks have run
// and been accounted. Recovery is the caller's job: Respawn the
// modules, rebuild their state, retry the batch.
type ModuleLostError struct {
	Modules []int // dead modules, ascending
	Round   int64 // Metrics.Rounds when the loss was reported
}

func (e *ModuleLostError) Error() string {
	return fmt.Sprintf("pim: module(s) %v crash-stopped (round %d)", e.Modules, e.Round)
}

// InvariantError is a bug trap: a dangling address, a double free, or a
// task targeting a module outside [0, P). These always indicate broken
// index code, never an injected fault — fault handlers must let them
// propagate (they are a distinct type from ModuleLostError precisely so
// chaos harnesses can tell the two apart).
type InvariantError struct {
	Op     string
	Module int
	ID     uint64
	Detail string
}

func (e *InvariantError) Error() string {
	s := fmt.Sprintf("pim: module %d: %s %d", e.Module, e.Op, e.ID)
	if e.Detail != "" {
		s += " (" + e.Detail + ")"
	}
	return s
}

// faultState is a System's live fault-injection state.
type faultState struct {
	plan      FaultPlan
	rng       *rand.Rand
	suspended int // >0 while injection is paused (e.g. during recovery)

	fired       []bool // per scheduled event
	randCrashes int    // probability-drawn crashes, for MaxCrashes
	dead        []bool // per module
	nDead       int
	counts      [3]int64 // injected faults by FaultKind
}

// WithFaults installs a fault plan on the system. The plan's RNG is
// seeded inside NewSystem (after all options ran) so that a zero
// plan.Seed can derive from the system seed regardless of option order.
func WithFaults(plan FaultPlan) Option {
	return func(s *System) {
		if plan.StraggleFactor <= 0 {
			plan.StraggleFactor = 8
		}
		s.faults = &faultState{plan: plan, fired: make([]bool, len(plan.Events))}
	}
}

// FaultsEnabled reports whether a fault plan is installed (suspended or
// not).
func (s *System) FaultsEnabled() bool { return s.faults != nil }

// SuspendFaults pauses fault injection; rounds behave as on a fault-free
// system until the matching ResumeFaults. Calls nest. Recovery code runs
// under suspension so the repair itself cannot be re-injured (and so the
// repair's round count does not consume fault draws).
func (s *System) SuspendFaults() {
	if s.faults != nil {
		s.faults.suspended++
	}
}

// ResumeFaults undoes one SuspendFaults.
func (s *System) ResumeFaults() {
	if s.faults != nil && s.faults.suspended > 0 {
		s.faults.suspended--
	}
}

// DeadModules returns the crash-stopped modules, ascending. It is empty
// on a fault-free or fully recovered system.
func (s *System) DeadModules() []int {
	if s.faults == nil || s.faults.nDead == 0 {
		return nil
	}
	out := make([]int, 0, s.faults.nDead)
	for mi, d := range s.faults.dead {
		if d {
			out = append(out, mi)
		}
	}
	sort.Ints(out)
	return out
}

// FaultCounts returns how many faults of each kind have been injected.
func (s *System) FaultCounts() (crashes, straggles, truncations int64) {
	if s.faults == nil {
		return 0, 0, 0
	}
	c := s.faults.counts
	return c[FaultCrash], c[FaultStraggle], c[FaultTruncate]
}

// Respawn brings crash-stopped modules back with empty memories. Object
// IDs keep advancing from where they were, so stale addresses held by
// the host can never alias a post-respawn allocation — they stay
// dangling and trip an InvariantError if used. The caller rebuilds the
// module's state afterwards.
func (s *System) Respawn(modules ...int) {
	for _, mi := range modules {
		if mi < 0 || mi >= s.p {
			panic(&InvariantError{Op: "respawn of invalid module", Module: mi})
		}
		m := s.modules[mi]
		m.objects = map[uint64]any{}
		m.sizes = map[uint64]int{}
		m.space = 0
		m.work = 0
		if s.faults != nil && s.faults.dead[mi] {
			s.faults.dead[mi] = false
			s.faults.nDead--
		}
	}
}

// faultDecision is one round boundary's draw outcome.
type faultDecision struct {
	crashed  []int // modules newly crashed at this boundary
	straggle int   // module straggling this round, or -1
	truncate bool  // truncate one transfer this round
}

// decide draws this round boundary's faults. The RNG consumption is
// fixed — each enabled probability always costs exactly one Float64 and
// one Intn regardless of outcome, and draws happen in a fixed order
// (scheduled events, crash, straggle, truncate) — so metrics-identical
// executions consume the fault RNG identically and stay replayable.
func (f *faultState) decide(s *System) faultDecision {
	d := faultDecision{straggle: -1}
	r := s.metrics.Rounds
	for i := range f.plan.Events {
		ev := &f.plan.Events[i]
		if f.fired[i] || ev.Round > r {
			continue
		}
		f.fired[i] = true
		mi := ev.Module
		if mi < 0 || mi >= s.p {
			mi = f.rng.Intn(s.p)
		}
		switch ev.Kind {
		case FaultCrash:
			d.crashed = f.crash(s, d.crashed, mi)
		case FaultStraggle:
			if !f.dead[mi] {
				d.straggle = mi
				f.counts[FaultStraggle]++
			}
		case FaultTruncate:
			d.truncate = true
			f.counts[FaultTruncate]++
		}
	}
	if f.plan.CrashProb > 0 {
		x, mi := f.rng.Float64(), f.rng.Intn(s.p)
		if x < f.plan.CrashProb && !f.dead[mi] &&
			(f.plan.MaxCrashes == 0 || f.randCrashes < f.plan.MaxCrashes) {
			f.randCrashes++
			d.crashed = f.crash(s, d.crashed, mi)
		}
	}
	if f.plan.StraggleProb > 0 {
		x, mi := f.rng.Float64(), f.rng.Intn(s.p)
		if x < f.plan.StraggleProb && !f.dead[mi] && d.straggle < 0 {
			d.straggle = mi
			f.counts[FaultStraggle]++
		}
	}
	if f.plan.TruncateProb > 0 {
		if x := f.rng.Float64(); x < f.plan.TruncateProb {
			d.truncate = true
			f.counts[FaultTruncate]++
		}
	}
	return d
}

// crash marks mi dead and wipes its memory, emulating a crash-stop with
// loss of module-local state. nextID is deliberately preserved (see
// Respawn).
func (f *faultState) crash(s *System, acc []int, mi int) []int {
	if f.dead[mi] {
		return acc
	}
	f.dead[mi] = true
	f.nDead++
	f.counts[FaultCrash]++
	m := s.modules[mi]
	m.objects = map[uint64]any{}
	m.sizes = map[uint64]int{}
	m.space = 0
	m.work = 0
	return append(acc, mi)
}

// maxTruncateRetries caps how many times transfers of a single Round
// call can be truncated, so a TruncateProb of 1 still terminates.
const maxTruncateRetries = 8

// roundFaulted is the fault-aware Round path. It draws this boundary's
// faults and, when nothing fires and no module is dead, delegates to
// the normal (parallel) path — fault-free rounds under an active plan
// cost one decide() and nothing else. Otherwise it executes the round
// serially on the host goroutine with its own accounting: sends to dead
// modules are charged but their programs do not run, a straggler's work
// is multiplied, and a truncated task is deferred to an immediately
// following accounted round (which draws its own faults).
func (s *System) roundFaulted(tasks []Task) ([]Resp, error) {
	f := s.faults
	d := f.decide(s)
	if len(d.crashed) == 0 && d.straggle < 0 && !d.truncate && f.nDead == 0 {
		return s.roundNormal(tasks), nil
	}

	for i := range tasks {
		if tasks[i].Module < 0 || tasks[i].Module >= s.p {
			panic(&InvariantError{
				Op: "invalid task target", Module: tasks[i].Module, ID: uint64(i),
				Detail: fmt.Sprintf("task %d of %d", i, len(tasks)),
			})
		}
	}

	resps := make([]Resp, len(tasks))
	pending := make([]int, len(tasks))
	for i := range tasks {
		pending[i] = i
	}
	lostDuringCall := len(d.crashed) > 0
	truncRetries := 0
	observing := s.tracing || s.recorder != nil

	for first := true; first || len(pending) > 0; first = false {
		if !first {
			d = f.decide(s)
			if len(d.crashed) > 0 {
				lostDuringCall = true
			}
		}
		// Pick the truncation victim among pending tasks on live modules.
		truncIdx := -1
		if d.truncate && truncRetries < maxTruncateRetries {
			alive := make([]int, 0, len(pending))
			for _, ti := range pending {
				if !f.dead[tasks[ti].Module] {
					alive = append(alive, ti)
				}
			}
			if len(alive) > 0 {
				truncIdx = alive[f.rng.Intn(len(alive))]
				truncRetries++
			}
		}

		sendBy := make([]int64, s.p)
		recvBy := make([]int64, s.p)
		var retry []int
		for _, ti := range pending {
			t := &tasks[ti]
			sendBy[t.Module] += int64(t.SendWords) // shipped (or cut short) either way
			if f.dead[t.Module] {
				continue // the words vanish into the dead module
			}
			if ti == truncIdx {
				retry = append(retry, ti)
				continue
			}
			if t.Run != nil {
				resps[ti] = t.Run(s.modules[t.Module])
			}
			recvBy[t.Module] += int64(resps[ti].RecvWords)
		}

		// Accounting, serial (this path is off the hot loop by design).
		s.metrics.Rounds++
		var tr RoundTrace
		var maxIO, maxWork, sendW, recvW, workW int64
		nMods := 0
		for mi := 0; mi < s.p; mi++ {
			m := s.modules[mi]
			w := m.work
			m.work = 0
			if mi == d.straggle {
				w *= f.plan.StraggleFactor
			}
			io := sendBy[mi] + recvBy[mi]
			if io == 0 && w == 0 {
				continue
			}
			nMods++
			s.metrics.PerModuleIO[mi] += io
			s.metrics.PerModuleWrk[mi] += w
			s.metrics.IOWords += io
			s.metrics.PIMWork += w
			sendW += sendBy[mi]
			recvW += recvBy[mi]
			workW += w
			if io > maxIO {
				maxIO = io
			}
			if w > maxWork {
				maxWork = w
			}
			if observing {
				tr.ModID = append(tr.ModID, mi)
				tr.ModIO = append(tr.ModIO, io)
				tr.ModWork = append(tr.ModWork, w)
			}
		}
		s.metrics.IOTime += maxIO
		s.metrics.PIMTime += maxWork
		if observing {
			tr.Tasks = len(pending)
			tr.Modules = nMods
			tr.SendWords, tr.RecvWords = sendW, recvW
			tr.MaxIO, tr.MaxWork, tr.Work = maxIO, maxWork, workW
			if s.tracing {
				s.trace = append(s.trace, tr)
			}
			if s.recorder != nil {
				s.recorder.RecordRound(tr)
			}
		}
		pending = retry
	}

	if f.nDead > 0 {
		// Report when this call crashed a module, or when tasks were
		// addressed to a module that is already dead (their replies are
		// zero Resps — the host must not trust them).
		targetedDead := false
		for i := range tasks {
			if f.dead[tasks[i].Module] {
				targetedDead = true
				break
			}
		}
		if lostDuringCall || targetedDead {
			return resps, &ModuleLostError{Modules: s.DeadModules(), Round: s.metrics.Rounds}
		}
	}
	return resps, nil
}
