package pim

// Concurrency stress for the persistent round executor: many rounds of
// tasks piled onto overlapping modules, checked under -race (the CI
// tier-1 run executes this package with the race detector). Tasks on
// one module mutate unsynchronized module state, so any violation of
// the per-module serialization contract shows up as a data race or a
// lost update.

import (
	"testing"
)

// counterObj is deliberately unsynchronized: the Round contract says
// tasks on one module run sequentially, so plain increments must never
// be lost.
type counterObj struct{ n int }

func (c *counterObj) SizeWords() int { return 1 }

func TestRoundStressOverlappingModules(t *testing.T) {
	const (
		p      = 8
		rounds = 300
		tasks  = 64
	)
	sys := NewSystem(p, WithSeed(42), WithMaxParallelism(4))
	defer sys.Close()

	ids := make([]uint64, p)
	setup := make([]Task, p)
	for i := 0; i < p; i++ {
		i := i
		setup[i] = Task{Module: i, SendWords: 1, Run: func(m *Module) Resp {
			return Resp{RecvWords: 1, Value: m.Alloc(&counterObj{})}
		}}
	}
	for i, r := range sys.Round(setup) {
		ids[i] = r.Value.(Addr).ID
	}

	perModule := make([]int, p)
	for round := 0; round < rounds; round++ {
		batch := make([]Task, tasks)
		for i := 0; i < tasks; i++ {
			// Skewed overlap: half the tasks hammer module 0, the rest
			// spread round-robin, so every round mixes a hot module with
			// cold ones.
			mod := 0
			if i%2 == 1 {
				mod = (round + i) % p
			}
			id := ids[mod]
			perModule[mod]++
			batch[i] = Task{Module: mod, SendWords: 1, Run: func(m *Module) Resp {
				c := m.Get(id).(*counterObj)
				c.n++
				m.Work(1)
				return Resp{RecvWords: 1, Value: c.n}
			}}
		}
		sys.Round(batch)
	}

	check := make([]Task, p)
	for i := 0; i < p; i++ {
		id := ids[i]
		check[i] = Task{Module: i, SendWords: 1, Run: func(m *Module) Resp {
			return Resp{RecvWords: 1, Value: m.Get(id).(*counterObj).n}
		}}
	}
	for i, r := range sys.Round(check) {
		if got := r.Value.(int); got != perModule[i] {
			t.Errorf("module %d: lost updates: counter=%d want %d", i, got, perModule[i])
		}
	}
	m := sys.Metrics()
	if want := int64(rounds + 2); m.Rounds != want {
		t.Errorf("rounds: got %d want %d", m.Rounds, want)
	}
	if want := int64(rounds * tasks); m.PIMWork != want {
		t.Errorf("PIMWork: got %d want %d", m.PIMWork, want)
	}
}

// TestRoundStressSingleTask drives the inline fast path (one busy
// module) interleaved with fan-out rounds, ensuring the two execution
// paths share scratch without corrupting accounting.
func TestRoundStressSingleTask(t *testing.T) {
	const p = 4
	sys := NewSystem(p, WithSeed(7), WithMaxParallelism(4))
	defer sys.Close()
	var pimWork int64
	for round := 0; round < 200; round++ {
		if round%3 == 0 {
			batch := make([]Task, p)
			for i := 0; i < p; i++ {
				batch[i] = Task{Module: i, SendWords: 1, Run: func(m *Module) Resp {
					m.Work(2)
					return Resp{RecvWords: 1}
				}}
			}
			sys.Round(batch)
			pimWork += 2 // max per module, all equal
		} else {
			sys.Round([]Task{{Module: round % p, SendWords: 1, Run: func(m *Module) Resp {
				m.Work(1)
				return Resp{RecvWords: 1}
			}}})
			pimWork++
		}
	}
	if got := sys.Metrics().PIMTime; got != pimWork {
		t.Errorf("PIMTime: got %d want %d", got, pimWork)
	}
}
