// Package pim is an instrumented, in-process simulator of the
// Processing-in-Memory Model of Kang et al. (SPAA 2021), the cost model in
// which PIM-trie is designed and analyzed (paper §2).
//
// The model consists of a host CPU and P PIM modules. Each module couples
// a private memory with a weak general-purpose processor; only the host
// can move data between its cache and module memories, and execution
// proceeds in BSP-style rounds: the host writes buffers to modules,
// launches module programs, waits, and reads buffers back.
//
// This simulator substitutes for real PIM hardware (UPMEM-class systems).
// It preserves precisely the quantities the paper's theorems bound:
//
//   - IO rounds     — number of BSP supersteps,
//   - IO time       — Σ over rounds of max words to/from any one module,
//   - IO volume     — total words transferred,
//   - PIM time      — Σ over rounds of max accounted work on any module,
//   - CPU work      — host-side accounted operations,
//   - space         — words of module memory in use.
//
// Module programs run as real Go closures on per-module goroutines, so
// wall-clock also benefits from module parallelism, but all reproduction
// claims are made on the model metrics above.
package pim

import (
	"fmt"
	"math/rand"
	"sync"
)

// Addr names an object living in some module's memory: the (PIM module
// ID, local memory address) pair of §4.
type Addr struct {
	Module int
	ID     uint64
}

// NilAddr is the zero Addr, used as a null pointer.
var NilAddr = Addr{Module: -1}

// IsNil reports whether a is the null address.
func (a Addr) IsNil() bool { return a.Module < 0 }

func (a Addr) String() string { return fmt.Sprintf("pim(%d:%d)", a.Module, a.ID) }

// Sized is implemented by objects that know their PIM-memory footprint in
// machine words; Alloc falls back to one word for other values.
type Sized interface {
	SizeWords() int
}

// Module is one PIM module: local object memory plus a work counter for
// the program currently running on it. Module methods must only be called
// from code executing inside a Round on this module, or from the host
// strictly for accounting-free setup/teardown.
type Module struct {
	id      int
	objects map[uint64]any
	sizes   map[uint64]int
	nextID  uint64
	space   int // words currently allocated

	work int64 // work accounted in the current round
}

// ID returns the module's index in [0, P).
func (m *Module) ID() int { return m.id }

// Alloc stores obj in module memory and returns its address.
func (m *Module) Alloc(obj any) Addr {
	m.nextID++
	id := m.nextID
	m.objects[id] = obj
	sz := sizeOf(obj)
	m.sizes[id] = sz
	m.space += sz
	return Addr{Module: m.id, ID: id}
}

// Get loads the object at id; it panics on a dangling address, which
// always indicates a bug in the index code.
func (m *Module) Get(id uint64) any {
	obj, ok := m.objects[id]
	if !ok {
		panic(fmt.Sprintf("pim: module %d: dangling address %d", m.id, id))
	}
	return obj
}

// Resize re-accounts the space of the object at id after a mutation.
func (m *Module) Resize(id uint64) {
	obj, ok := m.objects[id]
	if !ok {
		panic(fmt.Sprintf("pim: module %d: resize of dangling address %d", m.id, id))
	}
	m.space -= m.sizes[id]
	sz := sizeOf(obj)
	m.sizes[id] = sz
	m.space += sz
}

// Free releases the object at id.
func (m *Module) Free(id uint64) {
	if _, ok := m.objects[id]; !ok {
		panic(fmt.Sprintf("pim: module %d: double free of %d", m.id, id))
	}
	m.space -= m.sizes[id]
	delete(m.objects, id)
	delete(m.sizes, id)
}

// Work accounts n instructions of PIM-processor work for the current
// round's program.
func (m *Module) Work(n int) { m.work += int64(n) }

// SpaceWords returns the words of module memory currently allocated.
func (m *Module) SpaceWords() int { return m.space }

// Objects returns the number of live objects (diagnostics only).
func (m *Module) Objects() int { return len(m.objects) }

// Each visits every live object (diagnostics only; never accounted).
func (m *Module) Each(fn func(obj any)) {
	for _, o := range m.objects {
		fn(o)
	}
}

// EachID visits every live object with its local address; for module
// programs that sweep their own memory (e.g. bulk teardown).
func (m *Module) EachID(fn func(id uint64, obj any)) {
	for id, o := range m.objects {
		fn(id, o)
	}
}

func sizeOf(obj any) int {
	if s, ok := obj.(Sized); ok {
		if w := s.SizeWords(); w > 0 {
			return w
		}
		return 1
	}
	return 1
}

// Task is one host→module interaction inside a round: the host ships
// SendWords words of input to module Module, the module runs Run, and the
// host reads back the reply. Several tasks may target the same module in
// one round; they execute sequentially on that module.
type Task struct {
	Module    int
	SendWords int
	Run       func(m *Module) Resp
}

// Resp is a module program's reply: RecvWords words are read back by the
// host; Value carries the decoded payload for the host's continuation.
type Resp struct {
	RecvWords int
	Value     any
}

// Metrics is a snapshot of the model's cumulative cost counters.
type Metrics struct {
	Rounds       int64 // BSP supersteps executed
	IOTime       int64 // Σ_r max_m (words to+from module m in round r)
	IOWords      int64 // total words moved CPU↔PIM
	PIMTime      int64 // Σ_r max_m (work on module m in round r)
	PIMWork      int64 // total accounted PIM work
	CPUWork      int64 // total accounted CPU work
	PerModuleIO  []int64
	PerModuleWrk []int64
}

// Sub returns m - s, the cost incurred between two snapshots. The
// per-module vectors are subtracted index-wise up to the shorter length,
// so snapshots taken from systems with different module counts (or
// zero-value snapshots with no vectors at all) diff without panicking:
// missing entries count as zero.
func (m Metrics) Sub(s Metrics) Metrics {
	d := Metrics{
		Rounds:  m.Rounds - s.Rounds,
		IOTime:  m.IOTime - s.IOTime,
		IOWords: m.IOWords - s.IOWords,
		PIMTime: m.PIMTime - s.PIMTime,
		PIMWork: m.PIMWork - s.PIMWork,
		CPUWork: m.CPUWork - s.CPUWork,
	}
	d.PerModuleIO = make([]int64, len(m.PerModuleIO))
	for i, v := range m.PerModuleIO {
		if i < len(s.PerModuleIO) {
			v -= s.PerModuleIO[i]
		}
		d.PerModuleIO[i] = v
	}
	d.PerModuleWrk = make([]int64, len(m.PerModuleWrk))
	for i, v := range m.PerModuleWrk {
		if i < len(s.PerModuleWrk) {
			v -= s.PerModuleWrk[i]
		}
		d.PerModuleWrk[i] = v
	}
	return d
}

// Add returns m + s; per-module vectors are summed index-wise over the
// longer of the two (the inverse of Sub's guard).
func (m Metrics) Add(s Metrics) Metrics {
	d := Metrics{
		Rounds:  m.Rounds + s.Rounds,
		IOTime:  m.IOTime + s.IOTime,
		IOWords: m.IOWords + s.IOWords,
		PIMTime: m.PIMTime + s.PIMTime,
		PIMWork: m.PIMWork + s.PIMWork,
		CPUWork: m.CPUWork + s.CPUWork,
	}
	n := len(m.PerModuleIO)
	if len(s.PerModuleIO) > n {
		n = len(s.PerModuleIO)
	}
	d.PerModuleIO = make([]int64, n)
	for i := range d.PerModuleIO {
		if i < len(m.PerModuleIO) {
			d.PerModuleIO[i] += m.PerModuleIO[i]
		}
		if i < len(s.PerModuleIO) {
			d.PerModuleIO[i] += s.PerModuleIO[i]
		}
	}
	n = len(m.PerModuleWrk)
	if len(s.PerModuleWrk) > n {
		n = len(s.PerModuleWrk)
	}
	d.PerModuleWrk = make([]int64, n)
	for i := range d.PerModuleWrk {
		if i < len(m.PerModuleWrk) {
			d.PerModuleWrk[i] += m.PerModuleWrk[i]
		}
		if i < len(s.PerModuleWrk) {
			d.PerModuleWrk[i] += s.PerModuleWrk[i]
		}
	}
	return d
}

// IOBalance returns P·max_m(io_m)/Σ_m(io_m), the load-imbalance factor of
// the communication: 1.0 is perfect balance, P is total serialization.
// It returns 1 when no IO occurred.
func (m Metrics) IOBalance() float64 {
	var max, sum int64
	for _, v := range m.PerModuleIO {
		if v > max {
			max = v
		}
		sum += v
	}
	if sum == 0 {
		return 1
	}
	return float64(max) * float64(len(m.PerModuleIO)) / float64(sum)
}

// WorkBalance is IOBalance for PIM work.
func (m Metrics) WorkBalance() float64 {
	var max, sum int64
	for _, v := range m.PerModuleWrk {
		if v > max {
			max = v
		}
		sum += v
	}
	if sum == 0 {
		return 1
	}
	return float64(max) * float64(len(m.PerModuleWrk)) / float64(sum)
}

// RoundTrace describes one executed BSP round for diagnostics.
type RoundTrace struct {
	Tasks     int
	Modules   int   // distinct modules addressed
	SendWords int64 // total words shipped to modules
	RecvWords int64 // total words read back
	MaxIO     int64 // busiest module's words (to+from)
	MaxWork   int64 // busiest module's accounted work
	Work      int64 // total accounted module work this round

	// Sparse per-module breakdown: ModID lists the modules addressed this
	// round; ModIO[j] and ModWork[j] are module ModID[j]'s words (to+from)
	// and accounted work. Populated only while tracing or while a Recorder
	// is attached.
	ModID   []int
	ModIO   []int64
	ModWork []int64
}

// Recorder observes a System's execution: phase open/close markers,
// every executed round (with its per-module breakdown), and host-side
// work accounting. It is the hook by which external attribution layers
// (internal/obs) attach without this package importing them. All methods
// are invoked synchronously from the host goroutine driving the system:
// a Recorder needs no locking against the system itself, only against
// its own concurrent readers.
type Recorder interface {
	// BeginPhase opens a named phase; phases nest (LIFO).
	BeginPhase(name string)
	// EndPhase closes the innermost open phase.
	EndPhase()
	// RecordRound is called after each executed round's accounting.
	RecordRound(tr RoundTrace)
	// RecordCPUWork is called for each CPUWork accounting event.
	RecordCPUWork(n int)
}

// System is a host CPU plus P PIM modules.
type System struct {
	p       int
	modules []*Module
	rng     *rand.Rand
	rngMu   sync.Mutex
	metrics Metrics
	maxPar  int // cap on concurrently running module goroutines

	trace   []RoundTrace
	tracing bool

	recorder Recorder
}

// systemHook, set via SetSystemHook, is invoked synchronously at the end
// of every NewSystem call. Observability tooling (cmd/pimbench -trace)
// uses it to attach a Recorder to each system an experiment creates
// internally, without threading a handle through every constructor.
var (
	systemHookMu sync.Mutex
	systemHook   func(*System)
)

// SetSystemHook installs (or, with nil, removes) the global new-system
// hook. The hook runs synchronously inside NewSystem.
func SetSystemHook(h func(*System)) {
	systemHookMu.Lock()
	systemHook = h
	systemHookMu.Unlock()
}

// Option configures a System.
type Option func(*System)

// WithSeed fixes the seed of the host's placement RNG (RandModule).
func WithSeed(seed int64) Option {
	return func(s *System) { s.rng = rand.New(rand.NewSource(seed)) }
}

// WithMaxParallelism caps how many module programs run concurrently;
// useful to keep tests deterministic in scheduling-sensitive scenarios.
func WithMaxParallelism(n int) Option {
	return func(s *System) {
		if n > 0 {
			s.maxPar = n
		}
	}
}

// NewSystem creates a system with p PIM modules.
func NewSystem(p int, opts ...Option) *System {
	if p <= 0 {
		panic("pim: need at least one module")
	}
	s := &System{
		p:      p,
		rng:    rand.New(rand.NewSource(1)),
		maxPar: 64,
	}
	s.modules = make([]*Module, p)
	for i := range s.modules {
		s.modules[i] = &Module{id: i, objects: map[uint64]any{}, sizes: map[uint64]int{}}
	}
	s.metrics.PerModuleIO = make([]int64, p)
	s.metrics.PerModuleWrk = make([]int64, p)
	systemHookMu.Lock()
	hook := systemHook
	systemHookMu.Unlock()
	if hook != nil {
		hook(s)
	}
	return s
}

// SetRecorder attaches (or, with nil, detaches) a Recorder. Only one
// recorder is active at a time; attaching replaces the previous one.
func (s *System) SetRecorder(r Recorder) { s.recorder = r }

// Phase opens a named phase on the attached recorder and returns the
// closure that ends it, for use as `defer sys.Phase("lcp")()`. Without a
// recorder it is a near-free no-op, so algorithm code can annotate
// unconditionally.
func (s *System) Phase(name string) func() {
	r := s.recorder
	if r == nil {
		return noopPhaseEnd
	}
	r.BeginPhase(name)
	return func() { r.EndPhase() }
}

var noopPhaseEnd = func() {}

// P returns the number of PIM modules.
func (s *System) P() int { return s.p }

// RandModule draws a uniformly random module index from the host's
// placement RNG; all "distribute uniformly randomly" steps use it.
func (s *System) RandModule() int {
	s.rngMu.Lock()
	defer s.rngMu.Unlock()
	return s.rng.Intn(s.p)
}

// CPUWork accounts n host-side operations.
func (s *System) CPUWork(n int) {
	s.metrics.CPUWork += int64(n)
	if s.recorder != nil {
		s.recorder.RecordCPUWork(n)
	}
}

// Metrics returns a snapshot of the cumulative counters.
func (s *System) Metrics() Metrics {
	m := s.metrics
	m.PerModuleIO = append([]int64(nil), s.metrics.PerModuleIO...)
	m.PerModuleWrk = append([]int64(nil), s.metrics.PerModuleWrk...)
	return m
}

// SpaceWords returns total and per-module words of PIM memory in use.
func (s *System) SpaceWords() (total int, per []int) {
	per = make([]int, s.p)
	for i, m := range s.modules {
		per[i] = m.space
		total += m.space
	}
	return total, per
}

// Module returns module i for host-side setup that is deliberately not
// accounted (e.g., constructing initial state in tests). Algorithm code
// must access modules only through Round.
func (s *System) Module(i int) *Module { return s.modules[i] }

// Round executes one BSP superstep: all tasks' inputs are shipped, module
// programs run (in parallel across modules, sequentially within one
// module), and replies are read back. It returns the replies in task
// order and updates every cost counter.
func (s *System) Round(tasks []Task) []Resp {
	resps := make([]Resp, len(tasks))
	if len(tasks) == 0 {
		// An empty round still synchronizes; count it to keep algorithms
		// honest about their round structure.
		s.metrics.Rounds++
		if s.tracing {
			s.trace = append(s.trace, RoundTrace{})
		}
		if s.recorder != nil {
			s.recorder.RecordRound(RoundTrace{})
		}
		return resps
	}
	perModule := make([][]int, s.p)
	for i, t := range tasks {
		if t.Module < 0 || t.Module >= s.p {
			panic(fmt.Sprintf("pim: task %d targets invalid module %d", i, t.Module))
		}
		perModule[t.Module] = append(perModule[t.Module], i)
	}

	sem := make(chan struct{}, s.maxPar)
	var wg sync.WaitGroup
	for mi, idxs := range perModule {
		if len(idxs) == 0 {
			continue
		}
		wg.Add(1)
		go func(mod *Module, idxs []int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			for _, ti := range idxs {
				if tasks[ti].Run != nil {
					resps[ti] = tasks[ti].Run(mod)
				}
			}
		}(s.modules[mi], idxs)
	}
	wg.Wait()

	// Accounting (host side, after the barrier).
	s.metrics.Rounds++
	observing := s.tracing || s.recorder != nil
	var roundMaxIO, roundMaxWork, sendW, recvW, workW int64
	busy := 0
	var modID []int
	var modIO, modWork []int64
	for mi, idxs := range perModule {
		if len(idxs) == 0 {
			continue
		}
		busy++
		var io int64
		for _, ti := range idxs {
			io += int64(tasks[ti].SendWords) + int64(resps[ti].RecvWords)
			sendW += int64(tasks[ti].SendWords)
			recvW += int64(resps[ti].RecvWords)
		}
		w := s.modules[mi].work
		s.modules[mi].work = 0
		s.metrics.PerModuleIO[mi] += io
		s.metrics.PerModuleWrk[mi] += w
		s.metrics.IOWords += io
		s.metrics.PIMWork += w
		workW += w
		if io > roundMaxIO {
			roundMaxIO = io
		}
		if w > roundMaxWork {
			roundMaxWork = w
		}
		if observing {
			modID = append(modID, mi)
			modIO = append(modIO, io)
			modWork = append(modWork, w)
		}
	}
	s.metrics.IOTime += roundMaxIO
	s.metrics.PIMTime += roundMaxWork
	if observing {
		tr := RoundTrace{
			Tasks: len(tasks), Modules: busy,
			SendWords: sendW, RecvWords: recvW,
			MaxIO: roundMaxIO, MaxWork: roundMaxWork, Work: workW,
			ModID: modID, ModIO: modIO, ModWork: modWork,
		}
		if s.tracing {
			s.trace = append(s.trace, tr)
		}
		if s.recorder != nil {
			s.recorder.RecordRound(tr)
		}
	}
	return resps
}

// StartTrace begins recording a RoundTrace per executed round; it resets
// any previous trace. StopTrace returns and clears the recording.
func (s *System) StartTrace() { s.tracing, s.trace = true, nil }

// StopTrace ends recording and returns the rounds observed since
// StartTrace.
func (s *System) StopTrace() []RoundTrace {
	out := s.trace
	s.tracing, s.trace = false, nil
	return out
}

// Broadcast runs one round with the same program on every module, shipping
// sendWords words to each (e.g., replicating the master-tree, §4.4).
func (s *System) Broadcast(sendWords int, run func(m *Module) Resp) []Resp {
	tasks := make([]Task, s.p)
	for i := range tasks {
		tasks[i] = Task{Module: i, SendWords: sendWords, Run: run}
	}
	return s.Round(tasks)
}
