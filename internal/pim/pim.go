// Package pim is an instrumented, in-process simulator of the
// Processing-in-Memory Model of Kang et al. (SPAA 2021), the cost model in
// which PIM-trie is designed and analyzed (paper §2).
//
// The model consists of a host CPU and P PIM modules. Each module couples
// a private memory with a weak general-purpose processor; only the host
// can move data between its cache and module memories, and execution
// proceeds in BSP-style rounds: the host writes buffers to modules,
// launches module programs, waits, and reads buffers back.
//
// This simulator substitutes for real PIM hardware (UPMEM-class systems).
// It preserves precisely the quantities the paper's theorems bound:
//
//   - IO rounds     — number of BSP supersteps,
//   - IO time       — Σ over rounds of max words to/from any one module,
//   - IO volume     — total words transferred,
//   - PIM time      — Σ over rounds of max accounted work on any module,
//   - CPU work      — host-side accounted operations,
//   - space         — words of module memory in use.
//
// Module programs run as real Go closures on a persistent pool of
// worker goroutines (one job per busy module per round), so wall-clock
// also benefits from module parallelism, but all reproduction claims
// are made on the model metrics above. Model metrics are deterministic
// for a fixed seed regardless of the parallelism level: module programs
// are data-race-free by contract, and all accounting happens on the
// host after the round barrier.
package pim

import (
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"sync"

	"github.com/pimlab/pimtrie/internal/parallel"
)

// Addr names an object living in some module's memory: the (PIM module
// ID, local memory address) pair of §4.
type Addr struct {
	Module int
	ID     uint64
}

// NilAddr is the zero Addr, used as a null pointer.
var NilAddr = Addr{Module: -1}

// IsNil reports whether a is the null address.
func (a Addr) IsNil() bool { return a.Module < 0 }

func (a Addr) String() string { return fmt.Sprintf("pim(%d:%d)", a.Module, a.ID) }

// Sized is implemented by objects that know their PIM-memory footprint in
// machine words; Alloc falls back to one word for other values.
type Sized interface {
	SizeWords() int
}

// Module is one PIM module: local object memory plus a work counter for
// the program currently running on it. Module methods must only be called
// from code executing inside a Round on this module, or from the host
// strictly for accounting-free setup/teardown.
type Module struct {
	id      int
	objects map[uint64]any
	sizes   map[uint64]int
	nextID  uint64
	space   int // words currently allocated

	work int64 // work accounted in the current round
}

// ID returns the module's index in [0, P).
func (m *Module) ID() int { return m.id }

// Alloc stores obj in module memory and returns its address.
func (m *Module) Alloc(obj any) Addr {
	m.nextID++
	id := m.nextID
	m.objects[id] = obj
	sz := sizeOf(obj)
	m.sizes[id] = sz
	m.space += sz
	return Addr{Module: m.id, ID: id}
}

// Get loads the object at id; it panics on a dangling address, which
// always indicates a bug in the index code.
func (m *Module) Get(id uint64) any {
	obj, ok := m.objects[id]
	if !ok {
		panic(&InvariantError{Op: "dangling address", Module: m.id, ID: id})
	}
	return obj
}

// Resize re-accounts the space of the object at id after a mutation.
func (m *Module) Resize(id uint64) {
	obj, ok := m.objects[id]
	if !ok {
		panic(&InvariantError{Op: "resize of dangling address", Module: m.id, ID: id})
	}
	m.space -= m.sizes[id]
	sz := sizeOf(obj)
	m.sizes[id] = sz
	m.space += sz
}

// Free releases the object at id.
func (m *Module) Free(id uint64) {
	if _, ok := m.objects[id]; !ok {
		panic(&InvariantError{Op: "double free", Module: m.id, ID: id})
	}
	m.space -= m.sizes[id]
	delete(m.objects, id)
	delete(m.sizes, id)
}

// Work accounts n instructions of PIM-processor work for the current
// round's program.
func (m *Module) Work(n int) { m.work += int64(n) }

// SpaceWords returns the words of module memory currently allocated.
func (m *Module) SpaceWords() int { return m.space }

// Objects returns the number of live objects (diagnostics only).
func (m *Module) Objects() int { return len(m.objects) }

// Each visits every live object (diagnostics only; never accounted).
func (m *Module) Each(fn func(obj any)) {
	for _, o := range m.objects {
		fn(o)
	}
}

// EachID visits every live object with its local address; for module
// programs that sweep their own memory (e.g. bulk teardown).
func (m *Module) EachID(fn func(id uint64, obj any)) {
	for id, o := range m.objects {
		fn(id, o)
	}
}

func sizeOf(obj any) int {
	if s, ok := obj.(Sized); ok {
		if w := s.SizeWords(); w > 0 {
			return w
		}
		return 1
	}
	return 1
}

// Task is one host→module interaction inside a round: the host ships
// SendWords words of input to module Module, the module runs Run, and the
// host reads back the reply. Several tasks may target the same module in
// one round; they execute sequentially on that module.
type Task struct {
	Module    int
	SendWords int
	Run       func(m *Module) Resp
}

// Resp is a module program's reply: RecvWords words are read back by the
// host; Value carries the decoded payload for the host's continuation.
type Resp struct {
	RecvWords int
	Value     any
}

// Metrics is a snapshot of the model's cumulative cost counters.
type Metrics struct {
	Rounds       int64 // BSP supersteps executed
	IOTime       int64 // Σ_r max_m (words to+from module m in round r)
	IOWords      int64 // total words moved CPU↔PIM
	PIMTime      int64 // Σ_r max_m (work on module m in round r)
	PIMWork      int64 // total accounted PIM work
	CPUWork      int64 // total accounted CPU work
	PerModuleIO  []int64
	PerModuleWrk []int64
}

// Sub returns m - s, the cost incurred between two snapshots. The
// per-module vectors are subtracted index-wise up to the shorter length,
// so snapshots taken from systems with different module counts (or
// zero-value snapshots with no vectors at all) diff without panicking:
// missing entries count as zero.
func (m Metrics) Sub(s Metrics) Metrics {
	d := Metrics{
		Rounds:  m.Rounds - s.Rounds,
		IOTime:  m.IOTime - s.IOTime,
		IOWords: m.IOWords - s.IOWords,
		PIMTime: m.PIMTime - s.PIMTime,
		PIMWork: m.PIMWork - s.PIMWork,
		CPUWork: m.CPUWork - s.CPUWork,
	}
	d.PerModuleIO = make([]int64, len(m.PerModuleIO))
	for i, v := range m.PerModuleIO {
		if i < len(s.PerModuleIO) {
			v -= s.PerModuleIO[i]
		}
		d.PerModuleIO[i] = v
	}
	d.PerModuleWrk = make([]int64, len(m.PerModuleWrk))
	for i, v := range m.PerModuleWrk {
		if i < len(s.PerModuleWrk) {
			v -= s.PerModuleWrk[i]
		}
		d.PerModuleWrk[i] = v
	}
	return d
}

// Add returns m + s; per-module vectors are summed index-wise over the
// longer of the two (the inverse of Sub's guard).
func (m Metrics) Add(s Metrics) Metrics {
	d := Metrics{
		Rounds:  m.Rounds + s.Rounds,
		IOTime:  m.IOTime + s.IOTime,
		IOWords: m.IOWords + s.IOWords,
		PIMTime: m.PIMTime + s.PIMTime,
		PIMWork: m.PIMWork + s.PIMWork,
		CPUWork: m.CPUWork + s.CPUWork,
	}
	n := len(m.PerModuleIO)
	if len(s.PerModuleIO) > n {
		n = len(s.PerModuleIO)
	}
	d.PerModuleIO = make([]int64, n)
	for i := range d.PerModuleIO {
		if i < len(m.PerModuleIO) {
			d.PerModuleIO[i] += m.PerModuleIO[i]
		}
		if i < len(s.PerModuleIO) {
			d.PerModuleIO[i] += s.PerModuleIO[i]
		}
	}
	n = len(m.PerModuleWrk)
	if len(s.PerModuleWrk) > n {
		n = len(s.PerModuleWrk)
	}
	d.PerModuleWrk = make([]int64, n)
	for i := range d.PerModuleWrk {
		if i < len(m.PerModuleWrk) {
			d.PerModuleWrk[i] += m.PerModuleWrk[i]
		}
		if i < len(s.PerModuleWrk) {
			d.PerModuleWrk[i] += s.PerModuleWrk[i]
		}
	}
	return d
}

// IOBalance returns P·max_m(io_m)/Σ_m(io_m), the load-imbalance factor of
// the communication: 1.0 is perfect balance, P is total serialization.
// It returns 1 when no IO occurred.
func (m Metrics) IOBalance() float64 {
	var max, sum int64
	for _, v := range m.PerModuleIO {
		if v > max {
			max = v
		}
		sum += v
	}
	if sum == 0 {
		return 1
	}
	return float64(max) * float64(len(m.PerModuleIO)) / float64(sum)
}

// WorkBalance is IOBalance for PIM work.
func (m Metrics) WorkBalance() float64 {
	var max, sum int64
	for _, v := range m.PerModuleWrk {
		if v > max {
			max = v
		}
		sum += v
	}
	if sum == 0 {
		return 1
	}
	return float64(max) * float64(len(m.PerModuleWrk)) / float64(sum)
}

// RoundTrace describes one executed BSP round for diagnostics.
type RoundTrace struct {
	Tasks     int
	Modules   int   // distinct modules addressed
	SendWords int64 // total words shipped to modules
	RecvWords int64 // total words read back
	MaxIO     int64 // busiest module's words (to+from)
	MaxWork   int64 // busiest module's accounted work
	Work      int64 // total accounted module work this round

	// Sparse per-module breakdown: ModID lists the modules addressed this
	// round; ModIO[j] and ModWork[j] are module ModID[j]'s words (to+from)
	// and accounted work. Populated only while tracing or while a Recorder
	// is attached. On the normal round path these slices alias pooled
	// scratch the System reuses for the next round — they are valid only
	// until RecordRound returns; retainers must copy (Clone).
	ModID   []int
	ModIO   []int64
	ModWork []int64
}

// Clone returns a RoundTrace whose per-module vectors are owned by the
// caller — the copy a Recorder must take if it keeps the trace past the
// RecordRound call.
func (tr RoundTrace) Clone() RoundTrace {
	tr.ModID = append([]int(nil), tr.ModID...)
	tr.ModIO = append([]int64(nil), tr.ModIO...)
	tr.ModWork = append([]int64(nil), tr.ModWork...)
	return tr
}

// Recorder observes a System's execution: phase open/close markers,
// every executed round (with its per-module breakdown), and host-side
// work accounting. It is the hook by which external attribution layers
// (internal/obs) attach without this package importing them. All methods
// are invoked synchronously from the host goroutine driving the system:
// a Recorder needs no locking against the system itself, only against
// its own concurrent readers.
type Recorder interface {
	// BeginPhase opens a named phase; phases nest (LIFO).
	BeginPhase(name string)
	// EndPhase closes the innermost open phase.
	EndPhase()
	// RecordRound is called after each executed round's accounting. The
	// trace's per-module slices are on loan from the system's pooled
	// scratch: read them during the call, Clone() to retain them.
	RecordRound(tr RoundTrace)
	// RecordCPUWork is called for each CPUWork accounting event.
	RecordCPUWork(n int)
}

// System is a host CPU plus P PIM modules.
type System struct {
	p       int
	modules []*Module
	rng     *rand.Rand
	rngMu   sync.Mutex
	seed    int64
	metrics Metrics
	maxPar  int // cap on concurrently executing module programs

	faults     *faultState // nil on a fault-free system
	phaseDepth int         // open phases, for post-panic unwinding

	// Persistent round executor (started lazily by Round) and pooled
	// per-round scratch. perModule buckets task indices by module and is
	// cleared — not reallocated — between rounds; touched lists the
	// modules bucketed this round so clearing is O(busy), never O(P).
	exec      *executor
	closeOnce sync.Once
	wg        sync.WaitGroup
	perModule [][]int
	touched   []int
	sendBy    []int64 // per-busy-module send words, accounting scratch
	recvBy    []int64 // per-busy-module recv words
	wrkBy     []int64 // per-busy-module accounted work

	// Pooled RoundTrace vectors, reused across rounds so an attached
	// always-on Recorder (obs.Monitor) costs zero allocations per round.
	// Consumers that retain a RoundTrace past the RecordRound call must
	// copy these (see Recorder); the tracing path below does.
	modIDBuf   []int
	modIOBuf   []int64
	modWorkBuf []int64

	trace   []RoundTrace
	tracing bool

	recorder Recorder
}

// roundJob is one module's share of a round: the executor runs the
// module's tasks sequentially (tasks on one module never run
// concurrently) and signals the round barrier.
type roundJob struct {
	mod   *Module
	idxs  []int
	tasks []Task
	resps []Resp
	wg    *sync.WaitGroup
}

// executor is a pool of persistent worker goroutines fed one roundJob
// per busy module per round. It replaces the per-round goroutine
// spawning (and the per-round semaphore channel) the simulator used to
// pay on every BSP superstep: workers are started once per System and
// reused for every subsequent round.
type executor struct {
	jobs chan roundJob
}

func newExecutor(workers int) *executor {
	e := &executor{jobs: make(chan roundJob, 4*workers)}
	for i := 0; i < workers; i++ {
		go e.run()
	}
	return e
}

func (e *executor) run() {
	for j := range e.jobs {
		runModuleTasks(j.mod, j.idxs, j.tasks, j.resps)
		j.wg.Done()
	}
}

func runModuleTasks(mod *Module, idxs []int, tasks []Task, resps []Resp) {
	for _, ti := range idxs {
		if tasks[ti].Run != nil {
			resps[ti] = tasks[ti].Run(mod)
		}
	}
}

// workerCount is the effective module-program parallelism: never more
// workers than modules, never more than the maxPar cap.
func (s *System) workerCount() int {
	w := s.maxPar
	if w > s.p {
		w = s.p
	}
	if w < 1 {
		w = 1
	}
	return w
}

// ensureExec starts the persistent worker pool on first use. A
// finalizer backstops Close so systems that are simply dropped (the
// common pattern in tests and experiment sweeps) do not leak workers.
func (s *System) ensureExec() *executor {
	if s.exec == nil {
		s.exec = newExecutor(s.workerCount())
		runtime.SetFinalizer(s, (*System).Close)
	}
	return s.exec
}

// Close stops the persistent worker goroutines, if any were started.
// Calling Close is optional — a finalizer performs the same shutdown
// when the System is garbage collected — and idempotent. The System
// must not be executing a Round when Close is called.
func (s *System) Close() {
	s.closeOnce.Do(func() {
		if s.exec != nil {
			close(s.exec.jobs)
		}
		runtime.SetFinalizer(s, nil)
	})
}

// systemHook, set via SetSystemHook, is invoked synchronously at the end
// of every NewSystem call. Observability tooling (cmd/pimbench -trace)
// uses it to attach a Recorder to each system an experiment creates
// internally, without threading a handle through every constructor.
var (
	systemHookMu sync.Mutex
	systemHook   func(*System)
)

// SetSystemHook installs (or, with nil, removes) the global new-system
// hook. The hook runs synchronously inside NewSystem.
func SetSystemHook(h func(*System)) {
	systemHookMu.Lock()
	systemHook = h
	systemHookMu.Unlock()
}

// Option configures a System.
type Option func(*System)

// WithSeed fixes the seed of the host's placement RNG (RandModule).
func WithSeed(seed int64) Option {
	return func(s *System) {
		s.seed = seed
		s.rng = rand.New(rand.NewSource(seed))
	}
}

// WithMaxParallelism caps how many module programs run concurrently;
// useful to keep tests deterministic in scheduling-sensitive scenarios.
// With n == 1 the executor runs every module program inline on the host
// goroutine in dispatch order; model metrics are identical either way
// (module programs are data-race-free by the Round contract, so every
// schedule observes the same state).
func WithMaxParallelism(n int) Option {
	return func(s *System) {
		if n > 0 {
			s.maxPar = n
		}
	}
}

// NewSystem creates a system with p PIM modules. Module-program
// parallelism defaults to the machine's CPU count: simulated module
// programs are pure compute, so workers beyond GOMAXPROCS only add
// scheduling overhead (override with WithMaxParallelism).
func NewSystem(p int, opts ...Option) *System {
	if p <= 0 {
		panic("pim: need at least one module")
	}
	s := &System{
		p:      p,
		rng:    rand.New(rand.NewSource(1)),
		seed:   1,
		maxPar: runtime.GOMAXPROCS(0),
	}
	s.modules = make([]*Module, p)
	for i := range s.modules {
		s.modules[i] = &Module{id: i, objects: map[uint64]any{}, sizes: map[uint64]int{}}
	}
	s.metrics.PerModuleIO = make([]int64, p)
	s.metrics.PerModuleWrk = make([]int64, p)
	for _, o := range opts {
		o(s)
	}
	if s.faults != nil {
		// Seed the fault RNG here, after all options, so a zero plan seed
		// derives from the system seed regardless of option order.
		s.faults.dead = make([]bool, p)
		fseed := s.faults.plan.Seed
		if fseed == 0 {
			fseed = s.seed ^ 0x7fb5d329728ea185
		}
		s.faults.rng = rand.New(rand.NewSource(fseed))
	}
	systemHookMu.Lock()
	hook := systemHook
	systemHookMu.Unlock()
	if hook != nil {
		hook(s)
	}
	return s
}

// SetRecorder attaches (or, with nil, detaches) a Recorder. Only one
// recorder is active at a time; attaching replaces the previous one.
func (s *System) SetRecorder(r Recorder) { s.recorder = r }

// Phase opens a named phase on the attached recorder and returns the
// closure that ends it, for use as `defer sys.Phase("lcp")()`. Without a
// recorder it is a near-free no-op, so algorithm code can annotate
// unconditionally.
func (s *System) Phase(name string) func() {
	r := s.recorder
	if r == nil {
		return noopPhaseEnd
	}
	r.BeginPhase(name)
	s.phaseDepth++
	return func() {
		r.EndPhase()
		s.phaseDepth--
	}
}

var noopPhaseEnd = func() {}

// PhaseDepth returns the number of currently open phases. Recovery code
// snapshots it before an operation so UnwindPhases can restore balance
// after a panic skipped non-deferred phase ends.
func (s *System) PhaseDepth() int { return s.phaseDepth }

// UnwindPhases closes open phases until the depth drops back to depth.
// A ModuleLostError panic can unwind past phase ends that are not
// deferred; without rebalancing, the recorder's Begin/End pairing — and
// with it the obs conservation check — would break.
func (s *System) UnwindPhases(depth int) {
	for s.phaseDepth > depth && s.recorder != nil {
		s.recorder.EndPhase()
		s.phaseDepth--
	}
}

// P returns the number of PIM modules.
func (s *System) P() int { return s.p }

// RandModule draws a uniformly random module index from the host's
// placement RNG; all "distribute uniformly randomly" steps use it.
func (s *System) RandModule() int {
	s.rngMu.Lock()
	defer s.rngMu.Unlock()
	return s.rng.Intn(s.p)
}

// CPUWork accounts n host-side operations.
func (s *System) CPUWork(n int) {
	s.metrics.CPUWork += int64(n)
	if s.recorder != nil {
		s.recorder.RecordCPUWork(n)
	}
}

// Metrics returns a snapshot of the cumulative counters.
func (s *System) Metrics() Metrics {
	m := s.metrics
	m.PerModuleIO = append([]int64(nil), s.metrics.PerModuleIO...)
	m.PerModuleWrk = append([]int64(nil), s.metrics.PerModuleWrk...)
	return m
}

// SpaceWords returns total and per-module words of PIM memory in use.
func (s *System) SpaceWords() (total int, per []int) {
	per = make([]int, s.p)
	for i, m := range s.modules {
		per[i] = m.space
		total += m.space
	}
	return total, per
}

// Module returns module i for host-side setup that is deliberately not
// accounted (e.g., constructing initial state in tests). Algorithm code
// must access modules only through Round.
func (s *System) Module(i int) *Module { return s.modules[i] }

// Round executes one BSP superstep: all tasks' inputs are shipped, module
// programs run (in parallel across modules, sequentially within one
// module), and replies are read back. It returns the replies in task
// order and updates every cost counter.
//
// Under an active fault plan a round may lose a module; Round reports
// that by panicking with the *ModuleLostError (algorithm code deep in
// a batch has no useful local reaction — the recovery layer catches
// it). Callers that prefer an error use TryRound.
func (s *System) Round(tasks []Task) []Resp {
	resps, err := s.TryRound(tasks)
	if err != nil {
		panic(err)
	}
	return resps
}

// TryRound is Round with fault reporting: when an injected crash fires
// during the round, or tasks target an already-dead module, it returns
// the (partial) replies plus a *ModuleLostError instead of panicking.
// On a fault-free system it never returns an error.
func (s *System) TryRound(tasks []Task) ([]Resp, error) {
	if f := s.faults; f != nil && f.suspended == 0 {
		// Even empty rounds go through the fault path: every round
		// boundary must consume the same RNG draws to stay replayable.
		return s.roundFaulted(tasks)
	}
	return s.roundNormal(tasks), nil
}

// roundNormal is the fault-free execution path.
//
// Execution goes through the System's persistent worker pool — one
// roundJob per busy module — except when the effective parallelism is 1
// or only one module is busy, in which case the programs run inline on
// the host goroutine (same observable behavior, no scheduling cost).
func (s *System) roundNormal(tasks []Task) []Resp {
	if len(tasks) == 0 {
		// An empty round still synchronizes; count it to keep algorithms
		// honest about their round structure. It touches no scratch.
		s.metrics.Rounds++
		if s.tracing {
			s.trace = append(s.trace, RoundTrace{})
		}
		if s.recorder != nil {
			s.recorder.RecordRound(RoundTrace{})
		}
		return nil
	}
	resps := make([]Resp, len(tasks))

	// Bucket task indices by module into the pooled scratch.
	if s.perModule == nil {
		s.perModule = make([][]int, s.p)
	}
	touched := s.touched[:0]
	for i, t := range tasks {
		if t.Module < 0 || t.Module >= s.p {
			panic(&InvariantError{
				Op: "invalid task target", Module: t.Module, ID: uint64(i),
				Detail: fmt.Sprintf("task %d of %d", i, len(tasks)),
			})
		}
		if len(s.perModule[t.Module]) == 0 {
			touched = append(touched, t.Module)
		}
		s.perModule[t.Module] = append(s.perModule[t.Module], i)
	}
	s.touched = touched

	// Execute: inline when nothing can run concurrently, else dispatch
	// one job per busy module to the persistent pool.
	if len(touched) == 1 || s.workerCount() == 1 {
		for _, mi := range touched {
			runModuleTasks(s.modules[mi], s.perModule[mi], tasks, resps)
		}
	} else {
		e := s.ensureExec()
		s.wg.Add(len(touched))
		for _, mi := range touched {
			e.jobs <- roundJob{mod: s.modules[mi], idxs: s.perModule[mi], tasks: tasks, resps: resps, wg: &s.wg}
		}
		s.wg.Wait()
	}

	// Accounting (host side, after the barrier). Per-busy-module sums
	// run as a chunked parallel reduction — disjoint writes into pooled
	// scratch indexed by busy-module rank — followed by a serial O(busy)
	// fold; for small rounds parallel.ForChunked degrades to the plain
	// loop. touched is sorted so per-module trace vectors keep their
	// module-order layout.
	sort.Ints(s.touched)
	touched = s.touched
	nb := len(touched)
	if cap(s.sendBy) < nb {
		s.sendBy = make([]int64, nb)
		s.recvBy = make([]int64, nb)
		s.wrkBy = make([]int64, nb)
	}
	sendBy, recvBy, wrkBy := s.sendBy[:nb], s.recvBy[:nb], s.wrkBy[:nb]
	observing := s.tracing || s.recorder != nil
	var modID []int
	var modIO, modWork []int64
	if observing {
		if cap(s.modIDBuf) < nb {
			s.modIDBuf = make([]int, nb)
			s.modIOBuf = make([]int64, nb)
			s.modWorkBuf = make([]int64, nb)
		}
		modID = s.modIDBuf[:nb]
		modIO = s.modIOBuf[:nb]
		modWork = s.modWorkBuf[:nb]
	}
	parallel.ForChunked(nb, func(lo, hi int) {
		for k := lo; k < hi; k++ {
			mi := touched[k]
			var sw, rw int64
			for _, ti := range s.perModule[mi] {
				sw += int64(tasks[ti].SendWords)
				rw += int64(resps[ti].RecvWords)
			}
			m := s.modules[mi]
			w := m.work
			m.work = 0
			sendBy[k], recvBy[k], wrkBy[k] = sw, rw, w
			s.metrics.PerModuleIO[mi] += sw + rw
			s.metrics.PerModuleWrk[mi] += w
			if observing {
				modID[k], modIO[k], modWork[k] = mi, sw+rw, w
			}
		}
	})
	s.metrics.Rounds++
	var roundMaxIO, roundMaxWork, sendW, recvW, workW int64
	for k := 0; k < nb; k++ {
		io, w := sendBy[k]+recvBy[k], wrkBy[k]
		sendW += sendBy[k]
		recvW += recvBy[k]
		workW += w
		s.metrics.IOWords += io
		s.metrics.PIMWork += w
		if io > roundMaxIO {
			roundMaxIO = io
		}
		if w > roundMaxWork {
			roundMaxWork = w
		}
	}
	s.metrics.IOTime += roundMaxIO
	s.metrics.PIMTime += roundMaxWork
	if observing {
		tr := RoundTrace{
			Tasks: len(tasks), Modules: nb,
			SendWords: sendW, RecvWords: recvW,
			MaxIO: roundMaxIO, MaxWork: roundMaxWork, Work: workW,
			ModID: modID, ModIO: modIO, ModWork: modWork,
		}
		if s.tracing {
			// The trace outlives this round; detach it from the pool.
			s.trace = append(s.trace, tr.Clone())
		}
		if s.recorder != nil {
			s.recorder.RecordRound(tr)
		}
	}
	// Reset the bucketing scratch for the next round (O(busy)).
	for _, mi := range touched {
		s.perModule[mi] = s.perModule[mi][:0]
	}
	return resps
}

// StartTrace begins recording a RoundTrace per executed round; it resets
// any previous trace. StopTrace returns and clears the recording.
func (s *System) StartTrace() { s.tracing, s.trace = true, nil }

// StopTrace ends recording and returns the rounds observed since
// StartTrace.
func (s *System) StopTrace() []RoundTrace {
	out := s.trace
	s.tracing, s.trace = false, nil
	return out
}

// Broadcast runs one round with the same program on every module, shipping
// sendWords words to each (e.g., replicating the master-tree, §4.4).
func (s *System) Broadcast(sendWords int, run func(m *Module) Resp) []Resp {
	tasks := make([]Task, s.p)
	for i := range tasks {
		tasks[i] = Task{Module: i, SendWords: sendWords, Run: run}
	}
	return s.Round(tasks)
}
