package pim

import (
	"errors"
	"reflect"
	"testing"
)

// allocOn allocates a one-word object on each module and returns the
// addresses.
func allocOn(t *testing.T, s *System, n int) []Addr {
	t.Helper()
	tasks := make([]Task, n)
	for i := range tasks {
		tasks[i] = Task{Module: i, SendWords: 1, Run: func(m *Module) Resp {
			return Resp{RecvWords: 1, Value: m.Alloc(uint64(7))}
		}}
	}
	resps, err := s.TryRound(tasks)
	if err != nil {
		t.Fatalf("setup round failed: %v", err)
	}
	out := make([]Addr, n)
	for i, r := range resps {
		out[i] = r.Value.(Addr)
	}
	return out
}

func TestScheduledCrashWipesModule(t *testing.T) {
	s := NewSystem(4, WithSeed(1), WithFaults(FaultPlan{
		Events: []FaultEvent{{Round: 1, Kind: FaultCrash, Module: 2}},
	}))
	defer s.Close()
	if !s.FaultsEnabled() {
		t.Fatal("FaultsEnabled false with a plan installed")
	}
	addrs := allocOn(t, s, 4) // round 0: before the event
	_, err := s.TryRound([]Task{{Module: 2, SendWords: 1, Run: func(m *Module) Resp {
		return Resp{Value: m.Get(addrs[2].ID)}
	}}})
	var lost *ModuleLostError
	if !errors.As(err, &lost) {
		t.Fatalf("expected ModuleLostError, got %v", err)
	}
	if !reflect.DeepEqual(lost.Modules, []int{2}) {
		t.Fatalf("lost modules = %v, want [2]", lost.Modules)
	}
	if got := s.Module(2).Objects(); got != 0 {
		t.Fatalf("dead module still holds %d objects", got)
	}
	if got := s.Module(1).Objects(); got != 1 {
		t.Fatalf("surviving module lost its object (have %d)", got)
	}
	if !reflect.DeepEqual(s.DeadModules(), []int{2}) {
		t.Fatalf("DeadModules = %v", s.DeadModules())
	}
	// Rounds targeting the dead module keep erroring; Round panics.
	func() {
		defer func() {
			if _, ok := recover().(*ModuleLostError); !ok {
				t.Error("Round did not panic with ModuleLostError")
			}
		}()
		s.Round([]Task{{Module: 2, SendWords: 1}})
	}()
	// Respawn clears the dead set; stale addresses stay dangling.
	s.Respawn(2)
	if len(s.DeadModules()) != 0 {
		t.Fatalf("DeadModules after Respawn = %v", s.DeadModules())
	}
	resps, err := s.TryRound([]Task{{Module: 2, SendWords: 1, Run: func(m *Module) Resp {
		return Resp{RecvWords: 1, Value: m.Alloc(uint64(9))}
	}}})
	if err != nil {
		t.Fatalf("round after respawn: %v", err)
	}
	if na := resps[0].Value.(Addr); na.ID <= addrs[2].ID {
		t.Fatalf("respawned module reused ID %d (old %d)", na.ID, addrs[2].ID)
	}
	crashes, _, _ := s.FaultCounts()
	if crashes != 1 {
		t.Fatalf("crash count = %d, want 1", crashes)
	}
}

func TestSuspendFaultsDelaysEvents(t *testing.T) {
	s := NewSystem(2, WithFaults(FaultPlan{
		Events: []FaultEvent{{Round: 0, Kind: FaultCrash, Module: 0}},
	}))
	defer s.Close()
	s.SuspendFaults()
	allocOn(t, s, 2) // would crash module 0 were injection active
	if len(s.DeadModules()) != 0 {
		t.Fatal("fault fired while suspended")
	}
	s.ResumeFaults()
	_, err := s.TryRound(nil) // event fires at the next boundary
	var lost *ModuleLostError
	if !errors.As(err, &lost) || !reflect.DeepEqual(lost.Modules, []int{0}) {
		t.Fatalf("after resume: err = %v", err)
	}
}

func TestStraggleAccounting(t *testing.T) {
	s := NewSystem(2, WithFaults(FaultPlan{
		Events:         []FaultEvent{{Round: 0, Kind: FaultStraggle, Module: 1}},
		StraggleFactor: 8,
	}))
	defer s.Close()
	work := func(m *Module) Resp { m.Work(10); return Resp{} }
	_, err := s.TryRound([]Task{
		{Module: 0, SendWords: 1, Run: work},
		{Module: 1, SendWords: 1, Run: work},
	})
	if err != nil {
		t.Fatalf("straggle round errored: %v", err)
	}
	m := s.Metrics()
	if m.PerModuleWrk[0] != 10 || m.PerModuleWrk[1] != 80 {
		t.Fatalf("per-module work = %v, want [10 80]", m.PerModuleWrk)
	}
	if m.PIMTime != 80 {
		t.Fatalf("PIMTime = %d, want 80 (straggler dominates)", m.PIMTime)
	}
	if m.PIMWork != 90 {
		t.Fatalf("PIMWork = %d, want 90", m.PIMWork)
	}
}

func TestTruncationRetries(t *testing.T) {
	s := NewSystem(2, WithSeed(3), WithFaults(FaultPlan{
		Events: []FaultEvent{{Round: 0, Kind: FaultTruncate}},
	}))
	defer s.Close()
	ran := make([]bool, 3)
	tasks := make([]Task, 3)
	for i := range tasks {
		i := i
		tasks[i] = Task{Module: i % 2, SendWords: 5, Run: func(m *Module) Resp {
			ran[i] = true
			return Resp{RecvWords: 1, Value: i}
		}}
	}
	resps, err := s.TryRound(tasks)
	if err != nil {
		t.Fatalf("truncated round errored: %v", err)
	}
	for i, r := range resps {
		if !ran[i] || r.Value.(int) != i {
			t.Fatalf("task %d did not complete after truncation (ran=%v)", i, ran[i])
		}
	}
	m := s.Metrics()
	if m.Rounds != 2 {
		t.Fatalf("Rounds = %d, want 2 (original + retry)", m.Rounds)
	}
	// The truncated transfer is charged twice (attempt + retry).
	if m.IOWords != 5*3+5+3 {
		t.Fatalf("IOWords = %d, want %d", m.IOWords, 5*3+5+3)
	}
	_, _, truncs := s.FaultCounts()
	if truncs != 1 {
		t.Fatalf("truncation count = %d, want 1", truncs)
	}
}

// TestFaultDeterminism drives the same scripted rounds on two systems
// with identical plans and on a third with different parallelism; all
// three must produce bit-identical metrics and fault counts.
func TestFaultDeterminism(t *testing.T) {
	run := func(par int) (Metrics, [3]int64) {
		s := NewSystem(8, WithSeed(5), WithMaxParallelism(par), WithFaults(FaultPlan{
			Seed:         11,
			CrashProb:    0.05,
			StraggleProb: 0.2,
			TruncateProb: 0.2,
			MaxCrashes:   2,
		}))
		defer s.Close()
		for r := 0; r < 60; r++ {
			tasks := make([]Task, 8)
			for i := range tasks {
				w := (r + i) % 5
				tasks[i] = Task{Module: i, SendWords: 1 + i, Run: func(m *Module) Resp {
					m.Work(w)
					return Resp{RecvWords: 1}
				}}
			}
			_, err := s.TryRound(tasks)
			if err != nil {
				s.Respawn(err.(*ModuleLostError).Modules...)
			}
		}
		var counts [3]int64
		counts[0], counts[1], counts[2] = s.FaultCounts()
		return s.Metrics(), counts
	}
	m1, c1 := run(1)
	m2, c2 := run(1)
	m8, c8 := run(8)
	if !reflect.DeepEqual(m1, m2) || c1 != c2 {
		t.Fatal("same-parallelism runs diverged")
	}
	if !reflect.DeepEqual(m1, m8) || c1 != c8 {
		t.Fatalf("metrics differ across parallelism:\n p=1: %+v %v\n p=8: %+v %v", m1, c1, m8, c8)
	}
	if c1[0] == 0 && c1[1] == 0 && c1[2] == 0 {
		t.Fatal("no faults injected; test is vacuous")
	}
}

func TestInvariantErrorTyped(t *testing.T) {
	s := NewSystem(1)
	defer s.Close()
	mustInvariant := func(name string, fn func()) {
		t.Helper()
		defer func() {
			e, ok := recover().(*InvariantError)
			if !ok {
				t.Fatalf("%s: panic was not *InvariantError", name)
			}
			if e.Error() == "" {
				t.Fatalf("%s: empty error string", name)
			}
		}()
		fn()
	}
	mustInvariant("dangling get", func() { s.Module(0).Get(999) })
	mustInvariant("double free", func() {
		a := s.Module(0).Alloc(uint64(1))
		s.Module(0).Free(a.ID)
		s.Module(0).Free(a.ID)
	})
	mustInvariant("invalid target", func() {
		s.Round([]Task{{Module: 5}})
	})
}

// TestFaultFreePlanMatchesNoPlan: a plan whose probabilities are zero
// and whose events never fire must not change metrics at all.
func TestFaultFreePlanMatchesNoPlan(t *testing.T) {
	script := func(s *System) Metrics {
		defer s.Close()
		for r := 0; r < 10; r++ {
			s.Round([]Task{{Module: r % 4, SendWords: 2, Run: func(m *Module) Resp {
				m.Work(3)
				return Resp{RecvWords: 1}
			}}})
		}
		return s.Metrics()
	}
	plain := script(NewSystem(4, WithSeed(2)))
	faulted := script(NewSystem(4, WithSeed(2), WithFaults(FaultPlan{
		Events: []FaultEvent{{Round: 1 << 40, Kind: FaultCrash, Module: 0}},
	})))
	if !reflect.DeepEqual(plain, faulted) {
		t.Fatalf("inactive plan changed metrics:\nplain:   %+v\nfaulted: %+v", plain, faulted)
	}
}
