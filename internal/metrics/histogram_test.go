package metrics

import (
	"math"
	"math/rand"
	"reflect"
	"sort"
	"strings"
	"sync"
	"testing"
)

func TestBucketBoundsContainValue(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 10000; i++ {
		// Log-uniform over the full supported range.
		v := math.Ldexp(0.5+rng.Float64()/2, histMinExp+rng.Intn(histMaxExp-histMinExp+1))
		idx := bucketIndex(v)
		lo, hi := BucketBounds(idx)
		if v < lo || v >= hi {
			t.Fatalf("v=%g landed in bucket %d [%g, %g)", v, idx, lo, hi)
		}
	}
	// Buckets tile the range with no gaps.
	for i := 0; i < histBuckets-1; i++ {
		_, hi := BucketBounds(i)
		lo, _ := BucketBounds(i + 1)
		if hi != lo {
			t.Fatalf("gap between bucket %d (hi %g) and %d (lo %g)", i, hi, i+1, lo)
		}
	}
	// Out-of-range values clamp instead of panicking.
	for _, v := range []float64{0, -1, math.NaN(), 1e300, 1e-300} {
		idx := bucketIndex(v)
		if idx < 0 || idx >= histBuckets {
			t.Fatalf("bucketIndex(%g) = %d out of range", v, idx)
		}
	}
}

// TestHistogramQuantileErrorBound is the error-bound contract: bucketed
// quantiles answer within half a bucket's relative width (1/32) of the
// exact nearest-rank sample, for every quantile including the extremes,
// across several orders of magnitude.
func TestHistogramQuantileErrorBound(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{1, 2, 3, 10, 1000, 50000} {
		var h Histogram
		samples := make([]float64, n)
		for i := range samples {
			// Log-uniform latencies between 1µs and 10s.
			samples[i] = math.Exp(rng.Float64()*math.Log(1e7)) * 1e-6
			h.Observe(samples[i])
		}
		sort.Float64s(samples)
		snap := h.Snapshot()
		if snap.Count != uint64(n) {
			t.Fatalf("n=%d: snapshot count %d", n, snap.Count)
		}
		for _, q := range []float64{0, 0.25, 0.5, 0.9, 0.95, 0.99, 0.999, 1.0} {
			exact := samples[NearestRank(n, q)]
			est := snap.Quantile(q)
			if rel := math.Abs(est-exact) / exact; rel > 1.0/(2*histSub) {
				t.Errorf("n=%d q=%v: est %g vs exact %g (rel err %.4f > %.4f)",
					n, q, est, exact, rel, 1.0/(2*histSub))
			}
		}
	}
}

func randomSnapshot(rng *rand.Rand, n int) (*Histogram, HistSnapshot) {
	h := &Histogram{}
	for i := 0; i < n; i++ {
		h.Observe(math.Exp(rng.Float64()*20 - 10))
	}
	return h, h.Snapshot()
}

func TestSnapshotMergeAssociative(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	_, a := randomSnapshot(rng, 500)
	_, b := randomSnapshot(rng, 900)
	_, c := randomSnapshot(rng, 1)
	left := a.Merge(b).Merge(c)
	right := a.Merge(b.Merge(c))
	if !reflect.DeepEqual(left.Buckets, right.Buckets) || left.Count != right.Count {
		t.Fatal("merge is not associative")
	}
	if math.Abs(left.Sum-right.Sum) > 1e-9*math.Abs(left.Sum) {
		t.Fatalf("merge sums diverge: %g vs %g", left.Sum, right.Sum)
	}
	// Commutative too, and the empty snapshot is the identity.
	if ab, ba := a.Merge(b), b.Merge(a); !reflect.DeepEqual(ab, ba) {
		t.Fatal("merge is not commutative")
	}
	if got := a.Merge(HistSnapshot{}); !reflect.DeepEqual(got, a) {
		t.Fatal("empty snapshot is not the merge identity")
	}
}

// TestMergeEqualsCombinedObservation: merging per-worker snapshots must
// equal one histogram that observed everything (the distributed-digest
// property the serving layer and pimbench rely on).
func TestMergeEqualsCombinedObservation(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var combined Histogram
	var merged HistSnapshot
	for w := 0; w < 4; w++ {
		var part Histogram
		for i := 0; i < 1000; i++ {
			v := math.Exp(rng.Float64()*12 - 6)
			part.Observe(v)
			combined.Observe(v)
		}
		merged = merged.Merge(part.Snapshot())
	}
	want := combined.Snapshot()
	if !reflect.DeepEqual(merged.Buckets, want.Buckets) || merged.Count != want.Count {
		t.Fatal("merged per-worker snapshots != combined histogram")
	}
}

// TestHistogramHammer is the -race concurrency contract: many writers,
// a concurrent scraper repeatedly snapshotting and rendering, and an
// exact final count once everyone is done.
func TestHistogramHammer(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("hammer_seconds", "hammered")
	c := r.Counter("hammer_total", "hammered")
	const writers, perWriter = 8, 20000
	stop := make(chan struct{})
	var scraper sync.WaitGroup
	scraper.Add(1)
	go func() {
		defer scraper.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			var b strings.Builder
			if err := r.WritePrometheus(&b); err != nil {
				t.Error(err)
				return
			}
			h.Snapshot().Quantile(0.99)
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < perWriter; i++ {
				h.Observe(rng.Float64())
				c.Inc()
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	scraper.Wait()
	if got := h.Snapshot().Count; got != writers*perWriter {
		t.Fatalf("final count %d, want %d", got, writers*perWriter)
	}
	if got := c.Value(); got != writers*perWriter {
		t.Fatalf("final counter %d, want %d", got, writers*perWriter)
	}
}
