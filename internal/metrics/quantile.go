package metrics

import "math"

// NearestRank returns the 0-based index of the q-quantile of n sorted
// samples under nearest-rank semantics: the smallest index i such that
// at least ceil(q*n) samples are ≤ sample[i]. q ≤ 0 selects the first
// sample, q ≥ 1 (p100) the last; n ≤ 0 returns 0 (callers guard empty
// inputs). These are the semantics both the exact-sample percentile
// digests in cmd/pimbench and the bucketed Histogram quantiles use, so
// tiny samples (n < 4) and the extremes behave identically everywhere:
// for n = 2, p50 is the first sample and p99 the second; for n = 1
// every quantile is the sample itself.
func NearestRank(n int, q float64) int {
	if n <= 0 {
		return 0
	}
	if q <= 0 {
		return 0
	}
	r := int(math.Ceil(q * float64(n)))
	if r < 1 {
		r = 1
	}
	if r > n {
		r = n
	}
	return r - 1
}

// Imbalance digests a per-module load vector into the two skew
// coefficients the live gauges and the offline trace analyzer share:
//
//   - maxMean = max_m(v_m) / mean_m(v_m) — the paper's load-imbalance
//     factor (Metrics.IOBalance computes exactly this as P·max/Σ);
//     1.0 is perfect balance, P is total serialization.
//   - cv = stddev_m(v_m) / mean_m(v_m) — the coefficient of variation
//     (population stddev); 0 is perfect balance.
//
// An empty or all-zero vector reports perfect balance (1, 0).
func Imbalance(v []int64) (maxMean, cv float64) {
	if len(v) == 0 {
		return 1, 0
	}
	var max, sum int64
	for _, x := range v {
		if x > max {
			max = x
		}
		sum += x
	}
	if sum == 0 {
		return 1, 0
	}
	mean := float64(sum) / float64(len(v))
	var ss float64
	for _, x := range v {
		d := float64(x) - mean
		ss += d * d
	}
	return float64(max) / mean, math.Sqrt(ss/float64(len(v))) / mean
}
