package metrics

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Prometheus text exposition (version 0.0.4): the format served on
// /metrics by internal/telemetry. Families are emitted in sorted name
// order with one HELP/TYPE header each; histogram families expand into
// cumulative _bucket{le=...} series plus _sum and _count, with only
// non-empty buckets materialized (plus the mandatory +Inf).

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return v
}

// formatLabels renders {k="v",...}, optionally with a trailing le pair;
// empty when there are no labels at all.
func formatLabels(labels []Label, le string) string {
	if len(labels) == 0 && le == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, l.Key, escapeLabel(l.Value))
	}
	if le != "" {
		if len(labels) > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `le="%s"`, le)
	}
	b.WriteByte('}')
	return b.String()
}

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// WritePrometheus writes every registered series in Prometheus text
// exposition format.
func (r *Registry) WritePrometheus(w io.Writer) error {
	lastFamily := ""
	for _, e := range r.snapshotEntries() {
		if e.name != lastFamily {
			lastFamily = e.name
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", e.name, e.help, e.name, e.kind); err != nil {
				return err
			}
		}
		var err error
		switch e.kind {
		case KindCounter:
			_, err = fmt.Fprintf(w, "%s%s %d\n", e.name, formatLabels(e.labels, ""), e.c.Value())
		case KindGauge:
			_, err = fmt.Fprintf(w, "%s%s %s\n", e.name, formatLabels(e.labels, ""), formatFloat(e.g.Value()))
		case KindHistogram:
			err = writeHistogram(w, e)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

func writeHistogram(w io.Writer, e *entry) error {
	s := e.h.Snapshot()
	var cum uint64
	for _, b := range s.Buckets {
		cum += b.Count
		_, hi := BucketBounds(b.Index)
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", e.name, formatLabels(e.labels, formatFloat(hi)), cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", e.name, formatLabels(e.labels, "+Inf"), s.Count); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", e.name, formatLabels(e.labels, ""), formatFloat(s.Sum)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", e.name, formatLabels(e.labels, ""), s.Count)
	return err
}

// VarzHistogram is a histogram's JSON-friendly digest in /varz output.
type VarzHistogram struct {
	Count uint64  `json:"count"`
	Sum   float64 `json:"sum"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
	P999  float64 `json:"p999"`
	Max   float64 `json:"max"`
}

// DigestSnapshot digests a histogram snapshot into the standard varz
// quantile set (the same nearest-rank quantiles /metrics consumers
// would compute from the buckets).
func DigestSnapshot(s HistSnapshot) VarzHistogram {
	return VarzHistogram{
		Count: s.Count,
		Sum:   s.Sum,
		Mean:  s.Mean(),
		P50:   s.Quantile(0.50),
		P95:   s.Quantile(0.95),
		P99:   s.Quantile(0.99),
		P999:  s.Quantile(0.999),
		Max:   s.Quantile(1),
	}
}

// Varz returns a JSON-marshalable snapshot of every series: counters
// and gauges as numbers, histograms as quantile digests, keyed by the
// canonical series name.
func (r *Registry) Varz() map[string]any {
	out := map[string]any{}
	for _, e := range r.snapshotEntries() {
		key := seriesKey(e.name, e.labels)
		switch e.kind {
		case KindCounter:
			out[key] = e.c.Value()
		case KindGauge:
			out[key] = e.g.Value()
		case KindHistogram:
			out[key] = DigestSnapshot(e.h.Snapshot())
		}
	}
	return out
}
