package metrics

import (
	"math"
	"strings"
	"testing"
)

func TestCounterAndGauge(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
	var g Gauge
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Fatalf("gauge = %v, want 1.5", got)
	}
}

func TestNearestRankEdges(t *testing.T) {
	cases := []struct {
		n    int
		q    float64
		want int
	}{
		{0, 0.5, 0},
		{1, 0.5, 0}, {1, 0.99, 0}, {1, 1.0, 0}, {1, 0, 0},
		{2, 0.5, 0}, {2, 0.51, 1}, {2, 0.99, 1}, {2, 1.0, 1},
		{3, 0.5, 1}, {3, 0.95, 2}, {3, 1.0, 2}, {3, 0.333, 0}, {3, 0.334, 1},
		{4, 0.25, 0}, {4, 0.5, 1}, {4, 0.75, 2}, {4, 1.0, 3},
		{100, 0.5, 49}, {100, 0.99, 98}, {100, 0.999, 99}, {100, 1.0, 99},
		{100, -0.5, 0}, {100, 2.0, 99},
	}
	for _, c := range cases {
		if got := NearestRank(c.n, c.q); got != c.want {
			t.Errorf("NearestRank(%d, %v) = %d, want %d", c.n, c.q, got, c.want)
		}
	}
}

func TestImbalance(t *testing.T) {
	check := func(v []int64, wantMax, wantCV float64) {
		t.Helper()
		mm, cv := Imbalance(v)
		if math.Abs(mm-wantMax) > 1e-12 || math.Abs(cv-wantCV) > 1e-12 {
			t.Errorf("Imbalance(%v) = (%v, %v), want (%v, %v)", v, mm, cv, wantMax, wantCV)
		}
	}
	check(nil, 1, 0)
	check([]int64{0, 0, 0}, 1, 0)
	check([]int64{5, 5, 5, 5}, 1, 0)
	// One module carries everything: max/mean = P, CV = sqrt(P-1).
	check([]int64{4, 0, 0, 0}, 4, math.Sqrt(3))
	// max/mean must agree with the paper's P·max/Σ balance factor.
	v := []int64{3, 9, 1, 7}
	mm, _ := Imbalance(v)
	var max, sum int64
	for _, x := range v {
		if x > max {
			max = x
		}
		sum += x
	}
	if want := float64(max) * float64(len(v)) / float64(sum); math.Abs(mm-want) > 1e-12 {
		t.Errorf("max/mean = %v, want P·max/Σ = %v", mm, want)
	}
}

func TestRegistryIdempotentAndKindSafety(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "help", L("op", "get"))
	b := r.Counter("x_total", "other help", L("op", "get"))
	if a != b {
		t.Fatal("re-registration returned a different counter")
	}
	if c := r.Counter("x_total", "help", L("op", "lcp")); c == a {
		t.Fatal("different labels returned the same counter")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("kind mismatch did not panic")
		}
	}()
	r.Gauge("x_total", "help", L("op", "get"))
}

func TestRegistryRejectsInvalidNames(t *testing.T) {
	r := NewRegistry()
	for _, bad := range []string{"", "1abc", "a-b", "a b", "a{b}"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("name %q did not panic", bad)
				}
			}()
			r.Counter(bad, "")
		}()
	}
}

func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("t_requests_total", "requests", L("op", "get")).Add(3)
	r.Counter("t_requests_total", "requests", L("op", "lcp")).Add(1)
	r.Gauge("t_queue_depth", "depth").Set(7)
	h := r.Histogram("t_latency_seconds", "latency")
	h.Observe(0.001)
	h.Observe(0.002)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE t_requests_total counter",
		`t_requests_total{op="get"} 3`,
		`t_requests_total{op="lcp"} 1`,
		"# TYPE t_queue_depth gauge",
		"t_queue_depth 7",
		"# TYPE t_latency_seconds histogram",
		`t_latency_seconds_bucket{le="+Inf"} 2`,
		"t_latency_seconds_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	if n := strings.Count(out, "# TYPE t_requests_total"); n != 1 {
		t.Errorf("family header emitted %d times, want once", n)
	}
	v := r.Varz()
	if v[`t_requests_total{op="get"}`] != uint64(3) {
		t.Errorf("varz counter = %v", v[`t_requests_total{op="get"}`])
	}
	if d, ok := v["t_latency_seconds"].(VarzHistogram); !ok || d.Count != 2 {
		t.Errorf("varz histogram = %#v", v["t_latency_seconds"])
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Gauge("t_esc", "x", L("k", "a\"b\\c\nd")).Set(1)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if want := `t_esc{k="a\"b\\c\nd"} 1`; !strings.Contains(b.String(), want) {
		t.Errorf("escaped series missing %q in:\n%s", want, b.String())
	}
}
