// Package metrics is the live telemetry plane's instrument layer: a
// registry of named counters, gauges and log-bucketed histograms that
// the serving layer, the PIM monitor (internal/obs) and the HTTP
// exposition server (internal/telemetry) share.
//
// Design goals, in the same spirit as sys.Phase:
//
//   - Near-zero hot-path cost. Every instrument update is one or two
//     atomic operations on pre-registered state; there is no per-update
//     allocation, locking, or map lookup. Code that is not wired to a
//     registry holds nil and skips instrumentation entirely.
//   - Safe under -race. Writers update atomics; scrapers read the same
//     atomics. A scrape taken mid-update may see a histogram whose
//     count is one ahead of its buckets — acceptable for monitoring,
//     never a data race.
//   - Mergeable snapshots. Histogram snapshots are plain values that
//     merge associatively, so per-worker or per-shard histograms can be
//     folded into one digest (the same way cmd/pimbench merges
//     per-client latency recorders).
//   - One quantile vocabulary. Nearest-rank semantics (NearestRank) are
//     shared by the exact-sample percentiles in cmd/pimbench and the
//     bucketed quantiles here, so the benchmark reports and /metrics
//     can not disagree on what "p99" means.
package metrics

import (
	"math"
	"sync/atomic"
)

// Counter is a monotonically increasing uint64. The zero value is
// ready to use, but instruments are normally obtained from a Registry.
type Counter struct {
	v atomic.Uint64
}

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a float64 that can go up and down (queue depth, imbalance
// coefficients, 0/1 stage-busy flags).
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds d (CAS loop; gauges are updated rarely relative to reads).
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		v := math.Float64frombits(old) + d
		if g.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }
