package metrics

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Label is one name=value dimension of a metric series (e.g. op="get").
type Label struct {
	Key, Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Kind classifies a registered instrument.
type Kind int

// Instrument kinds.
const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "kind?"
}

// entry is one registered series: an instrument plus its identity.
type entry struct {
	name   string
	help   string
	labels []Label // sorted by key
	kind   Kind

	c *Counter
	g *Gauge
	h *Histogram
}

// seriesKey is the canonical "name{k=v,...}" identity of an entry.
func seriesKey(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(l.Value)
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// Registry holds named instruments. Registration is idempotent: asking
// for an existing (name, labels) series returns the already-registered
// instrument, so independent components can share one registry (and a
// restarted server re-attaches to its accumulated counters). Asking
// for an existing series with a different kind panics — that is always
// a naming bug. All methods are safe for concurrent use.
type Registry struct {
	mu      sync.RWMutex
	byKey   map[string]*entry
	entries []*entry
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byKey: map[string]*entry{}}
}

// validName enforces the Prometheus metric/label name charset.
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		alpha := r == '_' || r == ':' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z')
		if !alpha && (i == 0 || r < '0' || r > '9') {
			return false
		}
	}
	return true
}

func sortedLabels(labels []Label) []Label {
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(a, b int) bool { return ls[a].Key < ls[b].Key })
	return ls
}

// register returns the entry for (name, labels), creating it with the
// given kind if new.
func (r *Registry) register(name, help string, kind Kind, labels []Label) *entry {
	if !validName(name) {
		panic(fmt.Sprintf("metrics: invalid metric name %q", name))
	}
	ls := sortedLabels(labels)
	for _, l := range ls {
		if !validName(l.Key) {
			panic(fmt.Sprintf("metrics: invalid label name %q on %s", l.Key, name))
		}
	}
	key := seriesKey(name, ls)
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.byKey[key]; ok {
		if e.kind != kind {
			panic(fmt.Sprintf("metrics: %s re-registered as %s (was %s)", key, kind, e.kind))
		}
		return e
	}
	// A family (all series of one name) must have one consistent kind.
	for _, e := range r.entries {
		if e.name == name && e.kind != kind {
			panic(fmt.Sprintf("metrics: %s registered as %s but family is %s", key, kind, e.kind))
		}
	}
	e := &entry{name: name, help: help, labels: ls, kind: kind}
	switch kind {
	case KindCounter:
		e.c = &Counter{}
	case KindGauge:
		e.g = &Gauge{}
	case KindHistogram:
		e.h = &Histogram{}
	}
	r.byKey[key] = e
	r.entries = append(r.entries, e)
	return e
}

// Counter registers (or retrieves) a counter series.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	return r.register(name, help, KindCounter, labels).c
}

// Gauge registers (or retrieves) a gauge series.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	return r.register(name, help, KindGauge, labels).g
}

// Histogram registers (or retrieves) a histogram series.
func (r *Registry) Histogram(name, help string, labels ...Label) *Histogram {
	return r.register(name, help, KindHistogram, labels).h
}

// snapshotEntries returns the entries sorted by (name, label key) —
// the stable exposition order. Instrument values are read later, by
// the caller, straight from the shared atomics.
func (r *Registry) snapshotEntries() []*entry {
	r.mu.RLock()
	es := append([]*entry(nil), r.entries...)
	r.mu.RUnlock()
	sort.SliceStable(es, func(a, b int) bool {
		if es[a].name != es[b].name {
			return es[a].name < es[b].name
		}
		return seriesKey("", es[a].labels) < seriesKey("", es[b].labels)
	})
	return es
}
