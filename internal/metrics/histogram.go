package metrics

import (
	"math"
	"sync/atomic"
)

// Histogram bucket layout: log-linear, 16 linear sub-buckets per
// power-of-two octave. A value v with v = f·2^e (f ∈ [0.5, 1), i.e.
// v ∈ [2^(e-1), 2^e)) lands in octave e, sub-bucket ⌊(f−0.5)·32⌋, so
// within one octave the 16 buckets divide [2^(e-1), 2^e) evenly. The
// relative width of every bucket is at most 1/16, which bounds the
// quantile estimation error at ~3% when answering from bucket
// midpoints (verified against exact samples in histogram_test.go).
//
// Octaves span e ∈ [histMinExp, histMaxExp]: from ~5.8e-11 (well under
// a nanosecond in seconds) to ~1.07e9 (a billion keys), covering every
// quantity instrumented here — latencies in seconds, epoch sizes in
// keys, IO in words. Out-of-range and non-positive values clamp to the
// first or last bucket. The fixed layout is what makes snapshots
// mergeable: bucket i means the same value range in every histogram.
const (
	histSub     = 16
	histMinExp  = -33
	histMaxExp  = 30
	histBuckets = (histMaxExp - histMinExp + 1) * histSub
)

// bucketIndex maps a value to its bucket.
func bucketIndex(v float64) int {
	if v <= 0 || math.IsNaN(v) {
		return 0
	}
	f, e := math.Frexp(v) // v = f·2^e, f ∈ [0.5, 1)
	if e < histMinExp {
		return 0
	}
	if e > histMaxExp {
		return histBuckets - 1
	}
	j := int((f - 0.5) * 2 * histSub)
	if j >= histSub { // f == 1-ulp rounding guard
		j = histSub - 1
	}
	return (e-histMinExp)*histSub + j
}

// BucketBounds returns bucket i's value range [lo, hi).
func BucketBounds(i int) (lo, hi float64) {
	if i < 0 {
		i = 0
	}
	if i >= histBuckets {
		i = histBuckets - 1
	}
	e := histMinExp + i/histSub
	j := i % histSub
	lo = math.Ldexp(0.5+float64(j)/(2*histSub), e)
	hi = math.Ldexp(0.5+float64(j+1)/(2*histSub), e)
	return lo, hi
}

// Histogram is a fixed-layout log-bucketed distribution with atomic
// updates: safe for any number of concurrent Observe callers and
// concurrent snapshots.
type Histogram struct {
	sumBits atomic.Uint64
	buckets [histBuckets]atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	h.buckets[bucketIndex(v)].Add(1)
	for {
		old := h.sumBits.Load()
		s := math.Float64frombits(old) + v
		if h.sumBits.CompareAndSwap(old, math.Float64bits(s)) {
			return
		}
	}
}

// ObserveDuration records a wall-clock duration in seconds, given
// nanoseconds (the common call site shape: time.Since(...)).
func (h *Histogram) ObserveDuration(ns int64) { h.Observe(float64(ns) / 1e9) }

// Snapshot captures the current distribution. A snapshot taken while
// writers are active is a consistent distribution of "observations so
// far" per bucket (Sum may trail or lead Count by in-flight updates).
func (h *Histogram) Snapshot() HistSnapshot {
	s := HistSnapshot{Sum: math.Float64frombits(h.sumBits.Load())}
	for i := range h.buckets {
		if c := h.buckets[i].Load(); c > 0 {
			s.Buckets = append(s.Buckets, Bucket{Index: i, Count: c})
			s.Count += c
		}
	}
	return s
}

// Bucket is one non-empty histogram bucket in a snapshot.
type Bucket struct {
	Index int
	Count uint64
}

// HistSnapshot is an immutable histogram digest: sparse non-empty
// buckets in ascending index order. Snapshots merge associatively.
type HistSnapshot struct {
	Count   uint64
	Sum     float64
	Buckets []Bucket
}

// Merge returns the combined distribution of s and o (neither operand
// is modified). Merge is associative and commutative: folding
// per-worker snapshots in any order yields the same digest.
func (s HistSnapshot) Merge(o HistSnapshot) HistSnapshot {
	out := HistSnapshot{Count: s.Count + o.Count, Sum: s.Sum + o.Sum}
	i, j := 0, 0
	for i < len(s.Buckets) || j < len(o.Buckets) {
		switch {
		case j >= len(o.Buckets) || (i < len(s.Buckets) && s.Buckets[i].Index < o.Buckets[j].Index):
			out.Buckets = append(out.Buckets, s.Buckets[i])
			i++
		case i >= len(s.Buckets) || o.Buckets[j].Index < s.Buckets[i].Index:
			out.Buckets = append(out.Buckets, o.Buckets[j])
			j++
		default:
			out.Buckets = append(out.Buckets, Bucket{Index: s.Buckets[i].Index, Count: s.Buckets[i].Count + o.Buckets[j].Count})
			i++
			j++
		}
	}
	return out
}

// Quantile estimates the q-quantile under the shared nearest-rank
// semantics, answering with the midpoint of the bucket holding the
// selected rank (relative error ≤ half a bucket width, ~3%). It
// returns 0 on an empty snapshot.
func (s HistSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	rank := uint64(NearestRank(int(s.Count), q)) // 0-based
	var cum uint64
	for _, b := range s.Buckets {
		cum += b.Count
		if cum > rank {
			lo, hi := BucketBounds(b.Index)
			return (lo + hi) / 2
		}
	}
	lo, hi := BucketBounds(s.Buckets[len(s.Buckets)-1].Index)
	return (lo + hi) / 2
}

// Mean returns the exact mean of all observations (Sum/Count), 0 when
// empty.
func (s HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}
