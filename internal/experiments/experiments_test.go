package experiments

import (
	"strconv"
	"strings"
	"testing"
)

// tiny is a fast scale for CI-style runs; shapes must already hold.
var tiny = Scale{P: 8, N: 2000, Batch: 256, Seed: 1}

func cell(t *testing.T, tb Table, row, col int) float64 {
	t.Helper()
	s := strings.TrimSuffix(tb.Rows[row][col], "(scaled)")
	v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
	if err != nil {
		t.Fatalf("%s: cell (%d,%d) = %q not numeric", tb.ID, row, col, tb.Rows[row][col])
	}
	return v
}

func TestSpaceTableShapes(t *testing.T) {
	tb := SpaceTable(tiny)
	if len(tb.Rows) == 0 {
		t.Fatal("empty table")
	}
	// At l=64, dist-xfast must be much larger than pim-trie (O(n·l) vs
	// O(n + L/w)).
	for r := range tb.Rows {
		if tb.Rows[r][1] != "64" {
			continue
		}
		pt := cell(t, tb, r, 2)
		xf := cell(t, tb, r, 4)
		if xf < 2.5*pt {
			t.Fatalf("x-fast space %v not ≫ pim-trie %v", xf, pt)
		}
	}
	// Space grows roughly linearly with n at fixed l: last/first ≈ 8.
	first, last := cell(t, tb, 0, 2), cell(t, tb, len(tb.Rows)-2, 2)
	if last < 3*first {
		t.Fatalf("pim-trie space not scaling with n: %v vs %v", first, last)
	}
}

func TestRoundsLCPShapes(t *testing.T) {
	tb := RoundsLCP(tiny)
	n := len(tb.Rows)
	// PIM-trie rounds flat in l: max/min ≤ 3.
	ptMin, ptMax := 1e18, 0.0
	for r := 0; r < n; r++ {
		v := cell(t, tb, r, 1)
		if v < ptMin {
			ptMin = v
		}
		if v > ptMax {
			ptMax = v
		}
	}
	if ptMax > 3*ptMin {
		t.Fatalf("pim-trie rounds not flat in l: min %v max %v", ptMin, ptMax)
	}
	// DistRadix rounds grow with l: last ≥ 4× first (l grows 16×).
	if cell(t, tb, n-1, 2) < 4*cell(t, tb, 0, 2) {
		t.Fatalf("dist-radix rounds did not grow with l")
	}
	// And dist-radix at the longest l far exceeds pim-trie.
	if cell(t, tb, n-1, 2) < 5*cell(t, tb, n-1, 1) {
		t.Fatalf("dist-radix not clearly worse at long keys")
	}
}

func TestRoundsVsPShapes(t *testing.T) {
	tb := RoundsVsP(tiny)
	n := len(tb.Rows)
	// Rounds must not grow with P by more than a small factor.
	if cell(t, tb, n-1, 1) > 3*cell(t, tb, 0, 1) {
		t.Fatalf("rounds grew with P: %v -> %v", cell(t, tb, 0, 1), cell(t, tb, n-1, 1))
	}
	// IO time shrinks as P grows (more modules share the batch).
	if cell(t, tb, n-1, 2) > cell(t, tb, 0, 2) {
		t.Fatalf("io-time did not shrink with P")
	}
}

func TestRoundsUpdateShapes(t *testing.T) {
	tb := RoundsUpdate(tiny)
	n := len(tb.Rows)
	// PIM-trie insert rounds flat-ish in l.
	if cell(t, tb, n-1, 1) > 4*cell(t, tb, 0, 1) {
		t.Fatalf("pim-trie insert rounds grew with l")
	}
	// DistRadix insert rounds far larger at long keys.
	if cell(t, tb, n-1, 3) < 10*cell(t, tb, n-1, 1) {
		t.Fatalf("dist-radix insert not clearly worse")
	}
}

func TestRoundsSubtreeShapes(t *testing.T) {
	tb := RoundsSubtree(tiny)
	n := len(tb.Rows)
	// PIM-trie answers large subtrees in far fewer rounds than the
	// pointer-chasing baseline.
	if cell(t, tb, n-1, 2) < 2*cell(t, tb, n-1, 1) {
		t.Fatalf("subtree rounds: pim-trie %v vs dist-radix %v", cell(t, tb, n-1, 1), cell(t, tb, n-1, 2))
	}
}

func TestCommPerOpShapes(t *testing.T) {
	tb := CommPerOp(tiny)
	n := len(tb.Rows)
	// dist-radix words/op grow ~8× faster than pim-trie's in l.
	ptGrowth := cell(t, tb, n-1, 1) / cell(t, tb, 0, 1)
	drGrowth := cell(t, tb, n-1, 3) / cell(t, tb, 0, 3)
	if drGrowth < 1.5*ptGrowth {
		t.Fatalf("comm growth: pim-trie ×%.1f, dist-radix ×%.1f — expected radix to grow faster", ptGrowth, drGrowth)
	}
	// At the longest keys dist-radix must pay more words/op than pim-trie.
	if cell(t, tb, n-1, 3) < 2*cell(t, tb, n-1, 1) {
		t.Fatalf("dist-radix comm not clearly worse at long keys")
	}
}

func TestCommSubtreeShapes(t *testing.T) {
	tb := CommSubtree(tiny)
	n := len(tb.Rows)
	// Communication grows with the result size.
	if cell(t, tb, n-1, 1) < 2*cell(t, tb, 0, 1) {
		t.Fatalf("subtree comm did not grow with the result")
	}
}

func TestSkewBalanceShapes(t *testing.T) {
	tb := SkewBalance(tiny)
	var ptWorst, rpWorst float64
	for r := range tb.Rows {
		if v := cell(t, tb, r, 1); v > ptWorst {
			ptWorst = v
		}
		if v := cell(t, tb, r, 2); v > rpWorst {
			rpWorst = v
		}
	}
	// PIM-trie stays balanced under every workload; range partitioning
	// collapses on at least one (point/range attack).
	if ptWorst > float64(tiny.P)/2 {
		t.Fatalf("pim-trie worst balance %v — not skew resistant", ptWorst)
	}
	if rpWorst < 2*ptWorst {
		t.Fatalf("range partitioning did not degrade under skew (rp %v vs pt %v)", rpWorst, ptWorst)
	}
}

func TestSkewedDataBalanceShapes(t *testing.T) {
	tb := SkewedDataBalance(tiny)
	n := len(tb.Rows)
	// PIM-trie rounds stay flat as the spine deepens; dist-radix rounds
	// explode.
	if cell(t, tb, n-1, 3) > 4*cell(t, tb, 0, 3) {
		t.Fatalf("pim-trie rounds grew on deep spine")
	}
	if cell(t, tb, n-1, 4) < 4*cell(t, tb, 0, 4) {
		t.Fatalf("dist-radix rounds did not grow on deep spine")
	}
}

func TestTheoremBoundsShapes(t *testing.T) {
	tb := TheoremBounds(tiny)
	for r := range tb.Rows {
		if v := cell(t, tb, r, 4); v > 20 {
			t.Fatalf("seed %d: P·io-time/io-words = %v — not PIM-balanced", r+1, v)
		}
		if v := cell(t, tb, r, 1); v > 20 {
			t.Fatalf("seed %d: %v rounds", r+1, v)
		}
	}
}

func TestAblationTablesRun(t *testing.T) {
	for _, tb := range []Table{AblationBlockSize(tiny), AblationPushPull(tiny), AblationHashWidth(tiny), AblationRegionSize(tiny)} {
		if len(tb.Rows) == 0 {
			t.Fatalf("%s empty", tb.ID)
		}
		if out := tb.Format(); !strings.Contains(out, tb.ID) {
			t.Fatalf("%s Format broken", tb.ID)
		}
	}
	// Narrow widths must record false hits; full width none.
	tb := AblationHashWidth(tiny)
	if cell(t, tb, 0, 1) == 0 {
		t.Fatal("16-bit hash produced no false hits")
	}
	if cell(t, tb, len(tb.Rows)-1, 1) != 0 {
		t.Fatal("61-bit hash produced false hits")
	}
	// Region-size trade-off: smaller K_MB ⇒ more regions ⇒ bigger master.
	rs := AblationRegionSize(tiny)
	if cell(t, rs, 0, 2) <= cell(t, rs, len(rs.Rows)-1, 2) {
		t.Fatalf("master did not shrink with K_MB: %v vs %v", cell(t, rs, 0, 2), cell(t, rs, len(rs.Rows)-1, 2))
	}
}

func TestAblationPivotProbingShapes(t *testing.T) {
	tb := AblationPivotProbing(tiny)
	// Same communication and rounds; strictly less PIM work with pivots.
	if cell(t, tb, 0, 4) != cell(t, tb, 1, 4) {
		t.Fatalf("rounds differ: %v vs %v", cell(t, tb, 0, 4), cell(t, tb, 1, 4))
	}
	if cell(t, tb, 1, 1) >= cell(t, tb, 0, 1) {
		t.Fatalf("pivot probing did not reduce PIM work: %v vs %v", cell(t, tb, 1, 1), cell(t, tb, 0, 1))
	}
}

func TestFaultRecoveryShapes(t *testing.T) {
	tb := FaultRecovery(tiny)
	if len(tb.Rows) != 4 {
		t.Fatalf("expected 4 scenarios, got %d", len(tb.Rows))
	}
	for _, row := range tb.Rows {
		if row[len(row)-1] != "yes" {
			t.Fatalf("scenario %q diverged from the fault-free oracle", row[0])
		}
	}
	// The fault-free row must report no injected faults and no repair
	// cost; every crash scenario must report recoveries with nonzero
	// rounds and IO time.
	if cell(t, tb, 0, 1) != 0 || cell(t, tb, 0, 6) != 0 {
		t.Fatalf("fault-free row reports faults/repair: %v", tb.Rows[0])
	}
	for r := 1; r < len(tb.Rows); r++ {
		if cell(t, tb, r, 1) < 1 {
			t.Fatalf("scenario %q injected no crash", tb.Rows[r][0])
		}
		if cell(t, tb, r, 4) < 1 || cell(t, tb, r, 6) <= 0 || cell(t, tb, r, 7) <= 0 {
			t.Fatalf("scenario %q has uncosted recovery: %v", tb.Rows[r][0], tb.Rows[r])
		}
	}
}
