package experiments

import (
	"bytes"
	"encoding/json"
	"testing"
)

func TestFlatMetrics(t *testing.T) {
	tb := Table{
		ID:     "EX",
		Header: []string{"l(bits)", "pim-trie", "dist-xfast", "dist-radix"},
		Rows: [][]string{
			{"64", "3", "7.50", "-"},
			{"128", "4", "~8*", "25(scaled)"},
		},
	}
	m := tb.FlatMetrics()
	want := map[string]float64{
		"64/pim-trie":    3,
		"64/dist-xfast":  7.5,
		"128/pim-trie":   4,
		"128/dist-xfast": 8,
		"128/dist-radix": 25,
	}
	if len(m) != len(want) {
		t.Fatalf("FlatMetrics = %v, want %v", m, want)
	}
	for k, v := range want {
		if m[k] != v {
			t.Errorf("FlatMetrics[%q] = %v, want %v", k, m[k], v)
		}
	}
}

func TestWriteResultsJSON(t *testing.T) {
	tb := Table{ID: "E0", Title: "t", Header: []string{"k", "v"}, Rows: [][]string{{"a", "1"}}}
	var buf bytes.Buffer
	if err := WriteResultsJSON(&buf, []Table{tb}); err != nil {
		t.Fatal(err)
	}
	var out map[string]Result
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	r, ok := out["E0"]
	if !ok || r.Metrics["a/v"] != 1 {
		t.Fatalf("decoded %v", out)
	}
}
