// Package experiments regenerates every table and figure of the paper's
// evaluation (see DESIGN.md §3 for the experiment index). Each function
// runs one sweep on fresh simulated systems and returns a formatted
// Table; cmd/pimbench prints them, bench_test.go asserts their shapes.
//
// All quantities are PIM Model metrics: IO rounds per batch, IO words
// per operation, IO time (max per-module words), balance ratios
// (P·max/avg), PIM time and space in machine words. Absolute wall-clock
// is reported by the Go benchmarks instead.
package experiments

import (
	"fmt"
	"reflect"
	"strings"

	"github.com/pimlab/pimtrie/internal/baseline"
	"github.com/pimlab/pimtrie/internal/bitstr"
	"github.com/pimlab/pimtrie/internal/core"
	"github.com/pimlab/pimtrie/internal/pim"
	"github.com/pimlab/pimtrie/internal/workload"
)

// Table is one rendered experiment result.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  string
}

// Format renders the table as aligned text.
func (t Table) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			fmt.Fprintf(&b, "%-*s  ", widths[i], c)
		}
		b.WriteString("\n")
	}
	line(t.Header)
	for _, row := range t.Rows {
		line(row)
	}
	if t.Notes != "" {
		fmt.Fprintf(&b, "note: %s\n", t.Notes)
	}
	return b.String()
}

// Scale bundles sweep sizes so tests can shrink them.
type Scale struct {
	P     int // modules
	N     int // stored keys
	Batch int // queries per batch
	Seed  int64
}

// DefaultScale is used by cmd/pimbench.
var DefaultScale = Scale{P: 32, N: 20000, Batch: 2048, Seed: 1}

func f64(v float64) string { return fmt.Sprintf("%.2f", v) }
func i64(v int64) string   { return fmt.Sprintf("%d", v) }

// newPIMTrie builds a loaded PIM-trie over its own system.
func newPIMTrie(sc Scale, keys []bitstr.String, values []uint64) (*core.PIMTrie, *pim.System) {
	sys := pim.NewSystem(sc.P, pim.WithSeed(sc.Seed))
	pt := core.New(sys, core.Config{HashSeed: uint64(sc.Seed)})
	pt.Build(keys, values)
	return pt, sys
}

// SpaceTable reproduces Table 1's Space column: words of storage per
// structure as n grows, for 64-bit keys (the only width the x-fast
// baseline supports) and long keys (PIM-trie and DistRadix only).
func SpaceTable(sc Scale) Table {
	t := Table{
		ID:     "E1",
		Title:  "Table 1 (space): words of PIM memory vs n",
		Header: []string{"n", "l(bits)", "pim-trie", "dist-radix", "dist-xfast", "range-part"},
		Notes:  "expected shape: pim-trie ≈ dist-radix ≈ range-part = O(L/w + n); dist-xfast = O(n·l) — an l/w ≈ w/1 factor larger at l=64",
	}
	for _, n := range []int{sc.N / 8, sc.N / 2, sc.N} {
		for _, l := range []int{64, 512} {
			g := workload.New(sc.Seed)
			keys := g.FixedLen(n, l)
			values := g.Values(n)

			pt, ptSys := newPIMTrie(sc, keys, values)
			_ = pt
			ptSpace, _ := ptSys.SpaceWords()

			drSys := pim.NewSystem(sc.P, pim.WithSeed(sc.Seed))
			dr := baseline.NewDistRadix(drSys, 8, keys, values)
			drSpace := dr.SpaceWords()

			rpSys := pim.NewSystem(sc.P, pim.WithSeed(sc.Seed))
			rp := baseline.NewRangePart(rpSys, keys, values)
			rpSpace := rp.SpaceWords()

			xfSpace := "-"
			if l == 64 {
				xfSys := pim.NewSystem(sc.P, pim.WithSeed(sc.Seed))
				ints := g.Uints(n, 64)
				xf := baseline.NewDistXFast(xfSys, 64, ints, values)
				xfSpace = fmt.Sprintf("%d", xf.SpaceWords())
			}
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("%d", n), fmt.Sprintf("%d", l),
				fmt.Sprintf("%d", ptSpace), fmt.Sprintf("%d", drSpace), xfSpace, fmt.Sprintf("%d", rpSpace),
			})
		}
	}
	return t
}

// RoundsLCP reproduces Table 1's IO-rounds column for LCP: rounds per
// batch as the key length l grows — PIM-trie flat, DistRadix ~ l/s,
// DistXFast ~ log l.
func RoundsLCP(sc Scale) Table {
	t := Table{
		ID:     "E2",
		Title:  "Table 1 (IO rounds, LCP): rounds per batch vs key length",
		Header: []string{"l(bits)", "pim-trie", "dist-radix(s=8)", "dist-xfast", "range-part"},
		Notes:  "expected shape: pim-trie and range-part flat; dist-radix grows ≈ l/8; dist-xfast ≈ log2(l)",
	}
	for _, l := range []int{64, 128, 256, 512, 1024} {
		g := workload.New(sc.Seed)
		keys := g.FixedLen(sc.N/4, l)
		values := g.Values(len(keys))
		queries := g.PrefixQueries(keys, sc.Batch/2, 16)

		pt, ptSys := newPIMTrie(sc, keys, values)
		before := ptSys.Metrics()
		pt.LCP(queries)
		ptRounds := ptSys.Metrics().Sub(before).Rounds

		drSys := pim.NewSystem(sc.P, pim.WithSeed(sc.Seed))
		dr := baseline.NewDistRadix(drSys, 8, keys, values)
		before = drSys.Metrics()
		dr.LCP(queries)
		drRounds := drSys.Metrics().Sub(before).Rounds

		xfRounds := "-"
		if l <= 64 {
			xfSys := pim.NewSystem(sc.P, pim.WithSeed(sc.Seed))
			ints := g.Uints(len(keys), l)
			xf := baseline.NewDistXFast(xfSys, l, ints, values)
			before = xfSys.Metrics()
			xf.LongestPrefixLevel(ints[:len(queries)])
			xfRounds = i64(xfSys.Metrics().Sub(before).Rounds)
		} else {
			// Larger widths exceed the machine word: the structure cannot
			// represent them (Table 1's footnote #) — report log2 l as the
			// hypothetical bound.
			xfRounds = fmt.Sprintf("~%d*", log2(l)+1)
		}

		rpSys := pim.NewSystem(sc.P, pim.WithSeed(sc.Seed))
		rp := baseline.NewRangePart(rpSys, keys, values)
		before = rpSys.Metrics()
		rp.LCP(queries)
		rpRounds := rpSys.Metrics().Sub(before).Rounds

		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", l), i64(ptRounds), i64(drRounds), xfRounds, i64(rpRounds),
		})
	}
	return t
}

func log2(v int) int {
	n := 0
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}

// RoundsVsP measures PIM-trie's rounds per batch across module counts —
// the O(log P) claim (flat-to-logarithmic in our flattened descent).
func RoundsVsP(sc Scale) Table {
	t := Table{
		ID:     "E2b",
		Title:  "IO rounds per LCP batch vs P (pim-trie)",
		Header: []string{"P", "rounds", "io-time", "io-words/op"},
		Notes:  "expected shape: rounds flat/logarithmic in P; io-time shrinking ≈ 1/P at fixed batch",
	}
	g := workload.New(sc.Seed)
	keys := g.VarLen(sc.N/2, 32, 256)
	values := g.Values(len(keys))
	queries := g.PrefixQueries(keys, sc.Batch, 16)
	for _, p := range []int{4, 8, 16, 32, 64, 128} {
		sys := pim.NewSystem(p, pim.WithSeed(sc.Seed))
		pt := core.New(sys, core.Config{HashSeed: uint64(sc.Seed)})
		pt.Build(keys, values)
		before := sys.Metrics()
		pt.LCP(queries)
		d := sys.Metrics().Sub(before)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", p), i64(d.Rounds), i64(d.IOTime),
			f64(float64(d.IOWords) / float64(len(queries))),
		})
	}
	return t
}

// RoundsUpdate reproduces Table 1's IO-rounds column for Insert/Delete.
func RoundsUpdate(sc Scale) Table {
	t := Table{
		ID:     "E3",
		Title:  "Table 1 (IO rounds, Insert+Delete): rounds per batch vs key length",
		Header: []string{"l(bits)", "pim-trie ins", "pim-trie del", "dist-radix ins", "range-part ins"},
		Notes:  "expected shape: pim-trie and range-part flat (amortized); dist-radix grows with l and batch (no batch parallelism)",
	}
	for _, l := range []int{64, 256, 512} {
		g := workload.New(sc.Seed)
		keys := g.FixedLen(sc.N/4, l)
		values := g.Values(len(keys))
		fresh := g.FixedLen(sc.Batch/4, l)
		freshV := g.Values(len(fresh))

		pt, ptSys := newPIMTrie(sc, keys, values)
		before := ptSys.Metrics()
		pt.Insert(fresh, freshV)
		insRounds := ptSys.Metrics().Sub(before).Rounds
		before = ptSys.Metrics()
		pt.Delete(fresh)
		delRounds := ptSys.Metrics().Sub(before).Rounds

		drSys := pim.NewSystem(sc.P, pim.WithSeed(sc.Seed))
		dr := baseline.NewDistRadix(drSys, 8, keys, values)
		before = drSys.Metrics()
		dr.Insert(fresh[:64], freshV[:64]) // clipped: per-key rounds explode
		drRounds := drSys.Metrics().Sub(before).Rounds * int64(len(fresh)) / 64

		rpSys := pim.NewSystem(sc.P, pim.WithSeed(sc.Seed))
		rp := baseline.NewRangePart(rpSys, keys, values)
		before = rpSys.Metrics()
		rp.Insert(fresh, freshV)
		rpRounds := rpSys.Metrics().Sub(before).Rounds

		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", l), i64(insRounds), i64(delRounds),
			fmt.Sprintf("%d(scaled)", drRounds), i64(rpRounds),
		})
	}
	return t
}

// RoundsSubtree reproduces Table 1's Subtree column: rounds vs result
// size — PIM-trie bounded by the block-tree depth, DistRadix by O(n_D).
func RoundsSubtree(sc Scale) Table {
	t := Table{
		ID:     "E4",
		Title:  "Table 1 (IO rounds, Subtree): rounds per query vs result size",
		Header: []string{"result-size", "pim-trie", "dist-radix(s=8)"},
		Notes:  "expected shape: pim-trie grows with block-tree depth (log-ish); dist-radix grows with the subtree's node depth",
	}
	g := workload.New(sc.Seed)
	// Keys under a common 16-bit prefix so one query returns them all.
	prefixKeys := g.SharedPrefix(sc.N/8, 16, 96)
	other := g.FixedLen(sc.N/8, 112)
	keys := append(append([]bitstr.String{}, prefixKeys...), other...)
	values := g.Values(len(keys))
	prefix := prefixKeys[0].Prefix(16)

	for _, frac := range []int{16, 4, 1} {
		sub := keys[:len(prefixKeys)/frac]
		subV := values[:len(sub)]
		all := append(append([]bitstr.String{}, sub...), other...)
		allV := append(append([]uint64{}, subV...), values[len(prefixKeys):len(prefixKeys)+len(other)]...)

		pt, ptSys := newPIMTrie(sc, all, allV)
		before := ptSys.Metrics()
		res := pt.SubtreeQuery(prefix)
		ptRounds := ptSys.Metrics().Sub(before).Rounds

		drSys := pim.NewSystem(sc.P, pim.WithSeed(sc.Seed))
		dr := baseline.NewDistRadix(drSys, 8, all, allV)
		before = drSys.Metrics()
		res2 := dr.Subtree(prefix)
		drRounds := drSys.Metrics().Sub(before).Rounds
		if len(res) != len(res2) {
			panic("experiments: subtree disagreement between structures")
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", len(res)), i64(ptRounds), i64(drRounds),
		})
	}
	return t
}

// CommPerOp reproduces Table 1's communication column: IO words per
// operation vs key length for LCP and Insert.
func CommPerOp(sc Scale) Table {
	t := Table{
		ID:     "E5",
		Title:  "Table 1 (communication): IO words per op vs key length",
		Header: []string{"l(bits)", "pt-lcp", "pt-ins", "dr-lcp", "dr-ins", "xf-lcp", "rp-lcp"},
		Notes:  "expected shape: pim-trie ≈ l/64 + c (words); dist-radix ≈ l/8 (8× more); dist-xfast ≈ log l; range-part ≈ l/64 + c",
	}
	for _, l := range []int{64, 128, 256, 512, 1024} {
		g := workload.New(sc.Seed)
		keys := g.FixedLen(sc.N/4, l)
		values := g.Values(len(keys))
		// Queries are stored keys: full-length matches, so communication
		// reflects the whole key (random queries would diverge after
		// ~log n bits and hide the l-dependence).
		queries := g.Zipf(keys, sc.Batch/2, 1.01)
		nq := float64(len(queries))

		pt, ptSys := newPIMTrie(sc, keys, values)
		before := ptSys.Metrics()
		pt.LCP(queries)
		ptLCP := float64(ptSys.Metrics().Sub(before).IOWords) / nq
		freshIns := g.FixedLen(len(queries), l)
		before = ptSys.Metrics()
		pt.Insert(freshIns, values[:len(freshIns)])
		ptIns := float64(ptSys.Metrics().Sub(before).IOWords) / nq

		drSys := pim.NewSystem(sc.P, pim.WithSeed(sc.Seed))
		dr := baseline.NewDistRadix(drSys, 8, keys, values)
		before = drSys.Metrics()
		dr.LCP(queries)
		drLCP := float64(drSys.Metrics().Sub(before).IOWords) / nq
		before = drSys.Metrics()
		dr.Insert(freshIns[:64], values[:64])
		drIns := float64(drSys.Metrics().Sub(before).IOWords) / 64

		xfLCP := "-"
		if l <= 64 {
			xfSys := pim.NewSystem(sc.P, pim.WithSeed(sc.Seed))
			ints := g.Uints(len(keys), l)
			xf := baseline.NewDistXFast(xfSys, l, ints, values)
			before = xfSys.Metrics()
			xf.LongestPrefixLevel(ints[:len(queries)])
			xfLCP = f64(float64(xfSys.Metrics().Sub(before).IOWords) / nq)
		}

		rpSys := pim.NewSystem(sc.P, pim.WithSeed(sc.Seed))
		rp := baseline.NewRangePart(rpSys, keys, values)
		before = rpSys.Metrics()
		rp.LCP(queries)
		rpLCP := float64(rpSys.Metrics().Sub(before).IOWords) / nq

		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", l), f64(ptLCP), f64(ptIns), f64(drLCP), f64(drIns), xfLCP, f64(rpLCP),
		})
	}
	return t
}

// CommSubtree reproduces Table 1's Subtree communication: words per
// query vs result size (dominated by the result itself, O((l+L_S)/w+n_S)).
func CommSubtree(sc Scale) Table {
	t := Table{
		ID:     "E6",
		Title:  "Table 1 (communication, Subtree): IO words per query vs result size",
		Header: []string{"result-size", "pim-trie words", "dist-radix words", "words/result (pt)"},
		Notes:  "expected shape: both linear in the result; pim-trie constant-factor smaller (block transfers vs per-node fetches)",
	}
	g := workload.New(sc.Seed)
	prefixKeys := g.SharedPrefix(sc.N/8, 16, 96)
	other := g.FixedLen(sc.N/8, 112)
	values := g.Values(len(prefixKeys) + len(other))
	prefix := prefixKeys[0].Prefix(16)
	for _, frac := range []int{16, 4, 1} {
		sub := prefixKeys[:len(prefixKeys)/frac]
		all := append(append([]bitstr.String{}, sub...), other...)
		allV := values[:len(all)]

		pt, ptSys := newPIMTrie(sc, all, allV)
		before := ptSys.Metrics()
		res := pt.SubtreeQuery(prefix)
		ptWords := ptSys.Metrics().Sub(before).IOWords

		drSys := pim.NewSystem(sc.P, pim.WithSeed(sc.Seed))
		dr := baseline.NewDistRadix(drSys, 8, all, allV)
		before = drSys.Metrics()
		dr.Subtree(prefix)
		drWords := drSys.Metrics().Sub(before).IOWords

		perRes := "-"
		if len(res) > 0 {
			perRes = f64(float64(ptWords) / float64(len(res)))
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", len(res)), i64(ptWords), i64(drWords), perRes,
		})
	}
	return t
}

// SkewBalance reproduces the paper's headline claim (E7): per-module IO
// balance under adversarial skew, for PIM-trie vs the baselines.
// Balance = P · max_module(io) / Σ(io); 1.0 is perfect.
func SkewBalance(sc Scale) Table {
	t := Table{
		ID:     "E7",
		Title:  "skew resistance: IO balance (P·max/total) per LCP batch",
		Header: []string{"workload", "pim-trie", "range-part", "dist-radix(s=8)"},
		Notes:  "expected shape: pim-trie stays near 1–3 for every row; range-part degrades toward P under range/point skew; dist-radix degrades under shared-prefix skew",
	}
	g := workload.New(sc.Seed)
	keys := g.VarLen(sc.N/2, 48, 160)
	values := g.Values(len(keys))

	pt, ptSys := newPIMTrie(sc, keys, values)
	rpSys := pim.NewSystem(sc.P, pim.WithSeed(sc.Seed))
	rp := baseline.NewRangePart(rpSys, keys, values)
	drSys := pim.NewSystem(sc.P, pim.WithSeed(sc.Seed))
	dr := baseline.NewDistRadix(drSys, 8, keys, values)

	cases := []struct {
		name  string
		batch []bitstr.String
	}{
		{"uniform", g.FixedLen(sc.Batch, 96)},
		{"zipf(1.5)", g.Zipf(keys, sc.Batch, 1.5)},
		{"zipf(3.0)", g.Zipf(keys, sc.Batch, 3.0)},
		{"range-attack", g.RangeAttack(keys, sc.Batch, 48)},
		{"point-attack", g.PointAttack(keys, sc.Batch)},
	}
	for _, c := range cases {
		before := ptSys.Metrics()
		pt.LCP(c.batch)
		ptBal := ptSys.Metrics().Sub(before).IOBalance()

		before = rpSys.Metrics()
		rp.LCP(c.batch)
		rpBal := rpSys.Metrics().Sub(before).IOBalance()

		before = drSys.Metrics()
		dr.LCP(c.batch)
		drBal := drSys.Metrics().Sub(before).IOBalance()

		t.Rows = append(t.Rows, []string{c.name, f64(ptBal), f64(rpBal), f64(drBal)})
	}
	return t
}

// SkewedDataBalance complements E7 with data skew: a deep shared-prefix
// key set, queried uniformly along the spine.
func SkewedDataBalance(sc Scale) Table {
	t := Table{
		ID:     "E7b",
		Title:  "skew resistance under data skew (deep shared prefix)",
		Header: []string{"prefix(bits)", "pim-trie bal", "dist-radix bal", "pt rounds", "dr rounds"},
		Notes:  "expected shape: pim-trie balance and rounds flat as the spine deepens; dist-radix serializes on the spine (balance and rounds grow)",
	}
	for _, prefixBits := range []int{0, 256, 1024} {
		g := workload.New(sc.Seed)
		var keys []bitstr.String
		if prefixBits == 0 {
			keys = g.FixedLen(sc.N/8, 128)
		} else {
			keys = g.SharedPrefix(sc.N/8, prefixBits, 64)
		}
		values := g.Values(len(keys))
		queries := g.PrefixQueries(keys, sc.Batch/2, 8)

		pt, ptSys := newPIMTrie(sc, keys, values)
		before := ptSys.Metrics()
		pt.LCP(queries)
		d := ptSys.Metrics().Sub(before)

		drSys := pim.NewSystem(sc.P, pim.WithSeed(sc.Seed))
		dr := baseline.NewDistRadix(drSys, 8, keys, values)
		before = drSys.Metrics()
		dr.LCP(queries)
		dd := drSys.Metrics().Sub(before)

		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", prefixBits), f64(d.IOBalance()), f64(dd.IOBalance()),
			i64(d.Rounds), i64(dd.Rounds),
		})
	}
	return t
}

// TheoremBounds checks Theorem 4.3 empirically (E8): rounds small and
// flat, IO time ≈ IO words / P (PIM-balance), across seeds.
func TheoremBounds(sc Scale) Table {
	t := Table{
		ID:     "E8",
		Title:  "Theorem 4.3 bounds: per-batch rounds, IO-time vs IOwords/P",
		Header: []string{"seed", "rounds", "io-words", "io-time", "P·io-time/io-words"},
		Notes:  "PIM-balance whp: the last column should stay O(1) (small constant) across seeds",
	}
	for seed := int64(1); seed <= 5; seed++ {
		g := workload.New(seed)
		keys := g.VarLen(sc.N/4, 32, 192)
		values := g.Values(len(keys))
		queries := g.PrefixQueries(keys, sc.Batch, 16)
		sys := pim.NewSystem(sc.P, pim.WithSeed(seed))
		pt := core.New(sys, core.Config{HashSeed: uint64(seed)})
		pt.Build(keys, values)
		before := sys.Metrics()
		pt.LCP(queries)
		d := sys.Metrics().Sub(before)
		ratio := float64(sc.P) * float64(d.IOTime) / float64(d.IOWords)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", seed), i64(d.Rounds), i64(d.IOWords), i64(d.IOTime), f64(ratio),
		})
	}
	return t
}

// AblationHashWidth (E9c) sweeps the hash output width, reporting false
// positives caught by verification and the resulting overhead.
func AblationHashWidth(sc Scale) Table {
	t := Table{
		ID:     "E9c",
		Title:  "ablation: hash width vs verification false hits (per LCP batch)",
		Header: []string{"width(bits)", "false-hits", "rehashes", "io-words/op"},
		Notes:  "narrow hashes trade verification work for hash-table space; results stay exact at every width",
	}
	g := workload.New(sc.Seed)
	keys := g.VarLen(sc.N/8, 32, 160)
	values := g.Values(len(keys))
	queries := g.PrefixQueries(keys, sc.Batch/2, 16)
	for _, width := range []uint{16, 20, 24, 61} {
		sys := pim.NewSystem(sc.P, pim.WithSeed(sc.Seed))
		pt := core.New(sys, core.Config{HashSeed: uint64(sc.Seed), HashWidth: width, MaxRedo: 100})
		pt.Build(keys, values)
		before := sys.Metrics()
		fhBefore := pt.FalseHits()
		pt.LCP(queries)
		d := sys.Metrics().Sub(before)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", width),
			fmt.Sprintf("%d", pt.FalseHits()-fhBefore),
			fmt.Sprintf("%d", pt.Rehashes()),
			f64(float64(d.IOWords) / float64(len(queries))),
		})
	}
	return t
}

// AblationBlockSize (E9a) sweeps K_B, showing the balance/communication
// trade-off of block granularity.
func AblationBlockSize(sc Scale) Table {
	t := Table{
		ID:     "E9a",
		Title:  "ablation: block size K_B vs balance and words per op",
		Header: []string{"K_B(words)", "blocks", "io-words/op", "balance", "rounds"},
		Notes:  "small blocks spread load (balance↓) but add per-block overhead; large blocks amortize but coarsen distribution",
	}
	g := workload.New(sc.Seed)
	keys := g.VarLen(sc.N/4, 48, 160)
	values := g.Values(len(keys))
	queries := g.PrefixQueries(keys, sc.Batch, 16)
	for _, kb := range []int{32, 64, 128, 256} {
		sys := pim.NewSystem(sc.P, pim.WithSeed(sc.Seed))
		pt := core.New(sys, core.Config{HashSeed: uint64(sc.Seed), BlockWords: kb})
		pt.Build(keys, values)
		st := pt.CollectStats()
		before := sys.Metrics()
		pt.LCP(queries)
		d := sys.Metrics().Sub(before)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", kb), fmt.Sprintf("%d", st.Blocks),
			f64(float64(d.IOWords) / float64(len(queries))), f64(d.IOBalance()), i64(d.Rounds),
		})
	}
	return t
}

// AblationPushPull (E9b) compares push-only, pull-only and adaptive
// push-pull thresholds.
func AblationPushPull(sc Scale) Table {
	t := Table{
		ID:     "E9b",
		Title:  "ablation: push-pull threshold vs IO under point-skewed queries",
		Header: []string{"threshold(words)", "io-words/op", "io-time", "balance"},
		Notes:  "push-only (huge threshold) ships oversized pieces to single modules; pull-only (0-ish) drags blocks to the CPU; the adaptive middle is best on both",
	}
	g := workload.New(sc.Seed)
	keys := g.SharedPrefix(sc.N/8, 128, 96)
	values := g.Values(len(keys))
	queries := g.Zipf(keys, sc.Batch, 2.0)
	for _, th := range []int{8, 256, 1 << 20} {
		sys := pim.NewSystem(sc.P, pim.WithSeed(sc.Seed))
		pt := core.New(sys, core.Config{HashSeed: uint64(sc.Seed), PullThreshold: th})
		pt.Build(keys, values)
		before := sys.Metrics()
		pt.LCP(queries)
		d := sys.Metrics().Sub(before)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", th),
			f64(float64(d.IOWords) / float64(len(queries))), i64(d.IOTime), f64(d.IOBalance()),
		})
	}
	return t
}

// AblationRegionSize (E9d) sweeps K_MB, the meta-block (region) bound:
// few huge regions concentrate meta probing; many small ones inflate the
// replicated master table.
func AblationRegionSize(sc Scale) Table {
	t := Table{
		ID:     "E9d",
		Title:  "ablation: region size K_MB vs master size and balance",
		Header: []string{"K_MB(metas)", "regions", "master-entries", "io-words/op", "balance"},
		Notes:  "small regions inflate the replicated master (space, broadcast cost); large regions coarsen meta distribution (balance)",
	}
	g := workload.New(sc.Seed)
	keys := g.VarLen(sc.N/4, 48, 160)
	values := g.Values(len(keys))
	queries := g.PrefixQueries(keys, sc.Batch, 16)
	for _, kmb := range []int{8, 32, 128, 512} {
		sys := pim.NewSystem(sc.P, pim.WithSeed(sc.Seed))
		pt := core.New(sys, core.Config{HashSeed: uint64(sc.Seed), MetaBlockMax: kmb})
		pt.Build(keys, values)
		st := pt.CollectStats()
		before := sys.Metrics()
		pt.LCP(queries)
		d := sys.Metrics().Sub(before)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", kmb), fmt.Sprintf("%d", st.Regions), fmt.Sprintf("%d", pt.MasterEntries()),
			f64(float64(d.IOWords) / float64(len(queries))), f64(d.IOBalance()),
		})
	}
	return t
}

// AblationPivotProbing (E9e) compares per-bit region probing with the
// §4.4.2 pivot-class probe: identical results, lower PIM work.
func AblationPivotProbing(sc Scale) Table {
	t := Table{
		ID:     "E9e",
		Title:  "ablation: per-bit vs pivot-class region probing (LCP batch)",
		Header: []string{"probing", "pim-work", "pim-time", "io-words/op", "rounds"},
		Notes:  "pivot probing replaces one region lookup per bit with one two-layer lookup per word; results are identical (equivalence-tested)",
	}
	g := workload.New(sc.Seed)
	// Long keys under shared prefixes make region probing the dominant
	// PIM cost.
	keys := g.SharedPrefix(sc.N/8, 512, 128)
	values := g.Values(len(keys))
	queries := g.PrefixQueries(keys, sc.Batch/2, 16)
	for _, pivot := range []bool{false, true} {
		sys := pim.NewSystem(sc.P, pim.WithSeed(sc.Seed))
		pt := core.New(sys, core.Config{HashSeed: uint64(sc.Seed), PivotProbing: pivot})
		pt.Build(keys, values)
		before := sys.Metrics()
		pt.LCP(queries)
		d := sys.Metrics().Sub(before)
		name := "per-bit"
		if pivot {
			name = "pivot"
		}
		t.Rows = append(t.Rows, []string{
			name, i64(d.PIMWork), i64(d.PIMTime),
			f64(float64(d.IOWords) / float64(len(queries))), i64(d.Rounds),
		})
	}
	return t
}

// FaultRecovery reproduces the robustness claim: under a seeded fault
// plan, answers stay bit-identical to a fault-free oracle while the
// module-loss repair cost is first-class in the model metrics. Each
// scenario runs the same build + LCP/Insert/Delete/LCP script; the
// answers-ok column compares every result against the fault-free run.
func FaultRecovery(sc Scale) Table {
	t := Table{
		ID:    "EF",
		Title: "fault injection: module-loss recovery",
		Header: []string{
			"scenario", "crashes", "straggles", "truncs",
			"recoveries", "full-rebuilds", "rec-rounds", "rec-io-time", "answers-ok",
		},
		Notes: "answers-ok: all results bit-identical to the fault-free oracle",
	}
	g := workload.New(sc.Seed)
	keys := g.VarLen(sc.N, 32, 128)
	values := g.Values(len(keys))
	queries := g.PrefixQueries(keys, sc.Batch, 12)
	fresh := g.FixedLen(sc.Batch, 64)
	freshVals := g.Values(len(fresh))

	type outcome struct {
		lcp1, lcp2 []int
		dels       []bool
		n          int
	}
	run := func(plan *pim.FaultPlan) (outcome, core.Health, int64) {
		opts := []pim.Option{pim.WithSeed(sc.Seed)}
		if plan != nil {
			opts = append(opts, pim.WithFaults(*plan))
		}
		sys := pim.NewSystem(sc.P, opts...)
		defer sys.Close()
		pt := core.New(sys, core.Config{HashSeed: uint64(sc.Seed), Recoverable: true})
		pt.Build(keys, values)
		var o outcome
		o.lcp1 = pt.LCP(queries)
		pt.Insert(fresh, freshVals)
		o.dels = pt.Delete(keys[:sc.Batch])
		o.lcp2 = pt.LCP(queries)
		o.n = pt.KeyCount()
		return o, pt.Health(), sys.Metrics().Rounds
	}

	oracle, _, rounds := run(nil)
	mid := rounds / 2
	scenarios := []struct {
		name string
		plan *pim.FaultPlan
	}{
		{"fault-free", nil},
		{"crash-1", &pim.FaultPlan{Events: []pim.FaultEvent{
			{Round: mid, Kind: pim.FaultCrash, Module: -1},
		}}},
		{"crash-2", &pim.FaultPlan{Events: []pim.FaultEvent{
			{Round: rounds / 3, Kind: pim.FaultCrash, Module: -1},
			{Round: 2 * rounds / 3, Kind: pim.FaultCrash, Module: -1},
		}}},
		{"chaos", &pim.FaultPlan{
			Seed: sc.Seed, CrashProb: 0.01, StraggleProb: 0.05,
			TruncateProb: 0.02, MaxCrashes: 4,
			Events: []pim.FaultEvent{{Round: mid, Kind: pim.FaultCrash, Module: -1}},
		}},
	}
	for _, s := range scenarios {
		o, h, _ := run(s.plan)
		ok := "yes"
		if !reflect.DeepEqual(o, oracle) {
			ok = "NO"
		}
		t.Rows = append(t.Rows, []string{
			s.name, i64(h.Crashes), i64(h.Straggles), i64(h.Truncations),
			fmt.Sprintf("%d", h.Recoveries), fmt.Sprintf("%d", h.FullRebuilds),
			i64(h.RecoveryCost.Rounds), i64(h.RecoveryCost.IOTime), ok,
		})
	}
	return t
}

// All runs every experiment at the given scale.
func All(sc Scale) []Table {
	return []Table{
		SpaceTable(sc),
		RoundsLCP(sc),
		RoundsVsP(sc),
		RoundsUpdate(sc),
		RoundsSubtree(sc),
		CommPerOp(sc),
		CommSubtree(sc),
		SkewBalance(sc),
		SkewedDataBalance(sc),
		TheoremBounds(sc),
		AblationBlockSize(sc),
		AblationPushPull(sc),
		AblationHashWidth(sc),
		AblationRegionSize(sc),
		AblationPivotProbing(sc),
		FaultRecovery(sc),
	}
}
