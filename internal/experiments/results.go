// Machine-readable experiment results: cmd/pimbench -json serializes
// every table it ran through this file, so sweeps can be diffed and
// plotted without scraping the aligned-text output.
package experiments

import (
	"encoding/json"
	"io"
	"strconv"
	"strings"
)

// Result is one experiment table in wire form. Cells keeps the table
// verbatim (everything Format prints); Metrics holds the numeric cells
// re-keyed as "<first-column-value>/<column-header>" so consumers can
// index a value without knowing the table layout.
type Result struct {
	ID      string             `json:"id"`
	Title   string             `json:"title"`
	Header  []string           `json:"header"`
	Rows    [][]string         `json:"rows"`
	Notes   string             `json:"notes,omitempty"`
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// FlatMetrics extracts every parseable numeric cell, keyed by the row's
// first cell and the column header ("64/pim-trie": 12). Cells like
// "128(scaled)" or "~7*" contribute their leading number; non-numeric
// cells ("-") are skipped.
func (t Table) FlatMetrics() map[string]float64 {
	out := map[string]float64{}
	for _, row := range t.Rows {
		if len(row) == 0 {
			continue
		}
		for i := 1; i < len(row) && i < len(t.Header); i++ {
			v, ok := leadingNumber(row[i])
			if !ok {
				continue
			}
			out[row[0]+"/"+t.Header[i]] = v
		}
	}
	return out
}

// leadingNumber parses the longest numeric prefix of a cell, ignoring a
// leading "~" annotation.
func leadingNumber(s string) (float64, bool) {
	s = strings.TrimPrefix(strings.TrimSpace(s), "~")
	end := 0
	seenDigit := false
	for end < len(s) {
		c := s[end]
		if c >= '0' && c <= '9' {
			seenDigit = true
		} else if !(c == '.' || (end == 0 && (c == '-' || c == '+'))) {
			break
		}
		end++
	}
	if !seenDigit {
		return 0, false
	}
	v, err := strconv.ParseFloat(s[:end], 64)
	if err != nil {
		return 0, false
	}
	return v, true
}

// ToResult converts a table to its wire form.
func (t Table) ToResult() Result {
	return Result{
		ID: t.ID, Title: t.Title, Header: t.Header, Rows: t.Rows,
		Notes: t.Notes, Metrics: t.FlatMetrics(),
	}
}

// WriteResultsJSON writes the tables as one indented JSON document
// mapping experiment ID to Result.
func WriteResultsJSON(w io.Writer, tables []Table) error {
	out := make(map[string]Result, len(tables))
	for _, t := range tables {
		out[t.ID] = t.ToResult()
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
