package trie

import (
	"fmt"

	"github.com/pimlab/pimtrie/internal/bitstr"
)

// Flat is a read-only, cache-friendly snapshot of a Trie: every
// compressed node becomes one row of dense preorder-indexed arrays, and
// every edge label becomes an (offset, length) window into one shared
// label pool. Where the pointer trie chases Node → Edge → label-words
// across individually allocated objects — one dependent cache miss per
// hop — Flat keeps the child indexes of all nodes in a single
// contiguous array and all label bits in a single bitstr.String, so
// probes address memory by index and a batch of independent probes can
// be interleaved to overlap their misses (memory-level parallelism, cf.
// the Cuckoo Trie's MLP argument).
//
// A Flat is immutable and safe for concurrent use. It answers the
// read-side dictionary queries (Get, LCPLen, SubtreeKeys, WalkKeys)
// with exactly the Trie's results; mutations require re-flattening.
type Flat struct {
	// child[i] holds the preorder indexes of node i's children, -1 for
	// none; the slice of 2-arrays is one contiguous backing array.
	child [][2]int32
	// labelOff/labelLen window node i's parent-edge label within labels
	// (the root has length 0). Preorder means a node's label window
	// starts after its parent's, so a descent streams mostly forward.
	labelOff []int32
	labelLen []int32
	depth    []int32
	value    []uint64
	hasValue []bool
	labels   bitstr.String
	keys     int
}

// Flatten snapshots t. Nodes are numbered in preorder (root 0,
// bit-0 child subtree before bit-1), matching WalkPreorder order.
func Flatten(t *Trie) *Flat {
	n := t.NodeCount()
	f := &Flat{
		child:    make([][2]int32, 0, n),
		labelOff: make([]int32, 0, n),
		labelLen: make([]int32, 0, n),
		depth:    make([]int32, 0, n),
		value:    make([]uint64, 0, n),
		hasValue: make([]bool, 0, n),
		keys:     t.KeyCount(),
	}
	var pool bitstr.Builder
	var rec func(n *Node, labelOff, labelLen int) int32
	rec = func(nd *Node, labelOff, labelLen int) int32 {
		idx := int32(len(f.child))
		f.child = append(f.child, [2]int32{-1, -1})
		f.labelOff = append(f.labelOff, int32(labelOff))
		f.labelLen = append(f.labelLen, int32(labelLen))
		f.depth = append(f.depth, int32(nd.Depth))
		f.value = append(f.value, nd.Value)
		f.hasValue = append(f.hasValue, nd.HasValue)
		for b := 0; b < 2; b++ {
			if e := nd.Child[b]; e != nil {
				off := pool.Len()
				pool.Append(e.Label)
				f.child[idx][b] = rec(e.To, off, e.Label.Len())
			}
		}
		return idx
	}
	rec(t.Root(), 0, 0)
	f.labels = pool.String()
	return f
}

// NodeCount returns the number of flattened nodes.
func (f *Flat) NodeCount() int { return len(f.child) }

// KeyCount returns the number of stored pairs.
func (f *Flat) KeyCount() int { return f.keys }

// flatLanes is the interleaving width of the batch probes: that many
// independent key walks advance in lockstep, so up to flatLanes cache
// misses (child-row and label-word loads) are in flight at once
// instead of one. Eight covers the load buffers of current cores
// without spilling the lane state out of registers/L1.
const flatLanes = 8

// prefetchSink defeats dead-load elimination for the early label/child
// touches below; see bitstr's prefetch notes — the guarded store is
// never taken in practice, so concurrent probers do not race.
var prefetchSink uint64

const sinkSentinel = 0x9e3779b97f4a7c15

// step advances one lane's walk by a single edge once its child index
// is known. It returns the new (node, pos) and done:
//   - done with exact=true: pos == key length at a compressed node;
//   - done with exact=false: the walk diverged; matched bits = pos.
func (f *Flat) step(key bitstr.String, cur, pos, next int32) (ncur, npos int32, matched int32, exact, done bool) {
	ll := f.labelLen[next]
	n := int32(key.Len()) - pos
	if n > ll {
		n = ll
	}
	l := int32(bitstr.LCPRange(key, int(pos), f.labels, int(f.labelOff[next]), int(n)))
	if l < ll {
		// Diverged inside the edge (or the key ends at a hidden node).
		return cur, pos, pos + l, false, true
	}
	pos += ll
	if int(pos) == key.Len() {
		return next, pos, pos, true, true
	}
	return next, pos, pos, false, false
}

// GetBatch answers Get for every key: values[i], found[i] report key i.
// The walks run interleaved in groups of flatLanes: each round first
// issues the child-row and label-word loads of every live lane (the
// prefetch phase — all independent, so their misses overlap), then
// performs the label comparisons. Results are identical to calling
// Trie.Get per key on the snapshotted trie.
func (f *Flat) GetBatch(keys []bitstr.String, values []uint64, found []bool) {
	if len(values) != len(keys) || len(found) != len(keys) {
		panic("trie: GetBatch result slices sized wrong")
	}
	var cur, pos, next [flatLanes]int32
	sink := uint64(0)
	for g := 0; g < len(keys); g += flatLanes {
		m := len(keys) - g
		if m > flatLanes {
			m = flatLanes
		}
		live := uint32(1)<<uint(m) - 1
		for j := 0; j < m; j++ {
			cur[j], pos[j] = 0, 0
		}
		for live != 0 {
			// Phase 1: pick every live lane's next child and touch the
			// memory its comparison will need.
			for j := 0; j < m; j++ {
				if live&(1<<uint(j)) == 0 {
					continue
				}
				key := keys[g+j]
				if int(pos[j]) == key.Len() {
					values[g+j], found[g+j] = f.value[cur[j]], f.hasValue[cur[j]]
					live &^= 1 << uint(j)
					continue
				}
				c := f.child[cur[j]][key.BitAt(int(pos[j]))]
				next[j] = c
				if c < 0 {
					values[g+j], found[g+j] = 0, false
					live &^= 1 << uint(j)
					continue
				}
				// Early loads: the child's label window start and its
				// child row, needed in phase 2 / the next round.
				if ll := f.labelLen[c]; ll > 0 {
					off := int(f.labelOff[c])
					end := off + 64
					if int(ll) < 64 {
						end = off + int(ll)
					}
					sink ^= f.labels.RangeWord(off, end)
				}
				sink ^= uint64(f.child[c][0])
			}
			// Phase 2: compare labels and advance.
			for j := 0; j < m; j++ {
				if live&(1<<uint(j)) == 0 {
					continue
				}
				nc, np, _, exact, done := f.step(keys[g+j], cur[j], pos[j], next[j])
				cur[j], pos[j] = nc, np
				if done {
					if exact {
						values[g+j], found[g+j] = f.value[nc], f.hasValue[nc]
					} else {
						values[g+j], found[g+j] = 0, false
					}
					live &^= 1 << uint(j)
				}
			}
		}
	}
	if sink == sinkSentinel {
		prefetchSink = sink
	}
}

// LCPBatch answers LCPLen for every key with the same interleaved
// structure as GetBatch: out[i] is the longest common prefix, in bits,
// between key i and any stored prefix (compressed or hidden).
func (f *Flat) LCPBatch(keys []bitstr.String, out []int) {
	if len(out) != len(keys) {
		panic("trie: LCPBatch result slice sized wrong")
	}
	var cur, pos, next [flatLanes]int32
	sink := uint64(0)
	for g := 0; g < len(keys); g += flatLanes {
		m := len(keys) - g
		if m > flatLanes {
			m = flatLanes
		}
		live := uint32(1)<<uint(m) - 1
		for j := 0; j < m; j++ {
			cur[j], pos[j] = 0, 0
		}
		for live != 0 {
			for j := 0; j < m; j++ {
				if live&(1<<uint(j)) == 0 {
					continue
				}
				key := keys[g+j]
				if int(pos[j]) == key.Len() {
					out[g+j] = int(pos[j])
					live &^= 1 << uint(j)
					continue
				}
				c := f.child[cur[j]][key.BitAt(int(pos[j]))]
				next[j] = c
				if c < 0 {
					out[g+j] = int(pos[j])
					live &^= 1 << uint(j)
					continue
				}
				if ll := f.labelLen[c]; ll > 0 {
					off := int(f.labelOff[c])
					end := off + 64
					if int(ll) < 64 {
						end = off + int(ll)
					}
					sink ^= f.labels.RangeWord(off, end)
				}
				sink ^= uint64(f.child[c][0])
			}
			for j := 0; j < m; j++ {
				if live&(1<<uint(j)) == 0 {
					continue
				}
				nc, np, matched, _, done := f.step(keys[g+j], cur[j], pos[j], next[j])
				cur[j], pos[j] = nc, np
				if done {
					out[g+j] = int(matched)
					live &^= 1 << uint(j)
				}
			}
		}
	}
	if sink == sinkSentinel {
		prefetchSink = sink
	}
}

// Get answers a single exact lookup.
func (f *Flat) Get(key bitstr.String) (uint64, bool) {
	var v [1]uint64
	var ok [1]bool
	f.GetBatch([]bitstr.String{key}, v[:], ok[:])
	return v[0], ok[0]
}

// LCPLen answers a single longest-common-prefix query.
func (f *Flat) LCPLen(key bitstr.String) int {
	var out [1]int
	f.LCPBatch([]bitstr.String{key}, out[:])
	return out[0]
}

// WalkKeys visits every stored pair in lexicographic key order,
// reconstructing each key incrementally from the label pool — O(total
// label bits) overall, where the pointer trie's Keys pays a Concat
// chain per root-to-node path.
func (f *Flat) WalkKeys(fn func(key bitstr.String, value uint64)) {
	var b bitstr.Builder
	f.walkKeysFrom(0, &b, fn)
}

func (f *Flat) walkKeysFrom(idx int32, b *bitstr.Builder, fn func(bitstr.String, uint64)) {
	if f.hasValue[idx] {
		fn(b.String(), f.value[idx])
	}
	for bit := 0; bit < 2; bit++ {
		c := f.child[idx][bit]
		if c < 0 {
			continue
		}
		mark := b.Len()
		b.AppendRange(f.labels, int(f.labelOff[c]), int(f.labelOff[c])+int(f.labelLen[c]))
		f.walkKeysFrom(c, b, fn)
		b.Truncate(mark)
	}
}

// Keys returns all stored pairs in lexicographic key order.
func (f *Flat) Keys() []KV {
	out := make([]KV, 0, f.keys)
	f.WalkKeys(func(k bitstr.String, v uint64) { out = append(out, KV{Key: k, Value: v}) })
	return out
}

// SubtreeKeys returns, in order, every stored pair whose key has the
// given prefix — Trie.SubtreeKeys on the snapshot.
func (f *Flat) SubtreeKeys(prefix bitstr.String) []KV {
	// Locate the prefix with a single-lane walk.
	cur, pos := int32(0), int32(0)
	for {
		if int(pos) == prefix.Len() {
			break
		}
		c := f.child[cur][prefix.BitAt(int(pos))]
		if c < 0 {
			return nil
		}
		ll := f.labelLen[c]
		n := int32(prefix.Len()) - pos
		if n > ll {
			n = ll
		}
		l := int32(bitstr.LCPRange(prefix, int(pos), f.labels, int(f.labelOff[c]), int(n)))
		if l < n {
			return nil // diverged inside the edge
		}
		if l < ll {
			// Prefix ends on a hidden node inside c's edge: everything
			// below c qualifies, with the unmatched label tail appended.
			var b bitstr.Builder
			b.Append(prefix)
			b.AppendRange(f.labels, int(f.labelOff[c])+int(l), int(f.labelOff[c])+int(ll))
			var out []KV
			f.walkKeysFrom(c, &b, func(k bitstr.String, v uint64) { out = append(out, KV{Key: k, Value: v}) })
			return out
		}
		pos += ll
		cur = c
	}
	var b bitstr.Builder
	b.Append(prefix)
	var out []KV
	f.walkKeysFrom(cur, &b, func(k bitstr.String, v uint64) { out = append(out, KV{Key: k, Value: v}) })
	return out
}

// CheckAgainst verifies that f is a faithful snapshot of t (tests).
func (f *Flat) CheckAgainst(t *Trie) error {
	if f.NodeCount() != t.NodeCount() || f.KeyCount() != t.KeyCount() {
		return fmt.Errorf("trie: flat has %d nodes/%d keys, trie %d/%d",
			f.NodeCount(), f.KeyCount(), t.NodeCount(), t.KeyCount())
	}
	i := 0
	var err error
	t.WalkPreorder(func(n *Node) bool {
		if err != nil {
			return false
		}
		if f.hasValue[i] != n.HasValue || (n.HasValue && f.value[i] != n.Value) || int(f.depth[i]) != n.Depth {
			err = fmt.Errorf("trie: flat row %d disagrees with preorder node (depth %d)", i, n.Depth)
			return false
		}
		if e := n.ParentEdge; e != nil {
			if int(f.labelLen[i]) != e.Label.Len() ||
				!bitstr.EqualRange(f.labels, int(f.labelOff[i]), e.Label, 0, e.Label.Len()) {
				err = fmt.Errorf("trie: flat row %d label disagrees", i)
				return false
			}
		}
		i++
		return true
	})
	return err
}
