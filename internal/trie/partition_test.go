package trie

import (
	"math/rand"
	"sort"
	"strings"
	"testing"

	"github.com/pimlab/pimtrie/internal/bitstr"
)

func buildRandomTrie(r *rand.Rand, n, maxLen int) (*Trie, []string) {
	tr := New()
	seen := map[string]bool{}
	var keys []string
	for len(keys) < n {
		k := randomKey(r, maxLen)
		if len(keys) > 0 && r.Intn(3) == 0 {
			k = keys[r.Intn(len(keys))] + randomKey(r, maxLen/4)
		}
		if seen[k] {
			continue
		}
		seen[k] = true
		keys = append(keys, k)
		tr.Insert(bitstr.MustParse(k), uint64(len(keys)))
	}
	return tr, keys
}

func TestSplitLongEdges(t *testing.T) {
	tr := New()
	long := strings.Repeat("01", 1000) // 2000-bit single edge
	tr.Insert(bitstr.MustParse(long), 1)
	added := tr.SplitLongEdges(256)
	if added == 0 {
		t.Fatal("no anchors added")
	}
	tr.WalkPreorder(func(n *Node) bool {
		for b := 0; b < 2; b++ {
			if e := n.Child[b]; e != nil && e.Label.Len() > 256 {
				t.Fatalf("edge of %d bits survived", e.Label.Len())
			}
		}
		return true
	})
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if v, ok := tr.Get(bitstr.MustParse(long)); !ok || v != 1 {
		t.Fatal("key lost after splitting")
	}
	if got := tr.LCPLen(bitstr.MustParse(long[:777] + "0")); got != 777 {
		t.Fatalf("LCP after split = %d", got)
	}
}

func TestPartitionBlockWeightBound(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for _, maxWords := range []int{32, 64, 256} {
		tr, _ := buildRandomTrie(r, 800, 300)
		total := tr.SizeWords()
		cuts := tr.Partition(maxWords)
		isCut := map[*Node]bool{}
		for _, c := range cuts {
			isCut[c] = true
		}
		check := func(root *Node) {
			w := WeightWords(root, func(n *Node) bool { return isCut[n] })
			if w > maxWords {
				t.Fatalf("maxWords=%d: block weight %d exceeds bound", maxWords, w)
			}
		}
		check(tr.Root())
		for _, c := range cuts {
			check(c)
		}
		// Block count bound: O(total/maxWords).
		if len(cuts)+1 > 6*total/maxWords+2 {
			t.Fatalf("maxWords=%d: %d blocks for %d words", maxWords, len(cuts)+1, total)
		}
	}
}

func TestPartitionDeepSkewedTrie(t *testing.T) {
	// A pathological comb: one long spine with leaves hanging off —
	// maximal trie imbalance, the case that breaks layered indexes (§3.4).
	tr := New()
	spine := ""
	for i := 0; i < 400; i++ {
		spine += "0"
		tr.Insert(bitstr.MustParse(spine+"1"), uint64(i))
	}
	cuts := tr.Partition(64)
	if len(cuts) == 0 {
		t.Fatal("comb trie produced a single block")
	}
	isCut := map[*Node]bool{}
	for _, c := range cuts {
		isCut[c] = true
	}
	if w := WeightWords(tr.Root(), func(n *Node) bool { return isCut[n] }); w > 64 {
		t.Fatalf("root block weight %d", w)
	}
	for _, c := range cuts {
		if w := WeightWords(c, func(n *Node) bool { return isCut[n] && n != c }); w > 64 {
			t.Fatalf("block weight %d", w)
		}
	}
}

func TestPartitionPanicsBelowMinimum(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for tiny bound")
		}
	}()
	New().Partition(8)
}

func TestExtractBlocksReassembleKeys(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	tr, keys := buildRandomTrie(r, 400, 200)
	cuts := tr.Partition(64)
	blocks := tr.ExtractBlocks(cuts)
	if len(blocks) != len(cuts)+1 {
		t.Fatalf("blocks = %d, cuts = %d", len(blocks), len(cuts))
	}
	// Every block trie must be structurally sound.
	for i, b := range blocks {
		if err := b.Trie.CheckInvariants(); err != nil {
			t.Fatalf("block %d: %v", i, err)
		}
	}
	// Block 0 is rooted at the trie root.
	if blocks[0].RootString.Len() != 0 {
		t.Fatalf("block 0 root string %q", blocks[0].RootString)
	}
	// Reassemble all keys: for each block, each stored key is
	// RootString · (path within block); union must equal the original set.
	got := map[string]uint64{}
	for _, b := range blocks {
		for _, kv := range b.Trie.Keys() {
			full := b.RootString.Concat(kv.Key).String()
			if _, dup := got[full]; dup {
				t.Fatalf("key %q stored in two blocks", full)
			}
			got[full] = kv.Value
		}
	}
	if len(got) != len(keys) {
		t.Fatalf("reassembled %d keys, want %d", len(got), len(keys))
	}
	for i, k := range keys {
		if v, ok := got[k]; !ok || v != uint64(i+1) {
			t.Fatalf("key %q lost or wrong value", k)
		}
	}
}

func TestExtractBlocksMirrorLinks(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	tr, _ := buildRandomTrie(r, 500, 150)
	cuts := tr.Partition(48)
	blocks := tr.ExtractBlocks(cuts)
	childSeen := map[int]bool{0: true} // block 0 has no parent mirror
	for _, b := range blocks {
		for _, m := range b.Mirrors {
			if !m.Node.Mirror {
				t.Fatal("mirror ref points at non-mirror node")
			}
			if m.Node.HasValue {
				t.Fatal("mirror carries a value")
			}
			child := blocks[m.ChildIndex]
			// The mirror's full string must equal the child block's root.
			full := b.RootString.Concat(NodeString(m.Node))
			if !bitstr.Equal(full, child.RootString) {
				t.Fatalf("mirror string %q != child root %q", full, child.RootString)
			}
			if childSeen[m.ChildIndex] {
				t.Fatalf("block %d mirrored twice", m.ChildIndex)
			}
			childSeen[m.ChildIndex] = true
		}
	}
	if len(childSeen) != len(blocks) {
		t.Fatalf("only %d of %d blocks are linked", len(childSeen), len(blocks))
	}
}

func TestExtractBlocksPreservesValuesAtCutNodes(t *testing.T) {
	// A key that ends exactly at a block root must live in the child
	// block's root, not in the parent's mirror.
	tr := New()
	deep := strings.Repeat("10", 200)
	tr.Insert(bitstr.MustParse(deep), 42)
	tr.Insert(bitstr.MustParse(deep[:100]), 7) // forces a mid node
	cuts := tr.Partition(MinBlockWords)
	blocks := tr.ExtractBlocks(cuts)
	found := false
	for _, b := range blocks {
		for _, kv := range b.Trie.Keys() {
			if b.RootString.Concat(kv.Key).String() == deep[:100] && kv.Value == 7 {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("value at internal key lost in extraction")
	}
}

func TestExtractNoCutsSingleBlock(t *testing.T) {
	tr := New()
	for _, k := range []string{"00", "01", "11"} {
		tr.Insert(bitstr.MustParse(k), 1)
	}
	blocks := tr.ExtractBlocks(nil)
	if len(blocks) != 1 || len(blocks[0].Mirrors) != 0 {
		t.Fatalf("unexpected blocks: %d", len(blocks))
	}
	if blocks[0].Trie.KeyCount() != 3 {
		t.Fatalf("keys = %d", blocks[0].Trie.KeyCount())
	}
}

func TestWeightWordsMatchesSizeForWholeTrie(t *testing.T) {
	r := rand.New(rand.NewSource(10))
	tr, _ := buildRandomTrie(r, 200, 100)
	w := WeightWords(tr.Root(), nil)
	// WeightWords uses ceil-per-edge word counts; SizeWords pools bits, so
	// WeightWords ≥ SizeWords but within one word per edge.
	sz := tr.SizeWords()
	if w < sz-tr.NodeCount() || w > sz+tr.NodeCount() {
		t.Fatalf("WeightWords %d vs SizeWords %d (± %d)", w, sz, tr.NodeCount())
	}
}

func TestBlockSizeWordsSaneOrdering(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	tr, _ := buildRandomTrie(r, 300, 120)
	blocks := tr.ExtractBlocks(tr.Partition(64))
	sizes := make([]int, len(blocks))
	for i, b := range blocks {
		sizes[i] = b.SizeWords()
		if sizes[i] <= 0 {
			t.Fatal("non-positive block size")
		}
	}
	sort.Ints(sizes)
	if sizes[len(sizes)-1] > 64+70 { // trie bound + root-string charge slack
		t.Fatalf("largest block %d words", sizes[len(sizes)-1])
	}
}
