package trie

import (
	"fmt"

	"github.com/pimlab/pimtrie/internal/bitstr"
)

// BuildFromSorted constructs a Patricia trie from strictly increasing
// keys in a single left-to-right pass over the sorted batch, the
// PatriciaGenerate step of Algorithm 1. It runs in O(Σ key words) time
// using a rightmost-path stack, and returns the locus node of every key
// (nodes[i] holds keys[i] with values[i]).
//
// Keys must be sorted by bitstr.Compare and duplicate-free; the function
// panics otherwise, since callers (querytrie.Build) are required to sort
// and deduplicate first.
func BuildFromSorted(keys []bitstr.String, values []uint64) (*Trie, []*Node) {
	t := New()
	nodes := make([]*Node, len(keys))
	if len(keys) == 0 {
		return t, nodes
	}
	// Rightmost path from the root to the most recent leaf.
	stack := []*Node{t.root}

	place := func(i int, l int) {
		k := keys[i]
		// Pop to the deepest rightmost node of depth <= l.
		var lastPopped *Node
		for len(stack) > 0 && stack[len(stack)-1].Depth > l {
			lastPopped = stack[len(stack)-1]
			stack = stack[:len(stack)-1]
		}
		top := stack[len(stack)-1]
		branch := top
		if top.Depth < l {
			// The branching point is hidden inside the edge top→lastPopped.
			e := lastPopped.ParentEdge
			branch = t.splitEdge(e, l-top.Depth)
			stack = append(stack, branch)
		}
		if k.Len() == l {
			// keys[i] equals the branch-point string (it is a prefix of the
			// previous key) — impossible for sorted unique input.
			panic(fmt.Sprintf("trie: BuildFromSorted input not sorted/unique at %d", i))
		}
		leaf := &Node{HasValue: true, Value: values[i]}
		t.nodes++
		t.keys++
		t.attach(branch, k.Suffix(l), leaf)
		nodes[i] = leaf
		stack = append(stack, leaf)
	}

	// First key: either the empty string (lands on the root) or a leaf.
	if keys[0].IsEmpty() {
		t.root.HasValue = true
		t.root.Value = values[0]
		t.keys++
		nodes[0] = t.root
	} else {
		place(0, 0)
	}
	for i := 1; i < len(keys); i++ {
		if c := bitstr.Compare(keys[i-1], keys[i]); c >= 0 {
			panic(fmt.Sprintf("trie: BuildFromSorted input not sorted/unique at %d", i))
		}
		l := bitstr.LCP(keys[i-1], keys[i])
		if l == keys[i].Len() {
			panic(fmt.Sprintf("trie: BuildFromSorted later key is a prefix of an earlier one at %d", i))
		}
		// In prefix-first order, if keys[i-1] is a prefix of keys[i] the
		// branch point is keys[i-1]'s own node at depth l.
		place(i, l)
	}
	return t, nodes
}
