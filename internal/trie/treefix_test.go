package trie

import (
	"math/rand"
	"testing"

	"github.com/pimlab/pimtrie/internal/bitstr"
)

func TestRootfixDepths(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	tr, _ := buildRandomTrie(r, 300, 120)
	depths := Rootfix(tr, 0, func(parent int, e *Edge) int {
		return parent + e.Label.Len()
	})
	tr.WalkPreorder(func(n *Node) bool {
		if depths[n] != n.Depth {
			t.Fatalf("rootfix depth %d != %d", depths[n], n.Depth)
		}
		return true
	})
	if len(depths) != tr.NodeCount() {
		t.Fatalf("rootfix covered %d of %d nodes", len(depths), tr.NodeCount())
	}
}

func TestRootfixStrings(t *testing.T) {
	tr := New()
	for _, k := range []string{"00", "0101", "011", "11"} {
		tr.Insert(bitstr.MustParse(k), 1)
	}
	strs := Rootfix(tr, bitstr.Empty, func(p bitstr.String, e *Edge) bitstr.String {
		return p.Concat(e.Label)
	})
	tr.WalkPreorder(func(n *Node) bool {
		if !bitstr.Equal(strs[n], NodeString(n)) {
			t.Fatalf("rootfix string %q != %q", strs[n], NodeString(n))
		}
		return true
	})
}

func TestLeaffixSubtreeKeyCounts(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	tr, keys := buildRandomTrie(r, 250, 90)
	counts := tr.SubtreeKeyCounts()
	if counts[tr.Root()] != tr.KeyCount() {
		t.Fatalf("root count %d != %d", counts[tr.Root()], tr.KeyCount())
	}
	// Spot-check: count below a node == number of keys extending its string.
	checked := 0
	tr.WalkPreorder(func(n *Node) bool {
		if checked > 40 {
			return false
		}
		checked++
		s := NodeString(n)
		want := 0
		for _, k := range keys {
			if bitstr.MustParse(k).HasPrefix(s) {
				want++
			}
		}
		if counts[n] != want {
			t.Fatalf("count below %q = %d, want %d", s, counts[n], want)
		}
		return true
	})
}

func TestLeaffixMaxDepth(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	tr, _ := buildRandomTrie(r, 150, 80)
	deepest := Leaffix(tr, func(n *Node) int { return n.Depth },
		func(acc int, _ *Edge, child int) int {
			if child > acc {
				return child
			}
			return acc
		})
	want := 0
	tr.WalkPreorder(func(n *Node) bool {
		if n.Depth > want {
			want = n.Depth
		}
		return true
	})
	if deepest[tr.Root()] != want {
		t.Fatalf("leaffix max depth %d != %d", deepest[tr.Root()], want)
	}
}
