// Package trie implements the sequential binary compressed trie (binary
// radix tree / Patricia trie) that underlies PIM-trie (paper §3.1, §4
// "Basic Structures and Terminology").
//
// A Trie stores (bit-string key → value) pairs. Path compression keeps
// only compressed nodes: nodes that have two children, are the endpoint
// of a stored key, or are the root. All other prefixes exist implicitly
// as hidden nodes — positions in the middle of a compressed edge —
// referred to by (edge, offset) pairs.
//
// Besides the dictionary operations (Insert, Delete, Get, LCPLen,
// SubtreeKeys), the package provides the structural operations PIM-trie
// needs: splitting long edges, weighted Euler-tour block partitioning
// ([9] extended to node weights, §4.2), extraction of stand-alone block
// tries, and pre/post-order scans (the sequential core of the paper's
// treefix operations).
package trie

import (
	"fmt"
	"strings"

	"github.com/pimlab/pimtrie/internal/bitstr"
)

// Node is a compressed node. Its represented string is the concatenation
// of edge labels from the root; Depth is that string's length in bits.
type Node struct {
	Parent     *Node
	ParentEdge *Edge
	Child      [2]*Edge // indexed by the first bit of the edge label
	HasValue   bool
	Value      uint64
	Depth      int

	// Mirror marks a replica of a child block's root kept as a leaf in
	// the parent block (§4.2); Anchor marks a node inserted to cut an
	// over-long edge. Both are exempt from the compression invariant and
	// are only ever set by the blocking machinery in partition.go.
	Mirror bool
	Anchor bool

	// Index is a dense identifier for builders that keep array-indexed
	// per-node side data (querytrie assigns preorder numbers so node
	// hashes live in a flat []Value instead of a pointer-keyed map).
	// The trie itself never reads or maintains it.
	Index int
}

// Edge is a compressed edge with a non-empty bit-string label. The first
// bit of Label determines its slot in From.Child.
type Edge struct {
	Label    bitstr.String
	From, To *Node
}

// HiddenRef identifies a hidden node: Offset bits down Edge's label
// (0 < Offset < Label.Len()); see §4 "Basic Structures".
type HiddenRef struct {
	Edge   *Edge
	Offset int
}

// NodeCostWords and EdgeCostWords are the fixed per-object space charges
// used by SizeWords: a node stores two child pointers, parent pointer and
// value; an edge stores two endpoints plus its label words.
const (
	NodeCostWords = 4
	EdgeCostWords = 2
)

// Trie is a binary compressed trie. The zero value is not usable; call
// New. A Trie is not safe for concurrent mutation.
type Trie struct {
	root     *Node
	keys     int
	nodes    int
	edgeBits int // L_T: aggregate bits over all edge labels
}

// New returns an empty trie whose root represents the empty string.
func New() *Trie {
	return &Trie{root: &Node{}, nodes: 1}
}

// Root returns the root node (depth 0).
func (t *Trie) Root() *Node { return t.root }

// KeyCount returns n_T, the number of stored key-value pairs.
func (t *Trie) KeyCount() int { return t.keys }

// NodeCount returns the number of compressed nodes.
func (t *Trie) NodeCount() int { return t.nodes }

// EdgeBits returns L_T, the aggregate length of all edge labels in bits.
func (t *Trie) EdgeBits() int { return t.edgeBits }

// SizeWords returns Q_T = O(L_T/w + n_T), the compressed-trie space in
// machine words under the model's accounting.
func (t *Trie) SizeWords() int {
	edges := t.nodes - 1
	if edges < 0 {
		edges = 0
	}
	return t.nodes*NodeCostWords + edges*EdgeCostWords + (t.edgeBits+bitstr.WordBits-1)/bitstr.WordBits
}

// attach links a new edge with the given label from parent to child and
// updates the aggregate counters.
func (t *Trie) attach(parent *Node, label bitstr.String, child *Node) *Edge {
	e := &Edge{Label: label, From: parent, To: child}
	parent.Child[label.FirstBit()] = e
	child.Parent = parent
	child.ParentEdge = e
	child.Depth = parent.Depth + label.Len()
	t.edgeBits += label.Len()
	return e
}

// detach removes child's parent edge and updates counters; the child and
// its subtree remain intact but disconnected.
func (t *Trie) detach(child *Node) {
	e := child.ParentEdge
	if e == nil {
		return
	}
	e.From.Child[e.Label.FirstBit()] = nil
	t.edgeBits -= e.Label.Len()
	child.Parent, child.ParentEdge = nil, nil
}

// splitEdge materializes the hidden node Offset bits down e, returning
// the new compressed node. Counters are updated; the new node has no
// value and exactly the original subtree below it.
func (t *Trie) splitEdge(e *Edge, offset int) *Node {
	if offset <= 0 || offset >= e.Label.Len() {
		panic(fmt.Sprintf("trie: splitEdge offset %d outside (0,%d)", offset, e.Label.Len()))
	}
	upper := e.Label.Prefix(offset)
	lower := e.Label.Suffix(offset)
	mid := &Node{}
	t.nodes++
	parent, child := e.From, e.To
	// Reuse e as the upper edge to keep parent's slot stable.
	e.Label = upper
	e.To = mid
	mid.Parent = parent
	mid.ParentEdge = e
	mid.Depth = parent.Depth + offset
	low := &Edge{Label: lower, From: mid, To: child}
	mid.Child[lower.FirstBit()] = low
	child.Parent = mid
	child.ParentEdge = low
	return mid
}

// locate walks the trie along key and reports how it ends:
//   - node != nil, rem == Empty: key's locus is exactly node;
//   - node != nil, rem != Empty, edge == nil: key leaves node with no
//     matching child (rem is the unmatched remainder);
//   - edge != nil: the walk stopped inside edge after matching `off` bits
//     of its label; rem is the key remainder from the edge start.
//
// matched is the LCP length between key and the stored set's prefixes.
func (t *Trie) locate(key bitstr.String) (node *Node, edge *Edge, off int, rem bitstr.String, matched int) {
	cur := t.root
	pos := 0
	for {
		if pos == key.Len() {
			return cur, nil, 0, bitstr.Empty, pos
		}
		e := cur.Child[key.BitAt(pos)]
		if e == nil {
			return cur, nil, 0, key.Suffix(pos), pos
		}
		// Compare the label against the key in place; the remainder is
		// materialized once at the exit, not on every edge step.
		n := key.Len() - pos
		if n > e.Label.Len() {
			n = e.Label.Len()
		}
		l := bitstr.LCPRange(e.Label, 0, key, pos, n)
		if l < e.Label.Len() {
			return nil, e, l, key.Suffix(pos), pos + l
		}
		pos += e.Label.Len()
		cur = e.To
	}
}

// Insert stores value under key, replacing any previous value, and
// reports whether the key was new.
func (t *Trie) Insert(key bitstr.String, value uint64) bool {
	node, edge, off, rem, _ := t.locate(key)
	switch {
	case node != nil && rem.IsEmpty():
		// Locus is an existing compressed node.
		fresh := !node.HasValue
		node.HasValue = true
		node.Value = value
		if fresh {
			t.keys++
		}
		return fresh
	case node != nil:
		// New leaf hanging off an existing node.
		leaf := &Node{HasValue: true, Value: value}
		t.nodes++
		t.attach(node, rem, leaf)
		t.keys++
		return true
	default:
		// The walk stopped inside an edge: split it.
		mid := t.splitEdge(edge, off)
		if off == rem.Len() {
			// Key ends exactly at the hidden node.
			mid.HasValue = true
			mid.Value = value
			t.keys++
			return true
		}
		leaf := &Node{HasValue: true, Value: value}
		t.nodes++
		t.attach(mid, rem.Suffix(off), leaf)
		t.keys++
		return true
	}
}

// InsertMirror grafts a mirror leaf at key carrying slot as its Value
// (mirrors use Value as a child-block slot index, never as a stored
// key's payload). It is used when rebuilding a lost block host-side:
// the child-block roots form an antichain that no retained key extends,
// so the mirror's position is always fresh — a new leaf hanging off an
// existing node or a hidden node inside an edge. Any other outcome
// means the caller's key set was inconsistent, and InsertMirror panics.
func (t *Trie) InsertMirror(key bitstr.String, slot uint64) *Node {
	node, edge, off, rem, _ := t.locate(key)
	leaf := &Node{Mirror: true, Value: slot}
	switch {
	case node != nil && !rem.IsEmpty():
		t.nodes++
		t.attach(node, rem, leaf)
	case edge != nil && off < rem.Len():
		mid := t.splitEdge(edge, off)
		t.nodes++
		t.attach(mid, rem.Suffix(off), leaf)
	default:
		panic(fmt.Sprintf("trie: InsertMirror at %s: position not fresh", key))
	}
	return leaf
}

// Get returns the value stored under key.
func (t *Trie) Get(key bitstr.String) (uint64, bool) {
	node, _, _, rem, _ := t.locate(key)
	if node != nil && rem.IsEmpty() && node.HasValue {
		return node.Value, true
	}
	return 0, false
}

// LCPLen returns the length in bits of the longest common prefix between
// key and any prefix present in the trie (compressed or hidden), i.e. the
// LongestCommonPrefix query of §5.1 restricted to this local trie.
func (t *Trie) LCPLen(key bitstr.String) int {
	_, _, _, _, matched := t.locate(key)
	return matched
}

// childCount returns the number of children of n.
func childCount(n *Node) int {
	c := 0
	if n.Child[0] != nil {
		c++
	}
	if n.Child[1] != nil {
		c++
	}
	return c
}

// compress removes n if it is a non-root, valueless, single-child node,
// merging its two incident edges; it then recurses upward.
func (t *Trie) compress(n *Node) {
	for n != nil && n != t.root && !n.HasValue && !n.Mirror {
		switch childCount(n) {
		case 0:
			parent := n.Parent
			t.detach(n)
			t.nodes--
			n = parent
		case 1:
			var down *Edge
			if n.Child[0] != nil {
				down = n.Child[0]
			} else {
				down = n.Child[1]
			}
			up := n.ParentEdge
			merged := up.Label.Concat(down.Label)
			parent, child := up.From, down.To
			// Collapse: parent --merged--> child.
			t.edgeBits -= up.Label.Len() + down.Label.Len()
			up.Label = merged
			up.To = child
			t.edgeBits += merged.Len()
			child.Parent = parent
			child.ParentEdge = up
			t.nodes--
			return
		default:
			return
		}
	}
}

// Delete removes key and reports whether it was present.
func (t *Trie) Delete(key bitstr.String) bool {
	node, _, _, rem, _ := t.locate(key)
	if node == nil || !rem.IsEmpty() || !node.HasValue {
		return false
	}
	node.HasValue = false
	t.keys--
	t.compress(node)
	return true
}

// RemoveLeaf detaches a childless node (typically a mirror leaf) and
// recompresses around its former parent. It panics if n has children or
// is the root.
func (t *Trie) RemoveLeaf(n *Node) {
	if childCount(n) != 0 {
		panic("trie: RemoveLeaf of a node with children")
	}
	if n == t.root {
		panic("trie: RemoveLeaf of the root")
	}
	if n.HasValue {
		n.HasValue = false
		t.keys--
	}
	parent := n.Parent
	t.detach(n)
	t.nodes--
	t.compress(parent)
}

// NodeString reconstructs the full bit string represented by n in O(depth)
// time. Intended for tests, debugging, and result materialization.
func NodeString(n *Node) bitstr.String {
	var parts []bitstr.String
	for e := n.ParentEdge; e != nil; e = e.From.ParentEdge {
		parts = append(parts, e.Label)
	}
	s := bitstr.Empty
	for i := len(parts) - 1; i >= 0; i-- {
		s = s.Concat(parts[i])
	}
	return s
}

// KV is a stored key-value pair.
type KV struct {
	Key   bitstr.String
	Value uint64
}

// WalkPreorder visits every compressed node top-down. Returning false
// from fn prunes the subtree below that node.
func (t *Trie) WalkPreorder(fn func(n *Node) bool) {
	walkPre(t.root, fn)
}

func walkPre(n *Node, fn func(*Node) bool) {
	if !fn(n) {
		return
	}
	for b := 0; b < 2; b++ {
		if e := n.Child[b]; e != nil {
			walkPre(e.To, fn)
		}
	}
}

// WalkPostorder visits every compressed node bottom-up (the sequential
// form of the paper's leaffix scan).
func (t *Trie) WalkPostorder(fn func(n *Node)) {
	walkPost(t.root, fn)
}

func walkPost(n *Node, fn func(*Node)) {
	for b := 0; b < 2; b++ {
		if e := n.Child[b]; e != nil {
			walkPost(e.To, fn)
		}
	}
	fn(n)
}

// MinKey returns the lexicographically smallest stored key.
func (t *Trie) MinKey() (bitstr.String, bool) {
	return extremeKey(t.root, bitstr.Empty, 0)
}

// MaxKey returns the lexicographically largest stored key.
func (t *Trie) MaxKey() (bitstr.String, bool) {
	return extremeKey(t.root, bitstr.Empty, 1)
}

// extremeKey walks toward child branch `dir` (0 = min, 1 = max). With
// the prefix-first order, the min is the first valued node in preorder
// and the max is the deepest valued node on the rightmost valued path.
func extremeKey(n *Node, prefix bitstr.String, dir int) (bitstr.String, bool) {
	if dir == 0 {
		if n.HasValue {
			return prefix, true
		}
		for b := 0; b < 2; b++ {
			if e := n.Child[b]; e != nil {
				if k, ok := extremeKey(e.To, prefix.Concat(e.Label), 0); ok {
					return k, true
				}
			}
		}
		return bitstr.Empty, false
	}
	for b := 1; b >= 0; b-- {
		if e := n.Child[b]; e != nil {
			if k, ok := extremeKey(e.To, prefix.Concat(e.Label), 1); ok {
				return k, true
			}
		}
	}
	if n.HasValue {
		return prefix, true
	}
	return bitstr.Empty, false
}

// Keys returns all stored pairs in lexicographic key order.
func (t *Trie) Keys() []KV {
	var out []KV
	var rec func(n *Node, prefix bitstr.String)
	rec = func(n *Node, prefix bitstr.String) {
		if n.HasValue {
			out = append(out, KV{Key: prefix, Value: n.Value})
		}
		for b := 0; b < 2; b++ {
			if e := n.Child[b]; e != nil {
				rec(e.To, prefix.Concat(e.Label))
			}
		}
	}
	rec(t.root, bitstr.Empty)
	return out
}

// SubtreeKeys returns, in order, every stored pair whose key has the
// given prefix — the result set of a SubtreeQuery (§5.3) on this trie.
func (t *Trie) SubtreeKeys(prefix bitstr.String) []KV {
	node, edge, off, rem, _ := t.locate(prefix)
	var start *Node
	var stem bitstr.String
	switch {
	case node != nil && rem.IsEmpty():
		start, stem = node, prefix
	case edge != nil && off == rem.Len():
		// Prefix ends on a hidden node inside edge: everything below
		// edge.To qualifies.
		start = edge.To
		stem = prefix.Concat(edge.Label.Suffix(off))
	default:
		return nil
	}
	var out []KV
	var rec func(n *Node, p bitstr.String)
	rec = func(n *Node, p bitstr.String) {
		if n.HasValue {
			out = append(out, KV{Key: p, Value: n.Value})
		}
		for b := 0; b < 2; b++ {
			if e := n.Child[b]; e != nil {
				rec(e.To, p.Concat(e.Label))
			}
		}
	}
	rec(start, stem)
	return out
}

// CheckInvariants verifies structural soundness: path-compression (every
// non-root node has a value or two children), consistent depths, parent
// links, counters, and child-slot/first-bit agreement. Tests call it
// after every mutation batch.
func (t *Trie) CheckInvariants() error {
	nodes, keys, bits := 0, 0, 0
	var rec func(n *Node) error
	rec = func(n *Node) error {
		nodes++
		if n.HasValue {
			keys++
		}
		if n != t.root && !n.HasValue && !n.Mirror && !n.Anchor && childCount(n) < 2 {
			return fmt.Errorf("non-root node at depth %d has %d children and no value", n.Depth, childCount(n))
		}
		if n.Mirror && (childCount(n) != 0 || n.HasValue) {
			return fmt.Errorf("mirror node at depth %d has children or a value", n.Depth)
		}
		for b := 0; b < 2; b++ {
			e := n.Child[b]
			if e == nil {
				continue
			}
			if e.Label.IsEmpty() {
				return fmt.Errorf("empty edge label below depth %d", n.Depth)
			}
			if int(e.Label.FirstBit()) != b {
				return fmt.Errorf("edge in slot %d starts with bit %d", b, e.Label.FirstBit())
			}
			if e.From != n || e.To.Parent != n || e.To.ParentEdge != e {
				return fmt.Errorf("broken links below depth %d", n.Depth)
			}
			if e.To.Depth != n.Depth+e.Label.Len() {
				return fmt.Errorf("depth mismatch: %d + %d != %d", n.Depth, e.Label.Len(), e.To.Depth)
			}
			bits += e.Label.Len()
			if err := rec(e.To); err != nil {
				return err
			}
		}
		return nil
	}
	if err := rec(t.root); err != nil {
		return err
	}
	if nodes != t.nodes {
		return fmt.Errorf("node count %d != counter %d", nodes, t.nodes)
	}
	if keys != t.keys {
		return fmt.Errorf("key count %d != counter %d", keys, t.keys)
	}
	if bits != t.edgeBits {
		return fmt.Errorf("edge bits %d != counter %d", bits, t.edgeBits)
	}
	return nil
}

// Dump renders the trie structure for debugging.
func (t *Trie) Dump() string {
	var b strings.Builder
	var rec func(n *Node, indent string)
	rec = func(n *Node, indent string) {
		mark := ""
		if n.HasValue {
			mark = fmt.Sprintf(" =%d", n.Value)
		}
		fmt.Fprintf(&b, "%s•(d=%d)%s\n", indent, n.Depth, mark)
		for bit := 0; bit < 2; bit++ {
			if e := n.Child[bit]; e != nil {
				fmt.Fprintf(&b, "%s├─%s\n", indent, e.Label)
				rec(e.To, indent+"│ ")
			}
		}
	}
	rec(t.root, "")
	return b.String()
}
