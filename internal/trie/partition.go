package trie

import (
	"fmt"
	"sort"

	"github.com/pimlab/pimtrie/internal/bitstr"
)

// This file implements the blocking machinery of §4.2: splitting long
// edges, partitioning a trie into blocks of bounded weight, and
// extracting the blocks as stand-alone tries with mirror leaves.
//
// The paper partitions with a weighted Euler-tour algorithm (for CPU
// depth); we use an equivalent bottom-up weighted clustering that yields
// the same guarantees the analysis needs — every block at most maxWords
// words, O(Q_T/maxWords) blocks — with a strict (not just asymptotic)
// size bound, which simplifies the push/pull threshold logic.

// Mirror and Anchor are structural node roles introduced by blocking:
//   - a Mirror is the replica of a child block's root kept as a leaf in
//     the parent block (dashed circles in Figure 2);
//   - an Anchor is a compressed node inserted to cut an over-long edge.
//
// Both are exempt from the two-children-or-value invariant.

// SplitLongEdges inserts anchor nodes so that no edge label exceeds
// maxBits bits, returning the number of anchors added. The paper cuts
// edges longer than K_B words the same way, adding O(L_D/(w·K_B)) nodes.
func (t *Trie) SplitLongEdges(maxBits int) int {
	if maxBits < 1 {
		panic("trie: SplitLongEdges needs maxBits >= 1")
	}
	added := 0
	var rec func(n *Node)
	rec = func(n *Node) {
		for b := 0; b < 2; b++ {
			e := n.Child[b]
			if e == nil {
				continue
			}
			for e.Label.Len() > maxBits {
				mid := t.splitEdge(e, maxBits)
				mid.Anchor = true
				added++
				// e is now the upper piece; continue with the lower.
				e = mid.childAny()
			}
			rec(e.To)
		}
	}
	rec(t.root)
	return added
}

// childAny returns the single child edge of a node known to have exactly
// one child (anchors fresh from a split).
func (n *Node) childAny() *Edge {
	if n.Child[0] != nil {
		return n.Child[0]
	}
	return n.Child[1]
}

// MinBlockWords is the smallest supported block bound; below it a single
// node plus two split edges may not fit.
const MinBlockWords = 32

// Partition chooses block roots so that every block (a sub-trie from its
// root down to, and including mirrors of, the next block roots) weighs at
// most maxWords words. It first splits edges longer than maxWords/4
// words. The returned slice holds the non-root cut nodes; the trie root
// always roots the first block. Weights follow SizeWords' accounting.
func (t *Trie) Partition(maxWords int) []*Node {
	if maxWords < MinBlockWords {
		panic(fmt.Sprintf("trie: Partition bound %d < MinBlockWords", maxWords))
	}
	t.SplitLongEdges(maxWords / 4 * bitstr.WordBits)
	var cuts []*Node
	type kid struct {
		node  *Node
		w     int // accumulated block weight if kept inline
		edgeW int
	}
	var rec func(n *Node) int
	rec = func(n *Node) int {
		acc := NodeCostWords
		var kids []kid
		for b := 0; b < 2; b++ {
			if e := n.Child[b]; e != nil {
				w := rec(e.To)
				kids = append(kids, kid{e.To, w, EdgeCostWords + e.Label.Words()})
			}
		}
		for _, k := range kids {
			acc += k.edgeW + k.w
		}
		sort.Slice(kids, func(i, j int) bool { return kids[i].w > kids[j].w })
		for i := 0; acc > maxWords && i < len(kids); i++ {
			acc -= kids[i].w
			acc += NodeCostWords // the mirror leaf replica
			cuts = append(cuts, kids[i].node)
		}
		return acc
	}
	rec(t.root)
	return cuts
}

// BlockSpec is one extracted block: a stand-alone trie whose root
// corresponds to RootString in the original key space, with mirror
// leaves standing in for the roots of its child blocks.
type BlockSpec struct {
	RootString bitstr.String // full string represented by the block root
	Trie       *Trie         // stand-alone block trie (root depth 0)
	Mirrors    []MirrorRef   // one per child block, in DFS order
}

// MirrorRef links a mirror leaf inside a block to the child block it
// represents.
type MirrorRef struct {
	Node       *Node         // the mirror leaf within BlockSpec.Trie
	RootString bitstr.String // full string of the child block's root
	ChildIndex int           // index of the child block in the extraction result
}

// SizeWords of the block including its trie (for module space accounting:
// the root-hash metadata is charged by the hash value manager).
func (b *BlockSpec) SizeWords() int {
	if b == nil || b.Trie == nil {
		return 1
	}
	return b.Trie.SizeWords() + b.RootString.SizeWords()
}

// ExtractBlocks copies the trie into stand-alone blocks cut at the given
// nodes. Result[0] is the block rooted at the trie root; Mirrors[i].
// ChildIndex links parent blocks to child blocks. The original trie is
// left untouched. Node depths inside each block are relative to the
// block root; values are kept at the real nodes (mirrors carry none).
func (t *Trie) ExtractBlocks(cutNodes []*Node) []*BlockSpec {
	isCut := make(map[*Node]bool, len(cutNodes))
	for _, n := range cutNodes {
		if n == t.root {
			continue // the root is implicitly a block root, never a mirror
		}
		isCut[n] = true
	}
	var blocks []*BlockSpec
	index := map[*Node]int{} // original cut node -> block index
	// First pass: allocate block order deterministically (preorder).
	order := []*Node{t.root}
	t.WalkPreorder(func(n *Node) bool {
		if n != t.root && isCut[n] {
			order = append(order, n)
		}
		return true
	})
	for i, n := range order {
		index[n] = i
	}
	blocks = make([]*BlockSpec, len(order))
	for i, start := range order {
		bt := New()
		spec := &BlockSpec{RootString: NodeString(start), Trie: bt}
		bt.root.HasValue = start.HasValue
		bt.root.Value = start.Value
		if start.HasValue {
			bt.keys++
		}
		var copyRec func(srcParent *Node, dstParent *Node, prefixFromBlock bitstr.String)
		copyRec = func(src *Node, dst *Node, prefix bitstr.String) {
			for b := 0; b < 2; b++ {
				e := src.Child[b]
				if e == nil {
					continue
				}
				child := e.To
				cp := &Node{}
				bt.nodes++
				bt.attach(dst, e.Label, cp)
				if isCut[child] {
					cp.Mirror = true
					spec.Mirrors = append(spec.Mirrors, MirrorRef{
						Node:       cp,
						RootString: spec.RootString.Concat(prefix).Concat(e.Label),
						ChildIndex: index[child],
					})
					continue
				}
				cp.HasValue = child.HasValue
				cp.Value = child.Value
				cp.Anchor = child.Anchor
				cp.Mirror = child.Mirror
				if cp.HasValue {
					bt.keys++
				}
				if !cp.Mirror {
					copyRec(child, cp, prefix.Concat(e.Label))
				}
			}
		}
		copyRec(start, bt.root, bitstr.Empty)
		blocks[i] = spec
	}
	return blocks
}

// WeightWords returns the block weight of the subtree rooted at n when no
// further cuts exist below it; used by tests to validate Partition.
func WeightWords(n *Node, isCut func(*Node) bool) int {
	acc := NodeCostWords
	for b := 0; b < 2; b++ {
		e := n.Child[b]
		if e == nil {
			continue
		}
		acc += EdgeCostWords + e.Label.Words()
		if isCut != nil && isCut(e.To) {
			acc += NodeCostWords // mirror
			continue
		}
		acc += WeightWords(e.To, isCut)
	}
	return acc
}
