package trie

import (
	"math/rand"
	"testing"

	"github.com/pimlab/pimtrie/internal/bitstr"
)

// randomKey draws a key with skewed shared prefixes so walks exercise
// deep descents, hidden-node endings and early divergence alike.
func randomFlatKey(rng *rand.Rand, maxBits int) bitstr.String {
	n := rng.Intn(maxBits + 1)
	bits := make([]byte, n)
	for i := range bits {
		// Bias toward zero so prefixes collide often.
		if rng.Intn(3) == 0 {
			bits[i] = 1
		}
	}
	return bitstr.FromBits(bits)
}

func buildRandomFlatTrie(rng *rand.Rand, n, maxBits int) (*Trie, []bitstr.String) {
	t := New()
	var keys []bitstr.String
	for i := 0; i < n; i++ {
		k := randomFlatKey(rng, maxBits)
		t.Insert(k, uint64(i)*2654435761)
		keys = append(keys, k)
	}
	return t, keys
}

func TestFlattenFaithful(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 10; trial++ {
		tr, _ := buildRandomFlatTrie(rng, 200+rng.Intn(800), 180)
		f := Flatten(tr)
		if err := f.CheckAgainst(tr); err != nil {
			t.Fatal(err)
		}
	}
}

func TestFlatGetLCPMatchTrie(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 8; trial++ {
		tr, stored := buildRandomFlatTrie(rng, 500, 150)
		f := Flatten(tr)

		// Query mix: stored keys, prefixes of stored keys (hidden and
		// compressed endings), perturbed keys, fresh random keys, and
		// the empty key — at a batch size that is not a lane multiple.
		var queries []bitstr.String
		queries = append(queries, bitstr.Empty)
		for i := 0; i < 500; i++ {
			switch rng.Intn(4) {
			case 0:
				queries = append(queries, stored[rng.Intn(len(stored))])
			case 1:
				k := stored[rng.Intn(len(stored))]
				queries = append(queries, k.Prefix(rng.Intn(k.Len()+1)))
			case 2:
				k := stored[rng.Intn(len(stored))]
				if k.Len() == 0 {
					queries = append(queries, k)
					continue
				}
				i := rng.Intn(k.Len())
				flip := k.Slice(0, i).Concat(bitstr.FromBits([]byte{1 - k.BitAt(i)})).Concat(k.Suffix(i + 1))
				queries = append(queries, flip)
			default:
				queries = append(queries, randomFlatKey(rng, 200))
			}
		}

		vals := make([]uint64, len(queries))
		found := make([]bool, len(queries))
		f.GetBatch(queries, vals, found)
		lcps := make([]int, len(queries))
		f.LCPBatch(queries, lcps)

		for i, q := range queries {
			wv, wf := tr.Get(q)
			if vals[i] != wv && wf || found[i] != wf {
				t.Fatalf("trial %d query %d: flat Get=(%d,%v) trie=(%d,%v) key=%v",
					trial, i, vals[i], found[i], wv, wf, q)
			}
			if wl := tr.LCPLen(q); lcps[i] != wl {
				t.Fatalf("trial %d query %d: flat LCP=%d trie=%d key=%v", trial, i, lcps[i], wl, q)
			}
			// Single-key forms agree with the batch.
			if v, ok := f.Get(q); v != vals[i] && found[i] || ok != found[i] {
				t.Fatalf("trial %d query %d: single Get disagrees with batch", trial, i)
			}
			if f.LCPLen(q) != lcps[i] {
				t.Fatalf("trial %d query %d: single LCP disagrees with batch", trial, i)
			}
		}
	}
}

func TestFlatKeysAndSubtree(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	tr, stored := buildRandomFlatTrie(rng, 600, 120)
	f := Flatten(tr)

	want := tr.Keys()
	got := f.Keys()
	if len(want) != len(got) {
		t.Fatalf("Keys: %d pairs, want %d", len(got), len(want))
	}
	for i := range want {
		if !bitstr.Equal(want[i].Key, got[i].Key) || want[i].Value != got[i].Value {
			t.Fatalf("Keys[%d]: got (%v,%d) want (%v,%d)", i, got[i].Key, got[i].Value, want[i].Key, want[i].Value)
		}
	}

	prefixes := []bitstr.String{bitstr.Empty}
	for i := 0; i < 200; i++ {
		k := stored[rng.Intn(len(stored))]
		prefixes = append(prefixes, k.Prefix(rng.Intn(k.Len()+1)))
		prefixes = append(prefixes, randomFlatKey(rng, 60))
	}
	for _, p := range prefixes {
		want := tr.SubtreeKeys(p)
		got := f.SubtreeKeys(p)
		if len(want) != len(got) {
			t.Fatalf("SubtreeKeys(%v): %d pairs, want %d", p, len(got), len(want))
		}
		for i := range want {
			if !bitstr.Equal(want[i].Key, got[i].Key) || want[i].Value != got[i].Value {
				t.Fatalf("SubtreeKeys(%v)[%d] mismatch", p, i)
			}
		}
	}
}

func TestFlatEmptyAndTiny(t *testing.T) {
	f := Flatten(New())
	if v, ok := f.Get(bitstr.MustParse("01")); ok || v != 0 {
		t.Fatalf("empty trie Get found something")
	}
	if got := f.LCPLen(bitstr.MustParse("0101")); got != 0 {
		t.Fatalf("empty trie LCP = %d", got)
	}
	if kvs := f.Keys(); len(kvs) != 0 {
		t.Fatalf("empty trie has keys")
	}

	tr := New()
	tr.Insert(bitstr.Empty, 42)
	f = Flatten(tr)
	if v, ok := f.Get(bitstr.Empty); !ok || v != 42 {
		t.Fatalf("empty-key Get = (%d,%v)", v, ok)
	}
}
