package trie

import (
	"math/rand"
	"sort"
	"strings"
	"testing"

	"github.com/pimlab/pimtrie/internal/bitstr"
)

// oracle is a map-based reference dictionary for property testing.
type oracle map[string]uint64

func (o oracle) lcpLen(key string) int {
	// Longest common prefix between key and any prefix present in the
	// trie. The set of prefixes present is exactly the set of prefixes of
	// stored keys, so this is max over stored keys of LCP(key, stored).
	best := 0
	for k := range o {
		n := 0
		for n < len(k) && n < len(key) && k[n] == key[n] {
			n++
		}
		if n > best {
			best = n
		}
	}
	return best
}

func randomKey(r *rand.Rand, maxLen int) string {
	n := r.Intn(maxLen + 1)
	var b strings.Builder
	for i := 0; i < n; i++ {
		b.WriteByte('0' + byte(r.Intn(2)))
	}
	return b.String()
}

func TestInsertGetBasic(t *testing.T) {
	tr := New()
	keys := []string{"", "0", "1", "00001", "000011", "101", "1010", "10100", "101001"}
	for i, k := range keys {
		if !tr.Insert(bitstr.MustParse(k), uint64(i)) {
			t.Fatalf("Insert(%q) reported existing", k)
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for i, k := range keys {
		v, ok := tr.Get(bitstr.MustParse(k))
		if !ok || v != uint64(i) {
			t.Fatalf("Get(%q) = %d,%v", k, v, ok)
		}
	}
	if _, ok := tr.Get(bitstr.MustParse("01")); ok {
		t.Fatal("Get of absent key succeeded")
	}
	if tr.KeyCount() != len(keys) {
		t.Fatalf("KeyCount = %d", tr.KeyCount())
	}
}

func TestInsertOverwrite(t *testing.T) {
	tr := New()
	k := bitstr.MustParse("0101")
	tr.Insert(k, 1)
	if tr.Insert(k, 2) {
		t.Fatal("second insert reported new")
	}
	if v, _ := tr.Get(k); v != 2 {
		t.Fatalf("value = %d", v)
	}
	if tr.KeyCount() != 1 {
		t.Fatalf("KeyCount = %d", tr.KeyCount())
	}
}

func TestPathCompressionNodeBound(t *testing.T) {
	// n random keys must yield at most 2n+1 compressed nodes.
	r := rand.New(rand.NewSource(1))
	tr := New()
	n := 500
	seen := map[string]bool{}
	for len(seen) < n {
		k := randomKey(r, 200)
		if !seen[k] {
			seen[k] = true
			tr.Insert(bitstr.MustParse(k), 0)
		}
	}
	if tr.NodeCount() > 2*n+1 {
		t.Fatalf("nodes = %d > 2n+1 = %d: path compression broken", tr.NodeCount(), 2*n+1)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestRandomizedAgainstOracle(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	tr := New()
	o := oracle{}
	var pool []string
	for step := 0; step < 4000; step++ {
		switch op := r.Intn(10); {
		case op < 4: // insert
			k := randomKey(r, 64)
			if len(pool) > 0 && r.Intn(3) == 0 {
				// Extend an existing key to force deep shared prefixes.
				k = pool[r.Intn(len(pool))] + randomKey(r, 16)
			}
			v := r.Uint64()
			tr.Insert(bitstr.MustParse(k), v)
			o[k] = v
			pool = append(pool, k)
		case op < 6: // delete
			var k string
			if len(pool) > 0 && r.Intn(2) == 0 {
				k = pool[r.Intn(len(pool))]
			} else {
				k = randomKey(r, 64)
			}
			got := tr.Delete(bitstr.MustParse(k))
			_, want := o[k]
			if got != want {
				t.Fatalf("step %d: Delete(%q) = %v, want %v", step, k, got, want)
			}
			delete(o, k)
		case op < 8: // get
			var k string
			if len(pool) > 0 && r.Intn(2) == 0 {
				k = pool[r.Intn(len(pool))]
			} else {
				k = randomKey(r, 64)
			}
			v, ok := tr.Get(bitstr.MustParse(k))
			wv, wok := o[k]
			if ok != wok || (ok && v != wv) {
				t.Fatalf("step %d: Get(%q) = %d,%v want %d,%v", step, k, v, ok, wv, wok)
			}
		default: // lcp
			k := randomKey(r, 80)
			if len(pool) > 0 && r.Intn(2) == 0 {
				base := pool[r.Intn(len(pool))]
				cut := r.Intn(len(base) + 1)
				k = base[:cut] + randomKey(r, 10)
			}
			if got, want := tr.LCPLen(bitstr.MustParse(k)), o.lcpLen(k); got != want {
				t.Fatalf("step %d: LCPLen(%q) = %d, want %d", step, k, got, want)
			}
		}
		if step%500 == 0 {
			if err := tr.CheckInvariants(); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if tr.KeyCount() != len(o) {
		t.Fatalf("KeyCount = %d, oracle has %d", tr.KeyCount(), len(o))
	}
}

func TestKeysSortedAndComplete(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	tr := New()
	o := oracle{}
	for i := 0; i < 300; i++ {
		k := randomKey(r, 50)
		v := uint64(i)
		tr.Insert(bitstr.MustParse(k), v)
		o[k] = v
	}
	kvs := tr.Keys()
	if len(kvs) != len(o) {
		t.Fatalf("Keys len = %d, want %d", len(kvs), len(o))
	}
	var want []string
	for k := range o {
		want = append(want, k)
	}
	sort.Strings(want)
	for i, kv := range kvs {
		if kv.Key.String() != want[i] {
			t.Fatalf("Keys[%d] = %q, want %q", i, kv.Key, want[i])
		}
		if kv.Value != o[want[i]] {
			t.Fatalf("Keys[%d] value mismatch", i)
		}
	}
}

func TestSubtreeKeys(t *testing.T) {
	tr := New()
	all := []string{"000", "0010", "00110", "0100", "011", "1", "10", "111000"}
	for i, k := range all {
		tr.Insert(bitstr.MustParse(k), uint64(i))
	}
	for _, prefix := range []string{"", "0", "00", "001", "0011", "01", "1", "11", "1110", "111000", "0000", "2x"} {
		if prefix == "2x" {
			continue
		}
		var want []string
		for _, k := range all {
			if strings.HasPrefix(k, prefix) {
				want = append(want, k)
			}
		}
		sort.Strings(want)
		got := tr.SubtreeKeys(bitstr.MustParse(prefix))
		if len(got) != len(want) {
			t.Fatalf("SubtreeKeys(%q): %d results, want %d", prefix, len(got), len(want))
		}
		for i := range want {
			if got[i].Key.String() != want[i] {
				t.Fatalf("SubtreeKeys(%q)[%d] = %q, want %q", prefix, i, got[i].Key, want[i])
			}
		}
	}
}

func TestSubtreeKeysOnHiddenNode(t *testing.T) {
	tr := New()
	tr.Insert(bitstr.MustParse("111000"), 7)
	got := tr.SubtreeKeys(bitstr.MustParse("1110"))
	if len(got) != 1 || got[0].Key.String() != "111000" {
		t.Fatalf("hidden-node subtree query failed: %v", got)
	}
	if got := tr.SubtreeKeys(bitstr.MustParse("1111")); len(got) != 0 {
		t.Fatalf("mismatched prefix returned %v", got)
	}
}

func TestDeleteRecompresses(t *testing.T) {
	tr := New()
	tr.Insert(bitstr.MustParse("0000"), 1)
	tr.Insert(bitstr.MustParse("0011"), 2)
	if tr.NodeCount() != 4 { // root, branch at "00", two leaves
		t.Fatalf("nodes = %d", tr.NodeCount())
	}
	tr.Delete(bitstr.MustParse("0011"))
	if tr.NodeCount() != 2 { // root and the single remaining leaf
		t.Fatalf("nodes after delete = %d\n%s", tr.NodeCount(), tr.Dump())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if got := tr.LCPLen(bitstr.MustParse("0011")); got != 2 {
		t.Fatalf("LCP after recompress = %d", got)
	}
}

func TestEmptyKeyAtRoot(t *testing.T) {
	tr := New()
	tr.Insert(bitstr.Empty, 9)
	if v, ok := tr.Get(bitstr.Empty); !ok || v != 9 {
		t.Fatal("empty key not stored at root")
	}
	if !tr.Delete(bitstr.Empty) {
		t.Fatal("delete empty key failed")
	}
	if _, ok := tr.Get(bitstr.Empty); ok {
		t.Fatal("empty key survived delete")
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestLCPLenPaperFigure1(t *testing.T) {
	// The data trie of Figure 1 stores keys spelled by its edges:
	// root -00001-> n1 (key "00001" has a value), n1 -101-> leaf,
	// root -1-> n2, n2 -0-> n3 -11-> …, n3 -0000->, n3 -111->, n2 -11->.
	tr := New()
	for _, k := range []string{"00001", "00001101", "10110000", "1011111", "111"} {
		tr.Insert(bitstr.MustParse(k), 1)
	}
	// Query strings from Figure 1 and their LCP lengths: "00001001" shares
	// "00001" (5); "101001" shares "10100" — a hidden-node match of length
	// 5 inside the edge "0000" below "1011"? In our reconstruction,
	// "101001" shares prefix "1011"? No: "101001" vs "10110000" shares
	// "101" then diverges (0 vs 1) => 3; vs "00001" => 0. The figure's
	// exact edge set differs; what matters here is agreement with the
	// brute-force oracle.
	o := oracle{"00001": 1, "00001101": 1, "10110000": 1, "1011111": 1, "111": 1}
	for _, q := range []string{"00001001", "101001", "101011", "00001101", "1", "0", ""} {
		if got, want := tr.LCPLen(bitstr.MustParse(q)), o.lcpLen(q); got != want {
			t.Fatalf("LCPLen(%q) = %d, want %d", q, got, want)
		}
	}
}

func TestSizeWordsGrowsLinearly(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	tr := New()
	for i := 0; i < 1000; i++ {
		tr.Insert(bitstr.MustParse(randomKey(r, 128)), uint64(i))
	}
	n := tr.KeyCount()
	sz := tr.SizeWords()
	// Q_T = O(L/w + n): with keys ≤128 bits, the size should be within a
	// small constant of the node count.
	if sz > 20*n {
		t.Fatalf("SizeWords = %d for %d keys — not linear", sz, n)
	}
	if sz < n {
		t.Fatalf("SizeWords = %d suspiciously small for %d keys", sz, n)
	}
}

func TestNodeString(t *testing.T) {
	tr := New()
	keys := []string{"00001", "00001101", "1011", "10"}
	for _, k := range keys {
		tr.Insert(bitstr.MustParse(k), 1)
	}
	found := map[string]bool{}
	tr.WalkPreorder(func(n *Node) bool {
		if n.HasValue {
			found[NodeString(n).String()] = true
		}
		return true
	})
	for _, k := range keys {
		if !found[k] {
			t.Fatalf("NodeString never produced %q (found %v)", k, found)
		}
	}
}

func TestWalkPostorderVisitsChildrenFirst(t *testing.T) {
	tr := New()
	for _, k := range []string{"00", "01", "10", "11"} {
		tr.Insert(bitstr.MustParse(k), 1)
	}
	visited := map[*Node]bool{}
	tr.WalkPostorder(func(n *Node) {
		for b := 0; b < 2; b++ {
			if e := n.Child[b]; e != nil && !visited[e.To] {
				t.Fatal("postorder visited a parent before its child")
			}
		}
		visited[n] = true
	})
	if len(visited) != tr.NodeCount() {
		t.Fatalf("visited %d of %d nodes", len(visited), tr.NodeCount())
	}
}

func BenchmarkInsert64bit(b *testing.B) {
	r := rand.New(rand.NewSource(5))
	keys := make([]bitstr.String, 1<<14)
	for i := range keys {
		keys[i] = bitstr.FromUint64(r.Uint64(), 64)
	}
	b.ReportAllocs()
	b.ResetTimer()
	tr := New()
	for i := 0; i < b.N; i++ {
		tr.Insert(keys[i&(1<<14-1)], uint64(i))
	}
}

func BenchmarkLCP64bit(b *testing.B) {
	r := rand.New(rand.NewSource(6))
	tr := New()
	for i := 0; i < 1<<14; i++ {
		tr.Insert(bitstr.FromUint64(r.Uint64(), 64), uint64(i))
	}
	qs := make([]bitstr.String, 1024)
	for i := range qs {
		qs[i] = bitstr.FromUint64(r.Uint64(), 64)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.LCPLen(qs[i&1023])
	}
}
