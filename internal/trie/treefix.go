package trie

// Treefix operations ([53], cited in §4 "Basic Structures"): rootfix
// scans push values from the root toward the leaves, leaffix scans pull
// values from the leaves toward the root. PIM-trie uses rootfix to
// derive node hashes and per-leaf LCP answers, and leaffix to find
// completely-deleted subtrees during batch Delete (§5.2). The sequential
// forms below are the work parts of the paper's O(n) work / O(log n)
// depth parallel scans.

// Rootfix computes out[n] = f(out[parent(n)], parentEdge(n)) for every
// node, with out[root] = init — a downward scan. The visit order is
// preorder, so f sees its parent's final value.
func Rootfix[T any](t *Trie, init T, f func(parent T, e *Edge) T) map[*Node]T {
	out := make(map[*Node]T, t.NodeCount())
	var rec func(n *Node, v T)
	rec = func(n *Node, v T) {
		out[n] = v
		for b := 0; b < 2; b++ {
			if e := n.Child[b]; e != nil {
				rec(e.To, f(v, e))
			}
		}
	}
	rec(t.root, init)
	return out
}

// Leaffix computes out[n] = combine(leaf(n), out of children) bottom-up:
// leaf supplies each node's own contribution and combine folds a child's
// result (across its edge) into the accumulator.
func Leaffix[T any](t *Trie, leaf func(n *Node) T, combine func(acc T, e *Edge, child T) T) map[*Node]T {
	out := make(map[*Node]T, t.NodeCount())
	var rec func(n *Node) T
	rec = func(n *Node) T {
		acc := leaf(n)
		for b := 0; b < 2; b++ {
			if e := n.Child[b]; e != nil {
				acc = combine(acc, e, rec(e.To))
			}
		}
		out[n] = acc
		return acc
	}
	rec(t.root)
	return out
}

// SubtreeKeyCounts is the leaffix the paper's Delete uses: the number of
// stored keys at or below every node (a block is completely deleted when
// its root's count reaches zero).
func (t *Trie) SubtreeKeyCounts() map[*Node]int {
	return Leaffix(t, func(n *Node) int {
		if n.HasValue {
			return 1
		}
		return 0
	}, func(acc int, _ *Edge, child int) int { return acc + child })
}
