// Package workload generates the deterministic, seeded key and query
// distributions used by the experiments: uniform random bit strings of
// fixed or variable length, adversarially skewed batches (deep shared
// prefixes, Zipfian repetition, single-range attacks), and synthetic
// corpora standing in for the real-world datasets a hardware evaluation
// would use (repro substitution: no proprietary traces are available, so
// every distribution is generated; the skew knobs reproduce the
// adversarial regimes the paper's theorems target).
package workload

import (
	"math"
	"math/rand"
	"sort"
	"sync/atomic"

	"github.com/pimlab/pimtrie/internal/bitstr"
)

// Gen is a deterministic workload generator.
type Gen struct {
	r *rand.Rand
}

// New returns a generator with the given seed.
func New(seed int64) *Gen { return &Gen{r: rand.New(rand.NewSource(seed))} }

// FixedLen returns n uniformly random keys of exactly bits bits.
func (g *Gen) FixedLen(n, bits int) []bitstr.String {
	out := make([]bitstr.String, n)
	for i := range out {
		out[i] = g.randBits(bits)
	}
	return out
}

// VarLen returns n keys with lengths uniform in [minBits, maxBits].
func (g *Gen) VarLen(n, minBits, maxBits int) []bitstr.String {
	out := make([]bitstr.String, n)
	for i := range out {
		out[i] = g.randBits(minBits + g.r.Intn(maxBits-minBits+1))
	}
	return out
}

func (g *Gen) randBits(n int) bitstr.String {
	words := make([]uint64, (n+63)/64)
	for i := range words {
		words[i] = g.r.Uint64()
	}
	return bitstr.New(words, n)
}

// SharedPrefix returns n keys that all extend one random prefix of
// prefixBits bits with tails of tailBits bits — the worst-case data skew
// for radix structures (one deep spine).
func (g *Gen) SharedPrefix(n, prefixBits, tailBits int) []bitstr.String {
	prefix := g.randBits(prefixBits)
	out := make([]bitstr.String, n)
	for i := range out {
		out[i] = prefix.Concat(g.randBits(tailBits))
	}
	return out
}

// PrefixChain returns keys k_1 ⊏ k_2 ⊏ … ⊏ k_n, each extending the
// previous by stepBits — maximal trie depth per key count.
func (g *Gen) PrefixChain(n, stepBits int) []bitstr.String {
	out := make([]bitstr.String, n)
	cur := bitstr.Empty
	for i := range out {
		cur = cur.Concat(g.randBits(stepBits))
		out[i] = cur
	}
	return out
}

// Zipf returns n queries drawn from the given keys with Zipfian
// frequency of parameter s ≥ 1 (rank-1 dominates): classic query skew.
func (g *Gen) Zipf(keys []bitstr.String, n int, s float64) []bitstr.String {
	if len(keys) == 0 {
		return nil
	}
	z := rand.NewZipf(g.r, s, 1, uint64(len(keys)-1))
	perm := g.r.Perm(len(keys)) // decouple rank from insertion order
	out := make([]bitstr.String, n)
	for i := range out {
		out[i] = keys[perm[z.Uint64()]]
	}
	return out
}

// PointAttack returns n copies of a single stored key: the degenerate
// limit of query skew (every range-partitioned probe hits one module).
func (g *Gen) PointAttack(keys []bitstr.String, n int) []bitstr.String {
	k := keys[g.r.Intn(len(keys))]
	out := make([]bitstr.String, n)
	for i := range out {
		out[i] = k
	}
	return out
}

// RangeAttack returns n distinct queries packed into the narrow key
// interval around one stored key — defeats range partitioning while
// leaving every query unique.
func (g *Gen) RangeAttack(keys []bitstr.String, n, tailBits int) []bitstr.String {
	sorted := append([]bitstr.String(nil), keys...)
	sort.Slice(sorted, func(a, b int) bool { return bitstr.Compare(sorted[a], sorted[b]) < 0 })
	base := sorted[len(sorted)/2]
	out := make([]bitstr.String, n)
	for i := range out {
		out[i] = base.Concat(g.randBits(tailBits))
	}
	return out
}

// PrefixQueries derives n queries from stored keys: each query is a
// random-length prefix of a random key, optionally extended with noise
// bits, mixing exact hits, interior (hidden-node) hits and divergences.
func (g *Gen) PrefixQueries(keys []bitstr.String, n, noiseBits int) []bitstr.String {
	out := make([]bitstr.String, n)
	for i := range out {
		k := keys[g.r.Intn(len(keys))]
		cut := g.r.Intn(k.Len() + 1)
		q := k.Prefix(cut)
		if noiseBits > 0 && g.r.Intn(2) == 0 {
			q = q.Concat(g.randBits(g.r.Intn(noiseBits + 1)))
		}
		out[i] = q
	}
	return out
}

// Values returns n deterministic values.
func (g *Gen) Values(n int) []uint64 {
	out := make([]uint64, n)
	for i := range out {
		out[i] = g.r.Uint64() >> 1
	}
	return out
}

// Uints returns n uniformly random integers of the given bit width, for
// the fixed-width x-fast baseline.
func (g *Gen) Uints(n, width int) []uint64 {
	mask := ^uint64(0)
	if width < 64 {
		mask = 1<<uint(width) - 1
	}
	out := make([]uint64, n)
	for i := range out {
		out[i] = g.r.Uint64() & mask
	}
	return out
}

// IPv4Prefixes synthesizes n routing-table-like entries: prefixes of
// length 8–32 bits with realistic length mix (most /16–/24), standing in
// for a public BGP snapshot (repro substitution).
func (g *Gen) IPv4Prefixes(n int) []bitstr.String {
	out := make([]bitstr.String, n)
	for i := range out {
		var plen int
		switch v := g.r.Float64(); {
		case v < 0.05:
			plen = 8 + g.r.Intn(8)
		case v < 0.25:
			plen = 16 + g.r.Intn(4)
		case v < 0.9:
			plen = 20 + g.r.Intn(5)
		default:
			plen = 25 + g.r.Intn(8)
		}
		out[i] = bitstr.FromUint64(uint64(g.r.Uint32())>>uint(32-plen), plen)
	}
	return out
}

// ZipfExponentForSkew maps a [0,1] skew knob to a Zipf exponent in
// [1.01, 3]; convenience for sweeps.
func ZipfExponentForSkew(knob float64) float64 {
	return 1.01 + 2*math.Min(1, math.Max(0, knob))
}

// KeyStream draws stored keys one at a time: the per-client request
// stream of the serving benchmarks. With zipfS > 0 keys follow a
// Zipfian frequency over a rank permutation (exponents ≤ 1 are
// clamped to 1.01, the smallest rand.NewZipf accepts, so "Zipf(1.0)"
// requests the classic near-harmonic skew); with zipfS = 0 keys are
// uniform. The rank permutation is seeded independently of the draw
// seed, so hotness is a property of the key population: streams with
// different seeds draw independently but agree on which keys are hot,
// the way concurrent clients of one skewed store do. Streams with
// equal inputs replay identically.
type KeyStream struct {
	keys []bitstr.String
	perm []int
	r    *rand.Rand
	z    *rand.Zipf
}

// NewKeyStream builds a stream over keys. It panics if keys is empty.
func NewKeyStream(keys []bitstr.String, seed int64, zipfS float64) *KeyStream {
	if len(keys) == 0 {
		panic("workload: NewKeyStream with no keys")
	}
	r := rand.New(rand.NewSource(seed))
	ks := &KeyStream{keys: keys, r: r}
	if zipfS > 0 {
		if zipfS <= 1 {
			zipfS = 1.01
		}
		ks.z = rand.NewZipf(r, zipfS, 1, uint64(len(keys)-1))
		// Decouple rank from insertion order with a permutation all
		// streams over this population share regardless of their seed.
		ks.perm = rand.New(rand.NewSource(int64(len(keys)))).Perm(len(keys))
	}
	return ks
}

// Next returns the stream's next key.
func (ks *KeyStream) Next() bitstr.String {
	if ks.z == nil {
		return ks.keys[ks.r.Intn(len(ks.keys))]
	}
	return ks.keys[ks.perm[ks.z.Uint64()]]
}

// HotRangeStream draws stored keys with a shifting hot range: the key
// population is sorted lexicographically and split into `ranges`
// contiguous groups (each group is one prefix range of the key space),
// one of which is hot — each draw picks uniformly inside the hot group
// with probability hotFrac and uniformly over the whole population
// otherwise. With period > 0 the hot group rotates to the next one
// every period draws, the shifting-hotspot regime that exercises a
// sharding router's hot-range migration end-to-end; with period = 0
// the hotspot only moves when Shift or SetHot is called.
//
// Next must be called from one goroutine, but SetHot/Shift/Hot are
// safe to call concurrently (a benchmark driver shifts many clients'
// streams at once). Streams with equal inputs replay identically.
type HotRangeStream struct {
	sorted  []bitstr.String
	r       *rand.Rand
	ranges  int
	hotFrac float64
	period  int
	count   int
	hot     atomic.Int32
}

// NewHotRangeStream builds a stream over keys with the given number of
// contiguous ranges. It panics if keys is empty, ranges is not in
// [1, len(keys)], or hotFrac is outside [0, 1].
func NewHotRangeStream(keys []bitstr.String, seed int64, hotFrac float64, ranges, period int) *HotRangeStream {
	if len(keys) == 0 {
		panic("workload: NewHotRangeStream with no keys")
	}
	if ranges < 1 || ranges > len(keys) {
		panic("workload: NewHotRangeStream ranges out of [1, len(keys)]")
	}
	if hotFrac < 0 || hotFrac > 1 {
		panic("workload: NewHotRangeStream hotFrac outside [0, 1]")
	}
	sorted := append([]bitstr.String(nil), keys...)
	sort.Slice(sorted, func(a, b int) bool { return bitstr.Compare(sorted[a], sorted[b]) < 0 })
	return &HotRangeStream{
		sorted:  sorted,
		r:       rand.New(rand.NewSource(seed)),
		ranges:  ranges,
		hotFrac: hotFrac,
		period:  period,
	}
}

// rangeBounds returns the half-open index interval of group g.
func (hs *HotRangeStream) rangeBounds(g int) (lo, hi int) {
	n := len(hs.sorted)
	return g * n / hs.ranges, (g + 1) * n / hs.ranges
}

// Next returns the stream's next key, rotating the hotspot first when
// the period expires.
func (hs *HotRangeStream) Next() bitstr.String {
	if hs.period > 0 {
		hs.count++
		if hs.count%hs.period == 0 {
			hs.Shift()
		}
	}
	if hs.hotFrac > 0 && hs.r.Float64() < hs.hotFrac {
		lo, hi := hs.rangeBounds(int(hs.hot.Load()))
		if hi > lo {
			return hs.sorted[lo+hs.r.Intn(hi-lo)]
		}
	}
	return hs.sorted[hs.r.Intn(len(hs.sorted))]
}

// Hot returns the index of the current hot range.
func (hs *HotRangeStream) Hot() int { return int(hs.hot.Load()) }

// SetHot moves the hotspot to range g (mod ranges).
func (hs *HotRangeStream) SetHot(g int) {
	g %= hs.ranges
	if g < 0 {
		g += hs.ranges
	}
	hs.hot.Store(int32(g))
}

// Shift rotates the hotspot to the next contiguous range.
func (hs *HotRangeStream) Shift() {
	for {
		cur := hs.hot.Load()
		next := (cur + 1) % int32(hs.ranges)
		if hs.hot.CompareAndSwap(cur, next) {
			return
		}
	}
}

// HotKeys returns the keys of the current hot range, sorted — the
// tests use it to check where migrated load should have landed.
func (hs *HotRangeStream) HotKeys() []bitstr.String {
	lo, hi := hs.rangeBounds(int(hs.hot.Load()))
	return hs.sorted[lo:hi:hi]
}
