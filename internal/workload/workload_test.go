package workload

import (
	"testing"

	"github.com/pimlab/pimtrie/internal/bitstr"
)

func TestDeterminism(t *testing.T) {
	a := New(42).FixedLen(50, 128)
	b := New(42).FixedLen(50, 128)
	for i := range a {
		if !bitstr.Equal(a[i], b[i]) {
			t.Fatalf("same seed diverged at %d", i)
		}
	}
	c := New(43).FixedLen(50, 128)
	same := 0
	for i := range a {
		if bitstr.Equal(a[i], c[i]) {
			same++
		}
	}
	if same > 5 {
		t.Fatalf("different seeds suspiciously similar: %d/50", same)
	}
}

func TestFixedLen(t *testing.T) {
	for _, bits := range []int{1, 63, 64, 65, 300} {
		for _, k := range New(1).FixedLen(20, bits) {
			if k.Len() != bits {
				t.Fatalf("FixedLen(%d) produced %d bits", bits, k.Len())
			}
		}
	}
}

func TestVarLenRange(t *testing.T) {
	min, max := 10, 200
	sawShort, sawLong := false, false
	for _, k := range New(2).VarLen(500, min, max) {
		if k.Len() < min || k.Len() > max {
			t.Fatalf("VarLen out of range: %d", k.Len())
		}
		if k.Len() < min+30 {
			sawShort = true
		}
		if k.Len() > max-30 {
			sawLong = true
		}
	}
	if !sawShort || !sawLong {
		t.Fatal("VarLen not spread across the range")
	}
}

func TestSharedPrefix(t *testing.T) {
	keys := New(3).SharedPrefix(100, 256, 64)
	for i := 1; i < len(keys); i++ {
		if bitstr.LCP(keys[0], keys[i]) < 256 {
			t.Fatalf("key %d does not share the 256-bit prefix", i)
		}
		if keys[i].Len() != 320 {
			t.Fatalf("key %d length %d", i, keys[i].Len())
		}
	}
}

func TestPrefixChain(t *testing.T) {
	keys := New(4).PrefixChain(50, 8)
	for i := 1; i < len(keys); i++ {
		if !keys[i].HasPrefix(keys[i-1]) {
			t.Fatalf("chain broken at %d", i)
		}
		if keys[i].Len() != (i+1)*8 {
			t.Fatalf("chain length %d at %d", keys[i].Len(), i)
		}
	}
}

func TestZipfSkewConcentrates(t *testing.T) {
	g := New(5)
	keys := g.FixedLen(1000, 64)
	qs := g.Zipf(keys, 5000, 2.5)
	counts := map[string]int{}
	for _, q := range qs {
		counts[q.String()]++
	}
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if max < len(qs)/10 {
		t.Fatalf("Zipf(2.5) top key only %d/%d", max, len(qs))
	}
	// Every query must be a stored key.
	stored := map[string]bool{}
	for _, k := range keys {
		stored[k.String()] = true
	}
	for _, q := range qs {
		if !stored[q.String()] {
			t.Fatal("Zipf produced an unstored query")
		}
	}
}

func TestPointAttack(t *testing.T) {
	g := New(6)
	keys := g.FixedLen(100, 32)
	qs := g.PointAttack(keys, 50)
	for _, q := range qs {
		if !bitstr.Equal(q, qs[0]) {
			t.Fatal("PointAttack not constant")
		}
	}
}

func TestRangeAttackNarrow(t *testing.T) {
	g := New(7)
	keys := g.FixedLen(500, 64)
	qs := g.RangeAttack(keys, 200, 32)
	// All queries share the 64-bit base prefix → extremely narrow range.
	for i := 1; i < len(qs); i++ {
		if bitstr.LCP(qs[0], qs[i]) < 64 {
			t.Fatal("RangeAttack queries not in a narrow range")
		}
	}
}

func TestPrefixQueriesMixed(t *testing.T) {
	g := New(8)
	keys := g.FixedLen(200, 96)
	qs := g.PrefixQueries(keys, 500, 16)
	if len(qs) != 500 {
		t.Fatalf("got %d queries", len(qs))
	}
	lens := map[int]bool{}
	for _, q := range qs {
		lens[q.Len()] = true
	}
	if len(lens) < 20 {
		t.Fatalf("query lengths not diverse: %d distinct", len(lens))
	}
}

func TestUintsWidth(t *testing.T) {
	for _, w := range []int{8, 32, 64} {
		for _, v := range New(9).Uints(100, w) {
			if w < 64 && v >= 1<<uint(w) {
				t.Fatalf("Uints(%d) produced %d", w, v)
			}
		}
	}
}

func TestIPv4Prefixes(t *testing.T) {
	ks := New(10).IPv4Prefixes(1000)
	short, mid := 0, 0
	for _, k := range ks {
		if k.Len() < 8 || k.Len() > 32 {
			t.Fatalf("prefix length %d", k.Len())
		}
		if k.Len() < 16 {
			short++
		}
		if k.Len() >= 20 && k.Len() <= 24 {
			mid++
		}
	}
	if mid < short {
		t.Fatal("length mix not routing-table-like")
	}
}

func TestZipfExponentForSkew(t *testing.T) {
	if ZipfExponentForSkew(0) < 1.0 || ZipfExponentForSkew(1) > 3.01 {
		t.Fatal("knob mapping out of range")
	}
	if ZipfExponentForSkew(-5) != ZipfExponentForSkew(0) || ZipfExponentForSkew(9) != ZipfExponentForSkew(1) {
		t.Fatal("knob not clamped")
	}
}

func TestKeyStream(t *testing.T) {
	keys := New(1).FixedLen(200, 64)
	// Determinism: equal inputs replay identically.
	a, b := NewKeyStream(keys, 9, 1.0), NewKeyStream(keys, 9, 1.0)
	for i := 0; i < 500; i++ {
		if !bitstr.Equal(a.Next(), b.Next()) {
			t.Fatalf("same-seed streams diverged at %d", i)
		}
	}
	// Zipf(1.0) clamps rather than panicking and concentrates mass:
	// the hottest key should dominate a uniform stream's hottest key.
	count := func(s *KeyStream, n int) int {
		freq := map[string]int{}
		max := 0
		for i := 0; i < n; i++ {
			k := s.Next().String()
			freq[k]++
			if freq[k] > max {
				max = freq[k]
			}
		}
		return max
	}
	zhot := count(NewKeyStream(keys, 3, 1.0), 4000)
	uhot := count(NewKeyStream(keys, 3, 0), 4000)
	if zhot < 3*uhot {
		t.Fatalf("Zipf stream not skewed: hottest %d vs uniform hottest %d", zhot, uhot)
	}
}

func TestHotRangeStreamDeterministicAndRotating(t *testing.T) {
	g := New(4)
	keys := g.FixedLen(1000, 64)

	// Identical inputs replay identically.
	a := NewHotRangeStream(keys, 9, 0.9, 8, 100)
	b := NewHotRangeStream(keys, 9, 0.9, 8, 100)
	for i := 0; i < 500; i++ {
		if !bitstr.Equal(a.Next(), b.Next()) {
			t.Fatalf("streams diverged at draw %d", i)
		}
	}
	if a.Hot() != b.Hot() {
		t.Fatalf("hot ranges diverged: %d vs %d", a.Hot(), b.Hot())
	}

	// The hotspot rotates once per period, wrapping around.
	c := NewHotRangeStream(keys, 9, 0.5, 4, 10)
	if c.Hot() != 0 {
		t.Fatalf("initial hot range = %d, want 0", c.Hot())
	}
	for i := 0; i < 10; i++ {
		c.Next()
	}
	if c.Hot() != 1 {
		t.Fatalf("hot range after one period = %d, want 1", c.Hot())
	}
	for i := 0; i < 30; i++ {
		c.Next()
	}
	if c.Hot() != 0 {
		t.Fatalf("hot range after four periods = %d, want 0 (wrapped)", c.Hot())
	}
}

func TestHotRangeStreamSkew(t *testing.T) {
	g := New(5)
	keys := g.FixedLen(800, 64)
	hs := NewHotRangeStream(keys, 3, 0.9, 8, 0) // manual shifting only
	hs.SetHot(5)
	hot := map[string]bool{}
	for _, k := range hs.HotKeys() {
		hot[k.String()] = true
	}
	if len(hot) != 100 {
		t.Fatalf("hot range holds %d keys, want 100", len(hot))
	}
	const draws = 5000
	inHot := 0
	for i := 0; i < draws; i++ {
		if hot[hs.Next().String()] {
			inHot++
		}
	}
	// Expect hotFrac + (1-hotFrac)/ranges ≈ 0.9125 of draws in the hot
	// range; accept a generous tolerance.
	frac := float64(inHot) / draws
	if frac < 0.85 || frac > 0.97 {
		t.Fatalf("hot-range fraction = %.3f, want ≈0.91", frac)
	}
	// SetHot moves the mass: after shifting, the old range goes cold.
	hs.SetHot(2)
	inOld := 0
	for i := 0; i < draws; i++ {
		if hot[hs.Next().String()] {
			inOld++
		}
	}
	if frac := float64(inOld) / draws; frac > 0.05 {
		t.Fatalf("old hot range still draws %.3f of traffic after SetHot", frac)
	}
}
