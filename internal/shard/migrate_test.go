package shard_test

import (
	"math/rand"
	"sync"
	"testing"

	"github.com/pimlab/pimtrie"
	"github.com/pimlab/pimtrie/internal/bitstr"
	"github.com/pimlab/pimtrie/internal/shard"
	"github.com/pimlab/pimtrie/internal/workload"
)

// TestRebalanceMovesHotLoad drives a hotspot at one shard and checks a
// manual Rebalance cycle detects the imbalance, moves hot slots to
// cooler shards, and preserves the stored contents exactly.
func TestRebalanceMovesHotLoad(t *testing.T) {
	const shards, bits = 4, 6
	r := shard.New(shard.Config{
		Shards:      shards,
		RouteBits:   bits,
		Partitioner: shard.Contiguous{},
		Modules:     8,
		Index:       pimtrie.Options{Seed: 21},
		Migration:   shard.Migration{Threshold: 1.2, MaxMoves: 8, MinKeys: 64},
	})
	defer r.Close()

	gen := workload.New(17)
	keys := dedupeKeys(gen.FixedLen(1500, 32))
	if err := r.Insert(keys, gen.Values(len(keys))); err != nil {
		t.Fatal(err)
	}
	before, err := r.Subtree(bitstr.Empty)
	if err != nil {
		t.Fatal(err)
	}

	// Prime the sample window, then slam shard 0's keys.
	if moves, err := r.Rebalance(); err != nil || moves != 0 {
		t.Fatalf("priming Rebalance = (%d, %v), want (0, nil)", moves, err)
	}
	table := r.Table()
	var hot []shard.Key
	for _, k := range keys {
		if table[k.PrefixIndex(bits)] == 0 {
			hot = append(hot, k)
		}
	}
	if len(hot) < 50 {
		t.Fatalf("only %d keys on shard 0", len(hot))
	}
	for i := 0; i < 10; i++ {
		if _, _, err := r.Get(hot); err != nil {
			t.Fatal(err)
		}
	}

	moves, err := r.Rebalance()
	if err != nil {
		t.Fatalf("Rebalance: %v", err)
	}
	if moves == 0 {
		t.Fatalf("Rebalance moved nothing under a pure shard-0 hotspot (imbalance %.2f)",
			r.Stats().LastImbalance)
	}
	st := r.Stats()
	if st.LastImbalance < 1.2 {
		t.Errorf("LastImbalance = %.2f, want >= threshold 1.2", st.LastImbalance)
	}
	if st.Migrations == 0 || st.MovedKeys == 0 {
		t.Errorf("stats after rebalance: %+v, want migrations and moved keys", st)
	}
	afterTable := r.Table()
	lost := 0
	for s, sid := range table {
		if sid == 0 && afterTable[s] != 0 {
			lost++
		}
	}
	if lost != moves {
		t.Errorf("shard 0 lost %d slots, Rebalance reported %d moves", lost, moves)
	}

	// Contents are untouched by migration.
	after, err := r.Subtree(bitstr.Empty)
	if err != nil {
		t.Fatal(err)
	}
	sameKVs(t, "post-rebalance dump", after, before)

	// A balanced reload does not trigger further moves.
	if _, _, err := r.Get(keys); err != nil {
		t.Fatal(err)
	}
	if moves, err := r.Rebalance(); err != nil || moves != 0 {
		t.Fatalf("balanced Rebalance = (%d, %v), want (0, nil)", moves, err)
	}
}

// TestRebalanceIgnoresIdleAndLight: below MinKeys nothing moves no
// matter how imbalanced the tiny sample is.
func TestRebalanceIgnoresIdleAndLight(t *testing.T) {
	r := shard.New(shard.Config{
		Shards: 2, RouteBits: 4, Partitioner: shard.Contiguous{}, Modules: 4,
		Index:     pimtrie.Options{Seed: 2},
		Migration: shard.Migration{MinKeys: 1 << 20},
	})
	defer r.Close()
	gen := workload.New(5)
	keys := dedupeKeys(gen.FixedLen(200, 24))
	if err := r.Insert(keys, gen.Values(len(keys))); err != nil {
		t.Fatal(err)
	}
	r.Rebalance()
	if _, _, err := r.Get(keys[:40]); err != nil {
		t.Fatal(err)
	}
	if moves, _ := r.Rebalance(); moves != 0 {
		t.Fatalf("light traffic moved %d slots", moves)
	}
}

// TestMigrationUnderConcurrentWrites is the race test: writer
// goroutines churn disjoint key ranges through the router while the
// main goroutine forces migrations; the epoch barrier must keep every
// answer exact and the final state must equal the deterministic
// per-writer outcome. Run with -race in CI.
func TestMigrationUnderConcurrentWrites(t *testing.T) {
	const (
		writers  = 4
		perW     = 120
		shards   = 4
		bits     = 5
		migrates = 25
	)
	r := shard.New(shard.Config{
		Shards:      shards,
		RouteBits:   bits,
		Partitioner: shard.HashedPrefix{Seed: 6},
		Modules:     8,
		Index:       pimtrie.Options{Seed: 13},
	})
	defer r.Close()

	// Disjoint ranges: writer w's keys start with w's 8-bit tag, so no
	// cross-writer conflicts and the final state is deterministic.
	keysByW := make([][]shard.Key, writers)
	valsByW := make([][]uint64, writers)
	for w := 0; w < writers; w++ {
		gen := workload.New(int64(100 + w))
		tag := bitstr.FromUint64(uint64(w), 8)
		raw := dedupeKeys(gen.VarLen(perW, 1, 32))
		for _, k := range raw {
			keysByW[w] = append(keysByW[w], tag.Concat(k))
		}
		valsByW[w] = gen.Values(len(keysByW[w]))
	}

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			keys, vals := keysByW[w], valsByW[w]
			// Insert everything in chunks, read it back, then delete the
			// odd half — all while migrations fire.
			for i := 0; i < len(keys); i += 30 {
				j := i + 30
				if j > len(keys) {
					j = len(keys)
				}
				if err := r.Insert(keys[i:j], vals[i:j]); err != nil {
					t.Errorf("writer %d insert: %v", w, err)
					return
				}
				gotV, gotF, err := r.Get(keys[i:j])
				if err != nil {
					t.Errorf("writer %d get: %v", w, err)
					return
				}
				for x := range gotF {
					if !gotF[x] || gotV[x] != vals[i+x] {
						t.Errorf("writer %d: key %q = (%d,%v), want (%d,true)",
							w, keys[i+x], gotV[x], gotF[x], vals[i+x])
						return
					}
				}
			}
			var odd []shard.Key
			for i := 1; i < len(keys); i += 2 {
				odd = append(odd, keys[i])
			}
			found, err := r.Delete(odd)
			if err != nil {
				t.Errorf("writer %d delete: %v", w, err)
				return
			}
			for i, f := range found {
				if !f {
					t.Errorf("writer %d: delete %q found=false", w, odd[i])
					return
				}
			}
		}()
	}

	rng := rand.New(rand.NewSource(55))
	for i := 0; i < migrates; i++ {
		if _, err := r.MigrateSlot(rng.Intn(r.Slots()), rng.Intn(shards)); err != nil {
			t.Errorf("migrate %d: %v", i, err)
		}
	}
	wg.Wait()

	// Deterministic final state: even-indexed keys of every writer.
	want := map[string]uint64{}
	for w := 0; w < writers; w++ {
		for i := 0; i < len(keysByW[w]); i += 2 {
			want[keysByW[w][i].String()] = valsByW[w][i]
		}
	}
	dump, err := r.Subtree(bitstr.Empty)
	if err != nil {
		t.Fatal(err)
	}
	if len(dump) != len(want) {
		t.Fatalf("final dump has %d keys, want %d", len(dump), len(want))
	}
	for _, kv := range dump {
		v, ok := want[kv.Key.String()]
		if !ok || v != kv.Value {
			t.Fatalf("final state: %q = %d, want (%d, present=%v)", kv.Key, kv.Value, v, ok)
		}
	}
	if st := r.Stats(); st.Migrations == 0 {
		t.Error("no migrations recorded")
	}
}

// TestMigrationLoopEndToEnd runs the background loop against a
// shifting hotspot and waits for it to move load off the hot shard.
func TestMigrationLoopEndToEnd(t *testing.T) {
	const shards, bits = 4, 6
	r := shard.New(shard.Config{
		Shards:      shards,
		RouteBits:   bits,
		Partitioner: shard.Contiguous{},
		Modules:     8,
		Index:       pimtrie.Options{Seed: 31},
		Migration:   shard.Migration{Enabled: true, Interval: 5e6, Threshold: 1.2, MaxMoves: 8, MinKeys: 64},
	})
	defer r.Close()

	gen := workload.New(23)
	keys := dedupeKeys(gen.FixedLen(1200, 32))
	if err := r.Insert(keys, gen.Values(len(keys))); err != nil {
		t.Fatal(err)
	}
	hs := workload.NewHotRangeStream(keys, 3, 0.95, 8, 0)
	batch := make([]shard.Key, 64)
	for i := 0; i < 400; i++ {
		for j := range batch {
			batch[j] = hs.Next()
		}
		if _, _, err := r.Get(batch); err != nil {
			t.Fatal(err)
		}
		if r.Stats().Migrations > 0 {
			return // the loop saw the hotspot and acted
		}
	}
	t.Fatalf("background migration loop never moved a slot (imbalance %.2f)",
		r.Stats().LastImbalance)
}
