// Package shard is the scale-out layer: a Router that partitions the
// key space across N independent PIM-trie shards — each shard a full
// pimtrie.Index (its own simulated PIM system) fronted by its own
// serve.Server (its own epoch scheduler) — and scatter/gathers batched
// operations across them. One Index+Server deployment saturates a
// single serve scheduler; N shards behind a router multiply the epoch
// pipelines, which is the unlock for serving traffic far beyond one
// PIM system's capacity.
//
// Partitioning. Keys are routed by their first RouteBits bits: the key
// space splits into 2^RouteBits contiguous "slots" (lexicographic
// prefix ranges) and a live routing table maps slots to shards. The
// pluggable Partitioner picks the initial table — Contiguous for
// range partitioning, HashedPrefix for scattered skew-resistant
// placement. Keys shorter than RouteBits bits are replicated to every
// shard owning a slot that extends them, so LCP and prefix scans stay
// single-scatter correct; gathers deduplicate the replicas.
//
// Scatter/gather. Get/Insert/Delete split per shard and execute in
// parallel on the per-shard servers; Subtree/Subtrees fan out to every
// shard whose slot range can intersect the prefix and merge results in
// lexicographic key order; LCP broadcasts and takes the per-query
// maximum (see LCPAsync for why that is the exact answer). Answers are bit-identical to a single Index
// holding all keys (the oracle-equality tests assert exactly that).
//
// Skew. True to the paper's theme, the router watches per-shard load —
// the serving layer's per-prefix executed-key counters
// (serve.Options.PrefixLoadBits) aggregated per shard and scored with
// metrics.Imbalance — and when the max/mean imbalance crosses a
// threshold it migrates hot slots to cool shards: the slot's pairs are
// exported with a Subtree scan on the old owner, replayed with one
// Insert batch on the new owner, and the routing table flips under the
// router's epoch barrier (an exclusive lock all in-flight operations
// drain before migration touches anything), so reads never observe a
// half-moved range.
package shard

import (
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"github.com/pimlab/pimtrie"
	"github.com/pimlab/pimtrie/internal/bitstr"
	"github.com/pimlab/pimtrie/internal/metrics"
	"github.com/pimlab/pimtrie/internal/serve"
)

// Key and KV alias the index's key types.
type (
	Key = pimtrie.Key
	KV  = pimtrie.KV
)

// Migration configures the hot-range migration loop.
type Migration struct {
	// Enabled starts the background load-watcher goroutine.
	Enabled bool
	// Interval between load samples (default 100ms).
	Interval time.Duration
	// Threshold is the max/mean per-shard load imbalance that triggers
	// migration (default 1.3; metrics.Imbalance semantics, 1.0 = even).
	Threshold float64
	// MaxMoves bounds slots migrated per cycle (default 8).
	MaxMoves int
	// MinKeys is the minimum executed keys per interval before the
	// sample is trusted (default 256) — idle systems never migrate.
	MinKeys uint64
}

func (m Migration) withDefaults() Migration {
	if m.Interval <= 0 {
		m.Interval = 100 * time.Millisecond
	}
	if m.Threshold <= 1 {
		m.Threshold = 1.3
	}
	if m.MaxMoves <= 0 {
		m.MaxMoves = 8
	}
	if m.MinKeys == 0 {
		m.MinKeys = 256
	}
	return m
}

// Config configures a Router. Zero values select the noted defaults.
type Config struct {
	// Shards is the number of independent Index+Server shards (>= 1).
	Shards int
	// RouteBits sets the routing granularity: 2^RouteBits slots
	// (default 8, clamped to [1, 14]). More bits mean finer migration
	// units and larger routing tables.
	RouteBits int
	// Partitioner picks the initial slot assignment (default
	// HashedPrefix{} seeded from Index.Seed).
	Partitioner Partitioner
	// Modules is the number of PIM modules per shard (default 32).
	Modules int
	// Index configures every shard's index; Seed is offset per shard so
	// placement decisions stay independent.
	Index pimtrie.Options
	// Serve configures every shard's server. PrefixLoadBits is forced
	// to RouteBits (the migration policy needs slot-granular load) and
	// MetricLabels to shard="i".
	Serve serve.Options
	// Metrics, when non-nil, registers router instruments and per-shard
	// serving instruments (labelled shard="i") in the given registry.
	Metrics *metrics.Registry
	// Migration configures the hot-range migration loop.
	Migration Migration
}

// Router owns N shards and routes batched operations across them; see
// the package comment. Construct with New, stop with Close. All
// methods are safe for concurrent use; futures may be waited from any
// goroutine, any number of times.
type Router struct {
	cfg       Config
	routeBits int
	slots     int
	shards    []*shardNode
	met       *routerMetrics

	// mu and inflight together form the migration epoch barrier.
	// Submission holds mu shared only while reading the table and
	// handing sub-batches to the shard servers — never while waiting
	// for results — and registers the operation in inflight until a
	// per-operation resolver goroutine has gathered every sub-result.
	// Migration takes mu exclusively (parking new submissions) and then
	// drains inflight; outstanding operations resolve on the shard
	// servers' own schedule, independent of whether any client ever
	// waits on its future, so the drain cannot deadlock against a
	// caller pipelining many futures from one goroutine.
	mu       sync.RWMutex
	inflight sync.WaitGroup
	table    []int
	closed   bool

	// tableP is the copy-on-write published routing table behind the
	// lock-free snapshot read path: migrations install a fresh copy
	// (never mutating a published one), and a snapshot read re-loads the
	// pointer after probing — a changed pointer means a migration
	// completed mid-read and the whole call falls back to the barrier
	// path. closedA mirrors closed for the same lock-free readers.
	tableP  atomic.Pointer[[]int]
	closedA atomic.Bool

	snapKeys      atomic.Uint64 // keys served via shard-local snapshot reads
	snapFallbacks atomic.Uint64 // ReadSnapshot keys sent to the barrier path

	// migMu serializes migration cycles and guards the load snapshots.
	migMu     sync.Mutex
	prevLoad  [][]uint64
	loadBuf   [][]uint64
	lastImbal float64
	// skipNext marks the next load window as polluted: a migration's
	// own replay traffic (export scan, insert, delete) runs through the
	// shard servers and is counted by PrefixLoad, so the window that
	// contains it shows the destination shard spuriously hot. Acting on
	// that window ping-pongs slots; instead it only advances the
	// cumulative sample base.
	skipNext bool

	migration atomic.Uint64
	movedKeys atomic.Uint64

	stop     chan struct{}
	loopDone chan struct{}
}

type shardNode struct {
	id  int
	ix  *pimtrie.Index
	srv *serve.Server
}

// New builds the shards and starts the router. It panics on an invalid
// configuration (the same contract as pimtrie.New).
func New(cfg Config) *Router {
	if cfg.Shards < 1 {
		panic(fmt.Sprintf("shard: New requires at least one shard, got %d", cfg.Shards))
	}
	if cfg.RouteBits == 0 {
		cfg.RouteBits = 8
	}
	if cfg.RouteBits < 1 || cfg.RouteBits > 14 {
		panic(fmt.Sprintf("shard: RouteBits %d outside [1, 14]", cfg.RouteBits))
	}
	if cfg.Modules <= 0 {
		cfg.Modules = 32
	}
	if cfg.Partitioner == nil {
		cfg.Partitioner = HashedPrefix{Seed: cfg.Index.Seed}
	}
	cfg.Migration = cfg.Migration.withDefaults()
	slots := 1 << uint(cfg.RouteBits)
	table := cfg.Partitioner.Assign(slots, cfg.Shards)
	if len(table) != slots {
		panic(fmt.Sprintf("shard: partitioner %s returned %d slots, want %d", cfg.Partitioner.Name(), len(table), slots))
	}
	if err := validShards(table, cfg.Shards); err != nil {
		panic(err.Error())
	}
	r := &Router{
		cfg:       cfg,
		routeBits: cfg.RouteBits,
		slots:     slots,
		table:     table,
		stop:      make(chan struct{}),
		loopDone:  make(chan struct{}),
	}
	r.tableP.Store(&table)
	for i := 0; i < cfg.Shards; i++ {
		iopts := cfg.Index
		iopts.Seed = iopts.Seed*int64(cfg.Shards) + int64(i) + 1
		sopts := cfg.Serve
		sopts.PrefixLoadBits = cfg.RouteBits
		sopts.Metrics = cfg.Metrics
		if cfg.Metrics != nil {
			sopts.MetricLabels = append(append([]metrics.Label(nil), cfg.Serve.MetricLabels...),
				metrics.L("shard", strconv.Itoa(i)))
		}
		ix := pimtrie.New(cfg.Modules, iopts)
		r.shards = append(r.shards, &shardNode{id: i, ix: ix, srv: serve.NewServer(ix, sopts)})
	}
	if cfg.Metrics != nil {
		r.met = newRouterMetrics(cfg.Metrics, cfg.Shards)
		r.met.updateSlots(r.table, cfg.Shards)
	}
	if cfg.Migration.Enabled {
		go r.migrationLoop()
	} else {
		close(r.loopDone)
	}
	return r
}

// Close stops the migration loop, drains every shard's server and
// refuses further requests.
func (r *Router) Close() {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	r.closed = true
	r.closedA.Store(true)
	close(r.stop)
	r.mu.Unlock()
	<-r.loopDone
	// Let outstanding operations resolve before tearing the servers
	// down; new submissions already observe closed.
	r.inflight.Wait()
	for _, sh := range r.shards {
		sh.srv.Close()
	}
}

// Shards returns the shard count.
func (r *Router) Shards() int { return len(r.shards) }

// Slots returns the routing-table size (2^RouteBits).
func (r *Router) Slots() int { return r.slots }

// Table returns a copy of the live slot -> shard routing table.
func (r *Router) Table() []int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return append([]int(nil), r.table...)
}

// Stats is a snapshot of router-level counters.
type Stats struct {
	Shards, Slots int
	// SlotsByShard counts owned slots per shard under the live table.
	SlotsByShard []int
	// KeysByShard is each shard's stored key count.
	KeysByShard []int
	// Migrations counts completed slot migrations; MovedKeys the pairs
	// they replayed.
	Migrations, MovedKeys uint64
	// LastImbalance is the max/mean per-shard load of the most recent
	// migration-policy sample (0 until the first sample).
	LastImbalance float64
	// SnapshotReads counts keys served wait-free from shard snapshots;
	// SnapshotFallbacks counts ReadSnapshot keys rerouted to the strong
	// path (recent write, unpublished snapshot, or mid-read migration).
	SnapshotReads, SnapshotFallbacks uint64
}

// Stats returns a router snapshot.
func (r *Router) Stats() Stats {
	r.mu.RLock()
	st := Stats{
		Shards:       len(r.shards),
		Slots:        r.slots,
		SlotsByShard: make([]int, len(r.shards)),
		KeysByShard:  make([]int, len(r.shards)),
	}
	for _, sid := range r.table {
		st.SlotsByShard[sid]++
	}
	r.mu.RUnlock()
	for i, sh := range r.shards {
		st.KeysByShard[i] = sh.srv.KeyCount()
	}
	r.migMu.Lock()
	st.LastImbalance = r.lastImbal
	r.migMu.Unlock()
	st.Migrations, st.MovedKeys = r.migration.Load(), r.movedKeys.Load()
	st.SnapshotReads, st.SnapshotFallbacks = r.snapKeys.Load(), r.snapFallbacks.Load()
	return st
}

// ShardMetrics returns each shard's cumulative PIM Model cost counters
// as sampled after each shard's most recently committed epoch. Diff
// two snapshots per shard to cost a window; the deployment-level
// makespan of a window is the max over shards of its busy model time —
// shards are independent PIM systems running in parallel. For an exact
// window boundary, quiesce traffic (wait for outstanding futures)
// before snapshotting.
func (r *Router) ShardMetrics() []pimtrie.Metrics {
	out := make([]pimtrie.Metrics, len(r.shards))
	for i, sh := range r.shards {
		out[i] = sh.srv.ModelMetrics()
	}
	return out
}

// ShardServerStats returns each shard's serving-layer counters.
func (r *Router) ShardServerStats() []serve.Stats {
	out := make([]serve.Stats, len(r.shards))
	for i, sh := range r.shards {
		out[i] = sh.srv.Stats()
	}
	return out
}

// keyRef locates one request key's answer inside the scatter plan.
type keyRef struct{ shard, pos int32 }

// scatter groups keys by owning shard under the read lock the caller
// already holds. When replicate is set, keys shorter than RouteBits
// are appended to every shard owning a slot extending them; the ref
// always points at the base-slot (primary) copy.
func (r *Router) scatter(keys []Key, values []uint64, replicate bool) (subKeys [][]Key, subVals [][]uint64, refs []keyRef, replicated int) {
	subKeys = make([][]Key, len(r.shards))
	if values != nil {
		subVals = make([][]uint64, len(r.shards))
	}
	refs = make([]keyRef, len(keys))
	push := func(sid int, k Key, i int) int32 {
		pos := int32(len(subKeys[sid]))
		subKeys[sid] = append(subKeys[sid], k)
		if values != nil {
			subVals[sid] = append(subVals[sid], values[i])
		}
		return pos
	}
	for i, k := range keys {
		lo, hi := slotRange(k, r.routeBits)
		primary := r.table[lo]
		refs[i] = keyRef{shard: int32(primary), pos: push(primary, k, i)}
		if !replicate || hi == lo+1 {
			continue
		}
		seen := uint64(1) << uint(primary) // shard count <= 64 enforced in New? replicate via map when larger
		for s := lo + 1; s < hi; s++ {
			sid := r.table[s]
			if len(r.shards) <= 64 {
				if seen&(1<<uint(sid)) != 0 {
					continue
				}
				seen |= 1 << uint(sid)
			} else if containsShard(subKeys[sid], k) {
				continue
			}
			push(sid, k, i)
			replicated++
		}
	}
	return subKeys, subVals, refs, replicated
}

// containsShard reports whether k was already appended to sub (the
// slow replica-dedupe path for > 64 shards; the key, if present, is
// the most recent append for this request index).
func containsShard(sub []Key, k Key) bool {
	return len(sub) > 0 && bitstr.Equal(sub[len(sub)-1], k)
}

// gather is the common future core: a one-shot completion latch. A
// dedicated resolver goroutine (see Router.launch) collects every
// shard sub-result and closes done; wait just blocks on the latch, so
// it is safe for one client goroutine to pipeline arbitrarily many
// futures before waiting on any of them.
type gather struct {
	done chan struct{}
	err  error
}

func (g *gather) wait() error {
	<-g.done
	return g.err
}

// settle resolves the gather immediately with err — used for
// submissions that never reach a shard (empty batches, closed router).
func (g *gather) settle(err error) {
	g.done = make(chan struct{})
	g.err = err
	close(g.done)
}

// begin takes the shared barrier lock and checks for Close. On true
// the lock is held and the submission MUST end with r.launch, which
// releases it.
func (r *Router) begin(g *gather) bool {
	r.mu.RLock()
	if r.closed {
		r.mu.RUnlock()
		g.settle(serve.ErrClosed)
		return false
	}
	return true
}

// launch completes a submission begun with begin: it registers the
// operation in the migration drain set, releases the shared barrier
// lock, and starts the resolver goroutine that folds the shard
// sub-futures into the gather. The inflight.Add happens before the
// RUnlock so a migration that acquires the exclusive lock afterwards
// cannot miss the operation when it drains. Resolution is driven by
// the shard servers' epoch schedule, never by the caller's Wait, so
// the drain cannot deadlock against a client pipelining many futures
// from one goroutine.
func (r *Router) launch(g *gather, resolve func() error) {
	g.done = make(chan struct{})
	r.inflight.Add(1)
	r.mu.RUnlock()
	go func() {
		g.err = resolve()
		close(g.done)
		r.inflight.Done()
	}()
}

// GetFuture is the handle of an in-flight Get batch.
type GetFuture struct {
	g     gather
	vals  []uint64
	found []bool
}

// Wait blocks until every shard answered: values[i], found[i] answer
// the i-th requested key.
func (f *GetFuture) Wait() ([]uint64, []bool, error) {
	err := f.g.wait()
	return f.vals, f.found, err
}

// GetAsync scatters an exact-lookup batch across the shards.
func (r *Router) GetAsync(keys ...Key) *GetFuture {
	f := &GetFuture{}
	if len(keys) == 0 {
		f.vals, f.found = []uint64{}, []bool{}
		f.g.settle(nil)
		return f
	}
	if !r.begin(&f.g) {
		return f
	}
	if r.met != nil {
		r.met.note(opGet, len(keys))
	}
	subKeys, _, refs, _ := r.scatter(keys, nil, false)
	futs := make([]*serve.GetFuture, len(r.shards))
	for sid, sk := range subKeys {
		if len(sk) > 0 {
			futs[sid] = r.shards[sid].srv.GetAsync(sk...)
		}
	}
	r.launch(&f.g, func() error {
		vals := make([][]uint64, len(futs))
		found := make([][]bool, len(futs))
		var firstErr error
		for sid, sf := range futs {
			if sf == nil {
				continue
			}
			v, fd, err := sf.Wait()
			if err != nil && firstErr == nil {
				firstErr = err
			}
			vals[sid], found[sid] = v, fd
		}
		if firstErr != nil {
			return firstErr
		}
		f.vals = make([]uint64, len(refs))
		f.found = make([]bool, len(refs))
		for i, ref := range refs {
			f.vals[i] = vals[ref.shard][ref.pos]
			f.found[i] = found[ref.shard][ref.pos]
		}
		return nil
	})
	return f
}

// LCPFuture is the handle of an in-flight LCP batch.
type LCPFuture struct {
	g    gather
	lcps []int
}

// Wait blocks until every shard answered: lcps[i] answers the i-th
// requested key.
func (f *LCPFuture) Wait() ([]int, error) {
	err := f.g.wait()
	return f.lcps, err
}

// LCPAsync broadcasts a longest-common-prefix batch to every shard and
// takes the per-query maximum. Broadcast is required for correctness,
// not convenience: an answer longer than RouteBits comes from the
// query's own slot, but an answer of length L < RouteBits can be
// witnessed by a stored key diverging from the query at bit L — a key
// in a sibling slot that may live on any shard. Each shard's answer
// only ranges over genuinely stored keys (replicas are copies), so
// every answer is a lower bound of the true one and their maximum,
// over shards jointly holding every key, is exact.
func (r *Router) LCPAsync(keys ...Key) *LCPFuture {
	f := &LCPFuture{}
	if len(keys) == 0 {
		f.lcps = []int{}
		f.g.settle(nil)
		return f
	}
	if !r.begin(&f.g) {
		return f
	}
	if r.met != nil {
		r.met.note(opLCP, len(keys))
	}
	futs := make([]*serve.LCPFuture, len(r.shards))
	for sid, sh := range r.shards {
		futs[sid] = sh.srv.LCPAsync(keys...)
	}
	r.launch(&f.g, func() error {
		var firstErr error
		f.lcps = make([]int, len(keys))
		for _, sf := range futs {
			l, err := sf.Wait()
			if err != nil {
				if firstErr == nil {
					firstErr = err
				}
				continue
			}
			for i, v := range l {
				if v > f.lcps[i] {
					f.lcps[i] = v
				}
			}
		}
		if firstErr != nil {
			f.lcps = nil
			return firstErr
		}
		return nil
	})
	return f
}

// InsertFuture is the handle of an in-flight Insert batch.
type InsertFuture struct{ g gather }

// Wait blocks until every shard committed the mutation.
func (f *InsertFuture) Wait() error { return f.g.wait() }

// InsertAsync scatters a mutation storing the given pairs; it panics
// if the slices disagree in length. Keys shorter than RouteBits are
// replicated to every shard covering their extensions so prefix
// queries stay single-scatter.
func (r *Router) InsertAsync(keys []Key, values []uint64) *InsertFuture {
	if len(keys) != len(values) {
		panic("shard: InsertAsync keys/values length mismatch")
	}
	f := &InsertFuture{}
	if len(keys) == 0 {
		f.g.settle(nil)
		return f
	}
	if !r.begin(&f.g) {
		return f
	}
	subKeys, subVals, _, replicated := r.scatter(keys, values, true)
	if r.met != nil {
		r.met.note(opInsert, len(keys))
		r.met.replicated.Add(uint64(replicated))
	}
	futs := make([]*serve.InsertFuture, len(r.shards))
	for sid, sk := range subKeys {
		if len(sk) > 0 {
			futs[sid] = r.shards[sid].srv.InsertAsync(sk, subVals[sid])
		}
	}
	r.launch(&f.g, func() error {
		var firstErr error
		for _, sf := range futs {
			if sf == nil {
				continue
			}
			if err := sf.Wait(); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		return firstErr
	})
	return f
}

// DeleteFuture is the handle of an in-flight Delete batch.
type DeleteFuture struct {
	g     gather
	found []bool
}

// Wait blocks until every shard committed: found[i] reports whether
// the i-th requested key was present.
func (f *DeleteFuture) Wait() ([]bool, error) {
	err := f.g.wait()
	return f.found, err
}

// DeleteAsync scatters a mutation removing the given keys, including
// every replica of short keys; found comes from the primary copy.
func (r *Router) DeleteAsync(keys ...Key) *DeleteFuture {
	f := &DeleteFuture{}
	if len(keys) == 0 {
		f.found = []bool{}
		f.g.settle(nil)
		return f
	}
	if !r.begin(&f.g) {
		return f
	}
	if r.met != nil {
		r.met.note(opDelete, len(keys))
	}
	subKeys, _, refs, _ := r.scatter(keys, nil, true)
	futs := make([]*serve.DeleteFuture, len(r.shards))
	for sid, sk := range subKeys {
		if len(sk) > 0 {
			futs[sid] = r.shards[sid].srv.DeleteAsync(sk...)
		}
	}
	r.launch(&f.g, func() error {
		per := make([][]bool, len(futs))
		var firstErr error
		for sid, sf := range futs {
			if sf == nil {
				continue
			}
			fd, err := sf.Wait()
			if err != nil && firstErr == nil {
				firstErr = err
			}
			per[sid] = fd
		}
		if firstErr != nil {
			return firstErr
		}
		f.found = make([]bool, len(refs))
		for i, ref := range refs {
			f.found[i] = per[ref.shard][ref.pos]
		}
		return nil
	})
	return f
}

// SubtreeFuture is the handle of an in-flight prefix-scan batch.
type SubtreeFuture struct {
	g       gather
	results [][]KV
}

// Wait blocks until every shard answered: results[i] holds the stored
// pairs extending the i-th requested prefix, merged across shards in
// lexicographic key order with replicas deduplicated.
func (f *SubtreeFuture) Wait() ([][]KV, error) {
	err := f.g.wait()
	return f.results, err
}

// SubtreeAsync fans each prefix out to every shard whose slot range
// can intersect it and merges the sorted per-shard answers.
func (r *Router) SubtreeAsync(prefixes ...Key) *SubtreeFuture {
	f := &SubtreeFuture{}
	if len(prefixes) == 0 {
		f.results = [][]KV{}
		f.g.settle(nil)
		return f
	}
	if !r.begin(&f.g) {
		return f
	}
	subKeys := make([][]Key, len(r.shards))
	shardRefs := make([][]keyRef, len(prefixes)) // per prefix: one ref per shard asked
	fanout := 0
	for i, p := range prefixes {
		lo, hi := slotRange(p, r.routeBits)
		var seen uint64
		for s := lo; s < hi; s++ {
			sid := r.table[s]
			if len(r.shards) <= 64 {
				if seen&(1<<uint(sid)) != 0 {
					continue
				}
				seen |= 1 << uint(sid)
			} else if n := len(shardRefs[i]); n > 0 && hasShard(shardRefs[i], sid) {
				continue
			}
			shardRefs[i] = append(shardRefs[i], keyRef{shard: int32(sid), pos: int32(len(subKeys[sid]))})
			subKeys[sid] = append(subKeys[sid], p)
			fanout++
		}
	}
	if r.met != nil {
		r.met.note(opSubtree, len(prefixes))
		r.met.fanout.Add(uint64(fanout))
	}
	futs := make([]*serve.SubtreeFuture, len(r.shards))
	for sid, sk := range subKeys {
		if len(sk) > 0 {
			futs[sid] = r.shards[sid].srv.SubtreeAsync(sk...)
		}
	}
	r.launch(&f.g, func() error {
		per := make([][][]KV, len(futs))
		var firstErr error
		for sid, sf := range futs {
			if sf == nil {
				continue
			}
			kvs, err := sf.Wait()
			if err != nil && firstErr == nil {
				firstErr = err
			}
			per[sid] = kvs
		}
		if firstErr != nil {
			return firstErr
		}
		f.results = make([][]KV, len(prefixes))
		parts := make([][]KV, 0, len(r.shards))
		for i := range prefixes {
			parts = parts[:0]
			for _, ref := range shardRefs[i] {
				parts = append(parts, per[ref.shard][ref.pos])
			}
			f.results[i] = mergeKVs(parts)
		}
		return nil
	})
	return f
}

func hasShard(refs []keyRef, sid int) bool {
	for _, ref := range refs {
		if int(ref.shard) == sid {
			return true
		}
	}
	return false
}

// mergeKVs k-way merges sorted per-shard scan results into one sorted
// slice, dropping duplicate keys (replicated short keys appear on
// every covering shard with identical values — the router keeps them
// consistent).
func mergeKVs(parts [][]KV) []KV {
	live := parts[:0]
	total := 0
	for _, p := range parts {
		if len(p) > 0 {
			live = append(live, p)
			total += len(p)
		}
	}
	switch len(live) {
	case 0:
		return []KV{}
	case 1:
		return live[0]
	}
	out := make([]KV, 0, total)
	pos := make([]int, len(live))
	for {
		best := -1
		for i, p := range live {
			if pos[i] >= len(p) {
				continue
			}
			if best < 0 || bitstr.Compare(p[pos[i]].Key, live[best][pos[best]].Key) < 0 {
				best = i
			}
		}
		if best < 0 {
			return out
		}
		kv := live[best][pos[best]]
		out = append(out, kv)
		// Advance every list past this key, swallowing replicas.
		for i, p := range live {
			for pos[i] < len(p) && bitstr.Equal(p[pos[i]].Key, kv.Key) {
				pos[i]++
			}
		}
	}
}

// Get is the blocking form of GetAsync.
func (r *Router) Get(keys []Key) ([]uint64, []bool, error) {
	return r.GetAsync(keys...).Wait()
}

// LCP is the blocking form of LCPAsync.
func (r *Router) LCP(keys []Key) ([]int, error) {
	return r.LCPAsync(keys...).Wait()
}

// Insert is the blocking form of InsertAsync.
func (r *Router) Insert(keys []Key, values []uint64) error {
	return r.InsertAsync(keys, values).Wait()
}

// Delete is the blocking form of DeleteAsync.
func (r *Router) Delete(keys []Key) ([]bool, error) {
	return r.DeleteAsync(keys...).Wait()
}

// Subtree is the blocking single-prefix scan.
func (r *Router) Subtree(prefix Key) ([]KV, error) {
	res, err := r.SubtreeAsync(prefix).Wait()
	if err != nil {
		return nil, err
	}
	return res[0], nil
}

// Subtrees is the blocking form of SubtreeAsync.
func (r *Router) Subtrees(prefixes []Key) ([][]KV, error) {
	return r.SubtreeAsync(prefixes...).Wait()
}

// Len returns the number of stored keys across all shards as of each
// shard's last committed epoch. Replicated short keys are counted once
// per covering shard, so this may exceed the logical key count by the
// replica count — use Subtree(Empty) for exact logical contents.
func (r *Router) Len() int {
	n := 0
	for _, sh := range r.shards {
		n += sh.srv.KeyCount()
	}
	return n
}
