package shard

import (
	"fmt"
	"math/rand"

	"github.com/pimlab/pimtrie/internal/bitstr"
)

// A Partitioner chooses the initial assignment of route slots to
// shards. The router partitions the key space by the first RouteBits
// bits of every key into 2^RouteBits contiguous "slots" (lexicographic
// prefix ranges, bitstr.PrefixIndex order); the partitioner only picks
// which shard initially owns which slot — ownership afterwards is the
// router's live routing table, which hot-range migration rewrites.
type Partitioner interface {
	// Name identifies the scheme in reports and metrics.
	Name() string
	// Assign returns the initial slot -> shard table: a slice of length
	// slots with values in [0, shards).
	Assign(slots, shards int) []int
}

// Contiguous assigns equal contiguous slot runs to consecutive shards —
// classic range partitioning. Ordered scans (Subtree) touch few shards
// and migration moves whole prefix ranges, but contiguous key hotspots
// land on one shard until migration spreads them.
type Contiguous struct{}

// Name implements Partitioner.
func (Contiguous) Name() string { return "contiguous" }

// Assign implements Partitioner: slot s goes to shard s*shards/slots.
func (Contiguous) Assign(slots, shards int) []int {
	table := make([]int, slots)
	for s := range table {
		table[s] = s * shards / slots
	}
	return table
}

// HashedPrefix deals the slots to shards in a seeded pseudo-random
// order: every shard owns the same number of slots (±1) but the slots
// of one shard are scattered across the key space, so contiguous key
// hotspots spread over all shards by construction — the skew-resistant
// default, at the price of full fan-out for wide Subtree scans.
type HashedPrefix struct {
	// Seed fixes the shuffle; equal seeds give equal assignments.
	Seed int64
}

// Name implements Partitioner.
func (h HashedPrefix) Name() string { return "hashed-prefix" }

// Assign implements Partitioner.
func (h HashedPrefix) Assign(slots, shards int) []int {
	table := make([]int, slots)
	perm := rand.New(rand.NewSource(h.Seed ^ 0x5a17)).Perm(slots)
	for i, s := range perm {
		table[s] = i % shards
	}
	return table
}

// slotKey returns the RouteBits-bit key whose PrefixIndex is slot —
// the prefix identifying the slot's key range (every key in the slot
// extends it, except the replicated shorter keys).
func slotKey(slot, routeBits int) bitstr.String {
	return bitstr.FromUint64(uint64(slot), routeBits)
}

// slotRange returns the half-open slot interval that keys extending
// prefix can land in: a single slot when the prefix is at least
// RouteBits long, the whole subrange below the prefix otherwise.
func slotRange(prefix bitstr.String, routeBits int) (lo, hi int) {
	lo = prefix.PrefixIndex(routeBits)
	if prefix.Len() >= routeBits {
		return lo, lo + 1
	}
	return lo, lo + 1<<uint(routeBits-prefix.Len())
}

func validShards(table []int, shards int) error {
	for s, sid := range table {
		if sid < 0 || sid >= shards {
			return fmt.Errorf("shard: partitioner assigned slot %d to shard %d (have %d shards)", s, sid, shards)
		}
	}
	return nil
}
