package shard_test

// Oracle-equality tests: a Router over any shard count, routing
// granularity and partitioner must answer every operation bit-identically
// to one pimtrie.Index holding all the keys — including cross-shard
// Subtrees merges and answers straddling forced mid-script migrations.

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/pimlab/pimtrie"
	"github.com/pimlab/pimtrie/internal/bitstr"
	"github.com/pimlab/pimtrie/internal/shard"
	"github.com/pimlab/pimtrie/internal/workload"
)

func sameKVs(t *testing.T, what string, got, want []shard.KV) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d pairs, want %d", what, len(got), len(want))
	}
	for i := range got {
		if !bitstr.Equal(got[i].Key, want[i].Key) || got[i].Value != want[i].Value {
			t.Fatalf("%s: pair %d = (%q, %d), want (%q, %d)",
				what, i, got[i].Key, got[i].Value, want[i].Key, want[i].Value)
		}
	}
}

// driveOracle runs a mixed scripted workload against router and oracle
// and compares every answer. migrate, when non-nil, is invoked between
// script steps to force slot moves mid-run.
func driveOracle(t *testing.T, r *shard.Router, oracle *pimtrie.Index, seed int64, migrate func(step int)) {
	t.Helper()
	gen := workload.New(seed)
	rng := rand.New(rand.NewSource(seed + 77))

	// Variable-length keys starting at 1 bit: lots of keys shorter than
	// any RouteBits under test, exercising replication.
	keys := dedupeKeys(gen.VarLen(500, 1, 48))
	vals := gen.Values(len(keys))

	chunk := 64
	for i := 0; i < len(keys); i += chunk {
		j := i + chunk
		if j > len(keys) {
			j = len(keys)
		}
		if err := r.Insert(keys[i:j], vals[i:j]); err != nil {
			t.Fatalf("router insert: %v", err)
		}
		oracle.Insert(keys[i:j], vals[i:j])
	}

	for step := 0; step < 12; step++ {
		if migrate != nil {
			migrate(step)
		}

		// Point lookups: stored keys, random probes, prefixes of stored keys.
		queries := append([]shard.Key{}, gen.Zipf(keys, 40, 1.2)...)
		queries = append(queries, gen.VarLen(20, 1, 40)...)
		queries = append(queries, gen.PrefixQueries(keys, 20, 4)...)
		gotV, gotF, err := r.Get(queries)
		if err != nil {
			t.Fatalf("step %d router get: %v", step, err)
		}
		wantV, wantF := oracle.Get(queries)
		for i := range queries {
			if gotF[i] != wantF[i] || (gotF[i] && gotV[i] != wantV[i]) {
				t.Fatalf("step %d get %q = (%d,%v), want (%d,%v)",
					step, queries[i], gotV[i], gotF[i], wantV[i], wantF[i])
			}
		}

		// LCP over the same mixed queries.
		gotL, err := r.LCP(queries)
		if err != nil {
			t.Fatalf("step %d router lcp: %v", step, err)
		}
		for i, want := range oracle.LCP(queries) {
			if gotL[i] != want {
				t.Fatalf("step %d lcp %q = %d, want %d", step, queries[i], gotL[i], want)
			}
		}

		// Subtrees: empty prefix (full ordered dump), short prefixes that
		// straddle shards, and long prefixes owned by one slot.
		prefixes := []shard.Key{bitstr.Empty}
		for _, n := range []int{1, 2, 3, 5, 9, 17} {
			k := keys[rng.Intn(len(keys))]
			if k.Len() < n {
				prefixes = append(prefixes, k)
			} else {
				prefixes = append(prefixes, k.Prefix(n))
			}
		}
		gotS, err := r.Subtrees(prefixes)
		if err != nil {
			t.Fatalf("step %d router subtrees: %v", step, err)
		}
		wantS := oracle.Subtrees(prefixes)
		for i := range prefixes {
			sameKVs(t, fmt.Sprintf("step %d subtree %q", step, prefixes[i]), gotS[i], wantS[i])
		}

		// Mutate: delete a few stored keys and a few misses, reinsert
		// fresh keys (shifted values) to keep the store churning.
		dels := append(gen.Zipf(keys, 6, 1.1), gen.VarLen(3, 1, 40)...)
		dels = dedupeKeys(dels)
		gotD, err := r.Delete(dels)
		if err != nil {
			t.Fatalf("step %d router delete: %v", step, err)
		}
		for i, want := range oracle.Delete(dels) {
			if gotD[i] != want {
				t.Fatalf("step %d delete %q = %v, want %v", step, dels[i], gotD[i], want)
			}
		}
		fresh := dedupeKeys(gen.VarLen(8, 1, 48))
		fvals := gen.Values(len(fresh))
		if err := r.Insert(fresh, fvals); err != nil {
			t.Fatalf("step %d router insert: %v", step, err)
		}
		oracle.Insert(fresh, fvals)
		keys = append(keys, fresh...)
	}

	// Final full-state check.
	gotAll, err := r.Subtree(bitstr.Empty)
	if err != nil {
		t.Fatalf("final subtree: %v", err)
	}
	sameKVs(t, "final full dump", gotAll, oracle.Subtree(bitstr.Empty))
}

// dedupeKeys drops repeated keys, keeping first occurrences, so batch
// answers don't depend on duplicate-application order.
func dedupeKeys(keys []bitstr.String) []bitstr.String {
	seen := make(map[string]bool, len(keys))
	out := keys[:0]
	for _, k := range keys {
		s := k.String()
		if !seen[s] {
			seen[s] = true
			out = append(out, k)
		}
	}
	return out
}

func TestRouterMatchesOracle(t *testing.T) {
	cases := []struct {
		name   string
		shards int
		bits   int
		part   shard.Partitioner
	}{
		{"1shard-contiguous", 1, 4, shard.Contiguous{}},
		{"3shard-hashed", 3, 4, shard.HashedPrefix{Seed: 9}},
		{"4shard-contiguous", 4, 6, shard.Contiguous{}},
		{"8shard-hashed", 8, 5, shard.HashedPrefix{Seed: 2}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			r := shard.New(shard.Config{
				Shards:      tc.shards,
				RouteBits:   tc.bits,
				Partitioner: tc.part,
				Modules:     8,
				Index:       pimtrie.Options{Seed: 11},
			})
			defer r.Close()
			oracle := pimtrie.New(8, pimtrie.Options{Seed: 5})
			driveOracle(t, r, oracle, 321, nil)
		})
	}
}

// TestRouterMatchesOracleAcrossMigrations forces slot migrations
// between script steps: every answer before and after each move must
// still match the oracle, and moved ranges must not resurface on their
// old shard.
func TestRouterMatchesOracleAcrossMigrations(t *testing.T) {
	const shards, bits = 4, 5
	r := shard.New(shard.Config{
		Shards:      shards,
		RouteBits:   bits,
		Partitioner: shard.Contiguous{},
		Modules:     8,
		Index:       pimtrie.Options{Seed: 3},
	})
	defer r.Close()
	oracle := pimtrie.New(8, pimtrie.Options{Seed: 8})
	rng := rand.New(rand.NewSource(99))
	driveOracle(t, r, oracle, 654, func(step int) {
		// Force a couple of random moves per step, occasionally a no-op
		// move to the current owner.
		for i := 0; i < 2; i++ {
			slot := rng.Intn(r.Slots())
			to := rng.Intn(shards)
			if _, err := r.MigrateSlot(slot, to); err != nil {
				t.Fatalf("step %d migrate slot %d -> %d: %v", step, slot, to, err)
			}
			if got := r.Table()[slot]; got != to {
				t.Fatalf("step %d: slot %d owned by %d after migrating to %d", step, slot, got, to)
			}
		}
	})
	if st := r.Stats(); st.Migrations == 0 {
		t.Fatal("no migrations recorded despite forced moves")
	}
}

// TestRouterAsyncPipelining checks that overlapping async batches from
// one caller resolve correctly (futures are independent).
func TestRouterAsyncPipelining(t *testing.T) {
	r := shard.New(shard.Config{Shards: 3, RouteBits: 4, Modules: 8,
		Index: pimtrie.Options{Seed: 4}, Partitioner: shard.HashedPrefix{Seed: 1}})
	defer r.Close()
	gen := workload.New(7)
	keys := dedupeKeys(gen.VarLen(300, 2, 40))
	vals := gen.Values(len(keys))
	if err := r.Insert(keys, vals); err != nil {
		t.Fatal(err)
	}
	futs := make([]*shard.GetFuture, 8)
	for i := range futs {
		futs[i] = r.GetAsync(keys[i*20 : i*20+20]...)
	}
	for i, f := range futs {
		gotV, gotF, err := f.Wait()
		if err != nil {
			t.Fatalf("future %d: %v", i, err)
		}
		for j := 0; j < 20; j++ {
			if !gotF[j] || gotV[j] != vals[i*20+j] {
				t.Fatalf("future %d key %d = (%d,%v), want (%d,true)",
					i, j, gotV[j], gotF[j], vals[i*20+j])
			}
		}
	}
}

// TestRouterClosed: operations after Close fail cleanly.
func TestRouterClosed(t *testing.T) {
	r := shard.New(shard.Config{Shards: 2, RouteBits: 3, Modules: 4, Index: pimtrie.Options{Seed: 1}})
	r.Close()
	r.Close() // idempotent
	if _, _, err := r.Get([]shard.Key{pimtrie.KeyFromBits("0101")}); err == nil {
		t.Fatal("Get after Close succeeded")
	}
	if _, err := r.MigrateSlot(0, 1); err == nil {
		t.Fatal("MigrateSlot after Close succeeded")
	}
}

func TestPartitionersCoverSlots(t *testing.T) {
	for _, p := range []shard.Partitioner{shard.Contiguous{}, shard.HashedPrefix{Seed: 4}} {
		for _, shards := range []int{1, 2, 3, 5, 8} {
			table := p.Assign(64, shards)
			if len(table) != 64 {
				t.Fatalf("%s: %d slots", p.Name(), len(table))
			}
			counts := make([]int, shards)
			for _, sid := range table {
				counts[sid]++
			}
			for sid, n := range counts {
				if n == 0 && shards <= 64 {
					t.Errorf("%s shards=%d: shard %d owns no slots", p.Name(), shards, sid)
				}
				if min, max := 64/shards, (64+shards-1)/shards; n < min || n > max+1 {
					t.Errorf("%s shards=%d: shard %d owns %d slots, want ≈%d",
						p.Name(), shards, sid, n, 64/shards)
				}
			}
		}
	}
}
