package shard

// The router's shard-local snapshot read path. A ReadSnapshot Get never
// touches the migration barrier: it routes by the copy-on-write
// published table (no RWMutex), probes each shard's published snapshot
// on the caller's goroutine (serve.TrySnapshotGet — no epoch, no
// inflight registration, no resolver goroutine), and resolves the
// future pre-settled. Any wrinkle — a key the recent-writes filter
// distrusts, an unpublished snapshot, or a migration completing
// mid-read (detected by re-loading the table pointer after probing) —
// falls the whole call back to the barriered strong path, so answers
// are never wrong, only occasionally slower.
//
// Migration safety. The hazard is a reader routing by a stale table to
// a shard that just gave a slot away: after the migration deletes the
// moved range from the source, the source's next published snapshot
// answers "not found" for moved keys with a trusted filter stamp. The
// copy-on-write flip closes this: migrateSlotLocked publishes the new
// table BEFORE the source-side delete commits, and snapshot publication
// is ordered after the delete it reflects, so a reader that probes a
// post-delete source snapshot must — by the release/acquire chain
// through the publish pointer — observe the flipped table when it
// re-loads tableP, and falls back. A reader that re-loads the original
// pointer probed snapshots that all predate the delete, which the old
// table routes correctly.

import (
	"github.com/pimlab/pimtrie/internal/serve"
)

// Consistency re-exports the serving layer's read-path selector.
type Consistency = serve.Consistency

// The two read paths; see serve.ReadStrong and serve.ReadSnapshot.
const (
	ReadStrong   = serve.ReadStrong
	ReadSnapshot = serve.ReadSnapshot
)

// GetAsyncWith is GetAsync with an explicit consistency mode.
// ReadSnapshot requires every shard's server to run with
// serve.Options.SnapshotReads (Config.Serve); without it every call
// degrades to the strong path.
func (r *Router) GetAsyncWith(c Consistency, keys ...Key) *GetFuture {
	if c == ReadSnapshot && len(keys) > 0 && !r.closedA.Load() {
		if f := r.snapshotGet(keys); f != nil {
			return f
		}
	}
	return r.GetAsync(keys...)
}

// GetWith is the blocking form of GetAsyncWith.
func (r *Router) GetWith(c Consistency, keys []Key) ([]uint64, []bool, error) {
	return r.GetAsyncWith(c, keys...).Wait()
}

// snapshotGet serves one Get batch entirely from the shards' published
// snapshots, or returns nil to route the call through the strong path
// (all-or-nothing: one consistency decision per call). Wait-free end to
// end — no locks, no goroutines, no channels.
func (r *Router) snapshotGet(keys []Key) *GetFuture {
	tp := r.tableP.Load()
	table := *tp
	subKeys := make([][]Key, len(r.shards))
	subIdx := make([][]int, len(r.shards))
	for i, k := range keys {
		lo, _ := slotRange(k, r.routeBits)
		sid := table[lo]
		subKeys[sid] = append(subKeys[sid], k)
		subIdx[sid] = append(subIdx[sid], i)
	}
	vals := make([]uint64, len(keys))
	found := make([]bool, len(keys))
	for sid, sk := range subKeys {
		if len(sk) == 0 {
			continue
		}
		sv := make([]uint64, len(sk))
		sf := make([]bool, len(sk))
		served := make([]bool, len(sk))
		if r.shards[sid].srv.TrySnapshotGet(sk, sv, sf, served) != len(sk) {
			// Some key on this shard needs the epoch path; keep the call
			// whole rather than splitting consistency across shards.
			r.snapFallbacks.Add(uint64(len(keys)))
			if r.met != nil {
				r.met.snapFallbacks.Add(uint64(len(keys)))
			}
			return nil
		}
		for j, i := range subIdx[sid] {
			vals[i], found[i] = sv[j], sf[j]
		}
	}
	if r.tableP.Load() != tp {
		// A migration completed while we probed: some answer may have
		// come from a source shard's post-delete snapshot. Retry strong.
		r.snapFallbacks.Add(uint64(len(keys)))
		if r.met != nil {
			r.met.snapFallbacks.Add(uint64(len(keys)))
		}
		return nil
	}
	r.snapKeys.Add(uint64(len(keys)))
	if r.met != nil {
		r.met.note(opGet, len(keys))
		r.met.snapReads.Add(uint64(len(keys)))
	}
	f := &GetFuture{vals: vals, found: found}
	f.g.settle(nil)
	return f
}
