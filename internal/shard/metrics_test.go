package shard_test

import (
	"fmt"
	"strings"
	"testing"

	"github.com/pimlab/pimtrie"
	"github.com/pimlab/pimtrie/internal/metrics"
	"github.com/pimlab/pimtrie/internal/shard"
	"github.com/pimlab/pimtrie/internal/telemetry"
	"github.com/pimlab/pimtrie/internal/workload"
)

// TestRouterExpositionLints drives a metric-instrumented router —
// including forced migrations — and checks the combined exposition
// (router series plus per-shard serve series carrying shard labels)
// is lint-clean and contains the expected families.
func TestRouterExpositionLints(t *testing.T) {
	reg := metrics.NewRegistry()
	r := shard.New(shard.Config{
		Shards:      3,
		RouteBits:   5,
		Partitioner: shard.HashedPrefix{Seed: 3},
		Modules:     8,
		Index:       pimtrie.Options{Seed: 7},
		Metrics:     reg,
	})
	defer r.Close()

	gen := workload.New(41)
	keys := dedupeKeys(gen.VarLen(300, 1, 32))
	if err := r.Insert(keys, gen.Values(len(keys))); err != nil {
		t.Fatal(err)
	}
	if _, _, err := r.Get(keys[:100]); err != nil {
		t.Fatal(err)
	}
	if _, err := r.LCP(keys[:20]); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Subtrees(keys[:5]); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Delete(keys[250:]); err != nil {
		t.Fatal(err)
	}
	if _, err := r.MigrateSlot(0, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Rebalance(); err != nil {
		t.Fatal(err)
	}

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, p := range telemetry.LintExposition(text) {
		t.Errorf("lint: %s", p)
	}
	for _, want := range []string{
		`pimtrie_router_requests_total{op="get"}`,
		`pimtrie_router_requests_total{op="insert"}`,
		`pimtrie_router_keys_total{op="subtree"}`,
		"pimtrie_router_migrations_total",
		"pimtrie_router_migrated_keys_total",
		"pimtrie_router_migration_seconds_bucket",
		"pimtrie_router_load_imbalance",
		"pimtrie_router_replicated_keys_total",
		"pimtrie_router_subtree_subrequests_total",
		`pimtrie_shard_slots_owned{shard="2"}`,
		`pimtrie_shard_load_share{shard="0"}`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	// The per-shard serve instruments are label-split, never colliding:
	// exactly one get-requests series per shard.
	for sid := 0; sid < 3; sid++ {
		series := fmt.Sprintf(`pimtrie_serve_requests_total{op="get",shard="%d"}`, sid)
		if n := strings.Count(text, series); n != 1 {
			t.Errorf("%s appears %d times, want 1", series, n)
		}
	}
}
