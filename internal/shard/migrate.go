package shard

import (
	"time"

	"github.com/pimlab/pimtrie/internal/bitstr"
	"github.com/pimlab/pimtrie/internal/metrics"
	"github.com/pimlab/pimtrie/internal/serve"
)

// migrationLoop is the background load watcher: one Rebalance per
// Interval until Close.
func (r *Router) migrationLoop() {
	defer close(r.loopDone)
	t := time.NewTicker(r.cfg.Migration.Interval)
	defer t.Stop()
	for {
		select {
		case <-r.stop:
			return
		case <-t.C:
			r.Rebalance()
		}
	}
}

// Rebalance runs one migration-policy cycle by hand: sample per-shard
// per-slot executed-key counters, diff them against the previous
// sample, and when the per-shard imbalance (max/mean) crosses the
// threshold migrate the hottest slots from the hottest shards to the
// coolest until the sample would be balanced or MaxMoves is spent. The
// first call only primes the sample window. Returns the number of
// slots moved. The background loop calls this on its interval; tests
// and benchmarks call it directly for deterministic timing.
func (r *Router) Rebalance() (moves int, err error) {
	r.migMu.Lock()
	defer r.migMu.Unlock()

	// Sample cumulative per-slot loads, recycling the oldest buffers.
	bufs := r.loadBuf
	r.loadBuf = nil
	cur := make([][]uint64, len(r.shards))
	for i, sh := range r.shards {
		var dst []uint64
		if bufs != nil {
			dst = bufs[i]
		}
		cur[i], _ = sh.srv.PrefixLoad(dst)
	}
	prev := r.prevLoad
	r.prevLoad = cur
	if prev == nil {
		return 0, nil
	}
	r.loadBuf = prev
	if r.skipNext {
		// This window contains the previous cycle's own migration
		// traffic (see the skipNext field); use it only to advance the
		// sample base.
		r.skipNext = false
		return 0, nil
	}

	// Window deltas: slot-granular for picking what to move,
	// shard-granular for deciding whether to move at all.
	slotLoad := make([]int64, r.slots)
	shardLoad := make([]int64, len(r.shards))
	var total int64
	for i := range cur {
		for s := 0; s < r.slots; s++ {
			d := int64(cur[i][s] - prev[i][s])
			slotLoad[s] += d
			shardLoad[i] += d
			total += d
		}
	}
	maxMean, _ := metrics.Imbalance(shardLoad)
	r.lastImbal = maxMean
	if r.met != nil {
		r.met.imbalance.Set(maxMean)
		for i, l := range shardLoad {
			share := 0.0
			if total > 0 {
				share = float64(l) / float64(total)
			}
			r.met.loadShare[i].Set(share)
		}
	}
	cfg := r.cfg.Migration
	if total < int64(cfg.MinKeys) || maxMean < cfg.Threshold {
		return 0, nil
	}

	// Plan greedily and execute under the exclusive barrier: repeatedly
	// move the hottest slot of the hottest shard to the coolest shard,
	// as long as the move narrows the hot/cool gap. Taking the lock
	// parks new submissions; draining inflight lets already-submitted
	// operations resolve (on the shard servers' schedule) before any
	// slot moves.
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return 0, nil
	}
	r.inflight.Wait()
	for moves < cfg.MaxMoves {
		hot, cool := argMax(shardLoad), argMin(shardLoad)
		if hot == cool || shardLoad[hot] <= shardLoad[cool] {
			break
		}
		best, bestLoad := -1, int64(0)
		for s, sid := range r.table {
			if sid != hot {
				continue
			}
			d := slotLoad[s]
			if d <= bestLoad || shardLoad[cool]+d >= shardLoad[hot] {
				continue // zero-load slot, or the move would just relocate the hotspot
			}
			best, bestLoad = s, d
		}
		if best < 0 {
			break
		}
		if _, err = r.migrateSlotLocked(best, cool); err != nil {
			return moves, err
		}
		shardLoad[hot] -= bestLoad
		shardLoad[cool] += bestLoad
		moves++
	}
	if moves > 0 {
		r.skipNext = true
	}
	return moves, nil
}

func argMax(v []int64) int {
	best := 0
	for i, x := range v {
		if x > v[best] {
			best = i
		}
	}
	return best
}

func argMin(v []int64) int {
	best := 0
	for i, x := range v {
		if x < v[best] {
			best = i
		}
	}
	return best
}

// MigrateSlot moves one route slot to the given shard under the
// migration barrier and returns the number of pairs replayed. It is
// the manual form of what Rebalance does per move; tests use it to
// force migrations deterministically. Migrating a slot to its current
// owner is a no-op.
func (r *Router) MigrateSlot(slot, to int) (moved int, err error) {
	if slot < 0 || slot >= r.slots {
		panic("shard: MigrateSlot slot out of range")
	}
	if to < 0 || to >= len(r.shards) {
		panic("shard: MigrateSlot shard out of range")
	}
	// A manual move pollutes the policy's next load window exactly like
	// one of its own (see skipNext); flag it before taking the barrier
	// to keep the migMu -> mu lock order of Rebalance.
	r.migMu.Lock()
	r.skipNext = true
	r.migMu.Unlock()
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return 0, serve.ErrClosed
	}
	r.inflight.Wait()
	return r.migrateSlotLocked(slot, to)
}

// migrateSlotLocked executes the migration protocol for one slot while
// holding the exclusive barrier (no operation in flight anywhere):
//
//  1. export — Subtree-scan the slot's prefix range on the old owner;
//  2. replicas — fetch stored short prefixes of the range the target
//     does not already replicate;
//  3. replay — one Insert batch on the new owner;
//  4. flip — rewrite the routing table entry;
//  5. cleanup — delete the moved range from the old owner, plus its
//     replicas of short prefixes it no longer covers.
//
// Readers either run entirely before the flip (old owner still holds
// everything) or entirely after (new owner holds everything, the old
// owner's stale copy is unreachable through the table and deleted
// before the barrier drops), so no request observes a half-moved
// range.
func (r *Router) migrateSlotLocked(slot, to int) (int, error) {
	from := r.table[slot]
	if from == to {
		return 0, nil
	}
	start := time.Now()
	src, dst := r.shards[from], r.shards[to]
	prefix := slotKey(slot, r.routeBits)

	kvs, err := src.srv.Subtree(prefix)
	if err != nil {
		return 0, err
	}
	keys := make([]Key, 0, len(kvs)+r.routeBits)
	vals := make([]uint64, 0, len(kvs)+r.routeBits)
	for _, kv := range kvs {
		keys = append(keys, kv.Key)
		vals = append(vals, kv.Value)
	}
	var shorts []Key
	for l := 0; l < r.routeBits; l++ {
		if p := prefix.Prefix(l); !r.ownsExtensionLocked(to, p) {
			shorts = append(shorts, p)
		}
	}
	if len(shorts) > 0 {
		vs, found, err := src.srv.GetAsync(shorts...).Wait()
		if err != nil {
			return 0, err
		}
		for i, p := range shorts {
			if found[i] {
				keys = append(keys, p)
				vals = append(vals, vs[i])
			}
		}
	}
	if len(keys) > 0 {
		if err := dst.srv.InsertAsync(keys, vals).Wait(); err != nil {
			return 0, err
		}
	}

	// Copy-on-write flip: never mutate a published table. The pointer
	// store is the linearization point for lock-free snapshot readers —
	// it happens BEFORE the source-side delete below, so any reader that
	// could observe the post-delete source snapshot also observes the
	// new pointer on its re-check and falls back (see Router.snapshotGet).
	next := append([]int(nil), r.table...)
	next[slot] = to
	r.table = next
	r.tableP.Store(&next)

	del := make([]Key, 0, len(kvs)+r.routeBits)
	for _, kv := range kvs {
		del = append(del, kv.Key)
	}
	for l := 0; l < r.routeBits; l++ {
		if p := prefix.Prefix(l); !r.ownsExtensionLocked(from, p) {
			del = append(del, p)
		}
	}
	if len(del) > 0 {
		if _, err := src.srv.DeleteAsync(del...).Wait(); err != nil {
			return 0, err
		}
	}

	r.migration.Add(1)
	r.movedKeys.Add(uint64(len(kvs)))
	if r.met != nil {
		r.met.migrations.Inc()
		r.met.migratedKeys.Add(uint64(len(kvs)))
		r.met.migrationDur.ObserveDuration(int64(time.Since(start)))
		r.met.updateSlots(r.table, len(r.shards))
	}
	return len(kvs), nil
}

// ownsExtensionLocked reports whether shard sid owns any slot whose
// range extends prefix p under the live table — i.e. whether sid is a
// covering shard that replicates p when p is stored.
func (r *Router) ownsExtensionLocked(sid int, p bitstr.String) bool {
	lo, hi := slotRange(p, r.routeBits)
	for s := lo; s < hi; s++ {
		if r.table[s] == sid {
			return true
		}
	}
	return false
}
