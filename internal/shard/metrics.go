package shard

import (
	"strconv"

	"github.com/pimlab/pimtrie/internal/metrics"
)

// Router op indexes for the per-op instrument arrays.
const (
	opGet = iota
	opLCP
	opSubtree
	opInsert
	opDelete
	numOps
)

var opNames = [numOps]string{"get", "lcp", "subtree", "insert", "delete"}

// routerMetrics holds the router-level instruments. Per-shard serving
// instruments are the serve package's own series carrying a shard="i"
// label (serve.Options.MetricLabels); only cross-shard concerns live
// here.
type routerMetrics struct {
	requests   [numOps]*metrics.Counter
	keys       [numOps]*metrics.Counter
	fanout     *metrics.Counter
	replicated *metrics.Counter

	snapReads     *metrics.Counter
	snapFallbacks *metrics.Counter

	migrations   *metrics.Counter
	migratedKeys *metrics.Counter
	migrationDur *metrics.Histogram
	imbalance    *metrics.Gauge
	loadShare    []*metrics.Gauge
	slotsOwned   []*metrics.Gauge
}

func newRouterMetrics(reg *metrics.Registry, shards int) *routerMetrics {
	m := &routerMetrics{
		fanout: reg.Counter("pimtrie_router_subtree_subrequests_total",
			"Per-shard subtree scans issued by scatter (fan-out)."),
		replicated: reg.Counter("pimtrie_router_replicated_keys_total",
			"Extra short-key copies written for covering-shard replication."),
		snapReads: reg.Counter("pimtrie_router_snapshot_reads_total",
			"Keys served shard-locally from published snapshots, bypassing the migration barrier."),
		snapFallbacks: reg.Counter("pimtrie_router_snapshot_fallbacks_total",
			"ReadSnapshot keys rerouted through the strong path (filter distrust, unpublished snapshot, or mid-read migration)."),
		migrations: reg.Counter("pimtrie_router_migrations_total",
			"Completed hot-range slot migrations."),
		migratedKeys: reg.Counter("pimtrie_router_migrated_keys_total",
			"Key/value pairs replayed by slot migrations."),
		migrationDur: reg.Histogram("pimtrie_router_migration_seconds",
			"Wall time per slot migration, barrier to barrier."),
		imbalance: reg.Gauge("pimtrie_router_load_imbalance",
			"Max/mean per-shard executed-key load of the last migration-policy sample (1 = even)."),
	}
	for op := 0; op < numOps; op++ {
		m.requests[op] = reg.Counter("pimtrie_router_requests_total",
			"Router batch requests by operation.", metrics.L("op", opNames[op]))
		m.keys[op] = reg.Counter("pimtrie_router_keys_total",
			"Keys submitted to the router by operation.", metrics.L("op", opNames[op]))
	}
	for i := 0; i < shards; i++ {
		lbl := metrics.L("shard", strconv.Itoa(i))
		m.loadShare = append(m.loadShare, reg.Gauge("pimtrie_shard_load_share",
			"Fraction of executed keys landing on this shard in the last migration-policy sample.", lbl))
		m.slotsOwned = append(m.slotsOwned, reg.Gauge("pimtrie_shard_slots_owned",
			"Route slots currently owned by this shard.", lbl))
	}
	return m
}

func (m *routerMetrics) note(op, keys int) {
	m.requests[op].Inc()
	m.keys[op].Add(uint64(keys))
}

// updateSlots refreshes the per-shard slot-ownership gauges from the
// routing table (caller holds at least the read barrier).
func (m *routerMetrics) updateSlots(table []int, shards int) {
	owned := make([]int, shards)
	for _, sid := range table {
		owned[sid]++
	}
	for i, n := range owned {
		m.slotsOwned[i].Set(float64(n))
	}
}
