package shard_test

// Snapshot reads under forced migration. With no logical writes after
// the preload, every published snapshot holds exactly the preloaded
// pairs — so every ReadSnapshot answer (served or fallen back) must be
// exact, even while MigrateSlot keeps flipping the routing table and
// rewriting shard contents underneath the lock-free readers. Run with
// -race: the point of this test is the reader/migration interleaving.

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"github.com/pimlab/pimtrie"
	"github.com/pimlab/pimtrie/internal/serve"
	"github.com/pimlab/pimtrie/internal/shard"
	"github.com/pimlab/pimtrie/internal/workload"
)

func TestSnapshotReadsUnderMigration(t *testing.T) {
	const shards, bits, readers = 4, 5, 8
	r := shard.New(shard.Config{
		Shards:      shards,
		RouteBits:   bits,
		Partitioner: shard.HashedPrefix{Seed: 9},
		Modules:     8,
		Index:       pimtrie.Options{Seed: 21, Recoverable: true},
		Serve:       serve.Options{SnapshotReads: true},
	})
	defer r.Close()

	gen := workload.New(404)
	keys := dedupeKeys(gen.VarLen(600, 1, 32))
	vals := gen.Values(len(keys))
	if err := r.Insert(keys, vals); err != nil {
		t.Fatal(err)
	}
	want := map[string]uint64{}
	for i, k := range keys {
		want[k.String()] = vals[i]
	}
	// Probe keys that may or may not be stored; the oracle map decides.
	probes := dedupeKeys(gen.VarLen(100, 1, 32))

	// Publication is asynchronous: spin until at least one batch is
	// served wait-free, so the soak below exercises the real fast path.
	deadline := time.Now().Add(5 * time.Second)
	for r.Stats().SnapshotReads == 0 {
		if _, _, err := r.GetWith(shard.ReadSnapshot, keys[:8]); err != nil {
			t.Fatal(err)
		}
		if time.Now().After(deadline) {
			t.Fatal("no snapshot-served reads before deadline")
		}
		time.Sleep(time.Millisecond)
	}

	stopC := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < readers; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(1000 + g)))
			for {
				select {
				case <-stopC:
					return
				default:
				}
				batch := make([]shard.Key, 0, 16)
				for len(batch) < cap(batch) {
					if rng.Intn(8) == 0 {
						batch = append(batch, probes[rng.Intn(len(probes))])
					} else {
						batch = append(batch, keys[rng.Intn(len(keys))])
					}
				}
				gotV, gotF, err := r.GetWith(shard.ReadSnapshot, batch)
				if err != nil {
					t.Errorf("reader %d: %v", g, err)
					return
				}
				for x, k := range batch {
					v, ok := want[k.String()]
					if gotF[x] != ok || (ok && gotV[x] != v) {
						t.Errorf("reader %d: %q = (%d,%v), want (%d,%v)",
							g, k, gotV[x], gotF[x], v, ok)
						return
					}
				}
			}
		}()
	}

	rng := rand.New(rand.NewSource(77))
	for i := 0; i < 40; i++ {
		if _, err := r.MigrateSlot(rng.Intn(r.Slots()), rng.Intn(shards)); err != nil {
			t.Errorf("migrate %d: %v", i, err)
			break
		}
	}
	close(stopC)
	wg.Wait()

	st := r.Stats()
	if st.SnapshotReads == 0 {
		t.Error("no keys served from shard snapshots")
	}
	if st.Migrations == 0 {
		t.Error("no migrations recorded")
	}
	t.Logf("snapshot reads=%d fallbacks=%d migrations=%d moved=%d",
		st.SnapshotReads, st.SnapshotFallbacks, st.Migrations, st.MovedKeys)
}
