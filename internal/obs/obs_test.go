package obs

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"sync"
	"testing"

	"github.com/pimlab/pimtrie/internal/bitstr"
	"github.com/pimlab/pimtrie/internal/core"
	"github.com/pimlab/pimtrie/internal/pim"
)

// doRound executes one trivial round on the given module so tests can
// place known costs inside known spans.
func doRound(sys *pim.System, module int, work int) {
	sys.Round([]pim.Task{{
		Module:    module,
		SendWords: 2,
		Run: func(m *pim.Module) pim.Resp {
			m.Work(work)
			return pim.Resp{RecvWords: 1}
		},
	}})
}

func TestNestedSpanInnermostAttribution(t *testing.T) {
	sys := pim.NewSystem(4, pim.WithSeed(7))
	tr := Attach(sys, "nested")

	doRound(sys, 0, 1) // unattributed

	endOuter := sys.Phase("outer")
	doRound(sys, 1, 2) // outer
	endInner := sys.Phase("inner")
	doRound(sys, 2, 3) // outer/inner
	doRound(sys, 2, 3) // outer/inner
	endInner()
	doRound(sys, 1, 2) // outer again
	sys.CPUWork(5)     // outer
	endOuter()

	sys.CPUWork(9) // unattributed

	tr.Detach()
	d := tr.Data()
	if err := d.Check(); err != nil {
		t.Fatal(err)
	}

	if len(d.Spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(d.Spans))
	}
	outer, inner := d.Spans[0], d.Spans[1]
	if outer.Path != "outer" || inner.Path != "outer/inner" {
		t.Fatalf("paths = %q, %q", outer.Path, inner.Path)
	}
	if inner.Parent != outer.ID {
		t.Fatalf("inner.Parent = %d, want %d", inner.Parent, outer.ID)
	}
	// Exclusive attribution: outer gets only the two rounds executed
	// while inner was closed; inner gets the two in the middle.
	if outer.M.Rounds != 2 || inner.M.Rounds != 2 {
		t.Fatalf("rounds: outer %d inner %d, want 2 and 2", outer.M.Rounds, inner.M.Rounds)
	}
	if outer.M.PIMWork != 4 || inner.M.PIMWork != 6 {
		t.Fatalf("work: outer %d inner %d, want 4 and 6", outer.M.PIMWork, inner.M.PIMWork)
	}
	if outer.M.CPUWork != 5 {
		t.Fatalf("outer CPUWork = %d, want 5", outer.M.CPUWork)
	}
	if d.Unattributed.Rounds != 1 || d.Unattributed.CPUWork != 9 {
		t.Fatalf("unattributed = %+v, want 1 round and 9 cpu work", d.Unattributed)
	}
	// Per-module vectors land on the right spans.
	if inner.M.PerModuleIO[2] == 0 || inner.M.PerModuleWrk[2] != 6 {
		t.Fatalf("inner per-module: io[2]=%d wrk[2]=%d", inner.M.PerModuleIO[2], inner.M.PerModuleWrk[2])
	}
	// Round log attribution strings.
	if d.Rounds[0].Span != -1 || d.Rounds[1].Path != "outer" || d.Rounds[2].Path != "outer/inner" {
		t.Fatalf("round attribution wrong: %+v", d.Rounds[:3])
	}
}

// TestSpanSumsMatchSystemTotals drives the real pipeline — build, LCP,
// insert, delete, subtree — and verifies the conservation law against
// the system's own metrics, plus the presence of the paper's match
// phases under lcp/.
func TestSpanSumsMatchSystemTotals(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	sys := pim.NewSystem(16, pim.WithSeed(3))
	tr := Attach(sys, "pipeline")
	pt := core.New(sys, core.Config{})

	keys := make([]bitstr.String, 300)
	vals := make([]uint64, len(keys))
	for i := range keys {
		var b strings.Builder
		for j := 0; j < 8+r.Intn(40); j++ {
			b.WriteByte('0' + byte(r.Intn(2)))
		}
		keys[i] = bitstr.MustParse(b.String())
		vals[i] = uint64(i + 1)
	}
	pt.Build(keys, vals)
	pt.LCP(keys[:64])
	pt.Insert(keys[100:140], vals[100:140])
	pt.Delete(keys[:20])
	pt.SubtreeQueryBatch(keys[:4])

	tr.Detach()
	d := tr.Data()
	if err := d.Check(); err != nil {
		t.Fatal(err)
	}
	if !d.Detached {
		t.Fatal("trace not marked detached")
	}
	if d.Total.Rounds == 0 || d.Total.IOTime == 0 {
		t.Fatalf("trace recorded no cost: %+v", d.Total)
	}

	paths := d.DistinctPaths()
	want := []string{"init", "build", "lcp", "insert", "delete", "subtree"}
	for _, w := range want {
		found := false
		for _, p := range paths {
			if p == w || strings.HasPrefix(p, w+"/") {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no span under %q; paths = %v", w, paths)
		}
	}
	// The acceptance criterion: at least 3 distinct phase labels on the
	// LCP path (prepare, master-match, region-match, block-match...).
	lcpSub := 0
	for _, p := range paths {
		if strings.HasPrefix(p, "lcp/") {
			lcpSub++
		}
	}
	if lcpSub < 3 {
		t.Fatalf("only %d distinct lcp/ sub-phases, want >= 3; paths = %v", lcpSub, paths)
	}

	// PhaseStats must also conserve cost.
	var sum pim.Metrics
	for _, st := range d.PhaseStats() {
		sum = sum.Add(st.M)
	}
	if err := equalMetrics(sum, d.Total, "phase stats", "total"); err != nil {
		t.Fatal(err)
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	sys := pim.NewSystem(4, pim.WithSeed(1))
	tr := Attach(sys, "rt")
	end := sys.Phase("alpha")
	doRound(sys, 0, 1)
	inner := sys.Phase("beta")
	doRound(sys, 3, 2)
	inner()
	end()
	doRound(sys, 1, 1)
	sys.CPUWork(4)
	tr.Detach()
	d := tr.Data()

	var buf bytes.Buffer
	if err := d.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	// Two sections in one stream must both come back.
	if err := d.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("got %d traces, want 2", len(got))
	}
	for _, g := range got {
		if err := g.Check(); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(normalize(g), normalize(d)) {
			t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", g, d)
		}
	}
}

// normalize maps empty slices to nil so DeepEqual compares JSON-decoded
// traces (which leave absent vectors nil) against in-memory ones.
func normalize(tr *Trace) *Trace {
	c := *tr
	c.Spans = append([]Span(nil), tr.Spans...)
	c.Rounds = append([]Round(nil), tr.Rounds...)
	for i := range c.Spans {
		c.Spans[i].M = nilEmpty(c.Spans[i].M)
	}
	for i := range c.Rounds {
		r := &c.Rounds[i]
		if len(r.ModID) == 0 {
			r.ModID, r.ModIO, r.ModWork = nil, nil, nil
		}
	}
	c.Total = nilEmpty(c.Total)
	c.Unattributed = nilEmpty(c.Unattributed)
	c.System = nilEmpty(c.System)
	return &c
}

func nilEmpty(m pim.Metrics) pim.Metrics {
	if len(m.PerModuleIO) == 0 {
		m.PerModuleIO = nil
	}
	if len(m.PerModuleWrk) == 0 {
		m.PerModuleWrk = nil
	}
	return m
}

// TestConcurrentSnapshots takes Data() and WriteJSONL snapshots while
// rounds are executing; run under -race this verifies the tracer's
// locking discipline.
func TestConcurrentSnapshots(t *testing.T) {
	sys := pim.NewSystem(8, pim.WithSeed(5))
	tr := Attach(sys, "conc")

	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			d := tr.Data()
			var buf bytes.Buffer
			if err := d.WriteJSONL(&buf); err != nil {
				t.Error(err)
				return
			}
			d.PhaseStats()
			d.HotModules(3)
		}
	}()

	for i := 0; i < 200; i++ {
		end := sys.Phase("op")
		doRound(sys, i%8, 1)
		sys.CPUWork(1)
		end()
	}
	close(done)
	wg.Wait()

	tr.Detach()
	d := tr.Data()
	if err := d.Check(); err != nil {
		t.Fatal(err)
	}
	if d.Total.Rounds != 200 {
		t.Fatalf("Total.Rounds = %d, want 200", d.Total.Rounds)
	}
}

// TestHotModules checks ranking on a deliberately skewed load.
func TestHotModules(t *testing.T) {
	sys := pim.NewSystem(4, pim.WithSeed(2))
	tr := Attach(sys, "hot")
	for i := 0; i < 6; i++ {
		doRound(sys, 3, 2) // module 3 is hottest
	}
	doRound(sys, 1, 1)
	tr.Detach()
	d := tr.Data()
	hot := d.HotModules(2)
	if len(hot) != 2 || hot[0].Module != 3 || hot[1].Module != 1 {
		t.Fatalf("HotModules = %+v, want modules 3 then 1", hot)
	}
}
