// Aggregations over a Trace: the computations behind cmd/pimtrie-trace
// (and directly usable by tests and future experiments).
package obs

import (
	"sort"

	"github.com/pimlab/pimtrie/internal/pim"
)

// PhaseStat aggregates every span sharing one path.
type PhaseStat struct {
	Path  string
	Spans int // how many span instances folded in
	M     pim.Metrics
}

// UnattributedPath labels the bucket of rounds recorded with no open
// span in phase aggregations.
const UnattributedPath = "(unattributed)"

// PhaseStats folds spans by path, appends the unattributed bucket when
// non-empty, and sorts by IO time (then rounds, then path) descending.
func (tr *Trace) PhaseStats() []PhaseStat {
	byPath := map[string]*PhaseStat{}
	order := []string{}
	for i := range tr.Spans {
		sp := &tr.Spans[i]
		st, ok := byPath[sp.Path]
		if !ok {
			st = &PhaseStat{Path: sp.Path, M: zeroMetrics(tr.P)}
			byPath[sp.Path] = st
			order = append(order, sp.Path)
		}
		st.Spans++
		st.M = st.M.Add(sp.M)
	}
	out := make([]PhaseStat, 0, len(order)+1)
	for _, p := range order {
		out = append(out, *byPath[p])
	}
	if tr.Unattributed.Rounds > 0 || tr.Unattributed.CPUWork > 0 {
		out = append(out, PhaseStat{Path: UnattributedPath, Spans: 0, M: copyMetrics(tr.Unattributed)})
	}
	sort.SliceStable(out, func(a, b int) bool {
		if out[a].M.IOTime != out[b].M.IOTime {
			return out[a].M.IOTime > out[b].M.IOTime
		}
		if out[a].M.Rounds != out[b].M.Rounds {
			return out[a].M.Rounds > out[b].M.Rounds
		}
		return out[a].Path < out[b].Path
	})
	return out
}

// ModuleLoad is one module's share of the trace's total IO and work.
type ModuleLoad struct {
	Module   int
	IO, Work int64
}

// HotModules returns the k modules with the highest total IO, hottest
// first (ties broken by work, then module ID).
func (tr *Trace) HotModules(k int) []ModuleLoad {
	loads := make([]ModuleLoad, len(tr.Total.PerModuleIO))
	for i := range loads {
		loads[i] = ModuleLoad{Module: i, IO: tr.Total.PerModuleIO[i]}
		if i < len(tr.Total.PerModuleWrk) {
			loads[i].Work = tr.Total.PerModuleWrk[i]
		}
	}
	sort.SliceStable(loads, func(a, b int) bool {
		if loads[a].IO != loads[b].IO {
			return loads[a].IO > loads[b].IO
		}
		if loads[a].Work != loads[b].Work {
			return loads[a].Work > loads[b].Work
		}
		return loads[a].Module < loads[b].Module
	})
	if k > 0 && k < len(loads) {
		loads = loads[:k]
	}
	return loads
}

// DistinctPaths returns the set of span paths present, sorted.
func (tr *Trace) DistinctPaths() []string {
	seen := map[string]bool{}
	var out []string
	for i := range tr.Spans {
		if p := tr.Spans[i].Path; !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	sort.Strings(out)
	return out
}
