// JSONL export/import of traces. A file holds one or more traces, each
// a contiguous run of lines:
//
//	{"type":"trace","version":1,"label":"E2/sys00","p":32}
//	{"type":"span","id":0,"parent":-1,"name":"lcp","path":"lcp",...}
//	{"type":"round","i":0,"span":2,"path":"lcp/master-match",...}
//	{"type":"end","total":{...},"unattributed":{...},"system":{...}}
//
// Lines are self-describing so the stream can be grepped and processed
// with standard tools; cmd/pimtrie-trace is the reference consumer.
package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"github.com/pimlab/pimtrie/internal/pim"
)

const traceVersion = 1

// metricsJSON is the wire form of pim.Metrics scalars; the per-module
// vectors travel in separate fields of the owning line.
type metricsJSON struct {
	Rounds  int64 `json:"rounds"`
	IOTime  int64 `json:"io_time"`
	IOWords int64 `json:"io_words"`
	PIMTime int64 `json:"pim_time"`
	PIMWork int64 `json:"pim_work"`
	CPUWork int64 `json:"cpu_work"`
}

func toMetricsJSON(m pim.Metrics) metricsJSON {
	return metricsJSON{
		Rounds: m.Rounds, IOTime: m.IOTime, IOWords: m.IOWords,
		PIMTime: m.PIMTime, PIMWork: m.PIMWork, CPUWork: m.CPUWork,
	}
}

func (j metricsJSON) metrics(io, wrk []int64) pim.Metrics {
	return pim.Metrics{
		Rounds: j.Rounds, IOTime: j.IOTime, IOWords: j.IOWords,
		PIMTime: j.PIMTime, PIMWork: j.PIMWork, CPUWork: j.CPUWork,
		PerModuleIO: io, PerModuleWrk: wrk,
	}
}

// traceLine is the union of every line shape; Type discriminates.
type traceLine struct {
	Type    string `json:"type"`
	Version int    `json:"version,omitempty"`
	Label   string `json:"label,omitempty"`
	P       int    `json:"p,omitempty"`

	// span fields
	ID      int          `json:"id,omitempty"`
	Parent  *int         `json:"parent,omitempty"`
	Name    string       `json:"name,omitempty"`
	Path    string       `json:"path,omitempty"`
	Start   int          `json:"start,omitempty"`
	End     *int         `json:"end,omitempty"`
	Metrics *metricsJSON `json:"metrics,omitempty"`
	ModIO   []int64      `json:"module_io,omitempty"`
	ModWork []int64      `json:"module_work,omitempty"`

	// round fields
	I       int     `json:"i,omitempty"`
	Span    *int    `json:"span,omitempty"`
	Tasks   int     `json:"tasks,omitempty"`
	Modules int     `json:"modules,omitempty"`
	Send    int64   `json:"send,omitempty"`
	Recv    int64   `json:"recv,omitempty"`
	MaxIO   int64   `json:"max_io,omitempty"`
	MaxWork int64   `json:"max_work,omitempty"`
	Work    int64   `json:"work,omitempty"`
	ModID   []int   `json:"mod,omitempty"`
	RModIO  []int64 `json:"mod_io,omitempty"`
	RModWrk []int64 `json:"mod_work,omitempty"`

	// end fields
	Total        *metricsJSON `json:"total,omitempty"`
	Unattributed *metricsJSON `json:"unattributed,omitempty"`
	System       *metricsJSON `json:"system,omitempty"`
	TotalModIO   []int64      `json:"total_module_io,omitempty"`
	TotalModWork []int64      `json:"total_module_work,omitempty"`
	UnattModIO   []int64      `json:"unattributed_module_io,omitempty"`
	UnattModWork []int64      `json:"unattributed_module_work,omitempty"`
	SysModIO     []int64      `json:"system_module_io,omitempty"`
	SysModWork   []int64      `json:"system_module_work,omitempty"`
	Detached     bool         `json:"detached,omitempty"`
}

// WriteJSONL writes the trace as one JSONL section.
func (tr *Trace) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	emit := func(l traceLine) error { return enc.Encode(l) }
	if err := emit(traceLine{Type: "trace", Version: traceVersion, Label: tr.Label, P: tr.P}); err != nil {
		return err
	}
	for i := range tr.Spans {
		sp := &tr.Spans[i]
		m := toMetricsJSON(sp.M)
		parent, end := sp.Parent, sp.End
		if err := emit(traceLine{
			Type: "span", ID: sp.ID, Parent: &parent, Name: sp.Name, Path: sp.Path,
			Start: sp.Start, End: &end, Metrics: &m,
			ModIO: sp.M.PerModuleIO, ModWork: sp.M.PerModuleWrk,
		}); err != nil {
			return err
		}
	}
	for i := range tr.Rounds {
		r := &tr.Rounds[i]
		span := r.Span
		if err := emit(traceLine{
			Type: "round", I: r.Index, Span: &span, Path: r.Path,
			Tasks: r.Tasks, Modules: r.Modules, Send: r.SendWords, Recv: r.RecvWords,
			MaxIO: r.MaxIO, MaxWork: r.MaxWork, Work: r.Work,
			ModID: r.ModID, RModIO: r.ModIO, RModWrk: r.ModWork,
		}); err != nil {
			return err
		}
	}
	total, unatt, system := toMetricsJSON(tr.Total), toMetricsJSON(tr.Unattributed), toMetricsJSON(tr.System)
	if err := emit(traceLine{
		Type: "end", Total: &total, Unattributed: &unatt, System: &system,
		TotalModIO: tr.Total.PerModuleIO, TotalModWork: tr.Total.PerModuleWrk,
		UnattModIO: tr.Unattributed.PerModuleIO, UnattModWork: tr.Unattributed.PerModuleWrk,
		SysModIO: tr.System.PerModuleIO, SysModWork: tr.System.PerModuleWrk,
		Detached: tr.Detached,
	}); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadJSONL parses every trace section in the stream.
func ReadJSONL(r io.Reader) ([]*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<24)
	var out []*Trace
	var cur *Trace
	lineNo := 0
	for sc.Scan() {
		lineNo++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var l traceLine
		if err := json.Unmarshal(raw, &l); err != nil {
			return nil, fmt.Errorf("obs: line %d: %w", lineNo, err)
		}
		switch l.Type {
		case "trace":
			if l.Version != traceVersion {
				return nil, fmt.Errorf("obs: line %d: unsupported trace version %d", lineNo, l.Version)
			}
			cur = &Trace{Label: l.Label, P: l.P}
			out = append(out, cur)
		case "span":
			if cur == nil {
				return nil, fmt.Errorf("obs: line %d: span before trace header", lineNo)
			}
			sp := Span{ID: l.ID, Parent: -1, Name: l.Name, Path: l.Path, Start: l.Start, End: -1}
			if l.Parent != nil {
				sp.Parent = *l.Parent
			}
			if l.End != nil {
				sp.End = *l.End
			}
			if l.Metrics != nil {
				sp.M = l.Metrics.metrics(l.ModIO, l.ModWork)
			}
			cur.Spans = append(cur.Spans, sp)
		case "round":
			if cur == nil {
				return nil, fmt.Errorf("obs: line %d: round before trace header", lineNo)
			}
			rd := Round{Index: l.I, Span: -1, Path: l.Path}
			if l.Span != nil {
				rd.Span = *l.Span
			}
			rd.RoundTrace = pim.RoundTrace{
				Tasks: l.Tasks, Modules: l.Modules, SendWords: l.Send, RecvWords: l.Recv,
				MaxIO: l.MaxIO, MaxWork: l.MaxWork, Work: l.Work,
				ModID: l.ModID, ModIO: l.RModIO, ModWork: l.RModWrk,
			}
			cur.Rounds = append(cur.Rounds, rd)
		case "end":
			if cur == nil {
				return nil, fmt.Errorf("obs: line %d: end before trace header", lineNo)
			}
			if l.Total != nil {
				cur.Total = l.Total.metrics(l.TotalModIO, l.TotalModWork)
			}
			if l.Unattributed != nil {
				cur.Unattributed = l.Unattributed.metrics(l.UnattModIO, l.UnattModWork)
			}
			if l.System != nil {
				cur.System = l.System.metrics(l.SysModIO, l.SysModWork)
			}
			cur.Detached = l.Detached
			cur = nil
		default:
			return nil, fmt.Errorf("obs: line %d: unknown line type %q", lineNo, l.Type)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
