package obs

import (
	"math"
	"strings"
	"testing"

	"github.com/pimlab/pimtrie/internal/metrics"
	"github.com/pimlab/pimtrie/internal/pim"
)

// driveRounds runs a few phased rounds with a deliberately skewed
// module load and returns the system's resulting metrics delta.
func driveRounds(sys *pim.System) pim.Metrics {
	before := sys.Metrics()
	run := func(work int) func(m *pim.Module) pim.Resp {
		return func(m *pim.Module) pim.Resp {
			m.Work(work)
			return pim.Resp{RecvWords: 1}
		}
	}
	end := sys.Phase("alpha")
	sys.Round([]pim.Task{
		{Module: 0, SendWords: 10, Run: run(5)},
		{Module: 1, SendWords: 2, Run: run(1)},
	})
	inner := sys.Phase("beta")
	sys.Round([]pim.Task{{Module: 0, SendWords: 30, Run: run(9)}})
	inner()
	end()
	sys.CPUWork(17)
	sys.Round([]pim.Task{{Module: 2, SendWords: 4, Run: run(2)}})
	return sys.Metrics().Sub(before)
}

func TestMonitorMatchesSystemMetrics(t *testing.T) {
	sys := pim.NewSystem(4, pim.WithSeed(1), pim.WithMaxParallelism(1))
	reg := metrics.NewRegistry()
	mon := NewMonitor(reg, sys.P())
	sys.SetRecorder(mon)
	d := driveRounds(sys)
	sys.SetRecorder(nil)

	v := reg.Varz()
	checks := []struct {
		series string
		want   uint64
	}{
		{"pimtrie_pim_rounds_total", uint64(d.Rounds)},
		{"pimtrie_pim_io_time_total", uint64(d.IOTime)},
		{"pimtrie_pim_io_words_total", uint64(d.IOWords)},
		{"pimtrie_pim_time_total", uint64(d.PIMTime)},
		{"pimtrie_pim_work_total", uint64(d.PIMWork)},
		{"pimtrie_pim_cpu_work_total", uint64(d.CPUWork)},
		{`pimtrie_phase_rounds_total{phase="alpha"}`, 1},
		{`pimtrie_phase_rounds_total{phase="beta"}`, 1},
		{`pimtrie_phase_io_words_total{phase="beta"}`, 31},
	}
	for _, c := range checks {
		if got := v[c.series]; got != c.want {
			t.Errorf("%s = %v, want %d", c.series, got, c.want)
		}
	}

	// The live imbalance gauges must equal the shared Imbalance
	// coefficients over the system's own per-module vectors — and
	// max/mean must agree with the paper's IOBalance factor.
	wantMM, wantCV := metrics.Imbalance(d.PerModuleIO)
	if got := v["pimtrie_pim_io_imbalance_max_mean"].(float64); math.Abs(got-wantMM) > 1e-12 {
		t.Errorf("io max/mean gauge = %v, want %v", got, wantMM)
	}
	if got := v["pimtrie_pim_io_imbalance_cv"].(float64); math.Abs(got-wantCV) > 1e-12 {
		t.Errorf("io cv gauge = %v, want %v", got, wantCV)
	}
	if math.Abs(wantMM-d.IOBalance()) > 1e-12 {
		t.Errorf("Imbalance max/mean %v != Metrics.IOBalance %v", wantMM, d.IOBalance())
	}
	if got := mon.PerModuleIO(); len(got) != 4 || got[0] != d.PerModuleIO[0] {
		t.Errorf("monitor per-module IO %v, system %v", got, d.PerModuleIO)
	}

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "pimtrie_pim_io_imbalance_max_mean") {
		t.Error("exposition missing imbalance gauge")
	}
}

// TestMonitorUnregisteredCost: a system with no recorder must not pay
// for instrumentation — this is the same contract sys.Phase documents,
// checked here from the monitor's side (attach, detach, keep running).
func TestMonitorDetach(t *testing.T) {
	sys := pim.NewSystem(4, pim.WithSeed(1), pim.WithMaxParallelism(1))
	reg := metrics.NewRegistry()
	mon := NewMonitor(reg, sys.P())
	sys.SetRecorder(mon)
	driveRounds(sys)
	after := reg.Varz()["pimtrie_pim_rounds_total"].(uint64)
	sys.SetRecorder(nil)
	driveRounds(sys)
	if got := reg.Varz()["pimtrie_pim_rounds_total"].(uint64); got != after {
		t.Errorf("detached monitor still recorded: %d -> %d", after, got)
	}
}
