package obs

// Monitor is the Tracer's always-on sibling: a pim.Recorder that feeds
// a live metrics.Registry instead of accumulating a post-hoc trace.
// Where the Tracer remembers every round (memory grows with the run)
// for offline analysis, the Monitor folds each round into a fixed set
// of counters, histograms and skew gauges the moment it happens, so a
// long-running serving process can expose continuously fresh
// operational metrics over HTTP (internal/telemetry) at O(1) memory.
//
// Per-phase attribution uses the innermost open phase's *name* (not
// the full path) as the label, which keeps the label cardinality at
// the number of distinct phase markers in the codebase rather than the
// number of distinct nestings. The per-module imbalance gauges report
// the same two coefficients (max/mean and CV, metrics.Imbalance) the
// offline pimtrie-trace skew summary prints, so live dashboards and
// trace analyses speak one vocabulary.

import (
	"sync"

	"github.com/pimlab/pimtrie/internal/metrics"
	"github.com/pimlab/pimtrie/internal/pim"
)

// phaseInstruments is one phase label's counter set.
type phaseInstruments struct {
	rounds, ioWords, pimWork, cpuWork *metrics.Counter
}

// Monitor implements pim.Recorder over a metrics.Registry. Create with
// NewMonitor and attach with sys.SetRecorder (or pimtrie's
// Index.SetRecorder); like the Tracer, at most one recorder observes a
// system at a time.
type Monitor struct {
	mu  sync.Mutex
	reg *metrics.Registry

	rounds  *metrics.Counter
	ioTime  *metrics.Counter
	ioWords *metrics.Counter
	pimTime *metrics.Counter
	pimWork *metrics.Counter
	cpuWork *metrics.Counter
	roundIO *metrics.Histogram // per-round busiest-module IO (words)

	ioMaxMean, ioCV   *metrics.Gauge
	wrkMaxMean, wrkCV *metrics.Gauge
	perModIO          []int64
	perModWrk         []int64

	stack  []string
	phases map[string]*phaseInstruments
}

// NewMonitor creates a Monitor over p modules, registering its
// instruments (pimtrie_pim_* and pimtrie_phase_*) in reg.
func NewMonitor(reg *metrics.Registry, p int) *Monitor {
	m := &Monitor{
		reg:       reg,
		rounds:    reg.Counter("pimtrie_pim_rounds_total", "BSP supersteps executed"),
		ioTime:    reg.Counter("pimtrie_pim_io_time_total", "model IO time: sum over rounds of the busiest module's words"),
		ioWords:   reg.Counter("pimtrie_pim_io_words_total", "total words moved CPU<->PIM"),
		pimTime:   reg.Counter("pimtrie_pim_time_total", "model PIM time: sum over rounds of the busiest module's work"),
		pimWork:   reg.Counter("pimtrie_pim_work_total", "total accounted PIM work"),
		cpuWork:   reg.Counter("pimtrie_pim_cpu_work_total", "total accounted host CPU work"),
		roundIO:   reg.Histogram("pimtrie_pim_round_io_words", "busiest module's IO words per round"),
		ioMaxMean: reg.Gauge("pimtrie_pim_io_imbalance_max_mean", "per-module IO skew: max/mean (1 = balanced, P = serialized)"),
		ioCV:      reg.Gauge("pimtrie_pim_io_imbalance_cv", "per-module IO skew: coefficient of variation"),
		wrkMaxMean: reg.Gauge("pimtrie_pim_work_imbalance_max_mean",
			"per-module work skew: max/mean (1 = balanced, P = serialized)"),
		wrkCV:     reg.Gauge("pimtrie_pim_work_imbalance_cv", "per-module work skew: coefficient of variation"),
		perModIO:  make([]int64, p),
		perModWrk: make([]int64, p),
		phases:    map[string]*phaseInstruments{},
	}
	m.ioMaxMean.Set(1)
	m.wrkMaxMean.Set(1)
	return m
}

// phase returns (registering on first use) the counter set for a phase
// name. Caller holds m.mu.
func (m *Monitor) phase(name string) *phaseInstruments {
	pi, ok := m.phases[name]
	if !ok {
		l := metrics.L("phase", name)
		pi = &phaseInstruments{
			rounds:  m.reg.Counter("pimtrie_phase_rounds_total", "rounds attributed to the innermost open phase", l),
			ioWords: m.reg.Counter("pimtrie_phase_io_words_total", "IO words attributed to the innermost open phase", l),
			pimWork: m.reg.Counter("pimtrie_phase_pim_work_total", "PIM work attributed to the innermost open phase", l),
			cpuWork: m.reg.Counter("pimtrie_phase_cpu_work_total", "CPU work attributed to the innermost open phase", l),
		}
		m.phases[name] = pi
	}
	return pi
}

// BeginPhase implements pim.Recorder.
func (m *Monitor) BeginPhase(name string) {
	m.mu.Lock()
	m.stack = append(m.stack, name)
	m.mu.Unlock()
}

// EndPhase implements pim.Recorder.
func (m *Monitor) EndPhase() {
	m.mu.Lock()
	if len(m.stack) > 0 {
		m.stack = m.stack[:len(m.stack)-1]
	}
	m.mu.Unlock()
}

// RecordRound implements pim.Recorder: fold the round into the global
// counters, the innermost phase's counters, and the cumulative
// per-module vectors behind the imbalance gauges.
func (m *Monitor) RecordRound(tr pim.RoundTrace) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.rounds.Inc()
	m.ioTime.Add(uint64(tr.MaxIO))
	m.ioWords.Add(uint64(tr.SendWords + tr.RecvWords))
	m.pimTime.Add(uint64(tr.MaxWork))
	m.pimWork.Add(uint64(tr.Work))
	m.roundIO.Observe(float64(tr.MaxIO))
	if len(m.stack) > 0 {
		pi := m.phase(m.stack[len(m.stack)-1])
		pi.rounds.Inc()
		pi.ioWords.Add(uint64(tr.SendWords + tr.RecvWords))
		pi.pimWork.Add(uint64(tr.Work))
	}
	for j, id := range tr.ModID {
		if id < len(m.perModIO) {
			m.perModIO[id] += tr.ModIO[j]
			m.perModWrk[id] += tr.ModWork[j]
		}
	}
	mm, cv := metrics.Imbalance(m.perModIO)
	m.ioMaxMean.Set(mm)
	m.ioCV.Set(cv)
	mm, cv = metrics.Imbalance(m.perModWrk)
	m.wrkMaxMean.Set(mm)
	m.wrkCV.Set(cv)
}

// RecordCPUWork implements pim.Recorder.
func (m *Monitor) RecordCPUWork(n int) {
	m.mu.Lock()
	m.cpuWork.Add(uint64(n))
	if len(m.stack) > 0 {
		m.phase(m.stack[len(m.stack)-1]).cpuWork.Add(uint64(n))
	}
	m.mu.Unlock()
}

// PerModuleIO returns a copy of the cumulative per-module IO vector
// observed so far (diagnostics and tests).
func (m *Monitor) PerModuleIO() []int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]int64(nil), m.perModIO...)
}
