// Package obs is the phase-attribution layer over the PIM simulator:
// it turns the simulator's global cost counters into a per-phase cost
// breakdown, which is what every claim of the reproduction (Table 1
// bounds, the E7/E7b skew rows, the Theorem 4.3 checks) is ultimately
// about. A Tracer attaches to a pim.System through the pim.Recorder
// hook — the simulator never imports this package — and algorithm code
// annotates itself with `defer sys.Phase("lcp")()` markers, which cost
// nothing when no tracer is attached.
//
// Phases open nestable spans. Every BSP round executed while a span is
// open is attributed to the *innermost* open span, so span metrics are
// exclusive ("self" cost): summing all spans plus the unattributed
// bucket reproduces the system's global Metrics delta exactly, a
// conservation law the tests and the `pimtrie-trace -check` analyzer
// both enforce. Each span also accumulates per-module IO/work vectors
// (for skew heatmaps) and the trace remembers every round with its
// owning span, giving a round-by-round timeline.
//
// Export is JSONL (see export.go); cmd/pimtrie-trace reads it back and
// prints breakdowns, timelines and per-module skew summaries.
package obs

import (
	"fmt"
	"sync"

	"github.com/pimlab/pimtrie/internal/pim"
)

// Span is one closed or open phase instance: a node in the phase tree
// with exclusive (innermost-attribution) cost.
type Span struct {
	ID     int    // index into the trace's span list
	Parent int    // parent span ID, or -1 for a root span
	Name   string // the label passed to sys.Phase
	Path   string // slash-joined ancestor names, e.g. "lcp/master-match"
	Start  int    // global index of the first round at or after opening
	End    int    // global index one past the last possible round; -1 while open

	// M is the span's exclusive cost: rounds executed while this span
	// was the innermost open span, with the usual model metrics and
	// full-length per-module IO/work vectors.
	M pim.Metrics
}

// Round is one executed BSP round with its span attribution.
type Round struct {
	Index int    // global round index within the trace
	Span  int    // owning span ID, or -1 if no span was open
	Path  string // owning span's path ("" if unattributed)
	pim.RoundTrace
}

// Tracer implements pim.Recorder: it maintains the open-span stack,
// attributes every recorded event to the innermost span, and keeps the
// full round log. All methods are safe for concurrent use, so snapshots
// (Data, WriteJSONL) may be taken while a system is running.
type Tracer struct {
	mu    sync.Mutex
	sys   *pim.System
	label string
	p     int
	base  pim.Metrics // system snapshot at Attach

	spans    []*Span
	stack    []int // open span IDs, innermost last
	rounds   []Round
	total    pim.Metrics // everything recorded since Attach
	unattrib pim.Metrics // recorded while no span was open

	final    pim.Metrics // system delta snapshot taken at Detach
	detached bool
}

// Attach creates a Tracer, snapshots the system's current metrics as
// the baseline, and installs the tracer as the system's recorder. The
// label names the trace in exports (e.g. "E2/sys03").
func Attach(sys *pim.System, label string) *Tracer {
	t := &Tracer{
		sys:   sys,
		label: label,
		p:     sys.P(),
		base:  sys.Metrics(),
	}
	t.total = zeroMetrics(t.p)
	t.unattrib = zeroMetrics(t.p)
	sys.SetRecorder(t)
	return t
}

// Detach removes the tracer from its system, closes any still-open
// spans, and snapshots the system's metrics delta since Attach for the
// export's cross-check. Detach is idempotent.
func (t *Tracer) Detach() {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.detached {
		return
	}
	t.detached = true
	t.sys.SetRecorder(nil)
	for len(t.stack) > 0 {
		t.endInnermost()
	}
	t.final = t.sys.Metrics().Sub(t.base)
}

// Label returns the trace's label.
func (t *Tracer) Label() string { return t.label }

func zeroMetrics(p int) pim.Metrics {
	return pim.Metrics{PerModuleIO: make([]int64, p), PerModuleWrk: make([]int64, p)}
}

// BeginPhase implements pim.Recorder.
func (t *Tracer) BeginPhase(name string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	path := name
	parent := -1
	if len(t.stack) > 0 {
		parent = t.stack[len(t.stack)-1]
		path = t.spans[parent].Path + "/" + name
	}
	sp := &Span{
		ID: len(t.spans), Parent: parent, Name: name, Path: path,
		Start: len(t.rounds), End: -1,
		M: zeroMetrics(t.p),
	}
	t.spans = append(t.spans, sp)
	t.stack = append(t.stack, sp.ID)
}

// EndPhase implements pim.Recorder.
func (t *Tracer) EndPhase() {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.stack) == 0 {
		panic("obs: EndPhase with no open span")
	}
	t.endInnermost()
}

func (t *Tracer) endInnermost() {
	id := t.stack[len(t.stack)-1]
	t.stack = t.stack[:len(t.stack)-1]
	t.spans[id].End = len(t.rounds)
}

// RecordRound implements pim.Recorder: the round is attributed to the
// innermost open span (or the unattributed bucket).
func (t *Tracer) RecordRound(tr pim.RoundTrace) {
	t.mu.Lock()
	defer t.mu.Unlock()
	target := &t.unattrib
	span := -1
	path := ""
	if len(t.stack) > 0 {
		span = t.stack[len(t.stack)-1]
		target = &t.spans[span].M
		path = t.spans[span].Path
	}
	addRound(target, tr)
	addRound(&t.total, tr)
	// The per-module vectors are on loan from the system's round-scratch
	// pool; the retained timeline needs its own copy.
	t.rounds = append(t.rounds, Round{
		Index: len(t.rounds), Span: span, Path: path, RoundTrace: tr.Clone(),
	})
}

// RecordCPUWork implements pim.Recorder.
func (t *Tracer) RecordCPUWork(n int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.stack) > 0 {
		t.spans[t.stack[len(t.stack)-1]].M.CPUWork += int64(n)
	} else {
		t.unattrib.CPUWork += int64(n)
	}
	t.total.CPUWork += int64(n)
}

// addRound folds one round trace into a metrics accumulator, mirroring
// System.Round's own accounting.
func addRound(m *pim.Metrics, tr pim.RoundTrace) {
	m.Rounds++
	m.IOTime += tr.MaxIO
	m.IOWords += tr.SendWords + tr.RecvWords
	m.PIMTime += tr.MaxWork
	m.PIMWork += tr.Work
	for j, id := range tr.ModID {
		if id < len(m.PerModuleIO) {
			m.PerModuleIO[id] += tr.ModIO[j]
			m.PerModuleWrk[id] += tr.ModWork[j]
		}
	}
}

// Trace is an immutable snapshot of a Tracer (or one trace read back
// from a JSONL file): the unit the exporter and the analyzer share.
type Trace struct {
	Label        string
	P            int
	Spans        []Span
	Rounds       []Round
	Total        pim.Metrics
	Unattributed pim.Metrics
	// System is the traced system's own metrics delta between Attach and
	// Detach — the independent cross-check for Total. Zero-valued when
	// the tracer was never detached.
	System   pim.Metrics
	Detached bool
}

// Data snapshots the tracer. Open spans appear with End == -1.
func (t *Tracer) Data() *Trace {
	t.mu.Lock()
	defer t.mu.Unlock()
	d := &Trace{
		Label:        t.label,
		P:            t.p,
		Spans:        make([]Span, len(t.spans)),
		Rounds:       append([]Round(nil), t.rounds...),
		Total:        copyMetrics(t.total),
		Unattributed: copyMetrics(t.unattrib),
		System:       copyMetrics(t.final),
		Detached:     t.detached,
	}
	for i, sp := range t.spans {
		d.Spans[i] = *sp
		d.Spans[i].M = copyMetrics(sp.M)
	}
	return d
}

func copyMetrics(m pim.Metrics) pim.Metrics {
	m.PerModuleIO = append([]int64(nil), m.PerModuleIO...)
	m.PerModuleWrk = append([]int64(nil), m.PerModuleWrk...)
	return m
}

// Check verifies the trace's conservation laws: span exclusive metrics
// plus the unattributed bucket must equal the recorded total, and — for
// a detached trace — the total must equal the system's own metrics
// delta. It returns nil when everything sums.
func (tr *Trace) Check() error {
	sum := zeroMetrics(tr.P)
	for _, sp := range tr.Spans {
		sum = sum.Add(sp.M)
	}
	sum = sum.Add(tr.Unattributed)
	if err := equalMetrics(sum, tr.Total, "spans+unattributed", "total"); err != nil {
		return err
	}
	if tr.Detached {
		if err := equalMetrics(tr.Total, tr.System, "total", "system delta"); err != nil {
			return err
		}
	}
	if int(tr.Total.Rounds) != len(tr.Rounds) {
		return fmt.Errorf("obs: %d rounds recorded but total.Rounds = %d", len(tr.Rounds), tr.Total.Rounds)
	}
	return nil
}

func equalMetrics(a, b pim.Metrics, an, bn string) error {
	type pair struct {
		name string
		x, y int64
	}
	for _, p := range []pair{
		{"Rounds", a.Rounds, b.Rounds},
		{"IOTime", a.IOTime, b.IOTime},
		{"IOWords", a.IOWords, b.IOWords},
		{"PIMTime", a.PIMTime, b.PIMTime},
		{"PIMWork", a.PIMWork, b.PIMWork},
		{"CPUWork", a.CPUWork, b.CPUWork},
	} {
		if p.x != p.y {
			return fmt.Errorf("obs: %s.%s = %d but %s.%s = %d", an, p.name, p.x, bn, p.name, p.y)
		}
	}
	for i := range a.PerModuleIO {
		if i < len(b.PerModuleIO) && a.PerModuleIO[i] != b.PerModuleIO[i] {
			return fmt.Errorf("obs: %s module %d IO = %d but %s has %d", an, i, a.PerModuleIO[i], bn, b.PerModuleIO[i])
		}
	}
	for i := range a.PerModuleWrk {
		if i < len(b.PerModuleWrk) && a.PerModuleWrk[i] != b.PerModuleWrk[i] {
			return fmt.Errorf("obs: %s module %d work = %d but %s has %d", an, i, a.PerModuleWrk[i], bn, b.PerModuleWrk[i])
		}
	}
	return nil
}
