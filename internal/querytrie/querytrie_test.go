package querytrie

import (
	"math/rand"
	"strings"
	"testing"

	"github.com/pimlab/pimtrie/internal/bitstr"
	"github.com/pimlab/pimtrie/internal/hashing"
	"github.com/pimlab/pimtrie/internal/trie"
)

func randomKey(r *rand.Rand, maxLen int) string {
	n := r.Intn(maxLen + 1)
	var b strings.Builder
	for i := 0; i < n; i++ {
		b.WriteByte('0' + byte(r.Intn(2)))
	}
	return b.String()
}

func TestBuildMatchesDirectInsertion(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 30; trial++ {
		n := r.Intn(200)
		batch := make([]bitstr.String, n)
		strs := make([]string, n)
		for i := range batch {
			strs[i] = randomKey(r, 80)
			if i > 0 && r.Intn(4) == 0 {
				strs[i] = strs[r.Intn(i)] // duplicates
			}
			if i > 0 && r.Intn(4) == 0 {
				strs[i] = strs[r.Intn(i)] + randomKey(r, 20) // shared prefixes
			}
			batch[i] = bitstr.MustParse(strs[i])
		}
		qt := Build(batch)
		if err := qt.Trie.CheckInvariants(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// Reference trie by direct insertion.
		ref := trie.New()
		uniq := map[string]bool{}
		for _, s := range strs {
			uniq[s] = true
			ref.Insert(bitstr.MustParse(s), 0)
		}
		if qt.Trie.KeyCount() != len(uniq) {
			t.Fatalf("trial %d: %d keys, want %d", trial, qt.Trie.KeyCount(), len(uniq))
		}
		if qt.Trie.NodeCount() != ref.NodeCount() || qt.Trie.EdgeBits() != ref.EdgeBits() {
			t.Fatalf("trial %d: structure mismatch: %d/%d nodes, %d/%d bits",
				trial, qt.Trie.NodeCount(), ref.NodeCount(), qt.Trie.EdgeBits(), ref.EdgeBits())
		}
	}
}

func TestNodesHoldTheirKeys(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	batch := make([]bitstr.String, 300)
	for i := range batch {
		batch[i] = bitstr.MustParse(randomKey(r, 60))
	}
	qt := Build(batch)
	for i, n := range qt.Nodes {
		if got := trie.NodeString(n); !bitstr.Equal(got, qt.Keys[i]) {
			t.Fatalf("Nodes[%d] represents %q, want %q", i, got, qt.Keys[i])
		}
		if !n.HasValue || n.Value != uint64(i) {
			t.Fatalf("Nodes[%d] value = %d/%v", i, n.Value, n.HasValue)
		}
	}
}

func TestSlotMapsBatchToUnique(t *testing.T) {
	batch := []bitstr.String{
		bitstr.MustParse("01"),
		bitstr.MustParse("0"),
		bitstr.MustParse("01"), // duplicate
		bitstr.MustParse(""),
		bitstr.MustParse("0"), // duplicate
	}
	qt := Build(batch)
	if len(qt.Keys) != 3 {
		t.Fatalf("unique keys = %d", len(qt.Keys))
	}
	for i, b := range batch {
		if !bitstr.Equal(qt.Keys[qt.Slot[i]], b) {
			t.Fatalf("Slot[%d] points at %q, want %q", i, qt.Keys[qt.Slot[i]], b)
		}
	}
}

func TestEmptyBatch(t *testing.T) {
	qt := Build(nil)
	if qt.Trie.KeyCount() != 0 || len(qt.Keys) != 0 {
		t.Fatal("empty batch produced keys")
	}
}

func TestEmptyStringKey(t *testing.T) {
	qt := Build([]bitstr.String{bitstr.Empty, bitstr.MustParse("1")})
	if len(qt.Keys) != 2 {
		t.Fatalf("keys = %d", len(qt.Keys))
	}
	if qt.Nodes[0] != qt.Trie.Root() {
		t.Fatal("empty key not at root")
	}
}

func TestPrefixChainBatch(t *testing.T) {
	// Every key a prefix of the next: the degenerate chain that stresses
	// prefix-first ordering in BuildFromSorted.
	var batch []bitstr.String
	s := ""
	for i := 0; i < 64; i++ {
		s += "1"
		batch = append(batch, bitstr.MustParse(s))
	}
	rand.New(rand.NewSource(3)).Shuffle(len(batch), func(i, j int) { batch[i], batch[j] = batch[j], batch[i] })
	qt := Build(batch)
	if err := qt.Trie.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if qt.Trie.KeyCount() != 64 {
		t.Fatalf("keys = %d", qt.Trie.KeyCount())
	}
	// Chain tries have exactly one node per key plus the root.
	if qt.Trie.NodeCount() != 65 {
		t.Fatalf("nodes = %d", qt.Trie.NodeCount())
	}
}

func TestNodeHashesMatchDirect(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	h := hashing.New(9, 0)
	batch := make([]bitstr.String, 150)
	for i := range batch {
		batch[i] = bitstr.MustParse(randomKey(r, 100))
	}
	qt := Build(batch)
	hashes := qt.NodeHashes(h, nil)
	count := 0
	seen := make(map[int]bool)
	qt.Trie.WalkPreorder(func(n *trie.Node) bool {
		count++
		if n.Index < 0 || n.Index >= len(hashes) || seen[n.Index] {
			t.Fatalf("node Index %d is not a dense permutation of [0,%d)", n.Index, len(hashes))
		}
		seen[n.Index] = true
		want := h.Hash(trie.NodeString(n))
		if hashes[n.Index] != want {
			t.Fatalf("node hash mismatch at depth %d", n.Depth)
		}
		return true
	})
	if count != len(hashes) {
		t.Fatalf("hashed %d of %d nodes", len(hashes), count)
	}
}

func TestLeafDepths(t *testing.T) {
	qt := Build([]bitstr.String{bitstr.MustParse("010"), bitstr.MustParse("11")})
	d := qt.LeafDepths()
	if len(d) != 2 || d[0] != 3 || d[1] != 2 {
		t.Fatalf("LeafDepths = %v", d)
	}
}

func BenchmarkBuild4k(b *testing.B) {
	r := rand.New(rand.NewSource(5))
	batch := make([]bitstr.String, 4096)
	for i := range batch {
		batch[i] = bitstr.FromUint64(r.Uint64(), 64)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Build(batch)
	}
}

func TestPreorderScaffolding(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	batch := make([]bitstr.String, 300)
	for i := range batch {
		batch[i] = bitstr.MustParse(randomKey(r, 120))
	}
	qt := Build(batch)
	qt.Trie.SplitLongEdges(64) // restructure after Build, as core does
	qt.NodeHashes(hashing.New(9, 0), nil)

	i := 0
	qt.Trie.WalkPreorder(func(n *trie.Node) bool {
		if i >= len(qt.PreNodes) || qt.PreNodes[i] != n {
			t.Fatalf("PreNodes[%d] is not the %d-th preorder node", i, i)
		}
		if n.Index != i {
			t.Fatalf("node Index %d at preorder position %d", n.Index, i)
		}
		par := int32(-1)
		if n.Parent != nil {
			par = int32(n.Parent.Index)
		}
		if qt.PreParent[i] != par {
			t.Fatalf("PreParent[%d] = %d, want %d", i, qt.PreParent[i], par)
		}
		i++
		return true
	})
	if i != len(qt.PreNodes) {
		t.Fatalf("scaffolding has %d nodes, walk saw %d", len(qt.PreNodes), i)
	}
}
