// Package querytrie builds the query trie of §4.1 (Algorithm 1): the
// Patricia trie over the keys of one operation batch, constructed in the
// CPU cache as a preprocessing step. Processing a whole query trie
// instead of individual strings is what lets PIM-trie share work across
// queries with common prefixes and keep communication proportional to
// the trie size Q_Q rather than the batch's total key length.
package querytrie

import (
	"github.com/pimlab/pimtrie/internal/bitstr"
	"github.com/pimlab/pimtrie/internal/hashing"
	"github.com/pimlab/pimtrie/internal/parallel"
	"github.com/pimlab/pimtrie/internal/trie"
)

// QueryTrie is the batch's Patricia trie plus the bookkeeping that maps
// batch positions to trie nodes and back.
type QueryTrie struct {
	Trie *trie.Trie
	// Keys are the deduplicated batch keys in sorted order; Nodes[i] is
	// the locus node of Keys[i] (its Value is i).
	Keys  []bitstr.String
	Nodes []*trie.Node
	// Slot maps each original batch index to its entry in Keys.
	Slot []int
}

// Build sorts and deduplicates the batch, computes adjacent LCPs
// implicitly, and generates the Patricia trie (Algorithm 1). It is the
// QTrieConstruct preprocessing run on the host for every batch. Every
// compressed node is assigned a dense preorder Index so per-node side
// data (NodeHashes) lives in flat slices.
func Build(batch []bitstr.String) *QueryTrie {
	n := len(batch)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	// Parallel radix arg-sort over the packed key words (the StringSort
	// step of Algorithm 1); stability is irrelevant because equal keys
	// collapse into one slot below.
	bitstr.ArgSort(batch, idx, parallel.MaxProcs())
	qt := &QueryTrie{Slot: make([]int, n)}
	var values []uint64
	for _, bi := range idx {
		k := batch[bi]
		if len(qt.Keys) == 0 || !bitstr.Equal(qt.Keys[len(qt.Keys)-1], k) {
			qt.Keys = append(qt.Keys, k)
			values = append(values, uint64(len(qt.Keys)-1))
		}
		qt.Slot[bi] = len(qt.Keys) - 1
	}
	qt.Trie, qt.Nodes = trie.BuildFromSorted(qt.Keys, values)
	pre := 0
	qt.Trie.WalkPreorder(func(nd *trie.Node) bool {
		nd.Index = pre
		pre++
		return true
	})
	return qt
}

// SizeWords returns Q_Q, the model size of the query trie.
func (q *QueryTrie) SizeWords() int { return q.Trie.SizeWords() }

// NodeHashes computes the node hash (hash of the represented string) of
// every compressed node by a rootfix scan: each node extends its
// parent's value by its parent edge label (Lemma 4.9's sequential core).
// The result is indexed by Node.Index, which the walk reassigns as fresh
// preorder numbers — callers may have restructured the trie since Build
// (e.g. SplitLongEdges), so the build-time numbering cannot be trusted.
// buf, when large enough, is reused as the backing store so a caller
// processing batch after batch allocates nothing here.
func (q *QueryTrie) NodeHashes(h *hashing.Hasher, buf []hashing.Value) []hashing.Value {
	nc := q.Trie.NodeCount()
	if cap(buf) < nc {
		buf = make([]hashing.Value, nc)
	}
	out := buf[:nc]
	pre := 0
	var rec func(n *trie.Node, v hashing.Value)
	rec = func(n *trie.Node, v hashing.Value) {
		n.Index = pre
		out[pre] = v
		pre++
		for b := 0; b < 2; b++ {
			if e := n.Child[b]; e != nil {
				rec(e.To, h.ExtendRange(v, e.Label, 0, e.Label.Len()))
			}
		}
	}
	rec(q.Trie.Root(), hashing.EmptyValue())
	return out
}

// LeafDepths returns, for every unique key, its length in bits; used by
// result assembly to clip LCP answers.
func (q *QueryTrie) LeafDepths() []int {
	out := make([]int, len(q.Keys))
	for i, k := range q.Keys {
		out[i] = k.Len()
	}
	return out
}
