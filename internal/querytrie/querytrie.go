// Package querytrie builds the query trie of §4.1 (Algorithm 1): the
// Patricia trie over the keys of one operation batch, constructed in the
// CPU cache as a preprocessing step. Processing a whole query trie
// instead of individual strings is what lets PIM-trie share work across
// queries with common prefixes and keep communication proportional to
// the trie size Q_Q rather than the batch's total key length.
package querytrie

import (
	"github.com/pimlab/pimtrie/internal/bitstr"
	"github.com/pimlab/pimtrie/internal/hashing"
	"github.com/pimlab/pimtrie/internal/parallel"
	"github.com/pimlab/pimtrie/internal/trie"
)

// QueryTrie is the batch's Patricia trie plus the bookkeeping that maps
// batch positions to trie nodes and back.
type QueryTrie struct {
	Trie *trie.Trie
	// Keys are the deduplicated batch keys in sorted order; Nodes[i] is
	// the locus node of Keys[i] (its Value is i).
	Keys  []bitstr.String
	Nodes []*trie.Node
	// Slot maps each original batch index to its entry in Keys.
	Slot []int
	// PreNodes and PreParent are the flattened preorder scaffolding
	// NodeHashes (re)builds: PreNodes[i] is the i-th compressed node in
	// preorder (PreNodes[i].Index == i), PreParent[i] the preorder index
	// of its parent (-1 for the root). Consumers that previously walked
	// the pointer trie per batch — the rootfix hash scan, the master
	// round's edge chunking — iterate these dense arrays instead, which
	// streams sequentially and admits lookahead loads.
	PreNodes  []*trie.Node
	PreParent []int32
}

// Build sorts and deduplicates the batch, computes adjacent LCPs
// implicitly, and generates the Patricia trie (Algorithm 1). It is the
// QTrieConstruct preprocessing run on the host for every batch. Every
// compressed node is assigned a dense preorder Index so per-node side
// data (NodeHashes) lives in flat slices.
func Build(batch []bitstr.String) *QueryTrie {
	n := len(batch)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	// Parallel radix arg-sort over the packed key words (the StringSort
	// step of Algorithm 1); stability is irrelevant because equal keys
	// collapse into one slot below.
	bitstr.ArgSort(batch, idx, parallel.MaxProcs())
	qt := &QueryTrie{Slot: make([]int, n)}
	var values []uint64
	for _, bi := range idx {
		k := batch[bi]
		if len(qt.Keys) == 0 || !bitstr.Equal(qt.Keys[len(qt.Keys)-1], k) {
			qt.Keys = append(qt.Keys, k)
			values = append(values, uint64(len(qt.Keys)-1))
		}
		qt.Slot[bi] = len(qt.Keys) - 1
	}
	qt.Trie, qt.Nodes = trie.BuildFromSorted(qt.Keys, values)
	pre := 0
	qt.Trie.WalkPreorder(func(nd *trie.Node) bool {
		nd.Index = pre
		pre++
		return true
	})
	return qt
}

// SizeWords returns Q_Q, the model size of the query trie.
func (q *QueryTrie) SizeWords() int { return q.Trie.SizeWords() }

// hashLookahead is how many preorder positions ahead the rootfix scan
// touches the next nodes' parent-edge label words. The scan itself is
// a tight dependent loop (child extends parent); the early loads give
// the memory system a head start on the label words ExtendRange will
// stream a few iterations later. See bitstr's prefetch notes for why
// a plain early load is the portable form of software prefetch.
const hashLookahead = 4

// hashSink defeats dead-load elimination for the lookahead touches;
// the guarded store is never taken in practice.
var hashSink uint64

const sinkSentinel = 0x9e3779b97f4a7c15

// buildPreorder (re)computes the flattened preorder scaffolding with an
// explicit stack — callers may have restructured the trie since Build
// (e.g. SplitLongEdges), so the build-time numbering cannot be trusted.
// Node.Index is reassigned to the fresh preorder position.
func (q *QueryTrie) buildPreorder() {
	nc := q.Trie.NodeCount()
	if cap(q.PreNodes) < nc {
		q.PreNodes = make([]*trie.Node, 0, nc)
		q.PreParent = make([]int32, 0, nc)
	}
	q.PreNodes, q.PreParent = q.PreNodes[:0], q.PreParent[:0]
	type frame struct {
		n   *trie.Node
		par int32
	}
	stack := make([]frame, 0, 64)
	stack = append(stack, frame{q.Trie.Root(), -1})
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		idx := int32(len(q.PreNodes))
		f.n.Index = int(idx)
		q.PreNodes = append(q.PreNodes, f.n)
		q.PreParent = append(q.PreParent, f.par)
		// Push bit-1 first so bit-0 pops (and numbers) first.
		for b := 1; b >= 0; b-- {
			if e := f.n.Child[b]; e != nil {
				stack = append(stack, frame{e.To, idx})
			}
		}
	}
}

// NodeHashes computes the node hash (hash of the represented string) of
// every compressed node by a rootfix scan: each node extends its
// parent's value by its parent edge label (Lemma 4.9's sequential core).
// The result is indexed by Node.Index, freshly assigned in preorder by
// buildPreorder; the scan itself is one linear pass over the flattened
// PreNodes/PreParent arrays instead of a recursive pointer walk, with a
// lookahead touch of upcoming label words. buf, when large enough, is
// reused as the backing store so a caller processing batch after batch
// allocates nothing here. Values are bit-identical to the recursive
// rootfix: each node performs the same single ExtendRange of its
// parent's value.
func (q *QueryTrie) NodeHashes(h *hashing.Hasher, buf []hashing.Value) []hashing.Value {
	nc := q.Trie.NodeCount()
	if cap(buf) < nc {
		buf = make([]hashing.Value, nc)
	}
	out := buf[:nc]
	q.buildPreorder()
	out[0] = hashing.EmptyValue()
	sink := uint64(0)
	for i := 1; i < nc; i++ {
		if j := i + hashLookahead; j < nc {
			if w := q.PreNodes[j].ParentEdge.Label.RawWords(); len(w) > 0 {
				sink ^= w[0]
			}
		}
		e := q.PreNodes[i].ParentEdge
		out[i] = h.ExtendRange(out[q.PreParent[i]], e.Label, 0, e.Label.Len())
	}
	if sink == sinkSentinel {
		hashSink = sink
	}
	return out
}

// LeafDepths returns, for every unique key, its length in bits; used by
// result assembly to clip LCP answers.
func (q *QueryTrie) LeafDepths() []int {
	out := make([]int, len(q.Keys))
	for i, k := range q.Keys {
		out[i] = k.Len()
	}
	return out
}
