package xfast

import (
	"math/rand"
	"sort"
	"testing"
)

// oracle is a sorted-slice reference for predecessor structures.
type oracle struct {
	keys []uint64
	vals map[uint64]uint64
}

func newOracle() *oracle { return &oracle{vals: map[uint64]uint64{}} }

func (o *oracle) insert(k, v uint64) {
	if _, ok := o.vals[k]; !ok {
		i := sort.Search(len(o.keys), func(i int) bool { return o.keys[i] >= k })
		o.keys = append(o.keys, 0)
		copy(o.keys[i+1:], o.keys[i:])
		o.keys[i] = k
	}
	o.vals[k] = v
}

func (o *oracle) delete(k uint64) bool {
	if _, ok := o.vals[k]; !ok {
		return false
	}
	delete(o.vals, k)
	i := sort.Search(len(o.keys), func(i int) bool { return o.keys[i] >= k })
	o.keys = append(o.keys[:i], o.keys[i+1:]...)
	return true
}

func (o *oracle) pred(x uint64) (uint64, bool) {
	i := sort.Search(len(o.keys), func(i int) bool { return o.keys[i] > x })
	if i == 0 {
		return 0, false
	}
	return o.keys[i-1], true
}

func (o *oracle) succ(x uint64) (uint64, bool) {
	i := sort.Search(len(o.keys), func(i int) bool { return o.keys[i] >= x })
	if i == len(o.keys) {
		return 0, false
	}
	return o.keys[i], true
}

func checkAgainstOracle(t *testing.T, tr *Trie, o *oracle, width int, probes []uint64) {
	t.Helper()
	if tr.Len() != len(o.keys) {
		t.Fatalf("Len = %d, oracle %d", tr.Len(), len(o.keys))
	}
	for _, x := range probes {
		if p := tr.Predecessor(x); p == nil {
			if _, ok := o.pred(x); ok {
				t.Fatalf("Predecessor(%d) = nil, oracle has one", x)
			}
		} else if want, ok := o.pred(x); !ok || want != p.Key {
			t.Fatalf("Predecessor(%d) = %d, want %d (%v)", x, p.Key, want, ok)
		}
		if s := tr.Successor(x); s == nil {
			if _, ok := o.succ(x); ok {
				t.Fatalf("Successor(%d) = nil, oracle has one", x)
			}
		} else if want, ok := o.succ(x); !ok || want != s.Key {
			t.Fatalf("Successor(%d) = %d, want %d (%v)", x, s.Key, want, ok)
		}
		if m := tr.Member(x); (m != nil) != (func() bool { _, ok := o.vals[x]; return ok })() {
			t.Fatalf("Member(%d) = %v", x, m)
		} else if m != nil && m.Value != o.vals[x] {
			t.Fatalf("Member(%d).Value = %d, want %d", x, m.Value, o.vals[x])
		}
	}
}

func TestSmallWidthExhaustive(t *testing.T) {
	// Width 6: exhaustively probe every key after every mutation.
	r := rand.New(rand.NewSource(1))
	tr := New(6)
	o := newOracle()
	all := make([]uint64, 64)
	for i := range all {
		all[i] = uint64(i)
	}
	for step := 0; step < 800; step++ {
		x := uint64(r.Intn(64))
		if r.Intn(2) == 0 {
			v := r.Uint64()
			tr.Insert(x, v)
			o.insert(x, v)
		} else {
			got := tr.Delete(x)
			want := o.delete(x)
			if got != want {
				t.Fatalf("step %d: Delete(%d) = %v, want %v", step, x, got, want)
			}
		}
		checkAgainstOracle(t, tr, o, 6, all)
	}
}

func TestRandomized64Bit(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	tr := New(64)
	o := newOracle()
	var pool []uint64
	probes := make([]uint64, 0, 64)
	for step := 0; step < 3000; step++ {
		var x uint64
		if len(pool) > 0 && r.Intn(2) == 0 {
			x = pool[r.Intn(len(pool))] + uint64(r.Intn(3)) - 1
		} else {
			x = r.Uint64()
		}
		switch r.Intn(3) {
		case 0, 1:
			v := r.Uint64()
			tr.Insert(x, v)
			o.insert(x, v)
			pool = append(pool, x)
		default:
			if tr.Delete(x) != o.delete(x) {
				t.Fatalf("step %d: delete mismatch on %d", step, x)
			}
		}
		if step%100 == 0 {
			probes = probes[:0]
			for i := 0; i < 32; i++ {
				if len(pool) > 0 && i%2 == 0 {
					probes = append(probes, pool[r.Intn(len(pool))])
				} else {
					probes = append(probes, r.Uint64())
				}
			}
			checkAgainstOracle(t, tr, o, 64, probes)
		}
	}
}

func TestEmptyTrie(t *testing.T) {
	tr := New(16)
	if tr.Predecessor(5) != nil || tr.Successor(5) != nil || tr.Member(5) != nil {
		t.Fatal("empty trie returned results")
	}
	if tr.Min() != nil || tr.Max() != nil || tr.Len() != 0 {
		t.Fatal("empty trie has extremes")
	}
}

func TestLeafListOrder(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	tr := New(32)
	keys := map[uint64]bool{}
	for i := 0; i < 500; i++ {
		k := uint64(r.Uint32())
		tr.Insert(k, 0)
		keys[k] = true
	}
	var got []uint64
	tr.Ascend(func(l *Leaf) bool {
		got = append(got, l.Key)
		return true
	})
	if len(got) != len(keys) {
		t.Fatalf("Ascend yielded %d of %d", len(got), len(keys))
	}
	for i := 1; i < len(got); i++ {
		if got[i-1] >= got[i] {
			t.Fatalf("leaf list out of order at %d", i)
		}
	}
	if tr.Min().Key != got[0] || tr.Max().Key != got[len(got)-1] {
		t.Fatal("Min/Max disagree with leaf list")
	}
}

func TestProbeCountLogarithmic(t *testing.T) {
	tr := New(64)
	r := rand.New(rand.NewSource(4))
	for i := 0; i < 1000; i++ {
		tr.Insert(r.Uint64(), 0)
	}
	for i := 0; i < 100; i++ {
		_, probes := tr.PredecessorProbes(r.Uint64())
		if probes > 7 { // ceil(log2(64+1)) = 7
			t.Fatalf("predecessor used %d probes", probes)
		}
	}
}

func TestInsertOverwrite(t *testing.T) {
	tr := New(8)
	if !tr.Insert(5, 1) {
		t.Fatal("first insert not new")
	}
	if tr.Insert(5, 2) {
		t.Fatal("second insert reported new")
	}
	if tr.Member(5).Value != 2 || tr.Len() != 1 {
		t.Fatal("overwrite failed")
	}
}

func TestKeyRangePanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for oversized key")
		}
	}()
	New(8).Insert(256, 0)
}

func TestSpaceWordsScalesWithWidth(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	n := 256
	w16, w64 := New(16), New(64)
	for i := 0; i < n; i++ {
		k := r.Uint64()
		w16.Insert(k&0xffff, 0)
		w64.Insert(k, 0)
	}
	// O(n·w) space: the 64-bit structure must be substantially larger.
	if w64.SpaceWords() < 2*w16.SpaceWords() {
		t.Fatalf("space: w64=%d w16=%d", w64.SpaceWords(), w16.SpaceWords())
	}
}

func BenchmarkPredecessor(b *testing.B) {
	tr := New(64)
	r := rand.New(rand.NewSource(6))
	for i := 0; i < 1<<14; i++ {
		tr.Insert(r.Uint64(), 0)
	}
	qs := make([]uint64, 1024)
	for i := range qs {
		qs[i] = r.Uint64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Predecessor(qs[i&1023])
	}
}

func BenchmarkInsertDelete(b *testing.B) {
	tr := New(64)
	r := rand.New(rand.NewSource(7))
	keys := make([]uint64, 1<<12)
	for i := range keys {
		keys[i] = r.Uint64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := keys[i&(1<<12-1)]
		tr.Insert(k, 0)
		tr.Delete(k)
	}
}
