// Package xfast implements the x-fast trie of Willard [62] over
// fixed-width integer keys (paper §3.1): a bitwise trie with one hash
// table per level and descendant ("jump") pointers, giving
// O(log w)-probe predecessor/successor queries and O(w) updates.
//
// PIM-trie uses x-fast tries twice: as the top level of the y-fast trie
// in the two-layer index of §4.4.2, and (distributed across modules) as
// the "Distributed x-fast trie" baseline of Table 1.
package xfast

import "fmt"

// Leaf is a stored key with its value, linked into the ordered leaf list.
type Leaf struct {
	Key        uint64
	Value      uint64
	Prev, Next *Leaf
}

// node is an internal trie node at some level; leaves live at level w.
type node struct {
	child [2]*node
	// jump points at the minimum leaf of the right subtree when the left
	// child is missing, and at the maximum leaf of the left subtree when
	// the right child is missing; nil when both or neither child exists.
	jump *Leaf
	leaf *Leaf // non-nil exactly at the leaf level
}

// Trie is an x-fast trie over keys of Width bits. The zero value is not
// usable; call New.
type Trie struct {
	width  int
	levels []map[uint64]*node // levels[i]: i-bit prefixes, levels[0] = root
	size   int
	min    *Leaf
	max    *Leaf
}

// New returns an empty x-fast trie over keys of the given width (1..64).
func New(width int) *Trie {
	if width < 1 || width > 64 {
		panic(fmt.Sprintf("xfast: width %d out of range", width))
	}
	t := &Trie{width: width, levels: make([]map[uint64]*node, width+1)}
	for i := range t.levels {
		t.levels[i] = map[uint64]*node{}
	}
	return t
}

// Width returns the key width in bits.
func (t *Trie) Width() int { return t.width }

// Len returns the number of stored keys.
func (t *Trie) Len() int { return t.size }

// Min and Max return the extreme leaves (nil when empty).
func (t *Trie) Min() *Leaf { return t.min }
func (t *Trie) Max() *Leaf { return t.max }

// prefix returns the i-bit prefix of x, right-aligned.
func (t *Trie) prefix(x uint64, i int) uint64 {
	if i == 0 {
		return 0
	}
	return x >> uint(t.width-i)
}

// bitAt returns bit i of x counting from the most significant key bit.
func (t *Trie) bitAt(x uint64, i int) int {
	return int(x >> uint(t.width-1-i) & 1)
}

func (t *Trie) checkKey(x uint64) {
	if t.width < 64 && x >= 1<<uint(t.width) {
		panic(fmt.Sprintf("xfast: key %d exceeds width %d", x, t.width))
	}
}

// Member returns the leaf storing x, or nil.
func (t *Trie) Member(x uint64) *Leaf {
	t.checkKey(x)
	if n := t.levels[t.width][x]; n != nil {
		return n.leaf
	}
	return nil
}

// LongestPrefixLevel returns the largest i such that the i-bit prefix of
// x exists in the trie, found by binary search over levels — the
// O(log w) core of every x-fast query. Probes returns the number of hash
// table probes used (reported to the PIM cost model by callers).
func (t *Trie) LongestPrefixLevel(x uint64) (level int, probes int) {
	t.checkKey(x)
	if t.size == 0 {
		return -1, 0
	}
	lo, hi := 0, t.width // presence is monotone: prefix i present ⇒ i-1 present
	for lo < hi {
		mid := (lo + hi + 1) / 2
		probes++
		if _, ok := t.levels[mid][t.prefix(x, mid)]; ok {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo, probes
}

// Predecessor returns the largest stored leaf with key <= x, or nil.
func (t *Trie) Predecessor(x uint64) *Leaf {
	l, _ := t.PredecessorProbes(x)
	return l
}

// PredecessorProbes is Predecessor exposing the probe count.
func (t *Trie) PredecessorProbes(x uint64) (*Leaf, int) {
	t.checkKey(x)
	if t.size == 0 {
		return nil, 0
	}
	level, probes := t.LongestPrefixLevel(x)
	if level == t.width {
		return t.levels[t.width][x].leaf, probes
	}
	n := t.levels[level][t.prefix(x, level)]
	// The deepest matching node is missing exactly the child x would take.
	if t.bitAt(x, level) == 1 {
		// Right child missing: jump = max of left subtree = pred(x).
		return n.jump, probes
	}
	// Left child missing: jump = min of right subtree = succ(x).
	if n.jump == nil {
		return nil, probes
	}
	return n.jump.Prev, probes
}

// Successor returns the smallest stored leaf with key >= x, or nil.
func (t *Trie) Successor(x uint64) *Leaf {
	t.checkKey(x)
	if t.size == 0 {
		return nil
	}
	level, _ := t.LongestPrefixLevel(x)
	if level == t.width {
		return t.levels[t.width][x].leaf
	}
	n := t.levels[level][t.prefix(x, level)]
	if t.bitAt(x, level) == 0 {
		return n.jump // min of right subtree = succ
	}
	if n.jump == nil {
		return nil
	}
	return n.jump.Next
}

// Insert stores value under x, replacing any existing value, and reports
// whether the key was new. Updates cost O(w) as in Willard's structure.
func (t *Trie) Insert(x, value uint64) bool {
	t.checkKey(x)
	if ln := t.Member(x); ln != nil {
		ln.Value = value
		return false
	}
	pred := t.Predecessor(x)
	leaf := &Leaf{Key: x, Value: value}
	// Link into the ordered list.
	if pred != nil {
		leaf.Next = pred.Next
		leaf.Prev = pred
		if pred.Next != nil {
			pred.Next.Prev = leaf
		}
		pred.Next = leaf
	} else {
		leaf.Next = t.min
		if t.min != nil {
			t.min.Prev = leaf
		}
		t.min = leaf
	}
	if leaf.Next == nil {
		t.max = leaf
	}
	// Materialize the root-to-leaf path.
	if t.levels[0][0] == nil {
		t.levels[0][0] = &node{}
	}
	cur := t.levels[0][0]
	for i := 0; i < t.width; i++ {
		b := t.bitAt(x, i)
		p := t.prefix(x, i+1)
		next := t.levels[i+1][p]
		if next == nil {
			next = &node{}
			if i+1 == t.width {
				next.leaf = leaf
			}
			t.levels[i+1][p] = next
			cur.child[b] = next
		}
		cur = next
	}
	// Fix jump pointers along the path.
	cur = t.levels[0][0]
	for i := 0; i <= t.width; i++ {
		t.refreshJump(cur, leaf)
		if i < t.width {
			cur = cur.child[t.bitAt(x, i)]
		}
	}
	t.size++
	return true
}

// refreshJump updates n's jump pointer given that leaf was just inserted
// somewhere below n.
func (t *Trie) refreshJump(n *node, leaf *Leaf) {
	switch {
	case n.child[0] != nil && n.child[1] != nil:
		n.jump = nil
	case n.child[0] == nil && n.child[1] == nil:
		n.jump = nil // leaf-level node
	case n.child[0] == nil:
		// jump = min of right subtree.
		if n.jump == nil || leaf.Key < n.jump.Key {
			n.jump = leaf
		}
	default:
		// jump = max of left subtree.
		if n.jump == nil || leaf.Key > n.jump.Key {
			n.jump = leaf
		}
	}
}

// Delete removes x, reporting whether it was present.
func (t *Trie) Delete(x uint64) bool {
	t.checkKey(x)
	ln := t.Member(x)
	if ln == nil {
		return false
	}
	// Unlink from the leaf list.
	if ln.Prev != nil {
		ln.Prev.Next = ln.Next
	} else {
		t.min = ln.Next
	}
	if ln.Next != nil {
		ln.Next.Prev = ln.Prev
	} else {
		t.max = ln.Prev
	}
	// Remove childless path nodes bottom-up.
	for i := t.width; i >= 1; i-- {
		p := t.prefix(x, i)
		n := t.levels[i][p]
		if n.child[0] != nil || n.child[1] != nil {
			break
		}
		delete(t.levels[i], p)
		parent := t.levels[i-1][t.prefix(x, i-1)]
		parent.child[t.bitAt(x, i-1)] = nil
	}
	if t.size == 1 {
		delete(t.levels[0], 0)
	}
	// Re-derive jump pointers on the remaining path.
	root := t.levels[0][0]
	cur := root
	for i := 0; cur != nil; i++ {
		switch {
		case cur.child[0] != nil && cur.child[1] != nil:
			cur.jump = nil
		case cur.child[0] == nil && cur.child[1] != nil:
			if cur.jump == ln || cur.jump == nil {
				cur.jump = ln.Next // min of right subtree
			}
		case cur.child[1] == nil && cur.child[0] != nil:
			if cur.jump == ln || cur.jump == nil {
				cur.jump = ln.Prev // max of left subtree
			}
		}
		if i >= t.width {
			break
		}
		cur = cur.child[t.bitAt(x, i)]
	}
	t.size--
	return true
}

// Ascend calls fn on every leaf in increasing key order until it returns
// false.
func (t *Trie) Ascend(fn func(*Leaf) bool) {
	for l := t.min; l != nil; l = l.Next {
		if !fn(l) {
			return
		}
	}
}

// SpaceWords estimates the structure's space in machine words: O(n·w)
// for n keys — the bound Table 1 charges the distributed x-fast trie.
func (t *Trie) SpaceWords() int {
	total := 0
	for _, m := range t.levels {
		total += len(m) * 3 // node + table slot
	}
	return total + t.size*2
}
