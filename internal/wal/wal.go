package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/pimlab/pimtrie/internal/bitstr"
	"github.com/pimlab/pimtrie/internal/metrics"
)

// SyncPolicy controls when appended records are fsynced to stable
// storage. Every policy issues the write(2) *before* Append returns —
// so an acknowledged epoch always survives process death (the OS page
// cache outlives a SIGKILL). The policies differ only in machine-crash
// durability:
//
//   - SyncEveryEpoch fsyncs inline before Append returns: an acked
//     epoch survives power loss. Slowest.
//   - SyncInterval fsyncs on a background timer: power loss can lose
//     up to Interval of acked epochs. The throughput/durability
//     middle ground.
//   - SyncNone never fsyncs (the OS flushes on its own schedule).
type SyncPolicy int

const (
	SyncEveryEpoch SyncPolicy = iota
	SyncInterval
	SyncNone
)

func (p SyncPolicy) String() string {
	switch p {
	case SyncEveryEpoch:
		return "epoch"
	case SyncInterval:
		return "interval"
	case SyncNone:
		return "off"
	default:
		return "unknown"
	}
}

// ParseSyncPolicy maps the pimbench/CLI spelling to a policy.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "epoch", "every", "always":
		return SyncEveryEpoch, nil
	case "interval":
		return SyncInterval, nil
	case "off", "none", "never":
		return SyncNone, nil
	}
	return 0, fmt.Errorf("wal: unknown sync policy %q (want epoch|interval|off)", s)
}

const (
	segMagic  = "PIMWAL1\n"
	segPrefix = "wal-"
	segSuffix = ".log"
	segHdrLen = 16 // magic + u64 firstSeq
)

func segmentPath(dir string, firstSeq uint64) string {
	return filepath.Join(dir, fmt.Sprintf("%s%016x%s", segPrefix, firstSeq, segSuffix))
}

// parseSegmentName extracts firstSeq from a segment file name.
func parseSegmentName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
		return 0, false
	}
	mid := name[len(segPrefix) : len(name)-len(segSuffix)]
	seq, err := strconv.ParseUint(mid, 16, 64)
	if err != nil {
		return 0, false
	}
	return seq, true
}

// listSegments returns the firstSeq of every segment file in dir,
// ascending.
func listSegments(dir string) ([]uint64, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var seqs []uint64
	for _, e := range ents {
		if seq, ok := parseSegmentName(e.Name()); ok {
			seqs = append(seqs, seq)
		}
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	return seqs, nil
}

// Options configures Open.
type Options struct {
	Dir      string
	Policy   SyncPolicy
	Interval time.Duration // SyncInterval period; default 10ms
	NextSeq  uint64        // first sequence number to assign; default 1

	// Metrics, when non-nil, registers the pimtrie_wal_* instrument
	// set (idempotent per registry+labels, like the serve layer).
	Metrics      *metrics.Registry
	MetricLabels []metrics.Label
}

// Log is an append-only, CRC-framed epoch log over numbered segment
// files. Append assigns sequence numbers itself; Rotate starts a new
// segment (done at checkpoint time so covered segments can be
// pruned). All methods are safe for concurrent use, though the serve
// layer calls Append from a single executor goroutine.
type Log struct {
	dir      string
	policy   SyncPolicy
	interval time.Duration

	mu       sync.Mutex
	syncMu   sync.Mutex // serializes background fsync vs segment close; acquired after mu, never before
	f        *os.File
	buf      []byte // scratch: frame encoding
	nextSeq  uint64
	segStart uint64 // firstSeq of the open segment
	dirty    bool   // appended since last fsync
	closed   bool

	appends  uint64
	bytes    uint64
	fsyncs   uint64
	segCount int

	stop     chan struct{}
	tickerWG sync.WaitGroup

	met *walMetrics
}

// Stats is a point-in-time summary of Log activity.
type Stats struct {
	LastSeq  uint64 // highest assigned sequence number (NextSeq-1)
	Appends  uint64 // records appended
	Bytes    uint64 // record bytes written (frames + segment headers)
	Fsyncs   uint64 // fsync(2) calls issued
	Segments int    // segment files currently on disk
}

// Open creates dir if needed and starts a fresh segment at
// Options.NextSeq. Existing segments are left in place (Recover reads
// them); a new segment is always started so that a torn tail from a
// previous crash is never appended after.
func Open(o Options) (*Log, error) {
	if o.Dir == "" {
		return nil, fmt.Errorf("wal: empty dir")
	}
	if o.NextSeq == 0 {
		o.NextSeq = 1
	}
	if o.Interval <= 0 {
		o.Interval = 10 * time.Millisecond
	}
	if err := os.MkdirAll(o.Dir, 0o755); err != nil {
		return nil, err
	}
	existing, err := listSegments(o.Dir)
	if err != nil {
		return nil, err
	}
	l := &Log{
		dir:      o.Dir,
		policy:   o.Policy,
		interval: o.Interval,
		nextSeq:  o.NextSeq,
		segCount: len(existing),
		stop:     make(chan struct{}),
	}
	if o.Metrics != nil {
		l.met = newWALMetrics(o.Metrics, o.MetricLabels)
	}
	if err := l.openSegmentLocked(); err != nil {
		return nil, err
	}
	if l.policy == SyncInterval {
		l.tickerWG.Add(1)
		go l.syncLoop()
	}
	l.publish()
	return l, nil
}

// openSegmentLocked starts a new segment file at l.nextSeq and writes
// its header. Caller holds l.mu (or is constructing the Log).
func (l *Log) openSegmentLocked() error {
	path := segmentPath(l.dir, l.nextSeq)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	var hdr [segHdrLen]byte
	copy(hdr[:], segMagic)
	binary.LittleEndian.PutUint64(hdr[8:], l.nextSeq)
	if _, err := f.Write(hdr[:]); err != nil {
		f.Close()
		return err
	}
	if err := syncDir(l.dir); err != nil {
		f.Close()
		return err
	}
	l.f = f
	l.segStart = l.nextSeq
	l.bytes += segHdrLen
	l.segCount++
	if l.met != nil {
		l.met.bytes.Add(segHdrLen)
	}
	return nil
}

// Append logs one committed write epoch and returns its assigned
// sequence number. The record bytes reach the kernel before Append
// returns under every sync policy; SyncEveryEpoch additionally fsyncs
// inline.
func (l *Log) Append(op uint8, keys []bitstr.String, values []uint64) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, fmt.Errorf("wal: log closed")
	}
	seq := l.nextSeq
	l.buf = l.buf[:0]
	l.buf = append(l.buf, 0, 0, 0, 0, 0, 0, 0, 0) // frame header placeholder
	var err error
	l.buf, err = appendPayload(l.buf, seq, op, keys, values)
	if err != nil {
		return 0, err
	}
	payload := l.buf[frameHeaderSize:]
	binary.LittleEndian.PutUint32(l.buf[0:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(l.buf[4:], crc32.ChecksumIEEE(payload))
	if _, err := l.f.Write(l.buf); err != nil {
		return 0, err
	}
	l.nextSeq++
	l.appends++
	l.bytes += uint64(len(l.buf))
	if l.met != nil {
		l.met.appends.Inc()
		l.met.bytes.Add(uint64(len(l.buf)))
	}
	l.dirty = true
	if l.policy == SyncEveryEpoch {
		if err := l.syncLocked(); err != nil {
			return 0, err
		}
	}
	l.publish()
	return seq, nil
}

func (l *Log) syncLocked() error {
	if !l.dirty {
		return nil
	}
	if err := l.f.Sync(); err != nil {
		return err
	}
	l.dirty = false
	l.fsyncs++
	if l.met != nil {
		l.met.fsyncs.Inc()
	}
	return nil
}

// Sync forces an fsync of the open segment.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	err := l.syncLocked()
	l.publish()
	return err
}

// syncLoop is the SyncInterval background flusher.
func (l *Log) syncLoop() {
	defer l.tickerWG.Done()
	t := time.NewTicker(l.interval)
	defer t.Stop()
	for {
		select {
		case <-l.stop:
			return
		case <-t.C:
			l.backgroundSync()
		}
	}
}

// backgroundSync fsyncs the open segment WITHOUT holding the append
// lock during the fsync(2) — otherwise every interval flush would
// stall the executor's Append for the disk's sync latency. syncMu
// keeps Rotate/Close from closing the fd mid-fsync; the dirty flag is
// cleared only if nothing was appended during the fsync (bytes written
// after fsync started may not be flushed, so they stay dirty).
func (l *Log) backgroundSync() {
	l.mu.Lock()
	if l.closed || !l.dirty {
		l.mu.Unlock()
		return
	}
	f, wrote := l.f, l.bytes
	l.mu.Unlock()

	l.syncMu.Lock()
	err := f.Sync()
	l.syncMu.Unlock()
	if err != nil {
		// Leave dirty set; an inline sync (Rotate/Close/Sync) will retry
		// and surface the error to a caller that can act on it.
		return
	}

	l.mu.Lock()
	if l.f == f && l.bytes == wrote {
		l.dirty = false
	}
	l.fsyncs++
	if l.met != nil {
		l.met.fsyncs.Inc()
	}
	l.publish()
	l.mu.Unlock()
}

// Rotate syncs and closes the open segment and starts a new one at
// the next sequence number. Called by the checkpointer so that fully
// covered segments become prunable files.
func (l *Log) Rotate() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return fmt.Errorf("wal: log closed")
	}
	if err := l.syncLocked(); err != nil {
		return err
	}
	l.syncMu.Lock()
	cerr := l.f.Close()
	l.syncMu.Unlock()
	if cerr != nil {
		return cerr
	}
	err := l.openSegmentLocked()
	if l.met != nil && err == nil {
		l.met.rotations.Inc()
	}
	l.publish()
	return err
}

// PruneThrough deletes segment files whose every record has sequence
// number <= seq. The open segment is never deleted.
func (l *Log) PruneThrough(seq uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	segs, err := listSegments(l.dir)
	if err != nil {
		return err
	}
	removed := 0
	for i := 0; i+1 < len(segs); i++ {
		// Segment i covers [segs[i], segs[i+1]-1].
		if segs[i+1] > seq+1 || segs[i] == l.segStart {
			continue
		}
		if err := os.Remove(segmentPath(l.dir, segs[i])); err != nil {
			return err
		}
		removed++
	}
	if removed > 0 {
		l.segCount -= removed
		if err := syncDir(l.dir); err != nil {
			return err
		}
		if l.met != nil {
			l.met.pruned.Add(uint64(removed))
		}
	}
	l.publish()
	return nil
}

// Stats returns a snapshot of cumulative log activity.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return Stats{
		LastSeq:  l.nextSeq - 1,
		Appends:  l.appends,
		Bytes:    l.bytes,
		Fsyncs:   l.fsyncs,
		Segments: l.segCount,
	}
}

// Dir returns the log's directory.
func (l *Log) Dir() string { return l.dir }

// Close flushes, fsyncs, and closes the open segment. Safe to call
// twice.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	close(l.stop)
	l.mu.Unlock()
	l.tickerWG.Wait()

	l.mu.Lock()
	defer l.mu.Unlock()
	l.closed = true
	err := l.syncLocked()
	l.syncMu.Lock()
	cerr := l.f.Close()
	l.syncMu.Unlock()
	if err == nil {
		err = cerr
	}
	l.publish()
	return err
}

// publish refreshes the gauge instruments (counters are incremented
// at their event sites). Caller holds l.mu.
func (l *Log) publish() {
	if l.met == nil {
		return
	}
	l.met.lastSeq.Set(float64(l.nextSeq - 1))
	l.met.segments.Set(float64(l.segCount))
}

// syncDir fsyncs a directory so that entry creation/removal is
// durable (a no-op on filesystems that reject directory fsync).
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		// Some filesystems (and some CI sandboxes) refuse directory
		// fsync; entry durability is best-effort there.
		return nil
	}
	return nil
}
