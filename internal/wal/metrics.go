package wal

import "github.com/pimlab/pimtrie/internal/metrics"

// walMetrics is the pimtrie_wal_* instrument set. Counters are
// incremented at the event sites; the gauges are refreshed from the
// Log's internal tallies after every state change.
type walMetrics struct {
	appends   *metrics.Counter
	bytes     *metrics.Counter
	fsyncs    *metrics.Counter
	rotations *metrics.Counter
	pruned    *metrics.Counter
	lastSeq   *metrics.Gauge
	segments  *metrics.Gauge
}

func newWALMetrics(reg *metrics.Registry, base []metrics.Label) *walMetrics {
	lbl := func() []metrics.Label { return append([]metrics.Label(nil), base...) }
	return &walMetrics{
		appends:   reg.Counter("pimtrie_wal_appends_total", "write-epoch records appended to the WAL", lbl()...),
		bytes:     reg.Counter("pimtrie_wal_appended_bytes_total", "bytes written to WAL segments (frames + headers)", lbl()...),
		fsyncs:    reg.Counter("pimtrie_wal_fsyncs_total", "fsync(2) calls issued on WAL segments", lbl()...),
		rotations: reg.Counter("pimtrie_wal_rotations_total", "segment rotations (one per checkpoint)", lbl()...),
		pruned:    reg.Counter("pimtrie_wal_segments_pruned_total", "segment files deleted after being covered by a checkpoint", lbl()...),
		lastSeq:   reg.Gauge("pimtrie_wal_last_seq", "highest epoch sequence number assigned by the log", lbl()...),
		segments:  reg.Gauge("pimtrie_wal_segments", "WAL segment files currently on disk", lbl()...),
	}
}
