// Package wal is the durability layer under the serve scheduler: an
// append-only write-ahead log of committed write epochs plus periodic
// full-state checkpoints, with a recovery routine that folds the two
// back into the key/value state the index held at crash time.
//
// The unit of logging is the serve layer's *write epoch* — the epoch
// scheduler already serializes writes into maximal same-op runs, so
// one WAL record carries one epoch's op, keys, and (for inserts)
// values, stamped with a monotonically increasing sequence number.
// Records are CRC-framed; a torn final record (the normal result of
// killing a process mid-append) is detected and dropped during
// recovery, which matters because an epoch is only acknowledged to
// clients *after* its record reaches the log.
//
// The package depends only on bitstr and metrics so that core, serve,
// and command binaries can all layer on top of it.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"

	"github.com/pimlab/pimtrie/internal/bitstr"
)

// Epoch ops. A record holds exactly one committed write epoch, and an
// epoch is a maximal same-op run, so one op byte covers all keys.
const (
	OpInsert uint8 = 0
	OpDelete uint8 = 1
)

// Epoch is one decoded WAL record: a committed write epoch.
type Epoch struct {
	Seq    uint64
	Op     uint8
	Keys   []bitstr.String
	Values []uint64 // parallel to Keys for OpInsert; nil for OpDelete
}

// Frame layout (little-endian):
//
//	u32 payload length | u32 crc32(payload) | payload
//
// Payload:
//
//	u64 seq | u8 op | u32 nkeys | nkeys × key | [nkeys × u64 value]
//
// Key: uvarint bit-length followed by ceil(bits/8) bytes, MSB-first
// within each byte (bitstr.Bytes / bitstr.FromBytes).
const frameHeaderSize = 8

// maxPayload bounds a frame's declared payload size so that a
// corrupted length field cannot drive a giant allocation; anything
// larger is treated as a torn/corrupt record.
const maxPayload = 1 << 30

var errBadRecord = errors.New("wal: bad record")

// appendKey encodes one key: uvarint bit-length + packed bytes.
func appendKey(buf []byte, k bitstr.String) []byte {
	buf = binary.AppendUvarint(buf, uint64(k.Len()))
	return append(buf, k.Bytes()...)
}

// decodeKey decodes one key starting at off, returning the new offset.
func decodeKey(p []byte, off int) (bitstr.String, int, error) {
	bits, n := binary.Uvarint(p[off:])
	if n <= 0 || bits > maxPayload {
		return bitstr.String{}, 0, errBadRecord
	}
	off += n
	nb := (int(bits) + 7) / 8
	if off+nb > len(p) {
		return bitstr.String{}, 0, errBadRecord
	}
	k := bitstr.FromBytes(p[off : off+nb]).Prefix(int(bits))
	return k, off + nb, nil
}

// appendPayload encodes an epoch record payload into buf.
func appendPayload(buf []byte, seq uint64, op uint8, keys []bitstr.String, values []uint64) ([]byte, error) {
	if op == OpInsert && len(values) != len(keys) {
		return nil, fmt.Errorf("wal: %d keys but %d values", len(keys), len(values))
	}
	buf = binary.LittleEndian.AppendUint64(buf, seq)
	buf = append(buf, op)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(keys)))
	for _, k := range keys {
		buf = appendKey(buf, k)
	}
	if op == OpInsert {
		for _, v := range values {
			buf = binary.LittleEndian.AppendUint64(buf, v)
		}
	}
	return buf, nil
}

// decodePayload decodes an epoch record payload.
func decodePayload(p []byte) (Epoch, error) {
	var e Epoch
	if len(p) < 13 {
		return e, errBadRecord
	}
	e.Seq = binary.LittleEndian.Uint64(p)
	e.Op = p[8]
	if e.Op != OpInsert && e.Op != OpDelete {
		return e, errBadRecord
	}
	nkeys := int(binary.LittleEndian.Uint32(p[9:]))
	if nkeys < 0 || nkeys > maxPayload {
		return e, errBadRecord
	}
	off := 13
	e.Keys = make([]bitstr.String, nkeys)
	for i := range e.Keys {
		var err error
		e.Keys[i], off, err = decodeKey(p, off)
		if err != nil {
			return e, err
		}
	}
	if e.Op == OpInsert {
		if off+8*nkeys > len(p) {
			return e, errBadRecord
		}
		e.Values = make([]uint64, nkeys)
		for i := range e.Values {
			e.Values[i] = binary.LittleEndian.Uint64(p[off:])
			off += 8
		}
	}
	if off != len(p) {
		return e, errBadRecord
	}
	return e, nil
}
