package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"

	"github.com/pimlab/pimtrie/internal/bitstr"
)

// RecoveryInfo is everything Recover extracts from a durability
// directory: the newest valid checkpoint's contents plus the ordered
// WAL tail to replay on top of it.
type RecoveryInfo struct {
	CheckpointSeq uint64          // seq covered by the checkpoint; 0 if none
	Keys          []bitstr.String // checkpoint key/value payload
	Values        []uint64
	Epochs        []Epoch // replay tail, seq ascending, all > CheckpointSeq
	LastSeq       uint64  // highest sequence recovered; resume logging at LastSeq+1
	TornTail      bool    // the final record was torn/truncated and dropped
	Segments      int     // segment files scanned
}

// Recover reads dir and reconstructs the durable state: the newest
// checkpoint that passes its CRC, then every WAL record after it in
// sequence order. A torn or corrupt record is tolerated only where a
// crash can produce one — at the tail of the final segment, or at the
// tail of an earlier segment whose successor re-issues the expected
// sequence number (the post-crash log reuses the torn, never-acked
// seq). Corruption anywhere else is an error.
//
// An empty or missing dir yields a zero RecoveryInfo and no error: a
// fresh start.
func Recover(dir string) (*RecoveryInfo, error) {
	info := &RecoveryInfo{}
	if _, err := os.Stat(dir); os.IsNotExist(err) {
		return info, nil
	}
	ckpts, err := listCheckpoints(dir)
	if err != nil {
		return nil, err
	}
	// Newest checkpoint that verifies wins; older ones are fallback
	// against a corrupted file (rename makes that unlikely, but the
	// log tail covers everything after the older checkpoint anyway
	// as long as its segments have not been pruned).
	for i := len(ckpts) - 1; i >= 0; i-- {
		seq, keys, values, cerr := readCheckpoint(checkpointPath(dir, ckpts[i]))
		if cerr != nil {
			continue
		}
		info.CheckpointSeq = seq
		info.Keys = keys
		info.Values = values
		break
	}
	info.LastSeq = info.CheckpointSeq

	segs, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	expected := info.CheckpointSeq + 1
	for i, first := range segs {
		last := i == len(segs)-1
		// Skip segments fully covered by the checkpoint: everything
		// in [first, nextFirst-1] is <= CheckpointSeq.
		if !last && segs[i+1] <= expected {
			continue
		}
		info.Segments++
		epochs, torn, serr := scanSegment(segmentPath(dir, first), first, info.CheckpointSeq, &expected)
		if serr != nil {
			return nil, serr
		}
		info.Epochs = append(info.Epochs, epochs...)
		if torn {
			// A torn tail mid-log is legal only if the next segment
			// resumes at exactly the sequence the torn record would
			// have carried — i.e. the log was reopened after the
			// crash that tore it.
			if !last && segs[i+1] != expected {
				return nil, fmt.Errorf("wal: segment %016x has a torn tail but successor starts at %016x, want %016x",
					first, segs[i+1], expected)
			}
			if last {
				info.TornTail = true
			}
		}
	}
	if n := len(info.Epochs); n > 0 {
		info.LastSeq = info.Epochs[n-1].Seq
	}
	return info, nil
}

// scanSegment decodes one segment file. Records with seq <= ckptSeq
// are skipped (covered by the checkpoint); every other record must
// carry *expected, which is advanced per record. Returns torn=true if
// the segment ends in a partial or corrupt record instead of a clean
// EOF.
func scanSegment(path string, first, ckptSeq uint64, expected *uint64) (epochs []Epoch, torn bool, err error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, false, err
	}
	if len(raw) < segHdrLen {
		// A crash immediately after segment creation can leave a
		// short header; treat as an empty, torn segment.
		return nil, true, nil
	}
	if string(raw[:8]) != segMagic {
		return nil, false, fmt.Errorf("wal: segment %s: bad magic", path)
	}
	if got := binary.LittleEndian.Uint64(raw[8:]); got != first {
		return nil, false, fmt.Errorf("wal: segment %s: header seq %016x does not match name", path, got)
	}
	off := segHdrLen
	for off < len(raw) {
		if off+frameHeaderSize > len(raw) {
			return epochs, true, nil // partial frame header
		}
		plen := int(binary.LittleEndian.Uint32(raw[off:]))
		crc := binary.LittleEndian.Uint32(raw[off+4:])
		if plen <= 0 || plen > maxPayload || off+frameHeaderSize+plen > len(raw) {
			return epochs, true, nil // torn or garbage length
		}
		payload := raw[off+frameHeaderSize : off+frameHeaderSize+plen]
		if crc32.ChecksumIEEE(payload) != crc {
			return epochs, true, nil // corrupt record
		}
		e, derr := decodePayload(payload)
		if derr != nil {
			return epochs, true, nil
		}
		off += frameHeaderSize + plen
		if e.Seq <= ckptSeq {
			continue // covered by the checkpoint
		}
		if e.Seq != *expected {
			return nil, false, fmt.Errorf("wal: segment %s: record seq %d, expected %d", path, e.Seq, *expected)
		}
		epochs = append(epochs, e)
		*expected = e.Seq + 1
	}
	return epochs, false, nil
}
