package wal

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/pimlab/pimtrie/internal/bitstr"
	"github.com/pimlab/pimtrie/internal/metrics"
)

// testKey builds a deterministic variable-length key from an op id.
func testKey(i int) bitstr.String {
	bits := 9 + (i*7)%48
	return bitstr.FromUint64(uint64(i)*0x9e3779b97f4a7c15+1, bits)
}

// appendEpochs logs n epochs (inserts, with every 5th a delete of the
// previous insert's keys) and returns the expected replay tail.
func appendEpochs(t *testing.T, l *Log, n, startID int) []Epoch {
	t.Helper()
	var want []Epoch
	for e := 0; e < n; e++ {
		op := OpInsert
		if e%5 == 4 {
			op = OpDelete
		}
		nk := 1 + e%3
		keys := make([]bitstr.String, nk)
		var values []uint64
		for k := range keys {
			keys[k] = testKey(startID + e*3 + k)
		}
		if op == OpInsert {
			values = make([]uint64, nk)
			for k := range values {
				values[k] = uint64(startID+e*3+k) * 31
			}
		}
		seq, err := l.Append(op, keys, values)
		if err != nil {
			t.Fatalf("append %d: %v", e, err)
		}
		want = append(want, Epoch{Seq: seq, Op: op, Keys: keys, Values: values})
	}
	return want
}

func checkEpochs(t *testing.T, got, want []Epoch) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("recovered %d epochs, want %d", len(got), len(want))
	}
	for i := range want {
		g, w := got[i], want[i]
		if g.Seq != w.Seq || g.Op != w.Op || len(g.Keys) != len(w.Keys) {
			t.Fatalf("epoch %d: got seq=%d op=%d nkeys=%d, want seq=%d op=%d nkeys=%d",
				i, g.Seq, g.Op, len(g.Keys), w.Seq, w.Op, len(w.Keys))
		}
		for k := range w.Keys {
			if !bitstr.Equal(g.Keys[k], w.Keys[k]) {
				t.Fatalf("epoch %d key %d: got %v want %v", i, k, g.Keys[k], w.Keys[k])
			}
			if w.Op == OpInsert && g.Values[k] != w.Values[k] {
				t.Fatalf("epoch %d value %d: got %d want %d", i, k, g.Values[k], w.Values[k])
			}
		}
	}
}

func TestAppendRecoverRoundtrip(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir, Policy: SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	want := appendEpochs(t, l, 23, 0)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	info, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	checkEpochs(t, info.Epochs, want)
	if info.TornTail {
		t.Fatal("clean log reported torn tail")
	}
	if info.LastSeq != want[len(want)-1].Seq {
		t.Fatalf("LastSeq=%d want %d", info.LastSeq, want[len(want)-1].Seq)
	}
}

func TestRecoverEmptyAndMissingDir(t *testing.T) {
	info, err := Recover(filepath.Join(t.TempDir(), "nope"))
	if err != nil || len(info.Epochs) != 0 || info.LastSeq != 0 {
		t.Fatalf("missing dir: info=%+v err=%v", info, err)
	}
	info, err = Recover(t.TempDir())
	if err != nil || len(info.Epochs) != 0 {
		t.Fatalf("empty dir: info=%+v err=%v", info, err)
	}
}

func TestCheckpointCoversPrefix(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir, Policy: SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	want := appendEpochs(t, l, 12, 0)

	// Checkpoint state "as of" epoch 6, rotate so the covered segment
	// becomes prunable, then log more.
	ckptSeq := want[5].Seq
	keys := []bitstr.String{testKey(1000), testKey(1001)}
	values := []uint64{7, 9}
	if _, err := WriteCheckpoint(dir, ckptSeq, 2, func(emit func(bitstr.String, uint64)) {
		for i := range keys {
			emit(keys[i], values[i])
		}
	}); err != nil {
		t.Fatal(err)
	}
	if err := l.Rotate(); err != nil {
		t.Fatal(err)
	}
	if err := l.PruneThrough(ckptSeq); err != nil {
		t.Fatal(err)
	}
	more := appendEpochs(t, l, 4, 100)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	info, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if info.CheckpointSeq != ckptSeq {
		t.Fatalf("CheckpointSeq=%d want %d", info.CheckpointSeq, ckptSeq)
	}
	if len(info.Keys) != 2 || !bitstr.Equal(info.Keys[0], keys[0]) || info.Values[1] != 9 {
		t.Fatalf("checkpoint payload mismatch: %v %v", info.Keys, info.Values)
	}
	// Tail must be exactly epochs 7.. plus the post-rotate appends.
	wantTail := append(append([]Epoch{}, want[6:]...), more...)
	checkEpochs(t, info.Epochs, wantTail)

	// The pre-rotate segment was NOT fully covered (epochs 7-12 live
	// there), so pruning must have kept it.
	segs, _ := listSegments(dir)
	if len(segs) != 2 {
		t.Fatalf("segments=%v want 2 files", segs)
	}
}

func TestPruneRemovesCoveredSegments(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir, Policy: SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	want := appendEpochs(t, l, 6, 0)
	last := want[len(want)-1].Seq
	if err := l.Rotate(); err != nil {
		t.Fatal(err)
	}
	if err := l.PruneThrough(last); err != nil {
		t.Fatal(err)
	}
	segs, _ := listSegments(dir)
	if len(segs) != 1 || segs[0] != last+1 {
		t.Fatalf("segments=%v want only the active one at %d", segs, last+1)
	}
	if st := l.Stats(); st.Segments != 1 {
		t.Fatalf("Stats.Segments=%d want 1", st.Segments)
	}
	l.Close()
}

// TestTornTailFuzz truncates the log at every byte offset inside the
// final record and asserts recovery yields exactly the preceding
// epochs — the acknowledged prefix (satellite: fuzz-style loop).
func TestTornTailFuzz(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir, Policy: SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	want := appendEpochs(t, l, 7, 0)
	seg := segmentPath(dir, 1)
	fi, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	sizeBefore := fi.Size()
	final := appendEpochs(t, l, 1, 500)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(raw)) <= sizeBefore {
		t.Fatalf("final record added no bytes (%d <= %d)", len(raw), sizeBefore)
	}

	for cut := sizeBefore; cut <= int64(len(raw)); cut++ {
		tdir := t.TempDir()
		if err := os.WriteFile(filepath.Join(tdir, filepath.Base(seg)), raw[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		info, err := Recover(tdir)
		if err != nil {
			t.Fatalf("cut=%d: %v", cut, err)
		}
		switch {
		case cut == int64(len(raw)): // untruncated control
			checkEpochs(t, info.Epochs, append(append([]Epoch{}, want...), final...))
			if info.TornTail {
				t.Fatalf("cut=%d: full log reported torn", cut)
			}
		default:
			checkEpochs(t, info.Epochs, want)
			if torn := cut > sizeBefore; info.TornTail != torn {
				t.Fatalf("cut=%d: TornTail=%v want %v", cut, info.TornTail, torn)
			}
		}
	}

	// A bit flip inside the final record's payload must also drop
	// exactly that record.
	for _, flip := range []int64{sizeBefore + frameHeaderSize, int64(len(raw)) - 1} {
		tdir := t.TempDir()
		mut := append([]byte{}, raw...)
		mut[flip] ^= 0x40
		if err := os.WriteFile(filepath.Join(tdir, filepath.Base(seg)), mut, 0o644); err != nil {
			t.Fatal(err)
		}
		info, err := Recover(tdir)
		if err != nil {
			t.Fatalf("flip=%d: %v", flip, err)
		}
		checkEpochs(t, info.Epochs, want)
		if !info.TornTail {
			t.Fatalf("flip=%d: corrupt final record not reported torn", flip)
		}
	}
}

// TestReopenAfterTornTail exercises the crash-reopen protocol: the
// new log re-issues the torn record's sequence number in a fresh
// segment and recovery stitches the two together.
func TestReopenAfterTornTail(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir, Policy: SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	want := appendEpochs(t, l, 5, 0)
	torn := appendEpochs(t, l, 1, 900)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Tear the final record.
	seg := segmentPath(dir, 1)
	raw, _ := os.ReadFile(seg)
	if err := os.WriteFile(seg, raw[:len(raw)-3], 0o644); err != nil {
		t.Fatal(err)
	}

	info, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	checkEpochs(t, info.Epochs, want)
	if !info.TornTail || info.LastSeq != want[len(want)-1].Seq {
		t.Fatalf("info=%+v", info)
	}

	// Reopen where recovery left off: the torn seq is re-assigned.
	l2, err := Open(Options{Dir: dir, Policy: SyncNone, NextSeq: info.LastSeq + 1})
	if err != nil {
		t.Fatal(err)
	}
	more := appendEpochs(t, l2, 3, 200)
	if more[0].Seq != torn[0].Seq {
		t.Fatalf("reopened log assigned seq %d, want reuse of torn seq %d", more[0].Seq, torn[0].Seq)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}

	info2, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	checkEpochs(t, info2.Epochs, append(append([]Epoch{}, want...), more...))
	if info2.TornTail {
		t.Fatal("stitched log reported torn tail")
	}
}

func TestSyncIntervalAndMetrics(t *testing.T) {
	dir := t.TempDir()
	reg := metrics.NewRegistry()
	l, err := Open(Options{
		Dir: dir, Policy: SyncInterval, Interval: time.Millisecond,
		Metrics: reg, MetricLabels: []metrics.Label{metrics.L("dirrole", "test")},
	})
	if err != nil {
		t.Fatal(err)
	}
	appendEpochs(t, l, 8, 0)
	deadline := time.Now().Add(2 * time.Second)
	for {
		if l.Stats().Fsyncs > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("interval policy never fsynced")
		}
		time.Sleep(time.Millisecond)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	st := l.Stats()
	if st.Appends != 8 || st.LastSeq != 8 || st.Bytes == 0 {
		t.Fatalf("stats=%+v", st)
	}
}

func TestPruneCheckpoints(t *testing.T) {
	dir := t.TempDir()
	emit := func(func(bitstr.String, uint64)) {}
	for _, seq := range []uint64{3, 7, 12} {
		if _, err := WriteCheckpoint(dir, seq, 0, emit); err != nil {
			t.Fatal(err)
		}
	}
	if err := PruneCheckpoints(dir, 2); err != nil {
		t.Fatal(err)
	}
	seqs, _ := listCheckpoints(dir)
	if len(seqs) != 2 || seqs[0] != 7 || seqs[1] != 12 {
		t.Fatalf("checkpoints=%v want [7 12]", seqs)
	}
}

func TestCorruptCheckpointFallsBack(t *testing.T) {
	dir := t.TempDir()
	kv := func(k bitstr.String, v uint64) func(func(bitstr.String, uint64)) {
		return func(emit func(bitstr.String, uint64)) { emit(k, v) }
	}
	if _, err := WriteCheckpoint(dir, 4, 1, kv(testKey(1), 11)); err != nil {
		t.Fatal(err)
	}
	if _, err := WriteCheckpoint(dir, 9, 1, kv(testKey(2), 22)); err != nil {
		t.Fatal(err)
	}
	// Corrupt the newer checkpoint; recovery must fall back to seq 4.
	path := checkpointPath(dir, 9)
	raw, _ := os.ReadFile(path)
	raw[len(raw)/2] ^= 0xff
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	info, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if info.CheckpointSeq != 4 || len(info.Keys) != 1 || info.Values[0] != 11 {
		t.Fatalf("info=%+v", info)
	}
}
