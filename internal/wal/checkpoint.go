package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"github.com/pimlab/pimtrie/internal/bitstr"
)

// Checkpoint files serialize the full key/value state as of a WAL
// sequence number, so recovery replays only the log tail after the
// newest checkpoint. File layout (little-endian):
//
//	magic "PIMCKP1\n" | u64 seq | u64 nkeys | nkeys × (key, u64 value) | u32 crc
//
// where the CRC covers everything before it (magic included) and keys
// use the WAL key codec. The file is written to a temp name, fsynced,
// and renamed into place, so a crash mid-checkpoint leaves the
// previous checkpoint intact and at worst a stray temp file.
const (
	ckptMagic  = "PIMCKP1\n"
	ckptPrefix = "ckpt-"
	ckptSuffix = ".ck"
)

var errBadCheckpoint = errors.New("wal: bad checkpoint")

func checkpointPath(dir string, seq uint64) string {
	return filepath.Join(dir, fmt.Sprintf("%s%016x%s", ckptPrefix, seq, ckptSuffix))
}

func parseCheckpointName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, ckptPrefix) || !strings.HasSuffix(name, ckptSuffix) {
		return 0, false
	}
	mid := name[len(ckptPrefix) : len(name)-len(ckptSuffix)]
	seq, err := strconv.ParseUint(mid, 16, 64)
	if err != nil {
		return 0, false
	}
	return seq, true
}

// listCheckpoints returns the seq of every checkpoint file in dir,
// ascending.
func listCheckpoints(dir string) ([]uint64, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var seqs []uint64
	for _, e := range ents {
		if seq, ok := parseCheckpointName(e.Name()); ok {
			seqs = append(seqs, seq)
		}
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	return seqs, nil
}

// crcWriter streams a CRC32 over everything written through it.
type crcWriter struct {
	w   *bufio.Writer
	crc uint32
	n   int64
}

func (c *crcWriter) Write(p []byte) (int, error) {
	c.crc = crc32.Update(c.crc, crc32.IEEETable, p)
	c.n += int64(len(p))
	return c.w.Write(p)
}

// WriteCheckpoint atomically writes the checkpoint for seq from an
// iterator over n key/value pairs (e.g. trie.Flat.WalkKeys on a
// frozen snapshot). Returns the file size.
func WriteCheckpoint(dir string, seq uint64, n int, walk func(emit func(bitstr.String, uint64))) (int64, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return 0, err
	}
	final := checkpointPath(dir, seq)
	tmp := final + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return 0, err
	}
	cw := &crcWriter{w: bufio.NewWriterSize(f, 1<<16)}
	var hdr [24]byte
	copy(hdr[:], ckptMagic)
	binary.LittleEndian.PutUint64(hdr[8:], seq)
	binary.LittleEndian.PutUint64(hdr[16:], uint64(n))
	if _, err := cw.Write(hdr[:]); err != nil {
		f.Close()
		os.Remove(tmp)
		return 0, err
	}
	var werr error
	wrote := 0
	scratch := make([]byte, 0, 64)
	walk(func(k bitstr.String, v uint64) {
		if werr != nil {
			return
		}
		scratch = appendKey(scratch[:0], k)
		scratch = binary.LittleEndian.AppendUint64(scratch, v)
		_, werr = cw.Write(scratch)
		wrote++
	})
	if werr == nil && wrote != n {
		werr = fmt.Errorf("wal: checkpoint iterator yielded %d pairs, expected %d", wrote, n)
	}
	if werr == nil {
		var tail [4]byte
		binary.LittleEndian.PutUint32(tail[:], cw.crc)
		_, werr = cw.w.Write(tail[:]) // the CRC itself is not CRC'd
	}
	if werr == nil {
		werr = cw.w.Flush()
	}
	if werr == nil {
		werr = f.Sync()
	}
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		os.Remove(tmp)
		return 0, werr
	}
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return 0, err
	}
	if err := syncDir(dir); err != nil {
		return 0, err
	}
	return cw.n + 4, nil
}

// readCheckpoint loads and verifies one checkpoint file.
func readCheckpoint(path string) (seq uint64, keys []bitstr.String, values []uint64, err error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return 0, nil, nil, err
	}
	if len(raw) < 28 || string(raw[:8]) != ckptMagic {
		return 0, nil, nil, errBadCheckpoint
	}
	body, tail := raw[:len(raw)-4], raw[len(raw)-4:]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(tail) {
		return 0, nil, nil, errBadCheckpoint
	}
	seq = binary.LittleEndian.Uint64(body[8:])
	n := binary.LittleEndian.Uint64(body[16:])
	if n > maxPayload {
		return 0, nil, nil, errBadCheckpoint
	}
	keys = make([]bitstr.String, 0, n)
	values = make([]uint64, 0, n)
	off := 24
	for i := uint64(0); i < n; i++ {
		var k bitstr.String
		k, off, err = decodeKey(body, off)
		if err != nil {
			return 0, nil, nil, errBadCheckpoint
		}
		if off+8 > len(body) {
			return 0, nil, nil, errBadCheckpoint
		}
		keys = append(keys, k)
		values = append(values, binary.LittleEndian.Uint64(body[off:]))
		off += 8
	}
	if off != len(body) {
		return 0, nil, nil, errBadCheckpoint
	}
	return seq, keys, values, nil
}

// PruneCheckpoints removes all but the newest keep checkpoint files.
func PruneCheckpoints(dir string, keep int) error {
	if keep < 1 {
		keep = 1
	}
	seqs, err := listCheckpoints(dir)
	if err != nil {
		return err
	}
	if len(seqs) <= keep {
		return nil
	}
	for _, seq := range seqs[:len(seqs)-keep] {
		if err := os.Remove(checkpointPath(dir, seq)); err != nil {
			return err
		}
	}
	return syncDir(dir)
}
