// Package restart is the crash-restart chaos harness for the
// durability layer. A parent process repeatedly spawns a child serving
// process, lets it run for a random interval, SIGKILLs it at whatever
// point it happens to be in — mid-epoch, mid-append, mid-checkpoint —
// and then verifies that recovery from the write-ahead log yields a
// state *bit-identical* to a synchronous oracle: every acknowledged
// operation present with its exact value, nothing invented, and at
// most the single in-flight unacknowledged operation either way.
//
// The protocol that makes exact verification possible:
//
//   - Operations are a pure function of (seed, index) — OpAt — so the
//     parent and child agree on the workload without shipping it.
//   - The child submits strictly sequentially and journals its progress
//     in an O_APPEND ops log: an "I i" line lands before op i is
//     submitted, an "A i" line after the server acknowledges it. SIGKILL
//     preserves the OS page cache, so these plain write(2)s — like the
//     WAL's own — survive the kill.
//   - Sequential submission means at most one op is in flight at the
//     kill, so the recovered state must equal oracle(ops[:m]) for
//     m ∈ {acks, acks+1} — no search over interleavings.
//   - After each kill the parent resolves which m it was and records it
//     (the resolved file); the next child resumes at exactly op m, so
//     the oracle prefix stays exact across any number of crashes.
//
// Both the repo's crash-restart test and pimbench -restart-chaos drive
// this package; they differ only in how the child process is spawned.
package restart

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"github.com/pimlab/pimtrie"
	"github.com/pimlab/pimtrie/internal/bitstr"
	"github.com/pimlab/pimtrie/internal/serve"
	"github.com/pimlab/pimtrie/internal/wal"
)

const (
	opsFile      = "ops.log"     // child journal: "I i" / "A i" lines
	resolvedFile = "resolved"    // parent verdict: ops 0..R-1 are canonical
	errFile      = "child-error" // child writes its failure here before exiting
	walSubdir    = "wal"         // the WAL + checkpoints live below the harness dir

	// childCheckpointEvery keeps checkpoints in the blast radius: with
	// epochs this small a multi-round chaos run crosses several
	// checkpoint+prune cycles, so kills land inside them too.
	childCheckpointEvery = 16
)

func mix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// keyOf is the key namespace of a chaos run: op i's insert key. Lengths
// vary 16..55 bits so recovery crosses the trie's variable-length
// paths; occasional collisions (overwrites) are intended.
func keyOf(seed uint64, i int) bitstr.String {
	h := mix(seed ^ mix(uint64(i)))
	return bitstr.FromUint64(h, 16+int(h>>58)%40)
}

// OpAt returns chaos op i: mostly inserts of fresh keys, every fifth
// op a delete aimed at some earlier op's key (which may or may not be
// present — the oracle applies the same rule, so either way is exact).
func OpAt(seed uint64, i int) (op uint8, key bitstr.String, value uint64) {
	h := mix(seed ^ mix(uint64(i)*2+1))
	if i >= 5 && i%5 == 4 {
		return wal.OpDelete, keyOf(seed, int(h%uint64(i))), 0
	}
	return wal.OpInsert, keyOf(seed, i), h
}

// applyOp folds op i into an oracle state.
func applyOp(state map[string]uint64, seed uint64, i int) {
	op, k, v := OpAt(seed, i)
	if op == wal.OpInsert {
		state[k.String()] = v
	} else {
		delete(state, k.String())
	}
}

// Oracle returns the exact dictionary contents after ops 0..n-1.
func Oracle(seed uint64, n int) map[string]uint64 {
	state := map[string]uint64{}
	for i := 0; i < n; i++ {
		applyOp(state, seed, i)
	}
	return state
}

func dump(snap *pimtrie.Snapshot) map[string]uint64 {
	out := map[string]uint64{}
	snap.WalkKeys(func(k bitstr.String, v uint64) { out[k.String()] = v })
	return out
}

// diffStates renders a compact mismatch report for error messages.
func diffStates(got, want map[string]uint64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "recovered %d keys, oracle %d", len(got), len(want))
	shown := 0
	for k, v := range want {
		if gv, ok := got[k]; !ok || gv != v {
			fmt.Fprintf(&b, "; key %s: got (%d,%v) want %d", k, gv, ok, v)
			if shown++; shown == 3 {
				break
			}
		}
	}
	for k, v := range got {
		if _, ok := want[k]; !ok {
			fmt.Fprintf(&b, "; extra key %s=%d", k, v)
			if shown++; shown >= 6 {
				break
			}
		}
	}
	return b.String()
}

func readResolved(dir string) (int, error) {
	b, err := os.ReadFile(filepath.Join(dir, resolvedFile))
	if errors.Is(err, os.ErrNotExist) {
		return 0, nil
	}
	if err != nil {
		return 0, err
	}
	n, err := strconv.Atoi(strings.TrimSpace(string(b)))
	if err != nil || n < 0 {
		return 0, fmt.Errorf("restart: corrupt resolved file %q", b)
	}
	return n, nil
}

func writeResolved(dir string, n int) error {
	tmp := filepath.Join(dir, resolvedFile+".tmp")
	if err := os.WriteFile(tmp, []byte(strconv.Itoa(n)), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, filepath.Join(dir, resolvedFile))
}

// readOpsLog returns the largest journaled intent and ack indices
// (-1 when none). The journal only grows, so maxima are global.
func readOpsLog(dir string) (maxIntent, maxAck int, err error) {
	maxIntent, maxAck = -1, -1
	b, err := os.ReadFile(filepath.Join(dir, opsFile))
	if errors.Is(err, os.ErrNotExist) {
		return maxIntent, maxAck, nil
	}
	if err != nil {
		return 0, 0, err
	}
	for _, line := range strings.Split(string(b), "\n") {
		// The final line can itself be torn by the kill; ignore anything
		// unparsable — a torn "I i" just means op i never got submitted.
		var tag byte
		var i int
		if n, _ := fmt.Sscanf(line, "%c %d", &tag, &i); n != 2 {
			continue
		}
		switch tag {
		case 'I':
			if i > maxIntent {
				maxIntent = i
			}
		case 'A':
			if i > maxAck {
				maxAck = i
			}
		}
	}
	return maxIntent, maxAck, nil
}

// RunChild is the chaos child body. It recovers the durable server
// from dir (verifying the recovered state against the oracle prefix
// the parent resolved), then submits ops sequentially forever —
// journaling each intent before submit and each ack after — until the
// parent kills it. On any error it writes the child-error marker so
// the parent can distinguish a harness bug from a chaos kill.
func RunChild(dir string, seed uint64, policy wal.SyncPolicy, newIndex func() *pimtrie.Index) error {
	fail := func(err error) error {
		os.WriteFile(filepath.Join(dir, errFile), []byte(err.Error()), 0o644)
		return err
	}
	start, err := readResolved(dir)
	if err != nil {
		return fail(err)
	}
	srv, _, err := serve.OpenDurable(filepath.Join(dir, walSubdir),
		wal.Options{Policy: policy, Interval: 2 * time.Millisecond},
		serve.Options{Durable: &serve.Durable{CheckpointEvery: childCheckpointEvery}},
		newIndex)
	if err != nil {
		return fail(fmt.Errorf("restart child: recover: %w", err))
	}
	// Bit-identical check on the child side too: recovery must
	// reproduce exactly the resolved oracle prefix.
	if got, want := dump(srv.Snapshot()), Oracle(seed, start); !statesEqual(got, want) {
		return fail(fmt.Errorf("restart child: recovered state != oracle(%d): %s", start, diffStates(got, want)))
	}
	j, err := os.OpenFile(filepath.Join(dir, opsFile), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fail(err)
	}
	for i := start; ; i++ {
		op, k, v := OpAt(seed, i)
		if _, err := fmt.Fprintf(j, "I %d\n", i); err != nil {
			return fail(err)
		}
		switch op {
		case wal.OpInsert:
			err = srv.InsertAsync([]serve.Key{k}, []uint64{v}).Wait()
		case wal.OpDelete:
			_, err = srv.DeleteAsync(k).Wait()
		}
		if err != nil {
			return fail(fmt.Errorf("restart child: op %d: %w", i, err))
		}
		if _, err := fmt.Fprintf(j, "A %d\n", i); err != nil {
			return fail(err)
		}
	}
}

func statesEqual(a, b map[string]uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if bv, ok := b[k]; !ok || bv != v {
			return false
		}
	}
	return true
}

// VerifyRound runs after a kill: recover the WAL directory into a
// fresh index and require the result be bit-identical to the oracle at
// one of the (at most two) prefixes the journal permits — all acked
// ops, plus optionally the single in-flight one. The winning prefix
// becomes the resolved count the next child resumes from.
func VerifyRound(dir string, seed uint64, newIndex func() *pimtrie.Index) (resolved int, err error) {
	maxIntent, maxAck, err := readOpsLog(dir)
	if err != nil {
		return 0, err
	}
	prior, err := readResolved(dir)
	if err != nil {
		return 0, err
	}
	if maxIntent > maxAck+1 {
		return 0, fmt.Errorf("restart: journal shows %d unacked intents; child must submit sequentially", maxIntent-maxAck)
	}
	lo := maxAck + 1 // every acked op MUST be present
	if lo < prior {  // resolution never goes backward
		lo = prior
	}
	hi := maxIntent + 1 // beyond the last intent nothing can exist
	if hi < lo {
		return 0, fmt.Errorf("restart: journal regressed: maxIntent %d < resolved floor %d", maxIntent, lo)
	}

	info, err := wal.Recover(filepath.Join(dir, walSubdir))
	if err != nil {
		return 0, fmt.Errorf("restart: recover: %w", err)
	}
	ix := newIndex()
	if err := serve.Restore(ix, info); err != nil {
		return 0, fmt.Errorf("restart: replay: %w", err)
	}
	got := dump(ix.Snapshot())

	oracle := Oracle(seed, lo)
	for m := lo; m <= hi; m++ {
		if m > lo {
			applyOp(oracle, seed, m-1)
		}
		if statesEqual(got, oracle) {
			if err := writeResolved(dir, m); err != nil {
				return 0, err
			}
			return m, nil
		}
	}
	return 0, fmt.Errorf("restart: recovered state matches no legal prefix in [%d,%d]: %s",
		lo, hi, diffStates(got, Oracle(seed, hi)))
}

// Config parameterizes a parent chaos run.
type Config struct {
	// Dir is the harness directory (journal, resolved file, WAL).
	Dir string
	// Seed fixes the op sequence and the kill schedule.
	Seed uint64
	// Rounds is the number of spawn/kill/verify cycles (default 6).
	Rounds int
	// MinRun/MaxRun bound the child's lifetime before the SIGKILL
	// (defaults 80ms/400ms — long enough to get past process startup
	// sometimes, short enough to land kills inside it other times).
	MinRun, MaxRun time.Duration
	// NewIndex builds the fresh index recovery replays into; must match
	// the child's own constructor.
	NewIndex func() *pimtrie.Index
	// Logf, when set, receives per-round progress lines.
	Logf func(format string, args ...any)
}

// RunParent drives the chaos loop: spawn the child, let it run for a
// random interval, SIGKILL it, verify recovery bit-exactly, repeat.
// spawn must return an unstarted command whose process serves from
// cfg.Dir (RunChild with the same seed and index constructor). It
// returns the final resolved op count — how much acknowledged history
// survived all the kills.
func RunParent(cfg Config, spawn func(dir string) *exec.Cmd) (int, error) {
	if cfg.Rounds <= 0 {
		cfg.Rounds = 6
	}
	if cfg.MinRun <= 0 {
		cfg.MinRun = 80 * time.Millisecond
	}
	if cfg.MaxRun <= cfg.MinRun {
		cfg.MaxRun = cfg.MinRun + 320*time.Millisecond
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	r := rand.New(rand.NewSource(int64(cfg.Seed)))
	resolved, stalls := 0, 0
	for round := 1; round <= cfg.Rounds; round++ {
		cmd := spawn(cfg.Dir)
		var out bytes.Buffer
		if cmd.Stdout == nil {
			cmd.Stdout = &out
		}
		if cmd.Stderr == nil {
			cmd.Stderr = &out
		}
		if err := cmd.Start(); err != nil {
			return 0, fmt.Errorf("restart: round %d: start child: %w", round, err)
		}
		life := cfg.MinRun + time.Duration(r.Int63n(int64(cfg.MaxRun-cfg.MinRun)))
		time.Sleep(life)
		cmd.Process.Kill()
		cmd.Wait() // exit status is the kill; the journal is the truth

		if b, rerr := os.ReadFile(filepath.Join(cfg.Dir, errFile)); rerr == nil {
			return 0, fmt.Errorf("restart: round %d: child failed before the kill: %s", round, b)
		}
		m, err := VerifyRound(cfg.Dir, cfg.Seed, cfg.NewIndex)
		if err != nil {
			return 0, fmt.Errorf("restart: round %d (killed after %v): %w\nchild output:\n%s",
				round, life.Round(time.Millisecond), err, out.String())
		}
		cfg.Logf("restart round %d: killed after %v, %d ops verified bit-identical (+%d)",
			round, life.Round(time.Millisecond), m, m-resolved)
		if m == resolved {
			stalls++
		} else {
			stalls = 0
		}
		resolved = m
		if stalls >= 4 {
			return 0, fmt.Errorf("restart: no progress across %d consecutive rounds — child never serves (last output:\n%s)", stalls, out.String())
		}
	}
	return resolved, nil
}
