package bitstr

import (
	"bytes"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

// refString is a naive reference implementation backed by a plain string
// of '0'/'1' characters, used as the oracle for property tests.
type refString string

func (r refString) toBitstr() String { return MustParse(string(r)) }

func randomRef(r *rand.Rand, maxLen int) refString {
	n := r.Intn(maxLen + 1)
	var b strings.Builder
	for i := 0; i < n; i++ {
		b.WriteByte('0' + byte(r.Intn(2)))
	}
	return refString(b.String())
}

func TestParseRoundTrip(t *testing.T) {
	cases := []string{"", "0", "1", "01", "00001101", strings.Repeat("10", 100)}
	for _, c := range cases {
		s, err := Parse(c)
		if err != nil {
			t.Fatalf("Parse(%q): %v", c, err)
		}
		if s.String() != c {
			t.Errorf("round trip %q -> %q", c, s.String())
		}
		if s.Len() != len(c) {
			t.Errorf("Len(%q) = %d, want %d", c, s.Len(), len(c))
		}
	}
}

func TestParseRejectsBadChars(t *testing.T) {
	for _, bad := range []string{"2", "0a1", "01 ", "x"} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", bad)
		}
	}
}

func TestBitAt(t *testing.T) {
	s := MustParse("0110")
	want := []byte{0, 1, 1, 0}
	for i, w := range want {
		if got := s.BitAt(i); got != w {
			t.Errorf("BitAt(%d) = %d, want %d", i, got, w)
		}
	}
}

func TestBitAtPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("BitAt out of range did not panic")
		}
	}()
	MustParse("01").BitAt(2)
}

func TestSliceAcrossWords(t *testing.T) {
	// Build a 200-bit string and slice every (from, to) pair on a grid.
	r := rand.New(rand.NewSource(1))
	ref := randomRef(r, 0)
	for len(ref) < 200 {
		ref += refString("01101")[:1+r.Intn(4)]
	}
	s := ref.toBitstr()
	for from := 0; from <= s.Len(); from += 7 {
		for to := from; to <= s.Len(); to += 13 {
			got := s.Slice(from, to).String()
			want := string(ref[from:to])
			if got != want {
				t.Fatalf("Slice(%d,%d) = %q, want %q", from, to, got, want)
			}
		}
	}
}

func TestConcatProperty(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 500; i++ {
		a, b := randomRef(r, 150), randomRef(r, 150)
		got := a.toBitstr().Concat(b.toBitstr()).String()
		if got != string(a)+string(b) {
			t.Fatalf("Concat(%q,%q) = %q", a, b, got)
		}
	}
}

func TestSliceConcatInverse(t *testing.T) {
	f := func(bitsSrc []bool, cutSeed uint8) bool {
		b := make([]byte, len(bitsSrc))
		for i, v := range bitsSrc {
			if v {
				b[i] = 1
			}
		}
		s := FromBits(b)
		if s.Len() == 0 {
			return true
		}
		cut := int(cutSeed) % (s.Len() + 1)
		return Equal(s.Prefix(cut).Concat(s.Suffix(cut)), s)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestLCPAgainstReference(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	refLCP := func(a, b refString) int {
		n := 0
		for n < len(a) && n < len(b) && a[n] == b[n] {
			n++
		}
		return n
	}
	for i := 0; i < 1000; i++ {
		a, b := randomRef(r, 300), randomRef(r, 300)
		// Bias towards long shared prefixes half the time.
		if i%2 == 0 {
			pre := randomRef(r, 200)
			a, b = pre+a, pre+b
		}
		if got, want := LCP(a.toBitstr(), b.toBitstr()), refLCP(a, b); got != want {
			t.Fatalf("LCP(%q,%q) = %d, want %d", a, b, got, want)
		}
	}
}

func TestCompareAgainstReference(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	refCompare := func(a, b refString) int {
		// '0' < '1' in ASCII, and Go string comparison puts prefixes first,
		// exactly our convention.
		switch {
		case a < b:
			return -1
		case a > b:
			return 1
		}
		return 0
	}
	for i := 0; i < 2000; i++ {
		a, b := randomRef(r, 100), randomRef(r, 100)
		if i%3 == 0 {
			pre := randomRef(r, 80)
			a, b = pre+a, pre+b
		}
		if i%7 == 0 {
			b = a // force equality and prefix cases
			if len(b) > 0 && r.Intn(2) == 0 {
				b = b[:r.Intn(len(b))]
			}
		}
		if got, want := Compare(a.toBitstr(), b.toBitstr()), refCompare(a, b); got != want {
			t.Fatalf("Compare(%q,%q) = %d, want %d", a, b, got, want)
		}
	}
}

func TestHasPrefix(t *testing.T) {
	s := MustParse("101001")
	for i := 0; i <= s.Len(); i++ {
		if !s.HasPrefix(s.Prefix(i)) {
			t.Errorf("HasPrefix of own prefix length %d = false", i)
		}
	}
	if s.HasPrefix(MustParse("1011")) {
		t.Error("HasPrefix(1011) = true, want false")
	}
	if s.HasPrefix(MustParse("1010011")) {
		t.Error("HasPrefix longer string = true, want false")
	}
}

func TestFromBytesOrderMatchesBytesCompare(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for i := 0; i < 500; i++ {
		a := make([]byte, r.Intn(20))
		b := make([]byte, r.Intn(20))
		r.Read(a)
		r.Read(b)
		got := Compare(FromBytes(a), FromBytes(b))
		want := bytes.Compare(a, b)
		if got != want {
			t.Fatalf("Compare(FromBytes(%x), FromBytes(%x)) = %d, want %d", a, b, got, want)
		}
	}
}

func TestBytesRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	for i := 0; i < 200; i++ {
		b := make([]byte, r.Intn(40))
		r.Read(b)
		if got := FromBytes(b).Bytes(); !bytes.Equal(got, b) {
			t.Fatalf("Bytes round trip: %x -> %x", b, got)
		}
	}
}

func TestFromUint64OrderMatchesIntegerOrder(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 1000; i++ {
		n := 1 + r.Intn(64)
		mask := ^uint64(0)
		if n < 64 {
			mask = (1 << uint(n)) - 1
		}
		a, b := r.Uint64()&mask, r.Uint64()&mask
		got := Compare(FromUint64(a, n), FromUint64(b, n))
		want := 0
		if a < b {
			want = -1
		} else if a > b {
			want = 1
		}
		if got != want {
			t.Fatalf("n=%d a=%d b=%d Compare=%d want %d", n, a, b, got, want)
		}
	}
}

func TestUint64RoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	for i := 0; i < 500; i++ {
		n := 1 + r.Intn(64)
		mask := ^uint64(0)
		if n < 64 {
			mask = (1 << uint(n)) - 1
		}
		v := r.Uint64() & mask
		if got := FromUint64(v, n).Uint64(); got != v {
			t.Fatalf("Uint64 round trip n=%d: %d -> %d", n, v, got)
		}
	}
}

func TestPadTo(t *testing.T) {
	s := MustParse("01")
	if got := s.PadTo(9, 0).String(); got != "010000000" {
		t.Errorf("PadTo(9,0) = %q", got)
	}
	if got := s.PadTo(9, 1).String(); got != "011111111" {
		t.Errorf("PadTo(9,1) = %q", got)
	}
	// Across a word boundary.
	long := MustParse(strings.Repeat("0", 60))
	if got := long.PadTo(130, 1).String(); got != strings.Repeat("0", 60)+strings.Repeat("1", 70) {
		t.Errorf("PadTo across words wrong: %q", got)
	}
	if got := s.PadTo(1, 1); !Equal(got, s) {
		t.Errorf("PadTo shorter changed string: %q", got)
	}
}

func TestAppendBit(t *testing.T) {
	s := Empty
	want := ""
	r := rand.New(rand.NewSource(9))
	for i := 0; i < 200; i++ {
		b := byte(r.Intn(2))
		s = s.AppendBit(b)
		want += string('0' + b)
	}
	if s.String() != want {
		t.Fatalf("AppendBit sequence mismatch")
	}
}

func TestReverse(t *testing.T) {
	s := MustParse("00101")
	if got := s.Reverse().String(); got != "10100" {
		t.Errorf("Reverse = %q", got)
	}
	if got := s.Reverse().Reverse(); !Equal(got, s) {
		t.Errorf("double Reverse != identity")
	}
}

func TestWordsAccounting(t *testing.T) {
	cases := []struct {
		n, words int
	}{{0, 0}, {1, 1}, {63, 1}, {64, 1}, {65, 2}, {128, 2}, {129, 3}}
	for _, c := range cases {
		s := MustParse(strings.Repeat("1", c.n))
		if s.Words() != c.words {
			t.Errorf("Words(len %d) = %d, want %d", c.n, s.Words(), c.words)
		}
		if s.SizeWords() != c.words+1 {
			t.Errorf("SizeWords(len %d) = %d, want %d", c.n, s.SizeWords(), c.words+1)
		}
	}
}

func TestSortMatchesReference(t *testing.T) {
	r := rand.New(rand.NewSource(10))
	for trial := 0; trial < 50; trial++ {
		n := r.Intn(300)
		refs := make([]refString, n)
		for i := range refs {
			refs[i] = randomRef(r, 90)
			if i%4 == 0 && i > 0 {
				refs[i] = refs[i-1] + randomRef(r, 10) // shared prefixes & duplicates
			}
		}
		ss := make([]String, n)
		for i, rs := range refs {
			ss[i] = rs.toBitstr()
		}
		Sort(ss)
		sort.Slice(refs, func(i, j int) bool { return refs[i] < refs[j] })
		for i := range ss {
			if ss[i].String() != string(refs[i]) {
				t.Fatalf("trial %d: Sort mismatch at %d: %q vs %q", trial, i, ss[i], refs[i])
			}
		}
	}
}

func TestSortLongSharedPrefixes(t *testing.T) {
	// Adversarial: many strings sharing a >64-bit prefix, differing only in
	// length — exercises the exhausted-key path of the radix sort.
	base := strings.Repeat("1", 100)
	var ss []String
	var refs []string
	for i := 0; i <= 64; i++ {
		refs = append(refs, base[:30+i])
		ss = append(ss, MustParse(base[:30+i]))
	}
	// And shuffled duplicates.
	ss = append(ss, ss...)
	refs = append(refs, refs...)
	rand.New(rand.NewSource(11)).Shuffle(len(ss), func(i, j int) { ss[i], ss[j] = ss[j], ss[i] })
	Sort(ss)
	sort.Strings(refs)
	for i := range ss {
		if ss[i].String() != refs[i] {
			t.Fatalf("mismatch at %d: %q vs %q", i, ss[i], refs[i])
		}
	}
}

func TestCommonPrefix(t *testing.T) {
	a, b := MustParse("101001"), MustParse("101011")
	if got := CommonPrefix(a, b).String(); got != "1010" {
		t.Errorf("CommonPrefix = %q, want 1010", got)
	}
}

func TestImmutability(t *testing.T) {
	s := MustParse("0101")
	_ = s.Concat(MustParse("1111"))
	_ = s.AppendBit(1)
	_ = s.PadTo(10, 1)
	_ = s.Slice(1, 3)
	if s.String() != "0101" {
		t.Fatalf("receiver mutated: %q", s)
	}
}

func BenchmarkLCPLong(b *testing.B) {
	s := MustParse(strings.Repeat("01", 4096))
	t2 := s.Concat(MustParse("1"))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		LCP(s, t2)
	}
}

func BenchmarkSort1k(b *testing.B) {
	r := rand.New(rand.NewSource(12))
	base := make([]String, 1024)
	for i := range base {
		base[i] = randomRef(r, 256).toBitstr()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cp := make([]String, len(base))
		copy(cp, base)
		Sort(cp)
	}
}

func TestPrefixIndex(t *testing.T) {
	// Round trip: FromUint64(v, bits).PrefixIndex(bits) == v.
	for _, bits := range []int{1, 3, 8, 13} {
		for v := 0; v < 1<<uint(bits); v += 1 + v/7 {
			if got := FromUint64(uint64(v), bits).PrefixIndex(bits); got != v {
				t.Fatalf("PrefixIndex(FromUint64(%d,%d)) = %d", v, bits, got)
			}
		}
	}
	// Short strings pad zeros on the right: "1" at 3 bits indexes 0b100.
	if got := MustParse("1").PrefixIndex(3); got != 4 {
		t.Fatalf("PrefixIndex(1, 3) = %d, want 4", got)
	}
	if got := Empty.PrefixIndex(5); got != 0 {
		t.Fatalf("PrefixIndex(empty, 5) = %d, want 0", got)
	}
	// Longer strings use only their first bits bits.
	if got := MustParse("1100101").PrefixIndex(3); got != 6 {
		t.Fatalf("PrefixIndex(1100101, 3) = %d, want 6", got)
	}
	// Numeric order of indexes agrees with lexicographic key order, and
	// extensions of s land in [idx, idx + 2^(bits-len)).
	r := rand.New(rand.NewSource(9))
	const bits = 6
	for i := 0; i < 200; i++ {
		a := randomRef(r, 1+r.Intn(20)).toBitstr()
		b := randomRef(r, 1+r.Intn(20)).toBitstr()
		ia, ib := a.PrefixIndex(bits), b.PrefixIndex(bits)
		if Compare(a, b) < 0 && ia > ib {
			t.Fatalf("order violated: %v(%d) < %v(%d)", a, ia, b, ib)
		}
		span := 1
		if a.Len() < bits {
			span = 1 << uint(bits-a.Len())
		}
		ext := a.Concat(randomRef(r, r.Intn(16)).toBitstr())
		if ie := ext.PrefixIndex(bits); ie < ia || ie >= ia+span {
			t.Fatalf("extension index %d outside [%d,%d)", ie, ia, ia+span)
		}
	}
}
