package bitstr

import (
	"math/rand"
	"sort"
	"strings"
	"testing"
)

// TestSortSaturationRegression pins the chunkKey saturation bug: the old
// derived key clamped an all-ones reversed chunk (64 one-bits) to
// 0xFF..FE+1, colliding with the genuinely distinct chunk 0xFF..FE
// (63 ones then a zero), so both string families landed in one equal
// band whose recursion moved to the next word without ever re-comparing
// word 0. With 8 copies of each (16 > insertionCutoff) the bands are
// split apart before any full-Compare fallback can repair them, and the
// family that is lexicographically larger at bit 63 came out first.
func TestSortSaturationRegression(t *testing.T) {
	s1 := MustParse(strings.Repeat("1", 64) + "0")       // word 0 all ones
	s2 := MustParse(strings.Repeat("1", 63) + "0" + "1") // differs at bit 63
	if Compare(s2, s1) >= 0 {
		t.Fatal("test precondition: s2 < s1")
	}
	var ss []String
	for i := 0; i < 8; i++ {
		ss = append(ss, s1, s2)
	}
	Sort(ss)
	for i := 0; i < 8; i++ {
		if !Equal(ss[i], s2) {
			t.Fatalf("position %d: got %q, want the smaller string %q", i, ss[i], s2)
		}
	}
	for i := 8; i < 16; i++ {
		if !Equal(ss[i], s1) {
			t.Fatalf("position %d: got %q, want the larger string %q", i, ss[i], s1)
		}
	}
}

// decodeFuzzStrings interprets a fuzz payload as a sequence of
// length-prefixed bit strings: one byte of bit length (0..255, up to
// four words, so saturated and multi-word chunks are reachable)
// followed by ceil(n/8) payload bytes, truncated at end of data.
func decodeFuzzStrings(data []byte) []String {
	var ss []String
	for len(data) > 0 {
		n := int(data[0])
		data = data[1:]
		nb := (n + 7) / 8
		if nb > len(data) {
			nb = len(data)
			n = nb * 8
		}
		ss = append(ss, FromBytes(data[:nb]).Prefix(n))
		data = data[nb:]
	}
	return ss
}

func FuzzSort(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{3, 0xa0, 8, 0x55, 0, 9, 0xff, 0x80})
	// The saturation shape: all-ones word vs 63 ones + 0, repeated.
	sat := []byte{65, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x00,
		65, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xfe, 0x80}
	var rep []byte
	for i := 0; i < 8; i++ {
		rep = append(rep, sat...)
	}
	f.Add(rep)
	f.Fuzz(func(t *testing.T, data []byte) {
		ss := decodeFuzzStrings(data)
		got := make([]String, len(ss))
		copy(got, ss)
		Sort(got)
		want := make([]String, len(ss))
		copy(want, ss)
		sort.Slice(want, func(i, j int) bool { return Compare(want[i], want[j]) < 0 })
		for i := range want {
			if !Equal(got[i], want[i]) {
				t.Fatalf("Sort diverges from reference at %d: %q vs %q", i, got[i], want[i])
			}
		}
	})
}

func TestArgSortMatchesSort(t *testing.T) {
	r := rand.New(rand.NewSource(12))
	for _, procs := range []int{1, 2, 3, 8} {
		for _, n := range []int{0, 1, 13, 500, 6000} {
			keys := make([]String, n)
			for i := range keys {
				keys[i] = randomRef(r, 150).toBitstr()
				if i > 0 && i%5 == 0 {
					keys[i] = keys[i-1] // duplicates
				}
			}
			idx := make([]int, n)
			for i := range idx {
				idx[i] = i
			}
			r.Shuffle(n, func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
			ArgSort(keys, idx, procs)

			want := make([]String, n)
			copy(want, keys)
			Sort(want)
			seen := make([]bool, n)
			for i, j := range idx {
				if j < 0 || j >= n || seen[j] {
					t.Fatalf("procs=%d n=%d: idx is not a permutation", procs, n)
				}
				seen[j] = true
				if !Equal(keys[j], want[i]) {
					t.Fatalf("procs=%d n=%d: rank %d is %q, want %q", procs, n, i, keys[j], want[i])
				}
			}
		}
	}
}

func TestRangeWordMatchesSlice(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	for trial := 0; trial < 2000; trial++ {
		s := randomRef(r, 260).toBitstr()
		if s.Len() == 0 {
			continue
		}
		from := r.Intn(s.Len() + 1)
		max := s.Len() - from
		if max > 64 {
			max = 64
		}
		to := from + r.Intn(max+1)
		sl := s.Slice(from, to)
		var want uint64
		if sl.Len() > 0 {
			want = sl.RawWords()[0]
		}
		if got := s.RangeWord(from, to); got != want {
			t.Fatalf("RangeWord(%d,%d) of %d bits = %#x, want %#x", from, to, s.Len(), got, want)
		}
		if !Equal(FromWord(s.RangeWord(from, to), to-from), sl) {
			t.Fatalf("FromWord(RangeWord(%d,%d)) != Slice", from, to)
		}
	}
	// Boundary shapes: word-aligned, straddling, end-of-string, empty.
	s := MustParse(strings.Repeat("10", 96)) // 192 bits
	for _, c := range [][2]int{{0, 64}, {64, 128}, {128, 192}, {60, 70}, {63, 64}, {64, 65}, {128, 130}, {191, 192}, {192, 192}, {0, 0}, {50, 50}} {
		sl := s.Slice(c[0], c[1])
		var want uint64
		if sl.Len() > 0 {
			want = sl.RawWords()[0]
		}
		if got := s.RangeWord(c[0], c[1]); got != want {
			t.Fatalf("RangeWord%v = %#x, want %#x", c, got, want)
		}
	}
}

func TestLCPRangeMatchesLCP(t *testing.T) {
	r := rand.New(rand.NewSource(14))
	for trial := 0; trial < 2000; trial++ {
		a := randomRef(r, 300).toBitstr()
		b := randomRef(r, 300).toBitstr()
		if trial%3 == 0 { // force long shared runs
			b = a.Prefix(r.Intn(a.Len() + 1)).Concat(b)
		}
		afrom := r.Intn(a.Len() + 1)
		bfrom := r.Intn(b.Len() + 1)
		n := a.Len() - afrom
		if m := b.Len() - bfrom; m < n {
			n = m
		}
		n = r.Intn(n + 1)
		want := LCP(a.Slice(afrom, afrom+n), b.Slice(bfrom, bfrom+n))
		if got := LCPRange(a, afrom, b, bfrom, n); got != want {
			t.Fatalf("LCPRange(%d,%d,n=%d) = %d, want %d", afrom, bfrom, n, got, want)
		}
		if got := EqualRange(a, afrom, b, bfrom, n); got != (want == n) {
			t.Fatalf("EqualRange(%d,%d,n=%d) = %v, want %v", afrom, bfrom, n, got, want == n)
		}
	}
}

// TestUint64MatchesBitReference checks the word-op rewrite of Uint64
// against a bit-by-bit oracle, including strings longer than 64 bits
// (only the first 64 contribute).
func TestUint64MatchesBitReference(t *testing.T) {
	r := rand.New(rand.NewSource(15))
	for trial := 0; trial < 1000; trial++ {
		s := randomRef(r, 200).toBitstr()
		n := s.Len()
		if n > 64 {
			n = 64
		}
		var want uint64
		for j := 0; j < n; j++ {
			if s.BitAt(j) != 0 {
				want |= 1 << uint(n-1-j)
			}
		}
		if got := s.Uint64(); got != want {
			t.Fatalf("Uint64 of %d bits = %d, want %d", s.Len(), got, want)
		}
	}
}
