package bitstr

// Builder accumulates a bit string by appending, in O(total bits)
// overall — the amortized replacement for chained Concat calls, whose
// copies make n appends O(n²). The zero value is an empty builder ready
// to use.
//
// The flattened-trie label pool (trie.Flat) and key reconstruction in
// recovery walks are the intended users: both append many short labels
// and want one contiguous backing array at the end, so that probes can
// address labels by (offset, length) into a single String.
//
// Invariant: bits at positions ≥ n in the last word are zero, so Append
// can OR shifted words in without masking the destination first.
type Builder struct {
	words []uint64
	n     int
}

// Len returns the number of bits appended so far.
func (b *Builder) Len() int { return b.n }

// grow ensures capacity for n total bits.
func (b *Builder) grow(n int) {
	nw := wordsFor(n)
	if nw <= len(b.words) {
		return
	}
	if nw <= cap(b.words) {
		b.words = b.words[:nw]
		return
	}
	w := make([]uint64, nw, nw+nw/2+4)
	copy(w, b.words)
	b.words = w
}

// Append appends every bit of s.
func (b *Builder) Append(s String) {
	if s.n == 0 {
		return
	}
	n := b.n + s.n
	b.grow(n)
	shift := uint(b.n & 63)
	base := b.n >> 6
	if shift == 0 {
		copy(b.words[base:], s.words)
	} else {
		for i, sw := range s.words {
			b.words[base+i] |= sw << shift
			if base+i+1 < len(b.words) {
				b.words[base+i+1] = sw >> (64 - shift)
			}
		}
	}
	b.n = n
	clearTail(b.words, n)
}

// AppendRange appends bits [from, to) of s without materializing the
// slice.
func (b *Builder) AppendRange(s String, from, to int) {
	for i := from; i < to; i += 64 {
		j := i + 64
		if j > to {
			j = to
		}
		b.AppendWord(s.RangeWord(i, j), j-i)
	}
}

// AppendWord appends n ≤ 64 bits packed in w at positions 0..n-1 (the
// storage convention, as produced by RangeWord).
func (b *Builder) AppendWord(w uint64, n int) {
	if n < 0 || n > 64 {
		panic("bitstr: AppendWord length out of range")
	}
	if n == 0 {
		return
	}
	if n < 64 {
		w &= 1<<uint(n) - 1
	}
	tot := b.n + n
	b.grow(tot)
	shift := uint(b.n & 63)
	base := b.n >> 6
	b.words[base] |= w << shift
	if shift != 0 && base+1 < len(b.words) {
		b.words[base+1] = w >> (64 - shift)
	}
	b.n = tot
	clearTail(b.words, tot)
}

// AppendBit appends a single bit (0 or 1).
func (b *Builder) AppendBit(bit byte) {
	b.grow(b.n + 1)
	if bit != 0 {
		b.words[b.n>>6] |= 1 << uint(b.n&63)
	}
	b.n++
}

// Truncate shortens the builder to n bits; it panics if n exceeds the
// current length. Backtracking tree walks append a label, recurse, then
// truncate back — reconstructing every root-to-node key in O(total
// label bits).
func (b *Builder) Truncate(n int) {
	if n < 0 || n > b.n {
		panic("bitstr: Truncate out of range")
	}
	nw := wordsFor(n)
	for i := nw; i < len(b.words); i++ {
		b.words[i] = 0
	}
	b.words = b.words[:nw]
	b.n = n
	clearTail(b.words, n)
}

// Reset empties the builder, retaining capacity.
func (b *Builder) Reset() { b.Truncate(0) }

// String snapshots the accumulated bits as an immutable String. The
// builder remains usable; the snapshot shares no state with it.
func (b *Builder) String() String {
	if b.n == 0 {
		return Empty
	}
	w := make([]uint64, wordsFor(b.n))
	copy(w, b.words)
	return String{words: w, n: b.n}
}
