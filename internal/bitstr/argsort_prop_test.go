package bitstr

import (
	"math/rand"
	"sort"
	"testing"
)

// adversarialKeys builds the key families the MSD radix sort finds
// hardest: long shared prefixes that force deep chunk recursion,
// saturated all-ones chunk words (the PR3 saturation regression),
// strings ending exactly on word boundaries (the out-of-band exhausted
// flag), and duplicate keys.
func adversarialKeys(rng *rand.Rand, n int) []String {
	prefix := make([]byte, 0, 300)
	for i := 0; i < 257; i++ { // > 4 words of shared prefix
		prefix = append(prefix, byte(rng.Intn(2)))
	}
	keys := make([]String, 0, n)
	for len(keys) < n {
		switch rng.Intn(6) {
		case 0: // shared long prefix + random tail
			tail := make([]byte, rng.Intn(80))
			for i := range tail {
				tail[i] = byte(rng.Intn(2))
			}
			keys = append(keys, FromBits(append(append([]byte{}, prefix...), tail...)))
		case 1: // saturated chunks: all-ones words, varying lengths
			w := []uint64{^uint64(0), ^uint64(0), ^uint64(0)}
			keys = append(keys, New(w, 1+rng.Intn(192)))
		case 2: // exact word-boundary lengths
			nw := 1 + rng.Intn(3)
			w := make([]uint64, nw)
			for i := range w {
				w[i] = rng.Uint64()
			}
			keys = append(keys, New(w, nw*64))
		case 3: // near-saturated: all ones except one low bit
			w := []uint64{^uint64(0) ^ 1<<uint(rng.Intn(64)), ^uint64(0)}
			keys = append(keys, New(w, 64+rng.Intn(65)))
		case 4: // short random
			bits := make([]byte, rng.Intn(10))
			for i := range bits {
				bits[i] = byte(rng.Intn(2))
			}
			keys = append(keys, FromBits(bits))
		default: // duplicate an earlier key
			if len(keys) > 0 {
				keys = append(keys, keys[rng.Intn(len(keys))])
			} else {
				keys = append(keys, Empty)
			}
		}
	}
	return keys
}

// TestArgSortPropertyAdversarial checks, across procs values, that
// ArgSort (a) yields a valid permutation, (b) orders the keys exactly
// as the sort.SliceStable reference, and (c) produces the identical
// permutation at every procs value — the determinism contract the
// batch pipeline relies on. Equal keys carry no order guarantee, so
// (b) compares the sorted key sequences, not the index permutations.
func TestArgSortPropertyAdversarial(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		n := 50 + rng.Intn(4000)
		keys := adversarialKeys(rng, n)

		ref := make([]int, n)
		for i := range ref {
			ref[i] = i
		}
		sort.SliceStable(ref, func(a, b int) bool { return Compare(keys[ref[a]], keys[ref[b]]) < 0 })

		var base []int
		for _, procs := range []int{1, 2, 4, 8} {
			idx := make([]int, n)
			for i := range idx {
				idx[i] = i
			}
			ArgSort(keys, idx, procs)

			seen := make([]bool, n)
			for _, j := range idx {
				if j < 0 || j >= n || seen[j] {
					t.Fatalf("trial %d procs %d: not a permutation", trial, procs)
				}
				seen[j] = true
			}
			for i := 0; i < n; i++ {
				if !Equal(keys[idx[i]], keys[ref[i]]) {
					t.Fatalf("trial %d procs %d: key order diverges from SliceStable at %d:\n got %v\nwant %v",
						trial, procs, i, keys[idx[i]], keys[ref[i]])
				}
			}
			if procs == 1 {
				base = append([]int{}, idx...)
			} else {
				for i := range idx {
					if idx[i] != base[i] {
						t.Fatalf("trial %d: permutation differs between procs=1 and procs=%d at %d", trial, procs, i)
					}
				}
			}
		}
	}
}

// FuzzArgSort drives the same three properties from fuzzer-chosen
// bytes: each byte pair (len, fill) becomes a key; fill 0xFF yields
// saturated words, fill 0x00 shared-zero prefixes.
func FuzzArgSort(f *testing.F) {
	f.Add([]byte{0xFF, 0xFF, 0x40, 0xFF, 0x41, 0xFF, 0x3F, 0x00})
	f.Add([]byte{10, 0x00, 200, 0x00, 200, 0x01, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		var keys []String
		for i := 0; i+1 < len(data) && len(keys) < 256; i += 2 {
			n := int(data[i]) * 2 // up to 510 bits: multi-word
			fill := data[i+1]
			bits := make([]byte, n)
			for j := range bits {
				bits[j] = (fill >> uint(j%8)) & 1
			}
			keys = append(keys, FromBits(bits))
		}
		if len(keys) == 0 {
			return
		}
		n := len(keys)
		ref := make([]int, n)
		for i := range ref {
			ref[i] = i
		}
		sort.SliceStable(ref, func(a, b int) bool { return Compare(keys[ref[a]], keys[ref[b]]) < 0 })
		var base []int
		for _, procs := range []int{1, 3, 8} {
			idx := make([]int, n)
			for i := range idx {
				idx[i] = i
			}
			ArgSort(keys, idx, procs)
			for i := 0; i < n; i++ {
				if !Equal(keys[idx[i]], keys[ref[i]]) {
					t.Fatalf("procs %d: order diverges from SliceStable at %d", procs, i)
				}
			}
			if procs == 1 {
				base = append([]int{}, idx...)
			} else {
				for i := range idx {
					if idx[i] != base[i] {
						t.Fatalf("permutation differs between procs=1 and procs=%d", procs)
					}
				}
			}
		}
	})
}

// TestBuilderMatchesConcat checks Builder against the Concat/Slice
// reference on random append/truncate sequences.
func TestBuilderMatchesConcat(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		var b Builder
		ref := Empty
		for step := 0; step < 40; step++ {
			switch rng.Intn(5) {
			case 0: // Append a random string
				bits := make([]byte, rng.Intn(150))
				for i := range bits {
					bits[i] = byte(rng.Intn(2))
				}
				s := FromBits(bits)
				b.Append(s)
				ref = ref.Concat(s)
			case 1: // AppendBit
				bit := byte(rng.Intn(2))
				b.AppendBit(bit)
				ref = ref.AppendBit(bit)
			case 2: // AppendWord
				n := rng.Intn(65)
				w := rng.Uint64()
				b.AppendWord(w, n)
				ref = ref.Concat(FromWord(w, n))
			case 3: // AppendRange
				bits := make([]byte, 10+rng.Intn(200))
				for i := range bits {
					bits[i] = byte(rng.Intn(2))
				}
				s := FromBits(bits)
				from := rng.Intn(len(bits))
				to := from + rng.Intn(len(bits)-from+1)
				b.AppendRange(s, from, to)
				ref = ref.Concat(s.Slice(from, to))
			case 4: // Truncate
				n := rng.Intn(ref.Len() + 1)
				b.Truncate(n)
				ref = ref.Prefix(n)
			}
			if got := b.String(); !Equal(got, ref) {
				t.Fatalf("trial %d step %d: builder %v != ref %v", trial, step, got, ref)
			}
			if b.Len() != ref.Len() {
				t.Fatalf("trial %d step %d: Len %d != %d", trial, step, b.Len(), ref.Len())
			}
		}
	}
}
