// Package bitstr implements variable-length bit strings stored in machine
// words. It is the fundamental key type of the PIM-trie: every trie edge
// label, every stored key, and every query key is a bitstr.String.
//
// Bits are addressed from 0 (the first, most significant in lexicographic
// order) to Len()-1. Internally bit i lives in word i/64 at position i%64,
// least-significant-bit first, so that word-granularity operations (LCP,
// slicing, hashing) can work 64 bits at a time with shifts and XORs.
//
// A String is an immutable value: all operations return new strings or
// plain values and never mutate their receiver. The zero value is the
// empty string and is ready to use.
package bitstr

import (
	"fmt"
	"math/bits"
	"strings"
	"sync"
)

// WordBits is the machine word size w used throughout the PIM-trie
// analysis. Values and hash results are O(w) bits; block sizes, pivot
// spacing and the two-layer index all reference this constant.
const WordBits = 64

// String is an immutable bit string of arbitrary length.
type String struct {
	words []uint64 // bit i at words[i>>6] >> (i&63) & 1
	n     int      // length in bits
}

// Empty is the zero-length bit string.
var Empty = String{}

// wordsFor returns the number of words needed to hold n bits.
func wordsFor(n int) int { return (n + 63) >> 6 }

// New returns a bit string of length n whose words are taken from w.
// The slice is copied. Bits beyond n in the last word are cleared.
func New(w []uint64, n int) String {
	if n < 0 {
		panic("bitstr: negative length")
	}
	nw := wordsFor(n)
	if len(w) < nw {
		panic("bitstr: word slice too short for length")
	}
	cp := make([]uint64, nw)
	copy(cp, w[:nw])
	clearTail(cp, n)
	return String{words: cp, n: n}
}

// clearTail zeroes the bits at positions >= n in the final word.
func clearTail(w []uint64, n int) {
	if r := n & 63; r != 0 && len(w) > 0 {
		w[len(w)-1] &= (1 << uint(r)) - 1
	}
}

// FromBits builds a bit string from a slice of 0/1 values, bit 0 first.
func FromBits(b []byte) String {
	w := make([]uint64, wordsFor(len(b)))
	for i, v := range b {
		if v != 0 {
			w[i>>6] |= 1 << uint(i&63)
		}
	}
	return String{words: w, n: len(b)}
}

// Parse builds a bit string from a textual form like "010110".
// Characters other than '0' and '1' are rejected.
func Parse(s string) (String, error) {
	w := make([]uint64, wordsFor(len(s)))
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '1':
			w[i>>6] |= 1 << uint(i&63)
		case '0':
		default:
			return Empty, fmt.Errorf("bitstr: invalid character %q at %d", s[i], i)
		}
	}
	return String{words: w, n: len(s)}, nil
}

// MustParse is Parse that panics on error; intended for constants in
// tests and examples.
func MustParse(s string) String {
	b, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return b
}

// FromBytes interprets each byte of b most-significant-bit first, the
// conventional lexicographic encoding of byte strings (so the bitwise
// order of FromBytes strings matches bytes.Compare order).
func FromBytes(b []byte) String {
	w := make([]uint64, wordsFor(len(b)*8))
	for i, c := range b {
		for j := 0; j < 8; j++ {
			if c&(0x80>>uint(j)) != 0 {
				pos := i*8 + j
				w[pos>>6] |= 1 << uint(pos&63)
			}
		}
	}
	return String{words: w, n: len(b) * 8}
}

// FromUint64 encodes v as exactly n bits (n <= 64), most significant bit
// of the n-bit value first, matching integer order.
func FromUint64(v uint64, n int) String {
	if n < 0 || n > 64 {
		panic("bitstr: FromUint64 length out of range")
	}
	w := make([]uint64, wordsFor(n))
	for j := 0; j < n; j++ {
		if v&(1<<uint(n-1-j)) != 0 {
			w[0] |= 1 << uint(j)
		}
	}
	return String{words: w, n: n}
}

// Uint64 decodes the first min(n,64) bits as a big-endian integer, the
// inverse of FromUint64. Bit j (stored at word position j) contributes
// 2^(n-1-j), so reversing the word aligns bit j with 2^(63-j) and a
// single shift rescales to the n-bit value.
func (s String) Uint64() uint64 {
	n := s.n
	if n == 0 {
		return 0
	}
	w := s.words[0]
	if n >= 64 {
		return bits.Reverse64(w)
	}
	return bits.Reverse64(w&(1<<uint(n)-1)) >> uint(64-n)
}

// Len returns the length in bits.
func (s String) Len() int { return s.n }

// IsEmpty reports whether the string has zero length.
func (s String) IsEmpty() bool { return s.n == 0 }

// Words returns the number of machine words occupied, the unit in which
// the PIM Model accounts space and communication.
func (s String) Words() int { return wordsFor(s.n) }

// SizeWords returns the space of the string in the PIM model: its payload
// words plus one word for the length header.
func (s String) SizeWords() int { return s.Words() + 1 }

// BitAt returns bit i as 0 or 1. It panics if i is out of range.
func (s String) BitAt(i int) byte {
	if i < 0 || i >= s.n {
		panic(fmt.Sprintf("bitstr: BitAt(%d) out of range [0,%d)", i, s.n))
	}
	return byte(s.words[i>>6] >> uint(i&63) & 1)
}

// FirstBit returns bit 0; the trie uses it to pick a child branch.
func (s String) FirstBit() byte { return s.BitAt(0) }

// RawWords exposes the backing words (read-only by convention) so that
// hashing and the PIM simulator can account and process word-at-a-time.
func (s String) RawWords() []uint64 { return s.words }

// Slice returns the substring of bits [from, to). It panics on an invalid
// range. The result shares no state with the receiver.
func (s String) Slice(from, to int) String {
	if from < 0 || to > s.n || from > to {
		panic(fmt.Sprintf("bitstr: Slice(%d,%d) out of range [0,%d]", from, to, s.n))
	}
	n := to - from
	if n == 0 {
		return Empty
	}
	w := make([]uint64, wordsFor(n))
	shift := uint(from & 63)
	base := from >> 6
	if shift == 0 {
		copy(w, s.words[base:base+wordsFor(n)])
	} else {
		for i := range w {
			lo := s.words[base+i] >> shift
			var hi uint64
			if base+i+1 < len(s.words) {
				hi = s.words[base+i+1] << (64 - shift)
			}
			w[i] = lo | hi
		}
	}
	clearTail(w, n)
	return String{words: w, n: n}
}

// RangeWord returns bits [from, to) — at most 64 of them — packed into a
// uint64 at positions 0..to-from-1 (the storage convention), with higher
// positions zero. It is the word-granularity fetch underlying the
// allocation-free range kernels (LCPRange, hashing.HashRange): a Slice
// of ≤ w bits without materializing a String.
func (s String) RangeWord(from, to int) uint64 {
	n := to - from
	if n == 0 {
		return 0
	}
	if from < 0 || to > s.n || n < 0 || n > 64 {
		panic(fmt.Sprintf("bitstr: RangeWord(%d,%d) out of range [0,%d]", from, to, s.n))
	}
	base := from >> 6
	shift := uint(from & 63)
	w := s.words[base] >> shift
	if shift != 0 && base+1 < len(s.words) {
		w |= s.words[base+1] << (64 - shift)
	}
	if n < 64 {
		w &= 1<<uint(n) - 1
	}
	return w
}

// LCPRange returns the length of the longest common prefix of bits
// [afrom, afrom+n) of a and [bfrom, bfrom+n) of b, comparing 64 bits at
// a time without allocating — the range twin of LCP.
func LCPRange(a String, afrom int, b String, bfrom, n int) int {
	i := 0
	for ; i+64 <= n; i += 64 {
		if x := a.RangeWord(afrom+i, afrom+i+64) ^ b.RangeWord(bfrom+i, bfrom+i+64); x != 0 {
			return i + bits.TrailingZeros64(x)
		}
	}
	if i < n {
		if x := a.RangeWord(afrom+i, afrom+n) ^ b.RangeWord(bfrom+i, bfrom+n); x != 0 {
			return i + bits.TrailingZeros64(x)
		}
	}
	return n
}

// EqualRange reports whether bits [afrom, afrom+n) of a equal bits
// [bfrom, bfrom+n) of b.
func EqualRange(a String, afrom int, b String, bfrom, n int) bool {
	return LCPRange(a, afrom, b, bfrom, n) == n
}

// FromWord builds a string of n ≤ 64 bits from a packed word (position
// i of w is bit i, the storage convention) — the inverse of RangeWord.
func FromWord(w uint64, n int) String {
	if n < 0 || n > 64 {
		panic("bitstr: FromWord length out of range")
	}
	if n == 0 {
		return Empty
	}
	if n < 64 {
		w &= 1<<uint(n) - 1
	}
	return String{words: []uint64{w}, n: n}
}

// Prefix returns the first n bits.
func (s String) Prefix(n int) String { return s.Slice(0, n) }

// Suffix returns the bits from position n to the end.
func (s String) Suffix(n int) String { return s.Slice(n, s.n) }

// PrefixIndex returns the first min(bits, Len) bits of s as the HIGH
// bits of a bits-wide integer, zero-padded on the right for shorter
// strings, so numeric order of indexes agrees with lexicographic order
// of the underlying prefixes: FromUint64(v, bits).PrefixIndex(bits) ==
// v, and every extension of s maps into the contiguous index range
// [PrefixIndex(s), PrefixIndex(s) + 2^(bits-Len)). It is the routing
// primitive of prefix-range partitioning (internal/shard) and of the
// serving layer's per-prefix load counters. bits must be in [1, 63].
func (s String) PrefixIndex(width int) int {
	if width < 1 || width > 63 {
		panic(fmt.Sprintf("bitstr: PrefixIndex width %d out of range [1,63]", width))
	}
	n := s.n
	if n > width {
		n = width
	}
	if n == 0 {
		return 0
	}
	return int(bits.Reverse64(s.RangeWord(0, n)) >> uint(64-width))
}

// Concat returns the concatenation s·t.
func (s String) Concat(t String) String {
	if t.n == 0 {
		return s
	}
	if s.n == 0 {
		return t
	}
	n := s.n + t.n
	w := make([]uint64, wordsFor(n))
	copy(w, s.words)
	shift := uint(s.n & 63)
	base := s.n >> 6
	if shift == 0 {
		copy(w[base:], t.words)
	} else {
		for i, tw := range t.words {
			w[base+i] |= tw << shift
			if base+i+1 < len(w) {
				w[base+i+1] = tw >> (64 - shift)
			}
		}
	}
	clearTail(w, n)
	return String{words: w, n: n}
}

// AppendBit returns s with one extra bit b (0 or 1) appended.
func (s String) AppendBit(b byte) String {
	n := s.n + 1
	w := make([]uint64, wordsFor(n))
	copy(w, s.words)
	if b != 0 {
		w[s.n>>6] |= 1 << uint(s.n&63)
	}
	return String{words: w, n: n}
}

// LCP returns the length in bits of the longest common prefix of s and t.
// It compares word-at-a-time: XOR exposes the first differing bit, found
// with a trailing-zero count because bit i is stored at word position i%64.
func LCP(s, t String) int {
	n := s.n
	if t.n < n {
		n = t.n
	}
	nw := wordsFor(n)
	for i := 0; i < nw; i++ {
		if x := s.words[i] ^ t.words[i]; x != 0 {
			d := i*64 + bits.TrailingZeros64(x)
			if d < n {
				return d
			}
			return n
		}
	}
	return n
}

// HasPrefix reports whether p is a prefix of s.
func (s String) HasPrefix(p String) bool {
	return p.n <= s.n && LCP(s, p) == p.n
}

// Equal reports whether s and t are the same bit string.
func Equal(s, t String) bool {
	return s.n == t.n && LCP(s, t) == s.n
}

// Compare orders bit strings lexicographically with the convention that a
// proper prefix sorts before its extensions ("0" < "00" < "01").
// It returns -1, 0, or +1.
func Compare(s, t String) int {
	l := LCP(s, t)
	switch {
	case l == s.n && l == t.n:
		return 0
	case l == s.n:
		return -1
	case l == t.n:
		return 1
	case s.BitAt(l) < t.BitAt(l):
		return -1
	default:
		return 1
	}
}

// PadTo returns s extended to length n by repeating bit b; if s is already
// at least n bits it is returned unchanged. This implements the S0/S1
// padding of the paper's two-layer index (§4.4.2).
func (s String) PadTo(n int, b byte) String {
	if s.n >= n {
		return s
	}
	w := make([]uint64, wordsFor(n))
	copy(w, s.words)
	if b != 0 {
		// Set every bit in [s.n, n).
		for i := s.n; i < n && i&63 != 0; i++ {
			w[i>>6] |= 1 << uint(i&63)
		}
		start := (s.n + 63) &^ 63
		for i := start; i+64 <= n; i += 64 {
			w[i>>6] = ^uint64(0)
		}
		for i := n &^ 63; i < n; i++ {
			if i >= s.n {
				w[i>>6] |= 1 << uint(i&63)
			}
		}
	}
	clearTail(w, n)
	return String{words: w, n: n}
}

// String renders the bits as '0'/'1' characters, bit 0 first.
func (s String) String() string {
	var b strings.Builder
	b.Grow(s.n)
	for i := 0; i < s.n; i++ {
		b.WriteByte('0' + s.BitAt(i))
	}
	return b.String()
}

// GoString implements fmt.GoStringer for readable %#v output in tests.
func (s String) GoString() string { return fmt.Sprintf("bitstr(%q)", s.String()) }

// Bytes packs the bits back into bytes, MSB-first per byte (inverse of
// FromBytes when Len is a multiple of 8); trailing bits are zero-padded.
func (s String) Bytes() []byte {
	out := make([]byte, (s.n+7)/8)
	for i := 0; i < s.n; i++ {
		if s.BitAt(i) != 0 {
			out[i/8] |= 0x80 >> uint(i%8)
		}
	}
	return out
}

// Reverse returns the bits in reverse order; used by tests.
func (s String) Reverse() String {
	b := make([]byte, s.n)
	for i := 0; i < s.n; i++ {
		b[i] = s.BitAt(s.n - 1 - i)
	}
	return FromBits(b)
}

// CommonPrefix returns the longest common prefix of s and t as a string.
func CommonPrefix(s, t String) String { return s.Prefix(LCP(s, t)) }

// Sort sorts a slice of bit strings in Compare order using a most
// significant digit radix sort on 64-bit chunks, falling back to
// insertion sort for tiny buckets. ArgSort shares the same core for
// index permutations, with optional parallelism.
func Sort(ss []String) {
	var wg sync.WaitGroup
	msdSort(identity{}, ss, 0, 1, &wg)
	wg.Wait()
}

// ArgSort permutes idx so that keys[idx[0]], keys[idx[1]], ... ascend in
// Compare order, running the radix core over the packed words directly —
// no per-comparison closure. Up to procs goroutines sort disjoint
// sub-ranges; the result is the exact permutation Sort would induce,
// independent of procs and scheduling (partitions are computed
// sequentially before any fork, only disjoint sub-slices run
// concurrently). Equal keys keep no particular relative order.
func ArgSort(keys []String, idx []int, procs int) {
	if procs < 1 {
		procs = 1
	}
	var wg sync.WaitGroup
	msdSort(argKeys(keys), idx, 0, procs, &wg)
	wg.Wait()
}

const insertionCutoff = 12

// sortForkGrain is the smallest sub-slice worth handing to a goroutine.
const sortForkGrain = 2048

// strOf abstracts "the bit string of element e": the identity for Sort,
// a slice lookup for ArgSort. A zero-size receiver keeps the core
// monomorphic and call-free after inlining. touch performs the loads
// chunkOf will need for the element — the software-prefetch point of
// the partition loop (see prefetchDist).
type strOf[E any] interface {
	at(E) String
	touch(E, int) uint64
}

type identity struct{}

func (identity) at(s String) String { return s }

func (identity) touch(s String, wordIdx int) uint64 {
	if wordIdx < len(s.words) {
		return s.words[wordIdx]
	}
	return 0
}

type argKeys []String

func (k argKeys) at(i int) String { return k[i] }

func (k argKeys) touch(i, wordIdx int) uint64 {
	s := &k[i]
	if wordIdx < len(s.words) {
		return s.words[wordIdx]
	}
	return 0
}

// prefetchDist is how many elements ahead of the partition cursor the
// chunk word of an upcoming element is loaded. Go has no portable
// prefetch intrinsic, so the "prefetch" is an early plain load: the
// String header and its chunk word land in cache a few iterations
// before chunkOf needs them, and because the touched values feed
// nothing the loop branches on, out-of-order execution overlaps their
// misses with the in-flight comparisons. Elements swapped in from the
// gt side are touched late or not at all — prefetching is best-effort
// and never affects the permutation.
const prefetchDist = 8

// prefetchSink defeats dead-load elimination: the partition loop folds
// every touched word into a local accumulator and conditionally
// publishes it here behind a compare the compiler cannot resolve. The
// store is, for all practical purposes, never executed (probability
// 2⁻⁶⁴ per partition), so concurrent sorters do not race on it.
var prefetchSink uint64

const sinkSentinel = 0x9e3779b97f4a7c15

// msdSort 3-way-quicksorts es by the (live, reversed-word) chunk at
// wordIdx: the left and right bands stay at this word, the equal band
// advances to the next word (all its strings share this chunk) or — when
// the shared chunk is exhausted — finishes with comparison sort, since
// those strings end before this word and differ only in earlier length.
func msdSort[E any, G strOf[E]](g G, es []E, wordIdx, procs int, wg *sync.WaitGroup) {
	for len(es) > insertionCutoff {
		pw, plive := chunkOf(g.at(es[(len(es)-1)/2]), wordIdx)
		lt, gt, i := 0, len(es)-1, 0
		sink := uint64(0)
		for i <= gt {
			if i+prefetchDist <= gt {
				sink ^= g.touch(es[i+prefetchDist], wordIdx)
			}
			kw, klive := chunkOf(g.at(es[i]), wordIdx)
			switch {
			case chunkLess(kw, klive, pw, plive):
				es[lt], es[i] = es[i], es[lt]
				lt++
				i++
			case chunkLess(pw, plive, kw, klive):
				es[gt], es[i] = es[i], es[gt]
				gt--
			default:
				i++
			}
		}
		if sink == sinkSentinel {
			prefetchSink = sink
		}
		mid, left := es[lt:gt+1], es[:lt]
		es = es[gt+1:]
		if plive {
			procs = forkSort(g, mid, wordIdx+1, procs, wg)
		} else {
			insertionSort(g, mid)
		}
		procs = forkSort(g, left, wordIdx, procs, wg)
	}
	insertionSort(g, es)
}

// forkSort recurses on a disjoint sub-slice, spawning a goroutine with
// half the procs budget when the slice is big enough, and returns the
// budget kept by the caller.
func forkSort[E any, G strOf[E]](g G, es []E, wordIdx, procs int, wg *sync.WaitGroup) int {
	if procs > 1 && len(es) >= sortForkGrain {
		half := procs / 2
		wg.Add(1)
		go func() {
			defer wg.Done()
			msdSort(g, es, wordIdx, half, wg)
		}()
		return procs - half
	}
	msdSort(g, es, wordIdx, 1, wg)
	return procs
}

// chunkOf returns word wordIdx of s bit-reversed — so uint64 order
// agrees with lexicographic bit-0-first order — plus a live flag;
// live == false means s ends at or before this word's start. The flag
// is carried OUTSIDE the 64-bit chunk: an earlier encoding stole a
// value by saturating an all-ones chunk, which collided with the
// genuinely distinct chunk 0xFF..FE and let the equal band recurse past
// the difference (TestSortSaturationRegression).
func chunkOf(s String, wordIdx int) (w uint64, live bool) {
	if s.n <= wordIdx*64 {
		return 0, false
	}
	return bits.Reverse64(s.words[wordIdx]), true
}

// chunkLess orders chunks: exhausted before live — a string that ends
// earlier yet matched every prior chunk is a prefix of the live ones,
// and prefixes sort first — then by reversed word value. Strings ending
// inside the word compare by their zero-padded chunk; on a tie the
// shorter string is a genuine prefix and wins at the next level's
// exhaustion check.
func chunkLess(aw uint64, alive bool, bw uint64, blive bool) bool {
	if alive != blive {
		return blive
	}
	return aw < bw
}

func insertionSort[E any, G strOf[E]](g G, es []E) {
	for i := 1; i < len(es); i++ {
		for j := i; j > 0 && Compare(g.at(es[j]), g.at(es[j-1])) < 0; j-- {
			es[j], es[j-1] = es[j-1], es[j]
		}
	}
}
