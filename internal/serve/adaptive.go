package serve

// The adaptive epoch controller (Options.AdaptiveLinger). The static
// MaxLinger knob forces one trade for every load level: a long linger
// buys big epochs (throughput) but taxes every light-load request with
// idle wait; a short one keeps p50 low but fragments bursts into small
// epochs that waste the index's batch economics. The controller picks
// the linger and target epoch size per plan instead, from two live
// estimates:
//
//   - the arrival rate λ (keys/sec), an EWMA folded on every admission
//     and naturally decaying toward zero while the queues are idle;
//   - the epoch service-time model D ≈ A + B·K, fit online from
//     (unique keys, execution wall time) samples of committed epochs
//     via exponentially-weighted least squares.
//
// The policy is the group-commit stability argument: an epoch of K
// keys sustains K/(A+B·K) keys/sec, so steady state needs
// K ≥ λA/(1−λB). The controller targets that point with headroom
// margin m:
//
//	K* = m·λ·A / (1 − λ·B)
//
// When K* falls below the minimum epoch the system is underloaded and
// batching buys nothing — linger collapses to MinLinger so p50 tracks
// the raw service time. When λ·B approaches 1 no epoch size can keep
// up (overload) — the target pins to MaxBatch and linger to the cap,
// maximizing throughput. In between, linger is the time to gather K*
// keys at the observed rate: K*/λ, clamped to [MinLinger, MaxLinger].
// λ is discounted by the observed singleflight dedupe fraction, since
// deduplicated keys cost admission but no index work.
//
// All state lives behind the controller's own mutex; callers never
// hold s.mu across controller calls. Methods take explicit times so
// tests drive the controller on a synthetic clock.

import (
	"math"
	"sync"
	"time"

	"github.com/pimlab/pimtrie/internal/metrics"
)

const (
	// adaptiveMinEpoch is the epoch size below which batching is treated
	// as pointless: targets under this collapse linger to MinLinger.
	adaptiveMinEpoch = 8
	// adaptiveRateTau is the arrival-rate EWMA time constant.
	adaptiveRateTau = 25 * time.Millisecond
	// adaptiveRateQuantum batches same-instant admissions into one rate
	// sample, keeping instantaneous rates finite under bursts.
	adaptiveRateQuantum = 100 * time.Microsecond
	// adaptiveFitAlpha weights each new (keys, duration) epoch sample in
	// the service-model moments.
	adaptiveFitAlpha = 0.15
	// adaptiveMargin is the stability headroom m applied to the minimal
	// sustainable epoch size.
	adaptiveMargin = 1.5
	// adaptiveMinFitSamples gates the slope fit: below this the model
	// falls back to B=0, A=mean epoch duration.
	adaptiveMinFitSamples = 4
	// defaultAdaptiveMaxLinger caps adaptive linger when Options.MaxLinger
	// is left zero.
	defaultAdaptiveMaxLinger = 5 * time.Millisecond
)

// adaptiveController owns the linger/epoch-size policy state.
type adaptiveController struct {
	mu sync.Mutex

	minLinger time.Duration
	maxLinger time.Duration
	maxBatch  int

	// Arrival-rate EWMA: keys admitted since last fold, fold time, rate.
	accum float64
	last  time.Time
	rate  float64 // keys/sec

	// Dedupe fraction EWMA: share of admitted read keys absorbed by
	// singleflight, so λ can be discounted to executed-key terms.
	dedupe float64

	// Service-model EWMA moments over (K, D) epoch samples.
	mk, md, mkk, mkd float64
	samples          int

	// Current policy outputs, recomputed by plan().
	curLinger time.Duration
	curTarget int

	// Gauges (nil without a registry): controller state on /metrics.
	gLinger  *metrics.Gauge
	gTarget  *metrics.Gauge
	gRate    *metrics.Gauge
	gBase    *metrics.Gauge
	gPerKey  *metrics.Gauge
	gOverRun *metrics.Gauge
}

func newAdaptiveController(opts Options, reg *metrics.Registry, labels []metrics.Label) *adaptiveController {
	a := &adaptiveController{
		minLinger: opts.MinLinger,
		maxLinger: opts.MaxLinger,
		maxBatch:  opts.MaxBatch,
		curLinger: opts.MinLinger,
		curTarget: adaptiveMinEpoch,
	}
	if reg != nil {
		a.gLinger = reg.Gauge("pimtrie_serve_adaptive_linger_seconds",
			"linger currently chosen by the adaptive epoch controller", labels...)
		a.gTarget = reg.Gauge("pimtrie_serve_adaptive_target_epoch_keys",
			"epoch size currently targeted by the adaptive controller", labels...)
		a.gRate = reg.Gauge("pimtrie_serve_adaptive_arrival_keys_per_second",
			"EWMA key arrival rate driving the adaptive controller", labels...)
		a.gBase = reg.Gauge("pimtrie_serve_adaptive_service_base_seconds",
			"fitted per-epoch fixed service cost A in D = A + B*K", labels...)
		a.gPerKey = reg.Gauge("pimtrie_serve_adaptive_service_per_key_seconds",
			"fitted per-key service cost B in D = A + B*K", labels...)
		a.gOverRun = reg.Gauge("pimtrie_serve_adaptive_overload",
			"1 while the controller sees arrivals exceed index capacity", labels...)
	}
	return a
}

// noteArrival records nkeys admitted at time now and folds the rate
// EWMA once enough wall time separates it from the previous fold.
func (a *adaptiveController) noteArrival(nkeys int, now time.Time) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.last.IsZero() {
		a.last = now
	}
	a.accum += float64(nkeys)
	a.foldLocked(now)
}

// foldLocked blends accumulated arrivals into the rate EWMA. The blend
// weight grows with the elapsed window — w = Δt/(Δt+τ) — so an idle
// stretch (accum 0, Δt large) decays the rate toward zero without a
// timer.
func (a *adaptiveController) foldLocked(now time.Time) {
	el := now.Sub(a.last)
	if el < adaptiveRateQuantum {
		return
	}
	els := el.Seconds()
	inst := a.accum / els
	w := els / (els + adaptiveRateTau.Seconds())
	a.rate = (1-w)*a.rate + w*inst
	a.accum = 0
	a.last = now
}

// noteDedupe folds one read sub-batch's admitted/unique key counts into
// the dedupe-fraction EWMA.
func (a *adaptiveController) noteDedupe(admitted, uniq int) {
	if admitted <= 0 {
		return
	}
	frac := float64(admitted-uniq) / float64(admitted)
	a.mu.Lock()
	a.dedupe = (1-adaptiveFitAlpha)*a.dedupe + adaptiveFitAlpha*frac
	a.mu.Unlock()
}

// noteEpoch folds one committed epoch's (unique keys, execution time)
// into the service-model moments.
func (a *adaptiveController) noteEpoch(keys int, d time.Duration) {
	if keys <= 0 {
		return
	}
	k, t := float64(keys), d.Seconds()
	a.mu.Lock()
	if a.samples == 0 {
		a.mk, a.md, a.mkk, a.mkd = k, t, k*k, k*t
	} else {
		const α = adaptiveFitAlpha
		a.mk = (1-α)*a.mk + α*k
		a.md = (1-α)*a.md + α*t
		a.mkk = (1-α)*a.mkk + α*k*k
		a.mkd = (1-α)*a.mkd + α*k*t
	}
	a.samples++
	a.mu.Unlock()
}

// fitLocked recovers (A, B) from the EWMA moments. A degenerate spread
// of epoch sizes (all epochs the same K) leaves the slope unknowable;
// the fit then attributes everything to the fixed cost.
func (a *adaptiveController) fitLocked() (base, perKey float64) {
	variance := a.mkk - a.mk*a.mk
	if a.samples >= adaptiveMinFitSamples && variance > 1e-9 {
		perKey = (a.mkd - a.mk*a.md) / variance
		if perKey < 0 || math.IsNaN(perKey) {
			perKey = 0
		}
		base = a.md - perKey*a.mk
	} else {
		base = a.md
	}
	if base < 1e-6 {
		base = 1e-6 // floor: a zero fixed cost would zero every target
	}
	return base, perKey
}

// plan recomputes the policy from the current estimates and returns
// (linger, target epoch keys). Called by the batcher each time it
// decides whether to hold an epoch open.
func (a *adaptiveController) plan(now time.Time) (time.Duration, int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.foldLocked(now)

	// λ in executed-key terms: admitted keys discounted by the share
	// singleflight absorbs before the index sees them.
	lambda := a.rate * (1 - a.dedupe)
	base, perKey := a.fitLocked()

	linger := a.minLinger
	target := adaptiveMinEpoch
	overload := false
	switch {
	case lambda <= 0:
		// Idle: dispatch immediately.
	case lambda*perKey >= 1/adaptiveMargin:
		// Overload (with margin): no epoch size keeps up; max the batch
		// and hold the linger cap for throughput.
		target, linger, overload = a.maxBatch, a.maxLinger, true
	default:
		kRaw := adaptiveMargin * lambda * base / (1 - lambda*perKey)
		if kRaw > adaptiveMinEpoch {
			target = int(math.Ceil(kRaw))
			if target > a.maxBatch {
				target = a.maxBatch
			}
			linger = time.Duration(float64(target) / lambda * float64(time.Second))
			if linger < a.minLinger {
				linger = a.minLinger
			}
			if linger > a.maxLinger {
				linger = a.maxLinger
			}
		}
	}
	a.curLinger, a.curTarget = linger, target

	if a.gLinger != nil {
		a.gLinger.Set(linger.Seconds())
		a.gTarget.Set(float64(target))
		a.gRate.Set(a.rate)
		a.gBase.Set(base)
		a.gPerKey.Set(perKey)
		if overload {
			a.gOverRun.Set(1)
		} else {
			a.gOverRun.Set(0)
		}
	}
	return linger, target
}

// snapshot returns the most recently planned (linger, target) without
// refitting — the cheap read used by fullLocked checks between plans.
func (a *adaptiveController) snapshot() (time.Duration, int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.curLinger, a.curTarget
}
