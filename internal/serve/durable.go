package serve

// The durability layer. With Options.Durable set, every committed
// write epoch is appended to a write-ahead log *before* its futures
// resolve — acknowledged means durable — and a background checkpointer
// periodically freezes the index (Index.Snapshot, a COW view at the
// epoch boundary), serializes it, and prunes the log segments the
// checkpoint covers. Restart-time recovery (wal.Recover + Restore)
// loads the newest checkpoint, replays the log tail through the
// index's ordinary batch paths, and resumes logging where the old
// process stopped.
//
// Ordering contract. The executor applies an epoch to the index, then
// appends it to the WAL (fsync per Options on the log), then resolves
// futures. A crash between apply and append loses only epochs no
// client ever saw acknowledged; a crash after append may recover an
// epoch whose acks never went out — both are within the serial-order
// contract (recovered state is always a prefix of the committed epoch
// order that contains every acknowledged epoch). Checkpoints are
// captured on the executor thread between epochs, so a checkpoint at
// sequence S holds exactly the state after epoch S.

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/pimlab/pimtrie"
	"github.com/pimlab/pimtrie/internal/metrics"
	"github.com/pimlab/pimtrie/internal/wal"
)

// Durable configures the durability layer (Options.Durable).
type Durable struct {
	// Log is the open write-ahead log; required. Its sync policy
	// decides when acknowledged epochs reach stable storage (see
	// wal.SyncPolicy; every policy survives process death, the
	// policies differ on machine crashes).
	Log *wal.Log
	// CheckpointEvery is the number of committed write epochs between
	// checkpoints (default 256; negative disables checkpointing, the
	// log then grows without bound).
	CheckpointEvery int
	// PendingEpochs seeds the epochs-since-checkpoint counter —
	// OpenDurable sets it to the recovered replay-tail length so a
	// restarted server re-checkpoints on the original schedule rather
	// than replaying an ever-growing tail across repeated crashes.
	PendingEpochs int
	// OwnLog transfers Log ownership to the server: Close closes it.
	OwnLog bool
	// Recovery, when set (OpenDurable does), publishes the recovery
	// gauges on the metrics registry.
	Recovery *wal.RecoveryInfo
}

func (d Durable) withDefaults() Durable {
	if d.CheckpointEvery == 0 {
		d.CheckpointEvery = 256
	}
	return d
}

// ckptJob hands a frozen snapshot to the background checkpointer.
type ckptJob struct {
	snap *pimtrie.Snapshot
	seq  uint64
}

// durableState is the server's durability runtime.
type durableState struct {
	cfg Durable
	met *durMetrics

	sinceCkpt int // write epochs since the last checkpoint trigger; executor-only

	jobs     chan ckptJob
	wg       sync.WaitGroup
	inFlight atomic.Bool // a checkpoint job is queued or running
	closed   sync.Once

	errMu sync.Mutex
	err   error // first durability error, sticky
}

func newDurableState(ix *pimtrie.Index, cfg Durable, reg *metrics.Registry, labels []metrics.Label) *durableState {
	if cfg.Log == nil {
		panic("serve: Options.Durable requires an open wal.Log")
	}
	if !ix.Health().Recoverable {
		panic("serve: Options.Durable requires a recoverable index " +
			"(set pimtrie.Options.Recoverable: checkpoints freeze the host shadow)")
	}
	d := &durableState{
		cfg:       cfg.withDefaults(),
		sinceCkpt: cfg.PendingEpochs,
		jobs:      make(chan ckptJob, 1),
	}
	if reg != nil {
		d.met = newDurMetrics(reg, labels)
		if info := cfg.Recovery; info != nil {
			d.met.recoveredEpochs.Set(float64(len(info.Epochs)))
			d.met.recoveredKeys.Set(float64(len(info.Keys)))
			if info.TornTail {
				d.met.tornTail.Set(1)
			}
			d.met.ckptLastSeq.Set(float64(info.CheckpointSeq))
		}
	}
	d.wg.Add(1)
	go d.checkpointer()
	return d
}

// commitEpoch logs one applied write epoch (log-before-ack) and
// triggers a checkpoint when due. Runs on the executor goroutine,
// between the index apply and the future resolution.
func (d *durableState) commitEpoch(ix *pimtrie.Index, plan *epochPlan) error {
	op := wal.OpInsert
	if plan.op == OpDelete {
		op = wal.OpDelete
	}
	seq, err := d.cfg.Log.Append(op, plan.keys, plan.values)
	if err != nil {
		d.noteErr(err)
		return err
	}
	d.sinceCkpt++
	if d.cfg.CheckpointEvery > 0 && d.sinceCkpt >= d.cfg.CheckpointEvery && !d.inFlight.Load() {
		// Rotate first so the outgoing segment ends exactly at seq;
		// once the checkpoint lands, everything up to seq is prunable.
		if rerr := d.cfg.Log.Rotate(); rerr != nil {
			d.noteErr(rerr)
		} else {
			// Freeze on the executor thread: between epochs the shadow
			// is quiescent, so the snapshot is exactly state-after-seq.
			d.inFlight.Store(true)
			d.jobs <- ckptJob{snap: ix.Snapshot(), seq: seq} // cap 1, gated by inFlight: never blocks
			d.sinceCkpt = 0
		}
	}
	return nil
}

// checkpointer serializes snapshots off the epoch path and prunes
// covered log state. One job at a time; commitEpoch skips a trigger
// while a job is in flight (the next epoch re-triggers).
func (d *durableState) checkpointer() {
	defer d.wg.Done()
	for job := range d.jobs {
		start := time.Now()
		bytes, err := wal.WriteCheckpoint(d.cfg.Log.Dir(), job.seq, job.snap.KeyCount(), job.snap.WalkKeys)
		if err == nil {
			err = wal.PruneCheckpoints(d.cfg.Log.Dir(), 2)
		}
		if err == nil {
			err = d.cfg.Log.PruneThrough(job.seq)
		}
		if err != nil {
			d.noteErr(err)
			if d.met != nil {
				d.met.ckptErrors.Inc()
			}
		} else if d.met != nil {
			d.met.ckptWrites.Inc()
			d.met.ckptKeys.Observe(float64(job.snap.KeyCount()))
			d.met.ckptBytes.Observe(float64(bytes))
			d.met.ckptSeconds.Observe(time.Since(start).Seconds())
			d.met.ckptLastSeq.Set(float64(job.seq))
		}
		d.inFlight.Store(false)
	}
}

// shutdown drains the checkpointer and flushes the log; called by
// Server.Close after the scheduler goroutines have drained.
func (d *durableState) shutdown() {
	d.closed.Do(func() {
		close(d.jobs)
		d.wg.Wait()
		if err := d.cfg.Log.Sync(); err != nil {
			d.noteErr(err)
		}
		if d.cfg.OwnLog {
			if err := d.cfg.Log.Close(); err != nil {
				d.noteErr(err)
			}
		}
	})
}

func (d *durableState) noteErr(err error) {
	d.errMu.Lock()
	if d.err == nil {
		d.err = err
	}
	d.errMu.Unlock()
}

// Snapshot freezes the index's current contents at a write-epoch
// boundary and returns the immutable view: Subtree exports, backups
// and analytic scans read it while write epochs keep committing. Safe
// from any goroutine while the server runs; the index must be
// recoverable (it panics otherwise, like Index.Snapshot).
func (s *Server) Snapshot() *pimtrie.Snapshot { return s.ix.Snapshot() }

// WAL returns the server's write-ahead log for stats inspection, or
// nil when the server is not durable.
func (s *Server) WAL() *wal.Log {
	if s.dur == nil {
		return nil
	}
	return s.dur.cfg.Log
}

// DurabilityErr returns the first write-ahead-log or checkpoint error
// the durability layer has hit, or nil. Append errors additionally
// fail the affected epoch's futures; checkpoint errors only surface
// here (the log keeps the state recoverable, just with a longer
// replay tail).
func (s *Server) DurabilityErr() error {
	if s.dur == nil {
		return nil
	}
	s.dur.errMu.Lock()
	defer s.dur.errMu.Unlock()
	return s.dur.err
}

// Restore replays recovered durable state into an index: the
// checkpoint contents through the bulk-load path, then the WAL tail
// epoch by epoch through the ordinary batch paths — the same
// full-reload repair machinery module-loss recovery uses, so the
// rebuilt PIM state is exactly what the shadow dictates.
func Restore(ix *pimtrie.Index, info *wal.RecoveryInfo) error {
	if len(info.Keys) > 0 {
		if err := ix.TryLoad(info.Keys, info.Values); err != nil {
			return fmt.Errorf("serve: restore checkpoint: %w", err)
		}
	}
	for _, e := range info.Epochs {
		var err error
		switch e.Op {
		case wal.OpInsert:
			err = ix.TryInsert(e.Keys, e.Values)
		case wal.OpDelete:
			_, err = ix.TryDelete(e.Keys)
		default:
			err = fmt.Errorf("unknown op %d", e.Op)
		}
		if err != nil {
			return fmt.Errorf("serve: replay epoch %d: %w", e.Seq, err)
		}
	}
	return nil
}

// OpenDurable is the restart-time entry point: recover dir, rebuild
// an index from the newest checkpoint plus the WAL tail, reopen the
// log where the previous process stopped, and start a durable server
// over it. newIndex must return a fresh, empty, recoverable index
// (its configuration — P, seed, block sizes — is the caller's
// contract across restarts). wopts.Dir and wopts.NextSeq are set by
// OpenDurable; sopts.Durable may preset CheckpointEvery and is
// otherwise filled in.
func OpenDurable(dir string, wopts wal.Options, sopts Options, newIndex func() *pimtrie.Index) (*Server, *wal.RecoveryInfo, error) {
	info, err := wal.Recover(dir)
	if err != nil {
		return nil, nil, err
	}
	ix := newIndex()
	if !ix.Health().Recoverable {
		return nil, nil, fmt.Errorf("serve: OpenDurable requires a recoverable index (set pimtrie.Options.Recoverable)")
	}
	if err := Restore(ix, info); err != nil {
		return nil, nil, err
	}
	wopts.Dir = dir
	wopts.NextSeq = info.LastSeq + 1
	if wopts.Metrics == nil {
		wopts.Metrics = sopts.Metrics
		wopts.MetricLabels = sopts.MetricLabels
	}
	log, err := wal.Open(wopts)
	if err != nil {
		return nil, nil, err
	}
	d := sopts.Durable
	if d == nil {
		d = &Durable{}
	}
	d.Log = log
	d.OwnLog = true
	d.PendingEpochs = len(info.Epochs)
	d.Recovery = info
	sopts.Durable = d
	return NewServer(ix, sopts), info, nil
}

// durMetrics is the checkpoint/recovery instrument set
// (pimtrie_checkpoint_* plus the recovery gauges; the per-append WAL
// instruments live on the wal.Log itself).
type durMetrics struct {
	ckptWrites  *metrics.Counter
	ckptErrors  *metrics.Counter
	ckptKeys    *metrics.Histogram
	ckptBytes   *metrics.Histogram
	ckptSeconds *metrics.Histogram
	ckptLastSeq *metrics.Gauge

	recoveredEpochs *metrics.Gauge
	recoveredKeys   *metrics.Gauge
	tornTail        *metrics.Gauge
}

func newDurMetrics(reg *metrics.Registry, base []metrics.Label) *durMetrics {
	lbl := func() []metrics.Label { return append([]metrics.Label(nil), base...) }
	return &durMetrics{
		ckptWrites:  reg.Counter("pimtrie_checkpoint_writes_total", "checkpoints written", lbl()...),
		ckptErrors:  reg.Counter("pimtrie_checkpoint_errors_total", "checkpoint or prune failures", lbl()...),
		ckptKeys:    reg.Histogram("pimtrie_checkpoint_keys", "keys serialized per checkpoint", lbl()...),
		ckptBytes:   reg.Histogram("pimtrie_checkpoint_bytes", "checkpoint file size", lbl()...),
		ckptSeconds: reg.Histogram("pimtrie_checkpoint_seconds", "wall-clock time to serialize a checkpoint", lbl()...),
		ckptLastSeq: reg.Gauge("pimtrie_checkpoint_last_seq", "WAL sequence covered by the newest checkpoint", lbl()...),
		recoveredEpochs: reg.Gauge("pimtrie_wal_recovered_epochs",
			"replay-tail epochs recovered at the last restart", lbl()...),
		recoveredKeys: reg.Gauge("pimtrie_wal_recovered_keys",
			"checkpoint keys recovered at the last restart", lbl()...),
		tornTail: reg.Gauge("pimtrie_wal_recovery_torn_tail",
			"1 if the last recovery dropped a torn final record", lbl()...),
	}
}
