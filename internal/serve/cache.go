package serve

import "encoding/binary"

// appendKeyID appends k's canonical map identity — bit length plus
// payload words (tail bits are always zeroed by bitstr) — to buf.
// Callers reuse one scratch buffer under Server.mu; map lookups via
// string(buf) do not allocate, only insertions intern the string.
func appendKeyID(buf []byte, k Key) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(k.Len()))
	for _, w := range k.RawWords() {
		buf = binary.LittleEndian.AppendUint64(buf, w)
	}
	return buf
}

// cacheVal is one cached read result, stamped with the write-epoch
// counter at the time its epoch was formed.
type cacheVal struct {
	stamp uint64
	value uint64
	found bool
	lcp   int
}

// hotCache is the opt-in skew-aware read cache, one map per cacheable
// read op. All access is under Server.mu. Consistency comes entirely
// from the stamp rule in get — eviction policy only affects the hit
// rate, so it is kept simple: when full, one sweep drops stale
// entries; if none were stale an arbitrary entry makes room.
type hotCache struct {
	cap int
	m   [2]map[string]cacheVal // OpGet, OpLCP
}

func newHotCache(capacity int) *hotCache {
	h := &hotCache{cap: capacity}
	for i := range h.m {
		h.m[i] = make(map[string]cacheVal, capacity/2)
	}
	return h
}

// get returns the entry for (op, id) only if its stamp matches the
// current write-epoch counter, i.e. no write epoch has been ordered
// after the read epoch that produced it.
func (h *hotCache) get(op Op, id []byte, formedWrites uint64) (cacheVal, bool) {
	e, ok := h.m[op][string(id)]
	if !ok || e.stamp != formedWrites {
		return cacheVal{}, false
	}
	return e, true
}

func (h *hotCache) put(op Op, id []byte, v cacheVal, formedWrites uint64) {
	m := h.m[op]
	if _, exists := m[string(id)]; !exists && h.size() >= h.cap {
		h.evict(formedWrites)
	}
	m[string(id)] = v
}

func (h *hotCache) size() int { return len(h.m[0]) + len(h.m[1]) }

func (h *hotCache) evict(formedWrites uint64) {
	dropped := false
	for op := range h.m {
		for id, e := range h.m[op] {
			if e.stamp != formedWrites {
				delete(h.m[op], id)
				dropped = true
			}
		}
	}
	if dropped {
		return
	}
	for op := range h.m {
		for id := range h.m[op] {
			delete(h.m[op], id)
			return
		}
	}
}

// admit reports whether an entry for (op, id) may be stored: always
// when refreshing an existing entry or while there is room, and under
// pressure only when the key was observed hot (deduplicated within its
// epoch, i.e. requested concurrently more than once).
func (h *hotCache) admit(op Op, id []byte, hot bool) bool {
	if hot || h.size() < h.cap {
		return true
	}
	_, exists := h.m[op][string(id)]
	return exists
}
