package serve

// The epoch scheduler. A single batcher goroutine drains the request
// queues into epoch plans — a write epoch is a maximal same-op run of
// the write FIFO, a read epoch groups one deduplicated sub-batch per
// read op — and runs the host-side preparation (Index.PrepareBatch) for
// each sub-batch. A single executor goroutine consumes plans in
// formation order and runs them on the index, so the committed epoch
// order IS the formation order, and while the executor drives epoch k's
// PIM rounds the batcher is already hashing and sorting epoch k+1: the
// two-stage host/PIM pipeline.
//
// Consistency: the index is only touched by the executor, epochs never
// interleave, reads and writes never share an epoch, and cache-served
// reads are only admitted when their entry's write-epoch stamp is
// current — so every response equals a serial replay of the committed
// epoch order.

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/pimlab/pimtrie"
)

// call is one admitted request.
type call struct {
	op     Op
	keys   []Key
	values []uint64 // OpInsert only
	fut    *future
	enq    time.Time
	slots  []int     // read epochs: per key, index into the sub-batch's unique keys
	rec    *OpRecord // history record, nil unless recording
}

// readBatch is one read epoch's deduplicated sub-batch for a single op.
type readBatch struct {
	calls []*call
	uniq  []Key
	dups  []int // per unique key: how many admitted requests asked for it
	prep  *pimtrie.PreparedBatch
}

// epochPlan is one formed epoch, handed from batcher to executor.
type epochPlan struct {
	write bool
	// Read epoch: sub-batches indexed by OpGet/OpLCP/OpSubtree.
	reads [3]readBatch
	// Write epoch: calls in arrival order and their concatenation.
	op     Op
	calls  []*call
	keys   []Key
	values []uint64
	prep   *pimtrie.PreparedBatch
	// stamp is the write-epoch counter at formation: the number of write
	// epochs ordered before this one. Read results executed under this
	// stamp fill the cache with it.
	stamp uint64
}

// Server fronts a pimtrie.Index with the concurrent serving layer; see
// the package comment. Construct with NewServer, stop with Close.
type Server struct {
	ix   *pimtrie.Index
	opts Options

	mu           sync.Mutex
	readQ        [3][]*call // per read op FIFO
	writeQ       []*call    // mixed insert/delete FIFO, arrival order
	closed       bool
	formedWrites uint64 // write epochs formed so far
	cache        *hotCache
	hist         []*EpochRecord
	stats        Stats
	idBuf        []byte   // scratch for appendKeyID, reused under mu
	prefixLoad   []uint64 // per-prefix executed keys (Options.PrefixLoadBits)

	kick     chan struct{} // batcher wake-up, capacity 1
	closedCh chan struct{}
	plans    chan *epochPlan
	demand   chan struct{} // executor's request for the next plan
	compCh   chan []*call  // batched completion chunks to the completers
	wg       sync.WaitGroup

	// Snapshot read path (Options.SnapshotReads); see snapshot.go.
	snapFilter    *writeFilter              // recent-writes filter, nil when disabled
	pub           atomic.Pointer[snapState] // published (flat, stamp) pair
	committedW    atomic.Uint64             // write epochs committed on the index
	snapDirty     chan struct{}             // publisher wake-up, capacity 1
	snapKeys      atomic.Uint64             // keys served from the snapshot
	snapFallbacks atomic.Uint64             // ReadSnapshot keys bounced to the epoch path

	met *serveMetrics       // nil unless Options.Metrics is set
	ctl *adaptiveController // nil unless Options.AdaptiveLinger is set
	dur *durableState       // nil unless Options.Durable is set

	// health is the post-epoch Index.Health sample behind Server.Health;
	// written only by the goroutine that owns the index. keyCount and
	// model are sampled on the same schedule for Server.KeyCount and
	// Server.ModelMetrics.
	healthMu sync.Mutex
	health   pimtrie.Health
	keyCount int
	model    pimtrie.Metrics
}

// NewServer starts the serving layer over ix. The Server owns all
// index execution from now on: direct Index batch calls concurrent with
// a live Server panic by design (the index's single-flight guard).
func NewServer(ix *pimtrie.Index, opts Options) *Server {
	s := &Server{
		ix:       ix,
		opts:     opts.withDefaults(),
		kick:     make(chan struct{}, 1),
		closedCh: make(chan struct{}),
	}
	if s.opts.CacheSize > 0 {
		s.cache = newHotCache(s.opts.CacheSize)
	}
	if s.opts.PrefixLoadBits > 0 {
		s.prefixLoad = make([]uint64, 1<<uint(s.opts.PrefixLoadBits))
	}
	if s.opts.Metrics != nil {
		s.met = newServeMetrics(s.opts.Metrics, s.opts.MetricLabels)
	}
	if s.opts.AdaptiveLinger {
		s.ctl = newAdaptiveController(s.opts, s.opts.Metrics, s.opts.MetricLabels)
	}
	if s.opts.Durable != nil {
		s.dur = newDurableState(ix, *s.opts.Durable, s.opts.Metrics, s.opts.MetricLabels)
	}
	if s.opts.SnapshotReads {
		if !ix.Health().Recoverable {
			panic("serve: Options.SnapshotReads requires a recoverable index (set pimtrie.Options.Recoverable: snapshots flatten the host shadow)")
		}
		s.snapFilter = newWriteFilter(s.opts.SnapshotFilterBits)
		s.snapDirty = make(chan struct{}, 1)
		s.publishSnapshot() // a snapshot is live before the first request
		s.wg.Add(1)
		go s.publisher()
	}
	s.sampleHealth() // baseline before the scheduler goroutines exist
	if !s.opts.NoPipeline {
		// Formation is demand-paced: the executor emits one demand token
		// when it starts an epoch, and the batcher forms exactly one plan
		// per token. Epoch k+1 is therefore formed (and host-prepared,
		// overlapping k's PIM rounds) from everything queued at the moment
		// k starts — one full wave of arrivals. Forming any earlier
		// fragments waves into small epochs that then persist: each epoch's
		// completers resubmit together, so epoch sizes are self-reproducing
		// and the pipeline would inherit its startup fragmentation forever.
		s.plans = make(chan *epochPlan)
		s.demand = make(chan struct{}, 1)
		s.demand <- struct{}{}
		s.wg.Add(1)
		go s.executor()
		// Completion delivery is batched: the executor hands each epoch's
		// resolved calls to the completers in chunks instead of settling
		// every future inline, so result distribution stops scaling the
		// executor's critical path with the client count.
		s.compCh = make(chan []*call, completionQueue)
		for i := 0; i < completionWorkers; i++ {
			s.wg.Add(1)
			go s.completer()
		}
	}
	s.wg.Add(1)
	go s.batcher()
	return s
}

// Close drains every queued request, waits for the final epoch to
// commit, and stops the scheduler goroutines. On a durable server it
// then drains the background checkpointer and fsyncs the WAL, so
// every acknowledged write is on stable storage when Close returns
// regardless of sync policy. Requests submitted after Close fail with
// ErrClosed.
func (s *Server) Close() {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		close(s.closedCh)
	}
	s.mu.Unlock()
	s.kickBatcher()
	s.wg.Wait()
	if s.dur != nil {
		s.dur.shutdown()
	}
}

// Stats returns a snapshot of the serving counters.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	st := s.stats
	s.mu.Unlock()
	st.SnapshotKeys = s.snapKeys.Load()
	st.SnapshotFallbacks = s.snapFallbacks.Load()
	return st
}

// History returns the committed epoch records (Options.RecordHistory).
// Call after Close; records of uncommitted epochs have unfilled
// responses until their futures resolve.
func (s *Server) History() []*EpochRecord {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.hist
}

func (s *Server) kickBatcher() {
	select {
	case s.kick <- struct{}{}:
	default:
	}
}

// submit admits one request: resolve trivially, serve from cache, or
// enqueue for the batcher.
func (s *Server) submit(op Op, keys []Key, values []uint64) *future {
	f := newFuture()
	if len(keys) == 0 {
		s.resolveEmpty(op, f)
		return f
	}
	c := &call{op: op, keys: keys, values: values, fut: f, enq: time.Now()}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		f.fail(ErrClosed)
		return f
	}
	s.stats.Requests[op]++
	s.stats.KeysRequested[op] += uint64(len(keys))
	if s.met != nil {
		s.met.requests[op].Inc()
		s.met.keysReq[op].Add(uint64(len(keys)))
	}
	if op.isRead() && s.cache != nil && (op == OpGet || op == OpLCP) {
		if s.tryCacheLocked(c) {
			s.mu.Unlock()
			return f
		}
		s.stats.CacheMisses++
		if s.met != nil {
			s.met.cacheMisses.Inc()
		}
	}
	if op.isRead() {
		s.readQ[op] = append(s.readQ[op], c)
	} else {
		s.writeQ = append(s.writeQ, c)
	}
	if s.met != nil {
		s.met.queueDepth.Add(1)
	}
	s.mu.Unlock()
	if s.ctl != nil {
		// Only enqueued work counts toward the arrival rate; cache hits
		// and trivial requests never cost the index an epoch slot.
		s.ctl.noteArrival(len(keys), c.enq)
	}
	s.kickBatcher()
	return f
}

func (s *Server) resolveEmpty(op Op, f *future) {
	switch op {
	case OpGet:
		f.vals, f.found = []uint64{}, []bool{}
	case OpLCP:
		f.ints = []int{}
	case OpSubtree:
		f.kvs = [][]KV{}
	case OpDelete:
		f.found = []bool{}
	}
	f.settle()
}

// tryCacheLocked serves c entirely from the hot-key cache if every key
// hits with a current write-epoch stamp. A cache-served read commits
// logically as its own read epoch at the current point of the serial
// order (after every formed write epoch, before any later one), which
// is exactly the state its cached values reflect. Probing is
// allocation-free until every key has hit.
func (s *Server) tryCacheLocked(c *call) bool {
	var stack [4]cacheVal
	hits := stack[:0]
	if len(c.keys) > len(stack) {
		hits = make([]cacheVal, 0, len(c.keys))
	}
	for _, k := range c.keys {
		s.idBuf = appendKeyID(s.idBuf[:0], k)
		e, ok := s.cache.get(c.op, s.idBuf, s.formedWrites)
		if !ok {
			return false
		}
		hits = append(hits, e)
	}
	s.stats.CacheHits++
	if s.met != nil {
		s.met.cacheHits.Inc()
	}
	if c.op == OpGet {
		vals := make([]uint64, len(hits))
		found := make([]bool, len(hits))
		for i, e := range hits {
			vals[i], found[i] = e.value, e.found
		}
		c.fut.vals, c.fut.found = vals, found
	} else {
		ints := make([]int, len(hits))
		for i, e := range hits {
			ints[i] = e.lcp
		}
		c.fut.ints = ints
	}
	if s.opts.RecordHistory {
		rec := &OpRecord{Op: c.op, Keys: c.keys, Cached: true}
		if c.op == OpGet {
			rec.Vals, rec.Found = c.fut.vals, c.fut.found
		} else {
			rec.LCPs = c.fut.ints
		}
		s.hist = append(s.hist, &EpochRecord{Ops: []*OpRecord{rec}})
	}
	s.finish(c)
	return true
}

// batcher is pipeline stage A: await executor demand, form the next
// epoch, run its host-side preparation, hand it to the executor.
func (s *Server) batcher() {
	defer s.wg.Done()
	for {
		if s.plans != nil && !s.awaitDemand() {
			// Closed: stop pacing on demand and just drain the queues.
		}
		plan := s.nextPlan()
		if plan == nil {
			if s.plans != nil {
				close(s.plans)
			} else {
				s.finishExec() // NoPipeline: this goroutine was the executor
			}
			return
		}
		s.prepare(plan)
		if s.plans != nil {
			s.plans <- plan
		} else {
			s.execute(plan)
		}
	}
}

// awaitDemand blocks until the executor asks for the next plan; it
// returns false once the server is closed (drain mode: form as fast as
// the unbuffered plans channel allows).
func (s *Server) awaitDemand() bool {
	select {
	case <-s.demand:
		return true
	case <-s.closedCh:
		return false
	}
}

// executor is pipeline stage B: run each plan on the index in formation
// order. Demand for plan k+1 is signalled as k starts, so the batcher
// forms and prepares k+1 while k's PIM rounds run.
func (s *Server) executor() {
	defer s.wg.Done()
	for plan := range s.plans {
		select {
		case s.demand <- struct{}{}:
		default:
		}
		s.execute(plan)
	}
	s.finishExec()
}

// finishExec runs on the executing goroutine once the last epoch has
// committed: it stops the completers and the snapshot publisher (whose
// final publish then captures the fully drained state).
func (s *Server) finishExec() {
	if s.compCh != nil {
		close(s.compCh)
	}
	if s.snapDirty != nil {
		close(s.snapDirty)
	}
}

// Batched completion delivery: chunks of this many resolved calls wake
// one completer each, amortizing the scheduler handoff; epochs at or
// below inlineCompletion calls settle inline — a chunk handoff would
// cost more than it saves.
const (
	completionWorkers = 2
	completionQueue   = 16
	completionChunk   = 32
	inlineCompletion  = 4
)

// completer settles chunks of resolved calls off the executor's
// critical path.
func (s *Server) completer() {
	defer s.wg.Done()
	for chunk := range s.compCh {
		for _, c := range chunk {
			s.finish(c)
		}
	}
}

// finish resolves one call exactly once; latency is observed only by
// the resolution winner, keeping observations == admitted requests.
func (s *Server) finish(c *call) {
	if c.fut.state.CompareAndSwap(futPending, futSettled) {
		s.observeLatency(c)
		close(c.fut.done)
	}
}

// finishErr is finish with an error.
func (s *Server) finishErr(c *call, err error) {
	if c.fut.state.CompareAndSwap(futPending, futSettled) {
		c.fut.err = err
		s.observeLatency(c)
		close(c.fut.done)
	}
}

// deliver resolves an epoch's calls: tiny deliveries settle inline,
// larger ones are chunked onto the completion workers so the executor
// can move to the next epoch while futures resolve.
func (s *Server) deliver(calls []*call) {
	if s.compCh == nil || len(calls) <= inlineCompletion {
		for _, c := range calls {
			s.finish(c)
		}
		return
	}
	for len(calls) > 0 {
		n := completionChunk
		if n > len(calls) {
			n = len(calls)
		}
		chunk := calls[:n:n]
		calls = calls[n:]
		if s.met != nil {
			keys := 0
			for _, c := range chunk {
				keys += len(c.keys)
			}
			s.met.compChunks.Inc()
			s.met.compChunkKeys.Observe(float64(keys))
		}
		s.compCh <- chunk
	}
}

// pendingLocked reports queued requests and the arrival time of the
// oldest one.
func (s *Server) pendingLocked() (n int, oldest time.Time) {
	first := true
	note := func(q []*call) {
		n += len(q)
		if len(q) > 0 && (first || q[0].enq.Before(oldest)) {
			oldest, first = q[0].enq, false
		}
	}
	for op := range s.readQ {
		note(s.readQ[op])
	}
	note(s.writeQ)
	return n, oldest
}

// fullLocked reports whether any queue already holds target keys —
// a full epoch's worth — which cuts the linger short.
func (s *Server) fullLocked(target int) bool {
	count := func(q []*call) int {
		n := 0
		for _, c := range q {
			n += len(c.keys)
		}
		return n
	}
	for op := range s.readQ {
		if count(s.readQ[op]) >= target {
			return true
		}
	}
	return count(s.writeQ) >= target
}

// lingerPolicy returns the linger bound and the epoch-key target that
// cuts it short: the static options, or the adaptive controller's
// current plan.
func (s *Server) lingerPolicy() (time.Duration, int) {
	if s.ctl != nil {
		return s.ctl.plan(time.Now())
	}
	return s.opts.MaxLinger, s.opts.MaxBatch
}

// nextPlan blocks until requests are pending (respecting the linger
// policy), then forms the next epoch. It returns nil when the server is
// closed and fully drained.
func (s *Server) nextPlan() *epochPlan {
	for {
		s.mu.Lock()
		n, oldest := s.pendingLocked()
		if n == 0 {
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			select {
			case <-s.kick:
			case <-s.closedCh:
			}
			continue
		}
		if linger, target := s.lingerPolicy(); linger > 0 && !s.closed && !s.fullLocked(target) {
			wait := linger - time.Since(oldest)
			if wait > 0 {
				s.mu.Unlock()
				t := time.NewTimer(wait)
				select {
				case <-s.kick: // new arrival: a queue may be full now
				case <-t.C:
				case <-s.closedCh:
				}
				t.Stop()
				continue
			}
		}
		plan := s.formLocked()
		s.mu.Unlock()
		return plan
	}
}

// formLocked removes the next epoch's requests from the queues. Side
// choice is oldest-first between the read side and the write side, so
// neither starves.
func (s *Server) formLocked() *epochPlan {
	var oldestRead, oldestWrite time.Time
	haveRead := false
	for op := range s.readQ {
		if q := s.readQ[op]; len(q) > 0 && (!haveRead || q[0].enq.Before(oldestRead)) {
			oldestRead, haveRead = q[0].enq, true
		}
	}
	haveWrite := len(s.writeQ) > 0
	if haveWrite {
		oldestWrite = s.writeQ[0].enq
	}
	if haveWrite && (!haveRead || oldestWrite.Before(oldestRead)) {
		return s.formWriteLocked()
	}
	return s.formReadLocked()
}

// formWriteLocked takes the maximal same-op prefix of the write FIFO,
// capped at MaxBatch keys (always at least one request).
func (s *Server) formWriteLocked() *epochPlan {
	op := s.writeQ[0].op
	plan := &epochPlan{write: true, op: op}
	total := 0
	i := 0
	for ; i < len(s.writeQ) && s.writeQ[i].op == op; i++ {
		c := s.writeQ[i]
		if total > 0 && total+len(c.keys) > s.opts.MaxBatch {
			break
		}
		total += len(c.keys)
		plan.calls = append(plan.calls, c)
		plan.keys = append(plan.keys, c.keys...)
		if op == OpInsert {
			plan.values = append(plan.values, c.values...)
		}
	}
	s.writeQ = append(s.writeQ[:0], s.writeQ[i:]...)
	s.formedWrites++
	plan.stamp = s.formedWrites
	s.stats.WriteEpochs++
	s.notePrefixLoadLocked(plan.keys)
	s.noteExecutedLocked(op, len(plan.keys))
	if s.met != nil {
		s.met.writeEpochs.Inc()
		s.met.epochKeys.Observe(float64(len(plan.keys)))
		s.met.noteFormed(plan.calls, time.Now())
	}
	if s.opts.RecordHistory {
		rec := &EpochRecord{Write: true}
		for _, c := range plan.calls {
			c.rec = &OpRecord{Op: op, Keys: c.keys, Values: c.values}
			rec.Ops = append(rec.Ops, c.rec)
		}
		s.hist = append(s.hist, rec)
	}
	return plan
}

// formReadLocked drains up to MaxBatch unique keys per read op into one
// epoch, deduplicating identical keys within each sub-batch
// (singleflight): every request records, per key, the slot of its
// unique representative.
func (s *Server) formReadLocked() *epochPlan {
	plan := &epochPlan{stamp: s.formedWrites}
	var rec *EpochRecord
	if s.opts.RecordHistory {
		rec = &EpochRecord{}
	}
	for op := 0; op < 3; op++ {
		q := s.readQ[op]
		if len(q) == 0 {
			continue
		}
		rb := &plan.reads[op]
		slot := make(map[string]int, len(q))
		// Slab the per-call slot slices: one allocation per sub-batch.
		nkeys := 0
		for _, c := range q {
			nkeys += len(c.keys)
		}
		slab := make([]int, nkeys)
		i := 0
		for ; i < len(q); i++ {
			c := q[i]
			if len(rb.uniq) > 0 && len(rb.uniq)+len(c.keys) > s.opts.MaxBatch {
				break // admit calls whole; keys of one call stay in one epoch
			}
			c.slots = slab[:len(c.keys):len(c.keys)]
			slab = slab[len(c.keys):]
			for j, k := range c.keys {
				s.idBuf = appendKeyID(s.idBuf[:0], k)
				si, ok := slot[string(s.idBuf)]
				if !ok {
					si = len(rb.uniq)
					slot[string(s.idBuf)] = si
					rb.uniq = append(rb.uniq, k)
					rb.dups = append(rb.dups, 0)
				}
				rb.dups[si]++
				c.slots[j] = si
			}
			rb.calls = append(rb.calls, c)
			if rec != nil {
				c.rec = &OpRecord{Op: Op(op), Keys: c.keys}
				rec.Ops = append(rec.Ops, c.rec)
			}
		}
		s.readQ[op] = append(q[:0], q[i:]...)
		s.notePrefixLoadLocked(rb.uniq)
		s.noteExecutedLocked(Op(op), len(rb.uniq))
		admitted := 0
		for _, c := range rb.calls {
			admitted += len(c.keys)
		}
		s.stats.DedupedKeys += uint64(admitted - len(rb.uniq))
		if s.ctl != nil {
			s.ctl.noteDedupe(admitted, len(rb.uniq))
		}
		if s.met != nil {
			s.met.deduped.Add(uint64(admitted - len(rb.uniq)))
			s.met.epochKeys.Observe(float64(len(rb.uniq)))
			s.met.noteFormed(rb.calls, time.Now())
		}
	}
	s.stats.ReadEpochs++
	if s.met != nil {
		s.met.readEpochs.Inc()
		s.met.updateDedupRatio()
	}
	if rec != nil {
		s.hist = append(s.hist, rec)
	}
	return plan
}

// notePrefixLoadLocked counts an epoch's unique executed keys into the
// per-prefix load buckets. Caller holds s.mu. The buckets are atomics
// because the lock-free snapshot read path accounts its served keys
// into the same array without taking the lock (noteSnapshotServed).
func (s *Server) notePrefixLoadLocked(keys []Key) {
	if s.prefixLoad == nil {
		return
	}
	for _, k := range keys {
		atomic.AddUint64(&s.prefixLoad[k.PrefixIndex(s.opts.PrefixLoadBits)], 1)
	}
}

// PrefixLoad copies the cumulative per-prefix executed-key counters
// into dst (allocating when dst is too short) and returns it, along
// with the number of epochs committed so far — the consumer diffs two
// snapshots to get a per-interval, per-key-range load profile. Bucket i
// counts unique keys whose first PrefixLoadBits bits index i
// (bitstr.PrefixIndex order: buckets are contiguous lexicographic key
// ranges). It returns (nil, epochs) when Options.PrefixLoadBits is 0.
// Safe to call from any goroutine while the server runs.
func (s *Server) PrefixLoad(dst []uint64) ([]uint64, uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	epochs := s.stats.ReadEpochs + s.stats.WriteEpochs
	if s.prefixLoad == nil {
		return nil, epochs
	}
	if cap(dst) < len(s.prefixLoad) {
		dst = make([]uint64, len(s.prefixLoad))
	}
	dst = dst[:len(s.prefixLoad)]
	for i := range s.prefixLoad {
		dst[i] = atomic.LoadUint64(&s.prefixLoad[i])
	}
	return dst, epochs
}

func (s *Server) noteExecutedLocked(op Op, uniq int) {
	s.stats.KeysExecuted[op] += uint64(uniq)
	if uniq > s.stats.MaxEpochKeys {
		s.stats.MaxEpochKeys = uniq
	}
	if s.met != nil {
		s.met.keysExec[op].Add(uint64(uniq))
	}
}

// prepare runs the host-side phase-A preparation of every sub-batch in
// the plan — the work this layer overlaps with the previous epoch's PIM
// rounds. PrepareBatch is the one Index method that is safe to call
// while another batch executes.
func (s *Server) prepare(plan *epochPlan) {
	if s.met != nil {
		start := time.Now()
		s.met.stageBusy[stagePrepare].Set(1)
		defer func() {
			s.met.stageBusy[stagePrepare].Set(0)
			s.met.prepareSec.Observe(time.Since(start).Seconds())
		}()
	}
	if plan.write {
		plan.prep = s.ix.PrepareBatch(plan.keys)
		return
	}
	for op := range plan.reads {
		if rb := &plan.reads[op]; len(rb.uniq) > 0 {
			rb.prep = s.ix.PrepareBatch(rb.uniq)
		}
	}
}

// execute commits one epoch on the index and distributes results. An
// index panic (e.g. an unrecoverable injected fault) fails the epoch's
// futures instead of killing the scheduler.
func (s *Server) execute(plan *epochPlan) {
	defer s.sampleHealth()
	if s.ctl != nil {
		start := time.Now()
		defer func() {
			s.ctl.noteEpoch(planUniqueKeys(plan), time.Since(start))
		}()
	}
	if s.met != nil {
		start := time.Now()
		s.met.stageBusy[stageExecute].Set(1)
		defer func() {
			s.met.stageBusy[stageExecute].Set(0)
			s.met.executeSec.Observe(time.Since(start).Seconds())
		}()
	}
	defer func() {
		if r := recover(); r != nil {
			// Fail whatever the epoch had not already resolved. finishErr
			// is CAS-guarded, so futures a completion worker settled
			// before the panic (earlier sub-batches of this epoch) are
			// left alone instead of being double-closed.
			err := fmt.Errorf("serve: index failure: %v", r)
			if plan.write {
				for _, c := range plan.calls {
					s.finishErr(c, err)
				}
				return
			}
			for op := range plan.reads {
				for _, c := range plan.reads[op].calls {
					s.finishErr(c, err)
				}
			}
		}
	}()
	if plan.write {
		s.executeWrite(plan)
		return
	}
	s.executeRead(plan)
}

func (s *Server) executeWrite(plan *epochPlan) {
	var found []bool
	switch plan.op {
	case OpInsert:
		s.ix.InsertPrepared(plan.prep, plan.values)
	case OpDelete:
		found = s.ix.DeletePrepared(plan.prep)
	}
	// Snapshot-path ordering: stamp the recent-writes filter, THEN
	// advance the committed-write counter, THEN (below) acknowledge.
	// A reader that observed this write as acked therefore finds its
	// filter stamp already in place, so it either falls back to the
	// epoch path or reads a snapshot that contains the write — never a
	// stale snapshot answer for an acknowledged key.
	if s.snapFilter != nil {
		for _, k := range plan.keys {
			s.snapFilter.note(keyHash(k), plan.stamp)
		}
		s.committedW.Store(plan.stamp)
		select {
		case s.snapDirty <- struct{}{}:
		default: // publisher already pending; it reloads the counter
		}
	}
	// Log-before-ack: the epoch reaches the WAL before any caller
	// observes it as committed, so an acknowledged write survives the
	// process. On append failure the futures fail — the in-memory
	// index is ahead of the log at that point and a restart would
	// roll the epoch back, so it must not be acknowledged.
	if s.dur != nil {
		if err := s.dur.commitEpoch(s.ix, plan); err != nil {
			err = fmt.Errorf("serve: wal append: %w", err)
			for _, c := range plan.calls {
				s.finishErr(c, err)
			}
			return
		}
	}
	if plan.op == OpDelete {
		off := 0
		for _, c := range plan.calls {
			c.fut.found = found[off : off+len(c.keys) : off+len(c.keys)]
			if c.rec != nil {
				c.rec.Found = c.fut.found
			}
			off += len(c.keys)
		}
	}
	s.deliver(plan.calls)
}

// planUniqueKeys is the number of unique keys an epoch sends to the
// index — the K of the adaptive controller's service-time samples.
func planUniqueKeys(plan *epochPlan) int {
	if plan.write {
		return len(plan.keys)
	}
	n := 0
	for op := range plan.reads {
		n += len(plan.reads[op].uniq)
	}
	return n
}

// slabKeys sums the requested key counts of a sub-batch's calls, so
// result distribution can carve per-call views out of one allocation.
func slabKeys(calls []*call) int {
	n := 0
	for _, c := range calls {
		n += len(c.keys)
	}
	return n
}

func (s *Server) executeRead(plan *epochPlan) {
	if rb := &plan.reads[OpGet]; len(rb.uniq) > 0 {
		vals, found := s.ix.GetPrepared(rb.prep)
		s.fillCache(OpGet, rb, plan.stamp, vals, found, nil)
		nslab := slabKeys(rb.calls)
		vslab := make([]uint64, nslab)
		fslab := make([]bool, nslab)
		for _, c := range rb.calls {
			n := len(c.keys)
			c.fut.vals, vslab = vslab[:n:n], vslab[n:]
			c.fut.found, fslab = fslab[:n:n], fslab[n:]
			for j, si := range c.slots {
				c.fut.vals[j], c.fut.found[j] = vals[si], found[si]
			}
			if c.rec != nil {
				c.rec.Vals, c.rec.Found = c.fut.vals, c.fut.found
			}
		}
		s.deliver(rb.calls)
	}
	if rb := &plan.reads[OpLCP]; len(rb.uniq) > 0 {
		lcps := s.ix.LCPPrepared(rb.prep)
		s.fillCache(OpLCP, rb, plan.stamp, nil, nil, lcps)
		islab := make([]int, slabKeys(rb.calls))
		for _, c := range rb.calls {
			n := len(c.keys)
			c.fut.ints, islab = islab[:n:n], islab[n:]
			for j, si := range c.slots {
				c.fut.ints[j] = lcps[si]
			}
			if c.rec != nil {
				c.rec.LCPs = c.fut.ints
			}
		}
		s.deliver(rb.calls)
	}
	if rb := &plan.reads[OpSubtree]; len(rb.uniq) > 0 {
		kvs := s.ix.SubtreesPrepared(rb.prep)
		for _, c := range rb.calls {
			c.fut.kvs = make([][]KV, len(c.keys))
			for j, si := range c.slots {
				c.fut.kvs[j] = kvs[si]
			}
			if c.rec != nil {
				c.rec.KVs = c.fut.kvs
			}
		}
		s.deliver(rb.calls)
	}
}

// fillCache stores executed read results under the epoch's write stamp.
// If a write epoch formed after this read epoch, the stamp is already
// stale and the entries will simply never hit — correctness never
// depends on the cache. Admission is skew-aware: once the cache is
// full, only keys the epoch proved hot — requested more than once, so
// the singleflight dedupe collapsed them — may displace an entry.
// Without that rule every large epoch floods the cache with cold keys
// and evicts the hot set it exists for.
func (s *Server) fillCache(op Op, rb *readBatch, stamp uint64, vals []uint64, found []bool, lcps []int) {
	if s.cache == nil {
		return
	}
	s.mu.Lock()
	for i, k := range rb.uniq {
		s.idBuf = appendKeyID(s.idBuf[:0], k)
		if !s.cache.admit(op, s.idBuf, rb.dups[i] > 1) {
			continue
		}
		s.stats.CacheAdmissions++
		if s.met != nil {
			s.met.cacheAdmits.Inc()
		}
		e := cacheVal{stamp: stamp}
		if op == OpGet {
			e.value, e.found = vals[i], found[i]
		} else {
			e.lcp = lcps[i]
		}
		s.cache.put(op, s.idBuf, e, s.formedWrites)
	}
	s.mu.Unlock()
}
