package serve_test

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/pimlab/pimtrie"
	"github.com/pimlab/pimtrie/internal/metrics"
	"github.com/pimlab/pimtrie/internal/serve"
	"github.com/pimlab/pimtrie/internal/telemetry"
	"github.com/pimlab/pimtrie/internal/trie"
)

// newServedSnap is newServed over a recoverable index (snapshot reads
// flatten the host shadow, so SnapshotReads requires it).
func newServedSnap(t *testing.T, p, n int, opts serve.Options) (*serve.Server, *trie.Trie, []serve.Key) {
	t.Helper()
	r := rand.New(rand.NewSource(7))
	seen := make(map[string]bool, n)
	keys := make([]serve.Key, 0, n)
	values := make([]uint64, 0, n)
	for len(keys) < n {
		k := randomKey(r, 72)
		id := fmt.Sprintf("%x/%d", k.Bytes(), k.Len())
		if seen[id] {
			continue
		}
		seen[id] = true
		keys = append(keys, k)
		values = append(values, uint64(len(keys)))
	}
	ix := pimtrie.New(p, pimtrie.Options{Seed: 11, Recoverable: true})
	ix.Load(keys, values)
	oracle := trie.New()
	for i, k := range keys {
		oracle.Insert(k, values[i])
	}
	return serve.NewServer(ix, opts), oracle, keys
}

// TestSnapshotReadBasic checks the fast path end to end: snapshot reads
// agree with the strong path, an acknowledged write is immediately
// visible through ReadSnapshot (fallback until republication), and the
// Stats counters move.
func TestSnapshotReadBasic(t *testing.T) {
	srv, oracle, pool := newServedSnap(t, 4, 128, serve.Options{SnapshotReads: true})
	defer srv.Close()

	// Preloaded keys: snapshot answers must be bit-identical to the oracle.
	for _, k := range pool[:32] {
		wv, wok := oracle.Get(k)
		v, ok, err := srv.GetWith(serve.ReadSnapshot, k)
		if err != nil || ok != wok || v != wv {
			t.Fatalf("snapshot Get(%q) = %d,%v,%v; oracle %d,%v", k, v, ok, err, wv, wok)
		}
	}
	if st := srv.Stats(); st.SnapshotKeys == 0 {
		t.Fatalf("no snapshot-served keys recorded: %+v", st)
	}
	if st := srv.Stats(); st.Requests[serve.OpGet] != 0 {
		t.Fatalf("snapshot reads leaked into the epoch path: %+v", st)
	}

	// An acked write must be visible to the very next ReadSnapshot.
	hot := pool[0]
	if err := srv.Insert(hot, 424242); err != nil {
		t.Fatal(err)
	}
	v, ok, err := srv.GetWith(serve.ReadSnapshot, hot)
	if err != nil || !ok || v != 424242 {
		t.Fatalf("post-write snapshot Get = %d,%v,%v, want 424242 (stale snapshot served?)", v, ok, err)
	}

	// GetBatch fast path into caller slices.
	keys := pool[32:64]
	vals := make([]uint64, len(keys))
	found := make([]bool, len(keys))
	if err := srv.GetBatch(serve.ReadSnapshot, keys, vals, found); err != nil {
		t.Fatal(err)
	}
	for i, k := range keys {
		wv, wok := oracle.Get(k)
		if found[i] != wok || (wok && vals[i] != wv) {
			t.Fatalf("GetBatch[%d](%q) = %d,%v; oracle %d,%v", i, k, vals[i], found[i], wv, wok)
		}
	}
}

// TestSnapshotReadsRequireRecoverable asserts NewServer rejects
// SnapshotReads on an index that cannot snapshot.
func TestSnapshotReadsRequireRecoverable(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("SnapshotReads on a non-recoverable index did not panic")
		}
	}()
	ix := pimtrie.New(4, pimtrie.Options{Seed: 11})
	serve.NewServer(ix, serve.Options{SnapshotReads: true})
}

// TestTrySnapshotGetPartial checks the router-facing per-key form:
// recently written keys are marked unserved while cold keys are served
// with correct answers from the same call.
func TestTrySnapshotGetPartial(t *testing.T) {
	srv, oracle, pool := newServedSnap(t, 4, 64, serve.Options{SnapshotReads: true})
	defer srv.Close()

	// Park the published snapshot, then write one key so its filter
	// stamp outruns the published epoch until republication. Issuing the
	// TrySnapshotGet immediately races republication, so retry the write
	// until the call observes the mixed state or accept full service
	// (both are valid outcomes; the assertion is on answers, not timing).
	hot, cold := pool[0], pool[1]
	if err := srv.Insert(hot, 7); err != nil {
		t.Fatal(err)
	}
	oracle.Insert(hot, 7)
	keys := []serve.Key{hot, cold}
	vals := make([]uint64, 2)
	found := make([]bool, 2)
	served := make([]bool, 2)
	n := srv.TrySnapshotGet(keys, vals, found, served)
	if n == 0 && (served[0] || served[1]) {
		t.Fatalf("TrySnapshotGet returned 0 but marked served=%v", served)
	}
	for i, k := range keys {
		if !served[i] {
			continue
		}
		wv, wok := oracle.Get(k)
		if found[i] != wok || (wok && vals[i] != wv) {
			t.Fatalf("served key %d (%q) = %d,%v; oracle %d,%v", i, k, vals[i], found[i], wv, wok)
		}
	}
	st := srv.Stats()
	if st.SnapshotKeys+st.SnapshotFallbacks == 0 {
		t.Fatalf("TrySnapshotGet recorded nothing: %+v", st)
	}
}

// TestSnapshotSoak hammers the fast path under -race with writers
// forcing constant republication. Assertions: (a) keys never written
// stay bit-identical to the oracle through every republication; (b) a
// key's acknowledged write is visible to every ReadSnapshot issued
// after the ack (per-key read-your-writes across goroutines); (c) the
// strong path stays bit-identical to serial replay (history oracle).
func TestSnapshotSoak(t *testing.T) {
	srv, oracle, pool := newServedSnap(t, 8, 400, serve.Options{
		MaxBatch: 64, SnapshotReads: true, RecordHistory: true, CacheSize: 128,
	})
	cold := pool[200:] // never written below
	hot := pool[:8]

	// acked[i] is the largest value whose Insert(hot[i], v) has resolved.
	var acked [8]atomic.Uint64
	for i, k := range hot {
		v, _ := oracle.Get(k)
		acked[i].Store(v)
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(500 + w)))
			for v := uint64(1); ; v++ {
				select {
				case <-stop:
					return
				default:
				}
				i := (w*4 + r.Intn(4)) % len(hot) // writers own disjoint hot keys
				val := v*100 + uint64(i)
				if err := srv.Insert(hot[i], val); err != nil {
					t.Errorf("insert: %v", err)
					return
				}
				// Monotone per key: each writer owns its keys, so the acked
				// value only grows.
				acked[i].Store(val)
			}
		}(w)
	}
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for it := 0; it < 400; it++ {
				if r.Intn(2) == 0 {
					i := r.Intn(len(hot))
					floor := acked[i].Load()
					v, ok, err := srv.GetWith(serve.ReadSnapshot, hot[i])
					if err != nil {
						t.Errorf("snapshot get: %v", err)
						return
					}
					if !ok || v < floor {
						t.Errorf("hot[%d]: snapshot read %d,%v older than acked floor %d", i, v, ok, floor)
						return
					}
				} else {
					k := cold[r.Intn(len(cold))]
					wv, wok := oracle.Get(k)
					v, ok, err := srv.GetWith(serve.ReadSnapshot, k)
					if err != nil || ok != wok || v != wv {
						t.Errorf("cold key %q: snapshot read %d,%v,%v; oracle %d,%v", k, v, ok, err, wv, wok)
						return
					}
				}
			}
		}(int64(900 + w))
	}
	time.Sleep(150 * time.Millisecond)
	close(stop)
	wg.Wait()
	srv.Close()

	st := srv.Stats()
	if st.SnapshotKeys == 0 {
		t.Fatalf("soak never served from the snapshot: %+v", st)
	}
	if st.WriteEpochs == 0 {
		t.Fatalf("soak committed no write epochs: %+v", st)
	}
	// The strong path (fallbacks included) must still replay serially.
	replayHistory(t, srv.History(), oracle)
}

// TestSnapshotPairAtomicity is the publication soak: a single writer
// inserts fresh unique keys (one per write epoch), while readers assert
// every observed (flat, stamp) pair is coherent — the flat holds at
// least stamp inserts and at most the acked count — and stamps are
// monotone per reader. A torn pair (new flat with old stamp, or the
// reverse) violates one of the bounds.
func TestSnapshotPairAtomicity(t *testing.T) {
	srv, _, _ := newServedSnap(t, 4, 64, serve.Options{SnapshotReads: true})
	base := 64

	var ackedInserts atomic.Uint64
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		r := rand.New(rand.NewSource(31))
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			k := pimtrie.KeyFromUint(uint64(i), 64).Concat(randomKey(r, 8))
			if err := srv.Insert(k, uint64(i)); err != nil {
				t.Errorf("insert: %v", err)
				return
			}
			ackedInserts.Add(1)
		}
	}()
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var lastStamp uint64
			for it := 0; it < 2000; it++ {
				flat, stamp := srv.SnapshotView()
				if flat == nil {
					t.Error("no published snapshot")
					return
				}
				if stamp < lastStamp {
					t.Errorf("published stamp went backwards: %d after %d", stamp, lastStamp)
					return
				}
				lastStamp = stamp
				kc := uint64(flat.KeyCount())
				if kc < uint64(base)+stamp {
					t.Errorf("torn pair: stamp %d but flat holds only %d keys (base %d)", stamp, kc, base)
					return
				}
				// KeyCount is read after the pair; bound it by the ack counter
				// read AFTER that, which can only overshoot the flat.
				if after := ackedInserts.Load(); kc > uint64(base)+after+1 {
					t.Errorf("flat holds %d keys but only %d inserts acked", kc, after)
					return
				}
			}
		}()
	}
	time.Sleep(120 * time.Millisecond)
	close(stop)
	wg.Wait()
	srv.Close()
}

// TestSnapshotMetricsLint renders a registry carrying the snapshot and
// completion-batch instruments after live traffic and lints the
// exposition — CI coverage that the new series obey the conventions.
func TestSnapshotMetricsLint(t *testing.T) {
	reg := metrics.NewRegistry()
	srv, _, pool := newServedSnap(t, 4, 128, serve.Options{SnapshotReads: true, Metrics: reg})
	// Touch both paths so counters, gauges, and the chunk histogram emit.
	for i := 0; i < 4; i++ {
		if _, _, err := srv.GetWith(serve.ReadSnapshot, pool[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := srv.Insert(pool[0], 1); err != nil {
		t.Fatal(err)
	}
	if _, _, err := srv.GetAsync(pool[:32]...).Wait(); err != nil {
		t.Fatal(err)
	}
	srv.Close()

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	for _, want := range []string{
		"# TYPE pimtrie_serve_snapshot_reads_total counter",
		"# TYPE pimtrie_serve_snapshot_fallbacks_total counter",
		"# TYPE pimtrie_serve_snapshot_age_epochs gauge",
		"# TYPE pimtrie_serve_snapshot_epoch gauge",
		"# TYPE pimtrie_serve_completion_chunks_total counter",
		"# TYPE pimtrie_serve_completion_chunk_keys histogram",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	for _, p := range telemetry.LintExposition(text) {
		t.Error(p)
	}
}

// TestServeCacheDeleteThenGet is the hot-key cache invalidation audit:
// a cached Get must not survive a Delete of the same key — the next Get
// (strong or snapshot) sees the deletion, even when both land within
// one linger window.
func TestServeCacheDeleteThenGet(t *testing.T) {
	srv, _, pool := newServedSnap(t, 4, 64, serve.Options{CacheSize: 32, SnapshotReads: true})
	defer srv.Close()
	hot := pool[0]
	// Heat the cache.
	for i := 0; i < 3; i++ {
		if _, ok, err := srv.Get(hot); err != nil || !ok {
			t.Fatalf("warm Get = %v,%v", ok, err)
		}
	}
	if st := srv.Stats(); st.CacheHits == 0 {
		t.Fatalf("cache never hit during warmup: %+v", st)
	}
	if found, err := srv.Delete(hot); err != nil || !found {
		t.Fatalf("Delete = %v,%v", found, err)
	}
	if _, ok, err := srv.Get(hot); err != nil || ok {
		t.Fatalf("strong Get after Delete = found=%v,%v, want miss (stale cache?)", ok, err)
	}
	if _, ok, err := srv.GetWith(serve.ReadSnapshot, hot); err != nil || ok {
		t.Fatalf("snapshot Get after Delete = found=%v,%v, want miss (stale snapshot?)", ok, err)
	}
}

// TestServeCacheDeleteSoak races deleters, re-inserters, and readers on
// a small hot set under -race: a Get that starts after a Delete ack and
// before any re-insert ack must miss. Writers serialize per key through
// a mutex so the ack ordering the assertion needs is well-defined.
func TestServeCacheDeleteSoak(t *testing.T) {
	srv, _, pool := newServedSnap(t, 4, 64, serve.Options{
		CacheSize: 64, SnapshotReads: true, MaxLinger: 100 * time.Microsecond,
	})
	defer srv.Close()
	hot := pool[:4]
	// present[i] tracks the acked state of hot[i]: 1 = last acked write
	// was an insert, 0 = a delete. Guarded by muKey[i].
	var muKey [4]sync.Mutex
	var present [4]atomic.Int32
	for i := range present {
		present[i].Store(1)
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for it := 0; it < 120; it++ {
				i := r.Intn(len(hot))
				muKey[i].Lock()
				if present[i].Load() == 1 {
					if _, err := srv.Delete(hot[i]); err != nil {
						t.Errorf("delete: %v", err)
					}
					present[i].Store(0)
				} else {
					if err := srv.Insert(hot[i], uint64(it)); err != nil {
						t.Errorf("insert: %v", err)
					}
					present[i].Store(1)
				}
				muKey[i].Unlock()
			}
		}(int64(40 + w))
	}
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for it := 0; it < 300; it++ {
				i := r.Intn(len(hot))
				// Pin the acked state for the whole read so the assertion is
				// exact, not racy: no writer can ack between our state load
				// and the Get.
				muKey[i].Lock()
				want := present[i].Load() == 1
				var ok bool
				var err error
				if r.Intn(2) == 0 {
					_, ok, err = srv.Get(hot[i])
				} else {
					_, ok, err = srv.GetWith(serve.ReadSnapshot, hot[i])
				}
				muKey[i].Unlock()
				if err != nil {
					t.Errorf("get: %v", err)
					return
				}
				if ok != want {
					t.Errorf("hot[%d]: found=%v but acked state says present=%v (stale cache/snapshot)", i, ok, want)
					return
				}
			}
		}(int64(70 + w))
	}
	wg.Wait()
}
