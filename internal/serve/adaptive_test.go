package serve_test

// Black-box integration of the adaptive epoch controller: a real
// Server under real traffic must expose the controller's state as
// lint-clean gauges and keep every response serially consistent (the
// soak covers consistency; this test covers the metric surface).

import (
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/pimlab/pimtrie/internal/metrics"
	"github.com/pimlab/pimtrie/internal/serve"
	"github.com/pimlab/pimtrie/internal/telemetry"
)

func TestAdaptiveGaugesExposed(t *testing.T) {
	reg := metrics.NewRegistry()
	srv, _, pool := newServed(t, 8, 256, serve.Options{
		MaxBatch:       128,
		AdaptiveLinger: true,
		Metrics:        reg,
	})

	// Enough concurrent traffic that the controller folds arrivals, fits
	// the service model, and plans at least once.
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(off int) {
			defer wg.Done()
			for it := 0; it < 50; it++ {
				k := pool[(off*53+it)%len(pool)]
				if _, _, err := srv.GetAsync(k).Wait(); err != nil {
					t.Errorf("get: %v", err)
				}
			}
		}(w)
	}
	wg.Wait()
	srv.Close()

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	body := b.String()
	for _, want := range []string{
		"# TYPE pimtrie_serve_adaptive_linger_seconds gauge",
		"# TYPE pimtrie_serve_adaptive_target_epoch_keys gauge",
		"# TYPE pimtrie_serve_adaptive_arrival_keys_per_second gauge",
		"# TYPE pimtrie_serve_adaptive_service_base_seconds gauge",
		"# TYPE pimtrie_serve_adaptive_service_per_key_seconds gauge",
		"# TYPE pimtrie_serve_adaptive_overload gauge",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	if problems := telemetry.LintExposition(body); len(problems) > 0 {
		t.Errorf("exposition lint: %v", problems)
	}
}

// TestAdaptiveDefaults pins the option plumbing: adaptive mode fills in
// the linger cap, and plain mode is untouched by the new fields.
func TestAdaptiveDefaults(t *testing.T) {
	srv, _, pool := newServed(t, 4, 32, serve.Options{AdaptiveLinger: true})
	if _, _, err := srv.GetAsync(pool[0]).Wait(); err != nil {
		t.Fatalf("adaptive server refused a request: %v", err)
	}
	srv.Close()

	// MinLinger respected as the light-load floor: a lone request on an
	// idle adaptive server must not wait out a multi-millisecond linger.
	srv2, _, pool2 := newServed(t, 4, 32, serve.Options{AdaptiveLinger: true, MaxLinger: 50 * time.Millisecond})
	start := time.Now()
	if _, _, err := srv2.GetAsync(pool2[0]).Wait(); err != nil {
		t.Fatalf("get: %v", err)
	}
	if el := time.Since(start); el > 40*time.Millisecond {
		t.Errorf("idle adaptive request took %v; light load should not pay the 50ms linger cap", el)
	}
	srv2.Close()
}
