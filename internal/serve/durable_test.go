package serve

import (
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/pimlab/pimtrie"
	"github.com/pimlab/pimtrie/internal/bitstr"
	"github.com/pimlab/pimtrie/internal/metrics"
	"github.com/pimlab/pimtrie/internal/telemetry"
	"github.com/pimlab/pimtrie/internal/wal"
	"github.com/pimlab/pimtrie/internal/workload"
)

func newRecoverableIndex() *pimtrie.Index {
	return pimtrie.New(8, pimtrie.Options{Seed: 42, Recoverable: true})
}

// dumpIndex renders an index's full contents via a frozen snapshot.
func dumpIndex(ix *pimtrie.Index) map[string]uint64 {
	out := map[string]uint64{}
	ix.Snapshot().WalkKeys(func(k bitstr.String, v uint64) { out[k.String()] = v })
	return out
}

// TestDurableCleanShutdownNoLoss pins the graceful-shutdown contract:
// after Close returns, every acknowledged write is recoverable — even
// under SyncNone, because Close fsyncs the log before returning.
func TestDurableCleanShutdownNoLoss(t *testing.T) {
	dir := t.TempDir()
	log, err := wal.Open(wal.Options{Dir: dir, Policy: wal.SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	ix := newRecoverableIndex()
	srv := NewServer(ix, Options{Durable: &Durable{Log: log, OwnLog: true, CheckpointEvery: 8}})

	g := workload.New(1)
	keys := g.VarLen(400, 12, 60)
	acked := map[string]uint64{}
	var mu sync.Mutex
	var wg sync.WaitGroup
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := c * 100; i < (c+1)*100; i += 2 {
				ks := []Key{keys[i], keys[i+1]}
				vs := []uint64{uint64(i), uint64(i + 1)}
				if err := srv.InsertAsync(ks, vs).Wait(); err != nil {
					t.Errorf("insert: %v", err)
					return
				}
				mu.Lock()
				for j, k := range ks {
					acked[k.String()] = vs[j]
				}
				mu.Unlock()
				if i%20 == 0 {
					if _, err := srv.DeleteAsync(ks[0]).Wait(); err != nil {
						t.Errorf("delete: %v", err)
						return
					}
					mu.Lock()
					delete(acked, ks[0].String())
					mu.Unlock()
				}
			}
		}(c)
	}
	wg.Wait()
	srv.Close()
	if err := srv.DurabilityErr(); err != nil {
		t.Fatalf("durability error: %v", err)
	}

	info, err := wal.Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if info.TornTail {
		t.Fatal("clean shutdown left a torn tail")
	}
	ix2 := newRecoverableIndex()
	if err := Restore(ix2, info); err != nil {
		t.Fatal(err)
	}
	got := dumpIndex(ix2)
	if len(got) != len(acked) {
		t.Fatalf("recovered %d keys, acked state has %d", len(got), len(acked))
	}
	for k, v := range acked {
		if got[k] != v {
			t.Fatalf("key %s: recovered %d want %d", k, got[k], v)
		}
	}
}

// TestDurableRecoveryEquivalence round-trips a mixed workload through
// checkpoints + log pruning + OpenDurable twice and requires the
// recovered index be bit-identical to the survivor.
func TestDurableRecoveryEquivalence(t *testing.T) {
	dir := t.TempDir()
	log, err := wal.Open(wal.Options{Dir: dir, Policy: wal.SyncInterval, Interval: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	ix := newRecoverableIndex()
	// CheckpointEvery 4 forces several checkpoint+prune cycles.
	srv := NewServer(ix, Options{Durable: &Durable{Log: log, OwnLog: true, CheckpointEvery: 4}})

	g := workload.New(2)
	keys := g.VarLen(600, 12, 64)
	values := g.Values(len(keys))
	for i := 0; i < len(keys); i += 20 {
		if err := srv.InsertAsync(keys[i:i+20], values[i:i+20]).Wait(); err != nil {
			t.Fatal(err)
		}
		if i%100 == 80 {
			if _, err := srv.DeleteAsync(keys[i : i+7]...).Wait(); err != nil {
				t.Fatal(err)
			}
		}
	}
	want := dumpIndex(ix)
	srv.Close()
	if err := srv.DurabilityErr(); err != nil {
		t.Fatalf("durability error: %v", err)
	}

	// First restart: recovery must reproduce the pre-shutdown state.
	srv2, info, err := OpenDurable(dir, wal.Options{Policy: wal.SyncNone}, Options{}, newRecoverableIndex)
	if err != nil {
		t.Fatal(err)
	}
	if info.CheckpointSeq == 0 {
		t.Fatal("no checkpoint was written despite CheckpointEvery=4")
	}
	got := dumpIndex(srv2.ix)
	if len(got) != len(want) {
		t.Fatalf("restart 1: %d keys, want %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("restart 1: key %s = %d, want %d", k, got[k], v)
		}
	}

	// Write through the restarted server, restart again.
	extra := g.VarLen(60, 12, 64)
	ev := g.Values(len(extra))
	if err := srv2.InsertAsync(extra, ev).Wait(); err != nil {
		t.Fatal(err)
	}
	for i, k := range extra {
		want[k.String()] = ev[i]
	}
	want2 := dumpIndex(srv2.ix)
	srv2.Close()

	srv3, _, err := OpenDurable(dir, wal.Options{Policy: wal.SyncNone}, Options{}, newRecoverableIndex)
	if err != nil {
		t.Fatal(err)
	}
	defer srv3.Close()
	got = dumpIndex(srv3.ix)
	if len(got) != len(want2) {
		t.Fatalf("restart 2: %d keys, want %d", len(got), len(want2))
	}
	for k, v := range want2 {
		if got[k] != v {
			t.Fatalf("restart 2: key %s = %d, want %d", k, got[k], v)
		}
	}
	// And the replayed state matches the client-visible history too.
	if len(want2) != len(want) {
		t.Fatalf("oracle drift: snapshot dump %d keys, tracked %d", len(want2), len(want))
	}
}

// TestSnapshotConsistentUnderWrites is the COW soak (run under -race):
// snapshots taken while write epochs commit must land on epoch
// boundaries. Every insert call writes a *pair* of keys with equal
// values in one call — one call is always within one epoch — so any
// snapshot observing half a pair is a torn snapshot.
func TestSnapshotConsistentUnderWrites(t *testing.T) {
	dir := t.TempDir()
	log, err := wal.Open(wal.Options{Dir: dir, Policy: wal.SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	ix := newRecoverableIndex()
	srv := NewServer(ix, Options{Durable: &Durable{Log: log, OwnLog: true, CheckpointEvery: 16}})

	pairKey := func(i int, half uint64) Key {
		return bitstr.FromUint64(uint64(i)<<1|half, 40)
	}
	const pairs = 300
	stop := make(chan struct{})
	var writer sync.WaitGroup
	writer.Add(1)
	go func() {
		defer writer.Done()
		for i := 0; i < pairs; i++ {
			ks := []Key{pairKey(i, 0), pairKey(i, 1)}
			vs := []uint64{uint64(i) * 7, uint64(i) * 7}
			if err := srv.InsertAsync(ks, vs).Wait(); err != nil {
				t.Errorf("insert %d: %v", i, err)
				return
			}
		}
	}()

	var readers sync.WaitGroup
	for r := 0; r < 3; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap := srv.Snapshot()
				walked := 0
				snap.WalkKeys(func(k bitstr.String, v uint64) { walked++ })
				if walked != snap.KeyCount() {
					t.Errorf("snapshot internally inconsistent: walked %d, KeyCount %d", walked, snap.KeyCount())
					return
				}
				for i := 0; i < pairs; i++ {
					v0, ok0 := snap.Get(pairKey(i, 0))
					v1, ok1 := snap.Get(pairKey(i, 1))
					if ok0 != ok1 || (ok0 && v0 != v1) {
						t.Errorf("torn snapshot at pair %d: (%d,%v) vs (%d,%v)", i, v0, ok0, v1, ok1)
						return
					}
				}
			}
		}()
	}
	writer.Wait()
	close(stop)
	readers.Wait()
	srv.Close()
	if err := srv.DurabilityErr(); err != nil {
		t.Fatalf("durability error: %v", err)
	}
	if snap := srv.Snapshot(); snap.KeyCount() != 2*pairs {
		t.Fatalf("final snapshot has %d keys, want %d", snap.KeyCount(), 2*pairs)
	}
}

// TestDurableMetricsLint scrapes a durable server's registry — WAL,
// checkpoint, and recovery instruments included — and runs the repo's
// exposition lint over it.
func TestDurableMetricsLint(t *testing.T) {
	dir := t.TempDir()
	reg := metrics.NewRegistry()
	srv, _, err := OpenDurable(dir,
		wal.Options{Policy: wal.SyncEveryEpoch},
		Options{Metrics: reg, Durable: &Durable{CheckpointEvery: 2}},
		newRecoverableIndex)
	if err != nil {
		t.Fatal(err)
	}
	g := workload.New(3)
	keys := g.VarLen(120, 12, 48)
	values := g.Values(len(keys))
	for i := 0; i < len(keys); i += 10 {
		if err := srv.InsertAsync(keys[i:i+10], values[i:i+10]).Wait(); err != nil {
			t.Fatal(err)
		}
	}
	srv.Close()
	if err := srv.DurabilityErr(); err != nil {
		t.Fatal(err)
	}
	st := srv.WAL().Stats()
	if st.Appends != 12 || st.Fsyncs < st.Appends {
		t.Fatalf("wal stats: %+v (want 12 appends, per-epoch fsyncs)", st)
	}

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	body := b.String()
	for _, want := range []string{
		"pimtrie_wal_appends_total", "pimtrie_wal_fsyncs_total", "pimtrie_wal_last_seq",
		"pimtrie_checkpoint_writes_total", "pimtrie_checkpoint_keys", "pimtrie_checkpoint_last_seq",
		"pimtrie_wal_recovered_epochs",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %s", want)
		}
	}
	if problems := telemetry.LintExposition(body); len(problems) > 0 {
		t.Fatalf("exposition lint:\n%s", strings.Join(problems, "\n"))
	}
}

// TestDurableRequiresRecoverable pins the construction-time check.
func TestDurableRequiresRecoverable(t *testing.T) {
	dir := t.TempDir()
	log, err := wal.Open(wal.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer log.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("durable server over a non-recoverable index did not panic")
		}
	}()
	NewServer(pimtrie.New(4, pimtrie.Options{Seed: 1}), Options{Durable: &Durable{Log: log}})
}
