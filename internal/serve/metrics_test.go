package serve_test

import (
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/pimlab/pimtrie"
	"github.com/pimlab/pimtrie/internal/metrics"
	"github.com/pimlab/pimtrie/internal/serve"
)

// TestServeMetricsMatchStats runs a mixed concurrent workload with a
// registry attached and asserts the live instruments agree exactly
// with the Stats counters the scheduler maintains under its own lock —
// the instruments must be an observation of the same events, not a
// second bookkeeping that can drift.
func TestServeMetricsMatchStats(t *testing.T) {
	reg := metrics.NewRegistry()
	srv, _, pool := newServed(t, 8, 256, serve.Options{
		MaxBatch:  64,
		MaxLinger: time.Millisecond,
		CacheSize: 128,
		Metrics:   reg,
	})
	const workers = 8
	const iters = 30
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for it := 0; it < iters; it++ {
				k := pool[r.Intn(32)] // small hot set: dedupe + cache traffic
				switch r.Intn(8) {
				case 0:
					if err := srv.Insert(k, r.Uint64()); err != nil {
						t.Errorf("insert: %v", err)
					}
				case 1:
					if _, err := srv.DeleteAsync(k).Wait(); err != nil {
						t.Errorf("delete: %v", err)
					}
				case 2:
					if _, err := srv.LCPAsync(k, pool[r.Intn(len(pool))]).Wait(); err != nil {
						t.Errorf("lcp: %v", err)
					}
				case 3:
					if _, err := srv.Subtree(k.Prefix(1 + r.Intn(k.Len()))); err != nil {
						t.Errorf("subtree: %v", err)
					}
				default:
					if _, _, err := srv.GetAsync(k, pool[r.Intn(len(pool))]).Wait(); err != nil {
						t.Errorf("get: %v", err)
					}
				}
			}
		}(int64(300 + w))
	}
	wg.Wait()
	srv.Close()

	st := srv.Stats()
	v := reg.Varz()
	counter := func(series string) uint64 {
		c, ok := v[series].(uint64)
		if !ok {
			t.Fatalf("series %s missing or not a counter: %T", series, v[series])
		}
		return c
	}
	for op := serve.OpGet; op <= serve.OpDelete; op++ {
		l := `{op="` + op.String() + `"}`
		if got := counter("pimtrie_serve_requests_total" + l); got != st.Requests[op] {
			t.Errorf("requests[%v] = %d, Stats says %d", op, got, st.Requests[op])
		}
		if got := counter("pimtrie_serve_keys_requested_total" + l); got != st.KeysRequested[op] {
			t.Errorf("keys_requested[%v] = %d, Stats says %d", op, got, st.KeysRequested[op])
		}
		if got := counter("pimtrie_serve_keys_executed_total" + l); got != st.KeysExecuted[op] {
			t.Errorf("keys_executed[%v] = %d, Stats says %d", op, got, st.KeysExecuted[op])
		}
	}
	pairs := []struct {
		series string
		want   uint64
	}{
		{"pimtrie_serve_read_epochs_total", st.ReadEpochs},
		{"pimtrie_serve_write_epochs_total", st.WriteEpochs},
		{"pimtrie_serve_cache_hits_total", st.CacheHits},
		{"pimtrie_serve_cache_misses_total", st.CacheMisses},
		{"pimtrie_serve_cache_admissions_total", st.CacheAdmissions},
		{"pimtrie_serve_read_keys_deduped_total", st.DedupedKeys},
	}
	for _, p := range pairs {
		if got := counter(p.series); got != p.want {
			t.Errorf("%s = %d, Stats says %d", p.series, got, p.want)
		}
	}

	// Every admitted request resolves exactly once, so the latency
	// histograms must account for every request — including cache hits.
	var requests, observed uint64
	for op := serve.OpGet; op <= serve.OpDelete; op++ {
		requests += st.Requests[op]
		h, ok := v[`pimtrie_serve_request_seconds{op="`+op.String()+`"}`].(metrics.VarzHistogram)
		if !ok {
			t.Fatalf("latency histogram for %v missing", op)
		}
		observed += h.Count
	}
	if observed != requests {
		t.Errorf("latency observations = %d, admitted requests = %d", observed, requests)
	}

	// Quiesced server: nothing queued, no stage running.
	if d := v["pimtrie_serve_queue_depth"].(float64); d != 0 {
		t.Errorf("queue depth after Close = %v, want 0", d)
	}
	for _, stage := range []string{"prepare", "execute"} {
		if b := v[`pimtrie_serve_stage_busy{stage="`+stage+`"}`].(float64); b != 0 {
			t.Errorf("stage_busy{%s} after Close = %v, want 0", stage, b)
		}
	}

	// The dedupe-ratio gauge must equal the ratio its own counters imply.
	d := float64(st.DedupedKeys)
	e := float64(st.KeysExecuted[serve.OpGet] + st.KeysExecuted[serve.OpLCP] + st.KeysExecuted[serve.OpSubtree])
	if d > 0 {
		want := d / (d + e)
		if got := v["pimtrie_serve_read_dedupe_ratio"].(float64); got != want {
			t.Errorf("dedupe ratio gauge = %v, counters imply %v", got, want)
		}
	}

	// Healthy index: /healthz inputs are green.
	if got := v["pimtrie_index_degraded"].(float64); got != 0 {
		t.Errorf("degraded gauge = %v, want 0", got)
	}
	if h := srv.Health(); !h.Recoverable && len(h.DeadModules) != 0 {
		t.Errorf("Health() = %+v, want clean", h)
	}
}

// TestServeMetricsHealthFeed injects a scheduled module crash and
// asserts the post-epoch health sampling turns it into fault/recovery
// counters and keeps /healthz-style state fresh without touching the
// index from the scrape side.
func TestServeMetricsHealthFeed(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	keys := make([]serve.Key, 0, 128)
	values := make([]uint64, 0, 128)
	seen := map[string]bool{}
	for len(keys) < 128 {
		k := randomKey(r, 48)
		id := string(k.Bytes()) + ":" + string(rune(k.Len()))
		if seen[id] {
			continue
		}
		seen[id] = true
		keys = append(keys, k)
		values = append(values, uint64(len(keys)))
	}
	ix := pimtrie.New(4, pimtrie.Options{
		Seed: 3,
		Faults: &pimtrie.FaultPlan{
			Seed:   9,
			Events: []pimtrie.FaultEvent{{Round: 30, Kind: pimtrie.FaultCrash, Module: 1}},
		},
	})
	if err := ix.TryLoad(keys, values); err != nil {
		t.Fatalf("load: %v", err)
	}
	reg := metrics.NewRegistry()
	srv := serve.NewServer(ix, serve.Options{MaxBatch: 32, Metrics: reg})
	for i := 0; i < 40; i++ {
		if _, _, err := srv.GetAsync(keys[i%len(keys)], keys[(i*7)%len(keys)]).Wait(); err != nil {
			t.Fatalf("get %d: %v", i, err)
		}
	}
	srv.Close()
	h := srv.Health()
	if h.Crashes == 0 || h.Recoveries == 0 {
		t.Fatalf("fault plan did not fire/recover: %+v", h)
	}
	v := reg.Varz()
	if got := v[`pimtrie_index_faults_total{kind="crash"}`].(uint64); got != uint64(h.Crashes) {
		t.Errorf("crash counter = %d, Health says %d", got, h.Crashes)
	}
	if got := v["pimtrie_index_recoveries_total"].(uint64); got != uint64(h.Recoveries) {
		t.Errorf("recoveries counter = %d, Health says %d", got, h.Recoveries)
	}
	if got := v["pimtrie_index_recovery_io_words_total"].(uint64); got != uint64(h.RecoveryCost.IOWords) {
		t.Errorf("recovery IO counter = %d, Health says %d", got, h.RecoveryCost.IOWords)
	}
	if got := v["pimtrie_index_degraded"].(float64); got != 0 {
		t.Errorf("degraded after successful recovery = %v, want 0", got)
	}

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"# TYPE pimtrie_serve_request_seconds histogram",
		"pimtrie_serve_request_seconds_count",
		"# TYPE pimtrie_index_faults_total counter",
	} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

// TestServeMetricsOff asserts a server without a registry works and
// records nothing anywhere — the nil-check-only contract.
func TestServeMetricsOff(t *testing.T) {
	srv, _, pool := newServed(t, 4, 32, serve.Options{})
	defer srv.Close()
	if _, _, err := srv.GetAsync(pool...).Wait(); err != nil {
		t.Fatal(err)
	}
	if h := srv.Health(); h.Degraded || len(h.DeadModules) != 0 {
		t.Errorf("Health on plain server = %+v", h)
	}
}
