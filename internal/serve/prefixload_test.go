package serve_test

import (
	"testing"

	"github.com/pimlab/pimtrie"
	"github.com/pimlab/pimtrie/internal/serve"
)

// TestPrefixLoadCounters drives known-prefix traffic through a server
// with per-prefix load accounting and checks the exported counters
// land in the right buckets, counting unique executed keys (not
// admitted duplicates).
func TestPrefixLoadCounters(t *testing.T) {
	const bits = 3
	ix := pimtrie.New(4, pimtrie.Options{Seed: 3})
	srv := serve.NewServer(ix, serve.Options{PrefixLoadBits: bits})
	defer srv.Close()

	// Bucket of a key is its first 3 bits: "000..." -> 0, "111..." -> 7.
	k0 := pimtrie.KeyFromBits("000101010")
	k0b := pimtrie.KeyFromBits("000111111")
	k7 := pimtrie.KeyFromBits("111000")
	short := pimtrie.KeyFromBits("01") // pads to 010 -> bucket 2

	if err := srv.InsertAsync([]serve.Key{k0, k0b, k7, short},
		[]uint64{1, 2, 3, 4}).Wait(); err != nil {
		t.Fatal(err)
	}
	// Reads: the same unique key requested twice in one call still
	// executes once, so it must count once.
	if _, _, err := srv.GetAsync(k0, k0, k7).Wait(); err != nil {
		t.Fatal(err)
	}

	load, epochs := srv.PrefixLoad(nil)
	if epochs == 0 {
		t.Fatalf("PrefixLoad reported 0 epochs after committed traffic")
	}
	if len(load) != 1<<bits {
		t.Fatalf("PrefixLoad returned %d buckets, want %d", len(load), 1<<bits)
	}
	want := map[int]uint64{0: 3, 2: 1, 7: 2} // inserts + deduped reads
	for b, n := range load {
		if n != want[b] {
			t.Errorf("bucket %d = %d, want %d", b, n, want[b])
		}
	}

	// Snapshots into a reused buffer diff cleanly.
	buf := make([]uint64, 1<<bits)
	before, _ := srv.PrefixLoad(buf)
	if _, err := srv.LCPAsync(k7).Wait(); err != nil {
		t.Fatal(err)
	}
	after, _ := srv.PrefixLoad(make([]uint64, 1<<bits))
	if d := after[7] - before[7]; d != 1 {
		t.Fatalf("bucket 7 delta = %d, want 1", d)
	}
}

// TestPrefixLoadDisabled: without PrefixLoadBits the export is nil.
func TestPrefixLoadDisabled(t *testing.T) {
	ix := pimtrie.New(4, pimtrie.Options{Seed: 3})
	srv := serve.NewServer(ix, serve.Options{})
	defer srv.Close()
	if load, _ := srv.PrefixLoad(nil); load != nil {
		t.Fatalf("PrefixLoad = %v without PrefixLoadBits, want nil", load)
	}
}
