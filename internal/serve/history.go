package serve

// EpochRecord is one committed epoch in serial order, retained when
// Options.RecordHistory is set. Replaying the records in slice order
// against a sequential oracle must reproduce every recorded response —
// the property the soak test asserts.
type EpochRecord struct {
	// Write marks a write epoch; its Ops share one op type and committed
	// in slice order. A read epoch's Ops all observed the same state.
	Write bool
	Ops   []*OpRecord
}

// OpRecord is one request's inputs and responses within its epoch.
type OpRecord struct {
	Op     Op
	Keys   []Key
	Values []uint64 // OpInsert
	LCPs   []int    // OpLCP
	Vals   []uint64 // OpGet
	Found  []bool   // OpGet, OpDelete
	KVs    [][]KV   // OpSubtree
	// Cached marks a read served from the hot-key cache; it forms its own
	// single-op read epoch at its admission point in the serial order.
	Cached bool
}
