// Package serve is the concurrent serving layer in front of a
// pimtrie.Index. The index is strictly single-caller — batches are the
// unit of parallelism, exactly as in the paper's model — so a system
// serving many concurrent clients needs a front-end that turns small
// asynchronous requests into the large, well-shaped batches the
// algorithm (and the PIM Model's IO-time bounds) rewards. Server
// provides that front-end:
//
//   - Admission/coalescing: single- and multi-key async requests (Get,
//     LCP, Subtree, Insert, Delete) are queued per op type and coalesced
//     into batches under a max-batch-size / max-linger policy.
//   - Read/write epochs: reads from one epoch are grouped and
//     deduplicated together (singleflight on identical in-flight keys);
//     mutations form ordered write epochs that fence reads. Every
//     response is consistent with the serial order of committed epochs.
//   - Host/PIM pipelining: the host-side preparation of epoch k+1
//     (query-trie construction, sorting, hashing — Index.PrepareBatch)
//     overlaps with the PIM rounds of epoch k in a two-stage pipeline.
//   - Hot-key cache (opt-in): read results are cached and invalidated by
//     the write-epoch counter, so Zipfian traffic short-circuits before
//     touching the simulator.
//
// Model metrics for any individual executed batch are bit-identical to
// direct Index calls on the same batch; the serving layer changes which
// batches run and overlaps wall-clock work, never the per-batch model
// cost.
package serve

import (
	"errors"
	"sync/atomic"
	"time"

	"github.com/pimlab/pimtrie"
	"github.com/pimlab/pimtrie/internal/metrics"
)

// Key and KV alias the index's key types.
type (
	Key = pimtrie.Key
	KV  = pimtrie.KV
)

// ErrClosed is reported by requests submitted after Close.
var ErrClosed = errors.New("serve: server closed")

// Op identifies a request type.
type Op int

// The five request types, in queue order.
const (
	OpGet Op = iota
	OpLCP
	OpSubtree
	OpInsert
	OpDelete
	numOps
)

func (o Op) String() string {
	switch o {
	case OpGet:
		return "get"
	case OpLCP:
		return "lcp"
	case OpSubtree:
		return "subtree"
	case OpInsert:
		return "insert"
	case OpDelete:
		return "delete"
	}
	return "op?"
}

// isRead reports whether the op leaves the index unchanged.
func (o Op) isRead() bool { return o == OpGet || o == OpLCP || o == OpSubtree }

// Options configures a Server. The zero value serves with the defaults
// noted on each field.
type Options struct {
	// MaxBatch bounds the unique keys per executed sub-batch (default
	// 1024).
	MaxBatch int
	// MaxLinger bounds how long the batcher holds a non-full epoch open
	// for more requests before dispatching it. The default 0 dispatches as
	// soon as the executor frees up; coalescing then comes purely from
	// executor backpressure, adding no idle latency. With AdaptiveLinger
	// set it is the upper clamp on the controller's choice instead
	// (default then 5ms).
	MaxLinger time.Duration
	// AdaptiveLinger replaces the static MaxLinger policy with the
	// adaptive epoch controller: linger and target epoch size are chosen
	// per epoch from the observed arrival rate and a live fit of the
	// index's epoch service time, collapsing to MinLinger under light
	// load and growing toward MaxBatch/MaxLinger under bursts. See
	// adaptive.go for the policy.
	AdaptiveLinger bool
	// MinLinger is the lower clamp on the adaptive controller's linger
	// (default 0: dispatch immediately when underloaded). Ignored
	// without AdaptiveLinger.
	MinLinger time.Duration
	// CacheSize enables the hot-key read cache with room for that many
	// entries (default 0: disabled). Cached Get/LCP results are stamped
	// with the write-epoch counter and invalidated by any later write
	// epoch.
	CacheSize int
	// NoPipeline disables the two-stage host pipeline; epoch formation,
	// host preparation and index execution then share one goroutine.
	NoPipeline bool
	// RecordHistory retains the committed epoch order together with every
	// request's inputs and responses so tests can replay it against a
	// serial oracle. Memory grows without bound; testing only.
	RecordHistory bool
	// Metrics, when non-nil, registers the live serving instruments in
	// the given registry and keeps them updated: per-op arrival counters
	// and end-to-end latency histograms, queue-depth and pipeline-stage
	// gauges, linger and epoch-size histograms, dedupe/cache counters,
	// and the post-epoch index health feed behind Server.Health. Nil
	// (the default) disables instrumentation entirely — the hot path
	// then pays one nil check per site.
	Metrics *metrics.Registry
	// MetricLabels are appended to every instrument this server
	// registers, so several servers (the per-shard servers of a
	// shard.Router) can share one registry without their series
	// colliding — each shard contributes its own shard="i" series and
	// the exposition stays lint-clean. Ignored without Metrics.
	MetricLabels []metrics.Label
	// Durable enables the write-ahead durability layer: every
	// committed write epoch is appended to Durable.Log before its
	// futures resolve (acknowledged means durable), with periodic
	// checkpoints bounding the restart replay tail. Requires a
	// recoverable index. See durable.go and the wal package.
	Durable *Durable
	// SnapshotReads enables the wait-free read fast path: the executor
	// publishes the latest post-epoch COW snapshot through an atomic
	// pointer and ReadSnapshot Gets (GetAsyncWith, GetWith, GetBatch)
	// probe it on the caller's goroutine, bypassing the epoch scheduler
	// entirely for keys the recent-writes filter proves unchanged since
	// publication. Requires a recoverable index (pimtrie
	// Options.Recoverable: snapshots flatten the host shadow); NewServer
	// panics otherwise. See snapshot.go for the staleness bound.
	SnapshotReads bool
	// SnapshotFilterBits sizes the recent-writes filter at 2^bits
	// epoch-stamp slots (default 14 — 128 KiB; clamped to [8, 24]).
	// Smaller filters only cost spurious fallbacks to the epoch path,
	// never wrong answers. Ignored without SnapshotReads.
	SnapshotFilterBits int
	// PrefixLoadBits enables per-key-prefix load accounting: every
	// unique key an epoch sends to the index is counted in the bucket
	// of its first PrefixLoadBits bits (bitstr.PrefixIndex — shorter
	// keys pad with zeros, so buckets are contiguous key ranges). The
	// counters, read with Server.PrefixLoad, are the skew signal the
	// sharding router's hot-range migration policy consumes. 0 (the
	// default) disables the accounting; values are clamped to [1, 16]
	// otherwise (at most 65536 buckets).
	PrefixLoadBits int
}

func (o Options) withDefaults() Options {
	if o.MaxBatch <= 0 {
		o.MaxBatch = 1024
	}
	if o.AdaptiveLinger && o.MaxLinger <= 0 {
		o.MaxLinger = defaultAdaptiveMaxLinger
	}
	if o.PrefixLoadBits > 16 {
		o.PrefixLoadBits = 16
	}
	if o.PrefixLoadBits < 0 {
		o.PrefixLoadBits = 0
	}
	if o.SnapshotFilterBits <= 0 {
		o.SnapshotFilterBits = 14
	}
	if o.SnapshotFilterBits < 8 {
		o.SnapshotFilterBits = 8
	}
	if o.SnapshotFilterBits > 24 {
		o.SnapshotFilterBits = 24
	}
	return o
}

// Stats are cumulative serving counters, indexed by Op where per-op.
type Stats struct {
	// Requests counts admitted requests (calls, not keys) per op.
	Requests [numOps]uint64
	// KeysRequested counts keys across admitted requests per op.
	KeysRequested [numOps]uint64
	// KeysExecuted counts unique keys actually sent to the index per op —
	// the difference to KeysRequested is singleflight dedupe plus cache
	// short-circuits.
	KeysExecuted [numOps]uint64
	// ReadEpochs and WriteEpochs count committed epochs by kind.
	ReadEpochs, WriteEpochs uint64
	// CacheHits counts read requests served entirely from the hot-key
	// cache; CacheMisses counts read requests that reached the queues.
	CacheHits, CacheMisses uint64
	// CacheAdmissions counts read results admitted into the hot-key
	// cache (skew-aware admission may reject cold keys).
	CacheAdmissions uint64
	// DedupedKeys counts read keys absorbed by singleflight dedupe: keys
	// admitted into read epochs minus the unique keys executed for them.
	DedupedKeys uint64
	// MaxEpochKeys is the largest unique-key count of any executed
	// sub-batch.
	MaxEpochKeys int
	// SnapshotKeys counts keys served wait-free from the published COW
	// snapshot (Options.SnapshotReads); SnapshotFallbacks counts
	// ReadSnapshot keys the recent-writes filter sent back to the epoch
	// path. Neither appears in Requests/KeysRequested — snapshot hits
	// never enter the scheduler.
	SnapshotKeys, SnapshotFallbacks uint64
}

// future carries one request's results. Resolution is exactly-once by
// construction: settle/fail race through one CAS on state, so the
// completion workers, the executor's panic-recover sweep, and the WAL
// error path can all attempt resolution without coordinating. Result
// fields are written only by the winning resolver before done closes;
// waiters read them only after done.
type future struct {
	done  chan struct{}
	state atomic.Uint32 // futPending -> futSettled, CAS guarded
	err   error
	ints  []int
	vals  []uint64
	found []bool
	kvs   [][]KV
}

const (
	futPending = iota
	futSettled
)

func newFuture() *future { return &future{done: make(chan struct{})} }

// closedDone is shared by every pre-resolved future: the snapshot fast
// path resolves on the caller's goroutine, so Wait must not block and
// no per-request channel is ever needed.
var closedDone = func() chan struct{} {
	ch := make(chan struct{})
	close(ch)
	return ch
}()

// resolvedFuture returns a future born settled; the caller fills the
// result fields before handing it out.
func resolvedFuture() *future {
	f := &future{done: closedDone}
	f.state.Store(futSettled)
	return f
}

// settle resolves the future successfully; it reports whether this call
// won (false: already resolved, a no-op).
func (f *future) settle() bool {
	if !f.state.CompareAndSwap(futPending, futSettled) {
		return false
	}
	close(f.done)
	return true
}

// fail resolves the future with err; it reports whether this call won.
func (f *future) fail(err error) bool {
	if !f.state.CompareAndSwap(futPending, futSettled) {
		return false
	}
	f.err = err
	close(f.done)
	return true
}

// GetFuture is the handle of an in-flight Get request.
type GetFuture struct{ f *future }

// Wait blocks until the request is served: values[i], found[i] answer
// the i-th requested key.
func (g *GetFuture) Wait() (values []uint64, found []bool, err error) {
	<-g.f.done
	return g.f.vals, g.f.found, g.f.err
}

// LCPFuture is the handle of an in-flight LCP request.
type LCPFuture struct{ f *future }

// Wait blocks until the request is served: lcps[i] answers the i-th
// requested key.
func (l *LCPFuture) Wait() (lcps []int, err error) {
	<-l.f.done
	return l.f.ints, l.f.err
}

// SubtreeFuture is the handle of an in-flight Subtree request.
type SubtreeFuture struct{ f *future }

// Wait blocks until the request is served: results[i] holds the stored
// pairs extending the i-th requested prefix, in lexicographic order.
// Result slices may be shared with concurrent duplicate requests; treat
// them as read-only.
func (s *SubtreeFuture) Wait() (results [][]KV, err error) {
	<-s.f.done
	return s.f.kvs, s.f.err
}

// InsertFuture is the handle of an in-flight Insert request.
type InsertFuture struct{ f *future }

// Wait blocks until the mutation's epoch has committed.
func (i *InsertFuture) Wait() error {
	<-i.f.done
	return i.f.err
}

// DeleteFuture is the handle of an in-flight Delete request.
type DeleteFuture struct{ f *future }

// Wait blocks until the mutation's epoch has committed: found[i]
// reports whether the i-th requested key was present (duplicates report
// true once, matching sequential deletion in epoch order).
func (d *DeleteFuture) Wait() (found []bool, err error) {
	<-d.f.done
	return d.f.found, d.f.err
}

// GetAsync enqueues an exact-lookup request for the given keys.
func (s *Server) GetAsync(keys ...Key) *GetFuture {
	return &GetFuture{f: s.submit(OpGet, keys, nil)}
}

// LCPAsync enqueues a longest-common-prefix request for the given keys.
func (s *Server) LCPAsync(keys ...Key) *LCPFuture {
	return &LCPFuture{f: s.submit(OpLCP, keys, nil)}
}

// SubtreeAsync enqueues a prefix-scan request for the given prefixes.
func (s *Server) SubtreeAsync(prefixes ...Key) *SubtreeFuture {
	return &SubtreeFuture{f: s.submit(OpSubtree, prefixes, nil)}
}

// InsertAsync enqueues a mutation storing the given pairs; it panics if
// the slices disagree in length. Duplicates resolve in epoch order,
// later writes winning.
func (s *Server) InsertAsync(keys []Key, values []uint64) *InsertFuture {
	if len(keys) != len(values) {
		panic("serve: InsertAsync keys/values length mismatch")
	}
	return &InsertFuture{f: s.submit(OpInsert, keys, values)}
}

// DeleteAsync enqueues a mutation removing the given keys.
func (s *Server) DeleteAsync(keys ...Key) *DeleteFuture {
	return &DeleteFuture{f: s.submit(OpDelete, keys, nil)}
}

// Get is the blocking single-key convenience form of GetAsync.
func (s *Server) Get(key Key) (value uint64, found bool, err error) {
	vals, fnd, err := s.GetAsync(key).Wait()
	if err != nil {
		return 0, false, err
	}
	return vals[0], fnd[0], nil
}

// LCP is the blocking single-key convenience form of LCPAsync.
func (s *Server) LCP(key Key) (int, error) {
	lcps, err := s.LCPAsync(key).Wait()
	if err != nil {
		return 0, err
	}
	return lcps[0], nil
}

// Subtree is the blocking single-prefix convenience form of
// SubtreeAsync.
func (s *Server) Subtree(prefix Key) ([]KV, error) {
	res, err := s.SubtreeAsync(prefix).Wait()
	if err != nil {
		return nil, err
	}
	return res[0], nil
}

// Insert is the blocking single-pair convenience form of InsertAsync.
func (s *Server) Insert(key Key, value uint64) error {
	return s.InsertAsync([]Key{key}, []uint64{value}).Wait()
}

// Delete is the blocking single-key convenience form of DeleteAsync.
func (s *Server) Delete(key Key) (found bool, err error) {
	fnd, err := s.DeleteAsync(key).Wait()
	if err != nil {
		return false, err
	}
	return fnd[0], nil
}
