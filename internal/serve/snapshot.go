package serve

// The wait-free snapshot read path. The epoch scheduler exists to
// amortize host<->PIM communication, but it taxes every Get with epoch
// queueing, linger, and future resolution even when the caller would
// happily read slightly stale data. This file adds a second consistency
// mode: the executor publishes the latest post-epoch COW snapshot
// (trie.Flat + a write-epoch stamp) through an atomic pointer, and
// ReadSnapshot Gets probe it lock-free on the caller's goroutine — no
// queue, no epoch, no goroutine handoff, no allocation beyond the
// result slices.
//
// Staleness is bounded per key by a recent-writes filter: a power-of-two
// table of write-epoch stamps, two slots per key (derived from one
// 64-bit hash), written only by the executor as each write epoch
// commits. A reader trusts the published snapshot for a key iff
// min(slot1, slot2) <= published stamp — the key cannot have been
// written by any epoch later than the snapshot. Slot stamps only grow
// and are recorded BEFORE the write's futures resolve, so the filter
// has no false negatives: a snapshot answer for a trusted key is
// per-key identical to ReadStrong at that instant. False positives
// (unrelated keys sharing a slot) only cause spurious fallbacks to the
// epoch path, never wrong answers.
//
// Publication is pair-atomic (one pointer swap installs flat and stamp
// together) and the stamp is monotone: the publisher loads the
// committed-write counter BEFORE flattening, so the stamp is a safe
// lower bound on what the snapshot contains, and a single publisher
// goroutine only moves it forward.

import (
	"sync/atomic"

	"github.com/pimlab/pimtrie"
)

// Consistency selects the read path of a Get.
type Consistency int

const (
	// ReadStrong serves through the epoch scheduler: every answer is
	// consistent with the serial order of committed epochs.
	ReadStrong Consistency = iota
	// ReadSnapshot serves from the published COW snapshot when the
	// recent-writes filter proves every requested key unchanged since
	// publication, falling back to the epoch path otherwise. Bounded
	// staleness, per-key read-your-writes: an acknowledged write is
	// never missed (the filter forces the fallback until a snapshot
	// containing it is published).
	ReadSnapshot
)

// snapState is one published (snapshot, stamp) pair; swapped in as a
// unit so readers can never observe a torn combination.
type snapState struct {
	flat  *pimtrie.Snapshot
	epoch uint64 // write epochs committed before the flatten started
}

// writeFilter is the recent-writes filter: 2^bits epoch-stamp slots,
// two per key. Written only by the executor (monotone stores, no CAS
// needed); read lock-free by snapshot readers. Never cleared — stale
// stamps age out naturally as the published epoch overtakes them.
type writeFilter struct {
	mask  uint64
	slots []atomic.Uint64
}

func newWriteFilter(bits int) *writeFilter {
	return &writeFilter{
		mask:  uint64(1)<<uint(bits) - 1,
		slots: make([]atomic.Uint64, uint64(1)<<uint(bits)),
	}
}

// note records that the key hashing to h was written by write epoch
// stamp. Executor only; stamps are non-decreasing across epochs, so a
// plain store never regresses a slot.
func (w *writeFilter) note(h, stamp uint64) {
	w.slots[h&w.mask].Store(stamp)
	w.slots[(h>>32)&w.mask].Store(stamp)
}

// writtenSince reports whether the key hashing to h may have been
// written by an epoch later than stamp. No false negatives: note(h, w)
// leaves both slots >= w, so min > stamp whenever w > stamp.
func (w *writeFilter) writtenSince(h, stamp uint64) bool {
	a := w.slots[h&w.mask].Load()
	b := w.slots[(h>>32)&w.mask].Load()
	if b < a {
		a = b
	}
	return a > stamp
}

// keyHash mixes a key's length and raw words into one 64-bit hash whose
// low and high halves index the filter independently (splitmix64-style
// finalizer for avalanche).
func keyHash(k Key) uint64 {
	h := uint64(k.Len())*0x9e3779b97f4a7c15 + 0x2545f4914f6cdd1d
	for _, w := range k.RawWords() {
		h ^= w
		h *= 0xbf58476d1ce4e5b9
		h ^= h >> 31
	}
	h *= 0x94d049bb133111eb
	h ^= h >> 29
	return h
}

// publisher is the snapshot-publication goroutine: it wakes on the
// executor's dirty signal after each committed write epoch and installs
// a fresh (flat, stamp) pair. Index.Snapshot is memoized per shadow
// version and safe concurrently with executing batches (core COW
// snapshots, PR 9), so republication costs one flatten per version at
// most and never blocks the pipeline.
func (s *Server) publisher() {
	defer s.wg.Done()
	for range s.snapDirty {
		s.publishSnapshot()
	}
	// Dirty channel closed: execution is over. Publish once more so the
	// server's final state is what stays visible to late readers.
	s.publishSnapshot()
}

// publishSnapshot installs the current snapshot under a stamp loaded
// BEFORE flattening — the flat may contain later epochs, making the
// stamp a safe lower bound (the filter then conservatively falls back
// for keys written in the gap). Single caller (the publisher), so the
// published stamp is monotone.
func (s *Server) publishSnapshot() {
	e := s.committedW.Load()
	if old := s.pub.Load(); old != nil && old.epoch == e {
		return
	}
	ss := &snapState{flat: s.ix.Snapshot(), epoch: e}
	s.pub.Store(ss)
	if s.met != nil {
		s.met.snapEpoch.Set(float64(e))
	}
}

// SnapshotView returns the currently published (snapshot, write-epoch
// stamp) pair, or (nil, 0) when snapshot reads are disabled. The pair
// is immutable; safe from any goroutine.
func (s *Server) SnapshotView() (*pimtrie.Snapshot, uint64) {
	ss := s.pub.Load()
	if ss == nil {
		return nil, 0
	}
	return ss.flat, ss.epoch
}

// snapshotGetInto answers every key from the published snapshot into
// the caller's slices, or serves none of them (all-or-nothing: the
// single-server fast path keeps one request one consistency decision).
// Wait-free: no locks, no channels, no goroutines.
func (s *Server) snapshotGetInto(keys []Key, vals []uint64, found []bool) bool {
	ss := s.pub.Load()
	if ss == nil {
		return false
	}
	for _, k := range keys {
		if s.snapFilter.writtenSince(keyHash(k), ss.epoch) {
			s.noteSnapshotFallback(len(keys), ss)
			return false
		}
	}
	ss.flat.GetBatch(keys, vals, found)
	s.noteSnapshotServed(keys, ss)
	return true
}

// TrySnapshotGet answers as many keys as the published snapshot can
// serve, marking served[i] per key and returning the count. Unserved
// slots are untouched; the caller routes them through the epoch path.
// This is the per-key form the shard router uses so one stale key does
// not drag a whole shard-local batch onto the barrier. All slices must
// have len(keys). Wait-free.
func (s *Server) TrySnapshotGet(keys []Key, vals []uint64, found []bool, served []bool) int {
	ss := s.pub.Load()
	if ss == nil {
		for i := range served {
			served[i] = false
		}
		return 0
	}
	n := 0
	for i, k := range keys {
		ok := !s.snapFilter.writtenSince(keyHash(k), ss.epoch)
		served[i] = ok
		if ok {
			n++
		}
	}
	switch {
	case n == 0:
		s.noteSnapshotFallback(len(keys), ss)
		return 0
	case n == len(keys):
		ss.flat.GetBatch(keys, vals, found)
	default:
		sub := make([]Key, 0, n)
		for i, ok := range served {
			if ok {
				sub = append(sub, keys[i])
			}
		}
		sv := make([]uint64, n)
		sf := make([]bool, n)
		ss.flat.GetBatch(sub, sv, sf)
		j := 0
		for i, ok := range served {
			if ok {
				vals[i], found[i] = sv[j], sf[j]
				j++
			}
		}
		s.noteSnapshotFallback(len(keys)-n, ss)
	}
	s.noteSnapshotServedN(keys, served, n, ss)
	return n
}

func (s *Server) noteSnapshotServed(keys []Key, ss *snapState) {
	s.snapKeys.Add(uint64(len(keys)))
	if s.met != nil {
		s.met.snapReads.Add(uint64(len(keys)))
		s.met.snapAge.Set(float64(s.committedW.Load() - ss.epoch))
	}
	if s.prefixLoad != nil {
		// Snapshot hits still count toward the per-prefix load signal:
		// the sharding migration policy must keep seeing read-heavy hot
		// ranges even when they never touch the epoch path.
		for _, k := range keys {
			atomic.AddUint64(&s.prefixLoad[k.PrefixIndex(s.opts.PrefixLoadBits)], 1)
		}
	}
}

func (s *Server) noteSnapshotServedN(keys []Key, served []bool, n int, ss *snapState) {
	s.snapKeys.Add(uint64(n))
	if s.met != nil {
		s.met.snapReads.Add(uint64(n))
		s.met.snapAge.Set(float64(s.committedW.Load() - ss.epoch))
	}
	if s.prefixLoad != nil {
		for i, k := range keys {
			if served[i] {
				atomic.AddUint64(&s.prefixLoad[k.PrefixIndex(s.opts.PrefixLoadBits)], 1)
			}
		}
	}
}

func (s *Server) noteSnapshotFallback(keys int, ss *snapState) {
	s.snapFallbacks.Add(uint64(keys))
	if s.met != nil {
		s.met.snapFallbacks.Add(uint64(keys))
		s.met.snapAge.Set(float64(s.committedW.Load() - ss.epoch))
	}
}

// GetAsyncWith is GetAsync with an explicit consistency mode.
// ReadSnapshot resolves immediately (wait-free) when the published
// snapshot can answer every key; otherwise — filter conflict, no
// snapshot published, or snapshot reads disabled — it transparently
// degrades to the ReadStrong epoch path.
func (s *Server) GetAsyncWith(c Consistency, keys ...Key) *GetFuture {
	if c == ReadSnapshot && s.snapFilter != nil && len(keys) > 0 {
		vals := make([]uint64, len(keys))
		found := make([]bool, len(keys))
		if s.snapshotGetInto(keys, vals, found) {
			f := resolvedFuture()
			f.vals, f.found = vals, found
			return &GetFuture{f: f}
		}
	}
	return s.GetAsync(keys...)
}

// GetWith is the blocking single-key form of GetAsyncWith.
func (s *Server) GetWith(c Consistency, key Key) (value uint64, found bool, err error) {
	vals, fnd, err := s.GetAsyncWith(c, key).Wait()
	if err != nil {
		return 0, false, err
	}
	return vals[0], fnd[0], nil
}

// GetBatch answers keys into the caller-provided slices (both len(keys))
// under the given consistency mode. The ReadSnapshot fast path writes
// results without a single allocation; the fallback runs one epoch-path
// request and copies. This is the bulk form benchmark loops and the
// shard router want.
func (s *Server) GetBatch(c Consistency, keys []Key, vals []uint64, found []bool) error {
	if c == ReadSnapshot && s.snapFilter != nil && len(keys) > 0 &&
		s.snapshotGetInto(keys, vals, found) {
		return nil
	}
	v, f, err := s.GetAsync(keys...).Wait()
	if err != nil {
		return err
	}
	copy(vals, v)
	copy(found, f)
	return nil
}
