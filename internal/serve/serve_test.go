package serve_test

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"github.com/pimlab/pimtrie"
	"github.com/pimlab/pimtrie/internal/bitstr"
	"github.com/pimlab/pimtrie/internal/serve"
	"github.com/pimlab/pimtrie/internal/trie"
)

// newServed builds an index preloaded with n distinct keys, a matching
// sequential oracle, and a Server over the index.
func newServed(t *testing.T, p, n int, opts serve.Options) (*serve.Server, *trie.Trie, []serve.Key) {
	t.Helper()
	r := rand.New(rand.NewSource(7))
	seen := make(map[string]bool, n)
	keys := make([]serve.Key, 0, n)
	values := make([]uint64, 0, n)
	for len(keys) < n {
		k := randomKey(r, 72)
		id := fmt.Sprintf("%x/%d", k.Bytes(), k.Len())
		if seen[id] {
			continue
		}
		seen[id] = true
		keys = append(keys, k)
		values = append(values, uint64(len(keys)))
	}
	ix := pimtrie.New(p, pimtrie.Options{Seed: 11})
	ix.Load(keys, values)
	oracle := trie.New()
	for i, k := range keys {
		oracle.Insert(k, values[i])
	}
	return serve.NewServer(ix, opts), oracle, keys
}

func randomKey(r *rand.Rand, maxLen int) serve.Key {
	n := 1 + r.Intn(maxLen)
	b := make([]byte, (n+7)/8)
	r.Read(b)
	return pimtrie.KeyFromBytes(b).Prefix(n)
}

// replayHistory replays the committed epoch order against the oracle
// and asserts every recorded response matches sequential execution.
func replayHistory(t *testing.T, hist []*serve.EpochRecord, oracle *trie.Trie) {
	t.Helper()
	for ei, er := range hist {
		for _, op := range er.Ops {
			switch op.Op {
			case serve.OpInsert:
				for i, k := range op.Keys {
					oracle.Insert(k, op.Values[i])
				}
			case serve.OpDelete:
				for i, k := range op.Keys {
					if got, want := op.Found[i], oracle.Delete(k); got != want {
						t.Fatalf("epoch %d: Delete(%q) found=%v, serial replay says %v", ei, k, got, want)
					}
				}
			case serve.OpGet:
				for i, k := range op.Keys {
					wv, wok := oracle.Get(k)
					if op.Found[i] != wok || (wok && op.Vals[i] != wv) {
						t.Fatalf("epoch %d (cached=%v): Get(%q) = %d,%v, serial replay says %d,%v",
							ei, op.Cached, k, op.Vals[i], op.Found[i], wv, wok)
					}
				}
			case serve.OpLCP:
				for i, k := range op.Keys {
					if want := oracle.LCPLen(k); op.LCPs[i] != want {
						t.Fatalf("epoch %d (cached=%v): LCP(%q) = %d, serial replay says %d",
							ei, op.Cached, k, op.LCPs[i], want)
					}
				}
			case serve.OpSubtree:
				for i, k := range op.Keys {
					want := oracle.SubtreeKeys(k)
					got := op.KVs[i]
					if len(got) != len(want) {
						t.Fatalf("epoch %d: Subtree(%q) returned %d pairs, serial replay says %d",
							ei, k, len(got), len(want))
					}
					for j := range want {
						if !bitstr.Equal(got[j].Key, want[j].Key) || got[j].Value != want[j].Value {
							t.Fatalf("epoch %d: Subtree(%q)[%d] = (%q,%d), serial replay says (%q,%d)",
								ei, k, j, got[j].Key, got[j].Value, want[j].Key, want[j].Value)
						}
					}
				}
			}
		}
	}
}

// TestServeSoak hammers a Server from many goroutines with mixed reads
// and writes of random batch sizes, then asserts every response it
// handed out is consistent with a serial replay of the committed epoch
// order. Run under -race.
func TestServeSoak(t *testing.T) {
	configs := []struct {
		name string
		opts serve.Options
	}{
		{"pipelined", serve.Options{MaxBatch: 64, RecordHistory: true}},
		{"linger+cache", serve.Options{MaxBatch: 64, MaxLinger: time.Millisecond, CacheSize: 256, RecordHistory: true}},
		{"no-pipeline", serve.Options{MaxBatch: 32, NoPipeline: true, RecordHistory: true}},
		{"adaptive", serve.Options{MaxBatch: 64, AdaptiveLinger: true, CacheSize: 128, RecordHistory: true}},
	}
	for _, tc := range configs {
		t.Run(tc.name, func(t *testing.T) {
			srv, oracle, pool := newServed(t, 8, 400, tc.opts)
			const workers = 12
			const iters = 40
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(seed int64) {
					defer wg.Done()
					r := rand.New(rand.NewSource(seed))
					pick := func() serve.Key {
						if r.Intn(4) == 0 {
							return randomKey(r, 72)
						}
						return pool[r.Intn(len(pool))]
					}
					for it := 0; it < iters; it++ {
						nk := 1 + r.Intn(6)
						keys := make([]serve.Key, nk)
						for i := range keys {
							keys[i] = pick()
						}
						switch r.Intn(10) {
						case 0, 1:
							vals := make([]uint64, nk)
							for i := range vals {
								vals[i] = r.Uint64()
							}
							if err := srv.InsertAsync(keys, vals).Wait(); err != nil {
								t.Errorf("insert: %v", err)
							}
						case 2:
							if _, err := srv.DeleteAsync(keys...).Wait(); err != nil {
								t.Errorf("delete: %v", err)
							}
						case 3:
							prefixes := make([]serve.Key, nk)
							for i, k := range keys {
								prefixes[i] = k.Prefix(1 + r.Intn(k.Len()))
							}
							if _, err := srv.SubtreeAsync(prefixes...).Wait(); err != nil {
								t.Errorf("subtree: %v", err)
							}
						case 4, 5, 6:
							if _, err := srv.LCPAsync(keys...).Wait(); err != nil {
								t.Errorf("lcp: %v", err)
							}
						default:
							if _, _, err := srv.GetAsync(keys...).Wait(); err != nil {
								t.Errorf("get: %v", err)
							}
						}
					}
				}(int64(100 + w))
			}
			wg.Wait()
			srv.Close()
			st := srv.Stats()
			if st.ReadEpochs == 0 || st.WriteEpochs == 0 {
				t.Fatalf("soak formed no epochs of one kind: %+v", st)
			}
			replayHistory(t, srv.History(), oracle)
		})
	}
}

// TestServeDedupe asserts singleflight: N concurrent identical Gets
// coalesce into one executed key.
func TestServeDedupe(t *testing.T) {
	srv, _, pool := newServed(t, 4, 64, serve.Options{MaxLinger: 200 * time.Millisecond})
	defer srv.Close()
	const n = 32
	hot := pool[0]
	start := make(chan struct{})
	var wg sync.WaitGroup
	res := make([]uint64, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			v, found, err := srv.Get(hot)
			if err != nil || !found {
				t.Errorf("Get(hot) = %d,%v,%v", v, found, err)
			}
			res[i] = v
		}(i)
	}
	close(start)
	wg.Wait()
	for i := 1; i < n; i++ {
		if res[i] != res[0] {
			t.Fatalf("deduped Gets disagree: %d vs %d", res[i], res[0])
		}
	}
	st := srv.Stats()
	if st.KeysRequested[serve.OpGet] != n {
		t.Fatalf("KeysRequested[get] = %d, want %d", st.KeysRequested[serve.OpGet], n)
	}
	if st.KeysExecuted[serve.OpGet] != 1 {
		t.Fatalf("KeysExecuted[get] = %d, want 1 (singleflight)", st.KeysExecuted[serve.OpGet])
	}
	if st.ReadEpochs != 1 {
		t.Fatalf("ReadEpochs = %d, want 1", st.ReadEpochs)
	}
}

// TestServeCache exercises the hot-key cache: repeat reads hit, a write
// epoch invalidates, and post-invalidation reads see the new value.
func TestServeCache(t *testing.T) {
	srv, _, pool := newServed(t, 4, 64, serve.Options{CacheSize: 16})
	defer srv.Close()
	hot := pool[0]
	v0, found, err := srv.Get(hot)
	if err != nil || !found {
		t.Fatalf("Get = %d,%v,%v", v0, found, err)
	}
	for i := 0; i < 5; i++ {
		v, _, err := srv.Get(hot)
		if err != nil || v != v0 {
			t.Fatalf("repeat Get = %d,%v, want %d", v, err, v0)
		}
	}
	if st := srv.Stats(); st.CacheHits == 0 {
		t.Fatalf("no cache hits on repeated hot-key Gets: %+v", st)
	}
	if err := srv.Insert(hot, 9999); err != nil {
		t.Fatalf("Insert: %v", err)
	}
	v, found, err := srv.Get(hot)
	if err != nil || !found || v != 9999 {
		t.Fatalf("post-write Get = %d,%v,%v, want 9999 (stale cache served?)", v, found, err)
	}
	hits := srv.Stats().CacheHits
	for i := 0; i < 3; i++ {
		if v, _, _ := srv.Get(hot); v != 9999 {
			t.Fatalf("refilled Get = %d, want 9999", v)
		}
	}
	if st := srv.Stats(); st.CacheHits == hits {
		t.Fatalf("cache did not refill after invalidation: %+v", st)
	}
}

// TestServeClosed checks Close semantics: queued work drains, later
// submissions fail with ErrClosed.
func TestServeClosed(t *testing.T) {
	srv, _, pool := newServed(t, 4, 32, serve.Options{})
	futs := make([]*serve.LCPFuture, 8)
	for i := range futs {
		futs[i] = srv.LCPAsync(pool[i])
	}
	srv.Close()
	for i, f := range futs {
		if _, err := f.Wait(); err != nil {
			t.Fatalf("pre-Close request %d not drained: %v", i, err)
		}
	}
	if _, _, err := srv.Get(pool[0]); err != serve.ErrClosed {
		t.Fatalf("post-Close Get err = %v, want ErrClosed", err)
	}
	srv.Close() // idempotent
}

// TestServeEmpty checks zero-key requests resolve immediately.
func TestServeEmpty(t *testing.T) {
	srv, _, _ := newServed(t, 4, 16, serve.Options{})
	defer srv.Close()
	if vals, found, err := srv.GetAsync().Wait(); err != nil || len(vals) != 0 || len(found) != 0 {
		t.Fatalf("empty Get = %v,%v,%v", vals, found, err)
	}
	if lcps, err := srv.LCPAsync().Wait(); err != nil || len(lcps) != 0 {
		t.Fatalf("empty LCP = %v,%v", lcps, err)
	}
}
