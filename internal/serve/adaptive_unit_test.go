package serve

// White-box tests for the adaptive epoch controller: the policy is
// driven on a synthetic clock, so every regime — idle, light load,
// sustained burst, overload — is exercised deterministically, without
// sleeping or real traffic.

import (
	"testing"
	"time"
)

func testController(maxBatch int, minLinger, maxLinger time.Duration) *adaptiveController {
	return newAdaptiveController(Options{
		MaxBatch:       maxBatch,
		MinLinger:      minLinger,
		MaxLinger:      maxLinger,
		AdaptiveLinger: true,
	}, nil, nil)
}

// feedService teaches the controller the service model D = base + perKey·K
// with enough spread in K for the slope fit to lock in.
func feedService(a *adaptiveController, base, perKey time.Duration) {
	for i := 0; i < 8; i++ {
		k := 16 << (i % 4) // 16, 32, 64, 128
		d := base + time.Duration(k)*perKey
		a.noteEpoch(k, d)
	}
}

// feedArrivals pushes keys at the given rate for the given span and
// returns the clock after the last arrival.
func feedArrivals(a *adaptiveController, start time.Time, rate float64, span time.Duration) time.Time {
	step := time.Millisecond
	if rate*step.Seconds() < 1 {
		step = time.Duration(float64(time.Second) / rate) // one key per step
	}
	keys := int(rate*step.Seconds() + 0.5)
	now := start
	for el := time.Duration(0); el < span; el += step {
		now = start.Add(el)
		a.noteArrival(keys, now)
	}
	return now
}

func TestAdaptiveIdleDispatchesImmediately(t *testing.T) {
	a := testController(1024, 0, 5*time.Millisecond)
	feedService(a, 500*time.Microsecond, 2*time.Microsecond)
	base := time.Unix(0, 0)
	linger, target := a.plan(base.Add(time.Second))
	if linger != 0 {
		t.Errorf("idle linger = %v, want 0", linger)
	}
	if target != adaptiveMinEpoch {
		t.Errorf("idle target = %d, want %d", target, adaptiveMinEpoch)
	}
}

func TestAdaptiveLightLoadKeepsMinLinger(t *testing.T) {
	a := testController(1024, 0, 5*time.Millisecond)
	feedService(a, 500*time.Microsecond, 2*time.Microsecond)
	// 100 keys/sec against a ~2000 keys/sec single-key service rate:
	// batching buys nothing, linger must stay at the floor.
	now := feedArrivals(a, time.Unix(0, 0), 100, 200*time.Millisecond)
	linger, target := a.plan(now)
	if linger != 0 {
		t.Errorf("light-load linger = %v, want 0", linger)
	}
	if target != adaptiveMinEpoch {
		t.Errorf("light-load target = %d, want %d", target, adaptiveMinEpoch)
	}
}

func TestAdaptiveBurstGrowsEpochs(t *testing.T) {
	a := testController(1024, 0, 5*time.Millisecond)
	feedService(a, 500*time.Microsecond, 2*time.Microsecond)
	// 100k keys/sec: λA = 50, λB = 0.2 — far past single-key capacity
	// but sustainable with big epochs. The target must leave the floor
	// and linger must become positive yet capped.
	now := feedArrivals(a, time.Unix(0, 0), 100_000, 200*time.Millisecond)
	linger, target := a.plan(now)
	if target <= adaptiveMinEpoch {
		t.Fatalf("burst target = %d, want > %d", target, adaptiveMinEpoch)
	}
	if linger <= 0 || linger > 5*time.Millisecond {
		t.Errorf("burst linger = %v, want in (0, 5ms]", linger)
	}
	// Stability: the chosen epoch must sustain the arrival rate.
	base, perKey := 500*time.Microsecond.Seconds(), 2*time.Microsecond.Seconds()
	sustain := float64(target) / (base + float64(target)*perKey)
	if sustain < 100_000*0.9 {
		t.Errorf("target %d sustains only %.0f keys/sec against λ=100000", target, sustain)
	}
}

func TestAdaptiveOverloadPinsMaxBatch(t *testing.T) {
	a := testController(256, 0, 5*time.Millisecond)
	// perKey = 100µs → capacity < 10k keys/sec at any epoch size.
	feedService(a, time.Millisecond, 100*time.Microsecond)
	now := feedArrivals(a, time.Unix(0, 0), 50_000, 200*time.Millisecond)
	linger, target := a.plan(now)
	if target != 256 {
		t.Errorf("overload target = %d, want MaxBatch=256", target)
	}
	if linger != 5*time.Millisecond {
		t.Errorf("overload linger = %v, want the 5ms cap", linger)
	}
}

func TestAdaptiveRateDecaysWhenIdle(t *testing.T) {
	a := testController(1024, 0, 5*time.Millisecond)
	feedService(a, 500*time.Microsecond, 2*time.Microsecond)
	now := feedArrivals(a, time.Unix(0, 0), 100_000, 100*time.Millisecond)
	if _, target := a.plan(now); target <= adaptiveMinEpoch {
		t.Fatalf("burst did not raise the target")
	}
	// A long silent gap must decay the rate and collapse the policy.
	linger, target := a.plan(now.Add(2 * time.Second))
	if target != adaptiveMinEpoch || linger != 0 {
		t.Errorf("after idle gap: linger=%v target=%d, want 0 and %d", linger, target, adaptiveMinEpoch)
	}
}

func TestAdaptiveFitRecoversServiceModel(t *testing.T) {
	a := testController(1024, 0, 5*time.Millisecond)
	const base, perKey = 800e-6, 3e-6 // seconds
	for i := 0; i < 40; i++ {
		k := 8 << (i % 5) // 8..128
		a.noteEpoch(k, time.Duration((base+perKey*float64(k))*1e9))
	}
	a.mu.Lock()
	gotBase, gotPerKey := a.fitLocked()
	a.mu.Unlock()
	if gotBase < base*0.8 || gotBase > base*1.2 {
		t.Errorf("fitted base %.6f, want ≈ %.6f", gotBase, base)
	}
	if gotPerKey < perKey*0.8 || gotPerKey > perKey*1.2 {
		t.Errorf("fitted perKey %.8f, want ≈ %.8f", gotPerKey, perKey)
	}
}

func TestAdaptiveDegenerateFitFallsBack(t *testing.T) {
	a := testController(1024, 0, 5*time.Millisecond)
	// Constant epoch size: the slope is unknowable; everything must be
	// attributed to the fixed cost, never a NaN or negative slope.
	for i := 0; i < 10; i++ {
		a.noteEpoch(64, time.Millisecond)
	}
	a.mu.Lock()
	base, perKey := a.fitLocked()
	a.mu.Unlock()
	if perKey != 0 {
		t.Errorf("degenerate fit slope = %v, want 0", perKey)
	}
	if base < 0.9e-3 || base > 1.1e-3 {
		t.Errorf("degenerate fit base = %v, want ≈ 1ms", base)
	}
}

func TestAdaptiveDedupeDiscountsRate(t *testing.T) {
	plain := testController(1024, 0, 5*time.Millisecond)
	deduped := testController(1024, 0, 5*time.Millisecond)
	feedService(plain, 500*time.Microsecond, 2*time.Microsecond)
	feedService(deduped, 500*time.Microsecond, 2*time.Microsecond)
	for i := 0; i < 50; i++ {
		deduped.noteDedupe(100, 20) // 80% of admitted keys absorbed
	}
	nowP := feedArrivals(plain, time.Unix(0, 0), 60_000, 150*time.Millisecond)
	nowD := feedArrivals(deduped, time.Unix(0, 0), 60_000, 150*time.Millisecond)
	_, tPlain := plain.plan(nowP)
	_, tDeduped := deduped.plan(nowD)
	if tDeduped >= tPlain {
		t.Errorf("dedupe-aware target %d not below plain target %d", tDeduped, tPlain)
	}
}
