package serve

// Live serving-layer instrumentation (Options.Metrics). Every hook is
// guarded by `s.met != nil`, so a Server without a registry pays one
// nil check per site and nothing else — the same philosophy as
// sys.Phase. With a registry attached, hot-path updates are atomic
// counter/histogram operations on pre-registered instruments; no
// allocation, no locking beyond what the scheduler already holds.
//
// The index-health block doubles as the fault/recovery event feed:
// after every committed epoch the executor samples Index.Health() and
// turns the cumulative sample into monotonic counters (injected faults
// by kind, recoveries, rebuild scope, repair IO) plus the degraded /
// dead-module gauges that back /healthz.

import (
	"time"

	"github.com/pimlab/pimtrie"
	"github.com/pimlab/pimtrie/internal/metrics"
)

// Pipeline stage indexes for the stage-busy gauges.
const (
	stagePrepare = iota
	stageExecute
)

// serveMetrics is the Server's instrument set.
type serveMetrics struct {
	requests [numOps]*metrics.Counter
	keysReq  [numOps]*metrics.Counter
	keysExec [numOps]*metrics.Counter
	latency  [numOps]*metrics.Histogram

	queueDepth  *metrics.Gauge
	linger      *metrics.Histogram
	epochKeys   *metrics.Histogram
	readEpochs  *metrics.Counter
	writeEpochs *metrics.Counter
	deduped     *metrics.Counter
	dedupRatio  *metrics.Gauge

	cacheHits   *metrics.Counter
	cacheMisses *metrics.Counter
	cacheAdmits *metrics.Counter

	snapReads     *metrics.Counter
	snapFallbacks *metrics.Counter
	snapAge       *metrics.Gauge
	snapEpoch     *metrics.Gauge
	compChunks    *metrics.Counter
	compChunkKeys *metrics.Histogram

	prepareSec *metrics.Histogram
	executeSec *metrics.Histogram
	stageBusy  [2]*metrics.Gauge

	degraded     *metrics.Gauge
	deadModules  *metrics.Gauge
	recoveries   *metrics.Counter
	fullRebuilds *metrics.Counter
	modulesLost  *metrics.Counter
	faults       [3]*metrics.Counter // crash, straggle, truncate
	recoveryIO   *metrics.Counter
}

func newServeMetrics(reg *metrics.Registry, base []metrics.Label) *serveMetrics {
	// lbl appends the per-instrument labels to the server-wide base set
	// (e.g. shard="3" under a sharding router) in a fresh slice.
	lbl := func(ls ...metrics.Label) []metrics.Label {
		out := make([]metrics.Label, 0, len(base)+len(ls))
		out = append(out, base...)
		return append(out, ls...)
	}
	m := &serveMetrics{
		queueDepth:    reg.Gauge("pimtrie_serve_queue_depth", "requests admitted but not yet formed into an epoch", lbl()...),
		linger:        reg.Histogram("pimtrie_serve_linger_seconds", "time a request waited in the queue before its epoch formed", lbl()...),
		epochKeys:     reg.Histogram("pimtrie_serve_epoch_keys", "unique keys per executed sub-batch", lbl()...),
		readEpochs:    reg.Counter("pimtrie_serve_read_epochs_total", "committed read epochs", lbl()...),
		writeEpochs:   reg.Counter("pimtrie_serve_write_epochs_total", "committed write epochs", lbl()...),
		deduped:       reg.Counter("pimtrie_serve_read_keys_deduped_total", "read keys absorbed by singleflight dedupe within an epoch", lbl()...),
		dedupRatio:    reg.Gauge("pimtrie_serve_read_dedupe_ratio", "cumulative fraction of epoch-admitted read keys absorbed by dedupe", lbl()...),
		cacheHits:     reg.Counter("pimtrie_serve_cache_hits_total", "read requests served entirely from the hot-key cache", lbl()...),
		cacheMisses:   reg.Counter("pimtrie_serve_cache_misses_total", "cacheable read requests that reached the queues", lbl()...),
		cacheAdmits:   reg.Counter("pimtrie_serve_cache_admissions_total", "read results admitted into the hot-key cache", lbl()...),
		snapReads:     reg.Counter("pimtrie_serve_snapshot_reads_total", "keys served wait-free from the published COW snapshot", lbl()...),
		snapFallbacks: reg.Counter("pimtrie_serve_snapshot_fallbacks_total", "ReadSnapshot keys sent back to the epoch path by the recent-writes filter", lbl()...),
		snapAge:       reg.Gauge("pimtrie_serve_snapshot_age_epochs", "committed write epochs the published snapshot trailed by at the last snapshot read", lbl()...),
		snapEpoch:     reg.Gauge("pimtrie_serve_snapshot_epoch", "write-epoch stamp of the currently published snapshot", lbl()...),
		compChunks:    reg.Counter("pimtrie_serve_completion_chunks_total", "batched completion chunks handed to the completion workers", lbl()...),
		compChunkKeys: reg.Histogram("pimtrie_serve_completion_chunk_keys", "keys resolved per batched completion chunk", lbl()...),
		prepareSec:    reg.Histogram("pimtrie_serve_prepare_seconds", "host-side preparation time per epoch (pipeline stage A)", lbl()...),
		executeSec:    reg.Histogram("pimtrie_serve_execute_seconds", "index execution time per epoch (pipeline stage B)", lbl()...),
		degraded:      reg.Gauge("pimtrie_index_degraded", "1 while a module-loss recovery is in progress", lbl()...),
		deadModules:   reg.Gauge("pimtrie_index_dead_modules", "currently crash-stopped modules", lbl()...),
		recoveries:    reg.Counter("pimtrie_index_recoveries_total", "completed module-loss recoveries", lbl()...),
		fullRebuilds: reg.Counter("pimtrie_index_full_rebuilds_total",
			"recoveries that rebuilt the whole index from the host shadow", lbl()...),
		modulesLost: reg.Counter("pimtrie_index_modules_lost_total", "modules lost across all recoveries", lbl()...),
		recoveryIO:  reg.Counter("pimtrie_index_recovery_io_words_total", "model IO words spent on repairs", lbl()...),
	}
	m.stageBusy[stagePrepare] = reg.Gauge("pimtrie_serve_stage_busy", "1 while the pipeline stage is working", lbl(metrics.L("stage", "prepare"))...)
	m.stageBusy[stageExecute] = reg.Gauge("pimtrie_serve_stage_busy", "1 while the pipeline stage is working", lbl(metrics.L("stage", "execute"))...)
	for op := Op(0); op < numOps; op++ {
		l := metrics.L("op", op.String())
		m.requests[op] = reg.Counter("pimtrie_serve_requests_total", "admitted requests (calls, not keys); rate() gives per-op arrival rate", lbl(l)...)
		m.keysReq[op] = reg.Counter("pimtrie_serve_keys_requested_total", "keys across admitted requests", lbl(l)...)
		m.keysExec[op] = reg.Counter("pimtrie_serve_keys_executed_total", "unique keys sent to the index", lbl(l)...)
		m.latency[op] = reg.Histogram("pimtrie_serve_request_seconds", "end-to-end request latency, admission to resolution", lbl(l)...)
	}
	for kind, name := range [...]string{"crash", "straggle", "truncate"} {
		m.faults[kind] = reg.Counter("pimtrie_index_faults_total", "injected faults observed, by kind", lbl(metrics.L("kind", name))...)
	}
	return m
}

// observeLatency records a request's end-to-end latency at resolution.
func (s *Server) observeLatency(c *call) {
	if s.met != nil {
		s.met.latency[c.op].Observe(time.Since(c.enq).Seconds())
	}
}

// noteFormed records queue exit and linger for every call entering an
// epoch. Caller holds s.mu.
func (m *serveMetrics) noteFormed(calls []*call, now time.Time) {
	for _, c := range calls {
		m.linger.Observe(now.Sub(c.enq).Seconds())
	}
	m.queueDepth.Add(-float64(len(calls)))
}

// updateDedupRatio refreshes the cumulative dedupe-ratio gauge from
// the counters: absorbed / (absorbed + executed read keys).
func (m *serveMetrics) updateDedupRatio() {
	d := float64(m.deduped.Value())
	e := float64(m.keysExec[OpGet].Value() + m.keysExec[OpLCP].Value() + m.keysExec[OpSubtree].Value())
	if d+e > 0 {
		m.dedupRatio.Set(d / (d + e))
	}
}

// updateHealth folds a fresh cumulative Health sample into the gauges
// and monotonic counters, given the previous sample.
func (m *serveMetrics) updateHealth(prev, h pimtrie.Health) {
	if h.Degraded {
		m.degraded.Set(1)
	} else {
		m.degraded.Set(0)
	}
	m.deadModules.Set(float64(len(h.DeadModules)))
	delta := func(c *metrics.Counter, now, before int64) {
		if d := now - before; d > 0 {
			c.Add(uint64(d))
		}
	}
	delta(m.recoveries, int64(h.Recoveries), int64(prev.Recoveries))
	delta(m.fullRebuilds, int64(h.FullRebuilds), int64(prev.FullRebuilds))
	delta(m.modulesLost, int64(h.ModulesLost), int64(prev.ModulesLost))
	delta(m.faults[0], h.Crashes, prev.Crashes)
	delta(m.faults[1], h.Straggles, prev.Straggles)
	delta(m.faults[2], h.Truncations, prev.Truncations)
	delta(m.recoveryIO, h.RecoveryCost.IOWords, prev.RecoveryCost.IOWords)
}

// sampleHealth refreshes the post-epoch health snapshot behind
// Server.Health() (and, when metrics are attached, the health
// instruments). Called from the goroutine that owns the index: at
// construction and after every executed epoch.
func (s *Server) sampleHealth() {
	h := s.ix.Health()
	n := s.ix.Len()
	m := s.ix.Metrics()
	s.healthMu.Lock()
	prev := s.health
	s.health = h
	s.keyCount = n
	s.model = m
	s.healthMu.Unlock()
	if s.met != nil {
		s.met.updateHealth(prev, h)
	}
}

// Health returns the index's fault/recovery status as sampled after
// the most recently committed epoch. Unlike Index.Health it is safe to
// call from any goroutine while the server is running — it is the
// health feed behind a telemetry /healthz endpoint.
func (s *Server) Health() pimtrie.Health {
	s.healthMu.Lock()
	defer s.healthMu.Unlock()
	return s.health
}

// KeyCount returns the index's stored-key count as sampled after the
// most recently committed epoch; safe from any goroutine while the
// server is running (unlike Index.Len).
func (s *Server) KeyCount() int {
	s.healthMu.Lock()
	defer s.healthMu.Unlock()
	return s.keyCount
}

// ModelMetrics returns the index's cumulative PIM Model cost counters
// as sampled after the most recently committed epoch; safe from any
// goroutine while the server is running (unlike Index.Metrics). Diff
// two snapshots with Metrics.Sub to cost a serving window.
func (s *Server) ModelMetrics() pimtrie.Metrics {
	s.healthMu.Lock()
	defer s.healthMu.Unlock()
	return s.model
}
