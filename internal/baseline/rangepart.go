package baseline

import (
	"sort"

	"github.com/pimlab/pimtrie/internal/bitstr"
	"github.com/pimlab/pimtrie/internal/parallel"
	"github.com/pimlab/pimtrie/internal/pim"
	"github.com/pimlab/pimtrie/internal/trie"
)

// RangePart is the range-partitioned index of §3.2: the key space is
// divided by P-1 host-resident separators, each module holds a local
// compressed trie over its range. Point operations cost O(1) rounds and
// O(l/w) words, but a skewed batch aims everything at one module — the
// failure mode PIM-trie is designed to avoid.
type RangePart struct {
	sys        *pim.System
	separators []bitstr.String // separators[i] = smallest key of range i+1
	parts      []pim.Addr      // one rpPart per module
	nKeys      int
}

// rpPart is a module-local trie over one key range.
type rpPart struct {
	tr *trie.Trie
}

func (p *rpPart) SizeWords() int { return p.tr.SizeWords() + 1 }

// NewRangePart bulk-loads the structure, choosing separators that split
// the (sorted) initial keys evenly — the best case for range
// partitioning.
func NewRangePart(sys *pim.System, keys []bitstr.String, values []uint64) *RangePart {
	rp := &RangePart{sys: sys}
	idx := make([]int, len(keys))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return bitstr.Compare(keys[idx[a]], keys[idx[b]]) < 0 })
	p := sys.P()
	per := (len(keys) + p - 1) / p
	tries := make([]*trie.Trie, p)
	for i := range tries {
		tries[i] = trie.New()
	}
	for rank, ki := range idx {
		if rank > 0 && bitstr.Equal(keys[idx[rank-1]], keys[ki]) {
			continue // duplicate keys must not straddle a partition boundary
		}
		part := rank / per
		if part >= p {
			part = p - 1
		}
		if rank > 0 && part > 0 && rank%per == 0 {
			rp.separators = append(rp.separators, keys[ki])
		}
		if tries[part].Insert(keys[ki], values[ki]) {
			rp.nKeys++
		}
	}
	for len(rp.separators) < p-1 {
		// Degenerate separators for empty tails keep routing total.
		last := bitstr.MustParse("1").PadTo(64, 1)
		rp.separators = append(rp.separators, last)
	}
	tasks := make([]pim.Task, p)
	for i := 0; i < p; i++ {
		obj := &rpPart{tr: tries[i]}
		tasks[i] = pim.Task{Module: i, SendWords: obj.SizeWords(), Run: func(m *pim.Module) pim.Resp {
			return pim.Resp{RecvWords: 1, Value: m.Alloc(obj)}
		}}
	}
	rp.parts = make([]pim.Addr, p)
	for i, r := range sys.Round(tasks) {
		rp.parts[i] = r.Value.(pim.Addr)
	}
	return rp
}

// KeyCount returns the number of stored keys.
func (rp *RangePart) KeyCount() int { return rp.nKeys }

// route returns the partition index that owns key k.
func (rp *RangePart) route(k bitstr.String) int {
	// First separator greater than k bounds k's range.
	lo, hi := 0, len(rp.separators)
	for lo < hi {
		mid := (lo + hi) / 2
		if bitstr.Compare(rp.separators[mid], k) <= 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// LCP answers a batch of longest-common-prefix queries. Each query goes
// to exactly one module — its own range — matching §3.2's constant
// communication. The probed module also reports whether the query's
// predecessor/successor could lie outside the range (query below the
// range minimum / above its maximum); only then does the host probe the
// neighbor, widening past ranges emptied by deletions. Under any
// workload that hits stored ranges this stays one probe per query, so
// the skew measurements see the undiluted single-module hotspot.
func (rp *RangePart) LCP(batch []bitstr.String) []int {
	out := make([]int, len(batch))
	type probe struct {
		q    int // batch index
		part int
		dir  int // 0 first probe, -1 widen left, +1 widen right
	}
	pending := make([]probe, len(batch))
	parallel.For(len(batch), func(i int) {
		pending[i] = probe{q: i, part: rp.route(batch[i])}
	})
	for len(pending) > 0 {
		tasks := make([]pim.Task, len(pending))
		parallel.For(len(pending), func(k int) {
			pr := pending[k]
			q := batch[pr.q]
			addr := rp.parts[pr.part]
			tasks[k] = pim.Task{
				Module:    pr.part,
				SendWords: q.Words() + 1,
				Run: func(m *pim.Module) pim.Resp {
					p := m.Get(addr.ID).(*rpPart)
					l := p.tr.LCPLen(q)
					m.Work(q.Words() + 1)
					needL, needR := true, true
					if min, ok := p.tr.MinKey(); ok && bitstr.Compare(min, q) <= 0 {
						needL = false
					}
					if max, ok := p.tr.MaxKey(); ok && bitstr.Compare(max, q) >= 0 {
						needR = false
					}
					return pim.Resp{RecvWords: 2, Value: [3]int{l, b2i(needL), b2i(needR)}}
				},
			}
		})
		var next []probe
		for k, r := range rp.sys.Round(tasks) {
			pr := pending[k]
			v := r.Value.([3]int)
			if v[0] > out[pr.q] {
				out[pr.q] = v[0]
			}
			if (pr.dir <= 0) && v[1] == 1 && pr.part > 0 {
				next = append(next, probe{q: pr.q, part: pr.part - 1, dir: -1})
			}
			if (pr.dir == 0 || pr.dir > 0) && v[2] == 1 && pr.part < len(rp.parts)-1 {
				next = append(next, probe{q: pr.q, part: pr.part + 1, dir: +1})
			}
		}
		pending = next
	}
	return out
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}

// Insert routes each key to its range and inserts locally — one round,
// constant communication, but a skewed batch serializes on one module.
func (rp *RangePart) Insert(keys []bitstr.String, values []uint64) {
	// Routing (a binary search per key) fans out; grouping stays serial
	// so per-partition lists keep batch order.
	parts := make([]int, len(keys))
	parallel.For(len(keys), func(i int) { parts[i] = rp.route(keys[i]) })
	groups := map[int][]int{}
	for i := range keys {
		groups[parts[i]] = append(groups[parts[i]], i)
	}
	var tasks []pim.Task
	fresh := make([]int, len(groups))
	gi := -1
	for part, idxs := range groups {
		gi++
		part, idxs, slot := part, idxs, gi
		words := 0
		for _, i := range idxs {
			words += keys[i].Words() + 2
		}
		addr := rp.parts[part]
		tasks = append(tasks, pim.Task{
			Module:    part,
			SendWords: words,
			Run: func(m *pim.Module) pim.Resp {
				p := m.Get(addr.ID).(*rpPart)
				n := 0
				for _, i := range idxs {
					if p.tr.Insert(keys[i], values[i]) {
						n++
					}
					m.Work(keys[i].Words() + 1)
				}
				m.Resize(addr.ID)
				fresh[slot] = n
				return pim.Resp{RecvWords: 1}
			},
		})
	}
	rp.sys.Round(tasks)
	for _, n := range fresh {
		rp.nKeys += n
	}
}

// Delete routes and deletes locally, one round.
func (rp *RangePart) Delete(keys []bitstr.String) []bool {
	out := make([]bool, len(keys))
	parts := make([]int, len(keys))
	parallel.For(len(keys), func(i int) { parts[i] = rp.route(keys[i]) })
	groups := map[int][]int{}
	for i := range keys {
		groups[parts[i]] = append(groups[parts[i]], i)
	}
	var tasks []pim.Task
	var taskIdxs [][]int
	for part, idxs := range groups {
		part, idxs := part, idxs
		addr := rp.parts[part]
		words := 0
		for _, i := range idxs {
			words += keys[i].Words() + 1
		}
		tasks = append(tasks, pim.Task{
			Module:    part,
			SendWords: words,
			Run: func(m *pim.Module) pim.Resp {
				p := m.Get(addr.ID).(*rpPart)
				res := make([]bool, len(idxs))
				for j, i := range idxs {
					res[j] = p.tr.Delete(keys[i])
					m.Work(keys[i].Words() + 1)
				}
				m.Resize(addr.ID)
				return pim.Resp{RecvWords: len(idxs), Value: res}
			},
		})
		taskIdxs = append(taskIdxs, idxs)
	}
	for k, r := range rp.sys.Round(tasks) {
		for j, ok := range r.Value.([]bool) {
			if ok {
				out[taskIdxs[k][j]] = true
				rp.nKeys--
			}
		}
	}
	return out
}

// SpaceWords sums module memory.
func (rp *RangePart) SpaceWords() int {
	total, _ := rp.sys.SpaceWords()
	return total
}
