package baseline

import (
	"github.com/pimlab/pimtrie/internal/bitstr"
	"github.com/pimlab/pimtrie/internal/hashing"
	"github.com/pimlab/pimtrie/internal/pim"
)

// DistXFast is the "Distributed x-fast trie" baseline (Table 1 row 2,
// §3.4): per-level prefix tables sharded across modules by hashing
// (level, prefix). It supports only fixed-width keys of Width ≤ 64 bits,
// takes O(l) words per key, and answers longest-prefix queries with a
// binary search over levels — O(log l) rounds per batch, every probe a
// message to the owning module.
type DistXFast struct {
	sys    *pim.System
	width  int
	h      *hashing.Hasher
	shards []pim.Addr // one table object per module
	nKeys  int
}

// xfShard is the per-module piece of the level tables: refcounted prefix
// presence plus leaf values.
type xfShard struct {
	ref    map[xfKey]int
	values map[uint64]uint64
}

type xfKey struct {
	level  int
	prefix uint64
}

func (s *xfShard) SizeWords() int { return len(s.ref)*2 + len(s.values)*2 + 1 }

// NewDistXFast creates the structure and bulk-inserts the given keys.
func NewDistXFast(sys *pim.System, width int, keys []uint64, values []uint64) *DistXFast {
	if width < 1 || width > 64 {
		panic("baseline: width out of range")
	}
	d := &DistXFast{sys: sys, width: width, h: hashing.New(0xDF, 0)}
	resp := sys.Broadcast(1, func(m *pim.Module) pim.Resp {
		return pim.Resp{RecvWords: 1, Value: m.Alloc(&xfShard{ref: map[xfKey]int{}, values: map[uint64]uint64{}})}
	})
	d.shards = make([]pim.Addr, sys.P())
	for i, r := range resp {
		d.shards[i] = r.Value.(pim.Addr)
	}
	d.Insert(keys, values)
	return d
}

// owner maps a (level, prefix) pair to its module.
func (d *DistXFast) owner(level int, prefix uint64) int {
	v := d.h.Hash(bitstr.FromUint64(prefix, 64).Concat(bitstr.FromUint64(uint64(level), 16)))
	return int(d.h.Out(v) % uint64(d.sys.P()))
}

func (d *DistXFast) prefix(x uint64, level int) uint64 {
	if level == 0 {
		return 0
	}
	return x >> uint(d.width-level)
}

// KeyCount returns the number of stored keys.
func (d *DistXFast) KeyCount() int { return d.nKeys }

// Member reports presence for a batch of keys in one round.
func (d *DistXFast) Member(batch []uint64) []bool {
	out := make([]bool, len(batch))
	tasks := make([]pim.Task, len(batch))
	for i, x := range batch {
		x := x
		mod := d.owner(d.width, x)
		shard := d.shards[mod]
		tasks[i] = pim.Task{Module: mod, SendWords: 2, Run: func(m *pim.Module) pim.Resp {
			s := m.Get(shard.ID).(*xfShard)
			m.Work(1)
			_, ok := s.values[x]
			return pim.Resp{RecvWords: 1, Value: ok}
		}}
	}
	for i, r := range d.sys.Round(tasks) {
		out[i] = r.Value.(bool)
	}
	return out
}

// LongestPrefixLevel answers, for each key, the largest level whose
// prefix is present — the x-fast analogue of an LCP query, clipped to
// the fixed width. The whole batch advances one binary-search step per
// round: O(log width) rounds total.
func (d *DistXFast) LongestPrefixLevel(batch []uint64) []int {
	lo := make([]int, len(batch))
	hi := make([]int, len(batch))
	for i := range batch {
		hi[i] = d.width
	}
	for {
		var tasks []pim.Task
		var idxs []int
		for i := range batch {
			if lo[i] >= hi[i] {
				continue
			}
			mid := (lo[i] + hi[i] + 1) / 2
			x := d.prefix(batch[i], mid)
			mod := d.owner(mid, x)
			shard := d.shards[mod]
			key := xfKey{level: mid, prefix: x}
			tasks = append(tasks, pim.Task{Module: mod, SendWords: 2, Run: func(m *pim.Module) pim.Resp {
				s := m.Get(shard.ID).(*xfShard)
				m.Work(1)
				return pim.Resp{RecvWords: 1, Value: s.ref[key] > 0}
			}})
			idxs = append(idxs, i)
		}
		if len(tasks) == 0 {
			break
		}
		for k, r := range d.sys.Round(tasks) {
			i := idxs[k]
			mid := (lo[i] + hi[i] + 1) / 2
			if r.Value.(bool) {
				lo[i] = mid
			} else {
				hi[i] = mid - 1
			}
		}
	}
	return lo
}

// Insert stores a batch of keys: every key writes all `width` prefix
// entries (O(l) words per key) in a single parallel round after a
// membership round for refcount correctness.
func (d *DistXFast) Insert(keys []uint64, values []uint64) {
	member := d.Member(keys)
	seen := map[uint64]bool{}
	var tasks []pim.Task
	for i, x := range keys {
		if member[i] || seen[x] {
			// Value update only.
			x, v := x, values[i]
			mod := d.owner(d.width, x)
			shard := d.shards[mod]
			tasks = append(tasks, pim.Task{Module: mod, SendWords: 2, Run: func(m *pim.Module) pim.Resp {
				m.Get(shard.ID).(*xfShard).values[x] = v
				return pim.Resp{}
			}})
			continue
		}
		seen[x] = true
		d.nKeys++
		for level := 0; level <= d.width; level++ {
			level := level
			p := d.prefix(x, level)
			mod := d.owner(level, p)
			shard := d.shards[mod]
			x, v := x, values[i]
			last := level == d.width
			tasks = append(tasks, pim.Task{Module: mod, SendWords: 2, Run: func(m *pim.Module) pim.Resp {
				s := m.Get(shard.ID).(*xfShard)
				s.ref[xfKey{level: level, prefix: p}]++
				if last {
					s.values[x] = v
				}
				m.Work(1)
				m.Resize(shard.ID)
				return pim.Resp{}
			}})
		}
	}
	d.sys.Round(tasks)
}

// Delete removes a batch of keys, decrementing prefix refcounts.
func (d *DistXFast) Delete(keys []uint64) []bool {
	member := d.Member(keys)
	out := make([]bool, len(keys))
	seen := map[uint64]bool{}
	var tasks []pim.Task
	for i, x := range keys {
		if !member[i] || seen[x] {
			continue
		}
		seen[x] = true
		out[i] = true
		d.nKeys--
		for level := 0; level <= d.width; level++ {
			level := level
			p := d.prefix(x, level)
			mod := d.owner(level, p)
			shard := d.shards[mod]
			x := x
			last := level == d.width
			tasks = append(tasks, pim.Task{Module: mod, SendWords: 2, Run: func(m *pim.Module) pim.Resp {
				s := m.Get(shard.ID).(*xfShard)
				k := xfKey{level: level, prefix: p}
				if s.ref[k]--; s.ref[k] <= 0 {
					delete(s.ref, k)
				}
				if last {
					delete(s.values, x)
				}
				m.Work(1)
				m.Resize(shard.ID)
				return pim.Resp{}
			}})
		}
	}
	d.sys.Round(tasks)
	return out
}

// SpaceWords sums module memory.
func (d *DistXFast) SpaceWords() int {
	total, _ := d.sys.SpaceWords()
	return total
}
