// Package baseline implements the comparison structures of Table 1 and
// §3, built from scratch on the same PIM simulator as PIM-trie so that
// rounds, communication and balance are measured identically:
//
//   - DistRadix — a compressed radix tree with span-s hops whose nodes
//     are placed on uniformly random modules and traversed by
//     level-by-level pointer chasing (Table 1 row 1): O(l/s) rounds and
//     O(l/s) words per operation, with contention on shared paths.
//   - DistXFast — an x-fast trie over fixed-width keys whose per-level
//     hash tables are sharded across modules (Table 1 row 2): O(log l)
//     rounds per batch, O(l) space per key.
//   - RangePart — a range-partitioned index (§3.2): O(1) rounds and
//     words per operation but catastrophic imbalance under skew.
package baseline

import (
	"sort"

	"github.com/pimlab/pimtrie/internal/bitstr"
	"github.com/pimlab/pimtrie/internal/parallel"
	"github.com/pimlab/pimtrie/internal/pim"
	"github.com/pimlab/pimtrie/internal/trie"
)

// drNode is one distributed radix tree node: a compressed binary node
// whose edges are at most span bits long.
type drNode struct {
	hasValue bool
	value    uint64
	label    [2]bitstr.String // child edge labels (empty when absent)
	child    [2]pim.Addr
}

func (n *drNode) SizeWords() int {
	return 3 + n.label[0].Words() + n.label[1].Words()
}

// DistRadix is the "Distributed Radix Tree" baseline: the data trie's
// compressed nodes (edges cut to span bits) hashed uniformly onto
// modules; every query chases pointers from the root, one module hop per
// round.
type DistRadix struct {
	sys   *pim.System
	span  int
	root  pim.Addr
	nKeys int
}

// NewDistRadix builds the structure over the given keys with the given
// span s (bits consumed per hop; the 2^s-fanout of a classic radix tree
// bounds s well below w).
func NewDistRadix(sys *pim.System, span int, keys []bitstr.String, values []uint64) *DistRadix {
	if span < 1 || span > 16 {
		panic("baseline: span out of range")
	}
	d := &DistRadix{sys: sys, span: span}
	defer sys.Phase("build")()
	full := trie.New()
	for i, k := range keys {
		full.Insert(k, values[i])
	}
	d.nKeys = full.KeyCount()
	full.SplitLongEdges(span)
	// Allocate one module object per compressed node, then wire edges.
	var order []*trie.Node
	full.WalkPreorder(func(n *trie.Node) bool {
		order = append(order, n)
		return true
	})
	tasks := make([]pim.Task, len(order))
	objs := make([]*drNode, len(order))
	mods := make([]int, len(order))
	for i := range mods {
		mods[i] = sys.RandModule()
	}
	parallel.For(len(order), func(i int) {
		n := order[i]
		obj := &drNode{hasValue: n.HasValue, value: n.Value}
		for b := 0; b < 2; b++ {
			if e := n.Child[b]; e != nil {
				obj.label[b] = e.Label
			}
			obj.child[b] = pim.NilAddr
		}
		objs[i] = obj
		tasks[i] = pim.Task{
			Module:    mods[i],
			SendWords: obj.SizeWords(),
			Run: func(m *pim.Module) pim.Resp {
				return pim.Resp{RecvWords: 1, Value: m.Alloc(obj)}
			},
		}
	})
	addrOf := map[*trie.Node]pim.Addr{}
	for i, r := range d.sys.Round(tasks) {
		addrOf[order[i]] = r.Value.(pim.Addr)
	}
	wire := make([]pim.Task, 0, len(order))
	for i, n := range order {
		obj := objs[i]
		for b := 0; b < 2; b++ {
			if e := n.Child[b]; e != nil {
				obj.child[b] = addrOf[e.To]
			}
		}
		addr := addrOf[n]
		wire = append(wire, pim.Task{Module: addr.Module, SendWords: 2, Run: func(m *pim.Module) pim.Resp {
			return pim.Resp{}
		}})
	}
	d.sys.Round(wire)
	d.root = addrOf[full.Root()]
	return d
}

// KeyCount returns the number of stored keys.
func (d *DistRadix) KeyCount() int { return d.nKeys }

// drCursor tracks one in-flight query during pointer chasing.
type drCursor struct {
	at      pim.Addr
	pos     int // bits of the query matched so far
	done    bool
	matched int
}

// LCP answers a batch of longest-common-prefix queries by synchronized
// pointer chasing: one round per trie hop, each query probing the module
// that holds its current node. Shared prefixes hammer the same modules,
// which is exactly the imbalance the measurement should expose.
func (d *DistRadix) LCP(batch []bitstr.String) []int {
	defer d.sys.Phase("lcp")()
	cur := make([]drCursor, len(batch))
	for i := range cur {
		cur[i] = drCursor{at: d.root}
	}
	endChase := d.sys.Phase("pointer-chase")
	defer endChase()
	active := len(batch)
	for active > 0 {
		var idxs []int
		for i := range cur {
			if !cur[i].done {
				idxs = append(idxs, i)
			}
		}
		tasks := make([]pim.Task, len(idxs))
		parallel.For(len(idxs), func(k int) {
			i := idxs[k]
			c := cur[i]
			q := batch[i]
			tasks[k] = pim.Task{
				Module: c.at.Module,
				// Ship the next span bits of the query plus the cursor.
				SendWords: d.span/bitstr.WordBits + 2,
				Run: func(m *pim.Module) pim.Resp {
					n := m.Get(c.at.ID).(*drNode)
					m.Work(1)
					if c.pos == q.Len() {
						return pim.Resp{RecvWords: 1, Value: drCursor{done: true, matched: c.pos}}
					}
					b := q.BitAt(c.pos)
					if n.label[b].IsEmpty() {
						return pim.Resp{RecvWords: 1, Value: drCursor{done: true, matched: c.pos}}
					}
					rest := q.Suffix(c.pos)
					l := bitstr.LCP(n.label[b], rest)
					m.Work(l/bitstr.WordBits + 1)
					if l < n.label[b].Len() {
						return pim.Resp{RecvWords: 1, Value: drCursor{done: true, matched: c.pos + l}}
					}
					return pim.Resp{RecvWords: 2, Value: drCursor{at: n.child[b], pos: c.pos + l}}
				},
			}
		})
		for k, r := range d.sys.Round(tasks) {
			nc := r.Value.(drCursor)
			cur[idxs[k]] = nc
			if nc.done {
				active--
			}
		}
	}
	out := make([]int, len(batch))
	for i, c := range cur {
		out[i] = c.matched
	}
	return out
}

// Insert adds a batch of keys by pointer chasing to the divergence point
// and splicing new nodes there, O(l/s) rounds like queries. For
// simplicity each key is processed independently; conflicting splices at
// the same edge within one batch are serialized by re-descending.
func (d *DistRadix) Insert(keys []bitstr.String, values []uint64) {
	defer d.sys.Phase("insert")()
	for i, k := range keys {
		d.insertOne(k, values[i])
	}
}

// insertOne descends round by round and splices at the end. The descent
// matches LCP's round structure; batch-level parallelism across keys is
// deliberately absent (this baseline has no query trie), so rounds scale
// with the batch — one of the shapes the experiments report.
func (d *DistRadix) insertOne(k bitstr.String, v uint64) {
	at := d.root
	pos := 0
	for {
		res := d.sys.Round([]pim.Task{{
			Module:    at.Module,
			SendWords: d.span/bitstr.WordBits + 2,
			Run: func(m *pim.Module) pim.Resp {
				n := m.Get(at.ID).(*drNode)
				m.Work(1)
				if pos == k.Len() {
					if !n.hasValue {
						n.hasValue = true
						n.value = v
						return pim.Resp{RecvWords: 1, Value: insDone{fresh: true}}
					}
					n.value = v
					return pim.Resp{RecvWords: 1, Value: insDone{}}
				}
				b := k.BitAt(pos)
				if n.label[b].IsEmpty() {
					return pim.Resp{RecvWords: 1, Value: insAttach{}}
				}
				rest := k.Suffix(pos)
				l := bitstr.LCP(n.label[b], rest)
				m.Work(l/bitstr.WordBits + 1)
				if l < n.label[b].Len() {
					return pim.Resp{RecvWords: 2, Value: insSplit{off: l}}
				}
				return pim.Resp{RecvWords: 2, Value: insStep{next: n.child[b], pos: pos + l}}
			},
		}})
		switch r := res[0].Value.(type) {
		case insDone:
			if r.fresh {
				d.nKeys++
			}
			return
		case insStep:
			at, pos = r.next, r.pos
		case insAttach:
			d.attachChain(at, k, pos, v)
			return
		case insSplit:
			d.splitAndAttach(at, k, pos, r.off, v)
			return
		}
	}
}

type insDone struct{ fresh bool }
type insStep struct {
	next pim.Addr
	pos  int
}
type insAttach struct{}
type insSplit struct{ off int }

// attachChain builds the remainder of k as a chain of span-bit nodes
// below the node at `at`.
func (d *DistRadix) attachChain(at pim.Addr, k bitstr.String, pos int, v uint64) {
	// Allocate the chain bottom-up on random modules, then link the top.
	type seg struct {
		label bitstr.String
	}
	var segs []seg
	for p := pos; p < k.Len(); p += d.span {
		end := p + d.span
		if end > k.Len() {
			end = k.Len()
		}
		segs = append(segs, seg{label: k.Slice(p, end)})
	}
	child := pim.NilAddr
	childIsLeaf := true
	for i := len(segs) - 1; i >= 0; i-- {
		node := &drNode{}
		if childIsLeaf && child.IsNil() {
			node.hasValue = true
			node.value = v
		}
		if !child.IsNil() {
			node.label[segs[i+1].label.FirstBit()] = segs[i+1].label
			node.child[segs[i+1].label.FirstBit()] = child
		}
		res := d.sys.Round([]pim.Task{{
			Module:    d.sys.RandModule(),
			SendWords: node.SizeWords(),
			Run: func(m *pim.Module) pim.Resp {
				return pim.Resp{RecvWords: 1, Value: m.Alloc(node)}
			},
		}})
		child = res[0].Value.(pim.Addr)
		childIsLeaf = false
	}
	top := segs[0].label
	d.sys.Round([]pim.Task{{
		Module:    at.Module,
		SendWords: top.Words() + 2,
		Run: func(m *pim.Module) pim.Resp {
			n := m.Get(at.ID).(*drNode)
			n.label[top.FirstBit()] = top
			n.child[top.FirstBit()] = child
			m.Resize(at.ID)
			return pim.Resp{}
		},
	}})
	d.nKeys++
}

// splitAndAttach splits the edge below `at` at offset off and hangs the
// key remainder (possibly empty) off the new mid node.
func (d *DistRadix) splitAndAttach(at pim.Addr, k bitstr.String, pos, off int, v uint64) {
	// Fetch the edge info, build mid node, relink.
	res := d.sys.Round([]pim.Task{{
		Module:    at.Module,
		SendWords: 1,
		Run: func(m *pim.Module) pim.Resp {
			n := m.Get(at.ID).(*drNode)
			b := k.BitAt(pos)
			return pim.Resp{RecvWords: n.label[b].Words() + 2, Value: [2]any{n.label[b], n.child[b]}}
		},
	}})
	pair := res[0].Value.([2]any)
	label := pair[0].(bitstr.String)
	oldChild := pair[1].(pim.Addr)
	mid := &drNode{}
	lower := label.Suffix(off)
	mid.label[lower.FirstBit()] = lower
	mid.child[lower.FirstBit()] = oldChild
	remainder := k.Suffix(pos + off)
	if remainder.IsEmpty() {
		mid.hasValue = true
		mid.value = v
		d.nKeys++
	}
	midRes := d.sys.Round([]pim.Task{{
		Module:    d.sys.RandModule(),
		SendWords: mid.SizeWords(),
		Run: func(m *pim.Module) pim.Resp {
			return pim.Resp{RecvWords: 1, Value: m.Alloc(mid)}
		},
	}})
	midAddr := midRes[0].Value.(pim.Addr)
	d.sys.Round([]pim.Task{{
		Module:    at.Module,
		SendWords: 2,
		Run: func(m *pim.Module) pim.Resp {
			n := m.Get(at.ID).(*drNode)
			b := label.FirstBit()
			n.label[b] = label.Prefix(off)
			n.child[b] = midAddr
			m.Resize(at.ID)
			return pim.Resp{}
		},
	}})
	if !remainder.IsEmpty() {
		d.attachChain(midAddr, k, pos+off, v)
	}
}

// Subtree returns every stored (key, value) extending prefix, by
// descending to the locus (O(l/s) rounds) and then BFS pointer chasing
// one node level per round — the O(n_D)-round worst case of Table 1.
func (d *DistRadix) Subtree(prefix bitstr.String) []trie.KV {
	defer d.sys.Phase("subtree")()
	// Descend to the locus, tracking the represented string of the node
	// entered (the locus node may lie below the prefix, mid-edge).
	type subStep struct {
		next pim.Addr
		pos  int
		lab  bitstr.String
	}
	endDescend := d.sys.Phase("descend")
	at, pos := d.root, 0
	path := bitstr.Empty
	for pos < prefix.Len() {
		res := d.sys.Round([]pim.Task{{
			Module:    at.Module,
			SendWords: d.span/bitstr.WordBits + 2,
			Run: func(m *pim.Module) pim.Resp {
				n := m.Get(at.ID).(*drNode)
				m.Work(1)
				b := prefix.BitAt(pos)
				if n.label[b].IsEmpty() {
					return pim.Resp{RecvWords: 1, Value: insDone{}}
				}
				rest := prefix.Suffix(pos)
				l := bitstr.LCP(n.label[b], rest)
				if l == rest.Len() || l == n.label[b].Len() {
					return pim.Resp{RecvWords: n.label[b].Words() + 2,
						Value: subStep{next: n.child[b], pos: pos + n.label[b].Len(), lab: n.label[b]}}
				}
				return pim.Resp{RecvWords: 1, Value: insDone{}}
			},
		}})
		switch r := res[0].Value.(type) {
		case insDone:
			endDescend()
			return nil
		case subStep:
			at, pos = r.next, r.pos
			path = path.Concat(r.lab)
			if pos > prefix.Len() && !path.HasPrefix(prefix) {
				endDescend()
				return nil // prefix diverged inside the final edge
			}
		}
	}
	endDescend()
	// BFS below the locus, one node level per round.
	endGather := d.sys.Phase("gather")
	defer endGather()
	type visit struct {
		addr pim.Addr
		path bitstr.String
	}
	level := []visit{{addr: at, path: path}}
	var out []trie.KV
	for len(level) > 0 {
		tasks := make([]pim.Task, len(level))
		for i, v := range level {
			v := v
			tasks[i] = pim.Task{
				Module:    v.addr.Module,
				SendWords: 1,
				Run: func(m *pim.Module) pim.Resp {
					n := m.Get(v.addr.ID).(*drNode)
					m.Work(1)
					return pim.Resp{RecvWords: n.SizeWords(), Value: n}
				},
			}
		}
		var next []visit
		for i, r := range d.sys.Round(tasks) {
			n := r.Value.(*drNode)
			if n.hasValue {
				out = append(out, trie.KV{Key: level[i].path, Value: n.value})
			}
			for b := 0; b < 2; b++ {
				if !n.label[b].IsEmpty() {
					next = append(next, visit{addr: n.child[b], path: level[i].path.Concat(n.label[b])})
				}
			}
		}
		level = next
	}
	sort.Slice(out, func(a, b int) bool { return bitstr.Compare(out[a].Key, out[b].Key) < 0 })
	return out
}

// SpaceWords sums the structure's module memory.
func (d *DistRadix) SpaceWords() int {
	total, _ := d.sys.SpaceWords()
	return total
}
