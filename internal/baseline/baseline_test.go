package baseline

import (
	"math/rand"
	"strings"
	"testing"

	"github.com/pimlab/pimtrie/internal/bitstr"
	"github.com/pimlab/pimtrie/internal/pim"
	"github.com/pimlab/pimtrie/internal/trie"
)

func randomKey(r *rand.Rand, maxLen int) bitstr.String {
	n := r.Intn(maxLen + 1)
	var b strings.Builder
	for i := 0; i < n; i++ {
		b.WriteByte('0' + byte(r.Intn(2)))
	}
	return bitstr.MustParse(b.String())
}

func makeKeys(r *rand.Rand, n, maxLen int) ([]bitstr.String, []uint64) {
	keys := make([]bitstr.String, n)
	values := make([]uint64, n)
	for i := range keys {
		keys[i] = randomKey(r, maxLen)
		if i > 0 && r.Intn(3) == 0 {
			keys[i] = keys[r.Intn(i)].Concat(randomKey(r, maxLen/4))
		}
		values[i] = uint64(i)
	}
	return keys, values
}

func oracleOf(keys []bitstr.String, values []uint64) *trie.Trie {
	o := trie.New()
	for i, k := range keys {
		o.Insert(k, values[i])
	}
	return o
}

func TestDistRadixLCPMatchesOracle(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	keys, values := makeKeys(r, 200, 80)
	oracle := oracleOf(keys, values)
	for _, span := range []int{1, 4, 8} {
		sys := pim.NewSystem(8, pim.WithSeed(7))
		d := NewDistRadix(sys, span, keys, values)
		if d.KeyCount() != oracle.KeyCount() {
			t.Fatalf("span %d: KeyCount %d vs %d", span, d.KeyCount(), oracle.KeyCount())
		}
		var queries []bitstr.String
		for i := 0; i < 150; i++ {
			switch i % 3 {
			case 0:
				queries = append(queries, randomKey(r, 100))
			case 1:
				k := keys[r.Intn(len(keys))]
				queries = append(queries, k.Prefix(r.Intn(k.Len()+1)))
			default:
				queries = append(queries, keys[r.Intn(len(keys))].Concat(randomKey(r, 20)))
			}
		}
		got := d.LCP(queries)
		for i, q := range queries {
			if want := oracle.LCPLen(q); got[i] != want {
				t.Fatalf("span %d: LCP(%q) = %d, want %d", span, q, got[i], want)
			}
		}
	}
}

func TestDistRadixInsert(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	base, baseV := makeKeys(r, 100, 60)
	oracle := oracleOf(base, baseV)
	sys := pim.NewSystem(4, pim.WithSeed(3))
	d := NewDistRadix(sys, 4, base, baseV)
	more, moreV := makeKeys(r, 100, 60)
	d.Insert(more, moreV)
	for i, k := range more {
		oracle.Insert(k, moreV[i])
	}
	if d.KeyCount() != oracle.KeyCount() {
		t.Fatalf("KeyCount %d vs %d", d.KeyCount(), oracle.KeyCount())
	}
	queries := append(append([]bitstr.String{}, base[:50]...), more[:50]...)
	got := d.LCP(queries)
	for i, q := range queries {
		if want := oracle.LCPLen(q); got[i] != want {
			t.Fatalf("LCP(%q) = %d, want %d", q, got[i], want)
		}
	}
}

func TestDistRadixRoundsScaleWithKeyLength(t *testing.T) {
	// The Table 1 shape: rounds per LCP batch grow with l/s.
	r := rand.New(rand.NewSource(3))
	rounds := map[int]int64{}
	for _, l := range []int{64, 512} {
		sys := pim.NewSystem(8, pim.WithSeed(5))
		keys := make([]bitstr.String, 100)
		values := make([]uint64, 100)
		for i := range keys {
			b := make([]byte, l)
			for j := range b {
				b[j] = byte(r.Intn(2))
			}
			keys[i] = bitstr.FromBits(b)
		}
		d := NewDistRadix(sys, 8, keys, values)
		before := sys.Metrics()
		d.LCP(keys[:50])
		rounds[l] = sys.Metrics().Sub(before).Rounds
	}
	if rounds[512] < 4*rounds[64] {
		t.Fatalf("rounds did not scale with l: %v", rounds)
	}
}

func TestDistXFastMatchesReference(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	sys := pim.NewSystem(8, pim.WithSeed(9))
	width := 32
	keys := make([]uint64, 300)
	values := make([]uint64, 300)
	for i := range keys {
		keys[i] = uint64(r.Uint32())
		values[i] = uint64(i)
	}
	d := NewDistXFast(sys, width, keys, values)
	// Reference: a host trie over the fixed-width bit strings.
	oracle := trie.New()
	for i, k := range keys {
		oracle.Insert(bitstr.FromUint64(k, width), values[i])
	}
	if d.KeyCount() != oracle.KeyCount() {
		t.Fatalf("KeyCount %d vs %d", d.KeyCount(), oracle.KeyCount())
	}
	queries := make([]uint64, 200)
	for i := range queries {
		if i%2 == 0 {
			queries[i] = keys[r.Intn(len(keys))] ^ uint64(1)<<uint(r.Intn(width))
		} else {
			queries[i] = uint64(r.Uint32())
		}
	}
	got := d.LongestPrefixLevel(queries)
	for i, q := range queries {
		if want := oracle.LCPLen(bitstr.FromUint64(q, width)); got[i] != want {
			t.Fatalf("LPL(%d) = %d, want %d", q, got[i], want)
		}
	}
	member := d.Member(keys[:50])
	for i, ok := range member {
		if !ok {
			t.Fatalf("Member(%d) = false", keys[i])
		}
	}
}

func TestDistXFastDelete(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	sys := pim.NewSystem(4, pim.WithSeed(11))
	keys := make([]uint64, 100)
	for i := range keys {
		keys[i] = uint64(r.Uint32())
	}
	d := NewDistXFast(sys, 32, keys, make([]uint64, len(keys)))
	res := d.Delete(keys[:50])
	for i, ok := range res {
		if !ok {
			t.Fatalf("Delete(%d) failed", keys[i])
		}
	}
	if again := d.Delete(keys[:50]); again[0] {
		t.Fatal("double delete reported success")
	}
	member := d.Member(keys)
	for i := 0; i < 50; i++ {
		if member[i] {
			t.Fatalf("deleted key %d still member", keys[i])
		}
	}
	for i := 50; i < 100; i++ {
		if !member[i] {
			t.Fatalf("surviving key %d lost", keys[i])
		}
	}
}

func TestDistXFastRoundsLogarithmic(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	sys := pim.NewSystem(8, pim.WithSeed(13))
	keys := make([]uint64, 200)
	for i := range keys {
		keys[i] = r.Uint64()
	}
	d := NewDistXFast(sys, 64, keys, make([]uint64, len(keys)))
	before := sys.Metrics()
	d.LongestPrefixLevel(keys[:100])
	rounds := sys.Metrics().Sub(before).Rounds
	if rounds > 8 { // ceil(log2 65) = 7 search rounds
		t.Fatalf("LPL used %d rounds", rounds)
	}
}

func TestDistXFastSpacePerKeyScalesWithWidth(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	space := map[int]int{}
	for _, width := range []int{16, 64} {
		sys := pim.NewSystem(4, pim.WithSeed(15))
		keys := make([]uint64, 200)
		for i := range keys {
			keys[i] = r.Uint64() & (1<<uint(width) - 1)
		}
		d := NewDistXFast(sys, width, keys, make([]uint64, len(keys)))
		space[width] = d.SpaceWords()
	}
	if space[64] < 2*space[16] {
		t.Fatalf("space did not scale with width: %v", space)
	}
}

func TestRangePartMatchesOracle(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	keys, values := makeKeys(r, 300, 70)
	oracle := oracleOf(keys, values)
	sys := pim.NewSystem(8, pim.WithSeed(17))
	rp := NewRangePart(sys, keys, values)
	if rp.KeyCount() != oracle.KeyCount() {
		t.Fatalf("KeyCount %d vs %d", rp.KeyCount(), oracle.KeyCount())
	}
	var queries []bitstr.String
	for i := 0; i < 200; i++ {
		switch i % 3 {
		case 0:
			queries = append(queries, randomKey(r, 90))
		case 1:
			k := keys[r.Intn(len(keys))]
			queries = append(queries, k.Prefix(r.Intn(k.Len()+1)))
		default:
			queries = append(queries, keys[r.Intn(len(keys))])
		}
	}
	got := rp.LCP(queries)
	for i, q := range queries {
		if want := oracle.LCPLen(q); got[i] != want {
			t.Fatalf("LCP(%q) = %d, want %d", q, got[i], want)
		}
	}
}

func TestRangePartInsertDelete(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	keys, values := makeKeys(r, 200, 60)
	oracle := oracleOf(keys, values)
	sys := pim.NewSystem(4, pim.WithSeed(19))
	rp := NewRangePart(sys, keys, values)
	more, moreV := makeKeys(r, 100, 60)
	rp.Insert(more, moreV)
	for i := range more {
		oracle.Insert(more[i], moreV[i])
	}
	if rp.KeyCount() != oracle.KeyCount() {
		t.Fatalf("KeyCount after insert: %d vs %d", rp.KeyCount(), oracle.KeyCount())
	}
	got := rp.Delete(keys[:60])
	for i, k := range keys[:60] {
		if want := oracle.Delete(k); got[i] != want {
			t.Fatalf("Delete(%q) = %v, want %v", k, got[i], want)
		}
	}
	q := append(append([]bitstr.String{}, keys[:40]...), more[:40]...)
	lcp := rp.LCP(q)
	for i, k := range q {
		if want := oracle.LCPLen(k); lcp[i] != want {
			t.Fatalf("post-delete LCP(%q) = %d, want %d", k, lcp[i], want)
		}
	}
}

func TestRangePartSkewCollapses(t *testing.T) {
	// A Zipf-free demonstration of §3.2's flaw: all queries in one range
	// produce balance ≈ P while uniform queries stay near 1.
	r := rand.New(rand.NewSource(10))
	keys, values := makeKeys(r, 800, 48)
	sys := pim.NewSystem(16, pim.WithSeed(21))
	rp := NewRangePart(sys, keys, values)

	before := sys.Metrics()
	uniform := make([]bitstr.String, 400)
	for i := range uniform {
		uniform[i] = randomKey(r, 48)
	}
	rp.LCP(uniform)
	balUniform := sys.Metrics().Sub(before).IOBalance()

	before = sys.Metrics()
	// Skew: every query equals one stored key.
	skewed := make([]bitstr.String, 400)
	for i := range skewed {
		skewed[i] = keys[17]
	}
	rp.LCP(skewed)
	balSkew := sys.Metrics().Sub(before).IOBalance()

	if balSkew < 3*balUniform {
		t.Fatalf("skew did not collapse range partitioning: uniform %.2f, skew %.2f", balUniform, balSkew)
	}
}

func TestDistRadixSubtreeMatchesOracle(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	keys, values := makeKeys(r, 200, 60)
	oracle := oracleOf(keys, values)
	sys := pim.NewSystem(8, pim.WithSeed(23))
	d := NewDistRadix(sys, 8, keys, values)
	prefixes := []bitstr.String{bitstr.Empty}
	for i := 0; i < 30; i++ {
		k := keys[r.Intn(len(keys))]
		prefixes = append(prefixes, k.Prefix(r.Intn(k.Len()+1)), randomKey(r, 25))
	}
	for _, pre := range prefixes {
		got := d.Subtree(pre)
		want := oracle.SubtreeKeys(pre)
		if len(got) != len(want) {
			t.Fatalf("Subtree(%q): %d results, want %d", pre, len(got), len(want))
		}
		for i := range want {
			if !bitstr.Equal(got[i].Key, want[i].Key) || got[i].Value != want[i].Value {
				t.Fatalf("Subtree(%q)[%d] mismatch", pre, i)
			}
		}
	}
}
