package hvm

// This file implements the recursive meta-block decomposition of §4.4.1
// (Figure 4): an oversized meta-block is split at its optimal cut node,
// and the pieces are split again until every piece has fewer than kSMB
// nodes, producing a meta-block tree of height O(log kMB) (Lemma 4.6).
// The main index path in package core uses single-level Split on
// overflow; RecursiveDecompose exists for the Figure 4 reproduction and
// the meta-recursion ablation (experiment E9).

// MBTree is a node of the meta-block tree: one (small) region plus the
// subtrees split off below its cut node.
type MBTree struct {
	Region   *Region
	Cut      *MetaNode // the cut node whose out-edges were removed; nil at leaves
	Children []*MBTree
}

// RecursiveDecompose splits the region into a meta-block tree whose
// every piece has fewer than kSMB meta-nodes (when the input allows it:
// a single node is never split). The receiver region is consumed.
func RecursiveDecompose(r *Region, kSMB int) *MBTree {
	t := &MBTree{Region: r}
	if r.Len() < kSMB || r.Len() < 2 {
		return t
	}
	cut, _ := CutNode(r.Root)
	if len(cut.Children) == 0 {
		cut = r.Root
	}
	t.Cut = cut
	_, parts := r.Split()
	for _, nr := range parts {
		t.Children = append(t.Children, RecursiveDecompose(nr, kSMB))
	}
	// The remaining piece may still be oversized (the cut bounds each
	// component by (n+1)/2, so repeated splitting of the remainder
	// converges); split it again in place.
	for r.Len() >= kSMB && r.Len() >= 2 {
		_, more := r.Split()
		for _, nr := range more {
			t.Children = append(t.Children, RecursiveDecompose(nr, kSMB))
		}
	}
	return t
}

// Height returns the height of the meta-block tree (a single piece has
// height 1).
func (t *MBTree) Height() int {
	h := 0
	for _, c := range t.Children {
		if ch := c.Height(); ch > h {
			h = ch
		}
	}
	return h + 1
}

// Pieces returns every region in the tree.
func (t *MBTree) Pieces() []*Region {
	out := []*Region{t.Region}
	for _, c := range t.Children {
		out = append(out, c.Pieces()...)
	}
	return out
}

// TotalNodes returns the number of meta-nodes across all pieces.
func (t *MBTree) TotalNodes() int {
	n := 0
	for _, p := range t.Pieces() {
		n += p.Len()
	}
	return n
}
