// Package hvm implements the structural logic of PIM-trie's hash value
// manager (paper §4.4): meta-nodes (the per-block metadata records),
// meta-blocks ("regions" — connected pieces of the meta-tree, each stored
// on one PIM module), cut-node selection (Lemma 4.5), region splitting,
// and the recursive meta-block decomposition of §4.4.1 (Figure 4).
//
// The package is deliberately free of PIM orchestration: it manipulates
// in-memory structures and is unit-tested standalone. Package core owns
// distribution, communication accounting and the matching protocol.
package hvm

import (
	"fmt"

	"github.com/pimlab/pimtrie/internal/bitstr"
	"github.com/pimlab/pimtrie/internal/pim"
)

// MetaNode is the metadata for one data-trie block: the node hash of the
// block root, its length, the last ≤w bits of the root string (S_last,
// used by differentiated verification, §4.4.3), and the address of the
// block object. Tree links mirror the block tree: children in the same
// region are held directly; children whose regions were split off are
// reachable through ChildRegions.
type MetaNode struct {
	Hash  uint64
	Len   int
	SLast bitstr.String
	Block pim.Addr

	// Pivot-matching augmentation (§4.4.2): the hash output of the root
	// string's longest w-multiple prefix, and the sub-word remainder
	// after it (|SRem| = Len mod w < w bits).
	HashPre uint64
	SRem    bitstr.String

	Parent       *MetaNode
	Children     []*MetaNode
	ChildRegions []pim.Addr
}

// NodeCostWords is the per-meta-node space charge: hash, length, block
// address, links, plus one word of S_last.
const NodeCostWords = 6

// Region is one meta-block: a connected piece of the meta-tree indexed
// by block-root hash. Regions are the unit of distribution — package
// core stores each Region as a single PIM object.
type Region struct {
	Root  *MetaNode
	Index map[uint64]*MetaNode

	pivot      *PivotIndex
	pivotDirty bool
}

// ErrHashCollision is returned when two distinct block roots produce the
// same hash output — the trigger for the global re-hash of §4.4.3.
type ErrHashCollision struct {
	Hash uint64
}

func (e ErrHashCollision) Error() string {
	return fmt.Sprintf("hvm: block-root hash collision on %#x", e.Hash)
}

// NewRegionTree wraps an already-linked meta-node tree as a region
// without collision checking (duplicate hashes overwrite in the index).
// Callers must Reindex every final region after splitting — the paper's
// uniqueness requirement applies per lookup table, so collisions are
// checked where lookups happen.
func NewRegionTree(root *MetaNode) *Region {
	r := &Region{Root: root, Index: map[uint64]*MetaNode{}}
	var rec func(n *MetaNode)
	rec = func(n *MetaNode) {
		r.Index[n.Hash] = n
		for _, c := range n.Children {
			rec(c)
		}
	}
	rec(root)
	return r
}

// Reindex rebuilds the index from the tree, returning ErrHashCollision
// if two nodes in this region share a hash output.
func (r *Region) Reindex() error {
	idx := make(map[uint64]*MetaNode, len(r.Index))
	var err error
	var rec func(n *MetaNode)
	rec = func(n *MetaNode) {
		if _, dup := idx[n.Hash]; dup && err == nil {
			err = ErrHashCollision{Hash: n.Hash}
		}
		idx[n.Hash] = n
		for _, c := range n.Children {
			rec(c)
		}
	}
	rec(r.Root)
	if err != nil {
		return err
	}
	r.Index = idx
	r.markDirty()
	return nil
}

// NewRegion creates a region containing just the given root node.
func NewRegion(root *MetaNode) *Region {
	r := &Region{Root: root, Index: map[uint64]*MetaNode{root.Hash: root}}
	return r
}

// Len returns the number of meta-nodes in the region.
func (r *Region) Len() int { return len(r.Index) }

// SizeWords returns the region's PIM-memory footprint in words.
func (r *Region) SizeWords() int {
	return r.Len()*NodeCostWords + 2
}

// Lookup returns the meta-node with the given block-root hash, or nil.
func (r *Region) Lookup(h uint64) *MetaNode { return r.Index[h] }

// Insert adds child under parent (which must be in the region). It
// returns ErrHashCollision if a different root already uses the hash —
// equal hash with equal (Len, SLast) still collides structurally because
// block roots are unique strings, so any duplicate is a collision.
func (r *Region) Insert(parent, child *MetaNode) error {
	if r.Index[parent.Hash] != parent {
		panic("hvm: Insert parent not in region")
	}
	if _, exists := r.Index[child.Hash]; exists {
		return ErrHashCollision{Hash: child.Hash}
	}
	child.Parent = parent
	parent.Children = append(parent.Children, child)
	r.Index[child.Hash] = child
	r.markDirty()
	return nil
}

// Remove deletes a leaf meta-node (no Children and no ChildRegions) from
// the region. It panics if n is the region root or not a leaf — callers
// must drain children first, matching how blocks are deleted bottom-up.
func (r *Region) Remove(n *MetaNode) {
	if n == r.Root {
		panic("hvm: Remove of region root")
	}
	if len(n.Children) != 0 || len(n.ChildRegions) != 0 {
		panic("hvm: Remove of non-leaf meta-node")
	}
	if r.Index[n.Hash] != n {
		panic("hvm: Remove of node not in region")
	}
	delete(r.Index, n.Hash)
	r.markDirty()
	p := n.Parent
	for i, c := range p.Children {
		if c == n {
			p.Children = append(p.Children[:i], p.Children[i+1:]...)
			break
		}
	}
	n.Parent = nil
}

// RemoveAny deletes n from the region regardless of its position, while
// preserving the ancestry invariant the matching protocol relies on:
// every region's root must be a data-trie ancestor of all its members.
//
//   - Interior node: its children (and child-region refs) splice to its
//     parent — still descendants of every ancestor. Returns the region's
//     root unchanged and no spawned regions.
//   - Root with one child subtree: the child is promoted (returned as
//     newRoot; the caller must update the master table).
//   - Root with several children: the subtrees are *not* siblings of one
//     another in the data trie, so the region must split — the first
//     child's subtree stays in the receiver (promoted root), each other
//     child's subtree is returned as a spawned region the caller must
//     place and register.
//   - Root with no children: the region empties; newRoot is nil.
func (r *Region) RemoveAny(n *MetaNode) (newRoot *MetaNode, spawned []*Region) {
	if r.Index[n.Hash] != n {
		panic("hvm: RemoveAny of node not in region")
	}
	delete(r.Index, n.Hash)
	r.markDirty()
	if n != r.Root {
		p := n.Parent
		for i, c := range p.Children {
			if c == n {
				p.Children = append(p.Children[:i], p.Children[i+1:]...)
				break
			}
		}
		for _, c := range n.Children {
			c.Parent = p
			p.Children = append(p.Children, c)
		}
		p.ChildRegions = append(p.ChildRegions, n.ChildRegions...)
		n.Parent, n.Children, n.ChildRegions = nil, nil, nil
		return r.Root, nil
	}
	if len(n.Children) == 0 {
		r.Root = nil
		return nil, nil
	}
	children := n.Children
	n.Children, n.ChildRegions = nil, nil
	promoted := children[0]
	promoted.Parent = nil
	r.Root = promoted
	for _, c := range children[1:] {
		c.Parent = nil
		nr := NewRegion(c)
		var move func(v *MetaNode)
		move = func(v *MetaNode) {
			delete(r.Index, v.Hash)
			nr.Index[v.Hash] = v
			for _, ch := range v.Children {
				move(ch)
			}
		}
		move(c)
		spawned = append(spawned, nr)
	}
	return promoted, spawned
}

// Reparent moves child (and its subtree) beneath newParent; both must be
// members of this region. It preserves the index (no hashes change).
func (r *Region) Reparent(child, newParent *MetaNode) {
	if r.Index[child.Hash] != child || r.Index[newParent.Hash] != newParent {
		panic("hvm: Reparent outside the region")
	}
	if p := child.Parent; p != nil {
		for i, c := range p.Children {
			if c == child {
				p.Children = append(p.Children[:i], p.Children[i+1:]...)
				break
			}
		}
	}
	child.Parent = newParent
	newParent.Children = append(newParent.Children, child)
}

// MoveChildRegion transfers one occurrence of a child-region reference
// from one member to another, reporting whether it was found.
func (r *Region) MoveChildRegion(from, to *MetaNode, addr pim.Addr) bool {
	for i, a := range from.ChildRegions {
		if a == addr {
			from.ChildRegions = append(from.ChildRegions[:i], from.ChildRegions[i+1:]...)
			to.ChildRegions = append(to.ChildRegions, addr)
			return true
		}
	}
	return false
}

// subtreeSize counts meta-nodes in n's same-region subtree.
func subtreeSize(n *MetaNode) int {
	s := 1
	for _, c := range n.Children {
		s += subtreeSize(c)
	}
	return s
}

// CutNode returns the node of the tree rooted at root whose out-edge
// removal minimizes the maximum remaining component, together with that
// maximum. Lemma 4.5 guarantees the optimum is at most (n+1)/2.
func CutNode(root *MetaNode) (*MetaNode, int) {
	n := subtreeSize(root)
	var best *MetaNode
	bestMax := n + 1
	var rec func(v *MetaNode) int // returns subtree size
	rec = func(v *MetaNode) int {
		size := 1
		maxComp := 0
		for _, c := range v.Children {
			cs := rec(c)
			size += cs
			if cs > maxComp {
				maxComp = cs
			}
		}
		// Removing v's out-edges leaves components: each child subtree,
		// and the rest of the tree (n - size + 1, including v itself).
		if rest := n - size + 1; rest > maxComp {
			maxComp = rest
		}
		if maxComp < bestMax {
			bestMax = maxComp
			best = v
		}
		return size
	}
	rec(root)
	return best, bestMax
}

// Split removes the optimal cut node's child subtrees from the region,
// returning the cut node and one new region per child. The cut node
// remains in the receiver; its same-region children become roots of the
// new regions and must be re-linked by the caller via ChildRegions once
// the new regions have PIM addresses. Split panics on single-node
// regions.
func (r *Region) Split() (*MetaNode, []*Region) {
	if r.Len() < 2 {
		panic("hvm: Split of trivial region")
	}
	cut, _ := CutNode(r.Root)
	if len(cut.Children) == 0 {
		// The optimal cut of a ≥2-node tree always has children unless the
		// tree is a single path ending at cut; fall back to cutting at the
		// root in that case.
		cut = r.Root
	}
	var out []*Region
	for _, c := range cut.Children {
		c.Parent = nil
		nr := NewRegion(c)
		// Move the subtree's index entries.
		var move func(v *MetaNode)
		move = func(v *MetaNode) {
			delete(r.Index, v.Hash)
			nr.Index[v.Hash] = v
			for _, ch := range v.Children {
				move(ch)
			}
		}
		move(c)
		out = append(out, nr)
	}
	cut.Children = nil
	r.markDirty()
	return cut, out
}

// Walk visits every meta-node in the region top-down.
func (r *Region) Walk(fn func(n *MetaNode)) {
	var rec func(v *MetaNode)
	rec = func(v *MetaNode) {
		fn(v)
		for _, c := range v.Children {
			rec(c)
		}
	}
	rec(r.Root)
}

// Validate checks region invariants: the index covers exactly the tree,
// parent/child links are consistent, and the root has no parent.
func (r *Region) Validate() error {
	if r.Root.Parent != nil {
		return fmt.Errorf("hvm: region root has a parent")
	}
	seen := 0
	var err error
	r.Walk(func(n *MetaNode) {
		seen++
		if r.Index[n.Hash] != n {
			err = fmt.Errorf("hvm: node %#x missing from index", n.Hash)
		}
		for _, c := range n.Children {
			if c.Parent != n {
				err = fmt.Errorf("hvm: broken parent link under %#x", n.Hash)
			}
		}
	})
	if err != nil {
		return err
	}
	if seen != len(r.Index) {
		return fmt.Errorf("hvm: index has %d entries, tree has %d nodes", len(r.Index), seen)
	}
	return nil
}
