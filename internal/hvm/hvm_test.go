package hvm

import (
	"math/rand"
	"testing"

	"github.com/pimlab/pimtrie/internal/bitstr"
	"github.com/pimlab/pimtrie/internal/pim"
)

func mkNode(h uint64) *MetaNode {
	return &MetaNode{Hash: h, Len: int(h % 97), SLast: bitstr.MustParse("01"), Block: pim.Addr{Module: 0, ID: h}}
}

// buildTree builds a region from a parent-index array: parents[i] is the
// index of node i's parent, with parents[0] ignored (node 0 is the root).
func buildTree(t *testing.T, parents []int) (*Region, []*MetaNode) {
	t.Helper()
	nodes := make([]*MetaNode, len(parents))
	for i := range nodes {
		nodes[i] = mkNode(uint64(i + 1))
	}
	r := NewRegion(nodes[0])
	for i := 1; i < len(parents); i++ {
		if err := r.Insert(nodes[parents[i]], nodes[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	return r, nodes
}

// figure3Parents encodes the 12-node meta-tree of Figure 3:
// 1→2, 1→3, 2→4, 3→5, 3→6, 3→7, 4→8, 5→9, 5→10, 6→11, 8→12
// (0-indexed below).
var figure3Parents = []int{0, 0, 0, 1, 2, 2, 2, 3, 4, 4, 5, 7}

func TestRegionInsertLookupRemove(t *testing.T) {
	r, nodes := buildTree(t, figure3Parents)
	if r.Len() != 12 {
		t.Fatalf("Len = %d", r.Len())
	}
	for _, n := range nodes {
		if r.Lookup(n.Hash) != n {
			t.Fatalf("Lookup(%#x) failed", n.Hash)
		}
	}
	// Node 11 (index 11, hash 12) is a leaf under node index 7.
	r.Remove(nodes[11])
	if r.Len() != 11 || r.Lookup(nodes[11].Hash) != nil {
		t.Fatal("Remove failed")
	}
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestInsertCollision(t *testing.T) {
	r, nodes := buildTree(t, []int{0, 0})
	dup := mkNode(nodes[1].Hash)
	err := r.Insert(nodes[0], dup)
	if _, ok := err.(ErrHashCollision); !ok {
		t.Fatalf("expected ErrHashCollision, got %v", err)
	}
}

func TestRemovePanicsOnNonLeaf(t *testing.T) {
	r, nodes := buildTree(t, figure3Parents)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic removing internal node")
		}
	}()
	r.Remove(nodes[2])
}

func TestCutNodeLemma45(t *testing.T) {
	// Lemma 4.5: for any out-tree of n nodes there is a cut node whose
	// out-edge removal leaves components of at most (n+1)/2 nodes.
	// Check over random trees and adversarial shapes.
	r := rand.New(rand.NewSource(1))
	shapes := [][]int{
		figure3Parents,
		{0},          // single node
		{0, 0},       // pair
		{0, 0, 1, 2}, // path
	}
	// Random trees.
	for trial := 0; trial < 60; trial++ {
		n := 1 + r.Intn(80)
		parents := make([]int, n)
		for i := 1; i < n; i++ {
			parents[i] = r.Intn(i)
		}
		shapes = append(shapes, parents)
	}
	// Long path and star.
	path := make([]int, 65)
	star := make([]int, 65)
	for i := 1; i < 65; i++ {
		path[i] = i - 1
		star[i] = 0
	}
	shapes = append(shapes, path, star)

	for si, parents := range shapes {
		reg, _ := buildTree(t, parents)
		n := reg.Len()
		_, maxComp := CutNode(reg.Root)
		if maxComp > (n+1)/2 {
			t.Fatalf("shape %d (n=%d): cut leaves component of %d > (n+1)/2", si, n, maxComp)
		}
	}
}

func TestSplitProducesValidRegions(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for trial := 0; trial < 40; trial++ {
		n := 2 + r.Intn(100)
		parents := make([]int, n)
		for i := 1; i < n; i++ {
			parents[i] = r.Intn(i)
		}
		reg, _ := buildTree(t, parents)
		_, parts := reg.Split()
		if len(parts) == 0 {
			t.Fatalf("trial %d: Split produced nothing", trial)
		}
		total := reg.Len()
		for _, p := range parts {
			if err := p.Validate(); err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			total += p.Len()
			// Each component obeys the Lemma 4.5 bound.
			if p.Len() > (n+1)/2 {
				t.Fatalf("trial %d: split component of %d nodes (n=%d)", trial, p.Len(), n)
			}
		}
		if err := reg.Validate(); err != nil {
			t.Fatalf("trial %d: remainder invalid: %v", trial, err)
		}
		if reg.Len() > (n+1)/2 {
			t.Fatalf("trial %d: remainder of %d nodes (n=%d)", trial, reg.Len(), n)
		}
		if total != n {
			t.Fatalf("trial %d: split lost nodes: %d of %d", trial, total, n)
		}
	}
}

func TestRecursiveDecomposeFigure4(t *testing.T) {
	// Figure 4: the 12-node meta-tree with K_SMB = 3: every piece of the
	// resulting meta-block tree has < 3 nodes, no node is lost, and the
	// height is logarithmic.
	reg, _ := buildTree(t, figure3Parents)
	mb := RecursiveDecompose(reg, 3)
	if got := mb.TotalNodes(); got != 12 {
		t.Fatalf("decomposition lost nodes: %d", got)
	}
	for _, p := range mb.Pieces() {
		if p.Len() >= 3 && p.Len() >= 2 {
			t.Fatalf("piece of %d nodes survived (K_SMB=3)", p.Len())
		}
		if err := p.Validate(); err != nil {
			t.Fatal(err)
		}
	}
	if h := mb.Height(); h > 6 {
		t.Fatalf("meta-block tree height %d", h)
	}
}

func TestRecursiveDecomposeHeightLogarithmic(t *testing.T) {
	// Lemma 4.6: with every split bounded by (n+1)/2, the meta-block tree
	// height is O(log n). Test on adversarial shapes at K_SMB = 4.
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		n := 50 + r.Intn(400)
		parents := make([]int, n)
		shape := trial % 3
		for i := 1; i < n; i++ {
			switch shape {
			case 0:
				parents[i] = i - 1 // path
			case 1:
				parents[i] = 0 // star
			default:
				parents[i] = r.Intn(i)
			}
		}
		reg, _ := buildTree(t, parents)
		mb := RecursiveDecompose(reg, 4)
		if mb.TotalNodes() != n {
			t.Fatalf("trial %d: lost nodes", trial)
		}
		// Generous constant: height ≤ 4·log2(n) + 4.
		limit := 4
		for m := n; m > 1; m >>= 1 {
			limit += 4
		}
		if h := mb.Height(); h > limit {
			t.Fatalf("trial %d (shape %d, n=%d): height %d > %d", trial, shape, n, h, limit)
		}
	}
}

func TestSizeWords(t *testing.T) {
	reg, _ := buildTree(t, figure3Parents)
	if w := reg.SizeWords(); w != 12*NodeCostWords+2 {
		t.Fatalf("SizeWords = %d", w)
	}
}
