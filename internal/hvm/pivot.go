package hvm

// The pivot index of §4.4.2 ("Efficient HashMatching"): each meta-node
// carries the hash of its root string's longest w-multiple prefix
// (HashPre) and the sub-word remainder (S_rem); the region groups its
// members by HashPre into two-layer indexes (yfast.TwoLayerIndex), so a
// probe touches one class per w bits instead of one hash table per bit.
// The index is derived state, rebuilt lazily after mutations.

import (
	"github.com/pimlab/pimtrie/internal/bitstr"
	"github.com/pimlab/pimtrie/internal/yfast"
)

// PivotIndex maps pivot-class hashes to two-layer indexes over the
// members' remainders. Payloads are positions in Metas.
type PivotIndex struct {
	Classes map[uint64]*yfast.TwoLayerIndex
	Metas   []*MetaNode
}

// Pivot returns the region's pivot index, rebuilding it if any mutation
// occurred since the last build. Callers on a PIM module should charge
// Work(r.Len()) for a rebuild.
func (r *Region) Pivot() *PivotIndex {
	if r.pivot != nil && !r.pivotDirty {
		return r.pivot
	}
	px := &PivotIndex{Classes: map[uint64]*yfast.TwoLayerIndex{}}
	r.Walk(func(n *MetaNode) {
		cls := px.Classes[n.HashPre]
		if cls == nil {
			cls = yfast.NewTwoLayer(bitstr.WordBits)
			px.Classes[n.HashPre] = cls
		}
		cls.Insert(n.SRem, uint64(len(px.Metas)))
		px.Metas = append(px.Metas, n)
	})
	r.pivot = px
	r.pivotDirty = false
	return px
}

// markDirty invalidates the pivot index; every membership mutation calls
// it.
func (r *Region) markDirty() { r.pivotDirty = true }

// LookupPivot returns, for a pivot class and a remainder query (< w
// bits), the member whose S_rem has the longest LCP with the query
// (ties: shortest) — the §4.4.2 two-layer contract. It reports false
// when the class is empty.
func (r *Region) LookupPivot(hashPre uint64, srem bitstr.String) (*MetaNode, bool) {
	cls := r.Pivot().Classes[hashPre]
	if cls == nil {
		return nil, false
	}
	res, ok := cls.Lookup(srem)
	if !ok {
		return nil, false
	}
	return r.pivot.Metas[res.Payload], true
}
