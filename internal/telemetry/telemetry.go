// Package telemetry serves a process's live observability plane over
// HTTP: the metrics registry in Prometheus text format, a JSON /varz
// digest, an index-health probe, and the standard pprof profilers. It
// is the read side only — instruments live in internal/metrics and are
// fed by the serving layer (internal/serve) and the PIM monitor
// (internal/obs); this package never touches the index and is safe to
// scrape at any rate while the system is under load.
//
// Endpoints:
//
//	/metrics       Prometheus text exposition of the registry
//	/varz          JSON digest (counters/gauges plain, histograms as
//	               count/sum/mean/p50/p95/p99/p999/max)
//	/healthz       200 "ok" while the index is healthy, 503 with a
//	               JSON body once degraded or modules are dead
//	/debug/pprof/  net/http/pprof profilers
package telemetry

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"

	"github.com/pimlab/pimtrie"
	"github.com/pimlab/pimtrie/internal/metrics"
)

// Options configures a telemetry server.
type Options struct {
	// Addr is the listen address, e.g. "127.0.0.1:9090" or ":0" for an
	// ephemeral port (Server.Addr reports the bound address).
	Addr string
	// Registry backs /metrics and /varz; nil serves empty documents.
	Registry *metrics.Registry
	// Health, when non-nil, backs /healthz — typically
	// (*serve.Server).Health, the post-epoch sample that is safe to read
	// from any goroutine. Nil reports healthy unconditionally.
	Health func() pimtrie.Health
}

// Server is a running telemetry endpoint. Construct with Start, stop
// with Close.
type Server struct {
	opts Options
	ln   net.Listener
	srv  *http.Server
	done chan struct{}
}

// Start binds opts.Addr and begins serving in a background goroutine.
func Start(opts Options) (*Server, error) {
	ln, err := net.Listen("tcp", opts.Addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: listen %s: %w", opts.Addr, err)
	}
	s := &Server{opts: opts, ln: ln, done: make(chan struct{})}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/varz", s.handleVarz)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s.srv = &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go func() {
		defer close(s.done)
		_ = s.srv.Serve(ln) // returns http.ErrServerClosed on Close
	}()
	return s, nil
}

// Addr returns the bound listen address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the listener and waits for the serve loop to exit.
func (s *Server) Close() error {
	err := s.srv.Close()
	<-s.done
	return err
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if s.opts.Registry != nil {
		_ = s.opts.Registry.WritePrometheus(w)
	}
}

func (s *Server) handleVarz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	v := map[string]any{}
	if s.opts.Registry != nil {
		v = s.opts.Registry.Varz()
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// healthzBody is /healthz's 503 JSON payload.
type healthzBody struct {
	Degraded    bool  `json:"degraded"`
	DeadModules []int `json:"dead_modules"`
	Recoveries  int   `json:"recoveries"`
	ModulesLost int   `json:"modules_lost"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	if s.opts.Health == nil {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
		return
	}
	h := s.opts.Health()
	if !h.Degraded && len(h.DeadModules) == 0 {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusServiceUnavailable)
	_ = json.NewEncoder(w).Encode(healthzBody{
		Degraded:    h.Degraded,
		DeadModules: h.DeadModules,
		Recoveries:  h.Recoveries,
		ModulesLost: h.ModulesLost,
	})
}
