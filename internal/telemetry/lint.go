package telemetry

// Exposition lint: structural checks over a Prometheus text scrape,
// used by the telemetry tests and the CI metrics-smoke job to keep the
// metric surface well-formed as instruments are added. The rules are
// the subset of Prometheus conventions this repo commits to:
//
//   - no duplicate series (same name+labels emitted twice)
//   - every sample belongs to a family declared with # TYPE
//   - counter families end in _total
//   - histogram families end in a unit suffix (_seconds, _words,
//     _keys, _bytes)
//   - histogram buckets are cumulative: counts non-decreasing in le
//     order, and the +Inf bucket equals _count

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// histUnits are the unit suffixes histogram families may end with.
var histUnits = []string{"_seconds", "_words", "_keys", "_bytes"}

// LintExposition checks a Prometheus text scrape against the repo's
// exposition conventions and returns one message per violation (nil
// when clean).
func LintExposition(text string) []string {
	var problems []string
	types := map[string]string{} // family -> kind
	seen := map[string]bool{}    // full series key
	// histogram family -> bucket samples in emission order
	type bucket struct {
		le  float64
		inf bool
		n   uint64
	}
	histBuckets := map[string][]bucket{}
	histCount := map[string]uint64{}

	for ln, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) >= 4 && fields[1] == "TYPE" {
				name, kind := fields[2], fields[3]
				if prev, ok := types[name]; ok && prev != kind {
					problems = append(problems, fmt.Sprintf("line %d: family %s re-typed %s -> %s", ln+1, name, prev, kind))
				}
				types[name] = kind
				switch kind {
				case "counter":
					if !strings.HasSuffix(name, "_total") {
						problems = append(problems, fmt.Sprintf("counter %s does not end in _total", name))
					}
				case "histogram":
					ok := false
					for _, u := range histUnits {
						if strings.HasSuffix(name, u) {
							ok = true
							break
						}
					}
					if !ok {
						problems = append(problems, fmt.Sprintf("histogram %s lacks a unit suffix (%s)", name, strings.Join(histUnits, " ")))
					}
				}
			}
			continue
		}
		name, labels, value, err := parseSample(line)
		if err != nil {
			problems = append(problems, fmt.Sprintf("line %d: %v", ln+1, err))
			continue
		}
		series := name + labels
		if seen[series] {
			problems = append(problems, fmt.Sprintf("line %d: duplicate series %s", ln+1, series))
		}
		seen[series] = true
		family, sub := histFamily(name, types)
		if family == "" && types[name] == "" {
			problems = append(problems, fmt.Sprintf("line %d: sample %s has no # TYPE declaration", ln+1, name))
			continue
		}
		if family != "" {
			key := family + stripLE(labels)
			switch sub {
			case "_bucket":
				le, inf, err := parseLE(labels)
				if err != nil {
					problems = append(problems, fmt.Sprintf("line %d: %s: %v", ln+1, series, err))
					continue
				}
				n, _ := strconv.ParseUint(value, 10, 64)
				histBuckets[key] = append(histBuckets[key], bucket{le: le, inf: inf, n: n})
			case "_count":
				n, _ := strconv.ParseUint(value, 10, 64)
				histCount[key] = n
			}
		}
	}

	keys := make([]string, 0, len(histBuckets))
	for k := range histBuckets {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		bs := histBuckets[k]
		for i := 1; i < len(bs); i++ {
			if !bs[i].inf && bs[i].le <= bs[i-1].le {
				problems = append(problems, fmt.Sprintf("%s: bucket le out of order (%g after %g)", k, bs[i].le, bs[i-1].le))
			}
			if bs[i].n < bs[i-1].n {
				problems = append(problems, fmt.Sprintf("%s: bucket counts not cumulative (%d after %d)", k, bs[i].n, bs[i-1].n))
			}
		}
		last := bs[len(bs)-1]
		if !last.inf {
			problems = append(problems, fmt.Sprintf("%s: missing +Inf bucket", k))
		} else if total, ok := histCount[k]; ok && last.n != total {
			problems = append(problems, fmt.Sprintf("%s: +Inf bucket %d != _count %d", k, last.n, total))
		}
	}
	return problems
}

// parseSample splits a sample line into name, label block (with
// braces, possibly empty) and value text.
func parseSample(line string) (name, labels, value string, err error) {
	rest := line
	if i := strings.IndexByte(rest, '{'); i >= 0 {
		j := strings.LastIndexByte(rest, '}')
		if j < i {
			return "", "", "", fmt.Errorf("unbalanced label braces")
		}
		name, labels, rest = rest[:i], rest[i:j+1], strings.TrimSpace(rest[j+1:])
	} else {
		fields := strings.Fields(rest)
		if len(fields) != 2 {
			return "", "", "", fmt.Errorf("malformed sample %q", line)
		}
		return fields[0], "", fields[1], nil
	}
	if rest == "" {
		return "", "", "", fmt.Errorf("sample %s has no value", name)
	}
	return name, labels, rest, nil
}

// histFamily resolves a sample name to its histogram family when it is
// a _bucket/_sum/_count expansion of a declared histogram.
func histFamily(name string, types map[string]string) (family, sub string) {
	for _, s := range []string{"_bucket", "_sum", "_count"} {
		if strings.HasSuffix(name, s) {
			f := strings.TrimSuffix(name, s)
			if types[f] == "histogram" {
				return f, s
			}
		}
	}
	return "", ""
}

// parseLE extracts the le label from a _bucket label block.
func parseLE(labels string) (le float64, inf bool, err error) {
	i := strings.Index(labels, `le="`)
	if i < 0 {
		return 0, false, fmt.Errorf("bucket without le label")
	}
	rest := labels[i+len(`le="`):]
	j := strings.IndexByte(rest, '"')
	if j < 0 {
		return 0, false, fmt.Errorf("unterminated le label")
	}
	v := rest[:j]
	if v == "+Inf" {
		return 0, true, nil
	}
	le, err = strconv.ParseFloat(v, 64)
	return le, false, err
}

// stripLE removes the le pair from a label block so all of one
// histogram's expansions share a key.
func stripLE(labels string) string {
	i := strings.Index(labels, `le="`)
	if i < 0 {
		return labels
	}
	rest := labels[i+len(`le="`):]
	j := strings.IndexByte(rest, '"')
	if j < 0 {
		return labels
	}
	out := labels[:i] + rest[j+1:]
	out = strings.ReplaceAll(out, ",}", "}")
	out = strings.ReplaceAll(out, "{,", "{")
	if out == "{}" {
		return ""
	}
	return out
}
