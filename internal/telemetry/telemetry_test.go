package telemetry_test

import (
	"encoding/json"
	"io"
	"math/rand"
	"net/http"
	"strings"
	"sync/atomic"
	"testing"

	"github.com/pimlab/pimtrie"
	"github.com/pimlab/pimtrie/internal/metrics"
	"github.com/pimlab/pimtrie/internal/obs"
	"github.com/pimlab/pimtrie/internal/serve"
	"github.com/pimlab/pimtrie/internal/telemetry"
)

// liveSetup runs a served index with every instrument source attached
// (serve metrics + PIM monitor) and a telemetry server over the shared
// registry, drives some traffic, and returns the scrape base URL.
func liveSetup(t *testing.T, health func() pimtrie.Health) (*metrics.Registry, string, func()) {
	t.Helper()
	reg := metrics.NewRegistry()
	r := rand.New(rand.NewSource(2))
	keys := make([]serve.Key, 0, 128)
	values := make([]uint64, 0, 128)
	for len(keys) < 128 {
		n := 1 + r.Intn(48)
		b := make([]byte, (n+7)/8)
		r.Read(b)
		keys = append(keys, pimtrie.KeyFromBytes(b).Prefix(n))
		values = append(values, uint64(len(keys)))
	}
	ix := pimtrie.New(8, pimtrie.Options{Seed: 4})
	mon := obs.NewMonitor(reg, ix.P())
	ix.SetRecorder(mon)
	ix.Load(keys, values)
	srv := serve.NewServer(ix, serve.Options{MaxBatch: 32, CacheSize: 64, Metrics: reg})
	for i := 0; i < 30; i++ {
		if _, _, err := srv.GetAsync(keys[i%7], keys[i%len(keys)]).Wait(); err != nil {
			t.Fatalf("get: %v", err)
		}
	}
	if err := srv.Insert(keys[0], 999); err != nil {
		t.Fatalf("insert: %v", err)
	}
	if health == nil {
		health = srv.Health
	}
	ts, err := telemetry.Start(telemetry.Options{Addr: "127.0.0.1:0", Registry: reg, Health: health})
	if err != nil {
		t.Fatalf("start: %v", err)
	}
	return reg, "http://" + ts.Addr(), func() {
		_ = ts.Close()
		srv.Close()
	}
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	return resp.StatusCode, string(body)
}

func TestEndpoints(t *testing.T) {
	_, base, stop := liveSetup(t, nil)
	defer stop()

	code, body := get(t, base+"/metrics")
	if code != 200 {
		t.Fatalf("/metrics status %d", code)
	}
	for _, want := range []string{
		"# TYPE pimtrie_serve_requests_total counter",
		`pimtrie_serve_requests_total{op="get"}`,
		"# TYPE pimtrie_serve_request_seconds histogram",
		`pimtrie_serve_request_seconds_bucket{op="get",le="+Inf"}`,
		"pimtrie_pim_rounds_total",
		"pimtrie_pim_io_imbalance_max_mean",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	if problems := telemetry.LintExposition(body); len(problems) > 0 {
		t.Errorf("exposition lint: %v", problems)
	}

	code, body = get(t, base+"/healthz")
	if code != 200 || !strings.Contains(body, "ok") {
		t.Errorf("/healthz = %d %q, want 200 ok", code, body)
	}

	code, body = get(t, base+"/varz")
	if code != 200 {
		t.Fatalf("/varz status %d", code)
	}
	var v map[string]any
	if err := json.Unmarshal([]byte(body), &v); err != nil {
		t.Fatalf("/varz not JSON: %v", err)
	}
	if _, ok := v[`pimtrie_serve_requests_total{op="get"}`]; !ok {
		t.Errorf("/varz missing serve request counter; keys: %d", len(v))
	}
	h, ok := v[`pimtrie_serve_request_seconds{op="get"}`].(map[string]any)
	if !ok {
		t.Fatalf("/varz latency digest missing")
	}
	for _, field := range []string{"count", "p50", "p99", "max"} {
		if _, ok := h[field]; !ok {
			t.Errorf("/varz digest missing %q", field)
		}
	}

	if code, _ := get(t, base+"/debug/pprof/cmdline"); code != 200 {
		t.Errorf("/debug/pprof/cmdline status %d", code)
	}
}

// TestHealthzFlips drives /healthz through the degraded transition via
// a swappable health callback, proving the probe reflects whatever the
// serving layer's post-epoch sample says without touching the index.
func TestHealthzFlips(t *testing.T) {
	var degraded atomic.Bool
	health := func() pimtrie.Health {
		if degraded.Load() {
			return pimtrie.Health{Degraded: true, DeadModules: []int{3}, Recoveries: 1}
		}
		return pimtrie.Health{Recoverable: true}
	}
	_, base, stop := liveSetup(t, health)
	defer stop()

	if code, _ := get(t, base+"/healthz"); code != 200 {
		t.Fatalf("healthy probe status %d", code)
	}
	degraded.Store(true)
	code, body := get(t, base+"/healthz")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("degraded probe status %d, want 503", code)
	}
	var hb map[string]any
	if err := json.Unmarshal([]byte(body), &hb); err != nil {
		t.Fatalf("degraded body not JSON: %v (%q)", err, body)
	}
	if hb["degraded"] != true {
		t.Errorf("degraded body = %v", hb)
	}
	degraded.Store(false)
	if code, _ := get(t, base+"/healthz"); code != 200 {
		t.Fatalf("recovered probe status %d", code)
	}
}

func TestLintCatchesViolations(t *testing.T) {
	cases := []struct {
		name string
		text string
		want string
	}{
		{
			"duplicate series",
			"# HELP a_total h\n# TYPE a_total counter\na_total 1\na_total 2\n",
			"duplicate series",
		},
		{
			"counter suffix",
			"# HELP a_count h\n# TYPE a_count counter\na_count 1\n",
			"does not end in _total",
		},
		{
			"histogram unit",
			"# HELP h h\n# TYPE h histogram\nh_bucket{le=\"+Inf\"} 1\nh_sum 1\nh_count 1\n",
			"lacks a unit suffix",
		},
		{
			"undeclared sample",
			"mystery 4\n",
			"no # TYPE",
		},
		{
			"non-cumulative buckets",
			"# HELP h_seconds h\n# TYPE h_seconds histogram\nh_seconds_bucket{le=\"1\"} 5\nh_seconds_bucket{le=\"2\"} 3\nh_seconds_bucket{le=\"+Inf\"} 5\nh_seconds_sum 1\nh_seconds_count 5\n",
			"not cumulative",
		},
		{
			"inf/count mismatch",
			"# HELP h_seconds h\n# TYPE h_seconds histogram\nh_seconds_bucket{le=\"+Inf\"} 4\nh_seconds_sum 1\nh_seconds_count 5\n",
			"!= _count",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			problems := telemetry.LintExposition(tc.text)
			found := false
			for _, p := range problems {
				if strings.Contains(p, tc.want) {
					found = true
				}
			}
			if !found {
				t.Errorf("lint %v missing %q", problems, tc.want)
			}
		})
	}
	clean := "# HELP ok_total h\n# TYPE ok_total counter\nok_total 1\n"
	if problems := telemetry.LintExposition(clean); len(problems) != 0 {
		t.Errorf("clean text flagged: %v", problems)
	}
}
