package core

// Bulk loading and global re-hash. Build constructs the whole data trie
// on the host, blocks it (§4.2), distributes the blocks uniformly at
// random, and assembles the hash value manager (regions + master table).
// rehash re-derives every hash-dependent structure under a fresh hash
// function (§4.4.3's global re-hash), reusing the same assembly path.

import (
	"fmt"

	"github.com/pimlab/pimtrie/internal/bitstr"
	"github.com/pimlab/pimtrie/internal/hashing"
	"github.com/pimlab/pimtrie/internal/hvm"
	"github.com/pimlab/pimtrie/internal/parallel"
	"github.com/pimlab/pimtrie/internal/pim"
	"github.com/pimlab/pimtrie/internal/trie"
)

// blockMeta is the host-side record used while assembling the HVM.
type blockMeta struct {
	addr     pim.Addr
	parent   pim.Addr
	val      hashing.Value
	len      int
	sLast    bitstr.String
	children []pim.Addr
}

// Build bulk-loads the index with the given key-value pairs, replacing
// all current contents. It panics if called on a non-empty trie (bulk
// load is a constructor-time operation; use Insert afterwards).
func (t *PIMTrie) Build(keys []bitstr.String, values []uint64) {
	if t.nKeys != 0 {
		panic("core: Build on a non-empty PIM-trie")
	}
	if len(keys) != len(values) {
		panic(fmt.Sprintf("core: Build keys/values length mismatch: %d keys, %d values", len(keys), len(values)))
	}
	defer t.beginBatch("Build")()
	t.shadowInsert(keys, values)
	t.withRecovery(true, func() { t.buildOnce(keys, values) })
	t.syncKeyCount()
}

func (t *PIMTrie) buildOnce(keys []bitstr.String, values []uint64) {
	defer t.sys.Phase("build")()
	// Host-side construction of the full compressed trie.
	full := trie.New()
	for i, k := range keys {
		full.Insert(k, values[i])
		t.sys.CPUWork(k.Words() + 1)
	}
	t.nKeys = full.KeyCount()
	t.loadFromTrie(full)
}

// loadFromTrie blocks, distributes and indexes the given host trie.
// The whole load is a dirty window: a module lost partway leaves mixed
// old/new state that only a full rebuild can fix.
func (t *PIMTrie) loadFromTrie(full *trie.Trie) {
	t.dirty++
	cuts := full.Partition(t.cfg.BlockWords)
	cuts = dropMirrorCuts(cuts)
	specs := full.ExtractBlocks(cuts)
	t.sys.CPUWork(full.SizeWords())

	for attempt := 0; ; attempt++ {
		if err := t.installBlocks(specs); err == nil {
			t.dirty--
			return
		}
		if attempt >= t.cfg.MaxRedo {
			panic("core: could not find a collision-free hash function; widen HashWidth")
		}
		t.rehashes++
		t.hashSalt++
		t.setHasher(hashing.New(t.hashSalt, t.cfg.HashWidth))
	}
}

// dropMirrorCuts removes mirror nodes from a cut set (a mirror is
// already a block boundary; re-cutting it would create empty blocks).
func dropMirrorCuts(cuts []*trie.Node) []*trie.Node {
	out := cuts[:0]
	for _, c := range cuts {
		if !c.Mirror {
			out = append(out, c)
		}
	}
	return out
}

// installBlocks distributes the block specs and assembles the HVM. On a
// hash collision it frees everything it allocated and reports the error
// so the caller can re-hash and retry.
func (t *PIMTrie) installBlocks(specs []*trie.BlockSpec) error {
	defer t.sys.Phase("install-blocks")()
	// Clear all previous module state except master replicas.
	t.clearObjects()

	// One round: allocate every block on a uniformly random module. The
	// placement draws stay serial (RNG sequence); hashing each block's
	// root string — the bulk of the host work here — fans out.
	tasks := make([]pim.Task, len(specs))
	metas := make([]*blockMeta, len(specs))
	mods := make([]int, len(specs))
	for i := range mods {
		mods[i] = t.sys.RandModule()
	}
	parallel.For(len(specs), func(i int) {
		sp := specs[i]
		val := t.h.Hash(sp.RootString)
		metas[i] = &blockMeta{
			parent: pim.NilAddr,
			val:    val,
			len:    sp.RootString.Len(),
			sLast:  slastOf(sp.RootString),
		}
		bo := &blockObj{
			tr:      sp.Trie,
			rootLen: sp.RootString.Len(),
			rootVal: val,
			sLast:   metas[i].sLast,
			parent:  pim.NilAddr,
		}
		bo.rootHash = t.h.Out(val)
		tasks[i] = pim.Task{
			Module:    mods[i],
			SendWords: sp.SizeWords(),
			Run: func(m *pim.Module) pim.Resp {
				return pim.Resp{RecvWords: 1, Value: m.Alloc(bo)}
			},
		}
	})
	resps := t.sys.Round(tasks)
	for i, r := range resps {
		metas[i].addr = r.Value.(pim.Addr)
	}
	if t.recoverable {
		// The block directory is rebuilt from scratch on a full load.
		clear(t.blockDir)
		for i, sp := range specs {
			t.blockDir[metas[i].addr] = sp.RootString
		}
	}
	// Wire mirrors: one round updating children lists and parent links.
	wire := make([]pim.Task, 0, len(specs))
	for i, sp := range specs {
		i, sp := i, sp
		children := make([]pim.Addr, len(sp.Mirrors))
		for mi, ref := range sp.Mirrors {
			children[mi] = metas[ref.ChildIndex].addr
			metas[ref.ChildIndex].parent = metas[i].addr
			ref.Node.Value = uint64(mi)
		}
		metas[i].children = children
		addr := metas[i].addr
		wire = append(wire, pim.Task{
			Module:    addr.Module,
			SendWords: len(children) + 1,
			Run: func(m *pim.Module) pim.Resp {
				bo := m.Get(addr.ID).(*blockObj)
				bo.children = children
				m.Resize(addr.ID)
				return pim.Resp{}
			},
		})
	}
	// Parent pointers.
	for i := range specs {
		meta := metas[i]
		addr, parent := meta.addr, meta.parent
		wire = append(wire, pim.Task{
			Module:    addr.Module,
			SendWords: 1,
			Run: func(m *pim.Module) pim.Resp {
				m.Get(addr.ID).(*blockObj).parent = parent
				return pim.Resp{}
			},
		})
	}
	t.sys.Round(wire)
	t.rootBlock = metas[0].addr
	return t.assembleHVM(metas)
}

// clearObjects frees every block and region object (full reload path).
func (t *PIMTrie) clearObjects() {
	tasks := make([]pim.Task, 0, t.sys.P())
	for i := 0; i < t.sys.P(); i++ {
		tasks = append(tasks, pim.Task{Module: i, SendWords: 1, Run: func(m *pim.Module) pim.Resp {
			var ids []uint64
			m.EachID(func(id uint64, obj any) {
				switch obj.(type) {
				case *blockObj, *regionObj:
					ids = append(ids, id)
				}
			})
			for _, id := range ids {
				m.Free(id)
			}
			return pim.Resp{}
		}})
	}
	t.sys.Round(tasks)
}

// pivotAug derives the §4.4.2 pivot augmentation of a block root from
// its hash value, length, and S_last window: the hash output of the
// longest w-multiple prefix and the remainder after it. The remainder is
// always inside S_last (|rem| = len mod w < w), so no full string is
// needed — Shrink rewinds the root value across it.
func (t *PIMTrie) pivotAug(val hashing.Value, sLast bitstr.String) (hashPre uint64, srem bitstr.String) {
	rem := val.Len % bitstr.WordBits
	if rem == 0 {
		return t.h.Out(val), bitstr.Empty
	}
	srem = sLast.Suffix(sLast.Len() - rem)
	return t.h.Out(t.h.Shrink(val, srem)), srem
}

// slastOf returns the last min(len, w) bits of s.
func slastOf(s bitstr.String) bitstr.String {
	if s.Len() <= bitstr.WordBits {
		return s
	}
	return s.Suffix(s.Len() - bitstr.WordBits)
}

// slastExtend derives the S_last of parentSLast·rel.
func slastExtend(parentSLast, rel bitstr.String) bitstr.String {
	return slastOf(parentSLast.Concat(rel))
}

// assembleHVM builds the meta-tree from the block metadata, groups it
// into regions of at most MetaBlockMax nodes, distributes the regions,
// rebuilds the master table and points every block at its region.
func (t *PIMTrie) assembleHVM(metas []*blockMeta) error {
	defer t.sys.Phase("assemble-hvm")()
	// Build the meta-tree host-side; detect hash collisions eagerly.
	nodes := make([]*hvm.MetaNode, len(metas))
	parallel.For(len(metas), func(i int) {
		bm := metas[i]
		hashPre, srem := t.pivotAug(bm.val, bm.sLast)
		nodes[i] = &hvm.MetaNode{
			Hash: t.h.Out(bm.val), Len: bm.len, SLast: bm.sLast, Block: bm.addr,
			HashPre: hashPre, SRem: srem,
		}
	})
	byAddr := make(map[pim.Addr]int, len(metas))
	for i, bm := range metas {
		byAddr[bm.addr] = i
	}
	var root *hvm.MetaNode
	for i, bm := range metas {
		if bm.parent.IsNil() {
			root = nodes[i]
		}
	}
	if root == nil {
		return fmt.Errorf("core: no root block")
	}
	// Link the meta-tree directly (collision checking happens per final
	// region below — uniqueness is only required per lookup table).
	for i, bm := range metas {
		for _, c := range bm.children {
			ci := byAddr[c]
			nodes[ci].Parent = nodes[i]
			nodes[i].Children = append(nodes[i].Children, nodes[ci])
		}
	}
	giant := hvm.NewRegionTree(root)
	// Split into regions of bounded size.
	regions := []*hvm.Region{giant}
	type parentage struct {
		cut *hvm.MetaNode
		reg *hvm.Region
	}
	var parents []parentage
	for i := 0; i < len(regions); i++ {
		for regions[i].Len() > t.cfg.MetaBlockMax {
			cut, parts := regions[i].Split()
			for _, p := range parts {
				parents = append(parents, parentage{cut: cut, reg: p})
				regions = append(regions, p)
			}
		}
	}
	// Per-region uniqueness check (the paper's global no-collision
	// requirement scoped to each lookup table).
	for _, reg := range regions {
		if err := reg.Reindex(); err != nil {
			return err
		}
	}
	// One round: allocate regions on random modules (draws serial,
	// SizeWords — a full region walk — in parallel).
	tasks := make([]pim.Task, len(regions))
	regMods := make([]int, len(regions))
	for i := range regMods {
		regMods[i] = t.sys.RandModule()
	}
	parallel.For(len(regions), func(i int) {
		reg := regions[i]
		tasks[i] = pim.Task{
			Module:    regMods[i],
			SendWords: reg.SizeWords(),
			Run: func(m *pim.Module) pim.Resp {
				return pim.Resp{RecvWords: 1, Value: m.Alloc(&regionObj{r: reg})}
			},
		}
	})
	resps := t.sys.Round(tasks)
	regAddr := make(map[*hvm.Region]pim.Addr, len(regions))
	for i, r := range resps {
		regAddr[regions[i]] = r.Value.(pim.Addr)
	}
	for _, pg := range parents {
		pg.cut.ChildRegions = append(pg.cut.ChildRegions, regAddr[pg.reg])
	}
	// Master table: every region root.
	master := make(map[uint64]masterEntry, len(regions))
	for _, reg := range regions {
		r := reg.Root
		if old, dup := master[r.Hash]; dup && old.Block != r.Block {
			return hvm.ErrHashCollision{Hash: r.Hash}
		}
		master[r.Hash] = masterEntry{Region: regAddr[reg], Len: r.Len, SLast: r.SLast, Block: r.Block}
	}
	t.master = master
	t.broadcastMaster()
	// One round: point every block at its region.
	point := make([]pim.Task, 0, len(metas))
	for _, reg := range regions {
		ra := regAddr[reg]
		reg.Walk(func(n *hvm.MetaNode) {
			blk := n.Block
			point = append(point, pim.Task{
				Module:    blk.Module,
				SendWords: 2,
				Run: func(m *pim.Module) pim.Resp {
					m.Get(blk.ID).(*blockObj).region = ra
					return pim.Resp{}
				},
			})
		})
	}
	t.sys.Round(point)
	return nil
}

func metasRootAddr(metas []*blockMeta) pim.Addr {
	for _, bm := range metas {
		if bm.parent.IsNil() {
			return bm.addr
		}
	}
	panic("core: no root block meta")
}

// rehash switches to a fresh hash function and rebuilds every
// hash-dependent structure: block root values (top-down over the block
// tree), regions and the master table. Costs are charged as the rounds
// execute; the operation is rare (§4.4.3).
func (t *PIMTrie) rehash() {
	defer t.sys.Phase("rehash")()
	t.rehashes++
	// Dirty window: a module lost mid-rehash leaves survivors with root
	// values under mixed salts; only a full rebuild restores coherence.
	t.dirty++
	for attempt := 0; ; attempt++ {
		t.hashSalt++
		t.setHasher(hashing.New(t.hashSalt, t.cfg.HashWidth))
		if err := t.rebuildHashes(); err == nil {
			t.dirty--
			return
		}
		if attempt >= t.cfg.MaxRedo {
			panic("core: could not find a collision-free hash function; widen HashWidth")
		}
	}
}

// rebuildHashes re-derives root values level by level over the block
// tree and reassembles the HVM.
func (t *PIMTrie) rebuildHashes() error {
	type item struct {
		addr pim.Addr
		val  hashing.Value
	}
	level := []childHash{{addr: t.rootBlock, val: hashing.EmptyValue()}}
	var metas []*blockMeta
	h := t.h
	for len(level) > 0 {
		tasks := make([]pim.Task, len(level))
		for i, it := range level {
			it := it
			tasks[i] = pim.Task{
				Module:    it.addr.Module,
				SendWords: 2,
				Run: func(m *pim.Module) pim.Resp {
					bo := m.Get(it.addr.ID).(*blockObj)
					bo.rootVal = it.val
					bo.rootHash = h.Out(it.val)
					var kids []childHash
					work := 0
					bo.tr.WalkPreorder(func(n *trie.Node) bool {
						if n.Mirror {
							rel := trie.NodeString(n)
							work += rel.Words()
							kids = append(kids, childHash{
								addr: bo.children[n.Value],
								val:  h.Extend(it.val, rel),
							})
							return false
						}
						return true
					})
					m.Work(work + bo.tr.NodeCount())
					meta := &blockMeta{
						addr: it.addr, parent: bo.parent, val: it.val,
						len: bo.rootLen, sLast: bo.sLast, children: bo.children,
					}
					return pim.Resp{RecvWords: len(kids)*2 + 4, Value: rehashReply{kids: kids, meta: meta}}
				},
			}
		}
		var next []childHash
		for _, r := range t.sys.Round(tasks) {
			rep := r.Value.(rehashReply)
			metas = append(metas, rep.meta)
			next = append(next, rep.kids...)
		}
		level = next
	}
	// Free old regions, then reassemble.
	t.freeRegions()
	return t.assembleHVM(metas)
}

// childHash pairs a block address with the hash value of its root
// string; the unit of the top-down re-hash walk.
type childHash struct {
	addr pim.Addr
	val  hashing.Value
}

type rehashReply struct {
	kids []childHash
	meta *blockMeta
}

// freeRegions frees every regionObj across the system.
func (t *PIMTrie) freeRegions() {
	tasks := make([]pim.Task, 0, t.sys.P())
	for i := 0; i < t.sys.P(); i++ {
		tasks = append(tasks, pim.Task{Module: i, SendWords: 1, Run: func(m *pim.Module) pim.Resp {
			var ids []uint64
			m.EachID(func(id uint64, obj any) {
				if _, ok := obj.(*regionObj); ok {
					ids = append(ids, id)
				}
			})
			for _, id := range ids {
				m.Free(id)
			}
			return pim.Resp{}
		}})
	}
	t.sys.Round(tasks)
}
