package core

// Allocation regression tests for the batch host path. PR 3's kernel
// layer pools the per-batch scratch on the PIMTrie, so a steady-state
// LCP batch should allocate proportionally to the batch itself (query
// trie nodes, result slices, per-piece task closures) — a few dozen
// objects per key — never to the phases it runs. The bound here is
// deliberately loose (~3× observed) so it only trips on a structural
// regression, e.g. un-pooling a map or reintroducing per-bit Slice
// copies, not on incidental churn.

import (
	"math/rand"
	"testing"

	"github.com/pimlab/pimtrie/internal/bitstr"
)

func TestLCPBatchAllocsPerOp(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation calibration is not meaningful under -short")
	}
	r := rand.New(rand.NewSource(17))
	pt, _ := newTestTrie(8, Config{})
	const nKeys = 4096
	keys := make([]bitstr.String, nKeys)
	vals := make([]uint64, nKeys)
	for i := range keys {
		keys[i] = randomKey(r, 160)
		vals[i] = uint64(i)
	}
	pt.Build(keys, vals)

	const batch = 256
	queries := make([]bitstr.String, batch)
	for i := range queries {
		k := keys[r.Intn(nKeys)]
		cut := r.Intn(k.Len() + 1)
		queries[i] = k.Prefix(cut)
	}
	// Warm the pooled scratch: the first batches grow arenas to their
	// steady-state size.
	for i := 0; i < 3; i++ {
		pt.LCP(queries)
	}
	perRun := testing.AllocsPerRun(5, func() {
		pt.LCP(queries)
	})
	perKey := perRun / batch
	t.Logf("LCP batch: %.0f allocs (%.1f per key)", perRun, perKey)
	if perKey > 40 {
		t.Fatalf("LCP host path allocates %.0f objects per batch (%.1f per key); pooled scratch bound is 40 per key", perRun, perKey)
	}
}
