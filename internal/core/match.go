package core

// The distributed trie-matching protocol (Algorithms 2–5 adapted to the
// flattened region scheme; see the package comment). One call to
// (*PIMTrie).match runs, for a prepared query trie:
//
//	phase B — master round: query-trie chunks to random modules, every
//	          bit position probed against the replicated master table;
//	phase C — region round: pieces below master hits probed against
//	          their region's index, push-pull by piece size;
//	phase D — block round: pieces below the combined hits matched
//	          bit-by-bit against their blocks, push-pull.
//
// Every hit is verified host-side by length and S_last before being
// trusted (§4.4.3's differentiated verification: interior certification
// comes from hashes + S_last; leaf-ward content from phase D's
// bit-by-bit walk). A verification failure aborts the pass; the caller
// re-hashes globally and redoes the batch.

import (
	"github.com/pimlab/pimtrie/internal/bitstr"
	"github.com/pimlab/pimtrie/internal/hashing"
	"github.com/pimlab/pimtrie/internal/hvm"
	"github.com/pimlab/pimtrie/internal/parallel"
	"github.com/pimlab/pimtrie/internal/pim"
	"github.com/pimlab/pimtrie/internal/querytrie"
	"github.com/pimlab/pimtrie/internal/trie"
)

// hitRec is one verified match position: a query-trie position whose
// represented string equals a data block root's string.
type hitRec struct {
	pos   qpos
	depth int
	val   hashing.Value // full-precision hash of the position's string
	info  metaInfo
}

// segment is a run of query-trie edge bits shipped for probing:
// positions (off, end] of edge's label, with the hash value at off.
// preBits (set only when pivot probing is on) carries the ≤w bits just
// above the segment start, letting the probe reach the pivot boundary
// below the start.
type segment struct {
	edge     *trie.Edge
	off, end int
	startVal hashing.Value
	preBits  bitstr.String
}

func (s segment) words() int {
	return (s.end-s.off)/bitstr.WordBits + 2 + s.preBits.Words()
}

// rawHit is a module-side hit before host verification.
type rawHit struct {
	edge *trie.Edge
	off  int // 1..len; len means the To node
	val  hashing.Value
	info metaInfo
}

// probeSink defeats dead-load elimination for the grouped probe loop's
// Touch sweep; the guarded store is never taken in practice, so probes
// running concurrently on module executors and host workers do not
// race on it.
var probeSink uint64

const sinkSentinel = 0x9e3779b97f4a7c15

// probeSegments extends hash values bit-by-bit along each segment and
// probes every position against lookup, reporting all hits. Every hidden
// position is probed, so the extension stays per-bit; the label bits are
// pulled one packed word at a time instead of through per-bit BitAt
// calls.
//
// The probes of one ≤w-bit window run in three grouped passes so their
// cache misses overlap instead of serializing (memory-level
// parallelism): first the serial hash extension — pure ALU work — fills
// stack arrays with the window's probe keys; then, when the lookup
// target supports it, a touch sweep issues the home-slot load of every
// key back-to-back (all independent, so the memory system runs them
// concurrently); finally the probe pass resolves each key in position
// order. Hit order and work accounting are bit-identical to the
// straight-line loop: one work unit per probe plus one per 8 bits
// hashed (the byte-table hashing cost of the unoptimized Algorithm 3;
// the pivot optimization of §4.4.2 reduces the probe count to one per w
// bits instead).
//
// touch may be nil when the lookup target has no useful early-load form
// (e.g. a pointer-chasing map). Scratch lives on the stack because
// probeSegments runs concurrently on module executors and host workers.
func probeSegments(h *hashing.Hasher, segs []segment, lookup func(uint64) (metaInfo, bool), touch func(uint64) uint64, work func(int)) []rawHit {
	var hits []rawHit
	var outs [bitstr.WordBits]uint64
	var vals [bitstr.WordBits]hashing.Value
	sink := uint64(0)
	for _, s := range segs {
		v := s.startVal
		l := s.edge.Label
		for i := s.off; i < s.end; {
			to := (i | (bitstr.WordBits - 1)) + 1
			if to > s.end {
				to = s.end
			}
			w := l.RangeWord(i, to)
			k := to - i
			// Pass 1: serial hash extension into the window arrays.
			for j := 0; j < k; j++ {
				v = h.ExtendBit(v, byte(w&1))
				w >>= 1
				vals[j] = v
				outs[j] = h.Out(v)
			}
			// Pass 2: independent early loads of every probe's bucket.
			if touch != nil {
				for j := 0; j < k; j++ {
					sink ^= touch(outs[j])
				}
			}
			// Pass 3: resolve probes in position order (hit order is part
			// of the determinism contract — dedupeHits keeps the first).
			for j := 0; j < k; j++ {
				if info, ok := lookup(outs[j]); ok {
					hits = append(hits, rawHit{edge: s.edge, off: i + j + 1, val: vals[j], info: info})
				}
			}
			i = to
		}
		work((s.end-s.off)/8 + (s.end - s.off) + 1)
	}
	if sink == sinkSentinel {
		probeSink = sink
	}
	return hits
}

// probeSegmentsPivot is the §4.4.2 optimized HashMatching for a region:
// instead of probing every bit position, it probes one pivot class per w
// bits (the region's two-layer index over S_rem remainders) and recovers
// every interior hit from the candidate's meta-tree ancestor chain —
// sound because all block roots on a path are meta ancestors of the
// deepest one, and complete because any root in a probed window is an
// ancestor of (or equal to) that window's max-LCP candidate. Chain nodes
// are pre-verified against the local bit window, so emitted hits carry
// the same confidence as per-bit probes.
//
// The conceptual window preBits ++ label[off:end] is never materialized:
// hash values come from the range kernels over the two underlying
// strings, and window bit ranges are compared or packed piecewise around
// the boundary at depth d0.
func probeSegmentsPivot(h *hashing.Hasher, segs []segment, reg *hvm.Region, regAddr pim.Addr, work func(int)) []rawHit {
	const w = bitstr.WordBits
	var hits []rawHit
	for _, s := range segs {
		s := s
		d0 := s.edge.From.Depth + s.off
		dEnd := s.edge.From.Depth + s.end
		l := s.edge.Label
		base := d0 - s.preBits.Len()
		// valAt moves the start value to an absolute depth in [base, dEnd]:
		// depths above d0 extend along the edge label, depths below rewind
		// across preBits.
		valAt := func(depth int) hashing.Value {
			if depth >= d0 {
				return h.ExtendRange(s.startVal, l, s.off, s.off+(depth-d0))
			}
			return h.ShrinkRange(s.startVal, s.preBits, depth-base, d0-base)
		}
		var seen map[int]bool
		ops := 0
		emitChain := func(meta *hvm.MetaNode) {
			if seen == nil {
				seen = make(map[int]bool, 8)
			}
			for n := meta; n != nil; n = n.Parent {
				if n.Len > dEnd {
					continue
				}
				if n.Len <= d0 {
					break
				}
				if seen[n.Len] {
					continue
				}
				seen[n.Len] = true
				ops++
				// Local pre-verification: the root's S_last must equal the
				// window bits just above its depth. The window may straddle
				// the preBits/label boundary at d0, so compare piecewise.
				lo := n.Len - n.SLast.Len()
				if lo < base {
					continue
				}
				x := lo
				if x < d0 {
					x = d0
				}
				if lo < d0 && !bitstr.EqualRange(s.preBits, lo-base, n.SLast, 0, d0-lo) {
					continue
				}
				if !bitstr.EqualRange(l, s.off+(x-d0), n.SLast, x-lo, n.Len-x) {
					continue
				}
				hits = append(hits, rawHit{
					edge: s.edge, off: n.Len - s.edge.From.Depth,
					val:  valAt(n.Len),
					info: metaInfo{Hash: n.Hash, Len: n.Len, SLast: n.SLast, Block: n.Block, Region: regAddr},
				})
			}
		}
		classes := 0
		for b := d0 / w * w; b <= dEnd; b += w {
			if b < base {
				continue
			}
			classes++
			pv := valAt(b)
			sremEnd := b + w - 1
			if sremEnd > dEnd {
				sremEnd = dEnd
			}
			srem := s.windowBits(b, sremEnd, base, d0)
			if cand, ok := reg.LookupPivot(h.Out(pv), srem); ok {
				emitChain(cand)
			}
		}
		work((s.end-s.off)/8 + classes*8 + ops)
	}
	return hits
}

// windowBits packs the absolute-depth window bits [from, to) — at most
// one word — into a String, drawing from preBits below depth d0 and from
// the edge label above it.
func (s *segment) windowBits(from, to, base, d0 int) bitstr.String {
	switch {
	case to <= d0:
		return bitstr.FromWord(s.preBits.RangeWord(from-base, to-base), to-from)
	case from >= d0:
		return bitstr.FromWord(s.edge.Label.RangeWord(s.off+(from-d0), s.off+(to-d0)), to-from)
	default:
		lo := s.preBits.RangeWord(from-base, d0-base)
		hi := s.edge.Label.RangeWord(s.off, s.off+(to-d0))
		return bitstr.FromWord(lo|hi<<uint(d0-from), to-from)
	}
}

// regionProbe dispatches on the configured probing strategy.
func (t *PIMTrie) regionProbe(segs []segment, reg *hvm.Region, regAddr pim.Addr, work func(int)) []rawHit {
	if t.cfg.PivotProbing {
		return probeSegmentsPivot(t.h, segs, reg, regAddr, work)
	}
	return probeSegments(t.h, segs, func(h uint64) (metaInfo, bool) {
		n := reg.Lookup(h)
		if n == nil {
			return metaInfo{}, false
		}
		return metaInfo{Hash: h, Len: n.Len, SLast: n.SLast, Block: n.Block, Region: regAddr}, true
	}, nil, work)
}

// prep is the host-side preparation of one batch (phase A). hashes is
// the node hash of every query-trie compressed node, indexed by the
// dense preorder Node.Index that NodeHashes assigns.
type prep struct {
	qt     *querytrie.QueryTrie
	hashes []hashing.Value
}

func (t *PIMTrie) prepare(batch []bitstr.String) *prep {
	qt := querytrie.Build(batch)
	// Bound edge sizes so chunks and pieces stay shippable.
	qt.Trie.SplitLongEdges(t.cfg.MasterChunkWords * bitstr.WordBits)
	t.sys.CPUWork(qt.SizeWords())
	p := &t.prepScratch
	p.qt = qt
	p.hashes = qt.NodeHashes(t.h, p.hashes)
	return p
}

// matchOutcome is the merged result of one successful matching pass.
type matchOutcome struct {
	qt    *querytrie.QueryTrie
	reach map[*trie.Node]int
	exact map[*trie.Node]exactHit
	// anchorPiece[n] is the piece (bottommost hit) owning query node n.
	anchorPiece map[*trie.Node]*piece
	pieces      []*piece
}

// lcpOf returns the LCP length for unique key i.
func (o *matchOutcome) lcpOf(i int) int {
	if d, ok := o.reach[o.qt.Nodes[i]]; ok {
		return d
	}
	return 0
}

// match runs phases B–D for a prepared batch. Each phase is annotated
// as a span (see DESIGN.md §7): "master-match" and "region-match" are
// the two HashMatching stages of §4.3–4.4 (Algorithms 4 and 5's roles),
// "block-match" is the bit-by-bit push-pull of Algorithm 2.
func (t *PIMTrie) match(p *prep) (*matchOutcome, error) {
	// ----- Phase B: master matching -----------------------------------
	endMaster := t.sys.Phase("master-match")
	chunks := t.chunkEdges(p)
	rootVal := hashing.EmptyValue()
	rootHit := hitRec{
		pos: atNode(p.qt.Trie.Root()), depth: 0, val: rootVal,
		info: t.masterInfo(t.h.Out(rootVal)),
	}
	tasks := make([]pim.Task, len(chunks))
	// Target modules are drawn serially first so the RNG sequence matches
	// the serial loop; task construction then fans out (disjoint writes).
	mods := make([]int, len(chunks))
	for i := range mods {
		mods[i] = t.sys.RandModule()
	}
	parallel.For(len(chunks), func(i int) {
		ch := chunks[i]
		words := 0
		for _, s := range ch {
			words += s.words()
		}
		addrs := t.masterAddrs
		tasks[i] = pim.Task{
			Module:    mods[i],
			SendWords: words,
			Run: func(m *pim.Module) pim.Resp {
				mo := m.Get(addrs[m.ID()].ID).(*masterObj)
				hits := probeSegments(t.h, ch, func(h uint64) (metaInfo, bool) {
					e, ok := mo.entries.Get(h)
					if !ok {
						return metaInfo{}, false
					}
					return metaInfo{Hash: h, Len: e.Len, SLast: e.SLast, Block: e.Block, Region: e.Region}, true
				}, mo.entries.Touch, m.Work)
				return pim.Resp{RecvWords: len(hits)*metaInfoWords + 1, Value: hits}
			},
		}
	})
	masterRaw := t.rawHitBuf[:0]
	for _, r := range t.sys.Round(tasks) {
		masterRaw = append(masterRaw, r.Value.([]rawHit)...)
	}
	t.rawHitBuf = masterRaw
	masterHits := append([]hitRec{rootHit}, t.verifyHits(masterRaw)...)
	masterHits = t.dedupeHits(masterHits)
	endMaster()

	// ----- Phase C: region matching ------------------------------------
	endRegion := t.sys.Phase("region-match")
	masterPieces := t.decompose(p, masterHits, t.cfg.PivotProbing)
	var cTasks []pim.Task
	type cKind struct {
		pc   *piece
		pull bool
	}
	var cKinds []cKind
	pulledRegion := map[pim.Addr]int{} // region -> task index of its fetch
	for _, pc := range masterPieces {
		if pc.words == 0 {
			continue
		}
		pc := pc
		regAddr := pc.hit.info.Region
		if pc.words <= t.cfg.PullThreshold {
			cKinds = append(cKinds, cKind{pc: pc})
			cTasks = append(cTasks, pim.Task{
				Module:    regAddr.Module,
				SendWords: pc.words + 2,
				Run: func(m *pim.Module) pim.Resp {
					reg := m.Get(regAddr.ID).(*regionObj).r
					hits := t.regionProbe(pc.segs, reg, regAddr, m.Work)
					return pim.Resp{RecvWords: len(hits)*metaInfoWords + 1, Value: hits}
				},
			})
			continue
		}
		cKinds = append(cKinds, cKind{pc: pc, pull: true})
		if _, done := pulledRegion[regAddr]; !done {
			pulledRegion[regAddr] = len(cTasks)
			cTasks = append(cTasks, pim.Task{
				Module:    regAddr.Module,
				SendWords: 1,
				Run: func(m *pim.Module) pim.Resp {
					ro := m.Get(regAddr.ID).(*regionObj)
					return pim.Resp{RecvWords: ro.SizeWords(), Value: ro}
				},
			})
		} else {
			cKinds[len(cKinds)-1].pull = true
		}
	}
	cResps := t.sys.Round(cTasks)
	// Map each kind to its response slot serially (the walk mirrors the
	// order tasks were appended), then run the host-side probes of pulled
	// regions in parallel — they only read the fetched snapshots.
	respOf := make([]int, len(cKinds))
	respIdx := 0
	for i, k := range cKinds {
		if !k.pull {
			respOf[i] = respIdx
			respIdx++
			continue
		}
		ti := pulledRegion[k.pc.hit.info.Region]
		respOf[i] = ti
		if ti == respIdx {
			respIdx++ // consume the fetch response slot
		}
	}
	hitsByKind := make([][]rawHit, len(cKinds))
	cpuByKind := make([]int, len(cKinds))
	parallel.For(len(cKinds), func(i int) {
		k := cKinds[i]
		if !k.pull {
			hitsByKind[i] = cResps[respOf[i]].Value.([]rawHit)
			return
		}
		ro := cResps[respOf[i]].Value.(*regionObj)
		cpu := 0
		hitsByKind[i] = t.regionProbe(k.pc.segs, ro.r, k.pc.hit.info.Region, func(w int) { cpu += w })
		cpuByKind[i] = cpu
	})
	probeCPU := 0
	regionRaw := t.rawHitBuf[:0]
	for i := range cKinds {
		probeCPU += cpuByKind[i]
		regionRaw = append(regionRaw, hitsByKind[i]...)
	}
	t.rawHitBuf = regionRaw
	if probeCPU > 0 {
		t.sys.CPUWork(probeCPU)
	}
	regionHits := t.verifyHits(regionRaw)
	endRegion()

	// ----- Phase D: block matching -------------------------------------
	endBlock := t.sys.Phase("block-match")
	defer endBlock()
	allHits := t.dedupeHits(append(masterHits, regionHits...))
	pieces := t.decompose(p, allHits, false)
	// The outcome maps are pooled on the PIMTrie: an outcome is only read
	// until its operation returns, so clearing them at the next match call
	// is safe and keeps their buckets warm across batches.
	if t.reachBuf == nil {
		t.reachBuf = map[*trie.Node]int{}
		t.exactBuf = map[*trie.Node]exactHit{}
		t.anchorBuf = map[*trie.Node]*piece{}
	} else {
		clear(t.reachBuf)
		clear(t.exactBuf)
		clear(t.anchorBuf)
	}
	out := &matchOutcome{
		qt:          p.qt,
		reach:       t.reachBuf,
		exact:       t.exactBuf,
		anchorPiece: t.anchorBuf,
		pieces:      pieces,
	}
	merged := &matchReport{reach: out.reach, exact: out.exact}
	for _, pc := range pieces {
		for _, n := range pc.nodes {
			out.anchorPiece[n] = pc
		}
	}
	dTasks := make([]pim.Task, len(pieces))
	parallel.For(len(pieces), func(i int) {
		pc := pieces[i]
		blk := pc.hit.info.Block
		if pc.words <= t.cfg.PullThreshold {
			dTasks[i] = pim.Task{
				Module:    blk.Module,
				SendWords: pc.words + 2,
				Run: func(m *pim.Module) pim.Resp {
					bo := m.Get(blk.ID).(*blockObj)
					rep := matchPiece(pc.root, pc.childKeys, bo.tr, m.Work)
					return pim.Resp{RecvWords: rep.words + 1, Value: rep}
				},
			}
		} else {
			dTasks[i] = pim.Task{
				Module:    blk.Module,
				SendWords: 1,
				Run: func(m *pim.Module) pim.Resp {
					bo := m.Get(blk.ID).(*blockObj)
					return pim.Resp{RecvWords: bo.SizeWords(), Value: bo}
				},
			}
		}
	})
	// Host-side matching of pulled blocks fans out; reports are folded
	// serially in task order because merge prefers the first non-mirror
	// exact entry.
	dResps := t.sys.Round(dTasks)
	reps := make([]*matchReport, len(dResps))
	cpuByPiece := make([]int, len(dResps))
	parallel.For(len(dResps), func(i int) {
		switch v := dResps[i].Value.(type) {
		case *matchReport:
			reps[i] = v
		case *blockObj:
			cpu := 0
			reps[i] = matchPiece(pieces[i].root, pieces[i].childKeys, v.tr, func(w int) { cpu += w })
			cpuByPiece[i] = cpu
		}
	})
	matchCPU := 0
	for i, rep := range reps {
		matchCPU += cpuByPiece[i]
		if rep != nil {
			merged.merge(rep)
			recycleReport(rep)
		}
	}
	if matchCPU > 0 {
		t.sys.CPUWork(matchCPU)
	}
	return out, nil
}

// masterInfo builds the metaInfo for a known master entry.
func (t *PIMTrie) masterInfo(h uint64) metaInfo {
	e := t.master[h]
	return metaInfo{Hash: h, Len: e.Len, SLast: e.SLast, Block: e.Block, Region: e.Region}
}

// checkHit applies §4.4.3's verification to a raw hit: the claimed
// block-root length must equal the position depth and S_last must equal
// the query bits just above the position. A mismatch means the hash
// collided on the query side; the hit is a false positive and is dropped
// ("rectify the partitioning" in the paper's terms). True matches are
// never dropped: equal strings verify trivially. Data-side collisions
// (two block roots sharing a hash) are detected separately at index
// build time and trigger the global re-hash.
//
// checkHit is pure — no metric or counter updates — so it is safe to
// run from parallel workers over read-only trie state; verifyHits folds
// the accounting in afterwards.
func (t *PIMTrie) checkHit(rh rawHit) (hitRec, bool) {
	depth := rh.edge.From.Depth + rh.off
	if rh.info.Len != depth {
		return hitRec{}, false
	}
	if !suffixWindowEqual(rh.edge, rh.off, rh.info.SLast) {
		return hitRec{}, false
	}
	return hitRec{pos: onEdge(rh.edge, rh.off), depth: depth, val: rh.val, info: rh.info}, true
}

// verifyHits applies checkHit to every raw hit in parallel, preserving
// input order in the output. Accounting matches the serial loop exactly
// — 2 CPUWork units per hit and one falseHits increment per rejection —
// but is folded in once on the host goroutine after the workers join.
// The per-hit scratch is pooled on the PIMTrie; only the surviving hits
// are allocated (they outlive the batch phases).
func (t *PIMTrie) verifyHits(raw []rawHit) []hitRec {
	n := len(raw)
	if n == 0 {
		return nil
	}
	if cap(t.verifyRecs) < n {
		t.verifyRecs = make([]hitRec, n)
		t.verifyOK = make([]bool, n)
	}
	recs, ok := t.verifyRecs[:n], t.verifyOK[:n]
	parallel.ForChunked(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			recs[i], ok[i] = t.checkHit(raw[i])
		}
	})
	t.sys.CPUWork(2 * n)
	out := make([]hitRec, 0, n)
	for i := range recs {
		if !ok[i] {
			t.falseHits++
			continue
		}
		out = append(out, recs[i])
	}
	return out
}

// suffixWindow reconstructs the last min(depth, w) bits of the string
// represented by the position off bits down edge e, walking up parent
// edges as needed (O(w) work).
func suffixWindow(e *trie.Edge, off int, w int) bitstr.String {
	out := e.Label.Prefix(off)
	cur := e.From
	for out.Len() < w && cur.ParentEdge != nil {
		out = cur.ParentEdge.Label.Concat(out)
		cur = cur.ParentEdge.From
	}
	if out.Len() > w {
		out = out.Suffix(out.Len() - w)
	}
	return out
}

// suffixWindowEqual reports whether want equals the suffix window of the
// position off bits down edge e — the last min(depth, WordBits) bits of
// its represented string — without materializing it: the window is
// matched back-to-front against the edge labels on the root path.
func suffixWindowEqual(e *trie.Edge, off int, want bitstr.String) bool {
	depth := e.From.Depth + off
	win := bitstr.WordBits
	if depth < win {
		win = depth
	}
	if want.Len() != win {
		return false
	}
	rem := win // unmatched prefix length of want
	label, end := e.Label, off
	cur := e.From
	for {
		take := end
		if take > rem {
			take = rem
		}
		if !bitstr.EqualRange(label, end-take, want, rem-take, take) {
			return false
		}
		rem -= take
		if rem == 0 {
			return true
		}
		pe := cur.ParentEdge
		if pe == nil {
			// Unreachable: rem ≤ depth, which the root path covers.
			return false
		}
		label, end = pe.Label, pe.Label.Len()
		cur = pe.From
	}
}

// dedupeHits removes duplicate positions (e.g. a region root seen by
// both the master table and its own region index), keeping the first.
// The seen set is pooled on the PIMTrie across batches.
func (t *PIMTrie) dedupeHits(hits []hitRec) []hitRec {
	seen := t.dedupeSeen
	if seen == nil {
		seen = map[qposKey]bool{}
		t.dedupeSeen = seen
	} else {
		clear(seen)
	}
	out := hits[:0]
	for _, h := range hits {
		k := h.pos.key()
		if !seen[k] {
			seen[k] = true
			out = append(out, h)
		}
	}
	return out
}

// chunkEdges splits the query trie's edges into chunks of bounded words
// for the master round. Chunk storage is recycled across batches: the
// chunks only live until the master round's responses are in.
//
// It iterates the flattened preorder scaffolding NodeHashes built (one
// linear array scan instead of a recursive pointer walk), with a
// lookahead touch of upcoming nodes — the grouping path's prefetch
// point. The edge order is exactly the recursive walk's (both child
// edges of a node, in bit order, before descending), which the RNG
// draw order of chunk target modules depends on.
func (t *PIMTrie) chunkEdges(p *prep) [][]segment {
	arena := t.segArena
	n := 0 // completed chunks
	grab := func() []segment {
		if n == len(arena) {
			arena = append(arena, nil)
		}
		return arena[n][:0]
	}
	cur := grab()
	words := 0
	pre := p.qt.PreNodes
	sink := uint64(0)
	for i, nd := range pre {
		if j := i + chunkLookahead; j < len(pre) {
			sink ^= uint64(touchNode(pre[j]))
		}
		for b := 0; b < 2; b++ {
			if e := nd.Child[b]; e != nil {
				s := segment{edge: e, off: 0, end: e.Label.Len(), startVal: p.hashes[i]}
				cur = append(cur, s)
				words += s.words()
				if words >= t.cfg.MasterChunkWords {
					arena[n] = cur
					n++
					cur, words = grab(), 0
				}
			}
		}
	}
	if sink == sinkSentinel {
		probeSink = sink
	}
	if len(cur) > 0 {
		arena[n] = cur
		n++
	}
	t.segArena = arena
	return arena[:n]
}

// chunkLookahead is the preorder lookahead distance of chunkEdges'
// touch; see bitstr's prefetch notes.
const chunkLookahead = 4

// touchNode reads the fields of an upcoming node that the chunking
// loop will need (child edges and their label lengths) so the loads
// are in flight early; the value is discarded into a sink.
func touchNode(n *trie.Node) int {
	v := 0
	for b := 0; b < 2; b++ {
		if e := n.Child[b]; e != nil {
			v += e.Label.Len()
		}
	}
	return v
}

// piece is the query-trie region below one hit, truncated at deeper
// hits: the unit of region probing and block matching.
type piece struct {
	hit       hitRec
	root      qpos
	segs      []segment
	words     int
	childKeys map[qposKey]bool
	nodes     []*trie.Node // compressed nodes owned by this piece
}

// newPiece hands out a piece from the batch-scoped arena, reset for
// reuse. Arena pieces are recycled at the next decompose call, which is
// safe because pieces never outlive the operation that produced them:
// phase C's pieces are dead once region probing ends, and an outcome's
// pieces are dead once its operation returns.
func (t *PIMTrie) newPiece(hit hitRec, root qpos) *piece {
	if t.pieceUsed == len(t.pieceArena) {
		t.pieceArena = append(t.pieceArena, &piece{childKeys: map[qposKey]bool{}})
	}
	pc := t.pieceArena[t.pieceUsed]
	t.pieceUsed++
	pc.hit = hit
	pc.root = root
	pc.segs = pc.segs[:0]
	pc.words = 0
	clear(pc.childKeys)
	pc.nodes = pc.nodes[:0]
	return pc
}

// edgeHitList appends hit index i to edge e's list, kept in a pooled
// slice arena indexed through byEdge.
func (t *PIMTrie) edgeHitAdd(byEdge map[*trie.Edge]int, e *trie.Edge, i int) {
	si, ok := byEdge[e]
	if !ok {
		if t.edgeHitUsed == len(t.edgeHitBuf) {
			t.edgeHitBuf = append(t.edgeHitBuf, nil)
		}
		si = t.edgeHitUsed
		t.edgeHitUsed++
		t.edgeHitBuf[si] = t.edgeHitBuf[si][:0]
		byEdge[e] = si
	}
	t.edgeHitBuf[si] = append(t.edgeHitBuf[si], i)
}

// decompose partitions the query trie by the hit positions: every
// position belongs to the piece of the nearest hit at or above it. The
// hits must include the root hit. With withPre, every segment carries
// the ≤w bits above its start (needed by pivot probing). All bookkeeping
// (pieces, hit lists, result slices) lives in arenas on the PIMTrie that
// are recycled wholesale at the next call.
func (t *PIMTrie) decompose(p *prep, hits []hitRec, withPre bool) []*piece {
	t.pieceUsed = 0
	t.edgeHitUsed = 0
	byEdge := t.byEdgeBuf
	if byEdge == nil {
		byEdge = map[*trie.Edge]int{}
		t.byEdgeBuf = byEdge
	} else {
		clear(byEdge)
	}
	var rootPiece *piece
	if cap(t.pieceOfBuf) < len(hits) {
		t.pieceOfBuf = make([]*piece, len(hits))
	}
	pieceOf := t.pieceOfBuf[:len(hits)]
	for i := range pieceOf {
		pieceOf[i] = nil
	}
	for i, h := range hits {
		if h.pos.node != nil && h.pos.node.Parent == nil {
			rootPiece = t.newPiece(h, h.pos)
			pieceOf[i] = rootPiece
			continue
		}
		var e *trie.Edge
		if h.pos.node != nil {
			e = h.pos.node.ParentEdge
		} else {
			e = h.pos.edge
		}
		t.edgeHitAdd(byEdge, e, i)
	}
	if rootPiece == nil {
		panic("core: decompose without a root hit")
	}
	// Per-edge hit lists are tiny (usually one or two entries), so an
	// in-place insertion sort beats sort.Slice and allocates nothing.
	for e, si := range byEdge {
		idxs := t.edgeHitBuf[si]
		for i := 1; i < len(idxs); i++ {
			for j := i; j > 0 && hitOff(hits[idxs[j]], e) < hitOff(hits[idxs[j-1]], e); j-- {
				idxs[j], idxs[j-1] = idxs[j-1], idxs[j]
			}
		}
	}
	var rec func(n *trie.Node, cur *piece)
	rec = func(n *trie.Node, cur *piece) {
		cur.nodes = append(cur.nodes, n)
		for b := 0; b < 2; b++ {
			e := n.Child[b]
			if e == nil {
				continue
			}
			from := 0
			fromVal := p.hashes[n.Index]
			edgePiece := cur
			if si, ok := byEdge[e]; ok {
				for _, hi := range t.edgeHitBuf[si] {
					off := hitOff(hits[hi], e)
					if off > from {
						edgePiece.addSeg(mkSeg(e, from, off, fromVal, withPre))
					}
					edgePiece.childKeys[onEdge(e, off).key()] = true
					np := t.newPiece(hits[hi], onEdge(e, off))
					pieceOf[hi] = np
					edgePiece = np
					from = off
					fromVal = hits[hi].val
				}
			}
			if from < e.Label.Len() {
				edgePiece.addSeg(mkSeg(e, from, e.Label.Len(), fromVal, withPre))
			}
			rec(e.To, edgePiece)
		}
	}
	rec(p.qt.Trie.Root(), rootPiece)
	out := t.piecesBuf[:0]
	for _, pc := range pieceOf {
		if pc != nil {
			out = append(out, pc)
		}
	}
	t.piecesBuf = out
	return out
}

// mkSeg builds a segment, attaching the pre-window when requested.
func mkSeg(e *trie.Edge, from, end int, fromVal hashing.Value, withPre bool) segment {
	s := segment{edge: e, off: from, end: end, startVal: fromVal}
	if withPre {
		s.preBits = suffixWindow(e, from, bitstr.WordBits)
	}
	return s
}

func (pc *piece) addSeg(s segment) {
	pc.segs = append(pc.segs, s)
	pc.words += s.words()
}

func hitOff(h hitRec, e *trie.Edge) int {
	if h.pos.node != nil {
		return e.Label.Len()
	}
	return h.pos.off
}
