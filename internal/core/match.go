package core

// The distributed trie-matching protocol (Algorithms 2–5 adapted to the
// flattened region scheme; see the package comment). One call to
// (*PIMTrie).match runs, for a prepared query trie:
//
//	phase B — master round: query-trie chunks to random modules, every
//	          bit position probed against the replicated master table;
//	phase C — region round: pieces below master hits probed against
//	          their region's index, push-pull by piece size;
//	phase D — block round: pieces below the combined hits matched
//	          bit-by-bit against their blocks, push-pull.
//
// Every hit is verified host-side by length and S_last before being
// trusted (§4.4.3's differentiated verification: interior certification
// comes from hashes + S_last; leaf-ward content from phase D's
// bit-by-bit walk). A verification failure aborts the pass; the caller
// re-hashes globally and redoes the batch.

import (
	"sort"

	"github.com/pimlab/pimtrie/internal/bitstr"
	"github.com/pimlab/pimtrie/internal/hashing"
	"github.com/pimlab/pimtrie/internal/hvm"
	"github.com/pimlab/pimtrie/internal/parallel"
	"github.com/pimlab/pimtrie/internal/pim"
	"github.com/pimlab/pimtrie/internal/querytrie"
	"github.com/pimlab/pimtrie/internal/trie"
)

// hitRec is one verified match position: a query-trie position whose
// represented string equals a data block root's string.
type hitRec struct {
	pos   qpos
	depth int
	val   hashing.Value // full-precision hash of the position's string
	info  metaInfo
}

// segment is a run of query-trie edge bits shipped for probing:
// positions (off, end] of edge's label, with the hash value at off.
// preBits (set only when pivot probing is on) carries the ≤w bits just
// above the segment start, letting the probe reach the pivot boundary
// below the start.
type segment struct {
	edge     *trie.Edge
	off, end int
	startVal hashing.Value
	preBits  bitstr.String
}

func (s segment) words() int {
	return (s.end-s.off)/bitstr.WordBits + 2 + s.preBits.Words()
}

// rawHit is a module-side hit before host verification.
type rawHit struct {
	edge *trie.Edge
	off  int // 1..len; len means the To node
	val  hashing.Value
	info metaInfo
}

// probeSegments extends hash values bit-by-bit along each segment and
// probes every position against lookup, reporting all hits. work is
// charged one unit per probe plus one per 8 bits hashed (the byte-table
// hashing cost of the unoptimized Algorithm 3; the pivot optimization of
// §4.4.2 would reduce the probe count to one per w bits).
func probeSegments(h *hashing.Hasher, segs []segment, lookup func(uint64) (metaInfo, bool), work func(int)) []rawHit {
	var hits []rawHit
	for _, s := range segs {
		v := s.startVal
		l := s.edge.Label
		for i := s.off; i < s.end; i++ {
			v = h.ExtendBit(v, l.BitAt(i))
			if info, ok := lookup(h.Out(v)); ok {
				hits = append(hits, rawHit{edge: s.edge, off: i + 1, val: v, info: info})
			}
		}
		work((s.end-s.off)/8 + (s.end - s.off) + 1)
	}
	return hits
}

// probeSegmentsPivot is the §4.4.2 optimized HashMatching for a region:
// instead of probing every bit position, it probes one pivot class per w
// bits (the region's two-layer index over S_rem remainders) and recovers
// every interior hit from the candidate's meta-tree ancestor chain —
// sound because all block roots on a path are meta ancestors of the
// deepest one, and complete because any root in a probed window is an
// ancestor of (or equal to) that window's max-LCP candidate. Chain nodes
// are pre-verified against the local bit window, so emitted hits carry
// the same confidence as per-bit probes.
func probeSegmentsPivot(h *hashing.Hasher, segs []segment, reg *hvm.Region, regAddr pim.Addr, work func(int)) []rawHit {
	const w = bitstr.WordBits
	var hits []rawHit
	for _, s := range segs {
		d0 := s.edge.From.Depth + s.off
		dEnd := s.edge.From.Depth + s.end
		window := s.preBits.Concat(s.edge.Label.Slice(s.off, s.end))
		base := d0 - s.preBits.Len()
		valAt := func(depth int) hashing.Value {
			if depth >= d0 {
				return h.Extend(s.startVal, window.Slice(d0-base, depth-base))
			}
			return h.Shrink(s.startVal, window.Slice(depth-base, d0-base))
		}
		seen := map[int]bool{}
		ops := 0
		emitChain := func(meta *hvm.MetaNode) {
			for n := meta; n != nil; n = n.Parent {
				if n.Len > dEnd {
					continue
				}
				if n.Len <= d0 {
					break
				}
				if seen[n.Len] {
					continue
				}
				seen[n.Len] = true
				ops++
				// Local pre-verification: the root's S_last must equal the
				// window bits just above its depth.
				lo := n.Len - n.SLast.Len()
				if lo < base || !bitstr.Equal(window.Slice(lo-base, n.Len-base), n.SLast) {
					continue
				}
				hits = append(hits, rawHit{
					edge: s.edge, off: n.Len - s.edge.From.Depth,
					val:  valAt(n.Len),
					info: metaInfo{Hash: n.Hash, Len: n.Len, SLast: n.SLast, Block: n.Block, Region: regAddr},
				})
			}
		}
		classes := 0
		for b := d0 / w * w; b <= dEnd; b += w {
			if b < base {
				continue
			}
			classes++
			pv := valAt(b)
			sremEnd := b + w - 1
			if sremEnd > dEnd {
				sremEnd = dEnd
			}
			srem := window.Slice(b-base, sremEnd-base)
			if cand, ok := reg.LookupPivot(h.Out(pv), srem); ok {
				emitChain(cand)
			}
		}
		work((s.end-s.off)/8 + classes*8 + ops)
	}
	return hits
}

// regionProbe dispatches on the configured probing strategy.
func (t *PIMTrie) regionProbe(segs []segment, reg *hvm.Region, regAddr pim.Addr, work func(int)) []rawHit {
	if t.cfg.PivotProbing {
		return probeSegmentsPivot(t.h, segs, reg, regAddr, work)
	}
	return probeSegments(t.h, segs, func(h uint64) (metaInfo, bool) {
		n := reg.Lookup(h)
		if n == nil {
			return metaInfo{}, false
		}
		return metaInfo{Hash: h, Len: n.Len, SLast: n.SLast, Block: n.Block, Region: regAddr}, true
	}, work)
}

// prep is the host-side preparation of one batch (phase A).
type prep struct {
	qt     *querytrie.QueryTrie
	hashes map[*trie.Node]hashing.Value
}

func (t *PIMTrie) prepare(batch []bitstr.String) *prep {
	qt := querytrie.Build(batch)
	// Bound edge sizes so chunks and pieces stay shippable.
	qt.Trie.SplitLongEdges(t.cfg.MasterChunkWords * bitstr.WordBits)
	t.sys.CPUWork(qt.SizeWords())
	return &prep{qt: qt, hashes: qt.NodeHashes(t.h)}
}

// matchOutcome is the merged result of one successful matching pass.
type matchOutcome struct {
	qt    *querytrie.QueryTrie
	reach map[*trie.Node]int
	exact map[*trie.Node]exactHit
	// anchorPiece[n] is the piece (bottommost hit) owning query node n.
	anchorPiece map[*trie.Node]*piece
	pieces      []*piece
}

// lcpOf returns the LCP length for unique key i.
func (o *matchOutcome) lcpOf(i int) int {
	if d, ok := o.reach[o.qt.Nodes[i]]; ok {
		return d
	}
	return 0
}

// match runs phases B–D for a prepared batch. Each phase is annotated
// as a span (see DESIGN.md §7): "master-match" and "region-match" are
// the two HashMatching stages of §4.3–4.4 (Algorithms 4 and 5's roles),
// "block-match" is the bit-by-bit push-pull of Algorithm 2.
func (t *PIMTrie) match(p *prep) (*matchOutcome, error) {
	// ----- Phase B: master matching -----------------------------------
	endMaster := t.sys.Phase("master-match")
	chunks := t.chunkEdges(p)
	rootVal := hashing.EmptyValue()
	rootHit := hitRec{
		pos: atNode(p.qt.Trie.Root()), depth: 0, val: rootVal,
		info: t.masterInfo(t.h.Out(rootVal)),
	}
	tasks := make([]pim.Task, len(chunks))
	// Target modules are drawn serially first so the RNG sequence matches
	// the serial loop; task construction then fans out (disjoint writes).
	mods := make([]int, len(chunks))
	for i := range mods {
		mods[i] = t.sys.RandModule()
	}
	parallel.For(len(chunks), func(i int) {
		ch := chunks[i]
		words := 0
		for _, s := range ch {
			words += s.words()
		}
		addrs := t.masterAddrs
		tasks[i] = pim.Task{
			Module:    mods[i],
			SendWords: words,
			Run: func(m *pim.Module) pim.Resp {
				mo := m.Get(addrs[m.ID()].ID).(*masterObj)
				hits := probeSegments(t.h, ch, func(h uint64) (metaInfo, bool) {
					e, ok := mo.entries[h]
					if !ok {
						return metaInfo{}, false
					}
					return metaInfo{Hash: h, Len: e.Len, SLast: e.SLast, Block: e.Block, Region: e.Region}, true
				}, m.Work)
				return pim.Resp{RecvWords: len(hits)*metaInfoWords + 1, Value: hits}
			},
		}
	})
	var masterRaw []rawHit
	for _, r := range t.sys.Round(tasks) {
		masterRaw = append(masterRaw, r.Value.([]rawHit)...)
	}
	masterHits := append([]hitRec{rootHit}, t.verifyHits(masterRaw)...)
	masterHits = dedupeHits(masterHits)
	endMaster()

	// ----- Phase C: region matching ------------------------------------
	endRegion := t.sys.Phase("region-match")
	masterPieces := decompose(p, masterHits, t.cfg.PivotProbing)
	var cTasks []pim.Task
	type cKind struct {
		pc   *piece
		pull bool
	}
	var cKinds []cKind
	pulledRegion := map[pim.Addr]int{} // region -> task index of its fetch
	for _, pc := range masterPieces {
		if pc.words == 0 {
			continue
		}
		pc := pc
		regAddr := pc.hit.info.Region
		if pc.words <= t.cfg.PullThreshold {
			cKinds = append(cKinds, cKind{pc: pc})
			cTasks = append(cTasks, pim.Task{
				Module:    regAddr.Module,
				SendWords: pc.words + 2,
				Run: func(m *pim.Module) pim.Resp {
					reg := m.Get(regAddr.ID).(*regionObj).r
					hits := t.regionProbe(pc.segs, reg, regAddr, m.Work)
					return pim.Resp{RecvWords: len(hits)*metaInfoWords + 1, Value: hits}
				},
			})
			continue
		}
		cKinds = append(cKinds, cKind{pc: pc, pull: true})
		if _, done := pulledRegion[regAddr]; !done {
			pulledRegion[regAddr] = len(cTasks)
			cTasks = append(cTasks, pim.Task{
				Module:    regAddr.Module,
				SendWords: 1,
				Run: func(m *pim.Module) pim.Resp {
					ro := m.Get(regAddr.ID).(*regionObj)
					return pim.Resp{RecvWords: ro.SizeWords(), Value: ro}
				},
			})
		} else {
			cKinds[len(cKinds)-1].pull = true
		}
	}
	cResps := t.sys.Round(cTasks)
	// Map each kind to its response slot serially (the walk mirrors the
	// order tasks were appended), then run the host-side probes of pulled
	// regions in parallel — they only read the fetched snapshots.
	respOf := make([]int, len(cKinds))
	respIdx := 0
	for i, k := range cKinds {
		if !k.pull {
			respOf[i] = respIdx
			respIdx++
			continue
		}
		ti := pulledRegion[k.pc.hit.info.Region]
		respOf[i] = ti
		if ti == respIdx {
			respIdx++ // consume the fetch response slot
		}
	}
	hitsByKind := make([][]rawHit, len(cKinds))
	cpuByKind := make([]int, len(cKinds))
	parallel.For(len(cKinds), func(i int) {
		k := cKinds[i]
		if !k.pull {
			hitsByKind[i] = cResps[respOf[i]].Value.([]rawHit)
			return
		}
		ro := cResps[respOf[i]].Value.(*regionObj)
		cpu := 0
		hitsByKind[i] = t.regionProbe(k.pc.segs, ro.r, k.pc.hit.info.Region, func(w int) { cpu += w })
		cpuByKind[i] = cpu
	})
	probeCPU := 0
	var regionRaw []rawHit
	for i := range cKinds {
		probeCPU += cpuByKind[i]
		regionRaw = append(regionRaw, hitsByKind[i]...)
	}
	if probeCPU > 0 {
		t.sys.CPUWork(probeCPU)
	}
	regionHits := t.verifyHits(regionRaw)
	endRegion()

	// ----- Phase D: block matching -------------------------------------
	endBlock := t.sys.Phase("block-match")
	defer endBlock()
	allHits := dedupeHits(append(masterHits, regionHits...))
	pieces := decompose(p, allHits, false)
	out := &matchOutcome{
		qt:          p.qt,
		reach:       map[*trie.Node]int{},
		exact:       map[*trie.Node]exactHit{},
		anchorPiece: map[*trie.Node]*piece{},
		pieces:      pieces,
	}
	merged := &matchReport{reach: out.reach, exact: out.exact}
	for _, pc := range pieces {
		for _, n := range pc.nodes {
			out.anchorPiece[n] = pc
		}
	}
	dTasks := make([]pim.Task, len(pieces))
	parallel.For(len(pieces), func(i int) {
		pc := pieces[i]
		blk := pc.hit.info.Block
		if pc.words <= t.cfg.PullThreshold {
			dTasks[i] = pim.Task{
				Module:    blk.Module,
				SendWords: pc.words + 2,
				Run: func(m *pim.Module) pim.Resp {
					bo := m.Get(blk.ID).(*blockObj)
					rep := matchPiece(pc.root, pc.childKeys, bo.tr, m.Work)
					return pim.Resp{RecvWords: rep.words + 1, Value: rep}
				},
			}
		} else {
			dTasks[i] = pim.Task{
				Module:    blk.Module,
				SendWords: 1,
				Run: func(m *pim.Module) pim.Resp {
					bo := m.Get(blk.ID).(*blockObj)
					return pim.Resp{RecvWords: bo.SizeWords(), Value: bo}
				},
			}
		}
	})
	// Host-side matching of pulled blocks fans out; reports are folded
	// serially in task order because merge prefers the first non-mirror
	// exact entry.
	dResps := t.sys.Round(dTasks)
	reps := make([]*matchReport, len(dResps))
	cpuByPiece := make([]int, len(dResps))
	parallel.For(len(dResps), func(i int) {
		switch v := dResps[i].Value.(type) {
		case *matchReport:
			reps[i] = v
		case *blockObj:
			cpu := 0
			reps[i] = matchPiece(pieces[i].root, pieces[i].childKeys, v.tr, func(w int) { cpu += w })
			cpuByPiece[i] = cpu
		}
	})
	matchCPU := 0
	for i, rep := range reps {
		matchCPU += cpuByPiece[i]
		if rep != nil {
			merged.merge(rep)
		}
	}
	if matchCPU > 0 {
		t.sys.CPUWork(matchCPU)
	}
	return out, nil
}

// masterInfo builds the metaInfo for a known master entry.
func (t *PIMTrie) masterInfo(h uint64) metaInfo {
	e := t.master[h]
	return metaInfo{Hash: h, Len: e.Len, SLast: e.SLast, Block: e.Block, Region: e.Region}
}

// verifyHit applies §4.4.3's verification to a raw hit: the claimed
// block-root length must equal the position depth and S_last must equal
// the query bits just above the position. A mismatch means the hash
// collided on the query side; the hit is a false positive and is dropped
// ("rectify the partitioning" in the paper's terms). True matches are
// never dropped: equal strings verify trivially. Data-side collisions
// (two block roots sharing a hash) are detected separately at index
// build time and trigger the global re-hash.
func (t *PIMTrie) verifyHit(rh rawHit) *hitRec {
	t.sys.CPUWork(2)
	h := t.checkHit(rh)
	if h == nil {
		t.falseHits++
	}
	return h
}

// checkHit is verifyHit's pure core: no metric or counter updates, so
// it is safe to run from parallel workers over read-only trie state.
func (t *PIMTrie) checkHit(rh rawHit) *hitRec {
	depth := rh.edge.From.Depth + rh.off
	if rh.info.Len != depth {
		return nil
	}
	win := suffixWindow(rh.edge, rh.off, bitstr.WordBits)
	if !bitstr.Equal(win, rh.info.SLast) {
		return nil
	}
	return &hitRec{pos: onEdge(rh.edge, rh.off), depth: depth, val: rh.val, info: rh.info}
}

// verifyHits applies checkHit to every raw hit in parallel, preserving
// input order in the output. Accounting matches the serial loop exactly
// — 2 CPUWork units per hit and one falseHits increment per rejection —
// but is folded in once on the host goroutine after the workers join.
func (t *PIMTrie) verifyHits(raw []rawHit) []hitRec {
	n := len(raw)
	if n == 0 {
		return nil
	}
	recs := make([]*hitRec, n)
	parallel.ForChunked(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			recs[i] = t.checkHit(raw[i])
		}
	})
	t.sys.CPUWork(2 * n)
	out := make([]hitRec, 0, n)
	for _, h := range recs {
		if h == nil {
			t.falseHits++
			continue
		}
		out = append(out, *h)
	}
	return out
}

// suffixWindow reconstructs the last min(depth, w) bits of the string
// represented by the position off bits down edge e, walking up parent
// edges as needed (O(w) work).
func suffixWindow(e *trie.Edge, off int, w int) bitstr.String {
	out := e.Label.Prefix(off)
	cur := e.From
	for out.Len() < w && cur.ParentEdge != nil {
		out = cur.ParentEdge.Label.Concat(out)
		cur = cur.ParentEdge.From
	}
	if out.Len() > w {
		out = out.Suffix(out.Len() - w)
	}
	return out
}

// dedupeHits removes duplicate positions (e.g. a region root seen by
// both the master table and its own region index), keeping the first.
func dedupeHits(hits []hitRec) []hitRec {
	seen := map[qposKey]bool{}
	out := hits[:0]
	for _, h := range hits {
		k := h.pos.key()
		if !seen[k] {
			seen[k] = true
			out = append(out, h)
		}
	}
	return out
}

// chunkEdges splits the query trie's edges into chunks of bounded words
// for the master round.
func (t *PIMTrie) chunkEdges(p *prep) [][]segment {
	var chunks [][]segment
	var cur []segment
	words := 0
	p.qt.Trie.WalkPreorder(func(n *trie.Node) bool {
		for b := 0; b < 2; b++ {
			if e := n.Child[b]; e != nil {
				s := segment{edge: e, off: 0, end: e.Label.Len(), startVal: p.hashes[n]}
				cur = append(cur, s)
				words += s.words()
				if words >= t.cfg.MasterChunkWords {
					chunks = append(chunks, cur)
					cur, words = nil, 0
				}
			}
		}
		return true
	})
	if len(cur) > 0 {
		chunks = append(chunks, cur)
	}
	return chunks
}

// piece is the query-trie region below one hit, truncated at deeper
// hits: the unit of region probing and block matching.
type piece struct {
	hit       hitRec
	root      qpos
	segs      []segment
	words     int
	childKeys map[qposKey]bool
	nodes     []*trie.Node // compressed nodes owned by this piece
}

// decompose partitions the query trie by the hit positions: every
// position belongs to the piece of the nearest hit at or above it. The
// hits must include the root hit. With withPre, every segment carries
// the ≤w bits above its start (needed by pivot probing).
func decompose(p *prep, hits []hitRec, withPre bool) []*piece {
	byEdge := map[*trie.Edge][]int{}
	var rootPiece *piece
	pieceOf := make([]*piece, len(hits))
	for i, h := range hits {
		if h.pos.node != nil && h.pos.node.Parent == nil {
			rootPiece = &piece{hit: h, root: h.pos, childKeys: map[qposKey]bool{}}
			pieceOf[i] = rootPiece
			continue
		}
		var e *trie.Edge
		if h.pos.node != nil {
			e = h.pos.node.ParentEdge
		} else {
			e = h.pos.edge
		}
		byEdge[e] = append(byEdge[e], i)
	}
	if rootPiece == nil {
		panic("core: decompose without a root hit")
	}
	for e, idxs := range byEdge {
		sort.Slice(idxs, func(a, b int) bool {
			return hitOff(hits[idxs[a]], e) < hitOff(hits[idxs[b]], e)
		})
		byEdge[e] = idxs
	}
	var rec func(n *trie.Node, cur *piece)
	rec = func(n *trie.Node, cur *piece) {
		cur.nodes = append(cur.nodes, n)
		for b := 0; b < 2; b++ {
			e := n.Child[b]
			if e == nil {
				continue
			}
			from := 0
			fromVal := p.hashes[n]
			edgePiece := cur
			for _, hi := range byEdge[e] {
				off := hitOff(hits[hi], e)
				if off > from {
					edgePiece.addSeg(mkSeg(e, from, off, fromVal, withPre))
				}
				edgePiece.childKeys[onEdge(e, off).key()] = true
				np := &piece{hit: hits[hi], root: onEdge(e, off), childKeys: map[qposKey]bool{}}
				pieceOf[hi] = np
				edgePiece = np
				from = off
				fromVal = hits[hi].val
			}
			if from < e.Label.Len() {
				edgePiece.addSeg(mkSeg(e, from, e.Label.Len(), fromVal, withPre))
			}
			rec(e.To, edgePiece)
		}
	}
	rec(p.qt.Trie.Root(), rootPiece)
	out := make([]*piece, 0, len(hits))
	for _, pc := range pieceOf {
		if pc != nil {
			out = append(out, pc)
		}
	}
	return out
}

// mkSeg builds a segment, attaching the pre-window when requested.
func mkSeg(e *trie.Edge, from, end int, fromVal hashing.Value, withPre bool) segment {
	s := segment{edge: e, off: from, end: end, startVal: fromVal}
	if withPre {
		s.preBits = suffixWindow(e, from, bitstr.WordBits)
	}
	return s
}

func (pc *piece) addSeg(s segment) {
	pc.segs = append(pc.segs, s)
	pc.words += s.words()
}

func hitOff(h hitRec, e *trie.Edge) int {
	if h.pos.node != nil {
		return e.Label.Len()
	}
	return h.pos.off
}
