package core

// Host-side batch preparation decoupled from execution (the serving
// layer's pipeline stage). Prepare runs phase A — query-trie
// construction, long-edge splitting and node hashing — without touching
// the simulated system or the PIMTrie's pooled scratch, so it is safe to
// run on one goroutine while another batch executes on the index. The
// result is handed to the *Prepared operation variants, which charge the
// exact model cost the inline preparation would have charged (the PIM
// Model does not observe wall-clock overlap), so metrics stay
// bit-identical to the unpipelined path.
//
// The only index state Prepare reads is the current hash function, which
// the executing batch may replace mid-flight (global re-hash, §4.4.3).
// The hasher is therefore published through an atomic generation-stamped
// pointer: Prepare records the generation it hashed under, and a
// consumer whose generation is stale silently rebuilds inline — the
// overlap was wasted, correctness is unaffected.

import (
	"github.com/pimlab/pimtrie/internal/bitstr"
	"github.com/pimlab/pimtrie/internal/hashing"
	"github.com/pimlab/pimtrie/internal/querytrie"
)

// hasherState pairs the active hash function with a generation counter
// bumped on every re-hash; it is published atomically for concurrent
// Prepare callers.
type hasherState struct {
	h   *hashing.Hasher
	gen uint64
}

// setHasher installs h as the active hash function and publishes it with
// a fresh generation. Called from the construction and re-hash paths,
// always on the (single) executing goroutine.
func (t *PIMTrie) setHasher(h *hashing.Hasher) {
	t.h = h
	gen := uint64(0)
	if old := t.hcur.Load(); old != nil {
		gen = old.gen + 1
	}
	t.hcur.Store(&hasherState{h: h, gen: gen})
}

// Prepared is the host-side phase-A precomputation of one batch: the
// query trie (split to shippable edge lengths) and the node hashes under
// one hash-function generation. It is immutable after Prepare returns
// and must be consumed by at most one *Prepared operation.
type Prepared struct {
	batch  []bitstr.String
	qt     *querytrie.QueryTrie
	hashes []hashing.Value
	gen    uint64
}

// Batch returns the batch the preparation was built for. The slice is
// the caller's original; it must not be mutated before consumption.
func (p *Prepared) Batch() []bitstr.String { return p.batch }

// Prepare precomputes the host-side query trie and node hashes for a
// batch. Unlike every other PIMTrie method, Prepare is safe to call
// concurrently with an executing batch (it takes no scratch and charges
// no model cost — the consuming operation accounts for the preparation
// as if it ran inline).
func (t *PIMTrie) Prepare(batch []bitstr.String) *Prepared {
	hs := t.hcur.Load()
	qt := querytrie.Build(batch)
	qt.Trie.SplitLongEdges(t.cfg.MasterChunkWords * bitstr.WordBits)
	return &Prepared{
		batch:  batch,
		qt:     qt,
		hashes: qt.NodeHashes(hs.h, nil),
		gen:    hs.gen,
	}
}

// consumePrepared turns a staged preparation into the internal prep
// form, charging the same model cost prepare would have. It returns nil
// when the preparation is stale (hash generation changed since it was
// built), in which case the caller must prepare inline.
func (t *PIMTrie) consumePrepared(pb *Prepared) *prep {
	if pb == nil || pb.gen != t.hcur.Load().gen {
		return nil
	}
	t.sys.CPUWork(pb.qt.SizeWords())
	return &prep{qt: pb.qt, hashes: pb.hashes}
}
