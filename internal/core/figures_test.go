package core

// Golden tests reproducing the paper's worked examples (Figures 1 and 2).
// Figure 3/4 (meta-tree decomposition) live in package hvm and Figure 5
// (two-layer index) in package yfast.

import (
	"testing"

	"github.com/pimlab/pimtrie/internal/bitstr"
	"github.com/pimlab/pimtrie/internal/querytrie"
	"github.com/pimlab/pimtrie/internal/trie"
)

// figure1Keys spells the data trie of Figure 1: the root branches into
// "00001" (a stored key with a further "101" extension) and "1"; under
// "1" a node "10" branches to "1011" with children "10110000" and
// "1011111"(-ish) and to "111". We reconstruct a consistent key set whose
// compressed trie contains the paper's highlighted prefixes: stored keys
// chosen so that "10100" is a hidden (mid-edge) prefix, as in the figure.
var figure1Keys = []string{
	"00001",    // value node with two children in the figure
	"00001101", // "00001" + edge "101"
	"1010011",  // makes "10100" a hidden node on an edge
	"10101",    // sibling branch below "1010"
	"111",
}

// figure1Queries are the query strings of Figure 1 with their expected
// LCP lengths against the data above:
//   - "00001001": shares "00001" then diverges → 5
//   - "101001":   matched through the hidden node "10100" → entire query
//     present as a prefix of "1010011" → 6
//   - "101011":   shares "10101" → 5
var figure1Queries = []struct {
	q   string
	lcp int
}{
	{"00001001", 5},
	{"101001", 6},
	{"101011", 5},
}

func TestFigure1QueryTrieShape(t *testing.T) {
	var batch []bitstr.String
	for _, fq := range figure1Queries {
		batch = append(batch, bitstr.MustParse(fq.q))
	}
	qt := querytrie.Build(batch)
	// Figure 1's query trie: root --00001001--> leaf and root --101--> a
	// branch node "1010" ... with our batch, the compressed query trie
	// has a root with two subtrees and exactly 3 leaves + branch "1010".
	if qt.Trie.KeyCount() != 3 {
		t.Fatalf("query trie keys = %d", qt.Trie.KeyCount())
	}
	var branchDepths []int
	qt.Trie.WalkPreorder(func(n *trie.Node) bool {
		if !n.HasValue && n.Parent != nil {
			branchDepths = append(branchDepths, n.Depth)
		}
		return true
	})
	// The only internal branch is at "1010" (depth 4), as in the figure.
	if len(branchDepths) != 1 || branchDepths[0] != 4 {
		t.Fatalf("query trie branches at %v, want [4]", branchDepths)
	}
}

func TestFigure1Matching(t *testing.T) {
	keys := make([]bitstr.String, len(figure1Keys))
	values := make([]uint64, len(figure1Keys))
	for i, k := range figure1Keys {
		keys[i] = bitstr.MustParse(k)
		values[i] = uint64(i + 1)
	}
	for _, p := range []int{1, 4} {
		pt, _ := newTestTrie(p, Config{})
		pt.Build(keys, values)
		var batch []bitstr.String
		for _, fq := range figure1Queries {
			batch = append(batch, bitstr.MustParse(fq.q))
		}
		got := pt.LCP(batch)
		for i, fq := range figure1Queries {
			if got[i] != fq.lcp {
				t.Errorf("P=%d: LCP(%q) = %d, want %d", p, fq.q, got[i], fq.lcp)
			}
		}
	}
}

func TestFigure2BlockDecomposition(t *testing.T) {
	// Figure 2 decomposes the Figure 1 data trie into blocks whose roots
	// are ε, "101"(-ish) and deeper prefixes, with mirror nodes (dashed
	// circles) for child block roots. We force small blocks so the tiny
	// trie actually splits, then verify the structural properties the
	// figure illustrates:
	//   1. every block root's string is a prefix of some stored key;
	//   2. mirrors in a parent block replicate exactly its child block
	//      roots, and carry no value;
	//   3. queries are answered identically before and after blocking.
	full := trie.New()
	keys := make([]bitstr.String, len(figure1Keys))
	for i, k := range figure1Keys {
		keys[i] = bitstr.MustParse(k)
		full.Insert(keys[i], uint64(i+1))
	}
	cuts := full.Partition(trie.MinBlockWords)
	blocks := full.ExtractBlocks(cuts)
	for _, b := range blocks {
		if b.RootString.Len() > 0 {
			onPath := false
			for _, k := range keys {
				if k.HasPrefix(b.RootString) || b.RootString.HasPrefix(k) {
					onPath = true
				}
			}
			if !onPath {
				t.Fatalf("block root %q not on any key path", b.RootString)
			}
		}
		for _, m := range b.Mirrors {
			if m.Node.HasValue || !m.Node.Mirror {
				t.Fatal("mirror carries a value or lost its flag")
			}
			child := blocks[m.ChildIndex]
			if !bitstr.Equal(m.RootString, child.RootString) {
				t.Fatalf("mirror points at %q, child root is %q", m.RootString, child.RootString)
			}
		}
	}

	// End-to-end equivalence through the distributed structure with the
	// same tiny block bound.
	pt, _ := newTestTrie(3, Config{BlockWords: trie.MinBlockWords})
	values := make([]uint64, len(keys))
	for i := range values {
		values[i] = uint64(i + 1)
	}
	pt.Build(keys, values)
	if st := pt.CollectStats(); st.Blocks < 2 {
		t.Fatalf("figure-2 build produced %d blocks; expected a real decomposition", st.Blocks)
	}
	for _, fq := range figure1Queries {
		got := pt.LCP([]bitstr.String{bitstr.MustParse(fq.q)})
		if got[0] != fq.lcp {
			t.Errorf("blocked LCP(%q) = %d, want %d", fq.q, got[0], fq.lcp)
		}
	}
	// Block 2 of the figure is non-critical for the example batch: the
	// query trie positions between block roots pass through it without a
	// compressed node. We can't name blocks, but we can check that the
	// batch's verified hits are fewer than the total blocks (non-critical
	// blocks are skipped): implied by bounded false hits and exact LCPs.
	if pt.FalseHits() != 0 {
		t.Fatalf("full-width hash produced %d false hits", pt.FalseHits())
	}
}
