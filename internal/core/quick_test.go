package core

// Property-based tests: testing/quick drives randomized scenarios whose
// invariants must hold for arbitrary seeds and shapes — the
// equivalence-with-oracle property over generated op sequences, LCP
// laws, and structural conservation.

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/pimlab/pimtrie/internal/bitstr"
	"github.com/pimlab/pimtrie/internal/trie"
)

// scenario runs a seed-determined op sequence on both the PIM-trie and
// the oracle and reports whether every observation agreed.
func scenario(seed int64, p int, hashWidth uint) bool {
	return scenarioCfg(seed, p, Config{HashWidth: hashWidth, MaxRedo: 60})
}

func scenarioCfg(seed int64, p int, cfg Config) bool {
	r := rand.New(rand.NewSource(seed))
	pt, _ := newTestTrie(p, cfg)
	oracle := trie.New()
	var pool []bitstr.String
	mk := func() bitstr.String {
		k := randomKey(r, 70)
		if len(pool) > 0 && r.Intn(3) == 0 {
			k = pool[r.Intn(len(pool))].Concat(randomKey(r, 20))
		}
		return k
	}
	for step := 0; step < 6; step++ {
		switch r.Intn(4) {
		case 0, 1: // insert batch
			n := 10 + r.Intn(60)
			keys := make([]bitstr.String, n)
			values := make([]uint64, n)
			for i := range keys {
				keys[i] = mk()
				values[i] = r.Uint64() >> 1
				pool = append(pool, keys[i])
				oracle.Insert(keys[i], values[i])
			}
			pt.Insert(keys, values)
		case 2: // delete batch
			n := 5 + r.Intn(30)
			keys := make([]bitstr.String, n)
			for i := range keys {
				if len(pool) > 0 && r.Intn(2) == 0 {
					keys[i] = pool[r.Intn(len(pool))]
				} else {
					keys[i] = randomKey(r, 70)
				}
			}
			got := pt.Delete(keys)
			for i, k := range keys {
				if got[i] != oracle.Delete(k) {
					return false
				}
			}
		default: // query batch
			n := 10 + r.Intn(40)
			queries := make([]bitstr.String, n)
			for i := range queries {
				switch {
				case len(pool) > 0 && r.Intn(2) == 0:
					k := pool[r.Intn(len(pool))]
					queries[i] = k.Prefix(r.Intn(k.Len() + 1))
				default:
					queries[i] = randomKey(r, 90)
				}
			}
			lcp := pt.LCP(queries)
			vals, found := pt.Get(queries)
			for i, q := range queries {
				if lcp[i] != oracle.LCPLen(q) {
					return false
				}
				wv, wok := oracle.Get(q)
				if found[i] != wok || (wok && vals[i] != wv) {
					return false
				}
			}
		}
		if pt.KeyCount() != oracle.KeyCount() {
			return false
		}
	}
	return pt.Validate() == nil
}

func TestQuickScenarioEquivalence(t *testing.T) {
	f := func(seed int64) bool { return scenario(seed, 4, 0) }
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

func TestQuickScenarioPivotProbing(t *testing.T) {
	// The §4.4.2 pivot probe must be observationally identical to the
	// per-bit probe, including under a narrow hash.
	f := func(seed int64) bool {
		return scenarioCfg(seed, 4, Config{PivotProbing: true, MaxRedo: 60}) &&
			scenarioCfg(seed, 8, Config{PivotProbing: true, HashWidth: 20, MaxRedo: 80})
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Error(err)
	}
}

func TestQuickScenarioNarrowHash(t *testing.T) {
	// The same equivalence must survive a collision-prone 18-bit hash.
	f := func(seed int64) bool { return scenario(seed, 4, 18) }
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Error(err)
	}
}

func TestQuickLCPLaws(t *testing.T) {
	// Algebraic laws of LCP against a fixed index:
	//  1. 0 ≤ LCP(q) ≤ |q|;
	//  2. monotone under prefix: LCP(q[:i]) ≥ min(i, LCP(q));
	//  3. a stored key has LCP = its length;
	//  4. extending a stored key changes nothing below the key's length.
	r := rand.New(rand.NewSource(271))
	keys := make([]bitstr.String, 150)
	for i := range keys {
		keys[i] = randomKey(r, 60)
	}
	pt, _ := newTestTrie(4, Config{})
	pt.Build(keys, make([]uint64, len(keys)))

	f := func(pick uint16, cut uint16, ext []bool) bool {
		k := keys[int(pick)%len(keys)]
		extBits := make([]byte, len(ext))
		for i, b := range ext {
			if b {
				extBits[i] = 1
			}
		}
		q := k.Concat(bitstr.FromBits(extBits))
		i := int(cut) % (q.Len() + 1)
		res := pt.LCP([]bitstr.String{q, q.Prefix(i), k})
		full, pre, kk := res[0], res[1], res[2]
		if full < 0 || full > q.Len() {
			return false
		}
		if min := i; full < i {
			min = full
			_ = min
		}
		wantPre := i
		if full < i {
			wantPre = full
		}
		// Law 2 with equality: LCP(q[:i]) == min(i, LCP(q)).
		if pre != wantPre {
			return false
		}
		// Law 3/4.
		return kk == k.Len() && full >= k.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestQuickInsertThenSubtreeConservation(t *testing.T) {
	// Inserting any batch under a marker prefix must make Subtree(marker)
	// return exactly the deduplicated batch.
	marker := bitstr.MustParse("11110000111100001111")
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		pt, _ := newTestTrie(4, Config{})
		// Background noise keys.
		noise := make([]bitstr.String, 80)
		for i := range noise {
			noise[i] = randomKey(r, 40)
			if noise[i].HasPrefix(marker) {
				noise[i] = noise[i].AppendBit(0) // cannot happen (len<20) but keep total
			}
		}
		pt.Build(noise, make([]uint64, len(noise)))
		n := 1 + r.Intn(50)
		keys := make([]bitstr.String, n)
		uniq := map[string]bool{}
		for i := range keys {
			keys[i] = marker.Concat(randomKey(r, 30))
			uniq[keys[i].String()] = true
		}
		pt.Insert(keys, make([]uint64, n))
		got := pt.SubtreeQuery(marker)
		if len(got) != len(uniq) {
			return false
		}
		for _, kv := range got {
			if !uniq[kv.Key.String()] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
