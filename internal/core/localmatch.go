package core

// Local trie matching: the bit-by-bit comparison between a query-trie
// piece and a data block (the Match() of Algorithm 2, run on a PIM
// module after a push or on the CPU after a pull). The query piece is
// the query-trie subgraph below one verified hit position, truncated at
// deeper hit positions; the hit guarantees the piece root's string
// equals the block root's string, so the walk starts aligned at the two
// roots and compares edge labels word-at-a-time.

import (
	"sync"

	"github.com/pimlab/pimtrie/internal/bitstr"
	"github.com/pimlab/pimtrie/internal/trie"
)

// qpos is a position in a trie: either exactly at a compressed node
// (node != nil) or off bits down edge's label (0 < off < label length).
// It canonicalizes edge endpoints to nodes via onEdge.
type qpos struct {
	node *trie.Node
	edge *trie.Edge
	off  int
}

func atNode(n *trie.Node) qpos { return qpos{node: n} }

func onEdge(e *trie.Edge, off int) qpos {
	switch {
	case off == 0:
		return qpos{node: e.From}
	case off == e.Label.Len():
		return qpos{node: e.To}
	default:
		return qpos{edge: e, off: off}
	}
}

func (p qpos) depth() int {
	if p.node != nil {
		return p.node.Depth
	}
	return p.edge.From.Depth + p.off
}

// qposKey is a comparable identity for hit bookkeeping.
type qposKey struct {
	node *trie.Node
	edge *trie.Edge
	off  int
}

func (p qpos) key() qposKey { return qposKey{p.node, p.edge, p.off} }

// exactHit records that a query node's string coincided with a data
// compressed node.
type exactHit struct {
	hasValue bool
	value    uint64
	isMirror bool
}

// matchReport is the outcome of matching one piece against one block.
// All depths are absolute (from the data-trie root), which makes host
// merging a plain max.
type matchReport struct {
	// reach[n] = bits of n's root-path matched, for every query
	// compressed node in the piece.
	reach map[*trie.Node]int
	// exact[n] is set when n's string coincided with a data node.
	exact map[*trie.Node]exactHit
	words int // wire size when fetched from a module
}

func (r *matchReport) setReach(n *trie.Node, d int) {
	if old, ok := r.reach[n]; !ok || d > old {
		r.reach[n] = d
		r.words++
	}
}

// merge folds o into r by max-reach; exact entries prefer real nodes
// over mirrors (the deeper pair is authoritative at a block boundary).
func (r *matchReport) merge(o *matchReport) {
	for n, d := range o.reach {
		r.setReach(n, d)
	}
	for n, e := range o.exact {
		if old, ok := r.exact[n]; !ok || (old.isMirror && !e.isMirror) {
			r.exact[n] = e
		}
	}
}

// matcher carries the walk state.
type matcher struct {
	rep   *matchReport
	stop  map[qposKey]bool
	work  func(int) // bit-operation accounting hook
	block *trie.Trie
}

// matcherPool and reportPool recycle the per-piece walk state.
// matchPiece runs concurrently from PIM-module executors and host
// workers, so a sync.Pool (not a PIMTrie field) is required. The
// matcher is returned to its pool before matchPiece returns; the report
// escapes to the caller, which hands it back via recycleReport once
// merged (callers that never recycle, e.g. tests, just let it be
// garbage).
var matcherPool = sync.Pool{New: func() any { return new(matcher) }}

var reportPool = sync.Pool{New: func() any {
	return &matchReport{reach: map[*trie.Node]int{}, exact: map[*trie.Node]exactHit{}}
}}

func newReport() *matchReport {
	rep := reportPool.Get().(*matchReport)
	clear(rep.reach)
	clear(rep.exact)
	rep.words = 0
	return rep
}

// recycleReport returns a report to the pool. The caller must hold the
// only reference — in particular the report's maps must no longer be
// reachable from a matchOutcome.
func recycleReport(rep *matchReport) { reportPool.Put(rep) }

// matchPiece walks the query trie from start (whose represented string
// equals the block root's string) against the block's local trie,
// halting at the positions in stop. work receives word-granularity
// operation counts so callers can charge PIM or CPU work.
func matchPiece(start qpos, stop map[qposKey]bool, block *trie.Trie, work func(int)) *matchReport {
	m := matcherPool.Get().(*matcher)
	m.rep = newReport()
	m.stop = stop
	m.work = work
	m.block = block
	droot := atNode(block.Root())
	if start.node != nil {
		m.record(start.node, droot)
		m.fromNode(start.node, droot)
	} else {
		m.matchEdge(start.edge, start.off, droot)
	}
	rep := m.rep
	*m = matcher{}
	matcherPool.Put(m)
	return rep
}

// record notes that query node n matched fully, with the data side at d.
func (m *matcher) record(n *trie.Node, d qpos) {
	m.rep.setReach(n, n.Depth)
	if d.node != nil {
		m.rep.exact[n] = exactHit{hasValue: d.node.HasValue, value: d.node.Value, isMirror: d.node.Mirror}
		m.rep.words++
	}
}

// diverge assigns reach = depth to every query compressed node at or
// below p (the match ended at absolute depth `depth` on p's path).
func (m *matcher) diverge(p qpos, depth int) {
	var n *trie.Node
	if p.node != nil {
		n = p.node
	} else {
		n = p.edge.To
	}
	m.divergeRec(n, depth)
}

func (m *matcher) divergeRec(v *trie.Node, depth int) {
	m.rep.setReach(v, depth)
	for b := 0; b < 2; b++ {
		if e := v.Child[b]; e != nil {
			m.divergeRec(e.To, depth)
		}
	}
}

// fromNode continues the match below query node qn with the data side
// aligned at d.
func (m *matcher) fromNode(qn *trie.Node, d qpos) {
	for b := 0; b < 2; b++ {
		if e := qn.Child[b]; e != nil {
			m.matchEdge(e, 0, d)
		}
	}
}

// nextStop returns the smallest stop offset on edge e strictly greater
// than off (edge-end stops are keyed as the To node), or label length+1
// if none.
func (m *matcher) nextStop(e *trie.Edge, off int) int {
	best := e.Label.Len() + 1
	if len(m.stop) == 0 {
		return best
	}
	for s := off + 1; s < e.Label.Len(); s++ {
		if m.stop[(qpos{edge: e, off: s}).key()] {
			return s
		}
	}
	if m.stop[(qpos{node: e.To}).key()] {
		return e.Label.Len()
	}
	return best
}

// matchEdge matches query edge qe from offset qoff onward against the
// data side at position d (aligned with qe's position qoff).
func (m *matcher) matchEdge(qe *trie.Edge, qoff int, d qpos) {
	ql := qe.Label
	for {
		stopAt := m.nextStop(qe, qoff)
		if qoff == ql.Len() {
			// Query edge consumed: record its endpoint and continue below,
			// unless a deeper pair owns the node.
			m.record(qe.To, d)
			if stopAt == ql.Len() || m.mirrorAt(d) {
				return
			}
			m.fromNode(qe.To, d)
			return
		}
		// Position the data side on an edge.
		if d.node != nil {
			if m.mirrorAt(d) {
				// Continuing past a mirror belongs to the child block's
				// pair; conservatively end here.
				m.diverge(onEdge(qe, qoff), qe.From.Depth+qoff)
				return
			}
			de := d.node.Child[ql.BitAt(qoff)]
			if de == nil {
				m.diverge(onEdge(qe, qoff), qe.From.Depth+qoff)
				return
			}
			d = qpos{edge: de, off: 0}
		}
		dl := d.edge.Label
		limit := ql.Len()
		if stopAt < limit {
			limit = stopAt
		}
		n := limit - qoff
		if rem := dl.Len() - d.off; rem < n {
			n = rem
		}
		l := bitstr.LCPRange(ql, qoff, dl, d.off, n)
		m.work(n/bitstr.WordBits + 1)
		qoff += l
		d = onEdge(d.edge, d.off+l)
		if l < n {
			m.diverge(onEdge(qe, qoff), qe.From.Depth+qoff)
			return
		}
		if qoff == stopAt && qoff < ql.Len() {
			// Deeper hit mid-edge: its pair continues from here.
			return
		}
		// Otherwise loop: either the query edge is consumed (handled at
		// the top) or the data edge was consumed (d normalized to a node).
	}
}

// mirrorAt reports whether d sits exactly on a mirror leaf.
func (m *matcher) mirrorAt(d qpos) bool {
	return d.node != nil && d.node.Mirror
}
