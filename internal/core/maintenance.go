package core

// Structural maintenance (§5.2): re-partitioning blocks that outgrow
// K_B after inserts, reclaiming blocks emptied by deletes, and splitting
// regions that outgrow K_MB.
//
// The meta-tree is kept exactly isomorphic to the block tree: when a
// block splits, the meta-nodes of its surviving old children are
// re-parented under the new intermediate blocks' metas (and child-region
// references move with them), and when a region root's meta is removed
// the region splits per child subtree. This preserves the invariant the
// matching protocol relies on: every region root is a data-trie ancestor
// of all its members, and along any root-to-leaf path region membership
// is contiguous — so the nearest master hit above a block root always
// names the region holding that root's meta.

import (
	"github.com/pimlab/pimtrie/internal/bitstr"
	"github.com/pimlab/pimtrie/internal/hashing"
	"github.com/pimlab/pimtrie/internal/hvm"
	"github.com/pimlab/pimtrie/internal/parallel"
	"github.com/pimlab/pimtrie/internal/pim"
	"github.com/pimlab/pimtrie/internal/trie"
)

// splitBlocks re-partitions every oversized block into child blocks,
// distributes the children, and registers and re-parents meta-nodes.
func (t *PIMTrie) splitBlocks(oversized []pim.Addr) {
	defer t.sys.Phase("block-split")()
	// Round 1: pull the oversized blocks.
	tasks := make([]pim.Task, len(oversized))
	for i, addr := range oversized {
		addr := addr
		tasks[i] = pim.Task{
			Module:    addr.Module,
			SendWords: 1,
			Run: func(m *pim.Module) pim.Resp {
				bo := m.Get(addr.ID).(*blockObj)
				return pim.Resp{RecvWords: bo.SizeWords(), Value: bo}
			},
		}
	}
	resps := t.sys.Round(tasks)

	type newBlock struct {
		bo     *blockObj
		parent int // index into allNew, or -1 when parented by the old block
		oldIdx int // which oversized block it came from
		val    hashing.Value
		rel    bitstr.String // root string relative to the old block's root
	}
	type replacement struct {
		addr     pim.Addr
		tr       *trie.Trie
		children []pim.Addr
		region   pim.Addr
		newIdxs  []int
	}
	var allNew []newBlock
	var repls []replacement

	for oi, r := range resps {
		bo := r.Value.(*blockObj)
		cuts := dropMirrorCuts(bo.tr.Partition(t.cfg.BlockWords))
		if len(cuts) == 0 {
			continue
		}
		specs := bo.tr.ExtractBlocks(cuts)
		t.sys.CPUWork(bo.tr.SizeWords())
		// Allocate slots: spec 0 replaces the old block; the rest are new.
		slot := make([]int, len(specs)) // spec index -> allNew index (or -1)
		slot[0] = -1
		for si := 1; si < len(specs); si++ {
			sp := specs[si]
			val := t.h.Extend(bo.rootVal, sp.RootString)
			nb := &blockObj{
				tr:      sp.Trie,
				rootLen: bo.rootLen + sp.RootString.Len(),
				rootVal: val,
				sLast:   slastExtend(bo.sLast, sp.RootString),
				region:  bo.region,
			}
			nb.rootHash = t.h.Out(val)
			slot[si] = len(allNew)
			allNew = append(allNew, newBlock{bo: nb, parent: -1, oldIdx: oi, val: val, rel: sp.RootString})
		}
		// Children lists: new-cut mirrors point at new blocks, surviving
		// old mirrors keep their old addresses (Value preserved by
		// ExtractBlocks).
		for si, sp := range specs {
			newCut := map[*trie.Node]int{}
			for _, ref := range sp.Mirrors {
				newCut[ref.Node] = ref.ChildIndex
			}
			var children []pim.Addr
			var newIdxs []int
			sp.Trie.WalkPreorder(func(n *trie.Node) bool {
				if !n.Mirror {
					return true
				}
				if ci, ok := newCut[n]; ok {
					// Parent relationship resolved after allocation.
					if si == 0 {
						allNew[slot[ci]].parent = -1
					} else {
						allNew[slot[ci]].parent = slot[si]
					}
					n.Value = uint64(len(children))
					children = append(children, pim.NilAddr) // patched below
					newIdxs = append(newIdxs, slot[ci])
				} else {
					old := bo.children[n.Value]
					n.Value = uint64(len(children))
					children = append(children, old)
				}
				return false
			})
			if si == 0 {
				repls = append(repls, replacement{
					addr: oversized[oi], tr: sp.Trie, children: children,
					region: bo.region, newIdxs: newIdxs,
				})
			} else {
				allNew[slot[si]].bo.children = children
				// Record which children slots await new addresses.
				allNew[slot[si]].bo.pendingNew = newIdxs
			}
		}
	}
	if len(allNew) == 0 {
		return
	}

	// Round 2: allocate the new blocks on random modules. Placement draws
	// stay serial; the per-block size walks fan out.
	alloc := make([]pim.Task, len(allNew))
	mods := make([]int, len(allNew))
	for i := range mods {
		mods[i] = t.sys.RandModule()
	}
	parallel.For(len(allNew), func(i int) {
		nb := allNew[i]
		alloc[i] = pim.Task{
			Module:    mods[i],
			SendWords: nb.bo.SizeWords(),
			Run: func(m *pim.Module) pim.Resp {
				return pim.Resp{RecvWords: 1, Value: m.Alloc(nb.bo)}
			},
		}
	})
	newAddr := make([]pim.Addr, len(allNew))
	for i, r := range t.sys.Round(alloc) {
		newAddr[i] = r.Value.(pim.Addr)
	}
	if t.recoverable {
		// Register the new blocks in the directory; the old (replaced)
		// blocks keep their address and root string.
		for i := range allNew {
			base := t.blockDir[oversized[allNew[i].oldIdx]]
			t.blockDir[newAddr[i]] = base.Concat(allNew[i].rel)
		}
	}

	// Host: patch child slots that point at new blocks, and set parents.
	for i := range allNew {
		nb := allNew[i].bo
		k := 0
		for ci := range nb.children {
			if nb.children[ci].IsNil() {
				nb.children[ci] = newAddr[nb.pendingNew[k]]
				k++
			}
		}
		nb.pendingNew = nil
	}
	for _, rp := range repls {
		k := 0
		for ci := range rp.children {
			if rp.children[ci].IsNil() {
				rp.children[ci] = newAddr[rp.newIdxs[k]]
				k++
			}
		}
	}
	for i := range allNew {
		if allNew[i].parent >= 0 {
			allNew[i].bo.parent = newAddr[allNew[i].parent]
		} else {
			allNew[i].bo.parent = oversized[allNew[i].oldIdx]
		}
	}

	// Round 3: install the replacement tries and fix the parent pointers
	// of surviving old children that moved under a new block; their
	// replies carry the (region, rootHash) needed to re-parent metas.
	var fix []pim.Task
	type childMove struct {
		oldIdx    int    // which oversized block the move belongs to
		ownerHash uint64 // new owner block's root hash
	}
	var moves []childMove // parallel to the reply order of move tasks
	moveStart := len(repls)
	for _, rp := range repls {
		rp := rp
		fix = append(fix, pim.Task{
			Module:    rp.addr.Module,
			SendWords: rp.tr.SizeWords() + len(rp.children) + 2,
			Run: func(m *pim.Module) pim.Resp {
				bo := m.Get(rp.addr.ID).(*blockObj)
				bo.tr = rp.tr
				bo.children = rp.children
				m.Resize(rp.addr.ID)
				return pim.Resp{}
			},
		})
	}
	for i := range allNew {
		nb, na := allNew[i].bo, newAddr[i]
		for _, c := range nb.children {
			c := c
			// Old children are exactly those not allocated this round.
			if c.IsNil() || idxOfAddr(newAddr, c) >= 0 {
				continue
			}
			moves = append(moves, childMove{oldIdx: allNew[i].oldIdx, ownerHash: nb.rootHash})
			fix = append(fix, pim.Task{
				Module:    c.Module,
				SendWords: 2,
				Run: func(m *pim.Module) pim.Resp {
					bo := m.Get(c.ID).(*blockObj)
					bo.parent = na
					return pim.Resp{RecvWords: 3, Value: [2]any{bo.region, bo.rootHash}}
				},
			})
		}
	}
	fixResps := t.sys.Round(fix)

	// Round 4: per region, insert the new metas (parents first — allNew
	// is in preorder per split block) and re-parent the moved children.
	type metaIns struct {
		parentHash uint64
		node       *hvm.MetaNode
	}
	type reparent struct {
		childHash   uint64
		childRegion pim.Addr
		fromHash    uint64 // the split block's hash (holds the region ref)
		ownerHash   uint64
	}
	insByRegion := map[pim.Addr][]metaIns{}
	repByRegion := map[pim.Addr][]reparent{}
	var regionOrder []pim.Addr // first-seen order for deterministic emission
	for i, nb := range allNew {
		if _, seen := insByRegion[nb.bo.region]; !seen {
			regionOrder = append(regionOrder, nb.bo.region)
		}
		parentHash := uint64(0)
		if nb.parent >= 0 {
			parentHash = allNew[nb.parent].bo.rootHash
		} else {
			parentHash = t.hashOfOversized(resps, nb.oldIdx)
		}
		hashPre, srem := t.pivotAug(nb.bo.rootVal, nb.bo.sLast)
		insByRegion[nb.bo.region] = append(insByRegion[nb.bo.region], metaIns{
			parentHash: parentHash,
			node: &hvm.MetaNode{
				Hash: nb.bo.rootHash, Len: nb.bo.rootLen, SLast: nb.bo.sLast, Block: newAddr[i],
				HashPre: hashPre, SRem: srem,
			},
		})
	}
	for mi, mv := range moves {
		pair := fixResps[moveStart+mi].Value.([2]any)
		childRegion := pair[0].(pim.Addr)
		childHash := pair[1].(uint64)
		bRegion := resps[mv.oldIdx].Value.(*blockObj).region
		repByRegion[bRegion] = append(repByRegion[bRegion], reparent{
			childHash:   childHash,
			childRegion: childRegion,
			fromHash:    t.hashOfOversized(resps, mv.oldIdx),
			ownerHash:   mv.ownerHash,
		})
	}
	type regReply struct {
		collided bool
		size     int
	}
	rTasks := make([]pim.Task, 0, len(insByRegion))
	rAddrs := make([]pim.Addr, 0, len(insByRegion))
	for _, ra := range regionOrder {
		ra := ra
		ins := insByRegion[ra]
		reps := repByRegion[ra]
		rTasks = append(rTasks, pim.Task{
			Module:    ra.Module,
			SendWords: len(ins)*(hvm.NodeCostWords+1) + len(reps)*3,
			Run: func(m *pim.Module) pim.Resp {
				ro := m.Get(ra.ID).(*regionObj)
				collided := false
				for _, in := range ins {
					parent := ro.r.Lookup(in.parentHash)
					if parent == nil {
						// Only possible under a hash collision mangling the
						// lookup structure; heal with a global re-hash.
						collided = true
						continue
					}
					if err := ro.r.Insert(parent, in.node); err != nil {
						collided = true
					}
				}
				for _, rp := range reps {
					owner := ro.r.Lookup(rp.ownerHash)
					if owner == nil {
						collided = true
						continue
					}
					if rp.childRegion == ra {
						child := ro.r.Lookup(rp.childHash)
						if child == nil {
							collided = true
							continue
						}
						ro.r.Reparent(child, owner)
						continue
					}
					from := ro.r.Lookup(rp.fromHash)
					if from == nil || !ro.r.MoveChildRegion(from, owner, rp.childRegion) {
						// The reference may legitimately be missing when the
						// child's region split moved it; harmless.
						continue
					}
				}
				m.Resize(ra.ID)
				m.Work(len(ins) + len(reps))
				return pim.Resp{RecvWords: 2, Value: regReply{collided: collided, size: ro.r.Len()}}
			},
		})
		rAddrs = append(rAddrs, ra)
	}
	var overRegions []pim.Addr
	collided := false
	for i, r := range t.sys.Round(rTasks) {
		rep := r.Value.(regReply)
		if rep.collided {
			collided = true
		}
		if rep.size > t.cfg.MetaBlockMax {
			overRegions = append(overRegions, rAddrs[i])
		}
	}
	if collided {
		t.redos++
		t.rehash() // rebuilds all hash structures consistently
		return
	}
	if len(overRegions) > 0 {
		t.splitRegions(overRegions)
	}
}

func idxOfAddr(addrs []pim.Addr, a pim.Addr) int {
	for i, x := range addrs {
		if x == a {
			return i
		}
	}
	return -1
}

// hashOfOversized returns the root hash of the oi-th oversized block
// from the round-1 pull responses.
func (t *PIMTrie) hashOfOversized(resps []pim.Resp, oi int) uint64 {
	return resps[oi].Value.(*blockObj).rootHash
}

// splitRegions pulls each oversized region, splits it with the optimal
// cut (Lemma 4.5) until all pieces fit, redistributes the new pieces,
// updates the master table and re-points the moved blocks.
func (t *PIMTrie) splitRegions(over []pim.Addr) {
	defer t.sys.Phase("meta-split")()
	// Round 1: pull regions.
	tasks := make([]pim.Task, len(over))
	for i, ra := range over {
		ra := ra
		tasks[i] = pim.Task{
			Module:    ra.Module,
			SendWords: 1,
			Run: func(m *pim.Module) pim.Resp {
				ro := m.Get(ra.ID).(*regionObj)
				return pim.Resp{RecvWords: ro.SizeWords(), Value: ro}
			},
		}
	}
	resps := t.sys.Round(tasks)

	type part struct {
		reg *hvm.Region
		cut *hvm.MetaNode
		src int
	}
	var parts []part
	for i, r := range resps {
		ro := r.Value.(*regionObj)
		queue := []*hvm.Region{ro.r}
		for qi := 0; qi < len(queue); qi++ {
			for queue[qi].Len() > t.cfg.MetaBlockMax {
				cut, ps := queue[qi].Split()
				for _, p := range ps {
					parts = append(parts, part{reg: p, cut: cut, src: i})
					queue = append(queue, p)
				}
			}
		}
		t.sys.CPUWork(ro.SizeWords())
	}
	if len(parts) == 0 {
		return
	}
	// Round 2: allocate new regions (the receiver regions shrank in
	// place; charge a write-back resize). Draws serial, size walks
	// parallel.
	alloc := make([]pim.Task, len(parts))
	mods := make([]int, len(parts))
	for i := range mods {
		mods[i] = t.sys.RandModule()
	}
	parallel.For(len(parts), func(i int) {
		p := parts[i]
		alloc[i] = pim.Task{
			Module:    mods[i],
			SendWords: p.reg.SizeWords(),
			Run: func(m *pim.Module) pim.Resp {
				return pim.Resp{RecvWords: 1, Value: m.Alloc(&regionObj{r: p.reg})}
			},
		}
	})
	partAddr := make([]pim.Addr, len(parts))
	for i, r := range t.sys.Round(alloc) {
		partAddr[i] = r.Value.(pim.Addr)
	}
	for i := range parts {
		parts[i].cut.ChildRegions = append(parts[i].cut.ChildRegions, partAddr[i])
	}
	// Resize the shrunken source regions.
	resize := make([]pim.Task, len(over))
	for i, ra := range over {
		ra := ra
		resize[i] = pim.Task{Module: ra.Module, SendWords: 1, Run: func(m *pim.Module) pim.Resp {
			m.Resize(ra.ID)
			return pim.Resp{}
		}}
	}
	t.sys.Round(resize)
	// Master delta for the new region roots.
	add := map[uint64]masterEntry{}
	for i, p := range parts {
		r := p.reg.Root
		add[r.Hash] = masterEntry{Region: partAddr[i], Len: r.Len, SLast: r.SLast, Block: r.Block}
	}
	if err := t.masterDelta(add); err != nil {
		t.redos++
		t.rehash()
		return
	}
	// Round: point the moved blocks at their new regions.
	placed := make([]regionPlacement, len(parts))
	for i := range parts {
		placed[i] = regionPlacement{reg: parts[i].reg, addr: partAddr[i]}
	}
	t.pointBlocksAtRegions(placed)
}

type regionPlacement struct {
	reg  *hvm.Region
	addr pim.Addr
}

// pointBlocksAtRegions updates bo.region for every block whose meta just
// moved to a new region, one parallel round.
func (t *PIMTrie) pointBlocksAtRegions(placed []regionPlacement) {
	var point []pim.Task
	for _, pl := range placed {
		ra := pl.addr
		pl.reg.Walk(func(n *hvm.MetaNode) {
			blk := n.Block
			point = append(point, pim.Task{
				Module:    blk.Module,
				SendWords: 2,
				Run: func(m *pim.Module) pim.Resp {
					m.Get(blk.ID).(*blockObj).region = ra
					return pim.Resp{}
				},
			})
		})
	}
	t.sys.Round(point)
}

// removeBlocks reclaims blocks emptied by deletions: the block's
// meta-node is removed from its region (splitting the region when its
// root goes with multiple child subtrees), the parent's mirror leaf is
// detached and its children slot nulled, and the block object is freed.
// Reclamation cascades to parents that become empty.
func (t *PIMTrie) removeBlocks(emptied []pim.Addr) {
	defer t.sys.Phase("block-remove")()
	for len(emptied) > 0 {
		// Round 1: fetch block info.
		info := make([]pim.Task, len(emptied))
		for i, addr := range emptied {
			addr := addr
			info[i] = pim.Task{
				Module:    addr.Module,
				SendWords: 1,
				Run: func(m *pim.Module) pim.Resp {
					bo := m.Get(addr.ID).(*blockObj)
					return pim.Resp{RecvWords: 4, Value: [3]any{bo.parent, bo.region, bo.rootHash}}
				},
			}
		}
		type victim struct {
			addr, parent, region pim.Addr
			hash                 uint64
		}
		var victims []victim
		for i, r := range t.sys.Round(info) {
			v := r.Value.([3]any)
			victims = append(victims, victim{
				addr: emptied[i], parent: v[0].(pim.Addr), region: v[1].(pim.Addr), hash: v[2].(uint64),
			})
		}
		// Round 2: remove the meta-nodes. Root removals move the master
		// entry to the promoted child and may spawn per-child regions.
		byRegion := map[pim.Addr][]int{}
		var regionOrder []pim.Addr // first-seen order for deterministic emission
		for i, v := range victims {
			if _, seen := byRegion[v.region]; !seen {
				regionOrder = append(regionOrder, v.region)
			}
			byRegion[v.region] = append(byRegion[v.region], i)
		}
		type regionOutcome struct {
			droppedRoots []uint64 // root hashes whose master entries go
			newRoot      *hvm.MetaNode
			spawned      []*hvm.Region
			empty        bool
		}
		rTasks := make([]pim.Task, 0, len(byRegion))
		rAddrs := make([]pim.Addr, 0, len(byRegion))
		for _, ra := range regionOrder {
			ra, idxs := ra, byRegion[ra]
			rTasks = append(rTasks, pim.Task{
				Module:    ra.Module,
				SendWords: len(idxs) + 1,
				Run: func(m *pim.Module) pim.Resp {
					ro := m.Get(ra.ID).(*regionObj)
					var out regionOutcome
					for _, vi := range idxs {
						if ro.r.Root == nil {
							break // region emptied by an earlier victim
						}
						n := ro.r.Lookup(victims[vi].hash)
						if n == nil {
							continue
						}
						wasRoot := n == ro.r.Root
						newRoot, spawned := ro.r.RemoveAny(n)
						out.spawned = append(out.spawned, spawned...)
						if wasRoot {
							out.droppedRoots = append(out.droppedRoots, n.Hash)
							out.newRoot = newRoot
							out.empty = newRoot == nil
						}
					}
					m.Resize(ra.ID)
					return pim.Resp{RecvWords: len(out.droppedRoots) + len(out.spawned) + 4, Value: out}
				},
			})
			rAddrs = append(rAddrs, ra)
		}
		var masterDrop []uint64
		masterAdd := map[uint64]masterEntry{}
		var freeRegions []pim.Addr
		var spawned []*hvm.Region
		for ti, r := range t.sys.Round(rTasks) {
			out := r.Value.(regionOutcome)
			for _, h := range out.droppedRoots {
				// Only drop entries that actually belong to this region (an
				// intermediate promoted root was never registered).
				if e, ok := t.master[h]; ok && e.Region == rAddrs[ti] {
					masterDrop = append(masterDrop, h)
				}
			}
			if out.newRoot != nil {
				nr := out.newRoot
				masterAdd[nr.Hash] = masterEntry{Region: rAddrs[ti], Len: nr.Len, SLast: nr.SLast, Block: nr.Block}
			}
			if out.empty {
				freeRegions = append(freeRegions, rAddrs[ti])
			}
			spawned = append(spawned, out.spawned...)
		}
		// Place spawned regions and register their roots.
		if len(spawned) > 0 {
			alloc := make([]pim.Task, len(spawned))
			mods := make([]int, len(spawned))
			for i := range mods {
				mods[i] = t.sys.RandModule()
			}
			parallel.For(len(spawned), func(i int) {
				reg := spawned[i]
				alloc[i] = pim.Task{
					Module:    mods[i],
					SendWords: reg.SizeWords(),
					Run: func(m *pim.Module) pim.Resp {
						return pim.Resp{RecvWords: 1, Value: m.Alloc(&regionObj{r: reg})}
					},
				}
			})
			placed := make([]regionPlacement, len(spawned))
			for i, r := range t.sys.Round(alloc) {
				placed[i] = regionPlacement{reg: spawned[i], addr: r.Value.(pim.Addr)}
				root := spawned[i].Root
				masterAdd[root.Hash] = masterEntry{
					Region: placed[i].addr, Len: root.Len, SLast: root.SLast, Block: root.Block,
				}
			}
			t.pointBlocksAtRegions(placed)
		}
		if len(masterDrop) > 0 || len(masterAdd) > 0 {
			t.masterRemoveAndAdd(masterDrop, masterAdd)
		}
		if len(freeRegions) > 0 {
			frees := make([]pim.Task, len(freeRegions))
			for i, ra := range freeRegions {
				ra := ra
				frees[i] = pim.Task{Module: ra.Module, SendWords: 1, Run: func(m *pim.Module) pim.Resp {
					m.Free(ra.ID)
					return pim.Resp{}
				}}
			}
			t.sys.Round(frees)
		}
		// Round 3: free the blocks, detach parent mirrors; collect parents
		// that became empty.
		var free []pim.Task
		type parentFix struct {
			parent, child pim.Addr
		}
		var fixes []parentFix
		for _, v := range victims {
			addr := v.addr
			if t.recoverable {
				delete(t.blockDir, addr)
			}
			free = append(free, pim.Task{Module: addr.Module, SendWords: 1, Run: func(m *pim.Module) pim.Resp {
				m.Free(addr.ID)
				return pim.Resp{}
			}})
			if !v.parent.IsNil() {
				fixes = append(fixes, parentFix{parent: v.parent, child: v.addr})
			}
		}
		var nextEmpty []pim.Addr
		fixTasks := make([]pim.Task, len(fixes))
		for i, f := range fixes {
			f := f
			fixTasks[i] = pim.Task{
				Module:    f.parent.Module,
				SendWords: 2,
				Run: func(m *pim.Module) pim.Resp {
					bo := m.Get(f.parent.ID).(*blockObj)
					for ci, c := range bo.children {
						if c == f.child {
							bo.children[ci] = pim.NilAddr
							var mirror *trie.Node
							bo.tr.WalkPreorder(func(n *trie.Node) bool {
								if n.Mirror && int(n.Value) == ci {
									mirror = n
									return false
								}
								return true
							})
							if mirror != nil {
								bo.tr.RemoveLeaf(mirror)
							}
							break
						}
					}
					m.Resize(f.parent.ID)
					live := 0
					for _, c := range bo.children {
						if !c.IsNil() {
							live++
						}
					}
					empty := bo.tr.KeyCount() == 0 && live == 0
					return pim.Resp{RecvWords: 1, Value: empty}
				},
			}
		}
		t.sys.Round(free)
		for i, r := range t.sys.Round(fixTasks) {
			if r.Value.(bool) && fixes[i].parent != t.rootBlock {
				nextEmpty = append(nextEmpty, fixes[i].parent)
			}
		}
		emptied = dedupeAddrs(nextEmpty)
	}
}

func dedupeAddrs(as []pim.Addr) []pim.Addr {
	seen := map[pim.Addr]bool{}
	out := as[:0]
	for _, a := range as {
		if !seen[a] {
			seen[a] = true
			out = append(out, a)
		}
	}
	return out
}
