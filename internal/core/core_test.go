package core

import (
	"math/rand"
	"strings"
	"testing"

	"github.com/pimlab/pimtrie/internal/bitstr"
	"github.com/pimlab/pimtrie/internal/pim"
	"github.com/pimlab/pimtrie/internal/trie"
)

// newTestTrie builds a PIM-trie on a fresh system with deterministic
// seeds and test-friendly parameters.
func newTestTrie(p int, cfg Config) (*PIMTrie, *pim.System) {
	sys := pim.NewSystem(p, pim.WithSeed(99))
	return New(sys, cfg), sys
}

func randomKey(r *rand.Rand, maxLen int) bitstr.String {
	n := r.Intn(maxLen + 1)
	var b strings.Builder
	for i := 0; i < n; i++ {
		b.WriteByte('0' + byte(r.Intn(2)))
	}
	return bitstr.MustParse(b.String())
}

// skewedKeys generates keys sharing deep common prefixes (the adversarial
// shape for radix indexes).
func skewedKeys(r *rand.Rand, n, prefixLen, tailLen int) []bitstr.String {
	prefix := randomKey(r, 0)
	for prefix.Len() < prefixLen {
		prefix = prefix.AppendBit(byte(r.Intn(2)))
	}
	out := make([]bitstr.String, n)
	for i := range out {
		out[i] = prefix.Concat(randomKey(r, tailLen))
	}
	return out
}

// buildBoth creates a PIM-trie and an oracle trie holding the same data.
func buildBoth(t *testing.T, p int, cfg Config, keys []bitstr.String) (*PIMTrie, *trie.Trie) {
	t.Helper()
	pt, _ := newTestTrie(p, cfg)
	oracle := trie.New()
	values := make([]uint64, len(keys))
	for i, k := range keys {
		values[i] = uint64(i + 1)
		oracle.Insert(k, values[i])
	}
	pt.Build(keys, values)
	if pt.KeyCount() != oracle.KeyCount() {
		t.Fatalf("KeyCount = %d, oracle %d", pt.KeyCount(), oracle.KeyCount())
	}
	return pt, oracle
}

func checkLCP(t *testing.T, pt *PIMTrie, oracle *trie.Trie, queries []bitstr.String) {
	t.Helper()
	got := pt.LCP(queries)
	for i, q := range queries {
		want := oracle.LCPLen(q)
		if got[i] != want {
			t.Fatalf("LCP(%q) = %d, want %d", q, got[i], want)
		}
	}
}

func checkGet(t *testing.T, pt *PIMTrie, oracle *trie.Trie, queries []bitstr.String) {
	t.Helper()
	vals, found := pt.Get(queries)
	for i, q := range queries {
		wv, wok := oracle.Get(q)
		if found[i] != wok || (wok && vals[i] != wv) {
			t.Fatalf("Get(%q) = %d,%v want %d,%v", q, vals[i], found[i], wv, wok)
		}
	}
}

func TestBuildAndLCPSmall(t *testing.T) {
	keys := []bitstr.String{
		bitstr.MustParse("00001"),
		bitstr.MustParse("00001101"),
		bitstr.MustParse("10110000"),
		bitstr.MustParse("1011111"),
		bitstr.MustParse("111"),
	}
	pt, oracle := buildBoth(t, 4, Config{}, keys)
	queries := []bitstr.String{
		bitstr.MustParse("00001001"),
		bitstr.MustParse("101001"),
		bitstr.MustParse("101011"),
		bitstr.MustParse("00001101"),
		bitstr.MustParse("1"),
		bitstr.MustParse("0"),
		bitstr.Empty,
		bitstr.MustParse("11111111"),
	}
	checkLCP(t, pt, oracle, queries)
	checkGet(t, pt, oracle, keys)
	checkGet(t, pt, oracle, queries)
}

func TestBuildAndLCPRandom(t *testing.T) {
	for _, p := range []int{1, 4, 16} {
		r := rand.New(rand.NewSource(int64(p)))
		keys := make([]bitstr.String, 400)
		for i := range keys {
			keys[i] = randomKey(r, 120)
			if i > 0 && r.Intn(3) == 0 {
				keys[i] = keys[r.Intn(i)].Concat(randomKey(r, 40))
			}
		}
		pt, oracle := buildBoth(t, p, Config{}, keys)
		var queries []bitstr.String
		for i := 0; i < 300; i++ {
			switch i % 3 {
			case 0:
				queries = append(queries, randomKey(r, 150))
			case 1:
				k := keys[r.Intn(len(keys))]
				queries = append(queries, k.Prefix(r.Intn(k.Len()+1)))
			default:
				queries = append(queries, keys[r.Intn(len(keys))].Concat(randomKey(r, 20)))
			}
		}
		checkLCP(t, pt, oracle, queries)
		checkGet(t, pt, oracle, queries)
	}
}

func TestBuildDeepSkewedData(t *testing.T) {
	// A long spine with branches: blocks chain deeply; matching must hop
	// through many block roots.
	r := rand.New(rand.NewSource(7))
	keys := skewedKeys(r, 200, 600, 80)
	pt, oracle := buildBoth(t, 8, Config{}, keys)
	var queries []bitstr.String
	for i := 0; i < 150; i++ {
		k := keys[r.Intn(len(keys))]
		switch i % 3 {
		case 0:
			queries = append(queries, k)
		case 1:
			queries = append(queries, k.Prefix(r.Intn(k.Len()+1)))
		default:
			queries = append(queries, k.Prefix(r.Intn(k.Len())).Concat(randomKey(r, 30)))
		}
	}
	checkLCP(t, pt, oracle, queries)
	checkGet(t, pt, oracle, queries)
}

func TestInsertMatchesOracle(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	pt, _ := newTestTrie(8, Config{})
	oracle := trie.New()
	var pool []bitstr.String
	for batchNo := 0; batchNo < 8; batchNo++ {
		n := 50 + r.Intn(100)
		keys := make([]bitstr.String, n)
		values := make([]uint64, n)
		for i := range keys {
			keys[i] = randomKey(r, 100)
			if len(pool) > 0 && r.Intn(3) == 0 {
				keys[i] = pool[r.Intn(len(pool))].Concat(randomKey(r, 30))
			}
			values[i] = r.Uint64() >> 1
			pool = append(pool, keys[i])
		}
		pt.Insert(keys, values)
		for i := range keys {
			oracle.Insert(keys[i], values[i])
		}
		if pt.KeyCount() != oracle.KeyCount() {
			t.Fatalf("batch %d: KeyCount %d vs oracle %d", batchNo, pt.KeyCount(), oracle.KeyCount())
		}
		// Probe with stored keys, prefixes, and randoms.
		var queries []bitstr.String
		for i := 0; i < 60; i++ {
			switch i % 3 {
			case 0:
				queries = append(queries, pool[r.Intn(len(pool))])
			case 1:
				k := pool[r.Intn(len(pool))]
				queries = append(queries, k.Prefix(r.Intn(k.Len()+1)))
			default:
				queries = append(queries, randomKey(r, 120))
			}
		}
		checkLCP(t, pt, oracle, queries)
		checkGet(t, pt, oracle, queries)
	}
}

func TestInsertFromEmpty(t *testing.T) {
	// Insert without Build: everything funnels through the root block and
	// must trigger block splits.
	r := rand.New(rand.NewSource(13))
	pt, _ := newTestTrie(4, Config{})
	oracle := trie.New()
	keys := make([]bitstr.String, 300)
	values := make([]uint64, 300)
	for i := range keys {
		keys[i] = randomKey(r, 90)
		values[i] = uint64(i)
		oracle.Insert(keys[i], values[i])
	}
	pt.Insert(keys, values)
	if pt.KeyCount() != oracle.KeyCount() {
		t.Fatalf("KeyCount %d vs %d", pt.KeyCount(), oracle.KeyCount())
	}
	st := pt.CollectStats()
	if st.Blocks < 2 {
		t.Fatalf("expected block splits, got %d blocks", st.Blocks)
	}
	checkLCP(t, pt, oracle, keys)
	checkGet(t, pt, oracle, keys)
}

func TestInsertDuplicatesLastWins(t *testing.T) {
	pt, _ := newTestTrie(2, Config{})
	k := bitstr.MustParse("0101")
	pt.Insert([]bitstr.String{k, k, k}, []uint64{1, 2, 3})
	vals, found := pt.Get([]bitstr.String{k})
	if !found[0] || vals[0] != 3 {
		t.Fatalf("Get = %d,%v", vals[0], found[0])
	}
	if pt.KeyCount() != 1 {
		t.Fatalf("KeyCount = %d", pt.KeyCount())
	}
}

func TestInsertEmptyKey(t *testing.T) {
	pt, _ := newTestTrie(2, Config{})
	pt.Insert([]bitstr.String{bitstr.Empty}, []uint64{42})
	vals, found := pt.Get([]bitstr.String{bitstr.Empty})
	if !found[0] || vals[0] != 42 {
		t.Fatal("empty key lost")
	}
}

func TestDeleteMatchesOracle(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	keys := make([]bitstr.String, 400)
	for i := range keys {
		keys[i] = randomKey(r, 80)
		if i > 0 && r.Intn(4) == 0 {
			keys[i] = keys[r.Intn(i)].Concat(randomKey(r, 20))
		}
	}
	pt, oracle := buildBoth(t, 8, Config{}, keys)
	// Delete batches mixing present and absent keys.
	for round := 0; round < 4; round++ {
		var batch []bitstr.String
		for i := 0; i < 80; i++ {
			if r.Intn(2) == 0 {
				batch = append(batch, keys[r.Intn(len(keys))])
			} else {
				batch = append(batch, randomKey(r, 90))
			}
		}
		got := pt.Delete(batch)
		for i, k := range batch {
			want := oracle.Delete(k)
			if got[i] != want {
				t.Fatalf("round %d: Delete(%q) = %v, want %v", round, k, got[i], want)
			}
		}
		if pt.KeyCount() != oracle.KeyCount() {
			t.Fatalf("round %d: KeyCount %d vs %d", round, pt.KeyCount(), oracle.KeyCount())
		}
		var queries []bitstr.String
		for i := 0; i < 60; i++ {
			queries = append(queries, keys[r.Intn(len(keys))])
		}
		checkLCP(t, pt, oracle, queries)
		checkGet(t, pt, oracle, queries)
	}
}

func TestDeleteEverything(t *testing.T) {
	r := rand.New(rand.NewSource(19))
	keys := make([]bitstr.String, 150)
	seen := map[string]bool{}
	for i := range keys {
		for {
			keys[i] = randomKey(r, 60)
			if !seen[keys[i].String()] {
				seen[keys[i].String()] = true
				break
			}
		}
	}
	pt, oracle := buildBoth(t, 4, Config{}, keys)
	res := pt.Delete(keys)
	for i, ok := range res {
		if !ok {
			t.Fatalf("Delete(%q) = false", keys[i])
		}
	}
	if pt.KeyCount() != 0 {
		t.Fatalf("KeyCount = %d after full delete", pt.KeyCount())
	}
	_ = oracle
	// The index must still answer queries correctly (all LCPs 0 except
	// the empty prefix).
	got := pt.LCP(keys[:20])
	for i, g := range got {
		if g != 0 {
			t.Fatalf("LCP(%q) = %d after full delete", keys[i], g)
		}
	}
	// And accept re-inserts.
	pt.Insert(keys[:50], make([]uint64, 50))
	if pt.KeyCount() != 50 {
		t.Fatalf("KeyCount = %d after re-insert", pt.KeyCount())
	}
}

func TestSubtreeQueryMatchesOracle(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	keys := make([]bitstr.String, 300)
	for i := range keys {
		keys[i] = randomKey(r, 60)
		if i > 0 && r.Intn(3) == 0 {
			keys[i] = keys[r.Intn(i)].Concat(randomKey(r, 15))
		}
	}
	pt, oracle := buildBoth(t, 8, Config{}, keys)
	prefixes := []bitstr.String{bitstr.Empty}
	for i := 0; i < 40; i++ {
		k := keys[r.Intn(len(keys))]
		prefixes = append(prefixes, k.Prefix(r.Intn(k.Len()+1)))
		prefixes = append(prefixes, randomKey(r, 30))
	}
	for _, pre := range prefixes {
		got := pt.SubtreeQuery(pre)
		want := oracle.SubtreeKeys(pre)
		if len(got) != len(want) {
			t.Fatalf("SubtreeQuery(%q): %d results, want %d", pre, len(got), len(want))
		}
		for i := range want {
			if !bitstr.Equal(got[i].Key, want[i].Key) || got[i].Value != want[i].Value {
				t.Fatalf("SubtreeQuery(%q)[%d] = (%q,%d), want (%q,%d)",
					pre, i, got[i].Key, got[i].Value, want[i].Key, want[i].Value)
			}
		}
	}
}

func TestMixedWorkloadLongRun(t *testing.T) {
	// Interleaved insert/delete/query batches against the oracle, with
	// block splits and removals exercised along the way.
	r := rand.New(rand.NewSource(29))
	pt, _ := newTestTrie(8, Config{BlockWords: 32})
	oracle := trie.New()
	var pool []bitstr.String
	for step := 0; step < 12; step++ {
		switch step % 3 {
		case 0: // insert
			n := 60 + r.Intn(60)
			keys := make([]bitstr.String, n)
			values := make([]uint64, n)
			for i := range keys {
				keys[i] = randomKey(r, 70)
				if len(pool) > 0 && r.Intn(2) == 0 {
					keys[i] = pool[r.Intn(len(pool))].Concat(randomKey(r, 25))
				}
				values[i] = r.Uint64() >> 1
				pool = append(pool, keys[i])
				oracle.Insert(keys[i], values[i])
			}
			pt.Insert(keys, values)
		case 1: // delete
			if len(pool) == 0 {
				continue
			}
			n := 30 + r.Intn(30)
			batch := make([]bitstr.String, n)
			for i := range batch {
				batch[i] = pool[r.Intn(len(pool))]
			}
			got := pt.Delete(batch)
			for i, k := range batch {
				if got[i] != oracle.Delete(k) {
					t.Fatalf("step %d: delete disagreement on %q", step, k)
				}
			}
		default: // queries
			var queries []bitstr.String
			for i := 0; i < 50; i++ {
				if len(pool) > 0 && i%2 == 0 {
					queries = append(queries, pool[r.Intn(len(pool))])
				} else {
					queries = append(queries, randomKey(r, 90))
				}
			}
			checkLCP(t, pt, oracle, queries)
			checkGet(t, pt, oracle, queries)
		}
		if pt.KeyCount() != oracle.KeyCount() {
			t.Fatalf("step %d: KeyCount %d vs %d", step, pt.KeyCount(), oracle.KeyCount())
		}
	}
}

func TestNarrowHashTriggersRehashButStaysCorrect(t *testing.T) {
	// A 16-bit hash over a few hundred strings makes collisions likely;
	// verification must catch them, re-hash, and still produce correct
	// results.
	r := rand.New(rand.NewSource(31))
	keys := make([]bitstr.String, 250)
	for i := range keys {
		keys[i] = randomKey(r, 100)
		if i > 0 && r.Intn(3) == 0 {
			keys[i] = keys[r.Intn(i)].Concat(randomKey(r, 30))
		}
	}
	pt, _ := newTestTrie(4, Config{HashWidth: 16, MaxRedo: 60})
	oracle := trie.New()
	values := make([]uint64, len(keys))
	for i := range keys {
		values[i] = uint64(i)
		oracle.Insert(keys[i], values[i])
	}
	pt.Build(keys, values)
	var queries []bitstr.String
	for i := 0; i < 200; i++ {
		queries = append(queries, randomKey(r, 120))
		k := keys[r.Intn(len(keys))]
		queries = append(queries, k.Prefix(r.Intn(k.Len()+1)))
	}
	checkLCP(t, pt, oracle, queries)
	checkGet(t, pt, oracle, queries)
	t.Logf("rehashes=%d redos=%d", pt.Rehashes(), pt.Redos())
}

func TestSpaceLinear(t *testing.T) {
	// Q_D = O(L_D/w + n_D): total module space must scale linearly in the
	// data, not with P or key length beyond L/w.
	r := rand.New(rand.NewSource(37))
	keys := make([]bitstr.String, 1000)
	for i := range keys {
		keys[i] = randomKey(r, 128)
	}
	pt, sys := newTestTrie(16, Config{})
	values := make([]uint64, len(keys))
	pt.Build(keys, values)
	total, _ := sys.SpaceWords()
	// Data is ≤ 1000 keys · ~2 words + structure overhead.
	if total > 60*len(keys) {
		t.Fatalf("space %d words for %d keys", total, len(keys))
	}
}

func TestCollectStats(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	keys := make([]bitstr.String, 500)
	for i := range keys {
		keys[i] = randomKey(r, 100)
	}
	pt, _ := newTestTrie(8, Config{})
	pt.Build(keys, make([]uint64, len(keys)))
	st := pt.CollectStats()
	if st.Blocks < 5 || st.Regions < 1 || st.SpaceWords == 0 {
		t.Fatalf("implausible stats: %+v", st)
	}
}

func TestSubtreeQueryBatchMatchesSingles(t *testing.T) {
	r := rand.New(rand.NewSource(47))
	keys := make([]bitstr.String, 250)
	for i := range keys {
		keys[i] = randomKey(r, 50)
		if i > 0 && r.Intn(3) == 0 {
			keys[i] = keys[r.Intn(i)].Concat(randomKey(r, 12))
		}
	}
	pt, oracle := buildBoth(t, 8, Config{}, keys)
	var prefixes []bitstr.String
	for i := 0; i < 25; i++ {
		k := keys[r.Intn(len(keys))]
		prefixes = append(prefixes, k.Prefix(r.Intn(k.Len()+1)))
		prefixes = append(prefixes, randomKey(r, 20))
	}
	prefixes = append(prefixes, bitstr.Empty, prefixes[0]) // incl. duplicate
	before := pt.System().Metrics()
	batch := pt.SubtreeQueryBatch(prefixes)
	batchRounds := pt.System().Metrics().Sub(before).Rounds
	for i, pre := range prefixes {
		want := oracle.SubtreeKeys(pre)
		if len(batch[i]) != len(want) {
			t.Fatalf("batch[%d] (%q): %d results, want %d", i, pre, len(batch[i]), len(want))
		}
		for j := range want {
			if !bitstr.Equal(batch[i][j].Key, want[j].Key) || batch[i][j].Value != want[j].Value {
				t.Fatalf("batch[%d][%d] mismatch", i, j)
			}
		}
	}
	// The whole batch must share rounds: far fewer than one pass per query.
	if batchRounds > 4*int64(len(prefixes)) {
		t.Fatalf("batch used %d rounds for %d queries", batchRounds, len(prefixes))
	}
}

func TestSubtreeQueryBatchEmptyAndMissing(t *testing.T) {
	pt, _ := newTestTrie(4, Config{})
	pt.Build([]bitstr.String{bitstr.MustParse("0101")}, []uint64{1})
	res := pt.SubtreeQueryBatch([]bitstr.String{
		bitstr.MustParse("11"), // absent
		bitstr.MustParse("01"), // present
	})
	if len(res[0]) != 0 || len(res[1]) != 1 {
		t.Fatalf("results: %d/%d", len(res[0]), len(res[1]))
	}
}

func TestValidateAfterEveryPhase(t *testing.T) {
	r := rand.New(rand.NewSource(53))
	pt, _ := newTestTrie(8, Config{BlockWords: 32})
	oracle := trie.New()
	check := func(phase string) {
		t.Helper()
		if err := pt.Validate(); err != nil {
			t.Fatalf("%s: %v", phase, err)
		}
	}
	check("empty")
	keys := make([]bitstr.String, 600)
	values := make([]uint64, 600)
	for i := range keys {
		keys[i] = randomKey(r, 120)
		if i > 0 && r.Intn(3) == 0 {
			keys[i] = keys[r.Intn(i)].Concat(randomKey(r, 30))
		}
		values[i] = uint64(i)
		oracle.Insert(keys[i], values[i])
	}
	pt.Build(keys, values)
	check("after build")
	fresh := make([]bitstr.String, 300)
	for i := range fresh {
		fresh[i] = randomKey(r, 120)
		oracle.Insert(fresh[i], 1)
	}
	pt.Insert(fresh, make([]uint64, len(fresh)))
	check("after insert (splits)")
	var victims []bitstr.String
	victims = append(victims, keys[:300]...)
	victims = append(victims, fresh[:150]...)
	got := pt.Delete(victims)
	for i, k := range victims {
		if got[i] != oracle.Delete(k) {
			t.Fatalf("delete disagreement on %q", k)
		}
	}
	check("after delete (removals)")
	if pt.KeyCount() != oracle.KeyCount() {
		t.Fatalf("KeyCount %d vs %d", pt.KeyCount(), oracle.KeyCount())
	}
	pt.LCP(keys[:100])
	check("after queries")
}
