package core

// White-box tests of the matching machinery: piece decomposition,
// local matching, suffix windows and chunking.

import (
	"math/rand"
	"testing"

	"github.com/pimlab/pimtrie/internal/bitstr"
	"github.com/pimlab/pimtrie/internal/hashing"
	"github.com/pimlab/pimtrie/internal/querytrie"
	"github.com/pimlab/pimtrie/internal/trie"
)

func prepFor(t *PIMTrie, batch []bitstr.String) *prep {
	return t.prepare(batch)
}

func findEdgePos(qt *querytrie.QueryTrie, s bitstr.String) qpos {
	// Locate the position representing string s in the query trie.
	n := qt.Trie.Root()
	pos := 0
	for pos < s.Len() {
		e := n.Child[s.BitAt(pos)]
		if e == nil {
			panic("findEdgePos: string not on trie")
		}
		l := bitstr.LCP(e.Label, s.Suffix(pos))
		if pos+l == s.Len() {
			return onEdge(e, l)
		}
		if l < e.Label.Len() {
			panic("findEdgePos: string diverges")
		}
		pos += l
		n = e.To
	}
	return atNode(n)
}

func TestDecomposeSinglePiece(t *testing.T) {
	pt, _ := newTestTrie(2, Config{})
	p := prepFor(pt, []bitstr.String{
		bitstr.MustParse("0101"),
		bitstr.MustParse("0110"),
		bitstr.MustParse("111"),
	})
	root := hitRec{pos: atNode(p.qt.Trie.Root()), info: t2meta(pt)}
	pieces := pt.decompose(p, []hitRec{root}, false)
	if len(pieces) != 1 {
		t.Fatalf("pieces = %d", len(pieces))
	}
	pc := pieces[0]
	// The single piece owns every compressed node and every edge bit.
	if len(pc.nodes) != p.qt.Trie.NodeCount() {
		t.Fatalf("piece owns %d of %d nodes", len(pc.nodes), p.qt.Trie.NodeCount())
	}
	bits := 0
	for _, s := range pc.segs {
		bits += s.end - s.off
	}
	if bits != p.qt.Trie.EdgeBits() {
		t.Fatalf("piece covers %d of %d bits", bits, p.qt.Trie.EdgeBits())
	}
	if len(pc.childKeys) != 0 {
		t.Fatalf("unexpected stops: %v", pc.childKeys)
	}
}

func t2meta(pt *PIMTrie) metaInfo {
	return pt.masterInfo(pt.h.Out(hashing.EmptyValue()))
}

func TestDecomposeMidEdgeHit(t *testing.T) {
	pt, _ := newTestTrie(2, Config{})
	p := prepFor(pt, []bitstr.String{bitstr.MustParse("00001111")})
	root := hitRec{pos: atNode(p.qt.Trie.Root()), info: t2meta(pt)}
	// A hit 3 bits down the single edge.
	hitPos := findEdgePos(p.qt, bitstr.MustParse("000"))
	mid := hitRec{pos: hitPos, depth: 3, val: pt.h.Hash(bitstr.MustParse("000")), info: t2meta(pt)}
	pieces := pt.decompose(p, []hitRec{root, mid}, false)
	if len(pieces) != 2 {
		t.Fatalf("pieces = %d", len(pieces))
	}
	var rootPiece, midPiece *piece
	for _, pc := range pieces {
		if pc.hit.depth == 0 {
			rootPiece = pc
		} else {
			midPiece = pc
		}
	}
	// Root piece covers bits (0,3], stops at the hit; mid piece covers
	// (3,8] and owns the leaf node.
	bitsOf := func(pc *piece) int {
		n := 0
		for _, s := range pc.segs {
			n += s.end - s.off
		}
		return n
	}
	if bitsOf(rootPiece) != 3 || bitsOf(midPiece) != 5 {
		t.Fatalf("bit split %d/%d, want 3/5", bitsOf(rootPiece), bitsOf(midPiece))
	}
	if len(rootPiece.childKeys) != 1 {
		t.Fatalf("root piece stops: %v", rootPiece.childKeys)
	}
	if len(midPiece.nodes) != 1 {
		t.Fatalf("mid piece owns %d nodes", len(midPiece.nodes))
	}
	// Segment hash values must be consistent: probing the mid piece from
	// its startVal reproduces the full-string hashes.
	seg := midPiece.segs[0]
	v := seg.startVal
	for i := seg.off; i < seg.end; i++ {
		v = pt.h.ExtendBit(v, seg.edge.Label.BitAt(i))
	}
	if v != pt.h.Hash(bitstr.MustParse("00001111")) {
		t.Fatal("segment startVal chain broken")
	}
}

func TestMatchPieceExactAndDivergence(t *testing.T) {
	// Data block: keys 0101, 0110 relative to its root.
	block := trie.New()
	block.Insert(bitstr.MustParse("0101"), 7)
	block.Insert(bitstr.MustParse("0110"), 8)
	// Query trie: one key equal to a stored key, one diverging mid-edge.
	qt := querytrie.Build([]bitstr.String{
		bitstr.MustParse("0101"),
		bitstr.MustParse("0111"),
	})
	rep := matchPiece(atNode(qt.Trie.Root()), nil, block, func(int) {})
	n0 := qt.Nodes[0] // "0101"
	n1 := qt.Nodes[1] // "0111"
	if rep.reach[n0] != 4 {
		t.Fatalf("reach(0101) = %d", rep.reach[n0])
	}
	if ex, ok := rep.exact[n0]; !ok || !ex.hasValue || ex.value != 7 {
		t.Fatalf("exact(0101) = %+v, %v", rep.exact[n0], ok)
	}
	// "0111" shares "011" with "0110": reach 3, no exact hit.
	if rep.reach[n1] != 3 {
		t.Fatalf("reach(0111) = %d", rep.reach[n1])
	}
	if ex, ok := rep.exact[n1]; ok && ex.hasValue {
		t.Fatalf("unexpected exact for 0111: %+v", ex)
	}
}

func TestMatchPieceStopsAtMirror(t *testing.T) {
	block := trie.New()
	block.Insert(bitstr.MustParse("0011"), 1)
	// Turn the leaf into a mirror (child block root replica).
	var leaf *trie.Node
	block.WalkPreorder(func(n *trie.Node) bool {
		if n.HasValue {
			leaf = n
		}
		return true
	})
	leaf.HasValue = false
	leaf.Mirror = true

	qt := querytrie.Build([]bitstr.String{bitstr.MustParse("001100")})
	rep := matchPiece(atNode(qt.Trie.Root()), nil, block, func(int) {})
	// The walk must stop at the mirror: reach = 4 (conservative; a deeper
	// pair owns the continuation), never beyond.
	if got := rep.reach[qt.Nodes[0]]; got != 4 {
		t.Fatalf("reach through mirror = %d, want 4", got)
	}
	if ex := rep.exact[qt.Nodes[0]]; ex.hasValue {
		t.Fatal("mirror reported a value")
	}
}

func TestMatchPieceRespectsStops(t *testing.T) {
	block := trie.New()
	block.Insert(bitstr.MustParse("000111"), 9)
	qt := querytrie.Build([]bitstr.String{bitstr.MustParse("000111")})
	// Stop 2 bits down the (single) query edge.
	stopPos := findEdgePos(qt, bitstr.MustParse("00"))
	stops := map[qposKey]bool{stopPos.key(): true}
	rep := matchPiece(atNode(qt.Trie.Root()), stops, block, func(int) {})
	// The piece must not claim anything past the stop: the leaf gets no
	// reach entry from this pair (the deeper pair owns it) or at most the
	// stop depth.
	if d, ok := rep.reach[qt.Nodes[0]]; ok && d > 2 {
		t.Fatalf("piece crossed its stop: reach %d", d)
	}
}

func TestSuffixWindow(t *testing.T) {
	tr := trie.New()
	long := bitstr.MustParse("0101010101" + "1100110011" + "0000111100")
	tr.Insert(long, 1)
	tr.Insert(bitstr.MustParse("01010"), 2) // forces a branch at depth 5
	// Find the edge below the node at depth 5 and take a window there.
	var e *trie.Edge
	tr.WalkPreorder(func(n *trie.Node) bool {
		if n.Depth == 5 {
			for b := 0; b < 2; b++ {
				if c := n.Child[b]; c != nil && c.Label.Len() > 10 {
					e = c
				}
			}
		}
		return true
	})
	if e == nil {
		t.Fatal("test setup: edge not found")
	}
	for _, off := range []int{1, 5, e.Label.Len()} {
		depth := e.From.Depth + off
		win := suffixWindow(e, off, 8)
		wantLen := 8
		if depth < 8 {
			wantLen = depth
		}
		if win.Len() != wantLen {
			t.Fatalf("window length %d at depth %d", win.Len(), depth)
		}
		want := long.Prefix(depth)
		want = want.Suffix(want.Len() - wantLen)
		if !bitstr.Equal(win, want) {
			t.Fatalf("window at depth %d = %q, want %q", depth, win, want)
		}
	}
}

func TestChunkEdgesCoverEverything(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	pt, _ := newTestTrie(2, Config{MasterChunkWords: 16})
	batch := make([]bitstr.String, 200)
	for i := range batch {
		batch[i] = randomKey(r, 200)
	}
	p := prepFor(pt, batch)
	chunks := pt.chunkEdges(p)
	seen := map[*trie.Edge]bool{}
	totalBits := 0
	for _, ch := range chunks {
		w := 0
		for _, s := range ch {
			if seen[s.edge] {
				t.Fatal("edge chunked twice")
			}
			seen[s.edge] = true
			totalBits += s.end - s.off
			w += s.words()
			if s.startVal != p.hashes[s.edge.From.Index] {
				t.Fatal("segment startVal mismatch")
			}
		}
		// Chunks respect the bound up to one oversized tail edge.
		if w > 2*pt.cfg.MasterChunkWords+4 {
			t.Fatalf("chunk of %d words (bound %d)", w, pt.cfg.MasterChunkWords)
		}
	}
	if totalBits != p.qt.Trie.EdgeBits() {
		t.Fatalf("chunks cover %d of %d bits", totalBits, p.qt.Trie.EdgeBits())
	}
}

func TestDedupeHits(t *testing.T) {
	tr := trie.New()
	tr.Insert(bitstr.MustParse("0101"), 1)
	var e *trie.Edge
	tr.WalkPreorder(func(n *trie.Node) bool {
		for b := 0; b < 2; b++ {
			if c := n.Child[b]; c != nil {
				e = c
			}
		}
		return true
	})
	h1 := hitRec{pos: onEdge(e, 2), depth: 2}
	h2 := hitRec{pos: onEdge(e, 2), depth: 2}
	h3 := hitRec{pos: onEdge(e, 3), depth: 3}
	pt, _ := newTestTrie(2, Config{})
	out := pt.dedupeHits([]hitRec{h1, h2, h3})
	if len(out) != 2 {
		t.Fatalf("dedupe kept %d", len(out))
	}
}
