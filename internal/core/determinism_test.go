package core

// Determinism regression test for the wall-clock fast path: the PIM
// Model metrics and every query result must be bit-identical no matter
// how many host workers or module executors run. Parallelism is an
// implementation detail of the simulator; the model's costs are defined
// by the round structure alone.

import (
	"reflect"
	"testing"

	"github.com/pimlab/pimtrie/internal/bitstr"
	"github.com/pimlab/pimtrie/internal/parallel"
	"github.com/pimlab/pimtrie/internal/pim"
	"github.com/pimlab/pimtrie/internal/trie"
	"github.com/pimlab/pimtrie/internal/workload"
)

// suiteResult captures everything observable from one full run of the
// operation mix.
type suiteResult struct {
	metrics  pim.Metrics
	lcp1     []int
	values   []uint64
	found    []bool
	deleted  []bool
	subtrees [][]trie.KV
	lcp2     []int
	stats    Stats
}

// runOpSuite drives Build, LCP, Insert, Get, Delete, SubtreeQueryBatch
// and a final LCP with both the module-executor fan-out and the
// host-side worker count fixed to par. Extra system options (e.g. a
// fault plan) apply on top of the fixed seed.
func runOpSuite(par int, sysOpts ...pim.Option) (suiteResult, Health) {
	return runOpSuiteCfg(par, Config{HashSeed: 1}, sysOpts...)
}

func runOpSuiteCfg(par int, cfg Config, sysOpts ...pim.Option) (suiteResult, Health) {
	prev := parallel.SetMaxProcs(par)
	defer parallel.SetMaxProcs(prev)

	const (
		p     = 16
		n     = 3000
		batch = 256
	)
	g := workload.New(1)
	keys := g.VarLen(n, 48, 160)
	values := g.Values(len(keys))
	queries := g.PrefixQueries(keys, batch, 16)
	fresh := g.FixedLen(batch, 96)
	freshVals := g.Values(len(fresh))

	opts := append([]pim.Option{pim.WithSeed(1), pim.WithMaxParallelism(par)}, sysOpts...)
	sys := pim.NewSystem(p, opts...)
	defer sys.Close()
	pt := New(sys, cfg)
	pt.Build(keys, values)

	var r suiteResult
	r.lcp1 = pt.LCP(queries)
	pt.Insert(fresh, freshVals)
	r.values, r.found = pt.Get(fresh)
	r.deleted = pt.Delete(keys[:batch])
	prefixes := make([]bitstr.String, 8)
	for i := range prefixes {
		prefixes[i] = keys[batch+i*13].Prefix(24)
	}
	r.subtrees = pt.SubtreeQueryBatch(prefixes)
	r.lcp2 = pt.LCP(queries)
	r.metrics = sys.Metrics()
	r.stats = pt.CollectStats()
	return r, pt.Health()
}

func TestDeterminismAcrossParallelism(t *testing.T) {
	serial, _ := runOpSuite(1)
	serialAgain, _ := runOpSuite(1)
	wide, _ := runOpSuite(8)

	if !reflect.DeepEqual(serial, serialAgain) {
		t.Fatalf("serial run is not reproducible with a fixed seed")
	}
	if !reflect.DeepEqual(serial.metrics, wide.metrics) {
		t.Errorf("metrics differ between 1 and 8 workers:\n serial: %+v\n wide:   %+v",
			serial.metrics, wide.metrics)
	}
	if !reflect.DeepEqual(serial.lcp1, wide.lcp1) || !reflect.DeepEqual(serial.lcp2, wide.lcp2) {
		t.Errorf("LCP results differ between 1 and 8 workers")
	}
	if !reflect.DeepEqual(serial.values, wide.values) || !reflect.DeepEqual(serial.found, wide.found) {
		t.Errorf("Get results differ between 1 and 8 workers")
	}
	if !reflect.DeepEqual(serial.deleted, wide.deleted) {
		t.Errorf("Delete results differ between 1 and 8 workers")
	}
	if !reflect.DeepEqual(serial.subtrees, wide.subtrees) {
		t.Errorf("Subtree results differ between 1 and 8 workers")
	}
	if !reflect.DeepEqual(serial.stats, wide.stats) {
		t.Errorf("stats differ between 1 and 8 workers:\n serial: %+v\n wide:   %+v",
			serial.stats, wide.stats)
	}
}

// TestDeterminismAcrossParallelismPivot covers the grouped probe loops
// and the flat master table under the §4.4.2 pivot probing path: the
// batch-interleaved hash windows, the metaTable lookups and the
// two-layer region index must all yield bit-identical metrics and
// answers regardless of worker count.
func TestDeterminismAcrossParallelismPivot(t *testing.T) {
	cfg := Config{HashSeed: 1, PivotProbing: true}
	serial, _ := runOpSuiteCfg(1, cfg)
	serialAgain, _ := runOpSuiteCfg(1, cfg)
	wide, _ := runOpSuiteCfg(8, cfg)

	if !reflect.DeepEqual(serial, serialAgain) {
		t.Fatalf("pivot serial run is not reproducible with a fixed seed")
	}
	if !reflect.DeepEqual(serial.metrics, wide.metrics) {
		t.Errorf("pivot metrics differ between 1 and 8 workers:\n serial: %+v\n wide:   %+v",
			serial.metrics, wide.metrics)
	}
	if !reflect.DeepEqual(serial, wide) {
		t.Errorf("pivot results differ between 1 and 8 workers")
	}

	// Pivot probing changes the cost model, not the answers: results must
	// match the default-path suite bit-for-bit even though metrics differ.
	base, _ := runOpSuite(1)
	if !reflect.DeepEqual(serial.lcp1, base.lcp1) || !reflect.DeepEqual(serial.lcp2, base.lcp2) ||
		!reflect.DeepEqual(serial.values, base.values) || !reflect.DeepEqual(serial.found, base.found) ||
		!reflect.DeepEqual(serial.deleted, base.deleted) || !reflect.DeepEqual(serial.subtrees, base.subtrees) {
		t.Errorf("pivot probing changed query answers relative to the default path")
	}
}

// TestDeterminismAcrossParallelismWithFaults is the same contract under
// an active fault plan: injected crashes, stragglers and truncations —
// and the recoveries they force — must leave every metric, every
// answer, and the recovery cost itself bit-identical no matter how many
// workers run.
func TestDeterminismAcrossParallelismWithFaults(t *testing.T) {
	plan := pim.FaultPlan{
		Seed:         21,
		Events:       []pim.FaultEvent{{Round: 25, Kind: pim.FaultCrash, Module: -1}},
		CrashProb:    0.001,
		StraggleProb: 0.01,
		TruncateProb: 0.004,
		MaxCrashes:   2,
	}
	serial, hSerial := runOpSuite(1, pim.WithFaults(plan))
	serialAgain, hAgain := runOpSuite(1, pim.WithFaults(plan))
	wide, hWide := runOpSuite(8, pim.WithFaults(plan))

	if !reflect.DeepEqual(serial, serialAgain) || !reflect.DeepEqual(hSerial, hAgain) {
		t.Fatalf("faulted serial run is not reproducible with a fixed seed")
	}
	if !reflect.DeepEqual(serial.metrics, wide.metrics) {
		t.Errorf("faulted metrics differ between 1 and 8 workers:\n serial: %+v\n wide:   %+v",
			serial.metrics, wide.metrics)
	}
	if !reflect.DeepEqual(serial, wide) {
		t.Errorf("faulted results differ between 1 and 8 workers")
	}
	if !reflect.DeepEqual(hSerial, hWide) {
		t.Errorf("recovery status differs between 1 and 8 workers:\n serial: %+v\n wide:   %+v",
			hSerial, hWide)
	}
	if hSerial.Recoveries < 1 {
		t.Fatalf("fault plan injected no recovery (health %+v); the test is vacuous", hSerial)
	}
	if hSerial.RecoveryCost.Rounds <= 0 || hSerial.RecoveryCost.IOTime <= 0 {
		t.Errorf("recovery cost not accounted: %+v", hSerial.RecoveryCost)
	}
}
