package core

// Recovery tests: with a fixed fault seed, crashing any single module
// mid-workload must leave every observable answer bit-identical to a
// fault-free run of the same script, with the repair cost visible in
// Health and attributed to a "recover" span that passes the obs
// conservation check.

import (
	"reflect"
	"strings"
	"testing"

	"github.com/pimlab/pimtrie/internal/bitstr"
	"github.com/pimlab/pimtrie/internal/obs"
	"github.com/pimlab/pimtrie/internal/pim"
	"github.com/pimlab/pimtrie/internal/trie"
	"github.com/pimlab/pimtrie/internal/workload"
)

// scriptAnswers is every observable result of the fixed recovery
// workload; faulted runs must reproduce it bit-identically.
type scriptAnswers struct {
	lcp1     []int
	values   []uint64
	found    []bool
	deleted  []bool
	subtrees [][]trie.KV
	lcp2     []int
	dump     []trie.KV
	n        int
}

// scriptRounds brackets the workload's operations by the system's round
// counter, so tests can aim a scheduled fault at a specific operation.
type scriptRounds struct {
	afterNew, afterBuild, afterLCP1, total int64
}

// runRecoveryScript drives a fixed mixed workload on a recoverable
// index, optionally under a fault plan. The caller closes the returned
// system.
func runRecoveryScript(plan *pim.FaultPlan) (scriptAnswers, scriptRounds, *PIMTrie, *pim.System) {
	const (
		p     = 8
		n     = 900
		batch = 128
	)
	g := workload.New(7)
	keys := g.VarLen(n, 40, 120)
	values := g.Values(len(keys))
	queries := g.PrefixQueries(keys, batch, 12)
	fresh := g.FixedLen(batch, 80)
	freshVals := g.Values(len(fresh))

	opts := []pim.Option{pim.WithSeed(1)}
	if plan != nil {
		opts = append(opts, pim.WithFaults(*plan))
	}
	sys := pim.NewSystem(p, opts...)
	pt := New(sys, Config{HashSeed: 1, Recoverable: true})

	var a scriptAnswers
	var r scriptRounds
	r.afterNew = sys.Metrics().Rounds
	pt.Build(keys, values)
	r.afterBuild = sys.Metrics().Rounds
	a.lcp1 = pt.LCP(queries)
	r.afterLCP1 = sys.Metrics().Rounds
	pt.Insert(fresh, freshVals)
	a.values, a.found = pt.Get(fresh)
	a.deleted = pt.Delete(keys[:batch])
	prefixes := make([]bitstr.String, 8)
	for i := range prefixes {
		prefixes[i] = keys[batch+i*17].Prefix(20)
	}
	a.subtrees = pt.SubtreeQueryBatch(prefixes)
	a.lcp2 = pt.LCP(queries)
	a.dump = pt.SubtreeQuery(bitstr.Empty)
	a.n = pt.KeyCount()
	r.total = sys.Metrics().Rounds
	return a, r, pt, sys
}

// checkRecovered asserts the faulted run healed: answers equal the
// oracle's, the structure validates, and Health reports a completed,
// costed recovery.
func checkRecovered(t *testing.T, oracle, got scriptAnswers, pt *PIMTrie) Health {
	t.Helper()
	if !reflect.DeepEqual(got, oracle) {
		t.Errorf("answers diverge from the fault-free oracle")
	}
	if err := pt.Validate(); err != nil {
		t.Errorf("Validate after recovery: %v", err)
	}
	h := pt.Health()
	if h.Recoveries < 1 {
		t.Errorf("Health.Recoveries = %d, want >= 1", h.Recoveries)
	}
	if h.Degraded || len(h.DeadModules) != 0 {
		t.Errorf("index still degraded: %+v", h)
	}
	if h.RecoveryCost.Rounds <= 0 || h.RecoveryCost.IOTime <= 0 {
		t.Errorf("recovery cost not accounted: %+v", h.RecoveryCost)
	}
	return h
}

func TestCrashAnyModuleMatchesOracle(t *testing.T) {
	oracle, rounds, opt, osys := runRecoveryScript(nil)
	defer osys.Close()
	if err := opt.Validate(); err != nil {
		t.Fatalf("oracle Validate: %v", err)
	}
	if h := opt.Health(); h.Recoveries != 0 || h.RecoveryCost.Rounds != 0 {
		t.Fatalf("fault-free run reports recovery activity: %+v", h)
	}
	mid := (rounds.afterBuild + rounds.total) / 2
	for mi := 0; mi < 8; mi++ {
		plan := &pim.FaultPlan{Events: []pim.FaultEvent{
			{Round: mid, Kind: pim.FaultCrash, Module: mi},
		}}
		got, _, pt, sys := runRecoveryScript(plan)
		h := checkRecovered(t, oracle, got, pt)
		if h.Crashes != 1 || h.ModulesLost < 1 {
			t.Errorf("module %d: fault counts off: %+v", mi, h)
		}
		sys.Close()
	}
}

// TestFullRebuildDuringBuild aims the crash inside the bulk load, where
// the dirty window guarantees the recovery takes the full-rebuild tier.
func TestFullRebuildDuringBuild(t *testing.T) {
	oracle, rounds, _, osys := runRecoveryScript(nil)
	osys.Close()
	if rounds.afterBuild-rounds.afterNew < 4 {
		t.Fatalf("build spans only %d rounds; cannot aim a mid-build crash",
			rounds.afterBuild-rounds.afterNew)
	}
	mid := (rounds.afterNew + rounds.afterBuild) / 2
	got, _, pt, sys := runRecoveryScript(&pim.FaultPlan{Events: []pim.FaultEvent{
		{Round: mid, Kind: pim.FaultCrash, Module: 3},
	}})
	defer sys.Close()
	h := checkRecovered(t, oracle, got, pt)
	if h.FullRebuilds < 1 {
		t.Errorf("mid-build crash did not trigger a full rebuild: %+v", h)
	}
}

// TestTargetedRecoveryDuringRead aims the crash inside the first LCP
// batch: no mutation is in flight, so the repair must stay targeted.
func TestTargetedRecoveryDuringRead(t *testing.T) {
	oracle, rounds, _, osys := runRecoveryScript(nil)
	osys.Close()
	if rounds.afterLCP1 <= rounds.afterBuild {
		t.Fatalf("LCP spans no rounds; cannot aim a mid-read crash")
	}
	mid := (rounds.afterBuild + rounds.afterLCP1) / 2
	got, _, pt, sys := runRecoveryScript(&pim.FaultPlan{Events: []pim.FaultEvent{
		{Round: mid, Kind: pim.FaultCrash, Module: 5},
	}})
	defer sys.Close()
	h := checkRecovered(t, oracle, got, pt)
	if h.FullRebuilds != 0 {
		t.Errorf("read-window crash escalated to a full rebuild: %+v", h)
	}
	if h.Recoveries != 1 {
		t.Errorf("Recoveries = %d, want exactly 1", h.Recoveries)
	}
}

// TestRecoverObsConservation attaches the obs tracer across a crash and
// checks that (a) the trace still satisfies the conservation law after
// the panic-unwound phases were rebalanced, and (b) the repair cost is
// attributed to a "recover" span subtree that matches Health's
// RecoveryCost exactly.
func TestRecoverObsConservation(t *testing.T) {
	_, rounds, _, osys := runRecoveryScript(nil)
	osys.Close()
	mid := (rounds.afterBuild + rounds.afterLCP1) / 2

	var tr *obs.Tracer
	pim.SetSystemHook(func(s *pim.System) { tr = obs.Attach(s, "chaos") })
	got, _, pt, sys := runRecoveryScript(&pim.FaultPlan{Events: []pim.FaultEvent{
		{Round: mid, Kind: pim.FaultCrash, Module: 2},
	}})
	pim.SetSystemHook(nil)
	defer sys.Close()
	_ = got
	tr.Detach()

	data := tr.Data()
	if err := data.Check(); err != nil {
		t.Fatalf("conservation check after recovery: %v", err)
	}
	var recRounds, recIOTime int64
	spans := 0
	for _, sp := range data.Spans {
		if sp.Path == "recover" || strings.HasPrefix(sp.Path, "recover/") {
			spans++
			recRounds += sp.M.Rounds
			recIOTime += sp.M.IOTime
		}
	}
	if spans == 0 {
		t.Fatal("no recover span in the trace")
	}
	h := pt.Health()
	if recRounds != h.RecoveryCost.Rounds || recIOTime != h.RecoveryCost.IOTime {
		t.Errorf("recover spans carry %d rounds / %d io-time, Health says %d / %d",
			recRounds, recIOTime, h.RecoveryCost.Rounds, h.RecoveryCost.IOTime)
	}
	if recRounds == 0 {
		t.Error("recover spans carry zero rounds")
	}
}
