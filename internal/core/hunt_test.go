package core

import (
	"fmt"
	"testing"
)

func TestHuntScenarioSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip()
	}
	for seed := int64(0); seed < 300; seed++ {
		cfg := Config{MaxRedo: 60}
		if seed%5 == 0 {
			cfg.HashWidth = 18 // exercise the collision machinery too
		}
		cfg.PivotProbing = seed%2 == 0 // alternate probing strategies
		p := []int{1, 4, 9}[seed%3]
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("seed %d (%+v) panicked: %v", seed, cfg, r)
				}
			}()
			if !scenarioCfg(seed, p, cfg) {
				t.Fatalf("seed %d (p=%d %+v) disagreed with oracle", seed, p, cfg)
			}
		}()
	}
	fmt.Println("300 seeds ok")
}
