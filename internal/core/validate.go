package core

// Validate walks the entire distributed structure (an unaccounted
// diagnostic pass) and checks every invariant the matching protocol
// relies on. Tests call it after mutation batches; it is exported on
// PIMTrie so stress harnesses outside the package can use it too.

import (
	"fmt"

	"github.com/pimlab/pimtrie/internal/bitstr"
	"github.com/pimlab/pimtrie/internal/hashing"
	"github.com/pimlab/pimtrie/internal/hvm"
	"github.com/pimlab/pimtrie/internal/pim"
	"github.com/pimlab/pimtrie/internal/trie"
)

// Validate checks structural soundness:
//
//  1. the block tree is well-formed: parent/child pointers agree, every
//     mirror leaf names exactly one live child block, root strings and
//     hash values compose correctly along mirror paths;
//  2. every block's meta-node exists in the region the block points at,
//     with matching hash/length/S_last;
//  3. the meta-tree is isomorphic to the block tree (parents map to
//     parents, up to region boundaries);
//  4. every region root is an ancestor of all its members and is
//     registered in the master table (and nothing else is);
//  5. every key is stored exactly once, and the total equals KeyCount.
//
// It returns the first violation found.
func (t *PIMTrie) Validate() error {
	type blockInfo struct {
		bo   *blockObj
		addr pim.Addr
	}
	blocks := map[pim.Addr]*blockObj{}
	regions := map[pim.Addr]*hvm.Region{}
	for i := 0; i < t.sys.P(); i++ {
		mi := i
		t.sys.Module(mi).EachID(func(id uint64, obj any) {
			switch o := obj.(type) {
			case *blockObj:
				blocks[pim.Addr{Module: mi, ID: id}] = o
			case *regionObj:
				regions[pim.Addr{Module: mi, ID: id}] = o.r
			}
		})
	}
	if _, ok := blocks[t.rootBlock]; !ok {
		return fmt.Errorf("root block %v missing", t.rootBlock)
	}

	// 1. Walk the block tree from the root, checking wiring and hashes.
	keys := 0
	visited := map[pim.Addr]bool{}
	var walk func(addr pim.Addr, rootVal hashing.Value, rootLen int) error
	walk = func(addr pim.Addr, rootVal hashing.Value, rootLen int) error {
		bo, ok := blocks[addr]
		if !ok {
			return fmt.Errorf("dangling block address %v", addr)
		}
		if visited[addr] {
			return fmt.Errorf("block %v reachable twice", addr)
		}
		visited[addr] = true
		if bo.rootVal != rootVal {
			return fmt.Errorf("block %v root hash value mismatch", addr)
		}
		if bo.rootLen != rootLen {
			return fmt.Errorf("block %v root length %d, want %d", addr, bo.rootLen, rootLen)
		}
		if bo.rootHash != t.h.Out(rootVal) {
			return fmt.Errorf("block %v rootHash inconsistent with rootVal", addr)
		}
		if err := bo.tr.CheckInvariants(); err != nil {
			return fmt.Errorf("block %v: %w", addr, err)
		}
		keys += bo.tr.KeyCount()
		// Mirrors ↔ children.
		seenChild := map[int]bool{}
		var mirrorErr error
		bo.tr.WalkPreorder(func(n *trie.Node) bool {
			if mirrorErr != nil {
				return false
			}
			if !n.Mirror {
				return true
			}
			ci := int(n.Value)
			if ci < 0 || ci >= len(bo.children) || bo.children[ci].IsNil() {
				mirrorErr = fmt.Errorf("block %v: mirror names dead child slot %d", addr, ci)
				return false
			}
			if seenChild[ci] {
				mirrorErr = fmt.Errorf("block %v: child slot %d mirrored twice", addr, ci)
				return false
			}
			seenChild[ci] = true
			rel := trie.NodeString(n)
			child := bo.children[ci]
			cb, ok := blocks[child]
			if !ok {
				mirrorErr = fmt.Errorf("block %v: child %v missing", addr, child)
				return false
			}
			if cb.parent != addr {
				mirrorErr = fmt.Errorf("block %v: child %v parent is %v", addr, child, cb.parent)
				return false
			}
			if err := walk(child, t.h.Extend(rootVal, rel), rootLen+rel.Len()); err != nil {
				mirrorErr = err
			}
			return false
		})
		if mirrorErr != nil {
			return mirrorErr
		}
		// Live children without a mirror are a wiring bug.
		live := 0
		for _, c := range bo.children {
			if !c.IsNil() {
				live++
			}
		}
		if live != len(seenChild) {
			return fmt.Errorf("block %v: %d live children but %d mirrors", addr, live, len(seenChild))
		}
		// 2. The meta-node.
		reg, ok := regions[bo.region]
		if !ok {
			return fmt.Errorf("block %v points at dead region %v", addr, bo.region)
		}
		meta := reg.Lookup(bo.rootHash)
		if meta == nil || meta.Block != addr {
			return fmt.Errorf("block %v has no meta in its region", addr)
		}
		if meta.Len != bo.rootLen || !bitstr.Equal(meta.SLast, bo.sLast) {
			return fmt.Errorf("block %v meta disagrees (len %d vs %d)", addr, meta.Len, bo.rootLen)
		}
		return nil
	}
	if err := walk(t.rootBlock, hashing.EmptyValue(), 0); err != nil {
		return err
	}
	for addr := range blocks {
		if !visited[addr] {
			return fmt.Errorf("orphaned block %v", addr)
		}
	}
	if keys != t.nKeys {
		return fmt.Errorf("stored keys %d != KeyCount %d", keys, t.nKeys)
	}

	// 3+4. Regions: validity, ancestry (root length minimal and a prefix
	// relation via lengths + meta parentage), master registration.
	masterSeen := map[uint64]bool{}
	for addr, reg := range regions {
		if reg.Root == nil {
			return fmt.Errorf("region %v has nil root", addr)
		}
		if err := reg.Validate(); err != nil {
			return fmt.Errorf("region %v: %w", addr, err)
		}
		e, ok := t.master[reg.Root.Hash]
		if !ok {
			return fmt.Errorf("region %v root not in master", addr)
		}
		if e.Region != addr {
			return fmt.Errorf("master entry for region %v points at %v", addr, e.Region)
		}
		masterSeen[reg.Root.Hash] = true
		var err error
		reg.Walk(func(n *hvm.MetaNode) {
			if err != nil {
				return
			}
			bo, ok := blocks[n.Block]
			if !ok {
				err = fmt.Errorf("region %v meta names dead block %v", addr, n.Block)
				return
			}
			if bo.region != addr {
				err = fmt.Errorf("region %v holds meta of block pointing at %v", addr, bo.region)
				return
			}
			// Meta-tree ≅ block tree: a child's parent block must be the
			// block of its meta parent.
			if n.Parent != nil && bo.parent != n.Parent.Block {
				err = fmt.Errorf("meta-tree edge mismatch at block %v", n.Block)
				return
			}
			if n.Parent == nil && n != reg.Root {
				err = fmt.Errorf("region %v has a second root", addr)
				return
			}
			// Ancestry: member depth never shallower than the root's.
			if n.Len < reg.Root.Len {
				err = fmt.Errorf("region %v member shallower than its root", addr)
			}
		})
		if err != nil {
			return err
		}
		// Region-boundary parents: a region root's block parent must have
		// its meta elsewhere (or be the data root).
		if reg.Root.Len > 0 {
			bo := blocks[reg.Root.Block]
			if bo.parent.IsNil() {
				return fmt.Errorf("non-root region %v root has no parent block", addr)
			}
		}
	}
	for h, e := range t.master {
		if !masterSeen[h] {
			return fmt.Errorf("stale master entry %#x -> %v", h, e.Region)
		}
	}
	// Master replicas must match the host copy.
	for i := 0; i < t.sys.P(); i++ {
		mo := t.sys.Module(i).Get(t.masterAddrs[i].ID).(*masterObj)
		if mo.entries.Len() != len(t.master) {
			return fmt.Errorf("module %d master replica has %d entries, host %d", i, mo.entries.Len(), len(t.master))
		}
		for h, e := range t.master {
			if me, ok := mo.entries.Get(h); !ok || me.Region != e.Region || me.Block != e.Block {
				return fmt.Errorf("module %d master replica diverges at %#x", i, h)
			}
		}
	}
	return nil
}
