package core

// Tests for the PR-5 serving substrate: the single-flight execution
// guard, the shared sortKVs path, and the metrics-equivalence of the
// split prepare/execute (Prepared) entry points.

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"github.com/pimlab/pimtrie/internal/bitstr"
	"github.com/pimlab/pimtrie/internal/pim"
	"github.com/pimlab/pimtrie/internal/trie"
)

// TestConcurrentBatchPanics asserts the in-use guard makes concurrent
// direct batch calls fail loudly instead of corrupting pooled scratch.
func TestConcurrentBatchPanics(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	keys := make([]bitstr.String, 64)
	for i := range keys {
		keys[i] = randomKey(r, 48)
	}
	vals := make([]uint64, len(keys))
	for i := range vals {
		vals[i] = uint64(i)
	}
	pt, _ := newTestTrie(4, Config{})
	pt.Build(keys, vals)

	end := pt.beginBatch("test")
	func() {
		defer func() {
			r := recover()
			if r == nil {
				t.Fatal("LCP while another batch is in flight did not panic")
			}
			if msg, ok := r.(string); !ok || !strings.Contains(msg, "concurrent") {
				t.Fatalf("panic message %v does not name the concurrency misuse", r)
			}
		}()
		pt.LCP(keys[:4])
	}()

	// Prepare is the documented exception: host-only, touches no pooled
	// scratch, must be legal while a batch executes.
	if pb := pt.Prepare(keys[:4]); pb == nil {
		t.Fatal("Prepare returned nil while a batch was in flight")
	}
	end()

	// After release the index serves normally again.
	if got := pt.LCP(keys[:1]); len(got) != 1 {
		t.Fatalf("post-release LCP returned %d results", len(got))
	}
}

// TestSortKVsTies is the regression test for replacing the hand-rolled
// quicksort: both the slices.SortFunc path and the parallel radix path
// must order ties (equal keys) deterministically and keep the multiset.
func TestSortKVsTies(t *testing.T) {
	r := rand.New(rand.NewSource(33))
	build := func(n int) []trie.KV {
		kvs := make([]trie.KV, 0, n)
		base := make([]bitstr.String, n/4+1)
		for i := range base {
			base[i] = randomKey(r, 40)
		}
		for len(kvs) < n {
			// Plenty of duplicate keys to exercise ties.
			k := base[r.Intn(len(base))]
			kvs = append(kvs, trie.KV{Key: k, Value: uint64(len(kvs))})
		}
		return kvs
	}
	for _, n := range []int{10, sortKVsRadixCutoff + 500} {
		in := build(n)
		a := append([]trie.KV(nil), in...)
		b := append([]trie.KV(nil), in...)
		sortKVs(a)
		sortKVs(b)
		count := func(kvs []trie.KV) map[string]int {
			m := make(map[string]int)
			for _, kv := range kvs {
				m[kv.Key.String()] = m[kv.Key.String()] + 1
			}
			return m
		}
		if !reflect.DeepEqual(count(in), count(a)) {
			t.Fatalf("n=%d: sortKVs changed the key multiset", n)
		}
		for i := 1; i < len(a); i++ {
			if bitstr.Compare(a[i-1].Key, a[i].Key) > 0 {
				t.Fatalf("n=%d: out of order at %d: %q > %q", n, i, a[i-1].Key, a[i].Key)
			}
		}
		for i := range a {
			if !bitstr.Equal(a[i].Key, b[i].Key) || a[i].Value != b[i].Value {
				t.Fatalf("n=%d: sortKVs not deterministic on ties at %d: (%q,%d) vs (%q,%d)",
					n, i, a[i].Key, a[i].Value, b[i].Key, b[i].Value)
			}
		}
	}
}

// TestPreparedMetricsIdentical asserts the split prepare/execute path
// charges bit-identical model cost to the inline path — the property
// that makes host pipelining free in model terms.
func TestPreparedMetricsIdentical(t *testing.T) {
	r := rand.New(rand.NewSource(44))
	keys := make([]bitstr.String, 300)
	for i := range keys {
		keys[i] = randomKey(r, 64)
	}
	queries := make([]bitstr.String, 128)
	for i := range queries {
		if i%2 == 0 {
			queries[i] = keys[r.Intn(len(keys))]
		} else {
			queries[i] = randomKey(r, 64)
		}
	}
	loadVals := make([]uint64, len(keys))
	for i := range loadVals {
		loadVals[i] = uint64(i + 1)
	}
	newLoaded := func() (*PIMTrie, *metricsProbe) {
		pt, sys := newTestTrie(8, Config{})
		pt.Build(keys, loadVals)
		return pt, &metricsProbe{sys: sys, last: sys.Metrics()}
	}
	inline, pi := newLoaded()
	split, ps := newLoaded()

	// LCP
	wantLCP := inline.LCP(queries)
	gotLCP := split.LCPPrepared(split.Prepare(queries))
	if !reflect.DeepEqual(wantLCP, gotLCP) {
		t.Fatal("LCPPrepared results differ from LCP")
	}
	pi.diffEqual(t, ps, "LCP")

	// Get
	wv, wf := inline.Get(queries)
	gv, gf := split.GetPrepared(split.Prepare(queries))
	if !reflect.DeepEqual(wv, gv) || !reflect.DeepEqual(wf, gf) {
		t.Fatal("GetPrepared results differ from Get")
	}
	pi.diffEqual(t, ps, "Get")

	// Insert
	ins := make([]bitstr.String, 64)
	vals := make([]uint64, len(ins))
	for i := range ins {
		ins[i] = randomKey(r, 64)
		vals[i] = uint64(i + 1000)
	}
	inline.Insert(ins, vals)
	split.InsertPrepared(split.Prepare(ins), vals)
	pi.diffEqual(t, ps, "Insert")

	// Delete
	wd := inline.Delete(ins[:32])
	gd := split.DeletePrepared(split.Prepare(ins[:32]))
	if !reflect.DeepEqual(wd, gd) {
		t.Fatal("DeletePrepared results differ from Delete")
	}
	pi.diffEqual(t, ps, "Delete")
}

type metricsProbe struct {
	sys  *pim.System
	last pim.Metrics
}

// diffEqual compares the cost incurred since the previous call on both
// probes, field by field including per-module vectors.
func (p *metricsProbe) diffEqual(t *testing.T, other *metricsProbe, op string) {
	t.Helper()
	cur, ocur := p.sys.Metrics(), other.sys.Metrics()
	d, od := cur.Sub(p.last), ocur.Sub(other.last)
	p.last, other.last = cur, ocur
	if !reflect.DeepEqual(d, od) {
		t.Fatalf("%s: inline metrics delta %+v != prepared delta %+v", op, d, od)
	}
}
