package core

// metaTable is the flat open-addressing hash table holding a module's
// master replica. The builtin map it replaces costs two dependent cache
// misses per probe (bucket header, then entry) and gives the prober no
// way to start the next batch's loads early; the flat table keeps every
// slot in one contiguous array, so (a) a probe is a single indexed
// access with linear fallback, and (b) Touch lets the grouped probe
// loop in probeSegments issue the bucket loads of a whole word of
// upcoming probes back-to-back, overlapping their DRAM misses
// (memory-level parallelism). Keys are hash outputs (already
// splitmix-mixed by hashing.Out), so the raw key masks directly to a
// slot index.
//
// Deletion uses backward-shift compaction (no tombstones), so lookup
// cost never degrades with churn. The table is a module-side replica:
// probed read-only during match rounds, mutated only in broadcast
// rounds — never both at once.
type metaTable struct {
	slots []metaSlot
	mask  uint64
	n     int
}

type metaSlot struct {
	key  uint64
	used bool
	e    masterEntry
}

// newMetaTable sizes for at least capacity entries at ≤ 75% load.
func newMetaTable(capacity int) *metaTable {
	size := 8
	for size*3 < capacity*4 {
		size <<= 1
	}
	return &metaTable{slots: make([]metaSlot, size), mask: uint64(size - 1)}
}

func (t *metaTable) Len() int { return t.n }

// Get returns the entry stored under h.
func (t *metaTable) Get(h uint64) (masterEntry, bool) {
	for i := h & t.mask; ; i = (i + 1) & t.mask {
		s := &t.slots[i]
		if !s.used {
			return masterEntry{}, false
		}
		if s.key == h {
			return s.e, true
		}
	}
}

// Touch loads the home slot of h — the early, independent load the
// grouped probe loop issues for a whole window of probes before any
// Get. The returned word feeds a sink so the load cannot be
// dead-code-eliminated.
func (t *metaTable) Touch(h uint64) uint64 {
	return t.slots[h&t.mask].key
}

// Put stores e under h, replacing any existing entry.
func (t *metaTable) Put(h uint64, e masterEntry) {
	if uint64(t.n+1)*4 > uint64(len(t.slots))*3 {
		t.grow()
	}
	for i := h & t.mask; ; i = (i + 1) & t.mask {
		s := &t.slots[i]
		if !s.used {
			*s = metaSlot{key: h, used: true, e: e}
			t.n++
			return
		}
		if s.key == h {
			s.e = e
			return
		}
	}
}

// Delete removes h if present, backward-shifting the probe chain so no
// tombstone is left behind.
func (t *metaTable) Delete(h uint64) {
	i := h & t.mask
	for {
		s := &t.slots[i]
		if !s.used {
			return
		}
		if s.key == h {
			break
		}
		i = (i + 1) & t.mask
	}
	// Backward-shift: pull every displaced successor into the hole.
	j := i
	for {
		j = (j + 1) & t.mask
		s := &t.slots[j]
		if !s.used {
			break
		}
		home := s.key & t.mask
		// s may move into the hole i only if i lies cyclically within
		// [home, j); otherwise s is already at or past its home.
		if (j-home)&t.mask >= (j-i)&t.mask {
			t.slots[i] = *s
			i = j
		}
	}
	t.slots[i] = metaSlot{}
	t.n--
}

func (t *metaTable) grow() {
	old := t.slots
	t.slots = make([]metaSlot, len(old)*2)
	t.mask = uint64(len(t.slots) - 1)
	t.n = 0
	for i := range old {
		if old[i].used {
			t.Put(old[i].key, old[i].e)
		}
	}
}
