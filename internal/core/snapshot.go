package core

// Copy-on-write snapshots. A Snapshot is a flattened, immutable view
// of the host shadow trie — the key authority recoverable mode keeps
// in sync ahead of every distributed mutation — so long-running reads
// (Subtree exports, backups, checkpoint serialization) can run against
// a frozen version while write batches keep committing.
//
// The concurrency contract is deliberately narrow. Batch mutations
// update the shadow under shadowMu.Lock() for the *whole* batch (the
// only two shadow-mutation sites are shadowInsert and deleteBatch's
// shadow loop), and Snapshot flattens under shadowMu.RLock(), so a
// snapshot always lands on a batch boundary: it observes every key of
// a committed batch or none of them. Under the serve layer, batches
// are write epochs, making snapshots epoch-atomic.
//
// Snapshot is exempt from the beginBatch single-caller guard, like
// Prepare: it touches no pooled scratch and no module state, only the
// lock-protected shadow. It is therefore safe to call from any
// goroutine while batches execute — this is what "copy-on-write"
// buys: the Flat is built once per shadow version (memoized in
// snapCache) and shared read-only afterwards; writers never copy, they
// just advance shadowVer and let the next Snapshot re-flatten.

import "github.com/pimlab/pimtrie/internal/trie"

// shadowSnap memoizes one flattened shadow version.
type shadowSnap struct {
	ver  uint64
	flat *trie.Flat
}

// Snapshot returns an immutable point-in-time view of the stored
// key/value pairs, frozen at a batch (serve: write-epoch) boundary.
// Repeated calls between mutations return the same *trie.Flat.
// Returns nil when the index is not recoverable (no shadow exists).
func (t *PIMTrie) Snapshot() *trie.Flat {
	if !t.recoverable {
		return nil
	}
	t.shadowMu.RLock()
	defer t.shadowMu.RUnlock()
	ver := t.shadowVer
	if c := t.snapCache.Load(); c != nil && c.ver == ver {
		return c.flat
	}
	flat := trie.Flatten(t.shadow)
	// Still under RLock: ver cannot advance, so the entry is coherent.
	// Two concurrent first-flatteners may both build; either result is
	// valid for this version and the last store wins.
	t.snapCache.Store(&shadowSnap{ver: ver, flat: flat})
	return flat
}
