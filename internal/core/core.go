// Package core implements PIM-trie (paper §4–5): a batch-parallel,
// skew-resistant binary radix tree distributed over the PIM modules of a
// pim.System.
//
// Layout. The data trie is decomposed into blocks of at most
// Config.BlockWords words (§4.2) placed on uniformly random modules;
// each block is a stand-alone compressed trie whose mirror leaves stand
// in for the roots of its child blocks. The hash value manager (§4.4)
// keeps one meta-node per block, grouped into regions (meta-blocks) of
// at most Config.MetaBlockMax nodes, each region on a random module; a
// master table mapping region-root hashes to region addresses is
// replicated on every module.
//
// Matching (§4.3). A batch is turned into a query trie on the host; its
// edges are chunked and pushed to random modules, which probe every bit
// position against the replicated master table (Algorithm 4's role).
// Each master hit assigns the query piece below it to one region, which
// is then probed push-pull style for interior block-root hits
// (Algorithm 5's role). Finally the pieces below the bottommost hits are
// matched bit-by-bit against their blocks, again push-pull (Algorithm
// 2). Every hash hit is verified by length and S_last before being
// trusted (§4.4.3); a failed verification triggers a global re-hash and
// a redo of the batch.
//
// Deviations from the paper are catalogued in DESIGN.md §5; the main one
// is that every region root (not only meta-block-tree roots) is
// registered in the replicated master table, which flattens the O(log P)
// meta-descent into a constant number of rounds at the price of a master
// table replica that is negligible at benchmark scales.
package core

import (
	"fmt"
	"math/bits"
	"sync"
	"sync/atomic"

	"github.com/pimlab/pimtrie/internal/bitstr"
	"github.com/pimlab/pimtrie/internal/hashing"
	"github.com/pimlab/pimtrie/internal/hvm"
	"github.com/pimlab/pimtrie/internal/pim"
	"github.com/pimlab/pimtrie/internal/trie"
)

// Config holds the PIM-trie parameters (paper Table 2; defaults follow
// DESIGN.md §4).
type Config struct {
	// BlockWords is K_B, the block size bound in words; at least
	// trie.MinBlockWords. Zero selects max(32, log²P).
	BlockWords int
	// MetaBlockMax is K_MB, the region size bound in meta-nodes. Zero
	// selects max(8, P).
	MetaBlockMax int
	// PullThreshold is the push/pull boundary in words for region and
	// block matching. Zero selects 4·BlockWords (the paper's log⁴P scaled
	// to our flattened descent).
	PullThreshold int
	// MasterChunkWords bounds the query-trie chunks of the master round.
	// Zero selects max(64, batch/(P·log P)).
	MasterChunkWords int
	// HashSeed seeds the hash function; HashWidth ≤ 61 selects the output
	// width in bits (narrow widths force collisions; tests only).
	HashSeed  uint64
	HashWidth uint
	// PivotProbing enables the §4.4.2 optimized HashMatching for the
	// region phase: probing one pivot class per w bits through each
	// region's two-layer index instead of one hash lookup per bit,
	// recovering interior hits from meta-tree ancestor chains. Results
	// are identical; PIM work per region probe drops from O(bits) to
	// O(bits/8 + classes·log w).
	PivotProbing bool
	// MaxRedo caps collision-triggered redo attempts per batch.
	MaxRedo int
	// Recoverable maintains the host-retained key authority (shadow trie
	// + block directory) needed to rebuild lost modules, even when the
	// system has no fault plan installed. It is implied by an active
	// pim.FaultPlan.
	Recoverable bool
}

func (c Config) withDefaults(p int) Config {
	lg := bits.Len(uint(p))
	if c.BlockWords == 0 {
		c.BlockWords = lg * lg
	}
	if c.BlockWords < trie.MinBlockWords {
		c.BlockWords = trie.MinBlockWords
	}
	if c.MetaBlockMax == 0 {
		c.MetaBlockMax = p
	}
	if c.MetaBlockMax < 8 {
		c.MetaBlockMax = 8
	}
	if c.PullThreshold == 0 {
		c.PullThreshold = 4 * c.BlockWords
	}
	if c.MasterChunkWords == 0 {
		c.MasterChunkWords = 64
	}
	if c.MaxRedo == 0 {
		c.MaxRedo = 20
	}
	return c
}

// metaInfo is the wire form of a meta-node: what hits carry back to the
// host (a handful of words each).
type metaInfo struct {
	Hash   uint64
	Len    int
	SLast  bitstr.String
	Block  pim.Addr
	Region pim.Addr
}

const metaInfoWords = 6

// masterEntry is one replicated master-table record.
type masterEntry struct {
	Region pim.Addr
	Len    int
	SLast  bitstr.String
	Block  pim.Addr
}

// masterObj is the per-module master replica, held in a flat
// open-addressing table so the master round's grouped probes can issue
// independent slot loads (see metaTable).
type masterObj struct {
	entries *metaTable
}

func (m *masterObj) SizeWords() int { return m.entries.Len()*metaInfoWords + 1 }

// blockObj is a module-resident data-trie block.
type blockObj struct {
	tr       *trie.Trie
	rootLen  int           // bit length of the block root's full string
	rootVal  hashing.Value // full-precision hash of the root string
	rootHash uint64        // hash-out of the root string
	sLast    bitstr.String
	parent   pim.Addr   // parent block
	children []pim.Addr // child blocks; mirror.Value indexes this slice
	region   pim.Addr   // region holding this block's meta-node

	// pendingNew temporarily records, during a block split, which
	// children slots await addresses from the allocation round.
	pendingNew []int
}

func (b *blockObj) SizeWords() int {
	return b.tr.SizeWords() + 6 + len(b.children)
}

// regionObj wraps an hvm.Region as a module object.
type regionObj struct {
	r *hvm.Region
}

func (r *regionObj) SizeWords() int { return r.r.SizeWords() }

// PIMTrie is the distributed index. Construct with New; not safe for
// concurrent use (batches are the unit of parallelism, as in the paper).
// Every batch operation asserts single-caller execution via inUse and
// panics on overlap — the pooled scratch below would otherwise corrupt
// silently. The only methods exempt from the guard are Prepare (designed
// for concurrent pipelining, touches no scratch) and the read-only host
// accessors (KeyCount, Config, Health, counters).
type PIMTrie struct {
	sys *pim.System
	cfg Config

	h        *hashing.Hasher
	hcur     atomic.Pointer[hasherState] // atomic view of (h, generation) for Prepare
	inUse    atomic.Int32                // single-flight execution guard over the pooled scratch
	hashSalt uint64

	rootBlock   pim.Addr
	master      map[uint64]masterEntry // host replica of the master table
	masterAddrs []pim.Addr             // per-module masterObj addresses

	nKeys     int
	rehashes  int
	redos     int
	falseHits int

	// Module-loss recovery state (recover.go). The shadow trie is the
	// host-retained key authority; blockDir maps every live block to the
	// absolute bit string of its root, so the host can re-partition a
	// lost module's shard without touching the dead module. dirty is a
	// counter (not deferred) around distributed mutations: a fault while
	// it is nonzero means module state may be half-applied and recovery
	// must rebuild from the shadow instead of repairing in place.
	recoverable  bool
	shadow       *trie.Trie
	shadowMu     sync.RWMutex               // mutation vs Snapshot flattening (snapshot.go)
	shadowVer    uint64                     // mutating batches applied; guarded by shadowMu
	snapCache    atomic.Pointer[shadowSnap] // memoized flattened snapshot, keyed by shadowVer
	blockDir     map[pim.Addr]bitstr.String
	dirty        int
	degraded     bool
	recoveries   int
	fullRebuilds int
	modulesLost  int
	recoveryCost pim.Metrics

	// Per-batch scratch, reused across batches so the steady-state host
	// path allocates proportionally to its results, not to the phases it
	// runs. PIMTrie is not safe for concurrent use (batches are the unit
	// of parallelism), so plain fields suffice; everything here is dead
	// between operations.
	prepScratch prep
	rawHitBuf   []rawHit
	verifyRecs  []hitRec
	verifyOK    []bool
	dedupeSeen  map[qposKey]bool
	insGroups   map[pim.Addr][]insOp
	delGroups   map[pim.Addr][]delOp
	groupWords  map[pim.Addr]int
	groupOrder  []pim.Addr
	pieceBuf    []*piece
	relBuf      []bitstr.String
	pieceArena  []*piece
	pieceUsed   int
	byEdgeBuf   map[*trie.Edge]int
	edgeHitBuf  [][]int
	edgeHitUsed int
	pieceOfBuf  []*piece
	piecesBuf   []*piece
	segArena    [][]segment
	reachBuf    map[*trie.Node]int
	exactBuf    map[*trie.Node]exactHit
	anchorBuf   map[*trie.Node]*piece
}

// New creates an empty PIM-trie on the given system.
func New(sys *pim.System, cfg Config) *PIMTrie {
	cfg = cfg.withDefaults(sys.P())
	t := &PIMTrie{
		sys:      sys,
		cfg:      cfg,
		hashSalt: cfg.HashSeed,
		master:   map[uint64]masterEntry{},
	}
	t.setHasher(hashing.New(cfg.HashSeed, cfg.HashWidth))
	t.recoverable = cfg.Recoverable || sys.FaultsEnabled()
	if t.recoverable {
		t.shadow = trie.New()
		t.blockDir = map[pim.Addr]bitstr.String{}
	}
	// Construction is not a recoverable window: an index that loses a
	// module before it exists has nothing to rebuild from.
	sys.SuspendFaults()
	defer sys.ResumeFaults()
	defer sys.Phase("init")()
	// Install empty master replicas and the empty root block + region.
	resp := sys.Broadcast(1, func(m *pim.Module) pim.Resp {
		return pim.Resp{RecvWords: 1, Value: m.Alloc(&masterObj{entries: newMetaTable(0)})}
	})
	t.masterAddrs = make([]pim.Addr, sys.P())
	for i, r := range resp {
		t.masterAddrs[i] = r.Value.(pim.Addr)
	}
	// Root block: the empty trie, always present, root string ε.
	rootMod := sys.RandModule()
	regMod := sys.RandModule()
	rootHash := t.h.Out(hashing.EmptyValue())
	rs := sys.Round([]pim.Task{
		{Module: regMod, SendWords: hvm.NodeCostWords, Run: func(m *pim.Module) pim.Resp {
			reg := hvm.NewRegion(&hvm.MetaNode{Hash: rootHash, Len: 0, SLast: bitstr.Empty})
			return pim.Resp{RecvWords: 1, Value: m.Alloc(&regionObj{r: reg})}
		}},
	})
	regAddr := rs[0].Value.(pim.Addr)
	rs = sys.Round([]pim.Task{
		{Module: rootMod, SendWords: 4, Run: func(m *pim.Module) pim.Resp {
			b := &blockObj{tr: trie.New(), rootHash: rootHash, parent: pim.NilAddr, region: regAddr}
			return pim.Resp{RecvWords: 1, Value: m.Alloc(b)}
		}},
	})
	rootAddr := rs[0].Value.(pim.Addr)
	sys.Round([]pim.Task{
		{Module: regMod, SendWords: 1, Run: func(m *pim.Module) pim.Resp {
			m.Get(regAddr.ID).(*regionObj).r.Root.Block = rootAddr
			return pim.Resp{}
		}},
	})
	t.rootBlock = rootAddr
	if t.recoverable {
		t.blockDir[rootAddr] = bitstr.Empty
	}
	t.master[rootHash] = masterEntry{Region: regAddr, Len: 0, SLast: bitstr.Empty, Block: rootAddr}
	t.broadcastMaster()
	return t
}

// beginBatch acquires the single-flight execution guard; the returned
// func releases it. Every batch operation holds the guard for its whole
// duration: the per-batch scratch pooled on the PIMTrie (and the
// simulator itself) is owned by exactly one executing batch at a time,
// so a concurrent entry is always a caller bug that would corrupt state
// silently. Failing the CAS panics immediately with a pointer at the
// supported concurrency path.
func (t *PIMTrie) beginBatch(op string) func() {
	if !t.inUse.CompareAndSwap(0, 1) {
		panic("core: concurrent " + op + " on a PIM-trie: batch operations are single-caller " +
			"(batches are the unit of parallelism); serialize Index calls or front the Index with serve.Server")
	}
	return func() { t.inUse.Store(0) }
}

// System returns the underlying PIM system (for metric snapshots).
func (t *PIMTrie) System() *pim.System { return t.sys }

// Config returns the effective configuration.
func (t *PIMTrie) Config() Config { return t.cfg }

// KeyCount returns the number of stored keys.
func (t *PIMTrie) KeyCount() int { return t.nKeys }

// Rehashes returns how many global re-hashes have been triggered; Redos
// returns how many batch redo passes collisions have caused; FalseHits
// counts query-side hash false positives dropped by verification.
func (t *PIMTrie) Rehashes() int  { return t.rehashes }
func (t *PIMTrie) Redos() int     { return t.redos }
func (t *PIMTrie) FalseHits() int { return t.falseHits }

// broadcastMaster pushes the host master replica to every module. The
// cost is the full table size; incremental updates use masterDelta.
func (t *PIMTrie) broadcastMaster() {
	defer t.sys.Phase("master-broadcast")()
	entries := make(map[uint64]masterEntry, len(t.master))
	for k, v := range t.master {
		entries[k] = v
	}
	words := len(entries)*metaInfoWords + 1
	addrs := t.masterAddrs
	t.sys.Broadcast(words, func(m *pim.Module) pim.Resp {
		mo := m.Get(addrs[m.ID()].ID).(*masterObj)
		mo.entries = newMetaTable(len(entries))
		for k, v := range entries {
			mo.entries.Put(k, v)
		}
		m.Resize(addrs[m.ID()].ID)
		return pim.Resp{}
	})
}

// masterRemoveAndAdd applies removals and additions to the replicated
// master table in one broadcast round.
func (t *PIMTrie) masterRemoveAndAdd(drop []uint64, add map[uint64]masterEntry) {
	defer t.sys.Phase("master-update")()
	for _, h := range drop {
		delete(t.master, h)
	}
	for k, v := range add {
		t.master[k] = v
	}
	addrs := t.masterAddrs
	t.sys.Broadcast(len(drop)+len(add)*metaInfoWords, func(m *pim.Module) pim.Resp {
		mo := m.Get(addrs[m.ID()].ID).(*masterObj)
		for _, h := range drop {
			mo.entries.Delete(h)
		}
		for k, v := range add {
			mo.entries.Put(k, v)
		}
		m.Resize(addrs[m.ID()].ID)
		return pim.Resp{}
	})
}

// masterDelta broadcasts a set of added master entries.
func (t *PIMTrie) masterDelta(add map[uint64]masterEntry) error {
	defer t.sys.Phase("master-delta")()
	for k, v := range add {
		if old, dup := t.master[k]; dup && (old.Len != v.Len || !bitstr.Equal(old.SLast, v.SLast) || old.Block != v.Block) {
			return hvm.ErrHashCollision{Hash: k}
		}
		t.master[k] = v
	}
	addrs := t.masterAddrs
	t.sys.Broadcast(len(add)*metaInfoWords, func(m *pim.Module) pim.Resp {
		mo := m.Get(addrs[m.ID()].ID).(*masterObj)
		for k, v := range add {
			mo.entries.Put(k, v)
		}
		m.Resize(addrs[m.ID()].ID)
		return pim.Resp{}
	})
	return nil
}

// MasterEntries returns the size of the replicated master table.
func (t *PIMTrie) MasterEntries() int { return len(t.master) }

// Stats summarizes structural state for diagnostics and experiments.
type Stats struct {
	Keys       int
	Blocks     int
	Regions    int
	SpaceWords int
	Rehashes   int
	Redos      int
}

// CollectStats walks all module memory (an unaccounted diagnostic pass).
func (t *PIMTrie) CollectStats() Stats {
	s := Stats{Keys: t.nKeys, Rehashes: t.rehashes, Redos: t.redos}
	total, _ := t.sys.SpaceWords()
	s.SpaceWords = total
	for i := 0; i < t.sys.P(); i++ {
		t.sys.Module(i).Each(func(o any) {
			switch o.(type) {
			case *blockObj:
				s.Blocks++
			case *regionObj:
				s.Regions++
			}
		})
	}
	return s
}

var _ = fmt.Sprintf // referenced by other files in this package
