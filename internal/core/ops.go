package core

// The four batch operations of §5: LongestCommonPrefix, Insert, Delete
// and SubtreeQuery. Each prepares a query trie, runs the matching
// protocol (with the collision-redo loop of §4.4.3), and post-processes
// the merged match outcome.

import (
	"fmt"
	"slices"

	"github.com/pimlab/pimtrie/internal/bitstr"
	"github.com/pimlab/pimtrie/internal/parallel"
	"github.com/pimlab/pimtrie/internal/pim"
	"github.com/pimlab/pimtrie/internal/trie"
)

// insOp and delOp are the per-key payloads of the Insert and Delete
// group-by-block maps. They live at package scope so the maps holding
// them can be pooled on the PIMTrie across batches.
type insOp struct {
	rel   bitstr.String
	value uint64
}

type delOp struct {
	rel bitstr.String
	u   int
}

// keyScratch returns the pooled per-unique-key piece and remainder
// slices, zeroed and sized to n.
func (t *PIMTrie) keyScratch(n int) ([]*piece, []bitstr.String) {
	if cap(t.pieceBuf) < n {
		t.pieceBuf = make([]*piece, n)
		t.relBuf = make([]bitstr.String, n)
	}
	pcs, rels := t.pieceBuf[:n], t.relBuf[:n]
	for i := range pcs {
		pcs[i] = nil
		rels[i] = bitstr.Empty
	}
	return pcs, rels
}

// groupScratch returns the pooled per-block word-count map (cleared) and
// first-seen order slice (emptied); the caller stores the grown order
// slice back into t.groupOrder.
func (t *PIMTrie) groupScratch() (map[pim.Addr]int, []pim.Addr) {
	words := t.groupWords
	if words == nil {
		words = map[pim.Addr]int{}
		t.groupWords = words
	} else {
		clear(words)
	}
	return words, t.groupOrder[:0]
}

// matchWithRedo runs the matching protocol, re-hashing and redoing the
// batch whenever verification detects a hash collision. A staged
// preparation (pb, may be nil) is consumed on the first attempt if its
// hash generation is still current; redo attempts always re-prepare
// because the re-hash invalidated the staged node hashes.
func (t *PIMTrie) matchWithRedo(batch []bitstr.String, pb *Prepared) *matchOutcome {
	for attempt := 0; attempt <= t.cfg.MaxRedo; attempt++ {
		endPrep := t.sys.Phase("prepare")
		p := t.consumePrepared(pb)
		if p == nil {
			p = t.prepare(batch)
		}
		pb = nil
		endPrep()
		out, err := t.match(p)
		if err == nil {
			return out
		}
		t.redos++
		t.rehash()
	}
	panic("core: exceeded MaxRedo matching attempts; widen HashWidth")
}

// LCP answers a batch of LongestCommonPrefix queries (§5.1): result[i]
// is the length in bits of the longest prefix of batch[i] present in the
// index (as a prefix of any stored key).
func (t *PIMTrie) LCP(batch []bitstr.String) []int { return t.lcpBatch(batch, nil) }

// LCPPrepared is LCP consuming a staged host-side preparation (see
// Prepare); model metrics are identical to LCP on the same batch.
func (t *PIMTrie) LCPPrepared(pb *Prepared) []int { return t.lcpBatch(pb.batch, pb) }

func (t *PIMTrie) lcpBatch(batch []bitstr.String, pb *Prepared) []int {
	if len(batch) == 0 {
		return nil
	}
	defer t.beginBatch("LCP")()
	var res []int
	t.withRecovery(false, func() { res = t.lcpOnce(batch, pb) })
	return res
}

func (t *PIMTrie) lcpOnce(batch []bitstr.String, pb *Prepared) []int {
	defer t.sys.Phase("lcp")()
	out := t.matchWithRedo(batch, pb)
	res := make([]int, len(batch))
	for i := range batch {
		res[i] = out.lcpOf(out.qt.Slot[i])
	}
	return res
}

// Get answers a batch of exact lookups: values[i], found[i] reflect
// batch[i]. Get is LCP plus the exact-node value check, provided because
// every practical index needs point lookups.
func (t *PIMTrie) Get(batch []bitstr.String) (values []uint64, found []bool) {
	return t.getBatch(batch, nil)
}

// GetPrepared is Get consuming a staged preparation; see Prepare.
func (t *PIMTrie) GetPrepared(pb *Prepared) (values []uint64, found []bool) {
	return t.getBatch(pb.batch, pb)
}

func (t *PIMTrie) getBatch(batch []bitstr.String, pb *Prepared) (values []uint64, found []bool) {
	if len(batch) == 0 {
		return []uint64{}, []bool{}
	}
	defer t.beginBatch("Get")()
	t.withRecovery(false, func() { values, found = t.getOnce(batch, pb) })
	return values, found
}

func (t *PIMTrie) getOnce(batch []bitstr.String, pb *Prepared) (values []uint64, found []bool) {
	values = make([]uint64, len(batch))
	found = make([]bool, len(batch))
	defer t.sys.Phase("get")()
	out := t.matchWithRedo(batch, pb)
	for i := range batch {
		u := out.qt.Slot[i]
		n := out.qt.Nodes[u]
		if out.reach[n] == n.Depth {
			if ex, ok := out.exact[n]; ok && ex.hasValue {
				values[i], found[i] = ex.value, true
			}
		}
	}
	return
}

// Insert stores a batch of key-value pairs (§5.2). Later duplicates in
// the batch win, matching sequential insertion semantics.
func (t *PIMTrie) Insert(keys []bitstr.String, values []uint64) {
	t.insertBatch(keys, values, nil)
}

// InsertPrepared is Insert consuming a staged preparation of the key
// batch; see Prepare.
func (t *PIMTrie) InsertPrepared(pb *Prepared, values []uint64) {
	t.insertBatch(pb.batch, values, pb)
}

func (t *PIMTrie) insertBatch(keys []bitstr.String, values []uint64, pb *Prepared) {
	if len(keys) != len(values) {
		panic(fmt.Sprintf("core: Insert keys/values length mismatch: %d keys, %d values", len(keys), len(values)))
	}
	if len(keys) == 0 {
		return
	}
	defer t.beginBatch("Insert")()
	t.shadowInsert(keys, values)
	t.withRecovery(true, func() { t.insertOnce(keys, values, pb) })
	t.syncKeyCount()
}

func (t *PIMTrie) insertOnce(keys []bitstr.String, values []uint64, pb *Prepared) {
	defer t.sys.Phase("insert")()
	out := t.matchWithRedo(keys, pb)
	endApply := t.sys.Phase("apply")
	t.dirty++ // module state is mixed until the apply (and any split) lands
	// Resolve batch duplicates: last write wins.
	val := make([]uint64, len(out.qt.Keys))
	for i := range keys {
		val[out.qt.Slot[i]] = values[i]
	}
	// Group keys by anchor block: each key is inserted into the block of
	// its bottommost verified hit, as the remainder relative to that
	// block's root.
	// Per-key remainder extraction (the allocating part) fans out; the
	// map grouping stays serial so per-block lists keep ascending key
	// order.
	pcs, rels := t.keyScratch(len(out.qt.Keys))
	parallel.For(len(out.qt.Keys), func(u int) {
		pc := out.anchorPiece[out.qt.Nodes[u]]
		pcs[u] = pc
		if pc != nil {
			rels[u] = out.qt.Keys[u].Suffix(pc.hit.depth)
		}
	})
	groups := t.insGroups
	if groups == nil {
		groups = map[pim.Addr][]insOp{}
		t.insGroups = groups
	} else {
		clear(groups)
	}
	words, order := t.groupScratch()
	// order is the first-seen block order: it keeps task emission (and
	// the RandModule draws any follow-up split consumes) deterministic
	// for a fixed seed.
	for u := range out.qt.Keys {
		if pcs[u] == nil {
			panic("core: key without an anchor piece")
		}
		blk := pcs[u].hit.info.Block
		if _, seen := groups[blk]; !seen {
			order = append(order, blk)
		}
		groups[blk] = append(groups[blk], insOp{rel: rels[u], value: val[u]})
		// Shared prefixes below the anchor travel once in the real
		// protocol; charge the unmatched remainder, which dominates.
		words[blk] += rels[u].Words() + 2
	}
	t.groupOrder = order
	type insReply struct {
		newKeys   int
		sizeWords int
		region    pim.Addr
		keyCount  int
	}
	tasks := make([]pim.Task, 0, len(groups))
	addrs := make([]pim.Addr, 0, len(groups))
	for _, blk := range order {
		blk, g := blk, groups[blk]
		tasks = append(tasks, pim.Task{
			Module:    blk.Module,
			SendWords: words[blk],
			Run: func(m *pim.Module) pim.Resp {
				bo := m.Get(blk.ID).(*blockObj)
				fresh := 0
				work := 0
				for _, in := range g {
					if bo.tr.Insert(in.rel, in.value) {
						fresh++
					}
					work += in.rel.Words() + 1
				}
				m.Work(work)
				m.Resize(blk.ID)
				return pim.Resp{RecvWords: 4, Value: insReply{
					newKeys: fresh, sizeWords: bo.tr.SizeWords(), region: bo.region, keyCount: bo.tr.KeyCount(),
				}}
			},
		})
		addrs = append(addrs, blk)
	}
	var oversized []pim.Addr
	for i, r := range t.sys.Round(tasks) {
		rep := r.Value.(insReply)
		t.nKeys += rep.newKeys
		if rep.sizeWords > t.cfg.BlockWords {
			oversized = append(oversized, addrs[i])
		}
	}
	endApply()
	if len(oversized) > 0 {
		t.splitBlocks(oversized)
	}
	t.dirty--
}

// Delete removes a batch of keys (§5.2), reporting per key whether it
// was present.
func (t *PIMTrie) Delete(keys []bitstr.String) []bool { return t.deleteBatch(keys, nil) }

// DeletePrepared is Delete consuming a staged preparation; see Prepare.
func (t *PIMTrie) DeletePrepared(pb *Prepared) []bool { return t.deleteBatch(pb.batch, pb) }

func (t *PIMTrie) deleteBatch(keys []bitstr.String, pb *Prepared) []bool {
	if len(keys) == 0 {
		return []bool{}
	}
	defer t.beginBatch("Delete")()
	// In recoverable mode the result comes from the shadow: it encodes
	// exactly the sequential-duplicate semantics (first occurrence of a
	// present key reports true), and it survives a mid-batch recovery
	// that replays or rebuilds the distributed application.
	var shadowRes []bool
	if t.recoverable {
		end := t.sys.Phase("shadow")
		shadowRes = make([]bool, len(keys))
		// Whole-batch write lock: a concurrent Snapshot sees all of
		// this batch's deletes or none of them (see snapshot.go).
		t.shadowMu.Lock()
		w := 0
		for i, k := range keys {
			shadowRes[i] = t.shadow.Delete(k)
			w += k.Words() + 1
		}
		t.shadowVer++
		t.shadowMu.Unlock()
		t.sys.CPUWork(w)
		end()
	}
	var res []bool
	t.withRecovery(true, func() { res = t.deleteOnce(keys, pb) })
	t.syncKeyCount()
	if t.recoverable {
		return shadowRes
	}
	return res
}

func (t *PIMTrie) deleteOnce(keys []bitstr.String, pb *Prepared) []bool {
	res := make([]bool, len(keys))
	defer t.sys.Phase("delete")()
	out := t.matchWithRedo(keys, pb)
	endApply := t.sys.Phase("apply")
	t.dirty++ // module state is mixed until the apply (and any removal) lands
	groups := t.delGroups
	if groups == nil {
		groups = map[pim.Addr][]delOp{}
		t.delGroups = groups
	} else {
		clear(groups)
	}
	present := make([]bool, len(out.qt.Keys))
	// Presence checks and remainder extraction fan out; grouping stays
	// serial (same ascending-key order per block as the serial loop).
	pcs, rels := t.keyScratch(len(out.qt.Keys))
	parallel.For(len(out.qt.Keys), func(u int) {
		n := out.qt.Nodes[u]
		if out.reach[n] != n.Depth {
			return
		}
		ex, ok := out.exact[n]
		if !ok || !ex.hasValue {
			return
		}
		present[u] = true
		pc := out.anchorPiece[n]
		pcs[u] = pc
		rels[u] = out.qt.Keys[u].Suffix(pc.hit.depth)
	})
	words, order := t.groupScratch() // first-seen order, as in Insert
	for u := range out.qt.Keys {
		if !present[u] {
			continue
		}
		blk := pcs[u].hit.info.Block
		if _, seen := groups[blk]; !seen {
			order = append(order, blk)
		}
		groups[blk] = append(groups[blk], delOp{rel: rels[u], u: u})
		words[blk] += rels[u].Words() + 2
	}
	t.groupOrder = order
	type delReply struct {
		removed  int
		empty    bool
		region   pim.Addr
		isLeaf   bool
		rootHash uint64
	}
	tasks := make([]pim.Task, 0, len(groups))
	addrs := make([]pim.Addr, 0, len(groups))
	for _, blk := range order {
		blk, g := blk, groups[blk]
		tasks = append(tasks, pim.Task{
			Module:    blk.Module,
			SendWords: words[blk],
			Run: func(m *pim.Module) pim.Resp {
				bo := m.Get(blk.ID).(*blockObj)
				removed, work := 0, 0
				for _, d := range g {
					if bo.tr.Delete(d.rel) {
						removed++
					}
					work += d.rel.Words() + 1
				}
				m.Work(work)
				m.Resize(blk.ID)
				live := 0
				for _, c := range bo.children {
					if !c.IsNil() {
						live++
					}
				}
				return pim.Resp{RecvWords: 4, Value: delReply{
					removed: removed,
					empty:   bo.tr.KeyCount() == 0 && live == 0,
					region:  bo.region, rootHash: bo.rootHash,
				}}
			},
		})
		addrs = append(addrs, blk)
	}
	var emptied []pim.Addr
	for i, r := range t.sys.Round(tasks) {
		rep := r.Value.(delReply)
		t.nKeys -= rep.removed
		if rep.empty && addrs[i] != t.rootBlock {
			emptied = append(emptied, addrs[i])
		}
	}
	endApply()
	if len(emptied) > 0 {
		t.removeBlocks(emptied)
	}
	t.dirty--
	// Sequential semantics for duplicate batch entries: only the first
	// occurrence of a present key reports true.
	reported := make([]bool, len(out.qt.Keys))
	for i := range keys {
		u := out.qt.Slot[i]
		if present[u] && !reported[u] {
			res[i] = true
			reported[u] = true
		}
	}
	return res
}

// SubtreeQuery returns every stored (key, value) whose key extends the
// given prefix (§5.3), in lexicographic order.
func (t *PIMTrie) SubtreeQuery(prefix bitstr.String) []trie.KV {
	return t.SubtreeQueryBatch([]bitstr.String{prefix})[0]
}

// SubtreeQueryBatch answers a batch of subtree queries (the paper's
// operations are all batch-parallel, §4 "Overview"): one matching pass
// locates every prefix, then block contents are gathered level by level
// over the block trees below the loci, with all queries sharing each
// BFS round. results[i] corresponds to prefixes[i]; overlapping queries
// fetch their blocks independently (each result must be complete).
func (t *PIMTrie) SubtreeQueryBatch(prefixes []bitstr.String) [][]trie.KV {
	return t.subtreeBatch(prefixes, nil)
}

// SubtreeQueryPrepared is SubtreeQueryBatch consuming a staged
// preparation of the prefix batch; see Prepare.
func (t *PIMTrie) SubtreeQueryPrepared(pb *Prepared) [][]trie.KV {
	return t.subtreeBatch(pb.batch, pb)
}

func (t *PIMTrie) subtreeBatch(prefixes []bitstr.String, pb *Prepared) [][]trie.KV {
	if len(prefixes) == 0 {
		return [][]trie.KV{}
	}
	defer t.beginBatch("SubtreeQuery")()
	var results [][]trie.KV
	t.withRecovery(false, func() { results = t.subtreeOnce(prefixes, pb) })
	return results
}

func (t *PIMTrie) subtreeOnce(prefixes []bitstr.String, pb *Prepared) [][]trie.KV {
	results := make([][]trie.KV, len(prefixes))
	defer t.sys.Phase("subtree")()
	out := t.matchWithRedo(prefixes, pb)
	endGather := t.sys.Phase("push-pull")

	type fetch struct {
		q     int // query index
		addr  pim.Addr
		abs   bitstr.String // absolute string of the block root
		locus bitstr.String // collect only below this relative position
	}
	var level []fetch
	for i, prefix := range prefixes {
		u := out.qt.Slot[i]
		n := out.qt.Nodes[u]
		if out.reach[n] != n.Depth {
			continue // prefix not present: empty result
		}
		pc := out.anchorPiece[n]
		level = append(level, fetch{
			q:     i,
			addr:  pc.hit.info.Block,
			abs:   prefix.Prefix(pc.hit.depth),
			locus: prefix.Suffix(pc.hit.depth),
		})
	}
	for len(level) > 0 {
		tasks := make([]pim.Task, len(level))
		parallel.For(len(level), func(i int) {
			f := level[i]
			tasks[i] = pim.Task{
				Module:    f.addr.Module,
				SendWords: f.locus.Words() + 2,
				Run: func(m *pim.Module) pim.Resp {
					bo := m.Get(f.addr.ID).(*blockObj)
					kvs := bo.tr.SubtreeKeys(f.locus)
					// Mirrors below the locus name child blocks to fetch.
					var kids []mirrorOut
					bo.tr.WalkPreorder(func(nd *trie.Node) bool {
						if nd.Mirror {
							rel := trie.NodeString(nd)
							if rel.HasPrefix(f.locus) {
								kids = append(kids, mirrorOut{addr: bo.children[nd.Value], rel: rel})
							}
							return false
						}
						return true
					})
					w := 0
					for _, kv := range kvs {
						w += kv.Key.Words() + 2
					}
					m.Work(bo.tr.NodeCount())
					return pim.Resp{RecvWords: w + len(kids)*3 + 1, Value: subtreeReply{kvs: kvs, kids: kids}}
				},
			}
		})
		var next []fetch
		for i, r := range t.sys.Round(tasks) {
			rep := r.Value.(subtreeReply)
			f := level[i]
			for _, kv := range rep.kvs {
				results[f.q] = append(results[f.q], trie.KV{Key: f.abs.Concat(kv.Key), Value: kv.Value})
			}
			for _, k := range rep.kids {
				if k.addr.IsNil() {
					continue
				}
				next = append(next, fetch{q: f.q, addr: k.addr, abs: f.abs.Concat(k.rel), locus: bitstr.Empty})
			}
		}
		level = next
	}
	endGather()
	// Each query's result sorts independently.
	parallel.For(len(results), func(i int) { sortKVs(results[i]) })
	return results
}

type mirrorOut struct {
	addr pim.Addr
	rel  bitstr.String
}

type subtreeReply struct {
	kvs  []trie.KV
	kids []mirrorOut
}

// sortKVsRadixCutoff is the result size above which the shared parallel
// MSD radix sort (bitstr.ArgSort, the same core behind query-trie
// construction) beats the comparison sort.
const sortKVsRadixCutoff = 2048

// sortKVs orders results lexicographically (blocks return their own
// contents sorted, but block subtrees interleave). Small results take
// the stdlib comparison sort; large ones go through the shared parallel
// radix ArgSort over the packed key words. Keys within one result are
// unique (each stored key appears once), so tie order cannot differ
// between the two paths; with ties (which tests construct directly) both
// paths are still deterministic for a fixed input.
func sortKVs(kvs []trie.KV) {
	if len(kvs) < 2 {
		return
	}
	if len(kvs) <= sortKVsRadixCutoff {
		slices.SortFunc(kvs, func(a, b trie.KV) int { return bitstr.Compare(a.Key, b.Key) })
		return
	}
	keys := make([]bitstr.String, len(kvs))
	idx := make([]int, len(kvs))
	for i, kv := range kvs {
		keys[i] = kv.Key
		idx[i] = i
	}
	bitstr.ArgSort(keys, idx, parallel.MaxProcs())
	sorted := make([]trie.KV, len(kvs))
	for i, j := range idx {
		sorted[i] = kvs[j]
	}
	copy(kvs, sorted)
}

var _ = fmt.Sprintf
