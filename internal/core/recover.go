package core

// Module-loss recovery. The host retains a key authority in recoverable
// mode — a shadow trie holding every stored key plus a directory mapping
// each live block to the absolute bit string of its root — so when the
// fault layer crash-stops a module, the index can rebuild exactly the
// lost shard and resume the in-flight batch.
//
// Two tiers of repair, chosen by the dirty counter:
//
//   - Targeted (dirty == 0): the fault landed in a read-only window, so
//     every surviving block and the directory are coherent. Each lost
//     block is re-derived host-side from the shadow (its root string and
//     child-root strings come from the directory), re-placed on a random
//     module, re-wired to its surviving parent and children, and the
//     HVM (regions + master) is reassembled over the full directory.
//     Only the lost shard is re-pushed.
//
//   - Full rebuild (dirty > 0): the fault interrupted a distributed
//     mutation (apply, split, removal, rehash, load), so survivors may
//     hold half-applied state. The whole index is rebuilt from the
//     shadow via the bulk-load path. Because mutations update the shadow
//     before touching modules, the rebuilt state is the post-batch
//     state, and the interrupted mutation must not be replayed.
//
// Every repair round runs with fault injection suspended, inside a
// "recover" phase, so the cost is first-class in the model metrics and
// attributable by the obs tracer.

import (
	"sort"

	"github.com/pimlab/pimtrie/internal/bitstr"
	"github.com/pimlab/pimtrie/internal/pim"
	"github.com/pimlab/pimtrie/internal/trie"
)

// Health reports the index's fault/recovery status.
type Health struct {
	Recoverable bool  // host key authority maintained
	Degraded    bool  // a recovery is in progress
	DeadModules []int // currently crash-stopped modules

	Recoveries   int // completed Recover runs
	FullRebuilds int // recoveries that had to rebuild from the shadow
	ModulesLost  int // modules lost across all recoveries

	// Injected-fault counts from the system's fault plan.
	Crashes     int64
	Straggles   int64
	Truncations int64

	// RecoveryCost accumulates the model cost of every repair (rounds,
	// IO time/words, PIM and CPU work attributed to "recover" phases).
	RecoveryCost pim.Metrics
}

// Health returns the current fault/recovery status.
func (t *PIMTrie) Health() Health {
	h := Health{
		Recoverable:  t.recoverable,
		Degraded:     t.degraded,
		DeadModules:  t.sys.DeadModules(),
		Recoveries:   t.recoveries,
		FullRebuilds: t.fullRebuilds,
		ModulesLost:  t.modulesLost,
		RecoveryCost: t.recoveryCost,
	}
	h.Crashes, h.Straggles, h.Truncations = t.sys.FaultCounts()
	return h
}

// shadowInsert mirrors a batch of insertions into the host key
// authority, before the distributed application (see withRecovery).
func (t *PIMTrie) shadowInsert(keys []bitstr.String, values []uint64) {
	if !t.recoverable {
		return
	}
	defer t.sys.Phase("shadow")()
	// The whole batch mutates under one write lock so a concurrent
	// Snapshot lands on a batch boundary (see snapshot.go).
	t.shadowMu.Lock()
	w := 0
	for i, k := range keys {
		t.shadow.Insert(k, values[i])
		w += k.Words() + 1
	}
	t.shadowVer++
	t.shadowMu.Unlock()
	t.sys.CPUWork(w)
}

// syncKeyCount makes the shadow authoritative for the key count after a
// mutation: a recovery in the middle of a batch can leave the
// incremental per-reply tally short or long, the shadow never is.
func (t *PIMTrie) syncKeyCount() {
	if t.recoverable {
		t.nKeys = t.shadow.KeyCount()
	}
}

// withRecovery runs op, catching module-loss faults and repairing. A
// read-only op is simply retried after repair. A mutating op is retried
// only after a targeted repair (which restores pre-batch module state);
// after a full rebuild the shadow — already updated with the batch —
// has produced post-batch state, so replaying would be wrong for
// nothing (inserts are idempotent) and wasteful, and is skipped.
func (t *PIMTrie) withRecovery(mutating bool, op func()) {
	if !t.recoverable {
		op()
		return
	}
	for {
		lost := t.catchLost(op)
		if lost == nil {
			return
		}
		if t.recoverFrom(lost) && mutating {
			return
		}
	}
}

// catchLost runs op and converts a *pim.ModuleLostError panic into a
// return value, rebalancing the phase stack the panic unwound past.
// Any other panic (including *pim.InvariantError — a bug, never a
// fault) propagates.
func (t *PIMTrie) catchLost(op func()) (lost *pim.ModuleLostError) {
	depth := t.sys.PhaseDepth()
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		e, ok := r.(*pim.ModuleLostError)
		if !ok {
			panic(r)
		}
		t.sys.UnwindPhases(depth)
		lost = e
	}()
	op()
	return nil
}

// recoverFrom repairs after a module loss and reports whether the
// repair was a full rebuild (see withRecovery for what that means for
// the interrupted batch).
func (t *PIMTrie) recoverFrom(lost *pim.ModuleLostError) (full bool) {
	t.degraded = true
	start := t.sys.Metrics()
	t.sys.SuspendFaults()
	defer t.sys.ResumeFaults()
	end := t.sys.Phase("recover")
	defer end()

	dead := t.sys.DeadModules()
	if len(dead) == 0 {
		dead = lost.Modules
	}
	t.sys.Respawn(dead...)
	t.reallocMasters(dead)

	full = t.dirty > 0
	if full {
		t.fullRebuilds++
		t.rebuildFromShadow()
	} else {
		t.rebuildLost(dead)
	}
	t.dirty = 0
	t.recoveries++
	t.modulesLost += len(dead)
	t.recoveryCost = t.recoveryCost.Add(t.sys.Metrics().Sub(start))
	t.degraded = false
	return full
}

// reallocMasters re-creates the master-table replica objects on the
// respawned modules (their content is refilled by the broadcast inside
// the HVM reassembly both repair tiers end with).
func (t *PIMTrie) reallocMasters(dead []int) {
	tasks := make([]pim.Task, len(dead))
	for i, mi := range dead {
		tasks[i] = pim.Task{Module: mi, SendWords: 1, Run: func(m *pim.Module) pim.Resp {
			return pim.Resp{RecvWords: 1, Value: m.Alloc(&masterObj{entries: newMetaTable(0)})}
		}}
	}
	for i, r := range t.sys.Round(tasks) {
		t.masterAddrs[dead[i]] = r.Value.(pim.Addr)
	}
}

// rebuildFromShadow reloads the whole index from the host key
// authority via the bulk-load path (which clears all block/region
// objects, repartitions, redistributes, and reassembles the HVM and
// block directory).
func (t *PIMTrie) rebuildFromShadow() {
	full := trie.New()
	w := 0
	// Walk a flattened snapshot of the shadow: key reconstruction from
	// the label pool is O(total label bits), where the pointer walk pays
	// a Concat chain per root-to-leaf path. Keys arrive in the same
	// lexicographic order, and the accounting below only depends on the
	// keys themselves, so the model cost is unchanged.
	shadowFlat := trie.Flatten(t.shadow)
	shadowFlat.WalkKeys(func(key bitstr.String, value uint64) {
		full.Insert(key, value)
		w += key.Words() + 1
	})
	t.sys.CPUWork(w)
	t.nKeys = full.KeyCount()
	t.dirty = 0 // entering loadFromTrie's own dirty window from a clean slate
	t.loadFromTrie(full)
}

// dirEntry is one block-directory record with its topology resolved:
// entries are sorted lexicographically by root string, and parent is
// the entry whose string is the longest proper prefix.
type dirEntry struct {
	addr     pim.Addr
	str      bitstr.String
	parent   int // index into the entries slice, or -1 for the root
	children []int
}

// dirEntries materializes the block directory in deterministic order
// with parent/child topology. Lexicographic order puts every prefix
// before its extensions, so a stack walk recovers the tree.
func (t *PIMTrie) dirEntries() []dirEntry {
	ents := make([]dirEntry, 0, len(t.blockDir))
	for a, s := range t.blockDir {
		ents = append(ents, dirEntry{addr: a, str: s, parent: -1})
	}
	sort.Slice(ents, func(i, j int) bool { return bitstr.Compare(ents[i].str, ents[j].str) < 0 })
	var stack []int
	for i := range ents {
		for len(stack) > 0 && !ents[i].str.HasPrefix(ents[stack[len(stack)-1]].str) {
			stack = stack[:len(stack)-1]
		}
		if len(stack) > 0 {
			p := stack[len(stack)-1]
			ents[i].parent = p
			ents[p].children = append(ents[p].children, i)
		}
		stack = append(stack, i)
	}
	return ents
}

// rebuildLost is the targeted repair: re-derive only the lost modules'
// blocks from the shadow, re-place and re-wire them, then reassemble
// the HVM over the full directory.
func (t *PIMTrie) rebuildLost(dead []int) {
	lostMod := map[int]bool{}
	for _, mi := range dead {
		lostMod[mi] = true
	}
	ents := t.dirEntries()
	var lostIdx []int
	for i := range ents {
		if lostMod[ents[i].addr.Module] {
			lostIdx = append(lostIdx, i)
		}
	}
	// Snapshot the shadow once: every lost block re-derivation below
	// queries SubtreeKeys against the flattened arrays instead of
	// chasing pointers through the full shadow per block.
	var shadowFlat *trie.Flat
	if len(lostIdx) > 0 {
		shadowFlat = trie.Flatten(t.shadow)
	}

	// Re-derive each lost block host-side: its keys are the shadow keys
	// below its root that are not below any child block root, inserted
	// relative to the root; its mirrors are the child roots (which form
	// an antichain no retained key extends, so InsertMirror always finds
	// a fresh position).
	type rebuilt struct {
		ent     int
		bo      *blockObj
		keyless bool // zero keys and zero children: reclaim after reassembly
	}
	rebuilds := make([]rebuilt, len(lostIdx))
	w := 0
	for ri, ei := range lostIdx {
		e := &ents[ei]
		bt := trie.New()
		childRel := make([]bitstr.String, len(e.children))
		for ci, c := range e.children {
			childRel[ci] = ents[c].str.Suffix(e.str.Len())
		}
		nkeys := 0
		for _, kv := range shadowFlat.SubtreeKeys(e.str) {
			rel := kv.Key.Suffix(e.str.Len())
			under := false
			for _, cr := range childRel {
				if rel.HasPrefix(cr) {
					under = true
					break
				}
			}
			if under {
				continue
			}
			bt.Insert(rel, kv.Value)
			nkeys++
		}
		for ci, cr := range childRel {
			bt.InsertMirror(cr, uint64(ci))
		}
		val := t.h.Hash(e.str)
		bo := &blockObj{
			tr: bt, rootLen: e.str.Len(), rootVal: val, rootHash: t.h.Out(val),
			sLast: slastOf(e.str), parent: pim.NilAddr, region: pim.NilAddr,
		}
		w += bt.SizeWords() + e.str.Words() + 1
		rebuilds[ri] = rebuilt{ent: ei, bo: bo, keyless: nkeys == 0 && len(e.children) == 0}
	}
	t.sys.CPUWork(w)

	// One round: place the rebuilt blocks on uniformly random modules.
	newAddr := map[pim.Addr]pim.Addr{} // old (dead) address -> new
	if len(rebuilds) > 0 {
		alloc := make([]pim.Task, len(rebuilds))
		for i := range rebuilds {
			bo := rebuilds[i].bo
			alloc[i] = pim.Task{
				Module:    t.sys.RandModule(),
				SendWords: bo.SizeWords(),
				Run: func(m *pim.Module) pim.Resp {
					return pim.Resp{RecvWords: 1, Value: m.Alloc(bo)}
				},
			}
		}
		for i, r := range t.sys.Round(alloc) {
			newAddr[ents[rebuilds[i].ent].addr] = r.Value.(pim.Addr)
		}
	}
	trans := func(a pim.Addr) pim.Addr {
		if na, ok := newAddr[a]; ok {
			return na
		}
		return a
	}

	// One round: wire the rebuilt blocks (children + parent, with final
	// addresses), swap the moved child address in surviving parents, and
	// re-point surviving children of lost blocks at the new parent.
	var wire []pim.Task
	for _, rb := range rebuilds {
		e := &ents[rb.ent]
		children := make([]pim.Addr, len(e.children))
		for ci, c := range e.children {
			children[ci] = trans(ents[c].addr)
		}
		parent := pim.NilAddr
		if e.parent >= 0 {
			parent = trans(ents[e.parent].addr)
		}
		na, bo := newAddr[e.addr], rb.bo
		wire = append(wire, pim.Task{
			Module:    na.Module,
			SendWords: len(children) + 2,
			Run: func(m *pim.Module) pim.Resp {
				bo.children = children
				bo.parent = parent
				m.Resize(na.ID)
				return pim.Resp{}
			},
		})
	}
	for _, rb := range rebuilds {
		e := &ents[rb.ent]
		old, na := e.addr, newAddr[e.addr]
		if e.parent >= 0 && !lostMod[ents[e.parent].addr.Module] {
			pa := ents[e.parent].addr
			old, na := old, na
			wire = append(wire, pim.Task{
				Module:    pa.Module,
				SendWords: 3,
				Run: func(m *pim.Module) pim.Resp {
					bo := m.Get(pa.ID).(*blockObj)
					for ci, c := range bo.children {
						if c == old {
							bo.children[ci] = na
						}
					}
					return pim.Resp{}
				},
			})
		}
		for _, c := range e.children {
			if lostMod[ents[c].addr.Module] {
				continue
			}
			ca, na := ents[c].addr, na
			wire = append(wire, pim.Task{
				Module:    ca.Module,
				SendWords: 2,
				Run: func(m *pim.Module) pim.Resp {
					m.Get(ca.ID).(*blockObj).parent = na
					return pim.Resp{}
				},
			})
		}
	}
	t.sys.Round(wire)

	// Swap directory entries and the root-block address.
	for old, na := range newAddr {
		str := t.blockDir[old]
		delete(t.blockDir, old)
		t.blockDir[na] = str
	}
	t.rootBlock = trans(t.rootBlock)

	// Reassemble the HVM over the full directory: every block's meta is
	// recomputed host-side (root hashes from the directory strings), old
	// regions are freed, regions and the master table are rebuilt, and
	// every block is pointed at its region. A fresh region partition can
	// co-locate metas that never shared a lookup table before, so a
	// collision is possible even though the pre-crash state was valid;
	// the global re-hash heals it.
	metas := make([]*blockMeta, len(ents))
	w = 0
	for i := range ents {
		e := &ents[i]
		parent := pim.NilAddr
		if e.parent >= 0 {
			parent = trans(ents[e.parent].addr)
		}
		children := make([]pim.Addr, len(e.children))
		for ci, c := range e.children {
			children[ci] = trans(ents[c].addr)
		}
		metas[i] = &blockMeta{
			addr: trans(e.addr), parent: parent, val: t.h.Hash(e.str),
			len: e.str.Len(), sLast: slastOf(e.str), children: children,
		}
		w += e.str.Words() + 1
	}
	t.sys.CPUWork(w)
	t.freeRegions()
	if err := t.assembleHVM(metas); err != nil {
		t.rehash()
	}

	// A rebuilt block can come back with zero keys and zero children when
	// the shadow ran ahead of an interrupted Delete batch (the shadow is
	// updated first). Such a block must not stay matchable — the fault-
	// free run would have reclaimed it — so reclaim it now through the
	// ordinary removal path (which cascades and updates the directory).
	var empty []pim.Addr
	for _, rb := range rebuilds {
		if rb.keyless {
			if a := newAddr[ents[rb.ent].addr]; a != t.rootBlock {
				empty = append(empty, a)
			}
		}
	}
	if len(empty) > 0 {
		t.removeBlocks(empty)
	}
}
