// Package zfast implements a z-fast-style trie (Belazzougui, Boldi,
// Vigna [8]; paper §3.1): a static compressed binary trie of bounded
// height indexed by handle hashes so that the deepest node whose string
// is a prefix of a query can be located with a fat binary search in
// O(log h) hash probes whp, h being the trie height.
//
// PIM-trie uses these as local shortcut structures (§4.4.2): one per
// pivot node, of height at most w bits, so lookups cost O(log w). The
// implementation verifies candidates bit-wise after the search, so a
// hash collision can only cost extra probes, never a wrong answer.
package zfast

import (
	"math/bits"

	"github.com/pimlab/pimtrie/internal/bitstr"
	"github.com/pimlab/pimtrie/internal/hashing"
	"github.com/pimlab/pimtrie/internal/trie"
)

// Index is a static z-fast index over the compressed nodes of a trie.
type Index struct {
	h       *hashing.Hasher
	root    *trie.Node
	handles map[hashing.Value]*trie.Node // handle hash -> node
	extents map[*trie.Node]bitstr.String // node -> its represented string
	height  int
	// Probes counts hash probes since construction (cost-model telemetry).
	Probes int
}

// Build indexes every compressed node of t. The hasher must be the same
// instance used to hash the query prefixes.
func Build(t *trie.Trie, h *hashing.Hasher) *Index {
	ix := &Index{
		h:       h,
		root:    t.Root(),
		handles: map[hashing.Value]*trie.Node{},
		extents: map[*trie.Node]bitstr.String{},
	}
	var rec func(n *trie.Node, s bitstr.String, hv hashing.Value)
	rec = func(n *trie.Node, s bitstr.String, hv hashing.Value) {
		ix.extents[n] = s
		if n.Depth > ix.height {
			ix.height = n.Depth
		}
		if n.Parent != nil {
			// Handle = extent prefix whose length is the 2-fattest number
			// in (parent depth, depth].
			f := twoFattest(n.Parent.Depth, n.Depth)
			ix.handles[h.Hash(s.Prefix(f))] = n
		}
		for b := 0; b < 2; b++ {
			if e := n.Child[b]; e != nil {
				rec(e.To, s.Concat(e.Label), h.Extend(hv, e.Label))
			}
		}
	}
	rec(t.Root(), bitstr.Empty, hashing.EmptyValue())
	return ix
}

// twoFattest returns the integer in (a, b] with the most trailing zeros.
func twoFattest(a, b int) int {
	if a >= b {
		panic("zfast: empty interval")
	}
	// Clearing bits of b below the highest bit where a and b differ gives
	// the unique multiple of the largest power of two inside (a, b].
	d := bits.Len64(uint64(a^b)) - 1
	return b &^ (1<<uint(d) - 1)
}

// Height returns the trie height in bits.
func (ix *Index) Height() int { return ix.height }

// Locate returns the deepest compressed node whose represented string is
// a prefix of q, along with that node's depth. It always succeeds (the
// root matches everything). The search costs O(log height) probes whp;
// the final answer is verified against stored extents, so it is exact
// regardless of hash behaviour.
func (ix *Index) Locate(q bitstr.String) (*trie.Node, int) {
	best := ix.root
	a, b := 0, q.Len()
	if ix.height < b {
		b = ix.height
	}
	for a < b {
		f := twoFattest(a, b)
		ix.Probes++
		if n, ok := ix.handles[ix.h.Hash(q.Prefix(f))]; ok {
			d := n.Depth
			if d > b {
				// The node's extent extends beyond the interval; its handle
				// matched, so the extent agrees with q at least to f. Jump
				// to its depth clipped into the interval for the next round.
				d = b
			}
			best = n
			a = d
		} else {
			b = f - 1
		}
	}
	// Verification walk: hash matches only suggest the candidate; confirm
	// bit-wise and repair by moving up, then extend downward while a
	// child edge still matches q. Whp the loop bodies run O(1) times.
	n := best
	for n != ix.root && !q.HasPrefix(ix.extents[n]) {
		n = n.Parent
	}
	for {
		d := n.Depth
		if d >= q.Len() {
			break
		}
		e := n.Child[q.BitAt(d)]
		if e == nil {
			break
		}
		l := e.Label.Len()
		if d+l > q.Len() || bitstr.LCP(e.Label, q.Slice(d, q.Len())) < l {
			break
		}
		n = e.To
	}
	return n, n.Depth
}

// LocusLCP returns the length of the longest prefix of q that lies on the
// trie's path structure (counting positions inside edges), plus the
// deepest compressed node at or above that point — the building block of
// the efficient local matching of §4.4.2.
func (ix *Index) LocusLCP(q bitstr.String) (*trie.Node, int) {
	n, d := ix.Locate(q)
	if d >= q.Len() {
		return n, d
	}
	e := n.Child[q.BitAt(d)]
	if e == nil {
		return n, d
	}
	l := bitstr.LCP(e.Label, q.Slice(d, q.Len()))
	return n, d + l
}
