package zfast

import (
	"math/rand"
	"strings"
	"testing"

	"github.com/pimlab/pimtrie/internal/bitstr"
	"github.com/pimlab/pimtrie/internal/hashing"
	"github.com/pimlab/pimtrie/internal/trie"
)

func randomKey(r *rand.Rand, maxLen int) string {
	n := r.Intn(maxLen + 1)
	var b strings.Builder
	for i := 0; i < n; i++ {
		b.WriteByte('0' + byte(r.Intn(2)))
	}
	return b.String()
}

func TestTwoFattest(t *testing.T) {
	// Brute-force reference: value in (a, b] with most trailing zeros
	// (the unique multiple of the largest power of two in the interval).
	for a := 0; a < 130; a++ {
		for b := a + 1; b < 130; b++ {
			best, bestTZ := -1, -1
			for v := a + 1; v <= b; v++ {
				tz := 0
				for x := v; x&1 == 0 && x > 0; x >>= 1 {
					tz++
				}
				if v == 0 {
					tz = 64
				}
				if tz > bestTZ {
					best, bestTZ = v, tz
				}
			}
			if got := twoFattest(a, b); got != best {
				t.Fatalf("twoFattest(%d,%d) = %d, want %d", a, b, got, best)
			}
		}
	}
}

// naiveLocate is the specification of Locate: deepest compressed node
// whose string is a prefix of q.
func naiveLocate(tr *trie.Trie, q bitstr.String) *trie.Node {
	best := tr.Root()
	tr.WalkPreorder(func(n *trie.Node) bool {
		s := trie.NodeString(n)
		if q.HasPrefix(s) {
			if n.Depth > best.Depth {
				best = n
			}
			return true
		}
		return bitstr.LCP(s, q) == s.Len() // descend only along q's path
	})
	return best
}

func TestLocateAgainstNaive(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	h := hashing.New(11, 0)
	for trial := 0; trial < 20; trial++ {
		tr := trie.New()
		var keys []string
		for i := 0; i < 100; i++ {
			k := randomKey(r, 60)
			if len(keys) > 0 && r.Intn(3) == 0 {
				k = keys[r.Intn(len(keys))] + randomKey(r, 15)
			}
			keys = append(keys, k)
			tr.Insert(bitstr.MustParse(k), uint64(i))
		}
		ix := Build(tr, h)
		for probe := 0; probe < 200; probe++ {
			var q bitstr.String
			switch probe % 3 {
			case 0:
				q = bitstr.MustParse(randomKey(r, 70))
			case 1:
				k := keys[r.Intn(len(keys))]
				q = bitstr.MustParse(k[:r.Intn(len(k)+1)])
			default:
				q = bitstr.MustParse(keys[r.Intn(len(keys))] + randomKey(r, 10))
			}
			got, depth := ix.Locate(q)
			want := naiveLocate(tr, q)
			if got != want {
				t.Fatalf("trial %d: Locate(%q) depth %d, want depth %d", trial, q, depth, want.Depth)
			}
			if depth != got.Depth {
				t.Fatalf("Locate returned depth %d for node of depth %d", depth, got.Depth)
			}
		}
	}
}

func TestLocateEmptyQueryAndRoot(t *testing.T) {
	h := hashing.New(2, 0)
	tr := trie.New()
	tr.Insert(bitstr.MustParse("0101"), 1)
	ix := Build(tr, h)
	n, d := ix.Locate(bitstr.Empty)
	if n != tr.Root() || d != 0 {
		t.Fatalf("Locate(empty) = depth %d", d)
	}
	n, d = ix.Locate(bitstr.MustParse("1111"))
	if n != tr.Root() || d != 0 {
		t.Fatalf("Locate(divergent) = depth %d", d)
	}
}

func TestLocusLCP(t *testing.T) {
	h := hashing.New(3, 0)
	tr := trie.New()
	tr.Insert(bitstr.MustParse("0000111"), 1)
	tr.Insert(bitstr.MustParse("00"), 2)
	ix := Build(tr, h)
	// "000011" runs 6 bits into the edge below "00".
	n, l := ix.LocusLCP(bitstr.MustParse("0000110"))
	if l != 6 {
		t.Fatalf("LocusLCP = %d, want 6", l)
	}
	if trie.NodeString(n).String() != "00" {
		t.Fatalf("host node = %q", trie.NodeString(n))
	}
	// Exact node hit.
	_, l = ix.LocusLCP(bitstr.MustParse("00"))
	if l != 2 {
		t.Fatalf("LocusLCP exact = %d", l)
	}
}

func TestProbeCountLogarithmicInHeight(t *testing.T) {
	// A trie of height 64 must be searchable in ~log2(64)+1 probes.
	h := hashing.New(4, 0)
	r := rand.New(rand.NewSource(5))
	tr := trie.New()
	for i := 0; i < 2000; i++ {
		tr.Insert(bitstr.FromUint64(r.Uint64(), 64), uint64(i))
	}
	ix := Build(tr, h)
	q := bitstr.FromUint64(r.Uint64(), 64)
	before := ix.Probes
	ix.Locate(q)
	if used := ix.Probes - before; used > 8 {
		t.Fatalf("Locate used %d probes for height %d", used, ix.Height())
	}
}

func TestNarrowHashStillExact(t *testing.T) {
	// With a 6-bit hash, handle collisions are common; Locate must still
	// be exact thanks to verification.
	h := hashing.New(6, 6)
	r := rand.New(rand.NewSource(7))
	tr := trie.New()
	var keys []string
	for i := 0; i < 200; i++ {
		k := randomKey(r, 40)
		keys = append(keys, k)
		tr.Insert(bitstr.MustParse(k), uint64(i))
	}
	ix := Build(tr, h)
	for probe := 0; probe < 300; probe++ {
		q := bitstr.MustParse(randomKey(r, 50))
		got, _ := ix.Locate(q)
		if want := naiveLocate(tr, q); got != want {
			t.Fatalf("narrow-hash Locate(%q) = depth %d, want depth %d", q, got.Depth, want.Depth)
		}
	}
}

func BenchmarkLocate(b *testing.B) {
	h := hashing.New(8, 0)
	r := rand.New(rand.NewSource(9))
	tr := trie.New()
	for i := 0; i < 1<<14; i++ {
		tr.Insert(bitstr.FromUint64(r.Uint64(), 64), uint64(i))
	}
	ix := Build(tr, h)
	qs := make([]bitstr.String, 512)
	for i := range qs {
		qs[i] = bitstr.FromUint64(r.Uint64(), 64)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.Locate(qs[i&511])
	}
}
