// Package yfast implements the y-fast trie of Willard [62] — an x-fast
// trie over bucket representatives with Θ(w)-sized sorted buckets — and,
// on top of it, the two-layer index of paper §4.4.2: the structure each
// meta-block uses to map the sub-word remainder strings (S_rem) of block
// roots to meta-tree nodes, with padded keys and validity vectors.
package yfast

import (
	"fmt"
	"sort"

	"github.com/pimlab/pimtrie/internal/xfast"
)

// entry is a key-value pair inside a bucket.
type entry struct {
	key uint64
	val uint64
}

// bucket is a sorted run of entries; buckets are kept between minFill and
// maxFill entries (except the only bucket of a small trie) and chained in
// key order.
type bucket struct {
	entries    []entry
	rep        uint64 // the representative registered in the x-fast top
	id         uint64 // handle under which the x-fast top knows this bucket
	prev, next *bucket
}

// Trie is a y-fast trie over keys of Width bits with O(n) space and
// O(log w) expected-time queries and updates.
type Trie struct {
	width   int
	top     *xfast.Trie // representatives -> *bucket
	head    *bucket
	size    int
	maxFill int
	minFill int
	nextID  uint64
	ids     map[uint64]*bucket // bucket handle -> bucket (x-fast stores only uint64s)
}

// New returns an empty y-fast trie over keys of the given width (1..64).
func New(width int) *Trie {
	if width < 1 || width > 64 {
		panic(fmt.Sprintf("yfast: width %d out of range", width))
	}
	w := width
	if w < 4 {
		w = 4
	}
	return &Trie{
		width:   width,
		top:     xfast.New(width),
		maxFill: 2 * w,
		minFill: w / 4,
		ids:     map[uint64]*bucket{},
	}
}

// Len returns the number of stored keys.
func (t *Trie) Len() int { return t.size }

// Width returns the key width in bits.
func (t *Trie) Width() int { return t.width }

// registerBucket stores b in the x-fast top under its representative.
func (t *Trie) registerBucket(b *bucket) {
	t.nextID++
	b.id = t.nextID
	t.ids[b.id] = b
	t.top.Insert(b.rep, b.id)
}

func (t *Trie) bucketOf(leaf *xfast.Leaf) *bucket {
	return t.ids[leaf.Value]
}

// findBucket returns the bucket whose key range should contain x: the
// bucket with the largest representative <= x, or the first bucket.
func (t *Trie) findBucket(x uint64) *bucket {
	if leaf := t.top.Predecessor(x); leaf != nil {
		return t.bucketOf(leaf)
	}
	return t.head
}

// Insert stores value under x, replacing any existing value, and reports
// whether the key was new.
func (t *Trie) Insert(x, value uint64) bool {
	t.checkKey(x)
	b := t.findBucket(x)
	if b == nil {
		b = &bucket{rep: x}
		t.head = b
		t.registerBucket(b)
	}
	i := sort.Search(len(b.entries), func(i int) bool { return b.entries[i].key >= x })
	if i < len(b.entries) && b.entries[i].key == x {
		b.entries[i].val = value
		return false
	}
	b.entries = append(b.entries, entry{})
	copy(b.entries[i+1:], b.entries[i:])
	b.entries[i] = entry{key: x, val: value}
	t.size++
	// Keep rep <= every key in the bucket (rep is the range's lower end);
	// only the head bucket can receive keys below its rep.
	if x < b.rep {
		t.top.Delete(b.rep)
		b.rep = x
		t.top.Insert(b.rep, b.id)
	}
	if len(b.entries) > t.maxFill {
		t.split(b)
	}
	return true
}

// split divides an overfull bucket into two halves, registering the new
// right bucket's representative in the x-fast top.
func (t *Trie) split(b *bucket) {
	mid := len(b.entries) / 2
	right := &bucket{
		entries: append([]entry(nil), b.entries[mid:]...),
		rep:     b.entries[mid].key,
		prev:    b,
		next:    b.next,
	}
	b.entries = b.entries[:mid:mid]
	if b.next != nil {
		b.next.prev = right
	}
	b.next = right
	t.registerBucket(right)
}

// Delete removes x, reporting whether it was present.
func (t *Trie) Delete(x uint64) bool {
	t.checkKey(x)
	b := t.findBucket(x)
	if b == nil {
		return false
	}
	i := sort.Search(len(b.entries), func(i int) bool { return b.entries[i].key >= x })
	if i >= len(b.entries) || b.entries[i].key != x {
		return false
	}
	b.entries = append(b.entries[:i], b.entries[i+1:]...)
	t.size--
	if len(b.entries) < t.minFill {
		t.rebalance(b)
	}
	return true
}

// rebalance merges an underfull bucket with a neighbor, re-splitting if
// the merge overfills.
func (t *Trie) rebalance(b *bucket) {
	if b.prev == nil && b.next == nil {
		if len(b.entries) == 0 {
			t.top.Delete(b.rep)
			delete(t.ids, b.id)
			t.head = nil
		}
		return
	}
	// Merge into the left neighbor when possible, else pull the right
	// neighbor in.
	var left, right *bucket
	if b.prev != nil {
		left, right = b.prev, b
	} else {
		left, right = b, b.next
	}
	left.entries = append(left.entries, right.entries...)
	left.next = right.next
	if right.next != nil {
		right.next.prev = left
	}
	t.top.Delete(right.rep)
	delete(t.ids, right.id)
	if len(left.entries) > t.maxFill {
		t.split(left)
	}
}

func (t *Trie) checkKey(x uint64) {
	if t.width < 64 && x >= 1<<uint(t.width) {
		panic(fmt.Sprintf("yfast: key %d exceeds width %d", x, t.width))
	}
}

// Get returns the value stored under x.
func (t *Trie) Get(x uint64) (uint64, bool) {
	b := t.findBucket(x)
	if b == nil {
		return 0, false
	}
	i := sort.Search(len(b.entries), func(i int) bool { return b.entries[i].key >= x })
	if i < len(b.entries) && b.entries[i].key == x {
		return b.entries[i].val, true
	}
	return 0, false
}

// Predecessor returns the largest stored key <= x.
func (t *Trie) Predecessor(x uint64) (key, val uint64, ok bool) {
	t.checkKey(x)
	b := t.findBucket(x)
	for b != nil {
		i := sort.Search(len(b.entries), func(i int) bool { return b.entries[i].key > x })
		if i > 0 {
			e := b.entries[i-1]
			return e.key, e.val, true
		}
		b = b.prev
	}
	return 0, 0, false
}

// Successor returns the smallest stored key >= x.
func (t *Trie) Successor(x uint64) (key, val uint64, ok bool) {
	t.checkKey(x)
	b := t.findBucket(x)
	if b == nil {
		return 0, 0, false
	}
	for b != nil {
		i := sort.Search(len(b.entries), func(i int) bool { return b.entries[i].key >= x })
		if i < len(b.entries) {
			e := b.entries[i]
			return e.key, e.val, true
		}
		b = b.next
	}
	return 0, 0, false
}

// Ascend calls fn on every (key, value) in increasing key order until fn
// returns false.
func (t *Trie) Ascend(fn func(key, val uint64) bool) {
	for b := t.head; b != nil; b = b.next {
		for _, e := range b.entries {
			if !fn(e.key, e.val) {
				return
			}
		}
	}
}

// SpaceWords estimates the structure's space in words: O(n) entries plus
// O(n/w · w) for the x-fast top over representatives.
func (t *Trie) SpaceWords() int {
	return t.size*2 + t.top.SpaceWords()
}
