package yfast

import (
	"math/rand"
	"sort"
	"testing"
)

type oracle struct {
	keys []uint64
	vals map[uint64]uint64
}

func newOracle() *oracle { return &oracle{vals: map[uint64]uint64{}} }

func (o *oracle) insert(k, v uint64) {
	if _, ok := o.vals[k]; !ok {
		i := sort.Search(len(o.keys), func(i int) bool { return o.keys[i] >= k })
		o.keys = append(o.keys, 0)
		copy(o.keys[i+1:], o.keys[i:])
		o.keys[i] = k
	}
	o.vals[k] = v
}

func (o *oracle) delete(k uint64) bool {
	if _, ok := o.vals[k]; !ok {
		return false
	}
	delete(o.vals, k)
	i := sort.Search(len(o.keys), func(i int) bool { return o.keys[i] >= k })
	o.keys = append(o.keys[:i], o.keys[i+1:]...)
	return true
}

func (o *oracle) pred(x uint64) (uint64, bool) {
	i := sort.Search(len(o.keys), func(i int) bool { return o.keys[i] > x })
	if i == 0 {
		return 0, false
	}
	return o.keys[i-1], true
}

func (o *oracle) succ(x uint64) (uint64, bool) {
	i := sort.Search(len(o.keys), func(i int) bool { return o.keys[i] >= x })
	if i == len(o.keys) {
		return 0, false
	}
	return o.keys[i], true
}

func verify(t *testing.T, tr *Trie, o *oracle, probes []uint64) {
	t.Helper()
	if tr.Len() != len(o.keys) {
		t.Fatalf("Len = %d, oracle %d", tr.Len(), len(o.keys))
	}
	for _, x := range probes {
		pk, _, pok := tr.Predecessor(x)
		wk, wok := o.pred(x)
		if pok != wok || (pok && pk != wk) {
			t.Fatalf("Predecessor(%d) = %d,%v want %d,%v", x, pk, pok, wk, wok)
		}
		sk, _, sok := tr.Successor(x)
		wk, wok = o.succ(x)
		if sok != wok || (sok && sk != wk) {
			t.Fatalf("Successor(%d) = %d,%v want %d,%v", x, sk, sok, wk, wok)
		}
		v, ok := tr.Get(x)
		wv, wok2 := o.vals[x]
		if ok != wok2 || (ok && v != wv) {
			t.Fatalf("Get(%d) = %d,%v want %d,%v", x, v, ok, wv, wok2)
		}
	}
}

func TestYFastSmallWidthExhaustive(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	tr := New(8)
	o := newOracle()
	all := make([]uint64, 256)
	for i := range all {
		all[i] = uint64(i)
	}
	for step := 0; step < 1500; step++ {
		x := uint64(r.Intn(256))
		if r.Intn(3) != 0 {
			v := r.Uint64()
			tr.Insert(x, v)
			o.insert(x, v)
		} else {
			if tr.Delete(x) != o.delete(x) {
				t.Fatalf("step %d: delete mismatch on %d", step, x)
			}
		}
		if step%50 == 0 {
			verify(t, tr, o, all)
		}
	}
	verify(t, tr, o, all)
}

func TestYFast64BitRandomized(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	tr := New(64)
	o := newOracle()
	var pool []uint64
	for step := 0; step < 5000; step++ {
		var x uint64
		if len(pool) > 0 && r.Intn(2) == 0 {
			x = pool[r.Intn(len(pool))] ^ uint64(r.Intn(4))
		} else {
			x = r.Uint64()
		}
		if r.Intn(3) != 0 {
			v := r.Uint64()
			tr.Insert(x, v)
			o.insert(x, v)
			pool = append(pool, x)
		} else {
			if tr.Delete(x) != o.delete(x) {
				t.Fatalf("step %d: delete mismatch", step)
			}
		}
		if step%250 == 0 {
			probes := make([]uint64, 0, 40)
			for i := 0; i < 20; i++ {
				probes = append(probes, r.Uint64())
				if len(pool) > 0 {
					probes = append(probes, pool[r.Intn(len(pool))])
				}
			}
			verify(t, tr, o, probes)
		}
	}
}

func TestYFastAscendSorted(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	tr := New(32)
	n := 2000
	for i := 0; i < n; i++ {
		tr.Insert(uint64(r.Uint32()), uint64(i))
	}
	prev := uint64(0)
	count := 0
	tr.Ascend(func(k, v uint64) bool {
		if count > 0 && k <= prev {
			t.Fatalf("Ascend out of order: %d after %d", k, prev)
		}
		prev = k
		count++
		return true
	})
	if count != tr.Len() {
		t.Fatalf("Ascend visited %d of %d", count, tr.Len())
	}
}

func TestYFastSpaceLinear(t *testing.T) {
	// O(n) space: unlike x-fast, doubling width must not double space.
	r := rand.New(rand.NewSource(4))
	n := 4096
	tr := New(64)
	for i := 0; i < n; i++ {
		tr.Insert(r.Uint64(), 0)
	}
	if sw := tr.SpaceWords(); sw > 40*n {
		t.Fatalf("space %d words for %d keys — superlinear", sw, n)
	}
}

func TestYFastBucketInvariants(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	tr := New(16)
	present := map[uint64]bool{}
	for step := 0; step < 8000; step++ {
		x := uint64(r.Intn(1 << 16))
		if r.Intn(2) == 0 {
			tr.Insert(x, 0)
			present[x] = true
		} else {
			tr.Delete(x)
			delete(present, x)
		}
	}
	// Walk the bucket chain: sizes within bounds (except a single bucket),
	// ordered, and totals correct.
	count := 0
	nBuckets := 0
	var last uint64
	first := true
	for b := tr.head; b != nil; b = b.next {
		nBuckets++
		count += len(b.entries)
		if tr.head.next != nil && len(b.entries) > tr.maxFill {
			t.Fatalf("bucket of %d entries exceeds max %d", len(b.entries), tr.maxFill)
		}
		for _, e := range b.entries {
			if !first && e.key <= last {
				t.Fatalf("bucket chain out of order")
			}
			last = e.key
			first = false
		}
	}
	if count != len(present) || count != tr.Len() {
		t.Fatalf("chain holds %d keys, want %d", count, len(present))
	}
}
