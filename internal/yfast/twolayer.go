package yfast

import (
	"fmt"
	"math/bits"

	"github.com/pimlab/pimtrie/internal/bitstr"
)

// TwoLayerIndex is the second-layer structure of §4.4.2 ("Efficient
// HashMatching", Figure 5). It maintains a set K of bit strings, each
// strictly shorter than w bits, and answers: for a query string Q
// (also < w bits), return the element K_i whose LCP with Q is longest;
// among ties, the one that no other tied element is a proper prefix of —
// i.e. the shortest. That guarantee is what lets the caller land on a
// critical block root or one of its direct children with O(log w) work.
//
// Implementation, following the paper: every stored string S is padded
// to two w-bit integers S0 (with 0s) and S1 (with 1s); both go into a
// y-fast trie. Because distinct strings can pad to the same integer,
// each padded integer carries a w-bit validity vector recording which
// prefix lengths correspond to stored strings, plus their payloads.
type TwoLayerIndex struct {
	w    int
	trie *Trie
	// meta[padded integer] = validity/payload table.
	meta map[uint64]*padMeta
	size int
}

// padMeta records the stored strings that pad to one integer.
type padMeta struct {
	valid    uint64         // bit ℓ set ⇔ a stored string of length ℓ pads here
	payloads map[int]uint64 // length -> payload
}

// NewTwoLayer returns an empty index for strings of length < w (w ≤ 64).
func NewTwoLayer(w int) *TwoLayerIndex {
	if w < 2 || w > 64 {
		panic(fmt.Sprintf("yfast: two-layer width %d out of range", w))
	}
	return &TwoLayerIndex{w: w, trie: New(w), meta: map[uint64]*padMeta{}}
}

// Len returns the number of stored strings.
func (x *TwoLayerIndex) Len() int { return x.size }

// pad returns S padded to w bits with bit b, as an integer.
func (x *TwoLayerIndex) pad(s bitstr.String, b byte) uint64 {
	return s.PadTo(x.w, b).Uint64()
}

// Insert stores payload under S (0 ≤ |S| < w), replacing any previous
// payload, and reports whether S was new.
func (x *TwoLayerIndex) Insert(s bitstr.String, payload uint64) bool {
	if s.Len() >= x.w {
		panic(fmt.Sprintf("yfast: two-layer string of %d bits ≥ width %d", s.Len(), x.w))
	}
	fresh := false
	for _, b := range []byte{0, 1} {
		p := x.pad(s, b)
		m := x.meta[p]
		if m == nil {
			m = &padMeta{payloads: map[int]uint64{}}
			x.meta[p] = m
			x.trie.Insert(p, p)
		}
		if m.valid&(1<<uint(s.Len())) == 0 {
			m.valid |= 1 << uint(s.Len())
			fresh = true
		}
		m.payloads[s.Len()] = payload
	}
	if fresh {
		x.size++
	}
	return fresh
}

// Delete removes S, reporting whether it was present.
func (x *TwoLayerIndex) Delete(s bitstr.String) bool {
	if s.Len() >= x.w {
		return false
	}
	present := false
	for _, b := range []byte{0, 1} {
		p := x.pad(s, b)
		m := x.meta[p]
		if m == nil || m.valid&(1<<uint(s.Len())) == 0 {
			continue
		}
		present = true
		m.valid &^= 1 << uint(s.Len())
		delete(m.payloads, s.Len())
		if m.valid == 0 {
			delete(x.meta, p)
			x.trie.Delete(p)
		}
	}
	if present {
		x.size--
	}
	return present
}

// Result is a lookup answer: the stored string (by length and padded
// form), and its payload.
type Result struct {
	Str     bitstr.String
	Payload uint64
}

// Lookup answers the §4.4.2 query for Q (|Q| < w): the stored string
// with the longest LCP with Q, tie-broken to the shortest. It probes the
// y-fast predecessors/successors of Q0 and Q1 and binary-searches their
// validity vectors, O(log w) whp.
func (x *TwoLayerIndex) Lookup(q bitstr.String) (Result, bool) {
	if q.Len() >= x.w {
		panic(fmt.Sprintf("yfast: two-layer query of %d bits ≥ width %d", q.Len(), x.w))
	}
	if x.size == 0 {
		return Result{}, false
	}
	var cands []uint64
	add := func(k uint64, ok bool) {
		if ok {
			cands = append(cands, k)
		}
	}
	q0, q1 := x.pad(q, 0), x.pad(q, 1)
	k, _, ok := x.trie.Predecessor(q0)
	add(k, ok)
	k, _, ok = x.trie.Successor(q0)
	add(k, ok)
	k, _, ok = x.trie.Predecessor(q1)
	add(k, ok)
	k, _, ok = x.trie.Successor(q1)
	add(k, ok)

	bestLCP, bestLen := -1, -1
	var bestPad uint64
	for _, c := range cands {
		m := x.meta[c]
		if m == nil || m.valid == 0 {
			continue
		}
		// LCP between the candidate's padded bits and Q (≤ |Q|).
		l := lcpInt(c, q.PadTo(x.w, 0).Uint64(), x.w)
		l2 := lcpInt(c, q.PadTo(x.w, 1).Uint64(), x.w)
		if l2 > l {
			l = l2
		}
		if l > q.Len() {
			l = q.Len()
		}
		// Shortest valid length ≥ l, else longest valid length < l.
		length, lcp := pickValid(m.valid, l)
		if lcp > bestLCP || (lcp == bestLCP && length < bestLen) {
			bestLCP, bestLen, bestPad = lcp, length, c
		}
	}
	if bestLen < 0 {
		return Result{}, false
	}
	m := x.meta[bestPad]
	return Result{
		Str:     bitstr.FromUint64(bestPad, x.w).Prefix(bestLen),
		Payload: m.payloads[bestLen],
	}, true
}

// pickValid returns (length, achievedLCP) for the best stored length in
// the validity vector relative to an LCP bound l: a stored prefix of
// length ℓ has LCP min(ℓ, l) with Q, so the best is the shortest ℓ ≥ l
// (LCP l), or failing that the longest ℓ < l (LCP ℓ).
func pickValid(valid uint64, l int) (length, lcp int) {
	geMask := ^uint64(0) << uint(l)
	if up := valid & geMask; up != 0 {
		ℓ := bits.TrailingZeros64(up)
		return ℓ, l
	}
	down := valid &^ geMask
	if down == 0 {
		return -1, -1
	}
	ℓ := 63 - bits.LeadingZeros64(down)
	return ℓ, ℓ
}

// lcpInt returns the LCP in bits of two w-bit integers read MSB-first.
func lcpInt(a, b uint64, w int) int {
	x := (a ^ b) << uint(64-w)
	if x == 0 {
		return w
	}
	return bits.LeadingZeros64(x)
}
